// Shared fixtures and builders for the test suite.
#pragma once

#include <gtest/gtest.h>

#include <cctype>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "model/execution.hpp"
#include "model/reachability.hpp"
#include "model/timestamps.hpp"
#include "nonatomic/interval.hpp"
#include "sim/interval_picker.hpp"
#include "sim/workload.hpp"
#include "support/rng.hpp"

// Prints the responsible seed alongside any assertion that fails in the
// enclosing scope, so a failing randomized test is replayable immediately.
#define SYNCON_SEED_TRACE(seed) \
  SCOPED_TRACE(::testing::Message() << "seed=" << (seed))

namespace syncon::testing {

// Iteration count of a randomized test: the default is the test's historical
// value; the SYNCON_TEST_ITERS environment variable overrides every such
// count at once (e.g. SYNCON_TEST_ITERS=5000 for a soak run, =10 for a
// quick sanitizer pass).
inline int test_iters(int default_iters) {
  if (const char* env = std::getenv("SYNCON_TEST_ITERS")) {
    const int parsed = std::atoi(env);
    if (parsed > 0) return parsed;
  }
  return default_iters;
}

// Two processes, one message:
//   p0: a1 -> a2(send) -> a3
//   p1: b1 -> b2(recv from a2) -> b3
inline Execution two_process_message() {
  ExecutionBuilder b(2);
  b.local(0);                        // a1 = 0.1
  const MessageToken m = b.send(0);  // a2 = 0.2
  b.local(0);                        // a3 = 0.3
  b.local(1);                        // b1 = 1.1
  b.receive(1, m);                   // b2 = 1.2
  b.local(1);                        // b3 = 1.3
  return b.build();
}

// Three independent processes with two local events each (no messages).
inline Execution three_process_concurrent() {
  ExecutionBuilder b(3);
  for (ProcessId p = 0; p < 3; ++p) {
    b.local(p);
    b.local(p);
  }
  return b.build();
}

// A 4-process execution replicating the shape of the paper's Figure 2:
// X's eight events sit on all four time lines with cross-node messages that
// make the four cuts C1..C4 distinct.
//   p0: x01 x02 s0>        (s0 sends to p1)
//   p1: r1< x11 s1>        (r1 receives s0, s1 sends to p2)
//   p2: r2< x21 x22 s2>    (r2 receives s1, s2 sends to p3)
//   p3: r3< x31            (r3 receives s2)
struct Fig2Fixture {
  Execution exec;
  std::vector<EventId> x_events;

  static Fig2Fixture make() {
    ExecutionBuilder b(4);
    std::vector<EventId> xs;
    xs.push_back(b.local(0));              // x01 = 0.1
    xs.push_back(b.local(0));              // x02 = 0.2
    const MessageToken s0 = b.send(0);     // 0.3 (not in X)
    b.receive(1, s0);                      // 1.1 (not in X)
    xs.push_back(b.local(1));              // x11 = 1.2
    xs.push_back(b.local(1));              // x12 = 1.3
    const MessageToken s1 = b.send(1);     // 1.4 (not in X)
    b.receive(2, s1);                      // 2.1 (not in X)
    xs.push_back(b.local(2));              // x21 = 2.2
    xs.push_back(b.local(2));              // x22 = 2.3
    const MessageToken s2 = b.send(2);     // 2.4 (not in X)
    b.receive(3, s2);                      // 3.1 (not in X)
    xs.push_back(b.local(3));              // x31 = 3.2
    xs.push_back(b.local(3));              // x32 = 3.3
    b.local(0);                            // tail events outside X
    b.local(1);
    b.local(3);
    return Fig2Fixture{b.build(), std::move(xs)};
  }
};

// The randomized sweep used by property tests: a spread of process counts,
// topologies and densities, all deterministic by seed.
inline std::vector<WorkloadConfig> property_sweep() {
  std::vector<WorkloadConfig> cases;
  std::uint64_t seed = 1000;
  for (const Topology topo :
       {Topology::Random, Topology::Ring, Topology::ClientServer,
        Topology::Broadcast, Topology::Phases}) {
    for (const std::size_t p : {2u, 3u, 5u, 8u}) {
      for (const double send_p : {0.15, 0.45}) {
        WorkloadConfig cfg;
        cfg.process_count = p;
        cfg.events_per_process = 18;
        cfg.send_probability = send_p;
        cfg.topology = topo;
        cfg.phase_count = 3;
        cfg.seed = seed++;
        cases.push_back(cfg);
      }
    }
  }
  return cases;
}

// Readable, gtest-safe parameter names for the sweep ("ring_p5_s1013"...).
inline std::string sweep_case_name(
    const ::testing::TestParamInfo<WorkloadConfig>& info) {
  std::string topo = to_string(info.param.topology);
  std::string out;
  for (const char c : topo) {
    if (std::isalnum(static_cast<unsigned char>(c))) out += c;
  }
  out += "_p" + std::to_string(info.param.process_count);
  out += "_s" + std::to_string(info.param.seed);
  return out;
}

// Samples a pair of intervals guaranteed to be event-disjoint (so strict and
// weak semantics agree; see DESIGN.md §3.3).
inline std::pair<NonatomicEvent, NonatomicEvent> disjoint_pair(
    const Execution& exec, Xoshiro256StarStar& rng, const IntervalSpec& spec) {
  const NonatomicEvent x = random_interval(exec, rng, spec, "X");
  for (int attempt = 0; attempt < 64; ++attempt) {
    NonatomicEvent y = random_interval(exec, rng, spec, "Y");
    bool overlaps = false;
    for (const EventId& e : y.events()) {
      if (x.contains(e)) {
        overlaps = true;
        break;
      }
    }
    if (!overlaps) return {x, std::move(y)};
  }
  // Fall back to a single-event interval at the first event not in X.
  for (ProcessId p = 0; p < exec.process_count(); ++p) {
    for (EventIndex k = 1; k <= exec.real_count(p); ++k) {
      if (!x.contains(EventId{p, k})) {
        return {x, NonatomicEvent(exec, {EventId{p, k}}, "Y")};
      }
    }
  }
  // Degenerate: X swallowed the execution; shrink X to one event instead.
  const EventId first = x.events().front();
  const EventId last = x.events().back();
  return {NonatomicEvent(exec, {first}, "X"),
          NonatomicEvent(exec, {last}, "Y")};
}

}  // namespace syncon::testing
