#include <gtest/gtest.h>

#include "helpers.hpp"
#include "model/timestamps.hpp"
#include "online/interval_tracker.hpp"
#include "online/online_evaluator.hpp"
#include "online/online_system.hpp"
#include "relations/naive.hpp"
#include "support/contracts.hpp"

namespace syncon {
namespace {

using testing::property_sweep;

TEST(OnlineSystemTest, ClocksMatchHandComputation) {
  OnlineSystem sys(2);
  const EventId a1 = sys.local(0);
  EXPECT_EQ(sys.clock_of(a1), VectorClock({2, 1}));
  const WireMessage m = sys.send(0);
  EXPECT_EQ(m.clock, VectorClock({3, 1}));
  const EventId b1 = sys.local(1);
  EXPECT_EQ(sys.clock_of(b1), VectorClock({1, 2}));
  const EventId b2 = sys.deliver(1, m);
  EXPECT_EQ(sys.clock_of(b2), VectorClock({3, 3}));
  EXPECT_EQ(sys.current_clock(1), VectorClock({3, 3}));
  EXPECT_EQ(sys.executed(0), 2u);
  EXPECT_EQ(sys.executed(1), 2u);
  EXPECT_EQ(sys.total_executed(), 4u);
}

TEST(OnlineSystemTest, InitialClockIsBottom) {
  OnlineSystem sys(3);
  EXPECT_EQ(sys.current_clock(1), VectorClock({0, 1, 0}));
}

TEST(OnlineSystemTest, RejectsSelfDelivery) {
  OnlineSystem sys(2);
  const WireMessage m = sys.send(0);
  EXPECT_THROW(sys.deliver(0, m), ContractViolation);
  // The message mentions who tried to self-deliver what.
  try {
    sys.deliver(0, m);
    FAIL() << "self-delivery must throw";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("own message"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("0:1"), std::string::npos);
  }
}

TEST(OnlineSystemTest, RejectsForeignOrCorruptMessages) {
  OnlineSystem sys(2);
  // Source process beyond process_count(), with a descriptive message.
  try {
    sys.deliver(0, WireMessage{EventId{7, 1}, VectorClock({1, 1})});
    FAIL() << "unknown source process must throw";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("unknown process"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("2 processes"), std::string::npos);
  }
  // Receiver id beyond process_count().
  const WireMessage m = sys.send(0);
  EXPECT_THROW(sys.deliver(9, m), ContractViolation);
  // Clock of the wrong width.
  EXPECT_THROW(sys.deliver(1, WireMessage{EventId{0, 1}, VectorClock({1})}),
               ContractViolation);
  // Dummy source index.
  EXPECT_THROW(sys.deliver(1, WireMessage{EventId{0, 0}, VectorClock({1, 1})}),
               ContractViolation);
  // A clock claiming receiver events that never executed (corruption).
  EXPECT_THROW(
      sys.deliver(1, WireMessage{EventId{0, 1}, VectorClock({2, 99})}),
      ContractViolation);
}

TEST(OnlineSystemTest, DeliverIsIdempotent) {
  OnlineSystem sys(2);
  const WireMessage m = sys.send(0);
  const EventId first = sys.deliver(1, m);
  const std::size_t total = sys.total_executed();
  // Redelivery (any number of times) executes nothing and returns the
  // original receive event.
  EXPECT_EQ(sys.deliver(1, m), first);
  EXPECT_EQ(sys.deliver(1, m), first);
  EXPECT_EQ(sys.total_executed(), total);
  EXPECT_EQ(sys.duplicates_suppressed(), 2u);
  EXPECT_TRUE(sys.already_delivered(1, m.source));
  EXPECT_EQ(sys.current_clock(1), sys.clock_of(first));
}

TEST(OnlineSystemTest, StaleTimestampedDuplicateDoesNotThrow) {
  // A duplicate arriving after later events carries an old send time; the
  // dedup path must answer before time-monotonicity checks can object.
  OnlineSystem sys(2);
  const WireMessage m = sys.send(0, 100);
  const EventId first = sys.deliver(1, m, 200);
  sys.local(1, 300);
  EXPECT_EQ(sys.deliver(1, m, 150), first);
}

TEST(OnlineSystemTest, DeliverAllMergesEverything) {
  OnlineSystem sys(3);
  const WireMessage m1 = sys.send(1);
  const WireMessage m2 = sys.send(2);
  const std::vector<WireMessage> msgs{m1, m2};
  const EventId joined = sys.deliver_all(0, msgs);
  EXPECT_EQ(sys.clock_of(joined), VectorClock({2, 2, 2}));
}

TEST(OnlineSystemTest, DeliverAllSuppressesWithinBatchDuplicates) {
  // The same wire message twice in one gather (an at-least-once transport
  // redelivered it into the same batch): one receive, one suppression.
  OnlineSystem sys(3);
  const WireMessage m1 = sys.send(1);
  const WireMessage m2 = sys.send(2);
  const std::vector<WireMessage> msgs{m1, m2, m1};
  const EventId joined = sys.deliver_all(0, msgs);
  EXPECT_EQ(sys.clock_of(joined), VectorClock({2, 2, 2}));
  EXPECT_EQ(sys.duplicates_suppressed(), 1u);
  EXPECT_EQ(sys.executed(0), 1u);
}

TEST(OnlineSystemTest, DeliverAllSuppressesAgainstEarlierDeliveries) {
  // A batch overlapping an earlier deliver: only the fresh message merges.
  OnlineSystem sys(3);
  const WireMessage m1 = sys.send(1);
  const WireMessage m2 = sys.send(2);
  sys.deliver(0, m1);
  const std::vector<WireMessage> msgs{m1, m2};
  const EventId joined = sys.deliver_all(0, msgs);
  EXPECT_EQ(sys.clock_of(joined), VectorClock({3, 2, 2}));
  EXPECT_EQ(sys.duplicates_suppressed(), 1u);
  EXPECT_EQ(sys.executed(0), 2u);  // two receive events, no third
}

TEST(OnlineSystemTest, DeliverAllOfOnlyDuplicatesIsANoOp) {
  OnlineSystem sys(3);
  const WireMessage m1 = sys.send(1);
  const WireMessage m2 = sys.send(2);
  const std::vector<WireMessage> batch{m1, m2};
  const EventId joined = sys.deliver_all(0, batch);
  const std::size_t total = sys.total_executed();
  // Redelivering the whole batch executes nothing and answers with the
  // receive that first consumed the batch's first source.
  const std::vector<WireMessage> again{m2, m1};
  EXPECT_EQ(sys.deliver_all(0, again), joined);
  EXPECT_EQ(sys.total_executed(), total);
  EXPECT_EQ(sys.duplicates_suppressed(), 2u);
}

TEST(OnlineSystemTest, ToExecutionPreservesStructure) {
  OnlineSystem sys(2);
  sys.local(0);
  const WireMessage m = sys.send(0);
  sys.local(1);
  sys.deliver(1, m);
  const Execution exec = sys.to_execution();
  EXPECT_EQ(exec.real_count(0), 2u);
  EXPECT_EQ(exec.real_count(1), 2u);
  ASSERT_EQ(exec.messages().size(), 1u);
  EXPECT_EQ(exec.messages()[0].source, (EventId{0, 2}));
  EXPECT_EQ(exec.messages()[0].target, (EventId{1, 2}));
}

TEST(IntervalTrackerTest, AccumulatesAggregates) {
  OnlineSystem sys(2);
  IntervalTracker tracker("act");
  const EventId a1 = sys.local(0);
  tracker.add(sys, a1);
  const WireMessage m = sys.send(0);
  tracker.add(sys, m.source);
  const EventId b1 = sys.deliver(1, m);
  tracker.add(sys, b1);
  const IntervalSummary s = tracker.summary();
  EXPECT_EQ(s.label, "act");
  EXPECT_EQ(s.event_count, 3u);
  EXPECT_EQ(s.nodes, (std::vector<ProcessId>{0, 1}));
  EXPECT_EQ(s.least_index[0], 1u);
  EXPECT_EQ(s.greatest_index[0], 2u);
  EXPECT_EQ(s.least_index[1], 1u);
  // ∩⇓ = min(T(a1), T(b1)) = min([2,1],[3,2]) = [2,1].
  EXPECT_EQ(s.intersect_past, VectorClock({2, 1}));
  // ∪⇓ = max(T(send), T(b1)) = max([3,1],[3,2]) = [3,2].
  EXPECT_EQ(s.union_past, VectorClock({3, 2}));
}

TEST(IntervalTrackerTest, NodeSlotLookup) {
  OnlineSystem sys(4);
  IntervalTracker tracker("t");
  tracker.add(sys, sys.local(1));
  tracker.add(sys, sys.local(3));
  const IntervalSummary s = tracker.summary();
  EXPECT_EQ(s.node_slot(1), 0u);
  EXPECT_EQ(s.node_slot(3), 1u);
  EXPECT_EQ(s.node_slot(0), static_cast<std::size_t>(-1));
  EXPECT_EQ(s.node_slot(2), static_cast<std::size_t>(-1));
}

TEST(IntervalTrackerTest, ProxySummariesCollapseExtremes) {
  OnlineSystem sys(2);
  IntervalTracker tracker("t");
  tracker.add(sys, sys.local(0, 10));
  tracker.add(sys, sys.local(0, 20));
  tracker.add(sys, sys.local(1, 5));
  const IntervalSummary s = tracker.summary();
  const IntervalSummary begin = s.proxy(ProxyKind::Begin);
  const IntervalSummary end = s.proxy(ProxyKind::End);
  EXPECT_EQ(begin.label, "L(t)");
  EXPECT_EQ(end.label, "U(t)");
  EXPECT_EQ(begin.event_count, 2u);  // one per node
  // Begin proxy keeps the least events: indices 1 on both nodes.
  EXPECT_EQ(begin.greatest_index[0], begin.least_index[0]);
  EXPECT_EQ(begin.least_index[0], 1u);
  EXPECT_EQ(end.least_index[0], 2u);
  // Physical span collapses to the surviving extremes.
  EXPECT_EQ(begin.start_time, 5);
  EXPECT_EQ(begin.end_time, 10);
  EXPECT_EQ(end.start_time, 5);
  EXPECT_EQ(end.end_time, 20);
}

TEST(IntervalTrackerTest, ToleratesOutOfOrderAddsButRejectsDuplicates) {
  // Fault tolerance: a monitor behind a reordering channel folds events in
  // arrival order, so the tracker accepts any order — the per-node extremes
  // come out the same. Duplicates, however, are a caller bug (dedup happens
  // upstream) and are rejected.
  OnlineSystem sys(1);
  const EventId e1 = sys.local(0);
  const EventId e2 = sys.local(0);
  const EventId e3 = sys.local(0);
  IntervalTracker reversed("t");
  reversed.add(sys, e3);
  reversed.add(sys, e1);
  reversed.add(sys, e2);  // interior event: folds without touching extremes
  EXPECT_THROW(reversed.add(sys, e1), ContractViolation);
  EXPECT_THROW(reversed.add(sys, e3), ContractViolation);

  IntervalTracker forward("t");
  forward.add(sys, e1);
  forward.add(sys, e2);
  forward.add(sys, e3);
  const IntervalSummary a = reversed.summary(), b = forward.summary();
  EXPECT_EQ(a.least_index, b.least_index);
  EXPECT_EQ(a.greatest_index, b.greatest_index);
  EXPECT_EQ(a.intersect_past, b.intersect_past);
  EXPECT_EQ(a.union_past, b.union_past);
}

TEST(IntervalTrackerTest, EmptySummaryRejected) {
  IntervalTracker tracker("t");
  EXPECT_THROW(tracker.summary(), ContractViolation);
}

TEST(OnlineSystemTest, PhysicalTimeStampsAreTracked) {
  OnlineSystem sys(2);
  const EventId a = sys.local(0, 100);
  const WireMessage m = sys.send(0, 250);
  const EventId b = sys.deliver(1, m, 900);
  EXPECT_EQ(sys.time_of(a), 100);
  EXPECT_EQ(sys.time_of(m.source), 250);
  EXPECT_EQ(sys.time_of(b), 900);
  // Untimed events carry the sentinel.
  const EventId c = sys.local(1);
  EXPECT_EQ(sys.time_of(c), OnlineSystem::kNoTime);
}

TEST(OnlineSystemTest, RejectsNonMonotoneLocalTime) {
  OnlineSystem sys(1);
  sys.local(0, 100);
  EXPECT_THROW(sys.local(0, 100), ContractViolation);
  EXPECT_THROW(sys.local(0, 50), ContractViolation);
  EXPECT_NO_THROW(sys.local(0, 101));
}

TEST(IntervalTrackerTest, CapturesPhysicalSpan) {
  OnlineSystem sys(2);
  IntervalTracker tracker("t");
  tracker.add(sys, sys.local(0, 100));
  const WireMessage m = sys.send(0, 300);
  tracker.add(sys, m.source);
  tracker.add(sys, sys.deliver(1, m, 750));
  const IntervalSummary s = tracker.summary();
  EXPECT_TRUE(s.fully_timed);
  EXPECT_EQ(s.start_time, 100);
  EXPECT_EQ(s.end_time, 750);
}

TEST(IntervalTrackerTest, PartiallyTimedIntervalsAreFlagged) {
  OnlineSystem sys(1);
  IntervalTracker tracker("t");
  tracker.add(sys, sys.local(0, 5));
  tracker.add(sys, sys.local(0));  // untimed
  const IntervalSummary s = tracker.summary();
  EXPECT_FALSE(s.fully_timed);
  EXPECT_EQ(s.start_time, 5);
}

TEST(OnlineCostBoundTest, QuadraticOnlyForPrimedExistentials) {
  EXPECT_EQ(online_cost_bound(Relation::R1, 5, 7), 5u);
  EXPECT_EQ(online_cost_bound(Relation::R2, 5, 7), 5u);
  EXPECT_EQ(online_cost_bound(Relation::R3, 5, 7), 5u);
  EXPECT_EQ(online_cost_bound(Relation::R4, 5, 7), 5u);
  EXPECT_EQ(online_cost_bound(Relation::R2p, 5, 7), 35u);
  EXPECT_EQ(online_cost_bound(Relation::R3p, 5, 7), 35u);
}

TEST(OnlineEvaluatorTest, RejectsMalformedSummaries) {
  OnlineSystem sys(2);
  IntervalTracker tx("X"), ty("Y");
  tx.add(sys, sys.local(0));
  ty.add(sys, sys.local(1));
  const IntervalSummary good_x = tx.summary();
  IntervalSummary bad_y = ty.summary();
  ComparisonCounter counter;
  // Mismatched process counts are two different systems.
  bad_y.process_count = 3;
  EXPECT_THROW(evaluate_online(Relation::R1, good_x, bad_y, counter),
               ContractViolation);
  // A past cut narrower than the claimed process count is a corrupt
  // aggregate; it must fail loudly, not index out of bounds.
  bad_y = ty.summary();
  bad_y.intersect_past = VectorClock(1);
  EXPECT_THROW(evaluate_online(Relation::R1, good_x, bad_y, counter),
               ContractViolation);
}

// ---------------------------------------------------------------------------
// Property sweep: replaying an offline execution online reproduces the
// offline timestamps exactly, and online evaluation agrees with the
// definitional semantics.
// ---------------------------------------------------------------------------

class OnlinePropertyTest : public ::testing::TestWithParam<WorkloadConfig> {};

TEST_P(OnlinePropertyTest, ReplayReproducesOfflineClocks) {
  const Execution exec = generate_execution(GetParam());
  const Timestamps ts(exec);
  const OnlineSystem sys = replay(exec);
  for (const EventId& e : exec.topological_order()) {
    ASSERT_EQ(sys.clock_of(e), ts.forward_ref(e)) << e.process << ":"
                                                  << e.index;
  }
}

TEST_P(OnlinePropertyTest, ToExecutionRoundTripsReplay) {
  const Execution exec = generate_execution(GetParam());
  const OnlineSystem sys = replay(exec);
  const Execution back = sys.to_execution();
  ASSERT_EQ(back.process_count(), exec.process_count());
  ASSERT_EQ(back.total_real_count(), exec.total_real_count());
  const Timestamps ts_a(exec), ts_b(back);
  for (const EventId& e : exec.topological_order()) {
    ASSERT_EQ(ts_a.forward(e), ts_b.forward(e));
  }
}

TEST_P(OnlinePropertyTest, OnlineEvaluationMatchesWeakNaive) {
  const Execution exec = generate_execution(GetParam());
  const Timestamps ts(exec);
  const OnlineSystem sys = replay(exec);
  Xoshiro256StarStar rng(GetParam().seed ^ 0xfeed);
  IntervalSpec spec;
  spec.node_count = std::max<std::size_t>(1, exec.process_count() / 2 + 1);
  spec.max_events_per_node = 3;
  for (int trial = 0; trial < 40; ++trial) {
    const NonatomicEvent x = random_interval(exec, rng, spec, "X");
    const NonatomicEvent y = random_interval(exec, rng, spec, "Y");
    IntervalTracker tx("X"), ty("Y");
    for (const EventId& e : x.events()) tx.add(sys, e);
    for (const EventId& e : y.events()) ty.add(sys, e);
    const IntervalSummary sx = tx.summary();
    const IntervalSummary sy = ty.summary();
    for (const Relation r : kAllRelations) {
      ComparisonCounter counter;
      ASSERT_EQ(evaluate_online(r, sx, sy, counter),
                evaluate_naive(r, x, y, ts, Semantics::Weak))
          << to_string(r) << " trial " << trial;
      ASSERT_LE(counter.integer_comparisons,
                online_cost_bound(r, sx.node_count(), sy.node_count()));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, OnlinePropertyTest,
                         ::testing::ValuesIn(property_sweep()),
                         testing::sweep_case_name);

}  // namespace
}  // namespace syncon
