// Larger randomized campaigns than the per-module property sweeps: bigger
// executions, adversarial topologies, and overlap-heavy interval pairs,
// cross-checking every evaluation tier. Kept to a few seconds total.
#include <gtest/gtest.h>

#include "helpers.hpp"
#include "nonatomic/cut_timestamps.hpp"
#include "online/interval_tracker.hpp"
#include "online/online_evaluator.hpp"
#include "online/online_system.hpp"
#include "relations/evaluator.hpp"
#include "relations/fast.hpp"
#include "relations/naive.hpp"
#include "sim/interval_picker.hpp"

namespace syncon {
namespace {

// A long dependency chain: every process sends to the next, maximizing
// causal depth (vector clocks become dense).
Execution chain_execution(std::size_t processes, std::size_t hops) {
  ExecutionBuilder b(processes);
  MessageToken token = b.send(0);
  ProcessId holder = 0;
  for (std::size_t k = 0; k < hops; ++k) {
    const auto next = static_cast<ProcessId>((holder + 1) % processes);
    b.receive(next, token);
    b.local(next);
    token = b.send(next);
    holder = next;
  }
  return b.build();  // final token stays in flight
}

// A star: one hub exchanging with many leaves — wide, shallow causality.
Execution star_execution(std::size_t leaves, std::size_t rounds) {
  ExecutionBuilder b(leaves + 1);
  for (std::size_t r = 0; r < rounds; ++r) {
    std::vector<MessageToken> in;
    for (ProcessId leaf = 1; leaf <= leaves; ++leaf) {
      b.local(leaf);
      in.push_back(b.send(leaf));
    }
    b.receive_all(0, in);
    const MessageToken out = b.send(0);
    for (ProcessId leaf = 1; leaf <= leaves; ++leaf) {
      b.receive(leaf, out);
    }
  }
  return b.build();
}

void cross_check_all_tiers(const Execution& exec, std::uint64_t seed,
                           int trials) {
  SYNCON_SEED_TRACE(seed);
  const Timestamps ts(exec);
  const OnlineSystem sys = replay(exec);
  Xoshiro256StarStar rng(seed);
  IntervalSpec spec;
  spec.node_count = std::max<std::size_t>(2, exec.process_count() / 2);
  spec.max_events_per_node = 5;
  for (int t = 0; t < trials; ++t) {
    const NonatomicEvent x = random_interval(exec, rng, spec, "X");
    const NonatomicEvent y = random_interval(exec, rng, spec, "Y");
    const EventCuts xc(ts, x), yc(ts, y);
    IntervalTracker tx("X"), ty("Y");
    for (const EventId& e : x.events()) tx.add(sys, e);
    for (const EventId& e : y.events()) ty.add(sys, e);
    const IntervalSummary sx = tx.summary(), sy = ty.summary();
    for (const Relation r : kAllRelations) {
      ComparisonCounter c;
      const bool truth = evaluate_naive(r, x, y, ts, Semantics::Weak);
      ASSERT_EQ(evaluate_fast(r, xc, yc, c), truth) << to_string(r);
      ASSERT_EQ(evaluate_proxy_naive(r, x, y, ts, Semantics::Weak), truth);
      ASSERT_EQ(evaluate_online(r, sx, sy, c), truth) << to_string(r);
      ASSERT_LE(c.integer_comparisons,
                theorem20_bound(r, x.node_count(), y.node_count()) +
                    online_cost_bound(r, sx.node_count(), sy.node_count()));
    }
  }
}

TEST(StressTest, LongChainsDeepCausality) {
  const Execution exec = chain_execution(8, 120);
  cross_check_all_tiers(exec, 97, testing::test_iters(150));
}

TEST(StressTest, WideStarsShallowCausality) {
  const Execution exec = star_execution(12, 8);
  cross_check_all_tiers(exec, 98, testing::test_iters(150));
}

TEST(StressTest, LargeRandomWorkload) {
  WorkloadConfig cfg;
  cfg.process_count = 24;
  cfg.events_per_process = 80;
  cfg.send_probability = 0.4;
  cfg.seed = 4096;
  const Execution exec = generate_execution(cfg);
  cross_check_all_tiers(exec, 99, testing::test_iters(200));
}

TEST(StressTest, DensePhasesWorkload) {
  WorkloadConfig cfg;
  cfg.topology = Topology::Phases;
  cfg.process_count = 16;
  cfg.events_per_process = 48;
  cfg.phase_count = 8;
  cfg.seed = 512;
  const Execution exec = generate_execution(cfg);
  cross_check_all_tiers(exec, 100, testing::test_iters(150));
}

TEST(StressTest, HeavyOverlapPairs) {
  // X and Y drawn from the same window so they share many events: strict
  // and weak must still agree pairwise with their own reference tiers.
  WorkloadConfig cfg;
  cfg.process_count = 10;
  cfg.events_per_process = 40;
  cfg.seed = 77;
  const Execution exec = generate_execution(cfg);
  const Timestamps ts(exec);
  RelationEvaluator eval(ts);
  Xoshiro256StarStar rng(1);
  SYNCON_SEED_TRACE(1);
  IntervalSpec spec;
  spec.node_count = 6;
  spec.max_events_per_node = 6;
  const int trials = testing::test_iters(60);
  for (int t = 0; t < trials; ++t) {
    NonatomicEvent base = random_interval(exec, rng, spec, "B");
    // Y = base plus a few extra events; X = base.
    std::vector<EventId> extended = base.events();
    const NonatomicEvent extra = random_interval(exec, rng, spec, "E");
    extended.insert(extended.end(), extra.events().begin(),
                    extra.events().end());
    const auto hx = eval.add_event(NonatomicEvent(
        exec, base.events(), "X" + std::to_string(t)));
    const auto hy = eval.add_event(
        NonatomicEvent(exec, extended, "Y" + std::to_string(t)));
    for (const RelationId& id : all_relation_ids()) {
      ASSERT_EQ(eval.holds(id, hx, hy),
                eval.holds_naive(id, hx, hy, Semantics::Weak));
      ASSERT_EQ(eval.holds_strict(id, hx, hy),
                eval.holds_naive(id, hx, hy, Semantics::Strict));
    }
  }
}

TEST(StressTest, EvaluatorScalesToManyIntervals) {
  WorkloadConfig cfg;
  cfg.process_count = 16;
  cfg.events_per_process = 60;
  cfg.seed = 2025;
  const Execution exec = generate_execution(cfg);
  const Timestamps ts(exec);
  RelationEvaluator eval(ts);
  Xoshiro256StarStar rng(5);
  IntervalSpec spec;
  spec.node_count = 8;
  spec.max_events_per_node = 4;
  constexpr std::size_t kCount = 40;
  for (std::size_t i = 0; i < kCount; ++i) {
    eval.add_event(random_interval(exec, rng, spec, "I" + std::to_string(i)));
  }
  // All-pairs pruned queries stay consistent with exhaustive ones.
  std::size_t checked = 0;
  for (std::size_t x = 0; x < kCount; x += 7) {
    for (std::size_t y = 1; y < kCount; y += 5) {
      if (x == y) continue;
      const auto a = eval.all_holding(eval.handle_at(x), eval.handle_at(y));
      const auto b =
          eval.all_holding_pruned(eval.handle_at(x), eval.handle_at(y));
      ASSERT_EQ(a.holding.size(), b.holding.size());
      ++checked;
    }
  }
  EXPECT_GT(checked, 20u);
}

}  // namespace
}  // namespace syncon
