#include <gtest/gtest.h>

#include "helpers.hpp"
#include "relations/sparse_cuts.hpp"
#include "relations/fast.hpp"
#include "sim/interval_picker.hpp"

namespace syncon {
namespace {

using testing::property_sweep;

TEST(SparseCutsTest, Fig2ComponentsMatchDense) {
  const auto fig = testing::Fig2Fixture::make();
  const Timestamps ts(fig.exec);
  const NonatomicEvent x(fig.exec, fig.x_events, "X");
  const EventCuts dense(ts, x);
  const SparseEventCuts sparse(ts, x);
  for (const PosetCut which :
       {PosetCut::IntersectPast, PosetCut::UnionPast,
        PosetCut::IntersectFuture, PosetCut::UnionFuture}) {
    EXPECT_EQ(sparse.counts(which), dense.counts(which)) << to_string(which);
  }
}

TEST(SparseCutsTest, ComponentCostIsNodeCount) {
  const auto fig = testing::Fig2Fixture::make();
  const Timestamps ts(fig.exec);
  const NonatomicEvent x(fig.exec, fig.x_events, "X");
  const SparseEventCuts sparse(ts, x);
  ComparisonCounter counter;
  (void)sparse.component(PosetCut::UnionPast, 2, &counter);
  EXPECT_EQ(counter.integer_comparisons, x.node_count());
}

class SparseCutsPropertyTest
    : public ::testing::TestWithParam<WorkloadConfig> {};

TEST_P(SparseCutsPropertyTest, SparseMatchesDenseEverywhere) {
  const Execution exec = generate_execution(GetParam());
  const Timestamps ts(exec);
  Xoshiro256StarStar rng(GetParam().seed ^ 0x50a1);
  IntervalSpec spec;
  spec.node_count = std::max<std::size_t>(1, exec.process_count() / 2);
  spec.max_events_per_node = 3;
  for (int trial = 0; trial < 20; ++trial) {
    const NonatomicEvent x = random_interval(exec, rng, spec, "X");
    const EventCuts dense(ts, x);
    const SparseEventCuts sparse(ts, x);
    for (const PosetCut which :
         {PosetCut::IntersectPast, PosetCut::UnionPast,
          PosetCut::IntersectFuture, PosetCut::UnionFuture}) {
      ASSERT_EQ(sparse.counts(which), dense.counts(which));
    }
  }
}

TEST_P(SparseCutsPropertyTest, SparseEvaluationMatchesDense) {
  const Execution exec = generate_execution(GetParam());
  const Timestamps ts(exec);
  Xoshiro256StarStar rng(GetParam().seed ^ 0x50a2);
  IntervalSpec spec;
  spec.node_count = std::max<std::size_t>(1, exec.process_count() / 2);
  spec.max_events_per_node = 3;
  for (int trial = 0; trial < 30; ++trial) {
    const NonatomicEvent x = random_interval(exec, rng, spec, "X");
    const NonatomicEvent y = random_interval(exec, rng, spec, "Y");
    const EventCuts dx(ts, x), dy(ts, y);
    const SparseEventCuts sx(ts, x), sy(ts, y);
    for (const Relation r : kAllRelations) {
      ComparisonCounter dense_c, sparse_c;
      const bool dense_v = evaluate_fast(r, dx, dy, dense_c);
      const bool sparse_v = evaluate_fast_sparse(r, sx, sy, sparse_c);
      ASSERT_EQ(dense_v, sparse_v) << to_string(r);
      // Sparse spends at least as many comparisons (on-demand folds).
      ASSERT_GE(sparse_c.integer_comparisons, dense_c.integer_comparisons);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, SparseCutsPropertyTest,
                         ::testing::ValuesIn(property_sweep()),
                         testing::sweep_case_name);

}  // namespace
}  // namespace syncon
