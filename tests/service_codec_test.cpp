// Tenant wire codec conformance (DESIGN.md §3.15): scripted tenant traffic
// must survive the frame round-trip bit-for-bit, and every way a frame can
// be damaged — truncation, bit flips, cross-position splices — must end in
// quarantine: never an abort, never corruption of another frame's decode.
#include "service/tenant_codec.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/soak.hpp"

namespace syncon {
namespace {

using service::FrameKind;
using service::FrameView;
using service::PeekStatus;
using service::TenantFrameEncoder;
using service::TenantStreamDecoder;

TenantWorkload faulty_workload(std::uint64_t seed) {
  TenantWorkload workload;
  workload.report_link.drop_probability = 0.15;
  workload.report_link.duplicate_probability = 0.1;
  workload.report_link.reorder_probability = 0.2;
  workload.report_link.min_delay = 1;
  workload.report_link.max_delay = 24;
  workload.seed = seed;
  return workload;
}

/// Encodes a script as one frame per vector: hello first, then one per op.
std::vector<std::vector<std::uint8_t>> encode_frames(
    TenantFrameEncoder& encoder, std::uint64_t tenant,
    const TenantScript& script) {
  std::vector<std::vector<std::uint8_t>> frames;
  frames.emplace_back();
  encoder.encode_hello(tenant, script.processes, script.resync_chunk,
                       frames.back());
  for (const TenantOp& op : script.ops) {
    frames.emplace_back();
    encoder.encode_op(tenant, op, frames.back());
  }
  return frames;
}

TEST(ServiceCodecTest, ScriptReplayMatchesReferenceVerdicts) {
  const TenantScript script = generate_tenant_script(faulty_workload(7));
  EXPECT_GT(script.executed_events, 0u);
  EXPECT_FALSE(script.reference_verdicts.empty());
  EXPECT_EQ(script.reference_quarantined, 0u);
  EXPECT_EQ(run_tenant_script(script), script.reference_verdicts);
}

TEST(ServiceCodecTest, RoundTripReproducesOpsAndVerdicts) {
  const TenantScript script = generate_tenant_script(faulty_workload(11));
  TenantFrameEncoder encoder;
  const auto frames = encode_frames(encoder, 42, script);

  TenantStreamDecoder decoder(script.processes, 0);  // hello is seq 0
  TenantSessionCore core(script.processes, script.resync_chunk);
  std::size_t op_index = 0;
  for (std::size_t i = 1; i < frames.size(); ++i) {
    FrameView view;
    ASSERT_EQ(service::peek_frame(frames[i], view), PeekStatus::kOk);
    EXPECT_EQ(view.tenant, 42u);
    TenantOp op;
    ASSERT_TRUE(decoder.decode(view, op)) << "frame " << i;
    EXPECT_EQ(op, script.ops[op_index]) << "op " << op_index;
    core.apply(op);
    ++op_index;
  }
  EXPECT_EQ(op_index, script.ops.size());
  EXPECT_EQ(core.definite_verdicts(), script.reference_verdicts);
  EXPECT_EQ(core.quarantined(), 0u);
}

TEST(ServiceCodecTest, RoundTripPropertyOverSeeds) {
  // Property-style sweep: different seeds shuffle the fault schedule and
  // with it the op mix (report order, resync contents); every stream must
  // reproduce its ops exactly.
  for (const std::uint64_t seed : {1u, 2u, 3u, 19u, 23u}) {
    const TenantScript script = generate_tenant_script(faulty_workload(seed));
    TenantFrameEncoder encoder;
    const auto frames = encode_frames(encoder, seed, script);
    TenantStreamDecoder decoder(script.processes, 0);
    for (std::size_t i = 1; i < frames.size(); ++i) {
      FrameView view;
      ASSERT_EQ(service::peek_frame(frames[i], view), PeekStatus::kOk);
      TenantOp op;
      ASSERT_TRUE(decoder.decode(view, op)) << "seed " << seed;
      ASSERT_EQ(op, script.ops[i - 1]) << "seed " << seed << " op " << i - 1;
    }
  }
}

TEST(ServiceCodecTest, TruncatedFramesAskForMoreBytes) {
  const TenantScript script = generate_tenant_script(TenantWorkload{});
  TenantFrameEncoder encoder;
  const auto frames = encode_frames(encoder, 1, script);
  const std::vector<std::uint8_t>& frame = frames[2];
  for (std::size_t cut = 0; cut < frame.size(); ++cut) {
    FrameView view;
    const auto status = service::peek_frame(
        std::span<const std::uint8_t>(frame.data(), cut), view);
    EXPECT_EQ(status, PeekStatus::kNeedMore) << "cut at " << cut;
  }
}

TEST(ServiceCodecTest, EveryBitFlipIsDetected) {
  const TenantScript script = generate_tenant_script(TenantWorkload{});
  TenantFrameEncoder encoder;
  const auto frames = encode_frames(encoder, 1, script);
  const std::vector<std::uint8_t>& frame = frames[3];
  for (std::size_t byte = 0; byte < frame.size(); ++byte) {
    for (unsigned bit = 0; bit < 8; ++bit) {
      std::vector<std::uint8_t> flipped = frame;
      flipped[byte] ^= static_cast<std::uint8_t>(1u << bit);
      FrameView view;
      const auto status = service::peek_frame(flipped, view);
      // A flipped length prefix may leave the scanner waiting for bytes
      // that never come; everything else must fail the CRC. A clean parse
      // of damaged bytes is the one unacceptable outcome.
      EXPECT_NE(status, PeekStatus::kOk) << "byte " << byte << " bit " << bit;
    }
  }
}

TEST(ServiceCodecTest, ReplayedFrameIsQuarantinedWithoutStateDamage) {
  const TenantScript script = generate_tenant_script(faulty_workload(5));
  TenantFrameEncoder encoder;
  const auto frames = encode_frames(encoder, 9, script);

  TenantStreamDecoder decoder(script.processes, 0);
  TenantSessionCore core(script.processes, script.resync_chunk);
  std::uint64_t rejected = 0;
  for (std::size_t i = 1; i < frames.size(); ++i) {
    FrameView view;
    ASSERT_EQ(service::peek_frame(frames[i], view), PeekStatus::kOk);
    TenantOp op;
    ASSERT_TRUE(decoder.decode(view, op));
    core.apply(op);
    // Replay every 7th frame immediately — a spliced-in duplicate. The
    // sequence guard must reject it before it can touch the delta codecs.
    if (i % 7 == 0) {
      FrameView replay;
      ASSERT_EQ(service::peek_frame(frames[i], replay), PeekStatus::kOk);
      TenantOp ignored;
      EXPECT_FALSE(decoder.decode(replay, ignored));
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 0u);
  // The stream behind the splices decoded unharmed.
  EXPECT_EQ(core.definite_verdicts(), script.reference_verdicts);
  EXPECT_EQ(core.quarantined(), 0u);
}

TEST(ServiceCodecTest, CrossTenantSpliceCannotCrossStreams) {
  // Two tenants, frames spliced between their byte streams: routing is by
  // the payload's tenant tag, so a spliced frame lands at its *own*
  // tenant's decoder — out of sequence there, quarantined there, and the
  // victim stream never even sees it.
  const TenantScript script_a = generate_tenant_script(faulty_workload(31));
  const TenantScript script_b = generate_tenant_script(faulty_workload(37));
  TenantFrameEncoder encoder;
  const auto frames_a = encode_frames(encoder, 100, script_a);
  const auto frames_b = encode_frames(encoder, 101, script_b);

  TenantStreamDecoder decoder_a(script_a.processes, 0);
  TenantStreamDecoder decoder_b(script_b.processes, 0);
  TenantSessionCore core_a(script_a.processes, script_a.resync_chunk);
  TenantSessionCore core_b(script_b.processes, script_b.resync_chunk);

  const auto route = [&](const std::vector<std::uint8_t>& frame) -> bool {
    FrameView view;
    EXPECT_EQ(service::peek_frame(frame, view), PeekStatus::kOk);
    if (view.kind == FrameKind::kHello) return true;
    TenantOp op;
    if (view.tenant == 100) {
      if (!decoder_a.decode(view, op)) return false;
      core_a.apply(op);
    } else {
      if (!decoder_b.decode(view, op)) return false;
      core_b.apply(op);
    }
    return true;
  };

  std::uint64_t quarantined = 0;
  const std::size_t n = std::min(frames_a.size(), frames_b.size());
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_TRUE(route(frames_a[i]));
    // Splice: a mid-stream frame of A re-sent while B's stream is read.
    if (i > 4 && i % 5 == 0 && !route(frames_a[i - 3])) ++quarantined;
    EXPECT_TRUE(route(frames_b[i]));
  }
  for (std::size_t i = n; i < frames_a.size(); ++i) EXPECT_TRUE(route(frames_a[i]));
  for (std::size_t i = n; i < frames_b.size(); ++i) EXPECT_TRUE(route(frames_b[i]));

  EXPECT_GT(quarantined, 0u);
  EXPECT_EQ(core_a.definite_verdicts(), script_a.reference_verdicts);
  EXPECT_EQ(core_b.definite_verdicts(), script_b.reference_verdicts);
  EXPECT_EQ(core_a.quarantined(), 0u);
  EXPECT_EQ(core_b.quarantined(), 0u);
}

}  // namespace
}  // namespace syncon
