// Telemetry subsystem tests (DESIGN.md §3.8): histogram bucket semantics,
// registry behavior, exporter round-trips (Prometheus text vs JSON snapshot
// of the same registry), Chrome trace-event well-formedness, the
// disabled-mode zero-overhead contract, and the single-source health
// metrics of OnlineMonitor / DES fault stats.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <string>
#include <utility>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "model/timestamps.hpp"
#include "obs/export.hpp"
#include "obs/latency.hpp"
#include "obs/metrics.hpp"
#include "obs/serve.hpp"
#include "obs/span.hpp"
#include "obs/telemetry.hpp"
#include "online/online_monitor.hpp"
#include "online/online_system.hpp"
#include "relations/evaluator.hpp"
#include "sim/des.hpp"
#include "sim/faulty_channel.hpp"
#include "support/contracts.hpp"

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

// Counting allocator hooks for the disabled-mode zero-allocation test. The
// whole binary runs through these; individual tests look at deltas.
void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace syncon {
namespace {

// Minimal recursive-descent JSON checker — enough to assert the exporters
// emit well-formed documents (objects/arrays/strings/numbers/literals).
class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : s_(text) {}
  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool literal(std::string_view lit) {
    if (s_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }
  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\t' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }
  std::string_view s_;
  std::size_t pos_ = 0;
};

class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_enabled(false);
    obs::MetricRegistry::global().reset();
    obs::TraceRecorder::global().clear();
  }
  void TearDown() override {
    obs::set_enabled(false);
    obs::MetricRegistry::global().reset();
    obs::TraceRecorder::global().clear();
  }
};

TEST_F(ObsTest, EnabledFlagDefaultsOffAndToggles) {
  EXPECT_FALSE(obs::enabled());
  obs::set_enabled(true);
  EXPECT_TRUE(obs::enabled());
  obs::set_enabled(false);
  EXPECT_FALSE(obs::enabled());
}

TEST_F(ObsTest, CounterMergesShardsAndResets) {
  obs::Counter c;
  for (std::size_t shard = 0; shard < 40; ++shard) c.add(shard + 1, shard);
  EXPECT_EQ(c.total(), 40u * 41u / 2);
  c.reset();
  EXPECT_EQ(c.total(), 0u);
}

TEST_F(ObsTest, HistogramSpecFactories) {
  EXPECT_EQ(obs::HistogramSpec::exponential(1.0, 8.0).bounds,
            (std::vector<double>{1, 2, 4, 8}));
  EXPECT_EQ(obs::HistogramSpec::exponential(1.0, 5.0).bounds,
            (std::vector<double>{1, 2, 4, 8}));  // first bound >= hi ends it
  EXPECT_EQ(obs::HistogramSpec::linear(10.0, 10.0, 3).bounds,
            (std::vector<double>{10, 20, 30}));
  EXPECT_THROW(obs::HistogramSpec::exponential(0.0, 8.0), ContractViolation);
  EXPECT_THROW(obs::HistogramSpec::linear(0.0, 0.0, 3), ContractViolation);
}

TEST_F(ObsTest, HistogramBucketBoundariesUseLeSemantics) {
  obs::Histogram h(obs::HistogramSpec::linear(10.0, 10.0, 3));  // 10,20,30
  h.record(10.0);   // exactly on a bound -> that bucket (le semantics)
  h.record(10.5);   // above 10 -> next bucket
  h.record(20.0);
  h.record(30.0);
  h.record(30.01);  // past the last bound -> +Inf overflow bucket
  const obs::HistogramSnapshot snap = h.snapshot();
  ASSERT_EQ(snap.counts.size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(snap.counts[0], 1u);
  EXPECT_EQ(snap.counts[1], 2u);
  EXPECT_EQ(snap.counts[2], 1u);
  EXPECT_EQ(snap.counts[3], 1u);
  EXPECT_EQ(snap.count, 5u);
  EXPECT_DOUBLE_EQ(snap.sum, 10.0 + 10.5 + 20.0 + 30.0 + 30.01);
  EXPECT_DOUBLE_EQ(snap.min, 10.0);
  EXPECT_DOUBLE_EQ(snap.max, 30.01);
}

TEST_F(ObsTest, HistogramQuantilesInterpolateAndClamp) {
  obs::Histogram single(obs::HistogramSpec::exponential(1.0, 64.0));
  for (int i = 0; i < 10; ++i) single.record(5.0);
  const obs::HistogramSnapshot one = single.snapshot();
  // All samples equal: every quantile clamps to the observed [min, max].
  EXPECT_DOUBLE_EQ(one.quantile(0.0), 5.0);
  EXPECT_DOUBLE_EQ(one.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(one.quantile(1.0), 5.0);

  obs::Histogram spread(obs::HistogramSpec::linear(10.0, 10.0, 10));
  for (int v = 1; v <= 100; ++v) spread.record(v);
  const obs::HistogramSnapshot s = spread.snapshot();
  // Quantiles are monotone and bounded by the observed range.
  double last = s.quantile(0.0);
  for (const double q : {0.25, 0.5, 0.75, 0.95, 1.0}) {
    const double v = s.quantile(q);
    EXPECT_GE(v, last);
    last = v;
  }
  EXPECT_GE(s.quantile(0.0), 1.0);
  EXPECT_LE(s.quantile(1.0), 100.0);
  EXPECT_NEAR(s.quantile(0.5), 50.0, 10.0);  // bucket interpolation

  obs::Histogram empty(obs::HistogramSpec::linear(1.0, 1.0, 2));
  EXPECT_THROW(empty.snapshot().quantile(0.5), ContractViolation);
  EXPECT_THROW(s.quantile(1.5), ContractViolation);
}

TEST_F(ObsTest, RegistryFindsOrCreatesAndKeepsReferencesStable) {
  auto& registry = obs::MetricRegistry::global();
  obs::Counter& a = registry.counter("syncon_test_stable");
  obs::Counter& b = registry.counter("syncon_test_stable");
  EXPECT_EQ(&a, &b);
  a.add(3);
  registry.reset();
  EXPECT_EQ(a.total(), 0u);  // zeroed, not invalidated
  a.add(2);
  EXPECT_EQ(registry.counter("syncon_test_stable").total(), 2u);

  const obs::HistogramSpec spec = obs::HistogramSpec::linear(1.0, 1.0, 4);
  registry.histogram("syncon_test_hist", spec);
  EXPECT_THROW(
      registry.histogram("syncon_test_hist",
                         obs::HistogramSpec::linear(1.0, 2.0, 4)),
      ContractViolation);
  EXPECT_THROW(registry.counter(""), ContractViolation);
}

TEST_F(ObsTest, SnapshotIsNameSortedAndQueryable) {
  auto& registry = obs::MetricRegistry::global();
  registry.counter("syncon_test_zz").add(7);
  registry.counter("syncon_test_aa").add(1);
  registry.gauge("syncon_test_mm").set(-4);
  const obs::MetricsSnapshot snap = registry.snapshot();
  for (std::size_t i = 1; i < snap.entries.size(); ++i) {
    EXPECT_LT(snap.entries[i - 1].name, snap.entries[i].name);
  }
  EXPECT_EQ(snap.counter_value("syncon_test_zz"), 7u);
  const auto* gauge = snap.find("syncon_test_mm");
  ASSERT_NE(gauge, nullptr);
  EXPECT_EQ(gauge->gauge_value, -4);
  EXPECT_EQ(snap.find("syncon_test_absent"), nullptr);
  EXPECT_THROW(snap.counter_value("syncon_test_absent"), ContractViolation);
}

TEST_F(ObsTest, GaugeSetMaxTracksHighWaterMark) {
  obs::Gauge& peak = obs::MetricRegistry::global().gauge("syncon_test_peak");
  peak.set(5);
  peak.set_max(3);  // below the current value: no change
  EXPECT_EQ(peak.value(), 5);
  peak.set_max(9);
  EXPECT_EQ(peak.value(), 9);
  peak.set_max(9);  // equal: no change
  EXPECT_EQ(peak.value(), 9);
  peak.set_max(-2);
  EXPECT_EQ(peak.value(), 9);
}

TEST_F(ObsTest, SanitizeMetricNameMapsToPrometheusCharset) {
  EXPECT_EQ(obs::sanitize_metric_name("relation/evaluate.us"),
            "relation_evaluate_us");
  EXPECT_EQ(obs::sanitize_metric_name("9lives"), "_9lives");
  EXPECT_EQ(obs::sanitize_metric_name("syncon_link_dropped{from=\"0\",to=\"1\"}"),
            "syncon_link_dropped{from=\"0\",to=\"1\"}");
}

TEST_F(ObsTest, PrometheusAndJsonExportTheSameValues) {
  auto& registry = obs::MetricRegistry::global();
  registry.counter("syncon_test_counter").add(5);
  registry.gauge("syncon_test_gauge").set(-3);
  registry.gauge("syncon_link_dropped{from=\"0\",to=\"1\"}").set(2);
  obs::Histogram& h = registry.histogram(
      "syncon_test_latency_us", obs::HistogramSpec::linear(10.0, 10.0, 2));
  h.record(10.0);
  h.record(15.0);
  h.record(99.0);
  const obs::MetricsSnapshot snap = registry.snapshot();

  const std::string prom = obs::prometheus_to_string(snap);
  EXPECT_NE(prom.find("# TYPE syncon_test_counter counter"),
            std::string::npos);
  EXPECT_NE(prom.find("syncon_test_counter 5"), std::string::npos);
  EXPECT_NE(prom.find("syncon_test_gauge -3"), std::string::npos);
  // Labeled gauge: the TYPE line names the base family only.
  EXPECT_NE(prom.find("# TYPE syncon_link_dropped gauge"), std::string::npos);
  EXPECT_NE(prom.find("syncon_link_dropped{from=\"0\",to=\"1\"} 2"),
            std::string::npos);
  // Histogram: cumulative buckets + implicit +Inf + _sum/_count.
  EXPECT_NE(prom.find("syncon_test_latency_us_bucket{le=\"10\"} 1"),
            std::string::npos);
  EXPECT_NE(prom.find("syncon_test_latency_us_bucket{le=\"20\"} 2"),
            std::string::npos);
  EXPECT_NE(prom.find("syncon_test_latency_us_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(prom.find("syncon_test_latency_us_sum 124"), std::string::npos);
  EXPECT_NE(prom.find("syncon_test_latency_us_count 3"), std::string::npos);

  const std::string json = obs::json_to_string(snap, "obs_test");
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  // The JSON snapshot renders the same registry values.
  EXPECT_NE(json.find("\"syncon_test_counter\": 5"), std::string::npos);
  EXPECT_NE(json.find("\"syncon_test_gauge\": -3"), std::string::npos);
  EXPECT_NE(json.find("\"run\": \"obs_test\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"sum\": 124"), std::string::npos);
}

TEST_F(ObsTest, TraceRecorderRingKeepsNewestEvents) {
  obs::TraceRecorder recorder(4);
  for (std::uint64_t i = 0; i < 6; ++i) recorder.record("span", i * 10, 5);
  EXPECT_EQ(recorder.recorded_total(), 6u);
  const auto events = recorder.events();
  ASSERT_EQ(events.size(), 4u);  // oldest two overwritten
  EXPECT_EQ(events.front().start_us, 20u);
  EXPECT_EQ(events.back().start_us, 50u);
  recorder.clear();
  EXPECT_TRUE(recorder.events().empty());
  EXPECT_EQ(recorder.recorded_total(), 0u);
}

TEST_F(ObsTest, SpanGuardRecordsOnlyWhenEnabled) {
  { SYNCON_SPAN("test/disabled"); }
  EXPECT_EQ(obs::TraceRecorder::global().recorded_total(), 0u);
  obs::set_enabled(true);
  { SYNCON_SPAN("test/enabled"); }
  obs::set_enabled(false);
  const auto events = obs::TraceRecorder::global().events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "test/enabled");
  const auto stats = obs::aggregate_spans(obs::TraceRecorder::global());
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].name, "test/enabled");
  EXPECT_EQ(stats[0].count, 1u);
}

TEST_F(ObsTest, DisabledSpansAllocateNothingAndRecordNothing) {
  const std::uint64_t records_before =
      obs::TraceRecorder::global().recorded_total();
  // Warm up any lazy state before measuring.
  { SYNCON_SPAN("test/warmup"); }
  const std::uint64_t allocs_before =
      g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    SYNCON_SPAN("test/hot");
  }
  EXPECT_EQ(g_allocations.load(std::memory_order_relaxed), allocs_before);
  EXPECT_EQ(obs::TraceRecorder::global().recorded_total(), records_before);
}

TEST_F(ObsTest, ChromeTraceExportIsWellFormedJson) {
  obs::TraceRecorder recorder(16);
  recorder.record("relation/evaluate", 100, 40);
  recorder.record("batch/sweep", 90, 300);
  std::ostringstream oss;
  obs::write_chrome_trace(oss, recorder);
  const std::string trace = oss.str();
  EXPECT_TRUE(JsonChecker(trace).valid()) << trace;
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\": \"relation/evaluate\""), std::string::npos);
  EXPECT_NE(trace.find("\"ts\": 100"), std::string::npos);
  EXPECT_NE(trace.find("\"dur\": 40"), std::string::npos);
}

// --- single-source health metrics (OnlineMonitor / DES / FaultyNetwork) ---

TEST_F(ObsTest, MonitorHealthReportAndRegistryAgree) {
  OnlineSystem system(2);
  OnlineMonitor monitor(2);
  monitor.begin("a");
  const WireMessage m1 = system.send(0);
  const WireMessage m2 = system.send(0);
  // Deliver only the second report: its clock vouches for the first.
  monitor.ingest("a", m2);
  monitor.ingest("a", m2);  // duplicate
  EXPECT_TRUE(monitor.degraded());
  EXPECT_EQ(monitor.missing_reports().size(), 1u);

  monitor.publish_metrics();
  const obs::MetricsSnapshot snap = obs::MetricRegistry::global().snapshot();
  const auto health = monitor.health_metrics();
  ASSERT_FALSE(health.empty());
  for (const OnlineMonitor::HealthMetric& hm : health) {
    const auto* e = snap.find(hm.metric);
    ASSERT_NE(e, nullptr) << hm.metric;
    EXPECT_EQ(e->gauge_value, static_cast<std::int64_t>(hm.value))
        << hm.metric;
  }
  // The list is in turn what the getters report.
  const auto value_of = [&](std::string_view name) {
    for (const auto& hm : health) {
      if (hm.metric == name) return hm.value;
    }
    ADD_FAILURE() << "no health metric " << name;
    return std::uint64_t{0};
  };
  EXPECT_EQ(value_of("syncon_monitor_duplicate_reports"),
            monitor.duplicate_reports());
  EXPECT_EQ(value_of("syncon_monitor_known_lost_reports"),
            monitor.missing_reports().size());
  EXPECT_EQ(value_of("syncon_monitor_definite_fires"),
            monitor.definite_fires());
  EXPECT_EQ(value_of("syncon_monitor_pending_fires"),
            monitor.pending_fires());
  (void)m1;
}

TEST_F(ObsTest, DesFaultStatsPublishAsGauges) {
  class Chatter : public DesProcess {
   public:
    void on_start(DesContext& ctx) override {
      for (int i = 0; i < 40; ++i) ctx.send(1, 1, i, 10);
    }
  };
  std::vector<std::unique_ptr<DesProcess>> procs;
  procs.push_back(std::make_unique<Chatter>());
  procs.push_back(std::make_unique<DesProcess>());
  DesConfig cfg;
  cfg.loss_probability = 0.3;
  cfg.duplicate_probability = 0.3;
  cfg.seed = 11;
  DesEngine engine(std::move(procs), cfg);
  engine.run(1'000'000);
  engine.publish_metrics();
  const DesFaultStats& stats = engine.fault_stats();
  EXPECT_GT(stats.lost + stats.duplicates_scheduled, 0u);
  const obs::MetricsSnapshot snap = obs::MetricRegistry::global().snapshot();
  const auto gauge = [&](std::string_view name) {
    const auto* e = snap.find(name);
    EXPECT_NE(e, nullptr) << name;
    return e == nullptr ? std::int64_t{-1} : e->gauge_value;
  };
  EXPECT_EQ(gauge("syncon_des_lost_messages"),
            static_cast<std::int64_t>(stats.lost));
  EXPECT_EQ(gauge("syncon_des_duplicates_scheduled"),
            static_cast<std::int64_t>(stats.duplicates_scheduled));
  EXPECT_EQ(gauge("syncon_des_duplicates_suppressed"),
            static_cast<std::int64_t>(stats.duplicates_suppressed));
  EXPECT_EQ(gauge("syncon_des_reordered_messages"),
            static_cast<std::int64_t>(stats.reordered));
  EXPECT_EQ(gauge("syncon_des_crash_discarded"),
            static_cast<std::int64_t>(stats.crash_discarded));
  EXPECT_EQ(gauge("syncon_des_events_executed"),
            static_cast<std::int64_t>(engine.events_executed()));
}

TEST_F(ObsTest, FaultyNetworkPublishesPerLinkGauges) {
  FaultPlan plan;
  plan.link.drop_probability = 0.5;
  plan.seed = 5;
  FaultyNetwork net(2, plan);
  OnlineSystem system(2);
  for (int i = 0; i < 30; ++i) {
    net.push(0, 1, system.send(0), static_cast<TimePoint>(i + 1));
  }
  (void)net.pop_ready(1, 1'000'000);
  net.publish_metrics();
  const ChannelStats total = net.stats();
  EXPECT_GT(total.dropped, 0u);
  const obs::MetricsSnapshot snap = obs::MetricRegistry::global().snapshot();
  const auto* dropped = snap.find("syncon_link_dropped{from=\"0\",to=\"1\"}");
  ASSERT_NE(dropped, nullptr);
  EXPECT_EQ(dropped->gauge_value, static_cast<std::int64_t>(total.dropped));
  const auto* agg = snap.find("syncon_network_delivered");
  ASSERT_NE(agg, nullptr);
  EXPECT_EQ(agg->gauge_value, static_cast<std::int64_t>(total.delivered));
  // And the Prometheus exposition renders the labeled family legally.
  const std::string prom = obs::prometheus_to_string(snap);
  EXPECT_NE(prom.find("# TYPE syncon_link_dropped gauge"), std::string::npos);
  EXPECT_NE(prom.find("syncon_link_dropped{from=\"0\",to=\"1\"} " +
                      std::to_string(total.dropped)),
            std::string::npos);
}

// --- end-to-end: DES -> stamping -> evaluation -> delivery -> resync ------

class PipelinePinger : public DesProcess {
 public:
  void on_start(DesContext& ctx) override {
    const EventId e = ctx.send(1, 1, 0, 100);
    ctx.mark("ping", e);
  }
  void on_message(DesContext& ctx, const DesMessage& m) override {
    ctx.mark("pong-received", ctx.current_receive());
    if (m.value < 3) {
      const EventId e = ctx.send(1, 1, m.value + 1, 100);
      ctx.mark("ping", e);
    }
  }
};

class PipelinePonger : public DesProcess {
 public:
  void on_message(DesContext& ctx, const DesMessage& m) override {
    ctx.mark("pong", ctx.send(0, 2, m.value, 100));
  }
};

TEST_F(ObsTest, PipelineTraceCoversAllPhases) {
  obs::set_enabled(true);

  // 1. Simulate (des/run).
  std::vector<std::unique_ptr<DesProcess>> procs;
  procs.push_back(std::make_unique<PipelinePinger>());
  procs.push_back(std::make_unique<PipelinePonger>());
  DesEngine engine(std::move(procs), DesConfig{});
  engine.run(10'000'000);
  auto result = engine.finish();

  // 2. Stamp (model/stamp) and evaluate relations (relation/evaluate).
  const Timestamps ts(*result.execution);
  RelationEvaluator eval(ts);
  ASSERT_GE(result.intervals.size(), 2u);
  const EventHandle hx = eval.add_event(std::move(result.intervals[0]));
  const EventHandle hy = eval.add_event(std::move(result.intervals[1]));
  (void)eval.all_holding(hx, hy);

  // 3. Online delivery (online/deliver) with a loss, then recovery
  //    (online/resync_serve + monitor/ingest).
  OnlineSystem system(2);
  OnlineMonitor monitor(2);
  monitor.begin("a");
  const WireMessage m1 = system.send(0);
  const WireMessage m2 = system.send(0);
  (void)system.deliver(1, m2);
  monitor.ingest("a", m2);  // m1's report was lost: gap opens
  EXPECT_TRUE(monitor.missing_reports().size() == 1);
  const auto replies = system.serve(monitor.resync_request());
  ASSERT_EQ(replies.size(), 1u);
  monitor.ingest("a", replies[0]);  // gap closes
  EXPECT_TRUE(monitor.missing_reports().empty());
  obs::set_enabled(false);

  std::ostringstream oss;
  obs::write_chrome_trace(oss, obs::TraceRecorder::global());
  const std::string trace = oss.str();
  EXPECT_TRUE(JsonChecker(trace).valid());
  for (const char* span : {"des/run", "model/stamp", "relation/evaluate",
                           "online/deliver", "online/resync_serve",
                           "monitor/ingest"}) {
    EXPECT_NE(trace.find("\"name\": \"" + std::string(span) + "\""),
              std::string::npos)
        << "missing span " << span;
  }
  // The recovered gap fed the gap-open-duration histogram.
  const obs::MetricsSnapshot snap = obs::MetricRegistry::global().snapshot();
  const auto* gap = snap.find("syncon_monitor_gap_open_reports");
  ASSERT_NE(gap, nullptr);
  EXPECT_GE(gap->histogram->count, 1u);
  (void)m1;
}

// --- exporter edge cases (DESIGN.md §3.13) -----------------------------------

TEST_F(ObsTest, SanitizeMetricNameHandlesEmptyAndLabelOnlyNames) {
  EXPECT_EQ(obs::sanitize_metric_name(""), "_");
  // A label-only name has an empty base; the base is still made legal.
  EXPECT_EQ(obs::sanitize_metric_name("{le=\"1\"}"), "_{le=\"1\"}");
  EXPECT_EQ(obs::sanitize_metric_name("***"), "___");
  EXPECT_EQ(obs::sanitize_metric_name("42{q=\"0.5\"}"), "_42{q=\"0.5\"}");
}

TEST_F(ObsTest, JsonEscapeControlAndNonAsciiBytes) {
  EXPECT_EQ(obs::json_escape("a\x01" "b"), "a\\u0001b");
  EXPECT_EQ(obs::json_escape("\x7f"), "\\u007f");
  EXPECT_EQ(obs::json_escape("tab\there\nline"), "tab\\there\\nline");
  // Non-UTF-8 garbage in a run label must still yield ASCII-only JSON.
  const std::string garbage("run\xff\xfe ok");
  const std::string escaped = obs::json_escape(garbage);
  EXPECT_EQ(escaped, "run\\u00ff\\u00fe ok");
  EXPECT_TRUE(JsonChecker("\"" + escaped + "\"").valid());
}

TEST_F(ObsTest, HistogramOverflowBucketQuantileStaysCoherent) {
  // Live histogram: every sample lands past the last bound; the quantile
  // interpolates toward the tracked max instead of being stuck at a bound.
  obs::Histogram& h = obs::MetricRegistry::global().histogram(
      "syncon_test_overflow_us", obs::HistogramSpec::linear(1.0, 1.0, 2));
  h.record(100.0);
  h.record(200.0);
  const obs::HistogramSnapshot live = h.snapshot();
  EXPECT_DOUBLE_EQ(live.quantile(1.0), 200.0);
  EXPECT_GE(live.quantile(0.25), 2.0);
  EXPECT_LE(live.quantile(0.25), 200.0);

  // Hand-assembled snapshot (merged from bucket counts alone, min/max never
  // tracked): the open-ended bucket anchors at its lower bound rather than
  // interpolating backwards toward a stale max below it.
  obs::HistogramSnapshot merged;
  merged.bounds = {1.0, 2.0};
  merged.counts = {0, 0, 4};
  merged.count = 4;
  merged.min = 0.0;
  merged.max = 0.0;
  EXPECT_DOUBLE_EQ(merged.quantile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(merged.quantile(1.0), 2.0);
}

// --- detection-latency waterfalls --------------------------------------------

TEST_F(ObsTest, WaterfallMonotoneStagesSumToTotal) {
  obs::Waterfall fall;
  fall.x = "A#1";
  fall.y = "B#1";
  fall.holds = true;
  fall.definite = true;
  fall.start_us = 100;
  fall.stages = {{"observe", 100, 5},
                 {"track", 105, 0},
                 {"gap_wait", 105, 7},
                 {"evaluate", 112, 2},
                 {"fire", 114, 1}};
  EXPECT_TRUE(fall.monotone());
  EXPECT_EQ(fall.total_us(), 15u);
  std::uint64_t sum = 0;
  for (const obs::StageSpan& s : fall.stages) sum += s.duration_us;
  EXPECT_EQ(sum, fall.total_us());

  obs::Waterfall gap = fall;
  gap.stages[2].start_us = 120;  // hole between track and gap_wait
  EXPECT_FALSE(gap.monotone());
  obs::Waterfall unanchored = fall;
  unanchored.start_us = 90;  // first stage no longer starts at start_us
  EXPECT_FALSE(unanchored.monotone());

  std::ostringstream text;
  const std::vector<obs::Waterfall> falls{fall};
  obs::write_waterfalls(text, falls);
  EXPECT_NE(text.str().find("observe"), std::string::npos);
  std::ostringstream json;
  obs::write_waterfalls_json(json, falls);
  EXPECT_TRUE(JsonChecker(json.str()).valid()) << json.str();
  EXPECT_NE(json.str().find("syncon-waterfalls-v1"), std::string::npos);
}

TEST_F(ObsTest, RecordStageLatencyFeedsHistogramFamily) {
  obs::set_enabled(true);
  obs::record_stage_latency("evaluate", 42);
  obs::record_stage_latency("resync_wait", 7);
  const obs::MetricsSnapshot snap = obs::MetricRegistry::global().snapshot();
  const auto* evaluate = snap.find("syncon_detect_latency_evaluate_us");
  ASSERT_NE(evaluate, nullptr);
  EXPECT_EQ(evaluate->histogram->count, 1u);
  ASSERT_NE(snap.find("syncon_detect_latency_resync_wait_us"), nullptr);
}

// --- scrape endpoint ---------------------------------------------------------

std::string scrape(obs::ScrapeServer& server, const char* path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  const std::string request =
      std::string("GET ") + path + " HTTP/1.0\r\n\r\n";
  EXPECT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  EXPECT_TRUE(server.serve_once(2000));
  std::string response;
  char buffer[4096];
  ssize_t n;
  while ((n = ::read(fd, buffer, sizeof buffer)) > 0) {
    response.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST_F(ObsTest, ScrapeServerServesMetricsTelemetryAndHealth) {
  obs::set_enabled(true);
  obs::MetricRegistry::global().counter("syncon_scrape_probe_total").add(3);
  obs::ScrapeServer::Options options;
  options.run_label = "obs_test";
  obs::ScrapeServer server(options);
  ASSERT_TRUE(server.ok());
  ASSERT_NE(server.port(), 0);

  const std::string health = scrape(server, "/healthz");
  EXPECT_NE(health.find("200"), std::string::npos);
  EXPECT_NE(health.find("ok"), std::string::npos);

  const std::string metrics = scrape(server, "/metrics");
  EXPECT_NE(metrics.find("syncon_scrape_probe_total 3"), std::string::npos);

  const std::string telemetry = scrape(server, "/telemetry.json");
  const std::size_t body = telemetry.find("\r\n\r\n");
  ASSERT_NE(body, std::string::npos);
  EXPECT_TRUE(JsonChecker(telemetry.substr(body + 4)).valid());
  EXPECT_NE(telemetry.find("obs_test"), std::string::npos);

  EXPECT_NE(scrape(server, "/no-such-route").find("404"), std::string::npos);
  EXPECT_EQ(server.requests_served(), 4u);
}

}  // namespace
}  // namespace syncon
