#include <gtest/gtest.h>

#include "helpers.hpp"
#include "model/execution.hpp"
#include "support/contracts.hpp"

namespace syncon {
namespace {

using testing::two_process_message;

TEST(ExecutionBuilderTest, LocalEventsNumberSequentially) {
  ExecutionBuilder b(2);
  EXPECT_EQ(b.local(0), (EventId{0, 1}));
  EXPECT_EQ(b.local(0), (EventId{0, 2}));
  EXPECT_EQ(b.local(1), (EventId{1, 1}));
  const Execution exec = b.build();
  EXPECT_EQ(exec.real_count(0), 2u);
  EXPECT_EQ(exec.real_count(1), 1u);
  EXPECT_EQ(exec.total_count(0), 4u);
}

TEST(ExecutionBuilderTest, NeedsAtLeastOneProcess) {
  EXPECT_THROW(ExecutionBuilder(0), ContractViolation);
}

TEST(ExecutionBuilderTest, RejectsSelfMessages) {
  ExecutionBuilder b(2);
  const MessageToken t = b.send(0);
  EXPECT_THROW(b.receive(0, t), ContractViolation);
}

TEST(ExecutionBuilderTest, RejectsDoubleBuild) {
  ExecutionBuilder b(1);
  b.local(0);
  (void)b.build();
  EXPECT_THROW(b.build(), ContractViolation);
  EXPECT_THROW(b.local(0), ContractViolation);
}

TEST(ExecutionBuilderTest, SendReportsItsEvent) {
  ExecutionBuilder b(2);
  EventId e{};
  const MessageToken t = b.send(0, &e);
  EXPECT_EQ(e, (EventId{0, 1}));
  EXPECT_EQ(t.source(), e);
}

TEST(ExecutionBuilderTest, MulticastTokensAreReusable) {
  ExecutionBuilder b(3);
  const MessageToken t = b.send(0);
  const EventId r1 = b.receive(1, t);
  const EventId r2 = b.receive(2, t);
  const Execution exec = b.build();
  ASSERT_EQ(exec.incoming(r1).size(), 1u);
  ASSERT_EQ(exec.incoming(r2).size(), 1u);
  EXPECT_EQ(exec.incoming(r1)[0], t.source());
  EXPECT_EQ(exec.incoming(r2)[0], t.source());
  EXPECT_EQ(exec.messages().size(), 2u);
}

TEST(ExecutionBuilderTest, ReceiveAllJoinsSeveralMessages) {
  ExecutionBuilder b(3);
  const MessageToken a = b.send(1);
  const MessageToken c = b.send(2);
  const std::vector<MessageToken> tokens{a, c};
  const EventId join = b.receive_all(0, tokens);
  const Execution exec = b.build();
  ASSERT_EQ(exec.incoming(join).size(), 2u);
}

TEST(ExecutionBuilderTest, ReceiveFromValidatesSources) {
  ExecutionBuilder b(2);
  b.local(0);
  const EventId ok{0, 1};
  const EventId missing{0, 2};
  const EventId self{1, 1};
  EXPECT_NO_THROW(b.receive_from(1, std::vector<EventId>{ok}));
  EXPECT_THROW(b.receive_from(1, std::vector<EventId>{missing}),
               ContractViolation);
  EXPECT_THROW(b.receive_from(1, std::vector<EventId>{self}),
               ContractViolation);
}

TEST(ExecutionTest, DummyClassification) {
  const Execution exec = two_process_message();
  EXPECT_TRUE(exec.is_initial(exec.initial(0)));
  EXPECT_TRUE(exec.is_final(exec.final(0)));
  EXPECT_TRUE(exec.is_dummy(EventId{0, 0}));
  EXPECT_TRUE(exec.is_dummy(EventId{0, 4}));  // ⊤_0 for 3 real events
  EXPECT_FALSE(exec.is_dummy(EventId{0, 2}));
  EXPECT_TRUE(exec.is_real(EventId{0, 1}));
  EXPECT_FALSE(exec.is_real(EventId{0, 0}));
  EXPECT_FALSE(exec.is_real(EventId{0, 9}));
}

TEST(ExecutionTest, EventAccessorChecksRange) {
  const Execution exec = two_process_message();
  EXPECT_NO_THROW(exec.event(0, 4));
  EXPECT_THROW(exec.event(0, 5), ContractViolation);
  EXPECT_THROW(exec.event(2, 0), ContractViolation);
}

TEST(ExecutionTest, TopologicalOrderRespectsMessages) {
  const Execution exec = two_process_message();
  const auto& order = exec.topological_order();
  ASSERT_EQ(order.size(), 6u);
  // Every message source appears before its target.
  for (const Message& m : exec.messages()) {
    EXPECT_LT(exec.topological_index(m.source),
              exec.topological_index(m.target));
  }
  // Per-process order is increasing.
  EXPECT_LT(exec.topological_index(EventId{0, 1}),
            exec.topological_index(EventId{0, 2}));
}

TEST(ExecutionTest, IncomingOfDummyIsEmpty) {
  const Execution exec = two_process_message();
  EXPECT_TRUE(exec.incoming(exec.initial(1)).empty());
  EXPECT_TRUE(exec.incoming(exec.final(1)).empty());
}

TEST(ExecutionTest, ProcessWithNoEventsIsLegal) {
  ExecutionBuilder b(3);
  b.local(0);
  const Execution exec = b.build();
  EXPECT_EQ(exec.real_count(2), 0u);
  EXPECT_EQ(exec.total_count(2), 2u);
  EXPECT_TRUE(exec.is_final(EventId{2, 1}));
}

}  // namespace
}  // namespace syncon
