// Causal trace export (DESIGN.md §3.13): the span tree must be a faithful
// rendering of the happens-before order — reachability over parent +
// follows-from edges coincides bit for bit with the strict vector-clock
// order, on clean generated workloads and on faulty soak runs alike.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "model/timestamps.hpp"
#include "obs/causal_trace.hpp"
#include "sim/interval_picker.hpp"
#include "sim/soak.hpp"
#include "sim/workload.hpp"

namespace syncon {
namespace {

Execution make_exec(std::size_t procs, std::size_t events, Topology topo,
                    std::uint64_t seed) {
  WorkloadConfig cfg;
  cfg.process_count = procs;
  cfg.events_per_process = events;
  cfg.topology = topo;
  cfg.seed = seed;
  return generate_execution(cfg);
}

/// Enough JSON validation for the exporters: every quote/brace/bracket is
/// balanced outside strings and escapes are legal.
bool balanced_json(const std::string& text) {
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    else if (c == '{' || c == '[') ++depth;
    else if (c == '}' || c == ']') {
      if (--depth < 0) return false;
    }
  }
  return depth == 0 && !in_string;
}

TEST(CausalTraceTest, SpanReachabilityMatchesHappensBeforeAcrossTopologies) {
  for (const Topology topo : {Topology::Random, Topology::Ring,
                              Topology::ClientServer, Topology::Broadcast,
                              Topology::Phases}) {
    for (const std::uint64_t seed : {1ull, 7ull, 23ull}) {
      const Execution exec = make_exec(5, 14, topo, seed);
      const Timestamps stamps(exec);
      const obs::CausalTrace trace = obs::build_causal_trace(exec, stamps);
      std::string why;
      EXPECT_TRUE(obs::verify_causal_consistency(trace, exec, stamps, &why))
          << "topology " << static_cast<int>(topo) << " seed " << seed
          << ": " << why;
    }
  }
}

TEST(CausalTraceTest, BuildIsDeterministic) {
  const Execution exec = make_exec(4, 10, Topology::Random, 5);
  const Timestamps stamps(exec);
  const obs::CausalTrace a = obs::build_causal_trace(exec, stamps);
  const obs::CausalTrace b = obs::build_causal_trace(exec, stamps);
  ASSERT_EQ(a.spans.size(), b.spans.size());
  EXPECT_EQ(a.trace_id, b.trace_id);
  for (std::size_t i = 0; i < a.spans.size(); ++i) {
    EXPECT_EQ(a.spans[i].id, b.spans[i].id);
    EXPECT_EQ(a.spans[i].follows_from, b.spans[i].follows_from);
  }
}

TEST(CausalTraceTest, SpanShapeAndIds) {
  const Execution exec = make_exec(3, 8, Topology::Ring, 2);
  const Timestamps stamps(exec);
  const obs::CausalTrace trace = obs::build_causal_trace(exec, stamps);

  EXPECT_EQ(obs::count_spans_of_kind(trace, "process"), 3u);
  EXPECT_EQ(obs::count_spans_of_kind(trace, "event"),
            exec.total_real_count());
  EXPECT_EQ(obs::count_spans_of_kind(trace, "message"),
            exec.messages().size());

  // Every event span hangs off its process lane's root span.
  for (ProcessId p = 0; p < exec.process_count(); ++p) {
    ASSERT_NE(trace.find(obs::process_span_id(p)), nullptr);
  }
  const EventId first{0, 1};
  const obs::CausalSpan* span = trace.find(obs::event_span_id(first));
  ASSERT_NE(span, nullptr);
  EXPECT_EQ(span->parent, obs::process_span_id(0));
  EXPECT_EQ(span->process, 0u);

  // Message spans are children of their send event.
  for (const Message& m : exec.messages()) {
    const obs::CausalSpan* msg = trace.find(obs::message_span_id(m.source));
    ASSERT_NE(msg, nullptr);
    EXPECT_EQ(msg->parent, obs::event_span_id(m.source));
    EXPECT_GE(msg->end_us, msg->start_us);
  }
}

TEST(CausalTraceTest, TamperedTracesFailVerification) {
  const Execution exec = make_exec(4, 8, Topology::Random, 11);
  const Timestamps stamps(exec);

  // Dropping a causal link breaks u ≺ v ⟹ reachable.
  obs::CausalTrace missing = obs::build_causal_trace(exec, stamps);
  bool dropped = false;
  for (obs::CausalSpan& span : missing.spans) {
    if (span.kind == "event" && !span.follows_from.empty()) {
      span.follows_from.clear();
      dropped = true;
      break;
    }
  }
  ASSERT_TRUE(dropped);
  std::string why;
  EXPECT_FALSE(obs::verify_causal_consistency(missing, exec, stamps, &why));
  EXPECT_FALSE(why.empty());

  // Linking two concurrent events breaks reachable ⟹ u ≺ v.
  obs::CausalTrace bogus = obs::build_causal_trace(exec, stamps);
  bool added = false;
  const auto order = exec.topological_order();
  for (std::size_t j = 1; j < order.size() && !added; ++j) {
    for (std::size_t i = 0; i < j && !added; ++i) {
      if (!stamps.lt(order[i], order[j])) {
        for (obs::CausalSpan& span : bogus.spans) {
          if (span.id == obs::event_span_id(order[j])) {
            span.follows_from.push_back(obs::event_span_id(order[i]));
            added = true;
            break;
          }
        }
      }
    }
  }
  ASSERT_TRUE(added);
  EXPECT_FALSE(obs::verify_causal_consistency(bogus, exec, stamps));
}

TEST(CausalTraceTest, IntervalSpansCoverComponentEvents) {
  const Execution exec = make_exec(4, 12, Topology::Random, 3);
  const Timestamps stamps(exec);
  const std::vector<NonatomicEvent> intervals = windowed_intervals(exec, 6);
  obs::CausalTrace trace = obs::build_causal_trace(exec, stamps);
  const std::size_t before = trace.spans.size();
  obs::append_interval_spans(trace, exec, intervals);
  EXPECT_EQ(trace.spans.size() - before, intervals.size());
  EXPECT_EQ(obs::count_spans_of_kind(trace, "interval"), intervals.size());
  // Interval spans only add structure on top of the event layer; the
  // property must keep holding.
  EXPECT_TRUE(obs::verify_causal_consistency(trace, exec, stamps));
}

TEST(CausalTraceTest, FaultySoakRunExportsResyncAndVerdictSpans) {
  SoakConfig config;
  config.processes = 4;
  config.cycles = 400;
  config.compact_every = 0;  // keep the execution materializable
  config.report_link.drop_probability = 0.10;
  config.report_link.duplicate_probability = 0.05;
  config.seed = 97;
  config.capture_observability = true;
  const SoakResult result = run_soak(config);
  ASSERT_TRUE(result.execution != nullptr);
  ASSERT_GT(result.resync_rounds, 0u);
  ASSERT_FALSE(result.waterfalls.empty());

  const Timestamps stamps(*result.execution);
  obs::CausalTrace trace = obs::build_causal_trace(*result.execution, stamps);
  obs::append_monitor_spans(trace, result.waterfalls);
  obs::append_flight_spans(trace, result.flight);

  std::string why;
  EXPECT_TRUE(
      obs::verify_causal_consistency(trace, *result.execution, stamps, &why))
      << why;
  // The injected report faults forced resyncs; they must be visible.
  EXPECT_GT(obs::count_spans_of_kind(trace, "resync"), 0u);
  EXPECT_EQ(obs::count_spans_of_kind(trace, "verdict"),
            result.waterfalls.size());
  EXPECT_GT(obs::count_spans_of_kind(trace, "stage"), 0u);

  for (const obs::Waterfall& fall : result.waterfalls) {
    EXPECT_TRUE(fall.monotone());
  }
}

TEST(CausalTraceTest, ExportersEmitWellFormedJson) {
  const Execution exec = make_exec(3, 6, Topology::ClientServer, 9);
  const Timestamps stamps(exec);
  const obs::CausalTrace trace = obs::build_causal_trace(exec, stamps);

  std::ostringstream chrome;
  obs::write_causal_chrome_trace(chrome, trace);
  EXPECT_TRUE(balanced_json(chrome.str()));
  EXPECT_NE(chrome.str().find("\"traceEvents\""), std::string::npos);

  std::ostringstream otlp;
  obs::write_causal_otlp(otlp, trace);
  const std::string doc = otlp.str();
  EXPECT_TRUE(balanced_json(doc));
  EXPECT_NE(doc.find("\"resourceSpans\""), std::string::npos);
  EXPECT_NE(doc.find("\"scopeSpans\""), std::string::npos);
  EXPECT_NE(doc.find(trace.trace_id), std::string::npos);
}

}  // namespace
}  // namespace syncon
