// Theorem 20 as a hard, instrumented assertion: the fast evaluator never
// spends more integer comparisons than the per-relation bound, and the
// bounds are tight (attained on worst-case inputs).
#include <gtest/gtest.h>

#include "helpers.hpp"
#include "nonatomic/cut_timestamps.hpp"
#include "relations/fast.hpp"
#include "sim/interval_picker.hpp"

namespace syncon {
namespace {

using testing::property_sweep;

class Theorem20Test : public ::testing::TestWithParam<WorkloadConfig> {};

TEST_P(Theorem20Test, ComparisonsNeverExceedBound) {
  const Execution exec = generate_execution(GetParam());
  const Timestamps ts(exec);
  Xoshiro256StarStar rng(GetParam().seed ^ 0xb0b0);
  IntervalSpec spec;
  spec.node_count = exec.process_count();
  spec.max_events_per_node = 3;
  for (int trial = 0; trial < 50; ++trial) {
    const NonatomicEvent x = random_interval(exec, rng, spec, "X");
    const NonatomicEvent y = random_interval(exec, rng, spec, "Y");
    const EventCuts xc(ts, x), yc(ts, y);
    for (const Relation r : kAllRelations) {
      ComparisonCounter counter;
      (void)evaluate_fast(r, xc, yc, counter);
      const std::uint64_t bound =
          theorem20_bound(r, x.node_count(), y.node_count());
      ASSERT_LE(counter.integer_comparisons, bound)
          << to_string(r) << ": |N_X|=" << x.node_count()
          << " |N_Y|=" << y.node_count();
      ASSERT_GE(counter.integer_comparisons, 1u);
    }
  }
}

TEST(Theorem20TightnessTest, BoundsAttainedWhenRelationHolds) {
  // When every per-node test passes (relation true for the conjunctive
  // forms), the evaluator must spend exactly the bound — no early exit.
  ExecutionBuilder b(6);
  // Three "X" processes whose events all precede three "Y" processes' via a
  // relay through process 0's send.
  std::vector<MessageToken> x_tokens;
  std::vector<EventId> x_events;
  for (ProcessId p = 0; p < 3; ++p) {
    EventId e;
    x_tokens.push_back(b.send(p, &e));
    x_events.push_back(e);
  }
  std::vector<EventId> y_events;
  // Process 3 gathers all X sends, then multicasts to 4 and 5.
  const EventId gather = b.receive_all(3, x_tokens);
  y_events.push_back(gather);
  const MessageToken relay = b.send(3);
  y_events.push_back(EventId{3, 2});
  y_events.push_back(b.receive(4, relay));
  y_events.push_back(b.receive(5, relay));
  const Execution exec = b.build();
  const Timestamps ts(exec);

  const NonatomicEvent x(exec, x_events, "X");   // |N_X| = 3
  const NonatomicEvent y(exec, y_events, "Y");   // |N_Y| = 3
  const EventCuts xc(ts, x), yc(ts, y);

  for (const Relation r : kAllRelations) {
    ComparisonCounter counter;
    ASSERT_TRUE(evaluate_fast(r, xc, yc, counter)) << to_string(r);
    // Conjunctive relations (per-node ∀ tests) cannot exit early when they
    // hold, so they attain the bound exactly; the single-≪ relations exit
    // at the first witnessing node.
    const bool conjunctive = r == Relation::R1 || r == Relation::R1p ||
                             r == Relation::R2 || r == Relation::R3p;
    if (conjunctive) {
      EXPECT_EQ(counter.integer_comparisons,
                theorem20_bound(r, x.node_count(), y.node_count()))
          << to_string(r);
    } else {
      EXPECT_GE(counter.integer_comparisons, 1u);
    }
  }
}

TEST(Theorem20TightnessTest, BoundsAttainedWhenRelationFails) {
  // Fully concurrent X and Y: the single-≪ (existential) relations scan
  // every probe node without finding a violation — exactly the bound.
  ExecutionBuilder b(6);
  std::vector<EventId> x_events, y_events;
  for (ProcessId p = 0; p < 3; ++p) x_events.push_back(b.local(p));
  for (ProcessId p = 3; p < 6; ++p) y_events.push_back(b.local(p));
  const Execution exec = b.build();
  const Timestamps ts(exec);
  const NonatomicEvent x(exec, x_events, "X");
  const NonatomicEvent y(exec, y_events, "Y");
  const EventCuts xc(ts, x), yc(ts, y);

  for (const Relation r :
       {Relation::R2p, Relation::R3, Relation::R4, Relation::R4p}) {
    ComparisonCounter counter;
    ASSERT_FALSE(evaluate_fast(r, xc, yc, counter)) << to_string(r);
    EXPECT_EQ(counter.integer_comparisons,
              theorem20_bound(r, x.node_count(), y.node_count()))
        << to_string(r);
  }
}

TEST(Theorem20BoundTableTest, MatchesDesignDoc) {
  // R1/R1'/R4/R4': min; R2/R3: |N_X|; R2'/R3': |N_Y|.
  EXPECT_EQ(theorem20_bound(Relation::R1, 3, 7), 3u);
  EXPECT_EQ(theorem20_bound(Relation::R1p, 7, 3), 3u);
  EXPECT_EQ(theorem20_bound(Relation::R4, 5, 2), 2u);
  EXPECT_EQ(theorem20_bound(Relation::R4p, 2, 5), 2u);
  EXPECT_EQ(theorem20_bound(Relation::R2, 3, 7), 3u);
  EXPECT_EQ(theorem20_bound(Relation::R3, 3, 7), 3u);
  EXPECT_EQ(theorem20_bound(Relation::R2p, 3, 7), 7u);
  EXPECT_EQ(theorem20_bound(Relation::R3p, 3, 7), 7u);
}

TEST(Theorem20BoundTableTest, PaperBoundDiffersOnlyOnR2pR3) {
  for (const Relation r : kAllRelations) {
    const std::uint64_t ours = theorem20_bound(r, 4, 9);
    const std::uint64_t papers = theorem20_paper_bound(r, 4, 9);
    if (r == Relation::R2p) {
      EXPECT_EQ(ours, 9u);
      EXPECT_EQ(papers, 4u);
    } else if (r == Relation::R3) {
      EXPECT_EQ(ours, 4u);
      EXPECT_EQ(papers, 4u);  // same here since |N_X| < |N_Y|
    } else {
      EXPECT_EQ(ours, papers);
    }
  }
  // R3's divergence shows when |N_Y| < |N_X|.
  EXPECT_EQ(theorem20_bound(Relation::R3, 9, 4), 9u);
  EXPECT_EQ(theorem20_paper_bound(Relation::R3, 9, 4), 4u);
}

INSTANTIATE_TEST_SUITE_P(Sweep, Theorem20Test,
                         ::testing::ValuesIn(property_sweep()),
                         testing::sweep_case_name);

}  // namespace
}  // namespace syncon
