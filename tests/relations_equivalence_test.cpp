// The central correctness property of the reproduction: the paper's
// linear-time conditions (Table 1 column 3, Theorem 20) decide exactly the
// same relations as the quantifier definitions (column 2).
#include <gtest/gtest.h>

#include "helpers.hpp"
#include "nonatomic/cut_timestamps.hpp"
#include "relations/fast.hpp"
#include "relations/naive.hpp"

namespace syncon {
namespace {

using testing::disjoint_pair;
using testing::property_sweep;
using testing::two_process_message;

TEST(RelationsBasicTest, FullyOrderedPairSatisfiesEverything) {
  const Execution exec = two_process_message();
  const Timestamps ts(exec);
  const NonatomicEvent x(exec, {EventId{0, 1}, EventId{0, 2}});  // a1, a2
  const NonatomicEvent y(exec, {EventId{1, 2}, EventId{1, 3}});  // b2, b3
  const EventCuts xc(ts, x), yc(ts, y);
  ComparisonCounter counter;
  for (const Relation r : kAllRelations) {
    EXPECT_TRUE(evaluate_fast(r, xc, yc, counter)) << to_string(r);
    EXPECT_TRUE(evaluate_naive(r, x, y, ts, Semantics::Strict))
        << to_string(r);
  }
}

TEST(RelationsBasicTest, ConcurrentPairSatisfiesNothing) {
  const Execution exec = two_process_message();
  const Timestamps ts(exec);
  const NonatomicEvent x(exec, {EventId{0, 3}});  // a3 (after the send)
  const NonatomicEvent y(exec, {EventId{1, 1}});  // b1 (before the receive)
  const EventCuts xc(ts, x), yc(ts, y);
  ComparisonCounter counter;
  for (const Relation r : kAllRelations) {
    EXPECT_FALSE(evaluate_fast(r, xc, yc, counter)) << to_string(r);
    EXPECT_FALSE(evaluate_naive(r, x, y, ts, Semantics::Strict))
        << to_string(r);
  }
}

TEST(RelationsBasicTest, MixedPairDistinguishesQuantifiers) {
  // X = {a1, a3}: a1 precedes b2/b3, a3 precedes nothing in Y.
  const Execution exec = two_process_message();
  const Timestamps ts(exec);
  const NonatomicEvent x(exec, {EventId{0, 1}, EventId{0, 3}});
  const NonatomicEvent y(exec, {EventId{1, 2}, EventId{1, 3}});
  const EventCuts xc(ts, x), yc(ts, y);
  ComparisonCounter counter;
  EXPECT_FALSE(evaluate_fast(Relation::R1, xc, yc, counter));
  EXPECT_FALSE(evaluate_fast(Relation::R2, xc, yc, counter));   // a3 stuck
  EXPECT_FALSE(evaluate_fast(Relation::R2p, xc, yc, counter));  // no y ⪰ a3
  EXPECT_TRUE(evaluate_fast(Relation::R3, xc, yc, counter));    // a1 ⪯ all y
  EXPECT_TRUE(evaluate_fast(Relation::R3p, xc, yc, counter));
  EXPECT_TRUE(evaluate_fast(Relation::R4, xc, yc, counter));
}

TEST(RelationsBasicTest, WeakSemanticsDifferOnSharedEvents) {
  // X = Y = {a1}: strictly, a1 ⊀ a1; weakly, a1 ⪯ a1. The fast conditions
  // decide the weak form — the documented boundary (DESIGN.md §3.3).
  const Execution exec = two_process_message();
  const Timestamps ts(exec);
  const NonatomicEvent x(exec, {EventId{0, 1}});
  const EventCuts xc(ts, x);
  ComparisonCounter counter;
  EXPECT_FALSE(evaluate_naive(Relation::R4, x, x, ts, Semantics::Strict));
  EXPECT_TRUE(evaluate_naive(Relation::R4, x, x, ts, Semantics::Weak));
  EXPECT_TRUE(evaluate_fast(Relation::R4, xc, xc, counter));
}

// ---------------------------------------------------------------------------
// Property sweeps
// ---------------------------------------------------------------------------

class RelationEquivalenceTest
    : public ::testing::TestWithParam<WorkloadConfig> {};

// fast ≡ naive-weak for arbitrary (possibly overlapping) interval pairs.
TEST_P(RelationEquivalenceTest, FastMatchesWeakNaive) {
  const Execution exec = generate_execution(GetParam());
  const Timestamps ts(exec);
  Xoshiro256StarStar rng(GetParam().seed ^ 0x5151);
  IntervalSpec spec;
  spec.node_count = std::max<std::size_t>(1, exec.process_count() / 2 + 1);
  spec.max_events_per_node = 3;
  for (int trial = 0; trial < 60; ++trial) {
    const NonatomicEvent x = random_interval(exec, rng, spec, "X");
    const NonatomicEvent y = random_interval(exec, rng, spec, "Y");
    const EventCuts xc(ts, x), yc(ts, y);
    ComparisonCounter counter;
    for (const Relation r : kAllRelations) {
      ASSERT_EQ(evaluate_fast(r, xc, yc, counter),
                evaluate_naive(r, x, y, ts, Semantics::Weak))
          << to_string(r) << " trial " << trial;
    }
  }
}

// fast ≡ naive-strict when X and Y share no events.
TEST_P(RelationEquivalenceTest, FastMatchesStrictNaiveOnDisjointPairs) {
  const Execution exec = generate_execution(GetParam());
  const Timestamps ts(exec);
  Xoshiro256StarStar rng(GetParam().seed ^ 0x2222);
  IntervalSpec spec;
  spec.node_count = std::max<std::size_t>(1, exec.process_count() / 2);
  spec.max_events_per_node = 2;
  for (int trial = 0; trial < 60; ++trial) {
    const auto [x, y] = disjoint_pair(exec, rng, spec);
    const EventCuts xc(ts, x), yc(ts, y);
    ComparisonCounter counter;
    for (const Relation r : kAllRelations) {
      ASSERT_EQ(evaluate_fast(r, xc, yc, counter),
                evaluate_naive(r, x, y, ts, Semantics::Strict))
          << to_string(r) << " trial " << trial;
    }
  }
}

// naive (timestamps) ≡ oracle (BFS closure), both semantics.
TEST_P(RelationEquivalenceTest, NaiveMatchesOracle) {
  const Execution exec = generate_execution(GetParam());
  const Timestamps ts(exec);
  const ReachabilityOracle oracle(exec);
  Xoshiro256StarStar rng(GetParam().seed ^ 0x3333);
  IntervalSpec spec;
  spec.node_count = 2;
  spec.max_events_per_node = 3;
  for (int trial = 0; trial < 30; ++trial) {
    const NonatomicEvent x = random_interval(exec, rng, spec, "X");
    const NonatomicEvent y = random_interval(exec, rng, spec, "Y");
    for (const Relation r : kAllRelations) {
      for (const Semantics sem : {Semantics::Strict, Semantics::Weak}) {
        ASSERT_EQ(evaluate_naive(r, x, y, ts, sem),
                  evaluate_oracle(r, x, y, oracle, sem))
            << to_string(r) << " " << to_string(sem);
      }
    }
  }
}

// The |N_X| x |N_Y| proxy-naive tier (quantifying over per-node extremes)
// computes the same relations as the full |X| x |Y| quantification.
TEST_P(RelationEquivalenceTest, ProxyNaiveMatchesNaive) {
  const Execution exec = generate_execution(GetParam());
  const Timestamps ts(exec);
  Xoshiro256StarStar rng(GetParam().seed ^ 0x4444);
  IntervalSpec spec;
  spec.node_count = std::max<std::size_t>(1, exec.process_count() - 1);
  spec.max_events_per_node = 4;
  for (int trial = 0; trial < 40; ++trial) {
    const NonatomicEvent x = random_interval(exec, rng, spec, "X");
    const NonatomicEvent y = random_interval(exec, rng, spec, "Y");
    for (const Relation r : kAllRelations) {
      for (const Semantics sem : {Semantics::Strict, Semantics::Weak}) {
        ASSERT_EQ(evaluate_proxy_naive(r, x, y, ts, sem),
                  evaluate_naive(r, x, y, ts, sem))
            << to_string(r) << " " << to_string(sem);
      }
    }
  }
}

// R1 ≡ R1' and R4 ≡ R4' under every evaluator (quantifier order on the same
// quantifier kind is immaterial).
TEST_P(RelationEquivalenceTest, PrimedTwinsCoincide) {
  const Execution exec = generate_execution(GetParam());
  const Timestamps ts(exec);
  Xoshiro256StarStar rng(GetParam().seed ^ 0x6666);
  IntervalSpec spec;
  spec.node_count = 2;
  spec.max_events_per_node = 2;
  for (int trial = 0; trial < 40; ++trial) {
    const NonatomicEvent x = random_interval(exec, rng, spec, "X");
    const NonatomicEvent y = random_interval(exec, rng, spec, "Y");
    const EventCuts xc(ts, x), yc(ts, y);
    ComparisonCounter counter;
    ASSERT_EQ(evaluate_fast(Relation::R1, xc, yc, counter),
              evaluate_fast(Relation::R1p, xc, yc, counter));
    ASSERT_EQ(evaluate_fast(Relation::R4, xc, yc, counter),
              evaluate_fast(Relation::R4p, xc, yc, counter));
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, RelationEquivalenceTest,
                         ::testing::ValuesIn(property_sweep()),
                         testing::sweep_case_name);

}  // namespace
}  // namespace syncon
