#include <gtest/gtest.h>

#include <memory>
#include <utility>

#include "model/reachability.hpp"
#include "model/timestamps.hpp"
#include "sim/des.hpp"
#include "support/contracts.hpp"

namespace syncon {
namespace {

// Ping-pong: process 0 sends `rounds` pings; process 1 answers each.
class Pinger : public DesProcess {
 public:
  explicit Pinger(int rounds) : rounds_(rounds) {}
  void on_start(DesContext& ctx) override {
    const EventId e = ctx.send(1, /*tag=*/1, /*value=*/0, 100);
    ctx.mark("ping", e);
  }
  void on_message(DesContext& ctx, const DesMessage& m) override {
    ctx.mark("pong-received", ctx.current_receive());
    if (static_cast<int>(m.value) + 1 < rounds_) {
      const EventId e = ctx.send(1, 1, m.value + 1, 100);
      ctx.mark("ping", e);
    }
  }

 private:
  int rounds_;
};

class Ponger : public DesProcess {
 public:
  void on_message(DesContext& ctx, const DesMessage& m) override {
    ctx.mark("ping-received", ctx.current_receive());
    const EventId work = ctx.execute(50);
    ctx.mark("pong-work", work);
    ctx.send(0, 2, m.value, 100);
  }
};

DesEngine::Result run_ping_pong(int rounds, std::uint64_t seed = 3) {
  std::vector<std::unique_ptr<DesProcess>> procs;
  procs.push_back(std::make_unique<Pinger>(rounds));
  procs.push_back(std::make_unique<Ponger>());
  DesConfig cfg;
  cfg.seed = seed;
  DesEngine engine(std::move(procs), cfg);
  engine.run(10'000'000);
  return engine.finish();
}

TEST(DesEngineTest, PingPongProducesExpectedStructure) {
  const auto result = run_ping_pong(4);
  const Execution& exec = *result.execution;
  // 4 pings + 4 receives + 4 works + 4 pongs + 4 pong-receives.
  EXPECT_EQ(exec.real_count(0), 8u);   // 4 sends + 4 receives
  EXPECT_EQ(exec.real_count(1), 12u);  // 4 receives + 4 works + 4 sends
  EXPECT_EQ(exec.messages().size(), 8u);
}

TEST(DesEngineTest, TimesAreCausallyConsistentByConstruction) {
  const auto result = run_ping_pong(6);
  const Execution& exec = *result.execution;
  const ReachabilityOracle oracle(exec);
  for (const EventId& a : exec.topological_order()) {
    for (const EventId& b : exec.topological_order()) {
      if (oracle.lt(a, b)) {
        ASSERT_LT(result.times->at(a), result.times->at(b));
      }
    }
  }
}

TEST(DesEngineTest, MarkedIntervalsAreCollected) {
  const auto result = run_ping_pong(3);
  ASSERT_EQ(result.intervals.size(), 4u);  // map-sorted labels
  bool found_ping = false;
  for (const NonatomicEvent& iv : result.intervals) {
    if (iv.label() == "ping") {
      found_ping = true;
      EXPECT_EQ(iv.size(), 3u);
      EXPECT_EQ(iv.node_set(), std::vector<ProcessId>{0});
    }
  }
  EXPECT_TRUE(found_ping);
}

TEST(DesEngineTest, DeterministicAcrossRuns) {
  const auto a = run_ping_pong(5, 42);
  const auto b = run_ping_pong(5, 42);
  ASSERT_EQ(a.execution->total_real_count(), b.execution->total_real_count());
  for (const EventId& e : a.execution->topological_order()) {
    ASSERT_EQ(a.times->at(e), b.times->at(e));
  }
}

TEST(DesEngineTest, DifferentSeedsChangeLatencies) {
  const auto a = run_ping_pong(5, 1);
  const auto b = run_ping_pong(5, 2);
  bool any_diff = false;
  for (const EventId& e : a.execution->topological_order()) {
    if (a.times->at(e) != b.times->at(e)) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

// Timers: a process that emits a heartbeat every 1000µs.
class Heart : public DesProcess {
 public:
  void on_start(DesContext& ctx) override {
    ctx.set_timer(1000, 7);
  }
  void on_timer(DesContext& ctx, std::uint64_t id) override {
    ASSERT_EQ(id, 7u);
    ctx.mark("beat", ctx.execute(10));
    if (++beats_ < 5) ctx.set_timer(1000, 7);
  }

 private:
  int beats_ = 0;
};

TEST(DesEngineTest, TimersFireOnSchedule) {
  std::vector<std::unique_ptr<DesProcess>> procs;
  procs.push_back(std::make_unique<Heart>());
  procs.push_back(std::make_unique<Ponger>());  // idle second process
  DesEngine engine(std::move(procs), DesConfig{});
  engine.run(100'000);
  const auto result = engine.finish();
  ASSERT_EQ(result.intervals.size(), 1u);
  EXPECT_EQ(result.intervals[0].size(), 5u);
  // Beats are >= 1000µs apart.
  const NonatomicEvent& beats = result.intervals[0];
  for (std::size_t k = 1; k < beats.events().size(); ++k) {
    ASSERT_GE(result.times->at(beats.events()[k]),
              result.times->at(beats.events()[k - 1]) + 1000);
  }
}

TEST(DesEngineTest, RunHorizonStopsTheClock) {
  std::vector<std::unique_ptr<DesProcess>> procs;
  procs.push_back(std::make_unique<Heart>());
  procs.push_back(std::make_unique<Ponger>());
  DesEngine engine(std::move(procs), DesConfig{});
  engine.run(2'500);  // only 2 beats fit
  const auto result = engine.finish();
  ASSERT_EQ(result.intervals.size(), 1u);
  EXPECT_EQ(result.intervals[0].size(), 2u);
}

TEST(DesEngineTest, MessageLossBreaksCausalChains) {
  // With heavy loss, some pings never arrive: the ping-received interval
  // shrinks, and the analysis sees the broken causality. The pinger keeps
  // resending only on replies, so the run simply stalls after a loss.
  std::vector<std::unique_ptr<DesProcess>> procs;
  procs.push_back(std::make_unique<Pinger>(50));
  procs.push_back(std::make_unique<Ponger>());
  DesConfig cfg;
  cfg.seed = 9;
  cfg.loss_probability = 0.4;
  DesEngine engine(std::move(procs), cfg);
  engine.run(100'000'000);
  const auto result = engine.finish();
  // The first loss stalls the protocol, so fewer than 50 rounds complete.
  std::size_t pongs_received = 0;
  for (const NonatomicEvent& iv : result.intervals) {
    if (iv.label() == "pong-received") pongs_received = iv.size();
  }
  EXPECT_LT(pongs_received, 50u);
  // Sends without matching receives exist: messages < sends implied by the
  // interval sizes — check via the execution's message count vs ping count.
  std::size_t pings = 0;
  for (const NonatomicEvent& iv : result.intervals) {
    if (iv.label() == "ping") pings = iv.size();
  }
  EXPECT_GE(pings, pongs_received);
}

// Multicast: one hub sends a single message to all leaves.
class Hub : public DesProcess {
 public:
  explicit Hub(std::vector<ProcessId> leaves) : leaves_(std::move(leaves)) {}
  void on_start(DesContext& ctx) override {
    ctx.mark("announce", ctx.multicast(leaves_, 9, 0, 100));
  }

 private:
  std::vector<ProcessId> leaves_;
};

class Leaf : public DesProcess {
 public:
  void on_message(DesContext& ctx, const DesMessage&) override {
    ctx.mark("heard", ctx.current_receive());
  }
};

TEST(DesEngineTest, MulticastIsOneSendManyReceives) {
  std::vector<std::unique_ptr<DesProcess>> procs;
  procs.push_back(std::make_unique<Hub>(std::vector<ProcessId>{1, 2, 3}));
  for (int i = 0; i < 3; ++i) procs.push_back(std::make_unique<Leaf>());
  DesEngine engine(std::move(procs), DesConfig{});
  engine.run(1'000'000);
  const auto result = engine.finish();
  EXPECT_EQ(result.execution->real_count(0), 1u);  // a single send event
  EXPECT_EQ(result.execution->messages().size(), 3u);
  const Timestamps ts(*result.execution);
  // Every receive is causally after the one send.
  for (const Message& m : result.execution->messages()) {
    EXPECT_EQ(m.source, (EventId{0, 1}));
    EXPECT_TRUE(ts.lt(m.source, m.target));
  }
}

TEST(DesEngineTest, ZeroLossDeliversEverything) {
  std::vector<std::unique_ptr<DesProcess>> procs;
  procs.push_back(std::make_unique<Pinger>(10));
  procs.push_back(std::make_unique<Ponger>());
  DesConfig cfg;
  cfg.loss_probability = 0.0;
  DesEngine engine(std::move(procs), cfg);
  engine.run(100'000'000);
  const auto result = engine.finish();
  EXPECT_EQ(result.execution->messages().size(), 20u);  // 10 pings + 10 pongs
}

TEST(DesEngineTest, ContractViolations) {
  EXPECT_THROW(DesEngine({}, DesConfig{}), ContractViolation);
  std::vector<std::unique_ptr<DesProcess>> procs;
  procs.push_back(std::make_unique<Ponger>());
  DesConfig bad;
  bad.min_latency = 0;
  EXPECT_THROW(DesEngine(std::move(procs), bad), ContractViolation);
}

TEST(DesEngineTest, FaultKnobsAreDeterministicAndAccounted) {
  const auto run = [](std::uint64_t seed) {
    std::vector<std::unique_ptr<DesProcess>> procs;
    procs.push_back(std::make_unique<Pinger>(10));
    procs.push_back(std::make_unique<Ponger>());
    DesConfig cfg;
    cfg.seed = seed;
    cfg.duplicate_probability = 0.5;
    cfg.reorder_probability = 0.5;
    DesEngine engine(std::move(procs), cfg);
    engine.run(100'000'000);
    const DesFaultStats stats = engine.fault_stats();
    return std::make_pair(engine.finish(), stats);
  };
  const auto [a, sa] = run(5);
  // Redeliveries were injected, and every one was suppressed at the
  // receiver: the trace still has exactly one receive per unique message,
  // so the causal structure matches the fault-free protocol.
  EXPECT_GT(sa.duplicates_scheduled, 0u);
  EXPECT_EQ(sa.duplicates_suppressed, sa.duplicates_scheduled);
  EXPECT_GT(sa.reordered, 0u);
  EXPECT_EQ(a.execution->messages().size(), 20u);

  // Same seed, same fault schedule, same timeline.
  const auto [b, sb] = run(5);
  EXPECT_EQ(sb.duplicates_scheduled, sa.duplicates_scheduled);
  EXPECT_EQ(sb.reordered, sa.reordered);
  ASSERT_EQ(a.execution->total_real_count(), b.execution->total_real_count());
  for (const EventId& e : a.execution->topological_order()) {
    ASSERT_EQ(a.times->at(e), b.times->at(e));
  }
}

TEST(DesEngineTest, CrashWindowsDiscardActivations) {
  std::vector<std::unique_ptr<DesProcess>> procs;
  procs.push_back(std::make_unique<Heart>());
  procs.push_back(std::make_unique<Ponger>());
  DesConfig cfg;
  cfg.crashes = {CrashWindow{0, 500, 2'500}};
  DesEngine engine(std::move(procs), cfg);
  engine.run(100'000);
  // The 1000µs heartbeat fires into the crash window and is discarded;
  // with no handler run, no timer is re-armed, so the process stays
  // silent even after restart — exactly a crash-and-restart with no
  // recovery logic.
  EXPECT_EQ(engine.fault_stats().crash_discarded, 1u);
  const auto result = engine.finish();
  EXPECT_TRUE(result.intervals.empty());
}

}  // namespace
}  // namespace syncon
