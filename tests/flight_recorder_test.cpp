// Flight recorder (DESIGN.md §3.13): ring wraparound, zero-cost disabled
// mode, automatic dump-on-quarantine with preceding context, and seqlock
// correctness under concurrent writers (runs under the tsan preset via the
// concurrency ctest label).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/flight.hpp"
#include "online/online_monitor.hpp"
#include "online/online_system.hpp"

namespace syncon {
namespace {

class FlightRecorderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_flight_enabled(false);
    obs::set_flight_dump_path("");
    obs::FlightRecorder::global().clear();
  }
  void TearDown() override {
    obs::set_flight_enabled(false);
    obs::set_flight_dump_path("");
    obs::FlightRecorder::global().clear();
  }
};

TEST_F(FlightRecorderTest, DisabledRecordsNothing) {
  ASSERT_FALSE(obs::flight_enabled());
  obs::flight(obs::FlightKind::kDelivery, 0, 1, 2);
  EXPECT_TRUE(obs::FlightRecorder::global().dump().empty());
  EXPECT_EQ(obs::FlightRecorder::global().recorded_total(), 0u);
}

TEST_F(FlightRecorderTest, RingKeepsNewestAndDumpsOldestFirst) {
  obs::FlightRecorder ring(8);  // rounded to a power of two
  ASSERT_EQ(ring.capacity(), 8u);
  for (std::uint64_t i = 0; i < 21; ++i) {
    ring.record(obs::FlightKind::kDelivery, 0, i);
  }
  const std::vector<obs::FlightRecord> records = ring.dump();
  ASSERT_EQ(records.size(), 8u);
  // The ring retains the newest capacity() records, oldest first.
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].seq, 13 + i);
    EXPECT_EQ(records[i].a, 13 + i);
    if (i > 0) EXPECT_LT(records[i - 1].seq, records[i].seq);
  }
  EXPECT_EQ(ring.recorded_total(), 21u);
}

TEST_F(FlightRecorderTest, PackUnpackEventRoundTrips) {
  const EventId e{7, 123456};
  EXPECT_EQ(obs::unpack_event(obs::pack_event(e)), e);
}

TEST_F(FlightRecorderTest, SystemDeliveriesLandInTheRing) {
  obs::set_flight_enabled(true);
  OnlineSystem sys(2);
  const WireMessage w = sys.send(0);
  sys.deliver(1, w);
  const std::vector<obs::FlightRecord> records =
      obs::FlightRecorder::global().dump();
  ASSERT_FALSE(records.empty());
  const obs::FlightRecord& last = records.back();
  EXPECT_EQ(last.kind, obs::FlightKind::kDelivery);
  EXPECT_EQ(last.process, 1u);
  EXPECT_EQ(obs::unpack_event(last.a), w.source);
}

TEST_F(FlightRecorderTest, QuarantineTriggersAutomaticDumpWithContext) {
  const std::string path =
      ::testing::TempDir() + "flight_quarantine_dump.txt";
  std::remove(path.c_str());
  obs::set_flight_enabled(true);
  obs::set_flight_dump_path(path);

  // Ring context first: a few healthy deliveries...
  OnlineSystem sys(3);
  OnlineMonitor monitor(3);
  for (int i = 0; i < 4; ++i) {
    const WireMessage w = sys.send(0);
    sys.deliver(1, w);
    EXPECT_TRUE(monitor.try_observe(w));
  }
  // ...then the incident: a corrupt report (all-zero clock violates the
  // Fidge own-component invariant).
  WireMessage poison;
  poison.source = EventId{0, 9};
  poison.clock = VectorClock(3, 0);
  EXPECT_FALSE(monitor.try_observe(poison));
  EXPECT_EQ(monitor.quarantined(), 1u);

  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "no automatic dump at " << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string dump = buffer.str();
  EXPECT_NE(dump.find("quarantine"), std::string::npos);
  // The dump carries the offending source and the preceding deliveries.
  EXPECT_NE(dump.find("p0:9"), std::string::npos);
  EXPECT_NE(dump.find("delivery"), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(FlightRecorderTest, OnDemandDumpThroughOnlineSystem) {
  obs::set_flight_enabled(true);
  OnlineSystem sys(2);
  sys.deliver(1, sys.send(0));
  std::ostringstream oss;
  sys.dump_flight(oss);
  EXPECT_NE(oss.str().find("delivery"), std::string::npos);
}

TEST_F(FlightRecorderTest, WritersNeverTearUnderConcurrency) {
  obs::FlightRecorder ring(64);
  constexpr int kWriters = 4;
  constexpr std::uint64_t kPerWriter = 20000;
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&ring, w] {
      for (std::uint64_t i = 0; i < kPerWriter; ++i) {
        // Payload invariant a == b + w lets the reader detect torn slots.
        ring.record(obs::FlightKind::kCheckpoint,
                    static_cast<std::uint32_t>(w), i + w, i);
      }
    });
  }
  // Concurrent reader: every dumped record must be internally consistent
  // and in strictly increasing seq order — a torn slot would break both.
  for (int round = 0; round < 200; ++round) {
    const std::vector<obs::FlightRecord> records = ring.dump();
    EXPECT_LE(records.size(), ring.capacity());
    for (std::size_t i = 0; i < records.size(); ++i) {
      EXPECT_EQ(records[i].kind, obs::FlightKind::kCheckpoint);
      EXPECT_EQ(records[i].a, records[i].b + records[i].process);
      if (i > 0) EXPECT_LT(records[i - 1].seq, records[i].seq);
    }
  }
  for (std::thread& t : writers) t.join();
  EXPECT_EQ(ring.recorded_total(), kWriters * kPerWriter);
  const std::vector<obs::FlightRecord> final_records = ring.dump();
  EXPECT_EQ(final_records.size(), ring.capacity());
}

}  // namespace
}  // namespace syncon
