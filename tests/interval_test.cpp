#include <gtest/gtest.h>

#include "helpers.hpp"
#include "model/timestamps.hpp"
#include "nonatomic/interval.hpp"
#include "support/contracts.hpp"

namespace syncon {
namespace {

using testing::three_process_concurrent;
using testing::two_process_message;

TEST(NonatomicEventTest, SortsAndDeduplicates) {
  const Execution exec = two_process_message();
  const NonatomicEvent x(exec,
                         {EventId{1, 2}, EventId{0, 1}, EventId{1, 2}}, "x");
  ASSERT_EQ(x.size(), 2u);
  EXPECT_EQ(x.events()[0], (EventId{0, 1}));
  EXPECT_EQ(x.events()[1], (EventId{1, 2}));
  EXPECT_EQ(x.label(), "x");
}

TEST(NonatomicEventTest, RejectsEmptyAndDummies) {
  const Execution exec = two_process_message();
  EXPECT_THROW(NonatomicEvent(exec, {}), ContractViolation);
  EXPECT_THROW(NonatomicEvent(exec, {exec.initial(0)}), ContractViolation);
  EXPECT_THROW(NonatomicEvent(exec, {exec.final(1)}), ContractViolation);
  EXPECT_THROW(NonatomicEvent(exec, {EventId{0, 9}}), ContractViolation);
}

TEST(NonatomicEventTest, NodeSetIsSortedAndDeduplicated) {
  const Execution exec = two_process_message();
  const NonatomicEvent x(exec, {EventId{1, 1}, EventId{0, 2}, EventId{1, 3}});
  EXPECT_EQ(x.node_set(), (std::vector<ProcessId>{0, 1}));
  EXPECT_EQ(x.node_count(), 2u);
  EXPECT_TRUE(x.occurs_on(0));
  EXPECT_TRUE(x.occurs_on(1));
}

TEST(NonatomicEventTest, PerNodeExtremes) {
  const Execution exec = two_process_message();
  const NonatomicEvent x(exec, {EventId{0, 1}, EventId{0, 3}, EventId{1, 2}});
  EXPECT_EQ(x.least_on(0), (EventId{0, 1}));
  EXPECT_EQ(x.greatest_on(0), (EventId{0, 3}));
  EXPECT_EQ(x.least_on(1), (EventId{1, 2}));
  EXPECT_EQ(x.greatest_on(1), (EventId{1, 2}));
  EXPECT_THROW(x.least_on(2), ContractViolation);
}

TEST(NonatomicEventTest, ContainsIsExact) {
  const Execution exec = two_process_message();
  const NonatomicEvent x(exec, {EventId{0, 1}, EventId{0, 3}});
  EXPECT_TRUE(x.contains(EventId{0, 1}));
  EXPECT_FALSE(x.contains(EventId{0, 2}));
}

TEST(ProxyTest, PerNodeProxiesPickExtremes) {
  const Execution exec = two_process_message();
  const NonatomicEvent x(
      exec, {EventId{0, 1}, EventId{0, 2}, EventId{1, 1}, EventId{1, 3}},
      "act");
  const NonatomicEvent l = x.proxy_per_node(ProxyKind::Begin);
  const NonatomicEvent u = x.proxy_per_node(ProxyKind::End);
  EXPECT_EQ(l.events(), (std::vector<EventId>{{0, 1}, {1, 1}}));
  EXPECT_EQ(u.events(), (std::vector<EventId>{{0, 2}, {1, 3}}));
  EXPECT_EQ(l.node_set(), x.node_set());
  EXPECT_EQ(l.label(), "L(act)");
  EXPECT_EQ(u.label(), "U(act)");
}

TEST(ProxyTest, ProxyOfSingleNodeEventIsSingleton) {
  const Execution exec = two_process_message();
  const NonatomicEvent x(exec, {EventId{0, 1}, EventId{0, 3}});
  EXPECT_EQ(x.proxy_per_node(ProxyKind::Begin).events(),
            (std::vector<EventId>{{0, 1}}));
  EXPECT_EQ(x.proxy_per_node(ProxyKind::End).events(),
            (std::vector<EventId>{{0, 3}}));
}

TEST(ProxyTest, GlobalProxyExistsWhenChainOrdered) {
  const Execution exec = two_process_message();
  const Timestamps ts(exec);
  // a2 ≺ b2 via the message, so X = {a2, b2} has global extrema.
  const NonatomicEvent x(exec, {EventId{0, 2}, EventId{1, 2}});
  const auto l = x.proxy_global(ProxyKind::Begin, ts);
  const auto u = x.proxy_global(ProxyKind::End, ts);
  ASSERT_TRUE(l.has_value());
  ASSERT_TRUE(u.has_value());
  EXPECT_EQ(l->events(), (std::vector<EventId>{{0, 2}}));
  EXPECT_EQ(u->events(), (std::vector<EventId>{{1, 2}}));
}

TEST(ProxyTest, GlobalProxyEmptyForConcurrentExtremes) {
  const Execution exec = three_process_concurrent();
  const Timestamps ts(exec);
  const NonatomicEvent x(exec, {EventId{0, 1}, EventId{1, 1}});
  // The two candidate minima are concurrent: Defn 3 yields no proxy.
  EXPECT_FALSE(x.proxy_global(ProxyKind::Begin, ts).has_value());
  EXPECT_FALSE(x.proxy_global(ProxyKind::End, ts).has_value());
}

TEST(ProxyTest, GlobalProxySubsetOfPerNodeProxy) {
  const Execution exec = two_process_message();
  const Timestamps ts(exec);
  const NonatomicEvent x(
      exec, {EventId{0, 1}, EventId{0, 2}, EventId{1, 2}, EventId{1, 3}});
  for (const ProxyKind kind : {ProxyKind::Begin, ProxyKind::End}) {
    const auto global = x.proxy_global(kind, ts);
    if (!global.has_value()) continue;
    const NonatomicEvent per_node = x.proxy_per_node(kind);
    for (const EventId& e : global->events()) {
      EXPECT_TRUE(per_node.contains(e));
    }
  }
}

}  // namespace
}  // namespace syncon
