// The durable store stack from the bottom up: CRC frame scanning, snapshot
// serialization, the SimStorage crash model, and the Store's recovery
// truncation / rotation / pruning invariants (DESIGN.md §3.12).
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "cuts/watermark.hpp"
#include "store/snapshot.hpp"
#include "store/storage.hpp"
#include "store/store.hpp"
#include "store/wal.hpp"

namespace syncon {
namespace {

std::vector<std::uint8_t> bytes_of(std::initializer_list<int> values) {
  std::vector<std::uint8_t> out;
  for (int v : values) out.push_back(static_cast<std::uint8_t>(v));
  return out;
}

// --- WAL framing -----------------------------------------------------------

TEST(WalTest, FramesRoundTrip) {
  std::vector<std::uint8_t> log;
  append_frame(bytes_of({1, 2, 3}), log);
  append_frame(bytes_of({}), log);
  append_frame(bytes_of({0xff, 0x00}), log);

  FrameReader reader(log);
  ASSERT_TRUE(reader.next().has_value());
  EXPECT_EQ(reader.next()->size(), 0u);
  EXPECT_EQ(reader.next()->size(), 2u);
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_FALSE(reader.corrupt());
  EXPECT_EQ(reader.valid_bytes(), log.size());
  EXPECT_EQ(reader.frames_read(), 3u);
}

TEST(WalTest, BitFlipStopsTheScanAtTheLastValidFrame) {
  std::vector<std::uint8_t> log;
  append_frame(bytes_of({1, 2, 3}), log);
  const std::size_t first = log.size();
  append_frame(bytes_of({4, 5, 6}), log);
  log[first + 2] ^= 0x10;  // corrupt the second frame's payload

  FrameReader reader(log);
  ASSERT_TRUE(reader.next().has_value());
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_TRUE(reader.corrupt());
  EXPECT_EQ(reader.valid_bytes(), first);  // truncation offset
  EXPECT_EQ(reader.frames_read(), 1u);
}

TEST(WalTest, TornLengthPrefixIsCorrupt) {
  std::vector<std::uint8_t> log;
  append_frame(bytes_of({9, 9}), log);
  const std::size_t first = log.size();
  log.push_back(0x20);  // a length byte promising 32 bytes that never come

  FrameReader reader(log);
  ASSERT_TRUE(reader.next().has_value());
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_TRUE(reader.corrupt());
  EXPECT_EQ(reader.valid_bytes(), first);
}

// --- snapshot serialization ------------------------------------------------

RetentionCheckpoint sample_checkpoint() {
  RetentionCheckpoint cp = RetentionCheckpoint::bottom(3);
  cp.cut = VectorClock({4, 1, 2});
  cp.surface_clocks[0] = VectorClock({4, 0, 1});
  cp.surface_clocks[2] = VectorClock({2, 0, 2});
  cp.surface_times[0] = 77;
  cp.sequence = 5;
  cp.reclaimed_total = 4;
  return cp;
}

TEST(SnapshotTest, RoundTrips) {
  const SnapshotImage image{3, sample_checkpoint()};
  const std::vector<std::uint8_t> bytes = encode_snapshot(image);
  const auto decoded = decode_snapshot(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->process_count, 3u);
  EXPECT_EQ(decoded->checkpoint.cut, image.checkpoint.cut);
  EXPECT_EQ(decoded->checkpoint.surface_clocks, image.checkpoint.surface_clocks);
  EXPECT_EQ(decoded->checkpoint.surface_times, image.checkpoint.surface_times);
  EXPECT_EQ(decoded->checkpoint.sequence, 5u);
  EXPECT_EQ(decoded->checkpoint.reclaimed_total, 4u);
}

TEST(SnapshotTest, RejectsTornAndFlippedBytesWholesale) {
  const std::vector<std::uint8_t> bytes =
      encode_snapshot(SnapshotImage{3, sample_checkpoint()});
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    EXPECT_FALSE(decode_snapshot({bytes.data(), cut}).has_value());
  }
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::vector<std::uint8_t> flipped = bytes;
    flipped[i] ^= 0x04;
    EXPECT_FALSE(decode_snapshot(flipped).has_value()) << "byte " << i;
  }
}

// --- SimStorage crash model ------------------------------------------------

TEST(SimStorageTest, CrashKeepsSyncedPrefixDropsUnsyncedSuffix) {
  SimStorage storage;  // torn_tail = 0: clean suffix loss
  storage.append("a", bytes_of({1, 2, 3}));
  storage.sync("a");
  storage.append("a", bytes_of({4, 5}));
  storage.append("ghost", bytes_of({9}));  // never synced

  storage.crash();
  EXPECT_EQ(storage.read("a"), bytes_of({1, 2, 3}));
  EXPECT_FALSE(storage.exists("ghost"));  // unsynced objects vanish
}

TEST(SimStorageTest, ReorderedVisibilityYoungerSyncedSurvivesOlderUnsynced) {
  SimStorage storage;
  storage.append("wal-000000000001", bytes_of({1}));  // old, never synced
  storage.append("wal-000000000002", bytes_of({2}));
  storage.sync("wal-000000000002");  // young, durable

  storage.crash();
  EXPECT_FALSE(storage.exists("wal-000000000001"));
  EXPECT_TRUE(storage.exists("wal-000000000002"));
}

TEST(SimStorageTest, ArmedCrashFiresBeforeTheOpTakesEffect) {
  SimStorage storage;
  storage.append("a", bytes_of({1}));
  storage.sync("a");
  storage.crash_after_ops(1);
  EXPECT_THROW(storage.append("a", bytes_of({2})), StorageCrash);
  EXPECT_EQ(storage.read("a"), bytes_of({1}));  // the append never landed
  EXPECT_EQ(storage.crashes(), 1u);
  storage.append("a", bytes_of({3}));  // disarmed afterwards
  EXPECT_EQ(storage.read("a"), bytes_of({1, 3}));
}

TEST(SimStorageTest, TornTailIsDeterministicBySeed) {
  const auto run = [](std::uint64_t seed) {
    SimStorage storage(SimFaultConfig{1.0, 0.2, seed});
    storage.append("a", bytes_of({1, 2, 3, 4}));
    storage.sync("a");
    for (int i = 0; i < 32; ++i) {
      storage.append("a", bytes_of({i, i, i, i}));
    }
    storage.crash();
    return storage.read("a");
  };
  const std::vector<std::uint8_t> a = run(7);
  EXPECT_EQ(a, run(7));                     // reproducible
  EXPECT_NE(a, run(8));                     // seed-sensitive
  ASSERT_GE(a.size(), 4u);                  // synced bytes are sacred
  EXPECT_EQ(std::vector<std::uint8_t>(a.begin(), a.begin() + 4),
            bytes_of({1, 2, 3, 4}));
}

// --- Store recovery / rotation / pruning -----------------------------------

DurabilityPolicy tight_policy() {
  DurabilityPolicy policy;
  policy.sync_every = 1;
  policy.segment_records = 2;
  policy.snapshot_every = 1;
  policy.full_interval = 4;
  return policy;
}

TEST(StoreTest, RotationKeepsOnlyTheOpenSegmentVulnerable) {
  SimStorage storage;
  Store store(storage, tight_policy());
  const EventId t0[] = {EventId{0, 1}};
  for (int i = 0; i < 5; ++i) store.append(bytes_of({i}), t0);
  // 5 records at 2 per segment: two closed (synced) segments + an open one.
  EXPECT_EQ(store.live_segments(), 3u);
  EXPECT_EQ(store.records_appended(), 5u);
}

TEST(StoreTest, RecoveryTruncatesAtFirstInvalidFrameAndDropsLaterSegments) {
  SimStorage storage;
  std::vector<std::string> segments;
  {
    Store store(storage, tight_policy());
    const EventId t0[] = {EventId{0, 1}};
    for (int i = 0; i < 6; ++i) store.append(bytes_of({i, i}), t0);
    store.sync();
    segments = storage.list();  // three wal segments, 2 records each
  }
  // Three segment objects: the rotation after record 6 opened a fourth
  // segment, but an empty open segment has no storage object yet.
  ASSERT_EQ(segments.size(), 3u);
  // Corrupt the second record of the SECOND segment: recovery must keep the
  // first segment whole, keep the second's first record, and drop the third
  // segment entirely.
  const std::string& victim = segments[1];
  std::vector<std::uint8_t> raw = storage.read(victim);
  FrameReader probe(raw);
  ASSERT_TRUE(probe.next().has_value());
  const std::size_t keep = probe.valid_bytes();
  storage.flip_bit(victim, keep + 3, 2);

  Store recovered(storage, tight_policy());
  const auto& info = recovered.recovery();
  EXPECT_TRUE(info.truncated);
  EXPECT_GE(info.dropped_segments, 1u);
  EXPECT_EQ(info.records, 3u);  // 2 from segment one + 1 surviving
  const auto records = recovered.take_records();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].body, bytes_of({0, 0}));
  EXPECT_EQ(records[1].body, bytes_of({1, 1}));
  EXPECT_EQ(records[2].body, bytes_of({2, 2}));
  EXPECT_EQ(storage.size(victim), keep);  // physically truncated
}

TEST(StoreTest, SnapshotFallsBackPastACorruptNewestOne) {
  SimStorage storage;
  {
    Store store(storage, tight_policy());
    RetentionCheckpoint cp = RetentionCheckpoint::bottom(2);
    cp.cut = VectorClock({2, 1});
    cp.sequence = 1;
    store.write_snapshot(SnapshotImage{2, cp});
    cp.cut = VectorClock({3, 1});
    cp.sequence = 2;
    store.write_snapshot(SnapshotImage{2, cp});
  }
  // Corrupt the newest snapshot file; recovery must fall back to sequence 1.
  std::string newest;
  for (const std::string& name : storage.list()) {
    if (name.rfind("snap-", 0) == 0) newest = name;  // sorted: last wins
  }
  ASSERT_FALSE(newest.empty());
  storage.flip_bit(newest, storage.size(newest) / 2, 5);

  Store recovered(storage, tight_policy());
  const auto& info = recovered.recovery();
  ASSERT_TRUE(info.snapshot.has_value());
  EXPECT_EQ(info.snapshot->checkpoint.sequence, 1u);
  EXPECT_EQ(info.snapshots_discarded, 1u);
  EXPECT_FALSE(storage.exists(newest));  // the corrupt file was removed
}

TEST(StoreTest, PruneReclaimsOnlyCoveredUnpinnedFrontSegments) {
  SimStorage storage;
  Store store(storage, tight_policy());
  const EventId lo[] = {EventId{0, 1}};
  const EventId hi[] = {EventId{0, 9}};
  store.append(bytes_of({1}), lo);
  store.append(bytes_of({2}), lo);           // segment 1 closes: bound (0,1)
  store.append(bytes_of({3}), hi);
  store.append(bytes_of({4}), hi);           // segment 2 closes: bound (0,9)
  store.append(bytes_of({5}), lo);           // open segment

  RetentionCheckpoint cp = RetentionCheckpoint::bottom(1);
  cp.cut = VectorClock({5});  // covers (0,1..4): segment 1 yes, segment 2 no
  store.write_snapshot(SnapshotImage{1, cp});
  EXPECT_EQ(store.segments_pruned(), 1u);
  EXPECT_EQ(store.live_segments(), 2u);  // stops at the uncovered segment

  // Pinned segments survive even when covered.
  SimStorage storage2;
  Store store2(storage2, tight_policy());
  const EventId t[] = {EventId{0, 2}};
  store2.append(bytes_of({6}), t, /*pinned=*/true);
  store2.append(bytes_of({7}), t, /*pinned=*/true);  // closes pinned segment
  store2.append(bytes_of({8}), t);                   // open segment
  RetentionCheckpoint cp2 = RetentionCheckpoint::bottom(1);
  cp2.cut = VectorClock({10});
  store2.write_snapshot(SnapshotImage{1, cp2});
  EXPECT_EQ(store2.segments_pruned(), 0u);  // pinned front: no pruning
}

TEST(StoreTest, KeepsTheNewestTwoSnapshots) {
  SimStorage storage;
  Store store(storage, tight_policy());
  for (std::uint64_t s = 1; s <= 4; ++s) {
    RetentionCheckpoint cp = RetentionCheckpoint::bottom(1);
    cp.sequence = s;
    store.write_snapshot(SnapshotImage{1, cp});
  }
  std::size_t snaps = 0;
  for (const std::string& name : storage.list()) {
    snaps += name.rfind("snap-", 0) == 0;
  }
  EXPECT_EQ(snaps, 2u);
  EXPECT_EQ(store.snapshots_written(), 4u);
}

// --- FileStorage -----------------------------------------------------------

TEST(FileStorageTest, RoundTripsThroughARealDirectory) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "syncon_store_test").string();
  std::filesystem::remove_all(dir);
  {
    FileStorage storage(dir);
    storage.append("wal-000000000001", bytes_of({1, 2, 3}));
    storage.sync("wal-000000000001");
    storage.append("wal-000000000001", bytes_of({4}));
    storage.append("snap-000000000001", bytes_of({9, 9}));
    EXPECT_TRUE(storage.exists("wal-000000000001"));
    EXPECT_EQ(storage.size("wal-000000000001"), 4u);
    EXPECT_EQ(storage.read("wal-000000000001"), bytes_of({1, 2, 3, 4}));
  }
  {
    FileStorage storage(dir);  // a fresh handle set sees the same objects
    const std::vector<std::string> names = storage.list();
    ASSERT_EQ(names.size(), 2u);
    EXPECT_EQ(names[0], "snap-000000000001");
    EXPECT_EQ(names[1], "wal-000000000001");
    storage.truncate("wal-000000000001", 2);
    EXPECT_EQ(storage.read("wal-000000000001"), bytes_of({1, 2}));
    storage.remove("snap-000000000001");
    EXPECT_FALSE(storage.exists("snap-000000000001"));
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace syncon
