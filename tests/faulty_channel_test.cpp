#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "sim/faulty_channel.hpp"
#include "support/contracts.hpp"

namespace syncon {
namespace {

WireMessage wire(ProcessId p, EventIndex i) {
  return WireMessage{EventId{p, i}, VectorClock({1, 1, 1})};
}

TEST(FaultyChannelTest, FaultFreeChannelIsFifo) {
  LinkFaultConfig config;  // no faults, unit delay
  FaultyChannel ch(config, 1);
  ch.push(wire(0, 1), 10);
  ch.push(wire(0, 2), 20);
  ch.push(wire(0, 3), 30);
  EXPECT_EQ(ch.in_transit(), 3u);
  const auto early = ch.pop_ready(15);
  ASSERT_EQ(early.size(), 1u);
  EXPECT_EQ(early[0].message.source, (EventId{0, 1}));
  EXPECT_EQ(early[0].at, 11);
  EXPECT_FALSE(early[0].duplicate_copy);
  const auto rest = ch.drain();
  ASSERT_EQ(rest.size(), 2u);
  EXPECT_EQ(rest[0].message.source, (EventId{0, 2}));
  EXPECT_EQ(rest[1].message.source, (EventId{0, 3}));
  EXPECT_EQ(ch.stats().offered, 3u);
  EXPECT_EQ(ch.stats().delivered, 3u);
  EXPECT_EQ(ch.stats().dropped, 0u);
}

TEST(FaultyChannelTest, DropsAtTheConfiguredRate) {
  LinkFaultConfig config;
  config.drop_probability = 0.3;
  FaultyChannel ch(config, 99);
  for (EventIndex i = 1; i <= 1000; ++i) ch.push(wire(0, i), i);
  const auto got = ch.drain();
  const ChannelStats s = ch.stats();
  EXPECT_EQ(s.offered, 1000u);
  EXPECT_EQ(s.dropped + got.size(), 1000u);
  // Generous statistical window around 300.
  EXPECT_GT(s.dropped, 200u);
  EXPECT_LT(s.dropped, 400u);
}

TEST(FaultyChannelTest, DuplicatesCarryTheSamePayload) {
  LinkFaultConfig config;
  config.duplicate_probability = 1.0;
  config.min_delay = 1;
  config.max_delay = 50;
  FaultyChannel ch(config, 7);
  ch.push(wire(1, 4), 0);
  const auto got = ch.drain();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].message.source, (EventId{1, 4}));
  EXPECT_EQ(got[1].message.source, (EventId{1, 4}));
  EXPECT_EQ(got[0].message.clock, got[1].message.clock);
  EXPECT_TRUE(got[0].duplicate_copy || got[1].duplicate_copy);
  EXPECT_EQ(ch.stats().duplicated, 1u);
}

TEST(FaultyChannelTest, ReorderingInvertsDeliveryOrder) {
  LinkFaultConfig config;
  config.reorder_probability = 1.0;  // every arrival swaps with the previous
  FaultyChannel ch(config, 3);
  ch.push(wire(0, 1), 10);
  ch.push(wire(0, 2), 20);  // swaps times with #1 → #2 arrives first
  const auto got = ch.drain();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].message.source, (EventId{0, 2}));
  EXPECT_EQ(got[1].message.source, (EventId{0, 1}));
  EXPECT_EQ(ch.stats().reordered, 1u);
}

TEST(FaultyChannelTest, SameSeedSameSchedule) {
  LinkFaultConfig config;
  config.drop_probability = 0.2;
  config.duplicate_probability = 0.2;
  config.reorder_probability = 0.2;
  config.min_delay = 5;
  config.max_delay = 500;
  for (int run = 0; run < 2; ++run) {
    FaultyChannel a(config, 42), b(config, 42);
    for (EventIndex i = 1; i <= 200; ++i) {
      a.push(wire(0, i), i * 10);
      b.push(wire(0, i), i * 10);
    }
    const auto ga = a.drain(), gb = b.drain();
    ASSERT_EQ(ga.size(), gb.size());
    for (std::size_t k = 0; k < ga.size(); ++k) {
      EXPECT_EQ(ga[k].message.source, gb[k].message.source);
      EXPECT_EQ(ga[k].at, gb[k].at);
      EXPECT_EQ(ga[k].duplicate_copy, gb[k].duplicate_copy);
    }
    EXPECT_EQ(a.stats(), b.stats());
  }
  // And a different seed yields a different schedule.
  FaultyChannel a(config, 42), c(config, 43);
  for (EventIndex i = 1; i <= 200; ++i) {
    a.push(wire(0, i), i * 10);
    c.push(wire(0, i), i * 10);
  }
  EXPECT_NE(a.stats(), c.stats());
}

TEST(FaultyChannelTest, RejectsMalformedConfigs) {
  LinkFaultConfig bad;
  bad.drop_probability = 1.0;
  EXPECT_THROW(FaultyChannel(bad, 1), ContractViolation);
  bad = {};
  bad.min_delay = 10;
  bad.max_delay = 5;
  EXPECT_THROW(FaultyChannel(bad, 1), ContractViolation);
}

TEST(FaultPlanTest, CrashWindows) {
  FaultPlan plan;
  plan.crashes = {CrashWindow{1, 100, 200}, CrashWindow{1, 500, kNeverRestarts}};
  EXPECT_FALSE(plan.crashed_at(1, 99));
  EXPECT_TRUE(plan.crashed_at(1, 100));
  EXPECT_TRUE(plan.crashed_at(1, 199));
  EXPECT_FALSE(plan.crashed_at(1, 200));  // restarted
  EXPECT_TRUE(plan.crashed_at(1, 1000000));
  EXPECT_FALSE(plan.crashed_at(0, 150));
  EXPECT_EQ(plan.first_crash(1), 100);
  EXPECT_EQ(plan.first_crash(0), kNeverRestarts);
}

TEST(FaultyNetworkTest, RoutesPerLinkAndAggregatesStats) {
  FaultPlan plan;  // fault-free
  FaultyNetwork net(3, plan);
  net.push(0, 2, wire(0, 1), 10);
  net.push(1, 2, wire(1, 1), 5);
  net.push(0, 1, wire(0, 2), 7);
  const auto at2 = net.pop_ready(2, 1000);
  ASSERT_EQ(at2.size(), 2u);
  // Delivery order across links follows arrival time.
  EXPECT_EQ(at2[0].message.source, (EventId{1, 1}));
  EXPECT_EQ(at2[1].message.source, (EventId{0, 1}));
  const auto at1 = net.drain(1);
  ASSERT_EQ(at1.size(), 1u);
  EXPECT_EQ(net.stats().offered, 3u);
  EXPECT_EQ(net.stats().delivered, 3u);
}

TEST(FaultyNetworkTest, CrashWindowsEatTraffic) {
  FaultPlan plan;
  plan.crashes = {CrashWindow{1, 50, 150}};
  FaultyNetwork net(2, plan);
  // Sender crashed: message never enters the link.
  net.push(1, 0, wire(1, 1), 60);
  EXPECT_EQ(net.drain(0).size(), 0u);
  // Receiver crashed at arrival time: arrival is lost.
  net.push(0, 1, wire(0, 1), 99);  // unit delay → arrives at 100, inside
  EXPECT_EQ(net.drain(1).size(), 0u);
  // Outside the window traffic flows.
  net.push(0, 1, wire(0, 2), 200);
  EXPECT_EQ(net.drain(1).size(), 1u);
  const ChannelStats s = net.stats();
  EXPECT_EQ(s.offered, 3u);
  EXPECT_EQ(s.dropped, 2u);
}

TEST(FaultyNetworkTest, PerLinkOverridesApply) {
  FaultPlan plan;  // default: fault-free
  FaultyNetwork net(2, plan);
  LinkFaultConfig lossy;
  lossy.drop_probability = 0.9;
  net.configure_link(0, 1, lossy);
  for (EventIndex i = 1; i <= 100; ++i) net.push(0, 1, wire(0, i), i);
  EXPECT_LT(net.drain(1).size(), 50u);  // overwhelmingly dropped
  // The reverse link keeps the fault-free default.
  for (EventIndex i = 1; i <= 10; ++i) net.push(1, 0, wire(1, i), i);
  EXPECT_EQ(net.drain(0).size(), 10u);
}

}  // namespace
}  // namespace syncon
