// Round-trip and framing tests for the compressed wire codec
// (online/wire_codec.hpp): chained delta frames on a FIFO link, the
// periodic absolute escape, resync behavior, and the size win over dense
// serialization that is the backend's reason to exist.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <span>
#include <vector>

#include "model/compressed_clock.hpp"
#include "online/online_system.hpp"
#include "online/wire_codec.hpp"
#include "support/contracts.hpp"

namespace syncon {
namespace {

// A plausible FIFO stream: the sender's clock advances its own component
// every message and occasionally absorbs someone else's progress.
std::vector<WireMessage> sender_stream(std::size_t procs, int count,
                                       unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<std::size_t> comp(0, procs - 1);
  std::uniform_int_distribution<ClockValue> bump(1, 3);
  std::vector<WireMessage> out;
  VectorClock clock(procs, 1);
  for (int i = 0; i < count; ++i) {
    clock.tick(0);
    if (i % 3 == 1) clock.set(comp(rng), clock.at(comp(rng)) + bump(rng));
    out.push_back(WireMessage{{0, static_cast<EventIndex>(i + 1)}, clock});
  }
  return out;
}

TEST(WireCodecTest, RoundTripsAFifoStream) {
  const auto stream = sender_stream(16, 50, 31);
  LinkEncoder enc(16, 8);
  LinkDecoder dec(16);
  std::vector<std::uint8_t> bytes;
  for (const WireMessage& m : stream) enc.encode(m, bytes);

  std::span<const std::uint8_t> in(bytes);
  for (const WireMessage& m : stream) {
    const WireMessage got = dec.decode(in);
    EXPECT_EQ(got.source, m.source);
    EXPECT_EQ(got.clock, m.clock);
  }
  EXPECT_TRUE(in.empty());
  EXPECT_TRUE(dec.synced());
}

TEST(WireCodecTest, DeltaFramesAreSmallerThanDenseSerialization) {
  const std::size_t procs = 256;
  const auto stream = sender_stream(procs, 64, 37);
  LinkEncoder enc(procs, 16);
  std::vector<std::uint8_t> delta_bytes;
  std::size_t max_delta_frame = 0;
  for (const WireMessage& m : stream) {
    const std::size_t n = enc.encode(m, delta_bytes);
    if (delta_bytes.back() != 0) {  // crude: count only non-first frames
      max_delta_frame = std::max(max_delta_frame, n);
    }
  }
  std::vector<std::uint8_t> dense_bytes;
  for (const WireMessage& m : stream) m.clock.encode(dense_bytes);
  // The chained encoding must beat even the varint-compressed dense form,
  // and individual delta frames must be far below |P| bytes.
  EXPECT_LT(delta_bytes.size(), dense_bytes.size() / 4);
  EXPECT_LT(max_delta_frame, procs / 4);
}

TEST(WireCodecTest, FullIntervalOneIsSelfSynchronizing) {
  const auto stream = sender_stream(8, 10, 41);
  LinkEncoder enc(8, 1);  // every frame absolute
  std::vector<std::uint8_t> bytes;
  std::vector<std::size_t> starts;
  for (const WireMessage& m : stream) {
    starts.push_back(bytes.size());
    enc.encode(m, bytes);
  }
  // A decoder may join at ANY frame boundary.
  for (std::size_t k = 0; k < stream.size(); ++k) {
    LinkDecoder dec(8);
    std::span<const std::uint8_t> in(bytes);
    in = in.subspan(starts[k]);
    const WireMessage got = dec.decode(in);
    EXPECT_EQ(got.clock, stream[k].clock);
  }
}

TEST(WireCodecTest, UnsyncedDeltaFrameIsRejectedUntilNextFullFrame) {
  const auto stream = sender_stream(8, 6, 43);
  LinkEncoder enc(8, 100);  // only the first frame is absolute
  std::vector<std::uint8_t> bytes;
  std::vector<std::size_t> starts;
  for (const WireMessage& m : stream) {
    starts.push_back(bytes.size());
    enc.encode(m, bytes);
  }
  LinkDecoder dec(8);
  std::span<const std::uint8_t> in(bytes);
  in = in.subspan(starts[2]);  // join mid-stream: delta frame
  EXPECT_THROW(dec.decode(in), ContractViolation);
  EXPECT_FALSE(dec.synced());
}

TEST(WireCodecTest, EncoderResetForcesAbsoluteFrameForRejoiningReceiver) {
  const auto stream = sender_stream(8, 8, 47);
  LinkEncoder enc(8, 100);
  LinkDecoder dec(8);
  std::vector<std::uint8_t> bytes;
  for (int i = 0; i < 4; ++i) enc.encode(stream[static_cast<std::size_t>(i)], bytes);

  // Receiver restarts (e.g. after the resync path replayed history): it
  // asks the sender to reset, which makes the next frame absolute.
  enc.reset();
  std::vector<std::uint8_t> tail;
  for (std::size_t i = 4; i < stream.size(); ++i) enc.encode(stream[i], tail);
  std::span<const std::uint8_t> in(tail);
  for (std::size_t i = 4; i < stream.size(); ++i) {
    const WireMessage got = dec.decode(in);
    EXPECT_EQ(got.source, stream[i].source);
    EXPECT_EQ(got.clock, stream[i].clock);
  }
}

TEST(WireCodecTest, RelativeEncodingRoundTripsRandomPairs) {
  std::mt19937 rng(53);
  std::uniform_int_distribution<ClockValue> dist(0, 40);
  for (int round = 0; round < 100; ++round) {
    const std::size_t size = static_cast<std::size_t>(1 + round % 17);
    CompressedClock base(size, 0);
    CompressedClock next(size, 0);
    for (std::size_t i = 0; i < size; ++i) {
      base.set(i, dist(rng));
      // Mostly unchanged components, occasionally moved in either
      // direction — deltas may be negative (resync can regress a link).
      next.set(i, round % 4 == 0 ? dist(rng) : base.at(i));
    }
    std::vector<std::uint8_t> bytes;
    next.encode_relative(base, bytes);
    std::span<const std::uint8_t> in(bytes);
    EXPECT_EQ(CompressedClock::decode_relative(base, in), next);
    EXPECT_TRUE(in.empty());
  }
}

TEST(WireCodecTest, CodecIntegratesWithOnlineSystemWire) {
  // End-to-end: clocks produced by the live protocol survive the codec.
  // Two sends chained on one link make the second frame a delta frame.
  OnlineSystem sys(3);
  LinkEncoder enc0(3, 4);
  LinkDecoder dec0(3);
  std::vector<std::uint8_t> bytes;

  const auto m1 = sys.send(0);
  enc0.encode(m1, bytes);
  std::span<const std::uint8_t> in1(bytes);
  const WireMessage got1 = dec0.decode(in1);
  EXPECT_EQ(got1.clock, m1.clock);
  sys.deliver(2, got1);

  bytes.clear();
  LinkEncoder enc1(3, 4);
  LinkDecoder dec1(3);
  const auto m2 = sys.send(1);
  const auto m3 = sys.send(1);
  enc1.encode(m2, bytes);
  enc1.encode(m3, bytes);
  std::span<const std::uint8_t> in2(bytes);
  const WireMessage got2 = dec1.decode(in2);
  const WireMessage got3 = dec1.decode(in2);
  EXPECT_TRUE(in2.empty());
  EXPECT_EQ(got2.clock, m2.clock);
  EXPECT_EQ(got3.clock, m3.clock);
  sys.deliver(2, got2);
  sys.deliver(2, got3);
  EXPECT_FALSE(sys.has_gap(2));
}

}  // namespace
}  // namespace syncon
