#include <gtest/gtest.h>

#include "helpers.hpp"
#include "relations/evaluator.hpp"
#include "relations/inference.hpp"
#include "sim/interval_picker.hpp"
#include "support/contracts.hpp"

namespace syncon {
namespace {

using testing::property_sweep;

TEST(RelationKnowledgeTest, AssertAppliesImplications) {
  RelationKnowledge k(3);
  k.assert_fact(0, 1, Relation::R1);
  // R1 implies everything.
  for (const Relation r : kAllRelations) {
    EXPECT_TRUE(k.known(0, 1, r)) << to_string(r);
  }
  EXPECT_FALSE(k.known(1, 0, Relation::R4));
  EXPECT_EQ(k.fact_count(), 8u);
}

TEST(RelationKnowledgeTest, TransitiveChainOfR1) {
  RelationKnowledge k(4);
  k.assert_fact(0, 1, Relation::R1);
  k.assert_fact(1, 2, Relation::R1);
  k.assert_fact(2, 3, Relation::R1);
  EXPECT_FALSE(k.known(0, 3, Relation::R1));
  k.propagate();
  EXPECT_TRUE(k.known(0, 2, Relation::R1));
  EXPECT_TRUE(k.known(0, 3, Relation::R1));
  EXPECT_TRUE(k.known(1, 3, Relation::R4));
}

TEST(RelationKnowledgeTest, CompositionRespectsTableGaps) {
  RelationKnowledge k(3);
  k.assert_fact(0, 1, Relation::R4);
  k.assert_fact(1, 2, Relation::R4);
  k.propagate();
  // R4 ∘ R4 derives nothing.
  for (const Relation r : kAllRelations) {
    EXPECT_FALSE(k.known(0, 2, r)) << to_string(r);
  }
}

TEST(RelationKnowledgeTest, MixedChainDerivesWeakerFacts) {
  RelationKnowledge k(3);
  k.assert_fact(0, 1, Relation::R2);   // every x before some y
  k.assert_fact(1, 2, Relation::R1);   // all of Y before all of Z
  k.propagate();
  // R2 ∘ R1 = R1.
  EXPECT_TRUE(k.known(0, 2, Relation::R1));
}

TEST(RelationKnowledgeTest, BoundsChecked) {
  RelationKnowledge k(2);
  EXPECT_THROW(k.assert_fact(0, 2, Relation::R1), ContractViolation);
  EXPECT_THROW(k.assert_fact(0, 0, Relation::R1), ContractViolation);
  EXPECT_THROW(k.known(5, 0, Relation::R1), ContractViolation);
}

// ---------------------------------------------------------------------------
// Soundness sweep: seed with the true relations of a subset of pairs, then
// verify every propagated fact holds on the actual execution.
// ---------------------------------------------------------------------------

class InferencePropertyTest
    : public ::testing::TestWithParam<WorkloadConfig> {};

TEST_P(InferencePropertyTest, PropagatedFactsAreTrue) {
  const Execution exec = generate_execution(GetParam());
  const Timestamps ts(exec);
  RelationEvaluator eval(ts);
  Xoshiro256StarStar rng(GetParam().seed ^ 0xbead);
  IntervalSpec spec;
  spec.node_count = std::max<std::size_t>(1, exec.process_count() / 2);
  spec.max_events_per_node = 3;
  constexpr std::size_t kIntervals = 6;
  for (std::size_t i = 0; i < kIntervals; ++i) {
    eval.add_event(random_interval(exec, rng, spec, "I" + std::to_string(i)));
  }
  RelationKnowledge knowledge(kIntervals);
  // Seed with the true base-relation facts of consecutive pairs only (a
  // path through the interval set); propagation must stay sound on the
  // untouched pairs.
  for (std::size_t i = 0; i + 1 < kIntervals; ++i) {
    const EventCuts a(ts, eval.event(eval.handle_at(i)));
    const EventCuts b(ts, eval.event(eval.handle_at(i + 1)));
    ComparisonCounter counter;
    for (const Relation r : kAllRelations) {
      if (evaluate_fast(r, a, b, counter)) {
        knowledge.assert_fact(i, i + 1, r);
      }
    }
  }
  knowledge.propagate();
  // Every known fact must be true on the trace.
  for (std::size_t x = 0; x < kIntervals; ++x) {
    for (std::size_t y = 0; y < kIntervals; ++y) {
      if (x == y) continue;
      const EventCuts a(ts, eval.event(eval.handle_at(x)));
      const EventCuts b(ts, eval.event(eval.handle_at(y)));
      ComparisonCounter counter;
      for (const Relation r : kAllRelations) {
        if (knowledge.known(x, y, r)) {
          ASSERT_TRUE(evaluate_fast(r, a, b, counter))
              << to_string(r) << " inferred for (" << x << "," << y
              << ") but does not hold";
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, InferencePropertyTest,
                         ::testing::ValuesIn(property_sweep()),
                         testing::sweep_case_name);

}  // namespace
}  // namespace syncon
