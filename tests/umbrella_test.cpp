// Compile-level test: the umbrella header is self-contained and the whole
// public API is reachable through it.
#include "syncon.hpp"

#include <gtest/gtest.h>

namespace syncon {
namespace {

TEST(UmbrellaTest, EndToEndThroughTheUmbrellaHeader) {
  ExecutionBuilder b(2);
  const EventId a = b.local(0);
  const MessageToken m = b.send(0);
  const EventId r = b.receive(1, m);
  const Execution exec = b.build();
  const Timestamps ts(exec);
  RelationEvaluator eval(ts);
  const auto hx = eval.add_event(NonatomicEvent(exec, {a}, "X"));
  const auto hy = eval.add_event(NonatomicEvent(exec, {r}, "Y"));
  EXPECT_TRUE(
      eval.holds({Relation::R1, ProxyKind::End, ProxyKind::Begin}, hx, hy));
  EXPECT_EQ(compose(Relation::R1, Relation::R1), Relation::R1);
  EXPECT_TRUE(possibly(ts, [](const Cut& c) { return !c.is_bottom(); }));
}

}  // namespace
}  // namespace syncon
