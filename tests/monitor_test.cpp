#include <gtest/gtest.h>

#include <memory>

#include "helpers.hpp"
#include "monitor/monitor.hpp"
#include "monitor/mutex_checker.hpp"
#include "support/contracts.hpp"

namespace syncon {
namespace {

std::shared_ptr<const Execution> shared_two_process() {
  ExecutionBuilder b(2);
  b.local(0);                        // a1
  const MessageToken m = b.send(0);  // a2
  b.local(0);                        // a3
  b.local(1);                        // b1
  b.receive(1, m);                   // b2
  b.local(1);                        // b3
  return std::make_shared<const Execution>(b.build());
}

TEST(SyncMonitorTest, RegistersAndLooksUpByLabel) {
  SyncMonitor m(shared_two_process());
  const auto& exec = m.execution();
  m.add_interval(NonatomicEvent(exec, {EventId{0, 1}}, "first"));
  m.add_interval(NonatomicEvent(exec, {EventId{1, 3}}, "last"));
  EXPECT_EQ(m.interval_count(), 2u);
  EXPECT_TRUE(m.find("first").has_value());
  EXPECT_FALSE(m.find("absent").has_value());
  EXPECT_EQ(m.interval(m.handle("last")).label(), "last");
  EXPECT_EQ(m.labels(), (std::vector<std::string>{"first", "last"}));
  EXPECT_THROW(m.handle("absent"), ContractViolation);
}

TEST(SyncMonitorTest, RejectsDuplicateAndUnlabeled) {
  SyncMonitor m(shared_two_process());
  const auto& exec = m.execution();
  m.add_interval(NonatomicEvent(exec, {EventId{0, 1}}, "x"));
  EXPECT_THROW(m.add_interval(NonatomicEvent(exec, {EventId{0, 2}}, "x")),
               ContractViolation);
  EXPECT_THROW(m.add_interval(NonatomicEvent(exec, {EventId{0, 2}})),
               ContractViolation);
}

TEST(SyncMonitorTest, CheckParsesAndEvaluates) {
  SyncMonitor m(shared_two_process());
  const auto& exec = m.execution();
  m.add_interval(NonatomicEvent(exec, {EventId{0, 1}, EventId{0, 2}}, "X"));
  m.add_interval(NonatomicEvent(exec, {EventId{1, 2}, EventId{1, 3}}, "Y"));
  EXPECT_TRUE(m.check("R1(U,L)", "X", "Y"));
  EXPECT_FALSE(m.check("R4", "Y", "X"));
  EXPECT_TRUE(m.check("R1 & R2 & !R4(U,U) | R4(U,U)", "X", "Y"));
}

TEST(SyncMonitorTest, FindPairsScansOrderedPairs) {
  SyncMonitor m(shared_two_process());
  const auto& exec = m.execution();
  const auto a = m.add_interval(NonatomicEvent(exec, {EventId{0, 1}}, "a"));
  const auto b = m.add_interval(NonatomicEvent(exec, {EventId{1, 2}}, "b"));
  const auto c = m.add_interval(NonatomicEvent(exec, {EventId{1, 3}}, "c"));
  const auto pairs = m.find_pairs(SyncCondition::parse("R1(U,L)"));
  // a ≺ b ≺ c: expect (a,b), (a,c), (b,c).
  ASSERT_EQ(pairs.size(), 3u);
  EXPECT_EQ(pairs[0], std::make_pair(a, b));
  EXPECT_EQ(pairs[1], std::make_pair(a, c));
  EXPECT_EQ(pairs[2], std::make_pair(b, c));
}

TEST(SyncMonitorTest, RelationsBetweenReturnsConsistentSet) {
  SyncMonitor m(shared_two_process());
  const auto& exec = m.execution();
  const auto x =
      m.add_interval(NonatomicEvent(exec, {EventId{0, 1}}, "X"));
  const auto y =
      m.add_interval(NonatomicEvent(exec, {EventId{1, 2}}, "Y"));
  const auto rels = m.relations_between(x, y);
  // Atomic x ≺ atomic y: all 32 relations hold.
  EXPECT_EQ(rels.size(), 32u);
  const auto none = m.relations_between(y, x);
  EXPECT_TRUE(none.empty());
}

TEST(SyncMonitorTest, TimedDeadlineQueries) {
  auto exec = shared_two_process();
  SyncMonitor m(exec);
  m.add_interval(NonatomicEvent(*exec, {EventId{0, 1}, EventId{0, 2}}, "X"));
  m.add_interval(NonatomicEvent(*exec, {EventId{1, 2}, EventId{1, 3}}, "Y"));
  EXPECT_FALSE(m.has_times());
  EXPECT_THROW(m.times(), ContractViolation);
  auto times = std::make_shared<const PhysicalTimes>(
      *exec, std::vector<std::vector<TimePoint>>{{10, 20, 30}, {1, 25, 40}});
  m.attach_times(times);
  ASSERT_TRUE(m.has_times());
  const TimingConstraint window{"w", Anchor::End, Anchor::Start, 0, 10};
  const TimingCheckResult r = m.check_deadline(window, "X", "Y");
  EXPECT_EQ(r.measured_gap, 5);  // X ends 20, Y starts 25
  EXPECT_TRUE(r.satisfied);
  const TimingConstraint tight{"t", Anchor::End, Anchor::Start, 0, 4};
  EXPECT_FALSE(m.check_deadline(tight, "X", "Y").satisfied);
}

TEST(SyncMonitorTest, RejectsForeignTimeline) {
  auto exec_a = shared_two_process();
  auto exec_b = shared_two_process();
  SyncMonitor m(exec_a);
  auto times = std::make_shared<const PhysicalTimes>(
      *exec_b, std::vector<std::vector<TimePoint>>{{10, 20, 30}, {1, 25, 40}});
  EXPECT_THROW(m.attach_times(times), ContractViolation);
}

TEST(MutexCheckerTest, DetectsOverlap) {
  // CS occupancies on a shared two-process resource: A and B ordered via a
  // message, C concurrent with both.
  ExecutionBuilder bld(3);
  const EventId a1 = bld.local(0);
  const MessageToken hand = bld.send(0);
  const EventId b1 = bld.receive(1, hand);
  const EventId b2 = bld.local(1);
  const EventId c1 = bld.local(2);
  auto exec = std::make_shared<const Execution>(bld.build());
  SyncMonitor m(exec);
  m.add_interval(NonatomicEvent(*exec, {a1, hand.source()}, "cs-A"));
  m.add_interval(NonatomicEvent(*exec, {b1, b2}, "cs-B"));
  m.add_interval(NonatomicEvent(*exec, {c1}, "cs-C"));

  const auto ordered = check_mutual_exclusion(m, {"cs-A", "cs-B"});
  EXPECT_TRUE(ordered.ok());
  EXPECT_EQ(ordered.pairs_checked, 1u);

  const auto bad = check_mutual_exclusion(m, {"cs-A", "cs-B", "cs-C"});
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.pairs_checked, 3u);
  ASSERT_EQ(bad.violations.size(), 2u);  // C overlaps both A and B
  EXPECT_EQ(bad.violations[0].second, "cs-C");
}

TEST(MutexCheckerTest, PhaseWorkloadCriticalSectionsAreExclusive) {
  // Barrier phases serialize everything: windows of different phases are
  // valid "critical sections".
  WorkloadConfig cfg;
  cfg.topology = Topology::Phases;
  cfg.process_count = 4;
  cfg.events_per_process = 12;
  cfg.phase_count = 3;
  auto exec = std::make_shared<const Execution>(generate_execution(cfg));
  SyncMonitor m(exec);
  // One interval per phase: the coordinator's gather + release events.
  // Locate them via the receive structure: coordinator is process 0.
  std::vector<std::string> labels;
  std::vector<EventId> gathers;
  for (EventIndex k = 1; k <= exec->real_count(0); ++k) {
    if (!exec->incoming(EventId{0, k}).empty()) gathers.push_back({0, k});
  }
  ASSERT_EQ(gathers.size(), 3u);
  for (std::size_t i = 0; i < gathers.size(); ++i) {
    const std::string label = "phase" + std::to_string(i);
    // Gather + the following release send.
    m.add_interval(NonatomicEvent(
        *exec, {gathers[i], EventId{0, gathers[i].index + 1}}, label));
    labels.push_back(label);
  }
  EXPECT_TRUE(check_mutual_exclusion(m, labels).ok());
}

}  // namespace
}  // namespace syncon
