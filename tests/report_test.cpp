#include <gtest/gtest.h>

#include <memory>

#include "monitor/report.hpp"
#include "sim/scenarios.hpp"

namespace syncon {
namespace {

SyncMonitor monitored_scenario() {
  const Scenario s = make_process_control({});
  SyncMonitor m(s.execution_ptr());
  for (const NonatomicEvent& iv : s.intervals()) m.add_interval(iv);
  return m;
}

TEST(ReportTest, ContainsAllSections) {
  const SyncMonitor m = monitored_scenario();
  const SyncCondition headline = SyncCondition::parse("R1(U,L)");
  ReportOptions options;
  options.headline = &headline;
  const std::string report = report_to_string(m, options);
  EXPECT_NE(report.find("=== trace ==="), std::string::npos);
  EXPECT_NE(report.find("=== intervals ==="), std::string::npos);
  EXPECT_NE(report.find("=== interaction types ==="), std::string::npos);
  EXPECT_NE(report.find("pairs satisfying R1(U,L)"), std::string::npos);
  EXPECT_NE(report.find("sample/0"), std::string::npos);
  EXPECT_NE(report.find("concurrency ratio"), std::string::npos);
}

TEST(ReportTest, MatrixCanBeDisabled) {
  const SyncMonitor m = monitored_scenario();
  ReportOptions options;
  options.interaction_matrix = false;
  const std::string report = report_to_string(m, options);
  EXPECT_EQ(report.find("=== interaction types ==="), std::string::npos);
  EXPECT_NE(report.find("=== intervals ==="), std::string::npos);
}

TEST(ReportTest, SensibleOnSingleInterval) {
  ExecutionBuilder b(1);
  b.local(0);
  auto exec = std::make_shared<const Execution>(b.build());
  SyncMonitor m(exec);
  m.add_interval(NonatomicEvent(*exec, {EventId{0, 1}}, "solo"));
  const std::string report = report_to_string(m);
  EXPECT_NE(report.find("solo"), std::string::npos);
  // No matrix section for fewer than two intervals.
  EXPECT_EQ(report.find("=== interaction types ==="), std::string::npos);
}

TEST(ReportTest, HeadlinePairsMatchMonitorQuery) {
  const SyncMonitor m = monitored_scenario();
  const SyncCondition headline = SyncCondition::parse("R4");
  ReportOptions options;
  options.headline = &headline;
  const std::string report = report_to_string(m, options);
  const auto pairs = m.find_pairs(headline);
  EXPECT_NE(report.find(std::to_string(pairs.size()) + " of"),
            std::string::npos);
}

}  // namespace
}  // namespace syncon
