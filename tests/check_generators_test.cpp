// The conformance subsystem's generators: every sampled artifact — cases,
// workload configs, conditions, fault schedules — is a pure function of its
// seed, and the case/repro plumbing round-trips losslessly.
#include <gtest/gtest.h>

#include <sstream>

#include "check/case.hpp"
#include "check/driver.hpp"
#include "check/generators.hpp"
#include "helpers.hpp"
#include "monitor/predicate.hpp"
#include "support/rng.hpp"

namespace syncon::check {
namespace {

TEST(CheckGeneratorsTest, GenerateCaseIsDeterministic) {
  for (std::uint64_t seed : {1ull, 99ull, 123456789ull}) {
    SYNCON_SEED_TRACE(seed);
    const CheckCase a = generate_case(seed);
    const CheckCase b = generate_case(seed);
    EXPECT_EQ(a, b);
    EXPECT_EQ(fingerprint(a), fingerprint(b));
  }
  EXPECT_NE(fingerprint(generate_case(1)), fingerprint(generate_case(2)));
}

TEST(CheckGeneratorsTest, GeneratedCasesAreWellFormed) {
  const int iters = testing::test_iters(40);
  for (int i = 0; i < iters; ++i) {
    const std::uint64_t seed = case_seed_for(11, static_cast<std::size_t>(i));
    SYNCON_SEED_TRACE(seed);
    const CheckCase c = generate_case(seed);
    EXPECT_TRUE(c.structurally_valid());
    const auto m = materialize(c);
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(m->exec->process_count(), c.process_count());
    EXPECT_EQ(m->x.size(), c.x_members.size());
    EXPECT_EQ(m->y.size(), c.y_members.size());
    // Extraction round-trips: the case of the materialized pair is the case.
    const CheckCase back =
        case_from_execution(*m->exec, m->x.events(), m->y.events());
    EXPECT_EQ(back.events_per_process, c.events_per_process);
    EXPECT_EQ(back.messages.size(), c.messages.size());
  }
}

TEST(CheckGeneratorsTest, CaseSeedStreamMatchesSplitMix) {
  SplitMix64 stream(77);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(case_seed_for(77, i), stream.next()) << "index " << i;
  }
}

TEST(CheckGeneratorsTest, FingerprintSeesEveryField) {
  const CheckCase base = generate_case(5);
  CheckCase c = base;
  c.events_per_process.back() += 1;
  EXPECT_NE(fingerprint(c), fingerprint(base));
  c = base;
  c.x_members.pop_back();
  EXPECT_NE(fingerprint(c), fingerprint(base));
  c = base;
  c.y_members.push_back(c.y_members.front());
  EXPECT_NE(fingerprint(c), fingerprint(base));
}

TEST(CheckGeneratorsTest, ReproRoundTrips) {
  const CheckCase c = generate_case(321);
  const ReproMeta meta{"fast_vs_naive", 321};
  const std::string text = repro_to_string(c, meta);
  std::istringstream is(text);
  const Repro repro = load_repro(is);
  EXPECT_EQ(repro.c, c);
  EXPECT_EQ(repro.meta.property, meta.property);
  EXPECT_EQ(repro.meta.case_seed, meta.case_seed);
}

TEST(CheckGeneratorsTest, ConditionsParseAndAgreeWithTheirOracle) {
  const Execution exec = testing::two_process_message();
  const Timestamps ts(exec);
  RelationEvaluator eval(ts);
  const EventHandle x = eval.add_event(
      NonatomicEvent(exec, {EventId{0, 1}, EventId{0, 2}}, "X"));
  const EventHandle y = eval.add_event(
      NonatomicEvent(exec, {EventId{1, 2}, EventId{1, 3}}, "Y"));

  Xoshiro256StarStar rng(2024);
  const int iters = testing::test_iters(50);
  for (int i = 0; i < iters; ++i) {
    const ConditionCase cc = generate_condition(rng, 4);
    SCOPED_TRACE(cc.text);
    SyncCondition parsed = SyncCondition::parse(cc.text);
    EXPECT_EQ(parsed.evaluate(eval, x, y), cc.oracle(eval, x, y));
    EXPECT_EQ(parsed.evaluate(eval, y, x), cc.oracle(eval, y, x));
  }
}

TEST(CheckGeneratorsTest, LinkFaultsStayInTheDocumentedEnvelope) {
  Xoshiro256StarStar rng(9);
  for (int i = 0; i < 100; ++i) {
    const LinkFaultConfig link = generate_link_faults(rng);
    EXPECT_GE(link.drop_probability, 0.05);
    EXPECT_LE(link.drop_probability, 0.35);
    EXPECT_GE(link.duplicate_probability, 0.05);
    EXPECT_LE(link.duplicate_probability, 0.35);
    EXPECT_GE(link.reorder_probability, 0.05);
    EXPECT_LE(link.reorder_probability, 0.35);
    EXPECT_GE(link.min_delay, 1);
    EXPECT_LE(link.max_delay, 60);
    EXPECT_LE(link.min_delay, link.max_delay);
  }
}

TEST(CheckGeneratorsTest, RandomWorkloadConfigHonorsBounds) {
  WorkloadBounds bounds;
  bounds.min_processes = 3;
  bounds.max_processes = 5;
  bounds.min_events_per_process = 4;
  bounds.max_events_per_process = 9;
  bounds.min_send_probability = 0.2;
  bounds.max_send_probability = 0.3;
  Xoshiro256StarStar rng(31);
  for (int i = 0; i < 200; ++i) {
    const WorkloadConfig cfg = random_workload_config(rng, bounds);
    EXPECT_GE(cfg.process_count, 3u);
    EXPECT_LE(cfg.process_count, 5u);
    EXPECT_GE(cfg.events_per_process, 4u);
    EXPECT_LE(cfg.events_per_process, 9u);
    EXPECT_GE(cfg.send_probability, 0.2);
    EXPECT_LE(cfg.send_probability, 0.3);
    const Execution exec = generate_execution(cfg);
    EXPECT_EQ(exec.process_count(), cfg.process_count);
  }
}

TEST(CheckGeneratorsTest, MaterializeRejectsBrokenCases) {
  CheckCase c;
  c.events_per_process = {2, 2};
  c.x_members = {EventId{0, 1}};
  c.y_members = {EventId{1, 1}};
  // A message cycle between the two chains admits no topological order.
  c.messages = {{EventId{0, 2}, EventId{1, 1}}, {EventId{1, 2}, EventId{0, 1}}};
  EXPECT_TRUE(c.structurally_valid());
  EXPECT_FALSE(materialize(c).has_value());
  // Out-of-range member: structurally invalid before materialization.
  CheckCase bad;
  bad.events_per_process = {1};
  bad.x_members = {EventId{0, 2}};
  bad.y_members = {EventId{0, 1}};
  EXPECT_FALSE(bad.structurally_valid());
  EXPECT_FALSE(materialize(bad).has_value());
}

}  // namespace
}  // namespace syncon::check
