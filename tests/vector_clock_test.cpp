#include <gtest/gtest.h>

#include <sstream>

#include "model/clock.hpp"
#include "model/vector_clock.hpp"
#include "support/contracts.hpp"

namespace syncon {
namespace {

TEST(VectorClockTest, FillConstructor) {
  VectorClock vc(3, 7);
  ASSERT_EQ(vc.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(vc.at(i), 7u);
}

TEST(VectorClockTest, ComponentAccessChecked) {
  VectorClock vc(2);
  EXPECT_THROW(vc.at(2), ContractViolation);
  EXPECT_THROW(vc.set(5, 1), ContractViolation);
  EXPECT_THROW(vc.tick(2), ContractViolation);
  const VectorClock& cvc = vc;
  EXPECT_THROW(cvc[5], ContractViolation);
}

TEST(VectorClockTest, MergeMaxTakesComponentwiseMax) {
  VectorClock a({1, 5, 3});
  const VectorClock b({4, 2, 3});
  a.merge_max(b);
  EXPECT_EQ(a, VectorClock({4, 5, 3}));
}

TEST(VectorClockTest, MergeMinTakesComponentwiseMin) {
  VectorClock a({1, 5, 3});
  const VectorClock b({4, 2, 3});
  a.merge_min(b);
  EXPECT_EQ(a, VectorClock({1, 2, 3}));
}

TEST(VectorClockTest, MergeSizeMismatchRejected) {
  VectorClock a(2), b(3);
  EXPECT_THROW(a.merge_max(b), ContractViolation);
  EXPECT_THROW(a.merge_min(b), ContractViolation);
}

TEST(VectorClockTest, LeqIsComponentwise) {
  const VectorClock a({1, 2, 3});
  const VectorClock b({1, 3, 3});
  EXPECT_TRUE(a.leq(b));
  EXPECT_FALSE(b.leq(a));
  EXPECT_TRUE(a.leq(a));
}

TEST(VectorClockTest, LtIsStrict) {
  const VectorClock a({1, 2});
  const VectorClock b({1, 3});
  EXPECT_TRUE(a.lt(b));
  EXPECT_FALSE(a.lt(a));
  EXPECT_FALSE(b.lt(a));
}

TEST(VectorClockTest, IncomparableDetected) {
  const VectorClock a({1, 4});
  const VectorClock b({2, 3});
  EXPECT_TRUE(a.incomparable(b));
  EXPECT_TRUE(b.incomparable(a));
  EXPECT_FALSE(a.incomparable(a));
}

TEST(VectorClockTest, LatticeAlgebra) {
  const VectorClock a({1, 4, 2});
  const VectorClock b({2, 3, 2});
  const VectorClock lo = component_min(a, b);
  const VectorClock hi = component_max(a, b);
  // min is the greatest lower bound, max the least upper bound.
  EXPECT_TRUE(lo.leq(a));
  EXPECT_TRUE(lo.leq(b));
  EXPECT_TRUE(a.leq(hi));
  EXPECT_TRUE(b.leq(hi));
  // Absorption: min(a, max(a,b)) == a.
  EXPECT_EQ(component_min(a, hi), a);
  EXPECT_EQ(component_max(a, lo), a);
}

TEST(VectorClockTest, StreamFormat) {
  std::ostringstream oss;
  oss << VectorClock({1, 2, 3});
  EXPECT_EQ(oss.str(), "[1 2 3]");
}

}  // namespace
}  // namespace syncon
