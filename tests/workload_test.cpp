#include <gtest/gtest.h>

#include "helpers.hpp"
#include "model/timestamps.hpp"
#include "sim/interval_picker.hpp"
#include "sim/workload.hpp"
#include "support/contracts.hpp"

namespace syncon {
namespace {

using testing::property_sweep;

TEST(WorkloadTest, SameSeedSameExecution) {
  WorkloadConfig cfg;
  cfg.seed = 77;
  const Execution a = generate_execution(cfg);
  const Execution b = generate_execution(cfg);
  ASSERT_EQ(a.process_count(), b.process_count());
  for (ProcessId p = 0; p < a.process_count(); ++p) {
    ASSERT_EQ(a.real_count(p), b.real_count(p));
  }
  ASSERT_EQ(a.messages().size(), b.messages().size());
  for (std::size_t i = 0; i < a.messages().size(); ++i) {
    ASSERT_EQ(a.messages()[i], b.messages()[i]);
  }
}

TEST(WorkloadTest, DifferentSeedsDiffer) {
  WorkloadConfig cfg;
  cfg.seed = 1;
  const Execution a = generate_execution(cfg);
  cfg.seed = 2;
  const Execution b = generate_execution(cfg);
  // Either the message sets differ or the per-process counts do.
  bool differ = a.messages().size() != b.messages().size();
  if (!differ) {
    for (std::size_t i = 0; i < a.messages().size(); ++i) {
      if (!(a.messages()[i] == b.messages()[i])) {
        differ = true;
        break;
      }
    }
  }
  EXPECT_TRUE(differ);
}

TEST(WorkloadTest, VolumeNearTarget) {
  WorkloadConfig cfg;
  cfg.process_count = 6;
  cfg.events_per_process = 30;
  const Execution exec = generate_execution(cfg);
  std::size_t total = exec.total_real_count();
  EXPECT_GE(total, 6u * 30u);
  EXPECT_LE(total, 6u * 30u + 200u);  // drain slack
}

TEST(WorkloadTest, RingMessagesFollowTheRing) {
  WorkloadConfig cfg;
  cfg.topology = Topology::Ring;
  cfg.process_count = 5;
  cfg.send_probability = 0.5;
  const Execution exec = generate_execution(cfg);
  ASSERT_GT(exec.messages().size(), 0u);
  for (const Message& m : exec.messages()) {
    EXPECT_EQ((m.source.process + 1) % 5, m.target.process);
  }
}

TEST(WorkloadTest, ClientServerMessagesTouchTheServer) {
  WorkloadConfig cfg;
  cfg.topology = Topology::ClientServer;
  cfg.process_count = 4;
  cfg.send_probability = 0.5;
  const Execution exec = generate_execution(cfg);
  ASSERT_GT(exec.messages().size(), 0u);
  for (const Message& m : exec.messages()) {
    EXPECT_TRUE(m.source.process == 0 || m.target.process == 0);
  }
}

TEST(WorkloadTest, PhasesImposeBarrierCausality) {
  WorkloadConfig cfg;
  cfg.topology = Topology::Phases;
  cfg.process_count = 4;
  cfg.events_per_process = 12;
  cfg.phase_count = 3;
  const Execution exec = generate_execution(cfg);
  const Timestamps ts(exec);
  // The first event of every process precedes the last event of every other
  // process (through the barrier releases).
  for (ProcessId p = 0; p < 4; ++p) {
    for (ProcessId q = 0; q < 4; ++q) {
      if (p == q) continue;
      ASSERT_TRUE(ts.lt(EventId{p, 1}, EventId{q, exec.real_count(q)}));
    }
  }
}

TEST(WorkloadTest, SingleProcessNeedsNoMessages) {
  WorkloadConfig cfg;
  cfg.process_count = 1;
  cfg.send_probability = 0.0;
  const Execution exec = generate_execution(cfg);
  EXPECT_EQ(exec.process_count(), 1u);
  EXPECT_TRUE(exec.messages().empty());
}

TEST(WorkloadTest, SingleProcessWithMessagesRejected) {
  WorkloadConfig cfg;
  cfg.process_count = 1;
  cfg.send_probability = 0.3;
  EXPECT_THROW(generate_execution(cfg), ContractViolation);
}

TEST(IntervalPickerTest, RespectsSpec) {
  WorkloadConfig cfg;
  cfg.process_count = 6;
  const Execution exec = generate_execution(cfg);
  Xoshiro256StarStar rng(5);
  IntervalSpec spec;
  spec.node_count = 3;
  spec.max_events_per_node = 2;
  for (int i = 0; i < 100; ++i) {
    const NonatomicEvent iv = random_interval(exec, rng, spec, "t");
    EXPECT_LE(iv.node_count(), 3u);
    EXPECT_GE(iv.node_count(), 1u);
    for (const ProcessId p : iv.node_set()) {
      const EventIndex lo = iv.least_on(p).index;
      const EventIndex hi = iv.greatest_on(p).index;
      EXPECT_LE(hi - lo + 1, 2u);
    }
  }
}

TEST(IntervalPickerTest, EventsAreContiguousPerNode) {
  WorkloadConfig cfg;
  const Execution exec = generate_execution(cfg);
  Xoshiro256StarStar rng(9);
  IntervalSpec spec;
  spec.node_count = 2;
  spec.max_events_per_node = 4;
  const NonatomicEvent iv = random_interval(exec, rng, spec);
  for (const ProcessId p : iv.node_set()) {
    for (EventIndex k = iv.least_on(p).index; k <= iv.greatest_on(p).index;
         ++k) {
      EXPECT_TRUE(iv.contains(EventId{p, k}));
    }
  }
}

TEST(IntervalPickerTest, WindowedIntervalsPartitionTheTrace) {
  WorkloadConfig cfg;
  cfg.process_count = 3;
  cfg.events_per_process = 10;
  const Execution exec = generate_execution(cfg);
  const auto windows = windowed_intervals(exec, 4);
  ASSERT_GE(windows.size(), 2u);
  // Every real event is in exactly one window.
  std::size_t covered = 0;
  for (const auto& w : windows) covered += w.size();
  EXPECT_EQ(covered, exec.total_real_count());
  for (std::size_t k = 0; k < windows.size(); ++k) {
    EXPECT_EQ(windows[k].label(), "W" + std::to_string(k));
  }
}

TEST(IntervalPickerTest, EmptyExecutionRejected) {
  ExecutionBuilder b(2);
  const Execution exec = b.build();
  Xoshiro256StarStar rng(1);
  EXPECT_THROW(random_interval(exec, rng, IntervalSpec{}),
               ContractViolation);
}

}  // namespace
}  // namespace syncon
