#include "support/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "support/contracts.hpp"

namespace syncon {
namespace {

TEST(ThreadPoolTest, SizedToRequestOrHardware) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.thread_count(), 3u);
  ThreadPool defaulted;
  EXPECT_GE(defaulted.thread_count(), 1u);
  EXPECT_GE(ThreadPool::shared().thread_count(), 1u);
}

TEST(ThreadPoolTest, SubmitRunsTasks) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  std::atomic<int> remaining{50};
  std::mutex m;
  std::condition_variable done;
  for (int i = 0; i < 50; ++i) {
    pool.submit([&] {
      ran.fetch_add(1);
      std::lock_guard<std::mutex> lock(m);
      if (--remaining == 0) done.notify_one();
    });
  }
  std::unique_lock<std::mutex> lock(m);
  done.wait(lock, [&] { return remaining.load() == 0; });
  EXPECT_EQ(ran.load(), 50);
}

TEST(ThreadPoolTest, DrainWaitsForQueuedAndRunningTasks) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  // Slow head tasks keep workers busy so later submissions are still queued
  // when drain starts — drain must cover both.
  for (int i = 0; i < 2; ++i) {
    pool.submit([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      ran.fetch_add(1);
    });
  }
  for (int i = 0; i < 40; ++i) {
    pool.submit([&] { ran.fetch_add(1); });
  }
  pool.drain();
  EXPECT_EQ(ran.load(), 42);
  EXPECT_EQ(pool.pending(), 0u);
}

TEST(ThreadPoolTest, DrainOnIdlePoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.drain();  // nothing queued: must not block
  EXPECT_EQ(pool.pending(), 0u);
}

TEST(ThreadPoolTest, DrainIsReusableAcrossBatches) {
  ThreadPool pool(3);
  std::atomic<int> ran{0};
  for (int batch = 0; batch < 3; ++batch) {
    for (int i = 0; i < 25; ++i) {
      pool.submit([&] { ran.fetch_add(1); });
    }
    pool.drain();
    EXPECT_EQ(ran.load(), (batch + 1) * 25);
  }
}

TEST(ThreadPoolTest, ParallelForCoversEachIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kCount = 1000;
  std::vector<std::atomic<int>> hits(kCount);
  pool.parallel_for(kCount, [&](std::size_t, std::size_t begin,
                                std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForShardingIsStatic) {
  // The shard → index-range mapping is a pure function of (count, shards):
  // two runs see identical boundaries, the contract behind bit-identical
  // parallel aggregates.
  ThreadPool pool(3);
  auto boundaries = [&](std::size_t count) {
    std::vector<std::pair<std::size_t, std::size_t>> out(3);
    pool.parallel_for(count, [&](std::size_t shard, std::size_t begin,
                                 std::size_t end) { out[shard] = {begin, end}; },
                      3);
    return out;
  };
  const auto a = boundaries(100);
  const auto b = boundaries(100);
  EXPECT_EQ(a, b);
  // Contiguous, ordered, complete.
  EXPECT_EQ(a[0].first, 0u);
  EXPECT_EQ(a[0].second, a[1].first);
  EXPECT_EQ(a[1].second, a[2].first);
  EXPECT_EQ(a[2].second, 100u);
}

TEST(ThreadPoolTest, ParallelForHandlesDegenerateShapes) {
  ThreadPool pool(4);
  std::atomic<std::size_t> total{0};
  // count < shards: the pool must not invent indices.
  pool.parallel_for(2, [&](std::size_t, std::size_t begin, std::size_t end) {
    total.fetch_add(end - begin);
  });
  EXPECT_EQ(total.load(), 2u);
  // Empty range: no body invocation may see a non-empty range.
  pool.parallel_for(0, [&](std::size_t, std::size_t begin, std::size_t end) {
    EXPECT_EQ(begin, end);
  });
}

TEST(ThreadPoolTest, ParallelForPropagatesExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(100,
                        [&](std::size_t, std::size_t begin, std::size_t) {
                          if (begin > 0) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // The pool survives and stays usable.
  std::atomic<std::size_t> total{0};
  pool.parallel_for(10, [&](std::size_t, std::size_t begin, std::size_t end) {
    total.fetch_add(end - begin);
  });
  EXPECT_EQ(total.load(), 10u);
}

TEST(ThreadPoolTest, RejectsNullWork) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.submit(nullptr), ContractViolation);
  EXPECT_THROW(pool.parallel_for(4, nullptr), ContractViolation);
}

}  // namespace
}  // namespace syncon
