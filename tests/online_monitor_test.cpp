#include <gtest/gtest.h>

#include <vector>

#include "helpers.hpp"
#include "online/online_monitor.hpp"
#include "relations/naive.hpp"
#include "sim/interval_picker.hpp"
#include "support/contracts.hpp"

namespace syncon {
namespace {

using testing::property_sweep;

TEST(OnlineMonitorTest, LifecycleAndLookup) {
  OnlineSystem sys(2);
  OnlineMonitor monitor(sys);
  monitor.begin("a");
  EXPECT_TRUE(monitor.is_open("a"));
  EXPECT_FALSE(monitor.is_complete("a"));
  monitor.record("a", sys.local(0));
  const IntervalSummary& s = monitor.complete("a");
  EXPECT_EQ(s.label, "a");
  EXPECT_FALSE(monitor.is_open("a"));
  EXPECT_TRUE(monitor.is_complete("a"));
  EXPECT_NE(monitor.summary("a"), nullptr);
  EXPECT_EQ(monitor.summary("b"), nullptr);
}

TEST(OnlineMonitorTest, LifecycleContracts) {
  OnlineSystem sys(2);
  OnlineMonitor monitor(sys);
  monitor.begin("a");
  EXPECT_THROW(monitor.begin("a"), ContractViolation);
  EXPECT_THROW(monitor.record("b", EventId{0, 1}), ContractViolation);
  EXPECT_THROW(monitor.complete("a"), ContractViolation);  // empty
  monitor.record("a", sys.local(0));
  monitor.complete("a");
  EXPECT_THROW(monitor.begin("a"), ContractViolation);  // label reuse
}

TEST(OnlineMonitorTest, WatchFiresAtLaterCompletion) {
  OnlineSystem sys(2);
  OnlineMonitor monitor(sys);
  std::vector<std::pair<std::string, bool>> fired;
  monitor.begin("produce");
  monitor.begin("consume");
  monitor.watch({Relation::R1, ProxyKind::End, ProxyKind::Begin}, "produce",
                "consume",
                [&](const std::string& x, const std::string&, bool holds,
                    Confidence) { fired.emplace_back(x, holds); });

  monitor.record("produce", sys.local(0));
  const WireMessage m = sys.send(0);
  monitor.record("produce", m.source);
  monitor.complete("produce");
  EXPECT_TRUE(fired.empty());  // consumer still running

  monitor.record("consume", sys.deliver(1, m));
  monitor.record("consume", sys.local(1));
  monitor.complete("consume");
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].first, "produce");
  EXPECT_TRUE(fired[0].second);
}

TEST(OnlineMonitorTest, WatchRegisteredLateFiresImmediately) {
  OnlineSystem sys(2);
  OnlineMonitor monitor(sys);
  monitor.begin("a");
  monitor.record("a", sys.local(0));
  monitor.complete("a");
  monitor.begin("b");
  monitor.record("b", sys.local(1));
  monitor.complete("b");
  int calls = 0;
  bool value = true;
  monitor.watch({Relation::R4, ProxyKind::Begin, ProxyKind::End}, "a", "b",
                [&](const std::string&, const std::string&, bool holds,
                    Confidence conf) {
                  ++calls;
                  value = holds;
                  EXPECT_EQ(conf, Confidence::Definite);  // direct observer
                });
  EXPECT_EQ(calls, 1);
  EXPECT_FALSE(value);  // concurrent actions
}

TEST(OnlineMonitorTest, DeadlineWatchMeasuresGap) {
  OnlineSystem sys(2);
  OnlineMonitor monitor(sys);
  monitor.begin("req");
  const WireMessage m = sys.send(0, 1000);
  monitor.record("req", m.source);
  monitor.complete("req");
  monitor.begin("rsp");
  monitor.record("rsp", sys.deliver(1, m, 4000));
  monitor.complete("rsp");

  Duration measured = -1;
  bool ok = false;
  monitor.watch_deadline(
      TimingConstraint{"rt", Anchor::End, Anchor::End, 0, 2500}, "req", "rsp",
      [&](const std::string&, const std::string&, Duration gap_us,
          bool satisfied, Confidence) {
        measured = gap_us;
        ok = satisfied;
      });
  EXPECT_EQ(measured, 3000);
  EXPECT_FALSE(ok);  // 3000 > 2500 budget
}

TEST(OnlineMonitorTest, DeadlineOnUntimedActionsReportsUnsatisfied) {
  OnlineSystem sys(2);
  OnlineMonitor monitor(sys);
  monitor.begin("a");
  monitor.record("a", sys.local(0));  // no physical time
  monitor.complete("a");
  monitor.begin("b");
  monitor.record("b", sys.local(1, 500));
  monitor.complete("b");
  bool ok = true;
  monitor.watch_deadline(TimingConstraint{"d", Anchor::End, Anchor::Start, 0,
                                          1000},
                         "a", "b",
                         [&](const std::string&, const std::string&, Duration,
                             bool satisfied, Confidence) { ok = satisfied; });
  EXPECT_FALSE(ok);
}

TEST(OnlineMonitorTest, ReentrantCallbacksAreSafe) {
  // A callback that registers a follow-up watch and completes another
  // action — both must be handled without invalidation or missed firings.
  OnlineSystem sys(2);
  OnlineMonitor monitor(sys);
  monitor.begin("first");
  monitor.record("first", sys.local(0));
  monitor.begin("second");
  monitor.record("second", sys.local(1));
  int second_fired = 0;
  monitor.watch(
      {Relation::R4, ProxyKind::Begin, ProxyKind::End}, "first", "first",
      [&](const std::string&, const std::string&, bool, Confidence) {
        // Re-entrant: complete "second" and register a watch on it.
        monitor.complete("second");
        monitor.watch({Relation::R4, ProxyKind::Begin, ProxyKind::End},
                      "second", "second",
                      [&](const std::string&, const std::string&, bool,
                          Confidence) { ++second_fired; });
      });
  monitor.complete("first");  // fires the first watch, which cascades
  EXPECT_EQ(second_fired, 1);
}

TEST(OnlineMonitorTest, ForgetBoundsMemoryAndAllowsLabelReuse) {
  OnlineSystem sys(2);
  OnlineMonitor monitor(sys);
  for (int round = 0; round < 3; ++round) {
    monitor.begin("work");
    monitor.record("work", sys.local(0));
    monitor.complete("work");
    EXPECT_EQ(monitor.retained(), 1u);
    monitor.forget("work");
    EXPECT_EQ(monitor.retained(), 0u);
    EXPECT_FALSE(monitor.is_complete("work"));
  }
  EXPECT_THROW(monitor.forget("work"), ContractViolation);
}

TEST(OnlineMonitorTest, ForgetDropsDanglingWatches) {
  OnlineSystem sys(2);
  OnlineMonitor monitor(sys);
  monitor.begin("a");
  monitor.record("a", sys.local(0));
  monitor.complete("a");
  int calls = 0;
  monitor.watch({Relation::R4, ProxyKind::Begin, ProxyKind::End}, "a",
                "never",
                [&](const std::string&, const std::string&, bool, Confidence) {
                  ++calls;
                });
  monitor.forget("a");
  // The counterpart completing later cannot fire the dropped watch.
  monitor.begin("never");
  monitor.record("never", sys.local(1));
  monitor.complete("never");
  EXPECT_EQ(calls, 0);
}

TEST(OnlineMonitorTest, LatencyTrackingEmitsMonotoneWaterfalls) {
  OnlineSystem sys(2);
  OnlineMonitor monitor(sys);
  EXPECT_FALSE(monitor.latency_tracking());
  monitor.set_latency_tracking(true);
  ASSERT_TRUE(monitor.latency_tracking());

  monitor.begin("produce");
  monitor.begin("consume");
  monitor.watch({Relation::R1, ProxyKind::End, ProxyKind::Begin}, "produce",
                "consume",
                [](const std::string&, const std::string&, bool, Confidence) {
                });
  monitor.record("produce", sys.local(0));
  const WireMessage m = sys.send(0);
  monitor.record("produce", m.source);
  monitor.complete("produce");
  monitor.record("consume", sys.deliver(1, m));
  monitor.complete("consume");

  ASSERT_EQ(monitor.waterfalls().size(), 1u);
  const obs::Waterfall& fall = monitor.waterfalls().front();
  EXPECT_EQ(fall.x, "produce");
  EXPECT_EQ(fall.y, "consume");
  EXPECT_TRUE(fall.definite);  // direct observer
  EXPECT_EQ(fall.fire_index, 1);

  // The waterfall invariant: stages follow the pipeline taxonomy in order,
  // are contiguous clamped-monotone, and sum exactly to the end-to-end
  // detection latency.
  const auto taxonomy = obs::detect_stages();
  ASSERT_EQ(fall.stages.size(), taxonomy.size());
  for (std::size_t i = 0; i < taxonomy.size(); ++i) {
    EXPECT_EQ(fall.stages[i].stage, taxonomy[i]);
  }
  EXPECT_TRUE(fall.monotone());
  std::uint64_t sum = 0;
  for (const obs::StageSpan& s : fall.stages) sum += s.duration_us;
  EXPECT_EQ(sum, fall.total_us());
  EXPECT_EQ(fall.start_us + fall.total_us(), fall.end_us());
}

TEST(OnlineMonitorTest, DeadlineWatchesEmitWaterfallsToo) {
  OnlineSystem sys(2);
  OnlineMonitor monitor(sys);
  monitor.set_latency_tracking(true);
  monitor.begin("req");
  const WireMessage m = sys.send(0, 1000);
  monitor.record("req", m.source);
  monitor.complete("req");
  monitor.begin("rsp");
  monitor.record("rsp", sys.deliver(1, m, 4000));
  monitor.complete("rsp");
  monitor.watch_deadline(
      TimingConstraint{"rt", Anchor::End, Anchor::End, 0, 2500}, "req", "rsp",
      [](const std::string&, const std::string&, Duration, bool, Confidence) {
      });
  ASSERT_EQ(monitor.waterfalls().size(), 1u);
  EXPECT_TRUE(monitor.waterfalls().front().monotone());
}

TEST(OnlineMonitorTest, LatencyTrackingOffEmitsNothing) {
  OnlineSystem sys(2);
  OnlineMonitor monitor(sys);
  monitor.begin("a");
  monitor.record("a", sys.local(0));
  monitor.complete("a");
  monitor.watch({Relation::R4, ProxyKind::Begin, ProxyKind::End}, "a", "a",
                [](const std::string&, const std::string&, bool, Confidence) {
                });
  EXPECT_TRUE(monitor.waterfalls().empty());
}

// ---------------------------------------------------------------------------
// Proxy-summary property: the 32-relation online evaluation matches the
// offline naive evaluation of R(X̂, Ŷ) on the Defn-2 proxies.
// ---------------------------------------------------------------------------

class OnlineMonitorPropertyTest
    : public ::testing::TestWithParam<WorkloadConfig> {};

TEST_P(OnlineMonitorPropertyTest, ProxyRelationsMatchOffline) {
  const Execution exec = generate_execution(GetParam());
  const Timestamps ts(exec);
  const OnlineSystem sys = replay(exec);
  Xoshiro256StarStar rng(GetParam().seed ^ 0x0711);
  IntervalSpec spec;
  spec.node_count = std::max<std::size_t>(1, exec.process_count() / 2);
  spec.max_events_per_node = 3;
  for (int trial = 0; trial < 15; ++trial) {
    const NonatomicEvent x = random_interval(exec, rng, spec, "X");
    const NonatomicEvent y = random_interval(exec, rng, spec, "Y");
    IntervalTracker tx("X"), ty("Y");
    for (const EventId& e : x.events()) tx.add(sys, e);
    for (const EventId& e : y.events()) ty.add(sys, e);
    const IntervalSummary sx = tx.summary(), sy = ty.summary();
    for (const RelationId& id : all_relation_ids()) {
      ComparisonCounter counter;
      const bool online = evaluate_online(id, sx, sy, counter);
      const bool offline =
          evaluate_naive(id.relation, x.proxy_per_node(id.proxy_x),
                         y.proxy_per_node(id.proxy_y), ts, Semantics::Weak);
      ASSERT_EQ(online, offline) << to_string(id) << " trial " << trial;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, OnlineMonitorPropertyTest,
                         ::testing::ValuesIn(property_sweep()),
                         testing::sweep_case_name);

}  // namespace
}  // namespace syncon
