// Defn 13's remark: |P| components is "the minimum size of a
// clock/timestamp that is required to capture" the property
// e ≺ e' ⟺ T(e) < T(e'). This test makes the necessity concrete with the
// classical crown construction: n sender processes s_i multicast to n
// receiver processes r_j (j ≠ i), so a_i ≺ b_j iff i ≠ j. Dropping ANY
// sender component from the canonical clocks collapses some concurrent pair
// (a_i, b_i) into an apparent ordering.
#include <gtest/gtest.h>

#include <vector>

#include "model/reachability.hpp"
#include "model/timestamps.hpp"
#include "sim/metrics.hpp"

namespace syncon {
namespace {

struct Crown {
  Execution exec;
  std::vector<EventId> senders;    // a_i on process i
  std::vector<EventId> receivers;  // b_i on process n + i

  static Crown make(std::size_t n) {
    ExecutionBuilder b(2 * n);
    std::vector<MessageToken> tokens;
    std::vector<EventId> sends;
    for (ProcessId i = 0; i < n; ++i) {
      EventId e;
      tokens.push_back(b.send(i, &e));
      sends.push_back(e);
    }
    std::vector<EventId> recvs;
    for (std::size_t j = 0; j < n; ++j) {
      std::vector<MessageToken> foreign;
      for (std::size_t i = 0; i < n; ++i) {
        if (i != j) foreign.push_back(tokens[i]);
      }
      recvs.push_back(
          b.receive_all(static_cast<ProcessId>(n + j), foreign));
    }
    return Crown{b.build(), std::move(sends), std::move(recvs)};
  }
};

// leq under the clock with component `dropped` removed.
bool projected_leq(const VectorClock& a, const VectorClock& b,
                   std::size_t dropped) {
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (i == dropped) continue;
    if (a[i] > b[i]) return false;
  }
  return true;
}

TEST(ClockDimensionTest, CrownPairsAreConcurrentDiagonally) {
  const Crown crown = Crown::make(4);
  const Timestamps ts(crown.exec);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      if (i == j) {
        EXPECT_TRUE(ts.concurrent(crown.senders[i], crown.receivers[j]));
      } else {
        EXPECT_TRUE(ts.lt(crown.senders[i], crown.receivers[j]));
      }
    }
  }
}

TEST(ClockDimensionTest, DroppingAnySenderComponentBreaksTheIsomorphism) {
  constexpr std::size_t n = 4;
  const Crown crown = Crown::make(n);
  const Timestamps ts(crown.exec);
  for (std::size_t dropped = 0; dropped < n; ++dropped) {
    // With sender component `dropped` removed, the concurrent diagonal pair
    // (a_dropped, b_dropped) appears ordered: a false positive.
    const VectorClock& a = ts.forward_ref(crown.senders[dropped]);
    const VectorClock& b = ts.forward_ref(crown.receivers[dropped]);
    EXPECT_FALSE(a.leq(b));  // the full clock gets it right
    EXPECT_TRUE(projected_leq(a, b, dropped))
        << "dropping component " << dropped << " should misorder the pair";
  }
}

TEST(ClockDimensionTest, FullClocksRemainExactOnTheCrown) {
  constexpr std::size_t n = 5;
  const Crown crown = Crown::make(n);
  const Timestamps ts(crown.exec);
  const ReachabilityOracle oracle(crown.exec);
  for (const EventId& a : crown.exec.topological_order()) {
    for (const EventId& b : crown.exec.topological_order()) {
      ASSERT_EQ(ts.leq(a, b), oracle.leq(a, b));
    }
  }
}

}  // namespace
}  // namespace syncon
