// Explorer internals (DESIGN.md §3.14): canonical-schedule enumeration
// counts on a hand-counted universe, DPOR-vs-naive equivalence, the
// SYNCON_TEST_ITERS dial, the parallel frontier, the planted-bug loop, and
// the batch-order canonicalization regression the explorer depends on.
#include <algorithm>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "check/driver.hpp"
#include "explore/explorer.hpp"
#include "explore/invariants.hpp"
#include "helpers.hpp"
#include "online/online_system.hpp"
#include "relations/fast.hpp"

namespace syncon::explore {
namespace {

using check::CheckCase;
using check::DriverOptions;
using check::DriverReport;
using check::GenLimits;

// p0 runs three sends, p1 three arity-1 receives. Messages are
// interchangeable in *slots* but not in *sources*, so the inequivalent
// schedules are exactly the 3! = 6 bindings of messages to receives.
Universe pipeline_universe() {
  ExecutionBuilder b(2);
  const MessageToken m1 = b.send(0);
  const MessageToken m2 = b.send(0);
  const MessageToken m3 = b.send(0);
  b.receive(1, m1);
  b.receive(1, m2);
  b.receive(1, m3);
  return universe_from_execution(b.build());
}

/// Sorted multiset of 64-bit verdict strings across all explored traces —
/// the payload DPOR and naive enumeration must agree on.
std::multiset<std::string> verdict_set(const Universe& u,
                                       const ExploreOptions& options,
                                       const std::vector<EventId>& x,
                                       const std::vector<EventId>& y,
                                       ExploreStats* stats_out = nullptr) {
  std::multiset<std::string> verdicts;
  std::mutex mu;
  InvariantOptions inv;
  inv.mask = 0;  // verdict payload only
  const ExploreStats stats =
      explore(u, options, [&](const Schedule& s) {
        const ScheduleCheckResult r = check_schedule(u, s, x, y, inv);
        std::string bits;
        bits.reserve(r.verdicts.size());
        for (const bool v : r.verdicts) bits.push_back(v ? '1' : '0');
        const std::lock_guard<std::mutex> lock(mu);
        verdicts.insert(std::move(bits));
        return true;
      });
  if (stats_out) *stats_out = stats;
  return verdicts;
}

TEST(ExploreUniverseTest, HandCountedPipelineHasExactlySixClasses) {
  const Universe u = pipeline_universe();
  EXPECT_EQ(u.total_ops(), 6u);
  EXPECT_EQ(u.total_steps(), 6u);  // 3 exec (sends) + 3 deliveries

  std::size_t callbacks = 0;
  const ExploreStats stats =
      explore(u, {}, [&](const Schedule& s) {
        ++callbacks;
        // Every binding is a permutation: all three receives bound.
        EXPECT_EQ(s.binding.size(), 3u);
        return true;
      });
  EXPECT_EQ(stats.traces_visited, 6u);
  EXPECT_EQ(callbacks, 6u);
  // Arity-1 receives make canonical words 1:1 with bindings.
  EXPECT_EQ(stats.schedules_executed, 6u);
  EXPECT_EQ(stats.duplicate_traces, 0u);
  EXPECT_FALSE(stats.budget_exhausted);
}

TEST(ExploreUniverseTest, DporVisitsStrictlyFewerSchedulesThanNaive) {
  const Universe u = pipeline_universe();
  const std::vector<EventId> x{{0, 1}, {0, 2}, {0, 3}};
  const std::vector<EventId> y{{1, 1}, {1, 2}, {1, 3}};

  ExploreStats dpor_stats, naive_stats;
  const std::multiset<std::string> dpor_verdicts =
      verdict_set(u, {}, x, y, &dpor_stats);
  ExploreOptions naive;
  naive.dpor = false;
  const std::multiset<std::string> naive_verdicts =
      verdict_set(u, naive, x, y, &naive_stats);

  EXPECT_LT(dpor_stats.schedules_executed, naive_stats.schedules_executed);
  EXPECT_EQ(dpor_stats.traces_visited, naive_stats.traces_visited);
  EXPECT_EQ(dpor_verdicts, naive_verdicts);
  EXPECT_EQ(naive_stats.prefixes_pruned, 0u);
}

TEST(ExploreUniverseTest, GeneratedUniversesAgreeAcrossModes) {
  GenLimits limits;
  limits.workload.min_processes = 2;
  limits.workload.max_processes = 3;
  limits.workload.min_events_per_process = 2;
  limits.workload.max_events_per_process = 3;
  // The SYNCON_TEST_ITERS dial scales how many universes the sweep covers.
  const int iters = testing::test_iters(6);
  int compared = 0;
  for (int i = 0; compared < iters && i < 20 * iters; ++i) {
    const std::uint64_t seed =
        check::case_seed_for(20260808, static_cast<std::size_t>(i));
    SYNCON_SEED_TRACE(seed);
    const CheckCase c = check::generate_case(seed, limits);
    if (c.messages.size() > 6) continue;  // keep naive enumeration bounded
    const auto m = check::materialize(c);
    if (!m) continue;
    const Universe u = universe_from_execution(*m->exec);

    ExploreStats dpor_stats, naive_stats;
    const std::multiset<std::string> dpor_verdicts =
        verdict_set(u, {}, c.x_members, c.y_members, &dpor_stats);
    ExploreOptions naive;
    naive.dpor = false;
    const std::multiset<std::string> naive_verdicts =
        verdict_set(u, naive, c.x_members, c.y_members, &naive_stats);

    ASSERT_EQ(dpor_stats.traces_visited, naive_stats.traces_visited);
    ASSERT_LE(dpor_stats.schedules_executed, naive_stats.schedules_executed);
    ASSERT_EQ(dpor_verdicts, naive_verdicts);
    ++compared;
  }
  EXPECT_GT(compared, 0);
}

TEST(ExploreUniverseTest, ParallelFrontierMatchesSerial) {
  const Universe u = pipeline_universe();
  const std::vector<EventId> x{{0, 1}, {0, 2}, {0, 3}};
  const std::vector<EventId> y{{1, 1}, {1, 2}, {1, 3}};

  ExploreStats serial_stats, parallel_stats;
  const std::multiset<std::string> serial_verdicts =
      verdict_set(u, {}, x, y, &serial_stats);
  ExploreOptions par;
  par.parallel = true;
  const std::multiset<std::string> parallel_verdicts =
      verdict_set(u, par, x, y, &parallel_stats);

  EXPECT_EQ(parallel_stats.traces_visited, serial_stats.traces_visited);
  EXPECT_EQ(parallel_stats.schedules_executed, serial_stats.schedules_executed);
  EXPECT_EQ(parallel_verdicts, serial_verdicts);
}

TEST(ExploreInvariantTest, CoreBatteryHoldsOnSmallGeneratedUniverses) {
  GenLimits limits;
  limits.workload.min_processes = 2;
  limits.workload.max_processes = 4;
  limits.workload.min_events_per_process = 2;
  limits.workload.max_events_per_process = 4;
  const check::ScheduleInvarianceConfig gate =
      check::schedule_invariance_config();
  const int iters = testing::test_iters(8);
  int explored = 0;
  for (int i = 0; explored < iters && i < 30 * iters; ++i) {
    const std::uint64_t seed =
        check::case_seed_for(77, static_cast<std::size_t>(i));
    SYNCON_SEED_TRACE(seed);
    const CheckCase c = check::generate_case(seed, limits);
    if (c.process_count() > gate.max_processes ||
        c.messages.size() > gate.max_messages ||
        c.total_events() > gate.max_events) {
      continue;
    }
    const check::PropertyResult result = check::run_property_on_case(
        *check::find_property("schedule_invariance"), c);
    ASSERT_TRUE(result.passed) << result.message;
    ++explored;
  }
  EXPECT_GT(explored, 0);
}

// The planted-bug loop: with the wrong_r2 hook armed, exhaustive
// schedule_invariance must catch the fast-path divergence — through full
// enumeration of every explored universe, not through sampling luck.
struct PlantedBug {
  PlantedBug() { fast_debug_hooks().wrong_r2 = true; }
  ~PlantedBug() { fast_debug_hooks().wrong_r2 = false; }
};

TEST(ExploreInvariantTest, PlantedWrongR2IsCaughtExhaustively) {
  const PlantedBug plant;
  DriverOptions options;
  options.seed = 424242;
  options.max_cases = 60;
  options.properties = {"schedule_invariance"};
  options.exhaustive = true;
  options.stop_after_failures = 1;
  options.limits.workload.min_processes = 2;
  options.limits.workload.max_processes = 4;
  options.limits.workload.min_events_per_process = 2;
  options.limits.workload.max_events_per_process = 4;
  const DriverReport report = check::run_conformance(options);
  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_EQ(report.failures[0].property, "schedule_invariance");
  EXPECT_NE(report.failures[0].detail.find("relations"), std::string::npos)
      << report.failures[0].detail;
  // The minimized repro still fails, and the fixed library passes it.
  EXPECT_FALSE(check::run_property_on_case(
                   *check::find_property("schedule_invariance"),
                   report.failures[0].minimized)
                   .passed);
  fast_debug_hooks().wrong_r2 = false;
  EXPECT_TRUE(check::run_property_on_case(
                  *check::find_property("schedule_invariance"),
                  report.failures[0].minimized)
                  .passed);
  fast_debug_hooks().wrong_r2 = true;  // PlantedBug dtor restores false
}

// Satellite regression: delivery within a gather batch must be set-like.
// Permuting the batch order may not leak into the receive's source list,
// the clocks, or the reconstructed execution (the explorer relies on this —
// schedules of one trace must replay to bit-identical online state).
TEST(ExploreOnlineTest, BatchOrderPermutationIsCanonicalized) {
  struct Run {
    Execution exec;
    EventId recv;
    std::vector<EventId> sources;
    VectorClock clock;
  };
  const auto run = [](const std::vector<std::size_t>& order) {
    OnlineSystem sys(4);
    std::vector<WireMessage> wires;
    for (ProcessId p = 1; p <= 3; ++p) wires.push_back(sys.send(p));
    std::vector<WireMessage> batch;
    for (const std::size_t i : order) batch.push_back(wires[i]);
    const EventId recv = sys.deliver_all(0, batch);
    const auto span = sys.sources_of(recv);
    return Run{sys.to_execution(), recv,
               std::vector<EventId>(span.begin(), span.end()),
               sys.clock_of(recv)};
  };

  const Run a = run({0, 1, 2});
  const Run b = run({2, 0, 1});
  const Run c = run({1, 2, 0});
  EXPECT_EQ(a.recv, b.recv);
  EXPECT_EQ(a.recv, c.recv);
  EXPECT_EQ(a.sources, b.sources);
  EXPECT_EQ(a.sources, c.sources);
  EXPECT_EQ(a.clock, b.clock);
  EXPECT_EQ(a.clock, c.clock);

  const auto incoming = [](const Execution& e, EventId recv) {
    const auto span = e.incoming(recv);
    return std::vector<EventId>(span.begin(), span.end());
  };
  EXPECT_EQ(incoming(a.exec, a.recv), incoming(b.exec, b.recv));
  EXPECT_EQ(incoming(a.exec, a.recv), incoming(c.exec, c.recv));
  EXPECT_EQ(a.exec.messages(), b.exec.messages());
  EXPECT_EQ(a.exec.messages(), c.exec.messages());

  const Timestamps ts_a(a.exec), ts_b(b.exec);
  EXPECT_EQ(ts_a.forward_ref(a.recv), ts_b.forward_ref(b.recv));
}

}  // namespace
}  // namespace syncon::explore
