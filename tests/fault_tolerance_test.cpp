// The robustness headline (DESIGN.md §3.7): a faulty run plus recovery is
// indistinguishable from the fault-free run — same events, same clocks,
// bit-identical relation verdicts — and the whole fault schedule is a pure
// function of the seed.
#include <gtest/gtest.h>

#include <array>
#include <map>
#include <string>
#include <vector>

#include "cuts/watermark.hpp"
#include "helpers.hpp"
#include "monitor/report.hpp"
#include "monitor/trace_io.hpp"
#include "online/gap_tracker.hpp"
#include "online/online_monitor.hpp"
#include "sim/faulty_channel.hpp"
#include "support/contracts.hpp"

namespace syncon {
namespace {

// ---------------------------------------------------------------------------
// GapTracker unit behaviour.
// ---------------------------------------------------------------------------

TEST(GapTrackerTest, WitnessAndClaimTrackHoles) {
  GapTracker g(3);
  EXPECT_FALSE(g.has_gap());
  EXPECT_TRUE(g.witness(EventId{1, 1}));
  EXPECT_FALSE(g.witness(EventId{1, 1}));  // duplicate
  EXPECT_TRUE(g.witness(EventId{1, 3}));   // out of order: 2 not yet seen
  EXPECT_FALSE(g.has_gap());               // nothing claims 2 yet
  g.claim(1, 3);                           // someone vouches for 1..3
  EXPECT_TRUE(g.has_gap());
  EXPECT_TRUE(g.gap_on(1));
  EXPECT_FALSE(g.gap_on(2));
  EXPECT_EQ(g.missing(), (std::vector<EventId>{EventId{1, 2}}));
  EXPECT_EQ(g.resync_request().events, g.missing());
  EXPECT_TRUE(g.witness(EventId{1, 2}));  // hole closed, 3 absorbed
  EXPECT_FALSE(g.has_gap());
  EXPECT_TRUE(g.missing().empty());
}

TEST(GapTrackerTest, ClaimFromClockUsesDummyConvention) {
  // Clock component q counts the dummy, so clock[q] = k vouches for k-1
  // real events of q.
  GapTracker g(2);
  g.claim(VectorClock({3, 1}));  // 2 real events of p0, none of p1
  EXPECT_TRUE(g.gap_on(0));
  EXPECT_FALSE(g.gap_on(1));
  EXPECT_EQ(g.missing(),
            (std::vector<EventId>{EventId{0, 1}, EventId{0, 2}}));
}

// ---------------------------------------------------------------------------
// Application-level resync: lost message detected from a later clock,
// recovered from the sender's log, clocks converge.
// ---------------------------------------------------------------------------

TEST(FaultToleranceTest, GapDetectedAndResyncConverges) {
  // Reference: both messages delivered.
  OnlineSystem ref(2);
  const WireMessage r1 = ref.send(0);
  const WireMessage r2 = ref.send(0);
  ref.deliver(1, r1);
  ref.deliver(1, r2);

  // Faulty: m1 lost; delivering m2 exposes the hole via its clock.
  OnlineSystem sys(2);
  const WireMessage m1 = sys.send(0);
  const WireMessage m2 = sys.send(0);
  sys.deliver(1, m2);
  EXPECT_TRUE(sys.has_gap(1));
  EXPECT_EQ(sys.missing_at(1), (std::vector<EventId>{m1.source}));

  // Recovery: retransmit-request served from the sender's log.
  const RetransmitRequest req = sys.resync_request(1);
  const std::vector<WireMessage> replies = sys.serve(req);
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].source, m1.source);
  EXPECT_EQ(replies[0].clock, m1.clock);
  sys.deliver(1, replies[0]);
  EXPECT_FALSE(sys.has_gap(1));

  // Converged: p1 merged both clocks, exactly like the reference (the
  // receive ORDER differs, which the final clock does not depend on).
  EXPECT_EQ(sys.current_clock(1), ref.current_clock(1));
}

TEST(FaultToleranceTest, ServeSkipsEventsNoLogCanAnswer) {
  OnlineSystem sys(2);
  sys.send(0);
  const std::vector<WireMessage> replies =
      sys.serve(RetransmitRequest{{EventId{0, 1}, EventId{0, 99}}});
  ASSERT_EQ(replies.size(), 1u);  // 0:99 never executed (crashed sender)
  EXPECT_EQ(replies[0].source, (EventId{0, 1}));
}

// ---------------------------------------------------------------------------
// Headline: a scripted workload executed over a channel with ≥10% drop,
// duplicate AND reorder rates, with duplicates pushed through deliver and
// losses recovered via wire_of, reproduces the fault-free run bit-for-bit.
// ---------------------------------------------------------------------------

struct ConvergenceOutcome {
  std::string trace;
  std::vector<VectorClock> clocks;
  ChannelStats stats;
  std::uint64_t duplicates_suppressed = 0;
};

ConvergenceOutcome run_scripted(bool faulty, std::uint64_t seed) {
  constexpr std::size_t kProcs = 3;
  constexpr std::size_t kRounds = 25;
  LinkFaultConfig link;
  if (faulty) {
    link.drop_probability = 0.15;
    link.duplicate_probability = 0.15;
    link.reorder_probability = 0.20;
    link.min_delay = 1;
    link.max_delay = 40;
  }
  FaultPlan plan;
  plan.link = link;
  plan.seed = seed;
  FaultyNetwork net(kProcs, plan);

  OnlineSystem sys(kProcs);
  TimePoint t = 0;
  // Arrived-but-not-yet-consumed wires, per receiver.
  std::vector<std::map<EventId, WireMessage>> inbox(kProcs);

  // Drain arrivals: fresh wires wait in the inbox for the scripted
  // consume; copies of already-consumed wires go straight through
  // deliver, which must absorb them (idempotence under live traffic).
  const auto pump = [&](ProcessId q) {
    for (const Arrival& a : net.pop_ready(q, t)) {
      if (sys.already_delivered(q, a.message.source)) {
        const EventId again = sys.deliver(q, a.message);
        EXPECT_EQ(again, sys.deliver(q, a.message));
      } else {
        inbox[q].emplace(a.message.source, a.message);
      }
    }
  };

  for (std::size_t r = 0; r < kRounds; ++r) {
    // Each process: one local event, then two sends to its successor —
    // two wires in flight per link per round gives reordering a target.
    std::vector<std::array<WireMessage, 2>> wires(kProcs);
    for (ProcessId p = 0; p < kProcs; ++p) {
      sys.local(p);
      const auto to = static_cast<ProcessId>((p + 1) % kProcs);
      for (std::size_t k = 0; k < 2; ++k) {
        wires[p][k] = sys.send(p);
        net.push(p, to, wires[p][k], ++t);
      }
    }
    // The scripted consume: q takes its predecessor's wires in SEND
    // order regardless of arrival order, each as soon as it has landed.
    // Pumping in small time steps lets duplicate copies trail the
    // consume and hit the deliver-side suppression.
    std::vector<std::size_t> taken(kProcs, 0);
    for (int step = 0; step < 12; ++step) {
      t += 5;
      for (ProcessId q = 0; q < kProcs; ++q) {
        pump(q);
        const auto& exp = wires[(q + kProcs - 1) % kProcs];
        while (taken[q] < 2) {
          const auto it = inbox[q].find(exp[taken[q]].source);
          if (it == inbox[q].end()) break;
          sys.deliver(q, it->second);
          inbox[q].erase(it);
          ++taken[q];
        }
      }
    }
    // Whatever never arrived was dropped: the timeout path retransmits
    // it from the sender's authoritative log.
    for (ProcessId q = 0; q < kProcs; ++q) {
      const auto& exp = wires[(q + kProcs - 1) % kProcs];
      for (; taken[q] < 2; ++taken[q]) {
        const EventId want = exp[taken[q]].source;
        const auto it = inbox[q].find(want);
        if (it != inbox[q].end()) {
          sys.deliver(q, it->second);
          inbox[q].erase(it);
        } else {
          sys.deliver(q, sys.wire_of(want));
        }
      }
    }
  }
  // Drain the tail so late duplicates also pass through deliver.
  t += 100000;
  for (ProcessId q = 0; q < kProcs; ++q) pump(q);

  ConvergenceOutcome out;
  out.trace = trace_to_string(sys.to_execution());
  for (ProcessId p = 0; p < kProcs; ++p) {
    out.clocks.push_back(sys.current_clock(p));
  }
  out.stats = net.stats();
  out.duplicates_suppressed = sys.duplicates_suppressed();
  return out;
}

TEST(FaultToleranceTest, FaultyRunPlusRecoveryEqualsFaultFreeRun) {
  const ConvergenceOutcome clean = run_scripted(false, 11);
  const ConvergenceOutcome faulty = run_scripted(true, 11);
  // The faults really happened…
  EXPECT_GT(faulty.stats.dropped, 0u);
  EXPECT_GT(faulty.stats.duplicated, 0u);
  EXPECT_GT(faulty.stats.reordered, 0u);
  EXPECT_GT(faulty.duplicates_suppressed, 0u);
  // …and recovery erased them: bit-identical causal structure and clocks.
  EXPECT_EQ(clean.trace, faulty.trace);
  EXPECT_EQ(clean.clocks, faulty.clocks);
}

TEST(FaultToleranceTest, SameSeedSameFaultSchedule) {
  const ConvergenceOutcome a = run_scripted(true, 77);
  const ConvergenceOutcome b = run_scripted(true, 77);
  EXPECT_EQ(a.stats, b.stats);
  EXPECT_EQ(a.duplicates_suppressed, b.duplicates_suppressed);
  EXPECT_EQ(a.trace, b.trace);
  const ConvergenceOutcome c = run_scripted(true, 78);
  EXPECT_NE(a.stats, c.stats);  // a different schedule entirely
}

// ---------------------------------------------------------------------------
// Monitor-level convergence: the remote monitor ingests reports over a
// faulty channel, fires with PendingGap while reports are known-missing,
// then resyncs and converges to the fault-free verdicts, all Definite.
// ---------------------------------------------------------------------------

struct Fire {
  bool holds = false;
  Confidence conf = Confidence::Definite;
};

TEST(FaultToleranceTest, DegradedMonitorConvergesToFaultFreeVerdicts) {
  const auto max_seed =
      static_cast<std::uint64_t>(syncon::testing::test_iters(8));
  for (std::uint64_t seed = 1; seed <= max_seed; ++seed) {
    SYNCON_SEED_TRACE(seed);
    // The application, fault-free: A spans p0/p1, B spans p2.
    OnlineSystem sys(3);
    std::vector<EventId> a_events, b_events;
    a_events.push_back(sys.local(0, 100));
    const WireMessage m01 = sys.send(0, 200);
    a_events.push_back(m01.source);
    a_events.push_back(sys.deliver(1, m01, 300));
    const WireMessage m12 = sys.send(1, 400);
    a_events.push_back(m12.source);
    b_events.push_back(sys.deliver(2, m12, 500));
    b_events.push_back(sys.local(2, 600));
    const EventId unlabeled = sys.local(0, 700);

    // Reference verdict from a direct observer.
    OnlineMonitor direct(sys);
    Fire ref;
    direct.begin("A");
    direct.begin("B");
    direct.watch({Relation::R3, ProxyKind::Begin, ProxyKind::End}, "A", "B",
                 [&](const std::string&, const std::string&, bool holds,
                     Confidence conf) { ref = Fire{holds, conf}; });
    for (const EventId& e : a_events) direct.record("A", e);
    for (const EventId& e : b_events) direct.record("B", e);
    direct.complete("A");
    direct.complete("B");
    EXPECT_EQ(ref.conf, Confidence::Definite);

    // The remote monitor, fed through a very lossy report channel.
    std::map<EventId, std::string> label_of;
    for (const EventId& e : a_events) label_of[e] = "A";
    for (const EventId& e : b_events) label_of[e] = "B";
    LinkFaultConfig link;
    link.drop_probability = 0.35;
    link.duplicate_probability = 0.25;
    link.reorder_probability = 0.30;
    link.min_delay = 1;
    link.max_delay = 100;
    FaultyChannel channel(link, seed);
    TimePoint t = 0;
    for (const EventId& e : a_events) channel.push(sys.wire_of(e), t += 5);
    for (const EventId& e : b_events) channel.push(sys.wire_of(e), t += 5);
    channel.push(sys.wire_of(unlabeled), t += 5);

    OnlineMonitor remote(3);
    std::vector<Fire> fires;
    remote.begin("A");
    remote.begin("B");
    remote.watch({Relation::R3, ProxyKind::Begin, ProxyKind::End}, "A", "B",
                 [&](const std::string&, const std::string&, bool holds,
                     Confidence conf) { fires.push_back({holds, conf}); });
    const auto feed = [&](const WireMessage& m) {
      const auto it = label_of.find(m.source);
      if (it == label_of.end()) {
        remote.observe(m);
      } else {
        remote.ingest(it->second, m, sys.time_of(m.source));
      }
    };
    for (const Arrival& a : channel.drain()) feed(a.message);
    remote.complete("A");
    remote.complete("B");
    EXPECT_TRUE(remote.degraded());

    // Clock-snapshot recovery exposes tail losses, then resync closes
    // every gap (each iteration witnesses everything it requested).
    remote.checkpoint(sys.snapshot());
    int rounds = 0;
    while (!remote.missing_reports().empty()) {
      ASSERT_LT(rounds++, 10) << "resync failed to converge";
      for (const WireMessage& m : sys.serve(remote.resync_request())) {
        feed(m);
      }
    }

    // Converged: the last firing matches the fault-free verdict and is
    // Definite (every clock seen is now fully explained).
    ASSERT_FALSE(fires.empty()) << "seed " << seed;
    EXPECT_EQ(fires.back().holds, ref.holds) << "seed " << seed;
    EXPECT_EQ(fires.back().conf, Confidence::Definite) << "seed " << seed;
    EXPECT_TRUE(remote.missing_reports().empty());
    // Repaired summaries equal the direct observer's, field for field.
    EXPECT_EQ(remote.summary("A")->intersect_past,
              direct.summary("A")->intersect_past);
    EXPECT_EQ(remote.summary("A")->union_past,
              direct.summary("A")->union_past);
    EXPECT_EQ(remote.summary("B")->least_index,
              direct.summary("B")->least_index);
    EXPECT_EQ(remote.summary("B")->greatest_index,
              direct.summary("B")->greatest_index);
  }
}

TEST(FaultToleranceTest, CompactionPreservesConvergedVerdicts) {
  // Pair 1 (A/B), fed cleanly and retired; the log is then compacted at the
  // monitor's pin. Pair 2 (C/D) runs after the compaction with a lost
  // report, and recovery still converges to the direct observer's verdict —
  // compaction is invisible to the monitoring contract.
  OnlineSystem sys(3);
  std::vector<EventId> a_events, b_events;
  a_events.push_back(sys.local(0, 100));
  const WireMessage m01 = sys.send(0, 200);
  a_events.push_back(m01.source);
  a_events.push_back(sys.deliver(1, m01, 300));
  const WireMessage m12 = sys.send(1, 400);
  a_events.push_back(m12.source);
  b_events.push_back(sys.deliver(2, m12, 500));
  b_events.push_back(sys.local(2, 600));

  OnlineMonitor direct(sys);
  std::vector<Fire> ref;
  const auto watch_pair = [](OnlineMonitor& mon, const std::string& x,
                             const std::string& y, std::vector<Fire>& out) {
    mon.watch({Relation::R3, ProxyKind::Begin, ProxyKind::End}, x, y,
              [&out](const std::string&, const std::string&, bool holds,
                     Confidence conf) { out.push_back({holds, conf}); });
  };
  direct.begin("A");
  direct.begin("B");
  watch_pair(direct, "A", "B", ref);
  for (const EventId& e : a_events) direct.record("A", e);
  for (const EventId& e : b_events) direct.record("B", e);
  direct.complete("A");
  direct.complete("B");
  ASSERT_EQ(ref.size(), 1u);

  OnlineMonitor remote(3);
  std::vector<Fire> fires;
  remote.begin("A");
  remote.begin("B");
  watch_pair(remote, "A", "B", fires);
  for (const EventId& e : a_events) {
    remote.ingest("A", sys.wire_of(e), sys.time_of(e));
  }
  for (const EventId& e : b_events) {
    remote.ingest("B", sys.wire_of(e), sys.time_of(e));
  }
  remote.complete("A");
  remote.complete("B");
  ASSERT_EQ(fires.size(), 1u);
  EXPECT_EQ(fires[0].holds, ref[0].holds);
  EXPECT_EQ(fires[0].conf, Confidence::Definite);

  // Retire the pair and compact everything below the monitor's pin.
  remote.forget("A");
  remote.forget("B");
  const VectorClock pins[] = {remote.watermark_pin()};
  const std::size_t reclaimed = sys.compact(low_watermark(pins));
  EXPECT_EQ(reclaimed, 6u);
  EXPECT_EQ(sys.live_log_events(), 0u);

  // Pair 2 lives entirely above the watermark.
  std::vector<EventId> c_events, d_events;
  c_events.push_back(sys.local(0, 700));
  const WireMessage m02 = sys.send(0, 800);
  c_events.push_back(m02.source);
  d_events.push_back(sys.deliver(2, m02, 900));
  d_events.push_back(sys.local(2, 1000));

  std::vector<Fire> ref2;
  direct.begin("C");
  direct.begin("D");
  watch_pair(direct, "C", "D", ref2);
  for (const EventId& e : c_events) direct.record("C", e);
  for (const EventId& e : d_events) direct.record("D", e);
  direct.complete("C");
  direct.complete("D");
  ASSERT_EQ(ref2.size(), 1u);

  // The remote monitor loses C's first report; completing under the gap
  // fires PendingGap, and resync (served from the live suffix of the
  // compacted log) upgrades it to the reference verdict.
  std::vector<Fire> fires2;
  remote.begin("C");
  remote.begin("D");
  watch_pair(remote, "C", "D", fires2);
  std::map<EventId, std::string> label_of;
  for (const EventId& e : c_events) label_of[e] = "C";
  for (const EventId& e : d_events) label_of[e] = "D";
  for (const EventId& e : c_events) {
    if (e == c_events.front()) continue;  // dropped
    remote.ingest("C", sys.wire_of(e), sys.time_of(e));
  }
  for (const EventId& e : d_events) {
    remote.ingest("D", sys.wire_of(e), sys.time_of(e));
  }
  remote.complete("C");
  remote.complete("D");
  ASSERT_FALSE(fires2.empty());
  EXPECT_EQ(fires2.back().conf, Confidence::PendingGap);

  remote.checkpoint(sys.snapshot());
  int rounds = 0;
  while (remote.missing_report_count() > 0) {
    ASSERT_LT(rounds++, 10) << "resync failed to converge";
    for (const WireMessage& m : sys.serve(remote.resync_request())) {
      const auto it = label_of.find(m.source);
      if (it == label_of.end()) {
        remote.observe(m);
      } else {
        remote.ingest(it->second, m, sys.time_of(m.source));
      }
    }
  }
  EXPECT_EQ(fires2.back().conf, Confidence::Definite);
  EXPECT_EQ(fires2.back().holds, ref2.back().holds);
  EXPECT_EQ(remote.summary("C")->intersect_past,
            direct.summary("C")->intersect_past);
  EXPECT_EQ(remote.summary("D")->union_past,
            direct.summary("D")->union_past);
}

TEST(FaultToleranceTest, DuplicateReportsAreCountedNotRefolded) {
  OnlineSystem sys(2);
  const EventId e = sys.local(0, 10);
  OnlineMonitor remote(2);
  remote.begin("X");
  const WireMessage report = sys.wire_of(e);
  remote.ingest("X", report, 10);
  remote.ingest("X", report, 10);
  remote.ingest("X", report, 10);
  EXPECT_EQ(remote.duplicate_reports(), 2u);
  EXPECT_EQ(remote.recorded_events("X"), 1u);
  remote.complete("X");
  EXPECT_EQ(remote.summary("X")->event_count, 1u);
}

TEST(FaultToleranceTest, CompletingAFullyLostActionFailsLoudly) {
  // Every report of "Y" was dropped: the monitor cannot summarize it from
  // nothing and says so (the caller resyncs first — recorded_events is the
  // guard the lossy_monitoring example uses).
  OnlineMonitor remote(2);
  remote.begin("Y");
  EXPECT_EQ(remote.recorded_events("Y"), 0u);
  EXPECT_THROW(remote.complete("Y"), ContractViolation);
}

// ---------------------------------------------------------------------------
// Crash watchdog: intervals that can never complete are surfaced, and
// their watches stay PendingGap forever.
// ---------------------------------------------------------------------------

TEST(FaultToleranceTest, WatchdogSurfacesDoomedActions) {
  OnlineSystem sys(3);
  const EventId a1 = sys.local(0);
  sys.local(2);                       // 2:1 — its report is lost forever
  const WireMessage m = sys.send(2);  // 2:2
  const EventId b1 = sys.deliver(1, m);

  OnlineMonitor remote(3);
  remote.begin("alive");
  remote.begin("doomed");
  std::vector<Fire> fires;
  remote.watch({Relation::R4, ProxyKind::Begin, ProxyKind::End}, "alive",
               "doomed",
               [&](const std::string&, const std::string&, bool holds,
                   Confidence conf) { fires.push_back({holds, conf}); });
  remote.ingest("alive", sys.wire_of(a1));
  // b1's clock vouches for both p2 events; neither report has arrived.
  remote.ingest("doomed", sys.wire_of(b1));
  EXPECT_EQ(remote.missing_reports(),
            (std::vector<EventId>{EventId{2, 1}, EventId{2, 2}}));
  // 2:2's report straggles in, onto an action living on p2 itself.
  remote.begin("on-p2");
  remote.ingest("on-p2", m);
  EXPECT_EQ(remote.missing_reports(), (std::vector<EventId>{EventId{2, 1}}));
  // p2 is now known crashed: 2:1 is gone for good.
  remote.mark_crashed(2);
  EXPECT_TRUE(remote.is_crashed(2));
  EXPECT_EQ(remote.crashed_processes(), (std::vector<ProcessId>{2}));
  EXPECT_EQ(remote.unrecoverable_reports(),
            (std::vector<EventId>{EventId{2, 1}}));
  // "doomed" lives on p1 (its component event merely descends from p2's
  // message), so it is not doomed — but the action open on p2 itself is.
  const auto doomed = remote.doomed_actions();
  ASSERT_EQ(doomed.size(), 1u);
  EXPECT_EQ(doomed[0], "on-p2");

  // Completing under a permanent gap fires PendingGap; nothing can ever
  // upgrade it.
  remote.complete("alive");
  remote.complete("doomed");
  ASSERT_EQ(fires.size(), 1u);
  EXPECT_EQ(fires[0].conf, Confidence::PendingGap);
  EXPECT_EQ(remote.pending_fires(), 1u);
  EXPECT_EQ(remote.definite_fires(), 0u);
}

TEST(FaultToleranceTest, OnlineReportNamesUnrecoverableLosses) {
  OnlineSystem sys(2);
  const WireMessage m = sys.send(0);
  const EventId b = sys.deliver(1, m);
  OnlineMonitor remote(2);
  remote.begin("X");
  remote.ingest("X", sys.wire_of(b));  // vouches for 0:1, never ingested
  remote.mark_crashed(0);
  const std::string report = online_report_to_string(remote);
  EXPECT_NE(report.find("degraded"), std::string::npos);
  EXPECT_NE(report.find("p0:1"), std::string::npos);
  EXPECT_NE(report.find("NO (process crashed)"), std::string::npos);
  EXPECT_NE(report.find("crashed: p0"), std::string::npos);
}

TEST(FaultToleranceTest, FeedOnlyMonitorRejectsRecord) {
  OnlineMonitor remote(2);
  remote.begin("X");
  EXPECT_THROW(remote.record("X", EventId{0, 1}), ContractViolation);
}

}  // namespace
}  // namespace syncon
