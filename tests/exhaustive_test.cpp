// Exhaustive verification on small universes: EVERY pair of nonempty event
// subsets of a small execution, for all eight relations, fast vs the
// BFS-closure oracle — no sampling, no blind spots. Complements the
// randomized sweeps.
#include <gtest/gtest.h>

#include <vector>

#include "helpers.hpp"
#include "model/reachability.hpp"
#include "nonatomic/cut_timestamps.hpp"
#include "relations/fast.hpp"
#include "relations/naive.hpp"
#include "support/contracts.hpp"

namespace syncon {
namespace {

std::vector<EventId> all_real_events(const Execution& exec) {
  std::vector<EventId> out;
  for (ProcessId p = 0; p < exec.process_count(); ++p) {
    for (EventIndex k = 1; k <= exec.real_count(p); ++k) {
      out.push_back(EventId{p, k});
    }
  }
  return out;
}

std::vector<NonatomicEvent> all_subsets(const Execution& exec) {
  const std::vector<EventId> events = all_real_events(exec);
  std::vector<NonatomicEvent> out;
  const std::size_t n = events.size();
  // 1u << n is UB for n >= 32 and silently wraps well before the loop below
  // becomes intractable; keep the shift in std::size_t and refuse universes
  // that could not be enumerated anyway.
  SYNCON_REQUIRE(n < 20,
                 "all_subsets: universe too large for exhaustive enumeration");
  for (std::size_t mask = 1; mask < (std::size_t{1} << n); ++mask) {
    std::vector<EventId> members;
    for (std::size_t b = 0; b < n; ++b) {
      if (mask & (std::size_t{1} << b)) members.push_back(events[b]);
    }
    out.emplace_back(exec, std::move(members));
  }
  return out;
}

void exhaustive_check(const Execution& exec) {
  const Timestamps ts(exec);
  const ReachabilityOracle oracle(exec);
  const std::vector<NonatomicEvent> subsets = all_subsets(exec);
  std::vector<EventCuts> cuts;
  cuts.reserve(subsets.size());
  for (const NonatomicEvent& s : subsets) cuts.emplace_back(ts, s);

  for (std::size_t x = 0; x < subsets.size(); ++x) {
    for (std::size_t y = 0; y < subsets.size(); ++y) {
      for (const Relation r : kAllRelations) {
        ComparisonCounter counter;
        const bool fast = evaluate_fast(r, cuts[x], cuts[y], counter);
        const bool truth =
            evaluate_oracle(r, subsets[x], subsets[y], oracle,
                            Semantics::Weak);
        ASSERT_EQ(fast, truth)
            << to_string(r) << " x=" << x << " y=" << y;
        ASSERT_LE(counter.integer_comparisons,
                  theorem20_bound(r, subsets[x].node_count(),
                                  subsets[y].node_count()));
      }
    }
  }
}

TEST(ExhaustiveTest, TwoProcessChainWithMessage) {
  // 2 processes, 5 real events, 1 message: 31 subsets, 961 pairs, 7,688
  // relation evaluations against the oracle.
  ExecutionBuilder b(2);
  b.local(0);
  const MessageToken m = b.send(0);
  b.local(1);
  b.receive(1, m);
  b.local(1);
  exhaustive_check(b.build());
}

TEST(ExhaustiveTest, ThreeProcessTriangle) {
  // 3 processes, 6 events, messages 0→1 and 1→2: 63 subsets, 3,969 pairs.
  ExecutionBuilder b(3);
  const MessageToken m1 = b.send(0);
  b.local(0);
  const EventId r1 = b.receive(1, m1);
  (void)r1;
  const MessageToken m2 = b.send(1);
  b.receive(2, m2);
  b.local(2);
  exhaustive_check(b.build());
}

TEST(ExhaustiveTest, FullyConcurrentSixEvents) {
  ExecutionBuilder b(3);
  for (ProcessId p = 0; p < 3; ++p) {
    b.local(p);
    b.local(p);
  }
  exhaustive_check(b.build());
}

TEST(ExhaustiveTest, CrossingMessages) {
  // Two messages crossing between two processes.
  ExecutionBuilder b(2);
  const MessageToken m1 = b.send(0);
  const MessageToken m2 = b.send(1);
  b.receive(0, m2);
  b.receive(1, m1);
  b.local(0);
  exhaustive_check(b.build());
}

}  // namespace
}  // namespace syncon
