// MonitorDaemon end-to-end: sharded multi-tenant ingest must yield, for
// every tenant, a Definite verdict log bit-identical to that tenant's
// standalone reference run — under clean load, under backpressure, under a
// memory budget that forces compaction, across journal-replay recovery,
// and with corrupt or spliced frames confined to the tenant they hit.
#include "service/daemon.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "service/load.hpp"
#include "service/tenant_codec.hpp"
#include "sim/soak.hpp"
#include "store/storage.hpp"
#include "support/thread_pool.hpp"

namespace syncon {
namespace {

using service::Admission;
using service::DaemonOptions;
using service::DaemonStats;
using service::FrameView;
using service::MonitorDaemon;
using service::PeekStatus;
using service::ServiceLoadConfig;
using service::ServiceLoadResult;
using service::TenantFrameEncoder;
using service::run_service_load;

TenantWorkload faulty_workload() {
  TenantWorkload workload;
  workload.report_link.drop_probability = 0.15;
  workload.report_link.duplicate_probability = 0.1;
  workload.report_link.reorder_probability = 0.2;
  workload.report_link.min_delay = 1;
  workload.report_link.max_delay = 24;
  return workload;
}

std::vector<std::vector<std::uint8_t>> encode_frames(
    TenantFrameEncoder& encoder, std::uint64_t tenant,
    const TenantScript& script) {
  std::vector<std::vector<std::uint8_t>> frames;
  frames.emplace_back();
  encoder.encode_hello(tenant, script.processes, script.resync_chunk,
                       frames.back());
  for (const TenantOp& op : script.ops) {
    frames.emplace_back();
    encoder.encode_op(tenant, op, frames.back());
  }
  return frames;
}

/// Submits one frame, pumping until the daemon admits it.
void submit_or_pump(MonitorDaemon& daemon,
                    const std::vector<std::uint8_t>& frame) {
  for (;;) {
    const Admission admission = daemon.submit(frame);
    if (admission.accepted) return;
    daemon.pump();
  }
}

TEST(ServiceDaemonTest, ShardedLoadPreservesVerdictIdentity) {
  ThreadPool pool(4);
  DaemonOptions options;
  options.shards = 4;
  MonitorDaemon daemon(options, pool);

  ServiceLoadConfig config;
  config.tenants = 24;
  config.window = 8;
  config.batch = 8;
  config.workload = faulty_workload();
  config.seed = 99;
  const ServiceLoadResult result = run_service_load(config, daemon);

  EXPECT_TRUE(result.identity_ok);
  EXPECT_EQ(result.identity_mismatches, 0u);
  EXPECT_EQ(result.tenants_run, 24u);
  EXPECT_GT(result.verdicts_total, 0u);
  EXPECT_GT(result.total_events, 0u);
  EXPECT_EQ(result.daemon.frames_quarantined, 0u);
  EXPECT_EQ(result.daemon.frames_applied, result.total_frames);
  pool.drain();
}

TEST(ServiceDaemonTest, BackpressureRejectsThenConverges) {
  ThreadPool pool(2);
  DaemonOptions options;
  options.shards = 2;
  options.queue_capacity = 2;  // tiny queues: rejections are guaranteed
  MonitorDaemon daemon(options, pool);

  ServiceLoadConfig config;
  config.tenants = 6;
  config.window = 6;
  config.batch = 16;  // far more than 2 shard slots per round
  config.workload = faulty_workload();
  config.seed = 7;
  const ServiceLoadResult result = run_service_load(config, daemon);

  EXPECT_GT(result.daemon.rejected_submits, 0u);
  EXPECT_TRUE(result.identity_ok);
  EXPECT_EQ(result.tenants_run, 6u);
  EXPECT_EQ(result.daemon.frames_quarantined, 0u);
  pool.drain();
}

TEST(ServiceDaemonTest, MemoryBudgetCompactsWithoutChangingVerdicts) {
  ThreadPool pool(2);
  DaemonOptions options;
  options.shards = 2;
  options.memory_budget_events = 128;  // well under the combined live logs
  MonitorDaemon daemon(options, pool);

  ServiceLoadConfig config;
  config.tenants = 8;
  config.window = 8;
  config.workload = faulty_workload();
  config.seed = 3;
  const ServiceLoadResult result = run_service_load(config, daemon);

  EXPECT_TRUE(result.identity_ok);
  EXPECT_GT(result.daemon.compactions, 0u);
  EXPECT_GT(result.daemon.reclaimed_events, 0u);
  EXPECT_GT(result.daemon.live_log_peak, 0u);
  pool.drain();
}

TEST(ServiceDaemonTest, ReleaseDropsFinishedSessions) {
  ThreadPool pool(2);
  DaemonOptions options;
  options.shards = 2;
  MonitorDaemon daemon(options, pool);

  ServiceLoadConfig config;
  config.tenants = 5;
  config.window = 2;
  config.workload = faulty_workload();
  config.release_finished = true;
  const ServiceLoadResult result = run_service_load(config, daemon);

  EXPECT_TRUE(result.identity_ok);
  EXPECT_EQ(daemon.stats().tenants, 0u);
  EXPECT_EQ(daemon.session(0), nullptr);
  pool.drain();
}

TEST(ServiceDaemonTest, CorruptFrameDegradesOnlyItsTenant) {
  ThreadPool pool(2);
  DaemonOptions options;
  options.shards = 2;  // tenants 0 and 1 land on different shards
  MonitorDaemon daemon(options, pool);

  TenantWorkload workload = faulty_workload();
  workload.seed = 13;
  const TenantScript script_a = generate_tenant_script(workload);
  workload.seed = 17;
  const TenantScript script_b = generate_tenant_script(workload);
  TenantFrameEncoder encoder;
  const auto frames_a = encode_frames(encoder, 0, script_a);
  const auto frames_b = encode_frames(encoder, 1, script_b);

  const std::size_t corrupt_at = frames_a.size() / 2;
  const std::size_t n = std::max(frames_a.size(), frames_b.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (i < frames_a.size()) {
      if (i == corrupt_at) {
        std::vector<std::uint8_t> damaged = frames_a[i];
        damaged[damaged.size() / 2] ^= 0x40;
        // A corrupt envelope is swallowed (accepted) — retry cannot help.
        EXPECT_TRUE(daemon.submit(damaged).accepted);
      } else {
        submit_or_pump(daemon, frames_a[i]);
      }
    }
    if (i < frames_b.size()) submit_or_pump(daemon, frames_b[i]);
  }
  daemon.pump();

  // Tenant 1 sailed through untouched; tenant 0 lost one frame and every
  // later frame fell into the sequence gap — quarantined, not crashed.
  EXPECT_EQ(daemon.verdicts(1), script_b.reference_verdicts);
  const DaemonStats stats = daemon.stats();
  EXPECT_GT(stats.frames_quarantined, 0u);
  EXPECT_EQ(stats.tenants, 2u);
  pool.drain();
}

TEST(ServiceDaemonTest, ReplayedFrameIsQuarantinedNotReapplied) {
  ThreadPool pool(2);
  DaemonOptions options;
  options.shards = 2;
  MonitorDaemon daemon(options, pool);

  TenantWorkload workload = faulty_workload();
  workload.seed = 29;
  const TenantScript script = generate_tenant_script(workload);
  TenantFrameEncoder encoder;
  const auto frames = encode_frames(encoder, 0, script);

  std::size_t replays = 0;
  for (std::size_t i = 0; i < frames.size(); ++i) {
    submit_or_pump(daemon, frames[i]);
    if (i > 0 && i % 9 == 0) {
      submit_or_pump(daemon, frames[i]);  // spliced duplicate
      ++replays;
    }
  }
  daemon.pump();

  EXPECT_GT(replays, 0u);
  // Duplicates were rejected by the sequence guard before touching state:
  // the verdict log is exactly the reference despite the replays.
  EXPECT_EQ(daemon.verdicts(0), script.reference_verdicts);
  EXPECT_EQ(daemon.stats().frames_quarantined, replays);
  pool.drain();
}

TEST(ServiceDaemonTest, JournalRecoveryRebuildsEverySession) {
  SimStorage storage;
  ThreadPool pool(2);
  DaemonOptions options;
  options.shards = 2;
  options.journal = &storage;

  std::vector<std::vector<std::string>> expected;
  {
    MonitorDaemon daemon(options, pool);
    ServiceLoadConfig config;
    config.tenants = 6;
    config.window = 6;
    config.workload = faulty_workload();
    config.seed = 41;
    const ServiceLoadResult result = run_service_load(config, daemon);
    ASSERT_TRUE(result.identity_ok);
    for (std::uint64_t t = 0; t < 6; ++t) expected.push_back(daemon.verdicts(t));
  }

  // Crash-restart: a fresh daemon over the same journal must rebuild every
  // session to the same verdict log, with nothing quarantined.
  MonitorDaemon recovered(options, pool);
  recovered.recover();
  EXPECT_EQ(recovered.stats().tenants, 6u);
  EXPECT_EQ(recovered.stats().frames_quarantined, 0u);
  for (std::uint64_t t = 0; t < 6; ++t) {
    EXPECT_EQ(recovered.verdicts(t), expected[t]) << "tenant " << t;
  }
  pool.drain();
}

TEST(ServiceDaemonTest, PublishMetricsExportsAggregateGauges) {
  ThreadPool pool(2);
  DaemonOptions options;
  options.shards = 2;
  options.per_tenant_metric_limit = 4;
  MonitorDaemon daemon(options, pool);

  ServiceLoadConfig config;
  config.tenants = 3;
  config.window = 3;
  config.workload = faulty_workload();
  const ServiceLoadResult result = run_service_load(config, daemon);
  ASSERT_TRUE(result.identity_ok);
  daemon.publish_metrics();

  const auto snapshot = obs::MetricRegistry::global().snapshot();
  const auto* tenants = snapshot.find("syncon_service_tenants");
  ASSERT_NE(tenants, nullptr);
  EXPECT_EQ(tenants->gauge_value, 3);
  const auto* applied = snapshot.find("syncon_service_frames_applied");
  ASSERT_NE(applied, nullptr);
  EXPECT_EQ(static_cast<std::uint64_t>(applied->gauge_value),
            result.daemon.frames_applied);
  EXPECT_NE(snapshot.find("syncon_service_tenant_live_log{tenant=\"0\"}"),
            nullptr);
  pool.drain();
}

}  // namespace
}  // namespace syncon
