// Integration tests: the scenario generators produce executions whose
// application-level synchronization structure is what the domain demands —
// verified through the relation evaluator itself.
#include <gtest/gtest.h>

#include "monitor/monitor.hpp"
#include "relations/evaluator.hpp"
#include "sim/scenarios.hpp"
#include "support/contracts.hpp"

namespace syncon {
namespace {

SyncMonitor monitor_for(const Scenario& s) {
  SyncMonitor m(s.execution_ptr());
  for (const NonatomicEvent& iv : s.intervals()) m.add_interval(iv);
  return m;
}

TEST(AirDefenseScenarioTest, PipelineStagesAreOrderedWithinRound) {
  const Scenario s = make_air_defense({});
  const SyncMonitor m = monitor_for(s);
  const RelationId fully_before{Relation::R1, ProxyKind::End,
                                ProxyKind::Begin};
  for (int k = 0; k < 4; ++k) {
    const std::string suffix = "/" + std::to_string(k);
    const auto detect = m.handle("detect" + suffix);
    const auto track = m.handle("track" + suffix);
    const auto decide = m.handle("decide" + suffix);
    const auto engage = m.handle("engage" + suffix);
    // Each stage fully precedes the next within the engagement round.
    EXPECT_TRUE(m.evaluator().holds(fully_before, detect, track)) << k;
    EXPECT_TRUE(m.evaluator().holds(fully_before, track, decide)) << k;
    EXPECT_TRUE(m.evaluator().holds(fully_before, decide, engage)) << k;
    // And transitively detect → engage.
    EXPECT_TRUE(m.evaluator().holds(fully_before, detect, engage)) << k;
    // Engagement never precedes its own detection.
    EXPECT_FALSE(m.evaluator().holds(
        {Relation::R4, ProxyKind::Begin, ProxyKind::End}, engage, detect))
        << k;
  }
}

TEST(AirDefenseScenarioTest, RoundsAreOrderedThroughTheCommandPost) {
  const Scenario s = make_air_defense({});
  const SyncMonitor m = monitor_for(s);
  // decide/k fully precedes engage/k+1: orders flow through command, which
  // collects battle-damage assessments before the next round.
  const RelationId fully_before{Relation::R1, ProxyKind::End,
                                ProxyKind::Begin};
  for (int k = 0; k + 1 < 4; ++k) {
    const auto d = m.handle("decide/" + std::to_string(k));
    const auto e = m.handle("engage/" + std::to_string(k + 1));
    EXPECT_TRUE(m.evaluator().holds(fully_before, d, e)) << k;
  }
}

TEST(AirDefenseScenarioTest, DetectionWavesOverlapAcrossRadars) {
  const Scenario s = make_air_defense({});
  // A detection wave spans all radars.
  const NonatomicEvent& wave = s.interval("detect/0");
  EXPECT_EQ(wave.node_count(), 3u);
}

TEST(ProcessControlScenarioTest, CyclesAreCausallyChained) {
  const Scenario s = make_process_control({});
  const SyncMonitor m = monitor_for(s);
  const RelationId fully_before{Relation::R1, ProxyKind::End,
                                ProxyKind::Begin};
  const RelationId before_command{Relation::R1, ProxyKind::End,
                                  ProxyKind::End};
  for (int k = 0; k < 5; ++k) {
    const std::string suffix = "/" + std::to_string(k);
    const auto sample = m.handle("sample" + suffix);
    const auto compute = m.handle("compute" + suffix);
    const auto actuate = m.handle("actuate" + suffix);
    // Every sample precedes the cycle's control command (the compute
    // interval's last event). The cycle's FIRST compute event is a feedback
    // receive from the previous cycle, which samples do not precede — so
    // R1(U, L) correctly fails for k >= 1 while R1(U, U) holds.
    EXPECT_TRUE(m.evaluator().holds(before_command, sample, compute)) << k;
    if (k == 0) {
      EXPECT_TRUE(m.evaluator().holds(fully_before, sample, compute));
    } else {
      EXPECT_FALSE(m.evaluator().holds(fully_before, sample, compute)) << k;
    }
    EXPECT_TRUE(m.evaluator().holds(fully_before, compute, actuate)) << k;
  }
  // Actuation feedback reaches the next cycle's command: every actuate
  // event precedes the next compute's final (send) event.
  for (int k = 0; k + 1 < 5; ++k) {
    const auto a = m.handle("actuate/" + std::to_string(k));
    const auto c = m.handle("compute/" + std::to_string(k + 1));
    EXPECT_TRUE(m.evaluator().holds(before_command, a, c)) << k;
  }
}

TEST(ProcessControlScenarioTest, SamplesOfConsecutiveCyclesNotFullyOrdered) {
  const Scenario s = make_process_control({});
  const SyncMonitor m = monitor_for(s);
  // Sensors sample cycle k+1 without waiting for each other: sample/k+1
  // never fully precedes actuate of the same cycle on ALL proxies... but
  // more interestingly, sample/k does NOT fully precede sample/k+1 with
  // (U, L) proxies because independent sensors are mutually concurrent
  // until the controller joins them.
  const auto s0 = m.handle("sample/0");
  const auto s1 = m.handle("sample/1");
  EXPECT_FALSE(m.evaluator().holds(
      {Relation::R1, ProxyKind::End, ProxyKind::Begin}, s0, s1));
  // Yet every sensor's sample/0 precedes SOME event of sample/1's future —
  // R2 via the control loop closure... R4 certainly holds.
  EXPECT_TRUE(m.evaluator().holds(
      {Relation::R4, ProxyKind::Begin, ProxyKind::End}, s0, s1));
}

TEST(MultimediaScenarioTest, DispatchPrecedesItsRender) {
  const Scenario s = make_multimedia({});
  const SyncMonitor m = monitor_for(s);
  const RelationId r2{Relation::R2, ProxyKind::End, ProxyKind::End};
  for (int g = 0; g < 6; ++g) {
    const std::string suffix = "/" + std::to_string(g);
    const auto dispatch = m.handle("dispatch" + suffix);
    const auto render = m.handle("render" + suffix);
    // The multicast send (end of dispatch) precedes every client's receive:
    // R1(U, L)(dispatch, render).
    EXPECT_TRUE(m.evaluator().holds(
        {Relation::R1, ProxyKind::End, ProxyKind::Begin}, dispatch, render))
        << g;
    EXPECT_TRUE(m.evaluator().holds(r2, dispatch, render)) << g;
  }
}

TEST(MultimediaScenarioTest, RendersOfDifferentClientsAreConcurrent) {
  const Scenario s = make_multimedia({});
  const SyncMonitor m = monitor_for(s);
  // Renders of the same group on different clients are not ordered: the
  // group's render interval does not fully precede itself shifted... check
  // render/g vs render/g: R3(L,L) (some begin event preceding all begin
  // events) must fail since client receives are concurrent.
  const auto render = m.handle("render/0");
  EXPECT_FALSE(m.evaluator().holds(
      {Relation::R3, ProxyKind::Begin, ProxyKind::Begin}, render, render));
}

TEST(MobileScenarioTest, HandoffOrdersConsecutiveSessions) {
  const Scenario s = make_mobile({});
  const SyncMonitor m = monitor_for(s);
  const RelationId fully_before{Relation::R1, ProxyKind::End,
                                ProxyKind::Begin};
  // For each host h: session/h/k → handoff/h/k → session/h/k+1.
  for (int h = 0; h < 2; ++h) {
    for (int k = 0; k + 1 < 4; ++k) {
      const std::string a =
          "session/" + std::to_string(h) + "/" + std::to_string(k);
      const std::string ho =
          "handoff/" + std::to_string(h) + "/" + std::to_string(k);
      const std::string b =
          "session/" + std::to_string(h) + "/" + std::to_string(k + 1);
      EXPECT_TRUE(m.check("R1(U,L)", a, ho));
      EXPECT_TRUE(m.check("R1(U,L)", ho, b));
    }
  }
}

TEST(MobileScenarioTest, SessionsOfDifferentHostsMostlyConcurrent) {
  const Scenario s = make_mobile({});
  const SyncMonitor m = monitor_for(s);
  // Host 0 and host 1 round-0 sessions go through different stations and
  // share no messages: no relation should hold in either direction.
  EXPECT_FALSE(m.check("R4(L,U)", "session/0/0", "session/1/0"));
  EXPECT_FALSE(m.check("R4(L,U)", "session/1/0", "session/0/0"));
}

TEST(NavigationScenarioTest, WaypointCycleIsOrdered) {
  const Scenario s = make_navigation({});
  const SyncMonitor m = monitor_for(s);
  const RelationId fully_before{Relation::R1, ProxyKind::End,
                                ProxyKind::Begin};
  for (int k = 0; k < 5; ++k) {
    const std::string suffix = "/" + std::to_string(k);
    const auto fix = m.handle("fix" + suffix);
    const auto waypoint = m.handle("waypoint" + suffix);
    const auto maneuver = m.handle("maneuver" + suffix);
    // Every fix precedes the waypoint computation, which precedes every
    // maneuver of the round.
    EXPECT_TRUE(m.evaluator().holds(fully_before, fix, waypoint)) << k;
    EXPECT_TRUE(m.evaluator().holds(fully_before, waypoint, maneuver)) << k;
  }
}

TEST(NavigationScenarioTest, WaypointsSerializeAcrossLeaderHandoffs) {
  const Scenario s = make_navigation({});
  const SyncMonitor m = monitor_for(s);
  // waypoint/k is computed from fixes that follow maneuver/k-1 on the
  // leader... at minimum, consecutive waypoints are causally ordered via
  // the broadcast/collect cycle, across the rotating leadership.
  for (int k = 0; k + 1 < 5; ++k) {
    const auto a = m.handle("waypoint/" + std::to_string(k));
    const auto b = m.handle("waypoint/" + std::to_string(k + 1));
    EXPECT_TRUE(m.evaluator().holds(
        {Relation::R1, ProxyKind::End, ProxyKind::Begin}, a, b))
        << k;
  }
}

TEST(NavigationScenarioTest, FixesOfOneRoundSpanAllVehicles) {
  NavigationConfig cfg;
  cfg.vehicles = 5;
  const Scenario s = make_navigation(cfg);
  EXPECT_EQ(s.interval("fix/0").node_count(), 5u);
  EXPECT_EQ(s.interval("waypoint/0").node_count(), 1u);
}

TEST(ScenarioTest, IntervalLookupByLabel) {
  const Scenario s = make_air_defense({});
  EXPECT_EQ(s.interval("track/1").label(), "track/1");
  EXPECT_THROW(s.interval("nope"), ContractViolation);
  EXPECT_EQ(s.name(), "air-defense");
}

}  // namespace
}  // namespace syncon
