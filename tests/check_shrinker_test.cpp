// End-to-end proof that the conformance subsystem catches real bugs: a
// deliberately wrong R2 fast path (planted behind a test-only hook) is
// found by the differential fuzzer, minimized by the delta-debugging
// shrinker to a tiny replayable repro, and the repro flips verdict with the
// hook — fails while the bug is planted, passes once it is removed.
#include <gtest/gtest.h>

#include <sstream>

#include "check/driver.hpp"
#include "check/generators.hpp"
#include "check/shrink.hpp"
#include "helpers.hpp"
#include "relations/fast.hpp"
#include "support/contracts.hpp"

namespace syncon::check {
namespace {

// Plants the wrong-R2 bug for the enclosing scope and always unplants it,
// even when an assertion fails mid-test.
struct PlantedBug {
  PlantedBug() { fast_debug_hooks().wrong_r2 = true; }
  ~PlantedBug() { fast_debug_hooks().wrong_r2 = false; }
};

DriverOptions planted_bug_campaign() {
  DriverOptions options;
  options.seed = 424242;
  options.max_cases = 20;
  options.properties = {"fast_vs_naive"};
  options.stop_after_failures = 1;
  return options;
}

TEST(CheckShrinkerTest, PlantedBugIsFoundAndMinimized) {
  const PlantedBug plant;
  const DriverReport report = run_conformance(planted_bug_campaign());
  ASSERT_EQ(report.failures.size(), 1u);
  const FailureReport& f = report.failures.front();
  EXPECT_EQ(f.property, "fast_vs_naive");
  EXPECT_EQ(f.case_seed, case_seed_for(424242, f.case_index));
  // The acceptance bound from the issue: the minimized counterexample is
  // tiny (the bug's true minimal shape is 2 processes / 3 events).
  EXPECT_LE(f.minimized.process_count(), 3u);
  EXPECT_LE(f.minimized.total_events(), 6u);
  EXPECT_TRUE(f.minimized.structurally_valid());
  EXPECT_TRUE(materialize(f.minimized).has_value());
  EXPECT_GT(f.shrink_stats.evaluations, 0u);
  EXPECT_FALSE(f.repro.empty());
}

TEST(CheckShrinkerTest, MinimizationIsDeterministic) {
  const PlantedBug plant;
  const DriverReport a = run_conformance(planted_bug_campaign());
  const DriverReport b = run_conformance(planted_bug_campaign());
  ASSERT_EQ(a.failures.size(), 1u);
  ASSERT_EQ(b.failures.size(), 1u);
  EXPECT_EQ(a.failures.front().case_seed, b.failures.front().case_seed);
  EXPECT_EQ(a.failures.front().minimized, b.failures.front().minimized);
  EXPECT_EQ(a.failures.front().repro, b.failures.front().repro);
  EXPECT_EQ(a.failures.front().shrink_stats.evaluations,
            b.failures.front().shrink_stats.evaluations);
}

TEST(CheckShrinkerTest, ReproFailsWithBugAndPassesWithout) {
  Repro repro;
  {
    const PlantedBug plant;
    const DriverReport report = run_conformance(planted_bug_campaign());
    ASSERT_EQ(report.failures.size(), 1u);
    std::istringstream is(report.failures.front().repro);
    repro = load_repro(is);
    EXPECT_EQ(repro.meta.property, "fast_vs_naive");
    EXPECT_EQ(repro.c, report.failures.front().minimized);

    const PropertyInfo* prop = find_property("fast_vs_naive");
    ASSERT_NE(prop, nullptr);
    EXPECT_FALSE(run_property_on_case(*prop, repro.c).passed)
        << "minimized repro must still expose the planted bug";
  }
  // Hook off: the same repro passes — the failure was the bug, not the case.
  const PropertyInfo* prop = find_property("fast_vs_naive");
  ASSERT_NE(prop, nullptr);
  const PropertyResult healthy = run_property_on_case(*prop, repro.c);
  EXPECT_TRUE(healthy.passed) << healthy.message;
}

TEST(CheckShrinkerTest, ShrinkRejectsPassingInput) {
  const CheckCase c = generate_case(3);
  const CaseProperty always_passes = [](const CheckCase&) {
    return PropertyResult{};
  };
  EXPECT_THROW(shrink_case(c, always_passes), ContractViolation);
}

TEST(CheckShrinkerTest, ShrinksSyntheticPredicateToItsBoundary) {
  // "Fails whenever there are ≥ 4 events" has a known minimum: exactly 4.
  const CheckCase start = generate_case(17);
  ASSERT_GE(start.total_events(), 4u);
  const CaseProperty property = [](const CheckCase& c) {
    PropertyResult r;
    if (c.total_events() >= 4) {
      r.passed = false;
      r.message = "too many events";
    }
    return r;
  };
  ShrinkStats stats;
  const CheckCase minimized = shrink_case(start, property, &stats);
  EXPECT_EQ(minimized.total_events(), 4u);
  EXPECT_TRUE(minimized.structurally_valid());
  EXPECT_TRUE(materialize(minimized).has_value());
  EXPECT_GT(stats.accepted, 0u);
  EXPECT_GT(stats.rounds, 0u);
}

TEST(CheckShrinkerTest, EvaluationCapIsHonored) {
  const CheckCase start = generate_case(17);
  const CaseProperty always_fails = [](const CheckCase&) {
    PropertyResult r;
    r.passed = false;
    r.message = "unconditional";
    return r;
  };
  ShrinkOptions options;
  options.max_evaluations = 25;
  ShrinkStats stats;
  const CheckCase minimized = shrink_case(start, always_fails, &stats, options);
  EXPECT_LE(stats.evaluations, 25u);
  EXPECT_TRUE(minimized.structurally_valid());
  EXPECT_LE(minimized.total_events(), start.total_events());
}

}  // namespace
}  // namespace syncon::check
