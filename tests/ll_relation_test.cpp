#include <gtest/gtest.h>

#include "cuts/ll_relation.hpp"
#include "cuts/special_cuts.hpp"
#include "helpers.hpp"
#include "support/rng.hpp"

namespace syncon {
namespace {

using testing::property_sweep;
using testing::two_process_message;

TEST(LLRelationTest, BasicStrictInclusion) {
  const Execution exec = two_process_message();
  const Cut small(exec, VectorClock({2, 2}));
  const Cut big(exec, VectorClock({4, 4}));
  EXPECT_TRUE(ll(small, big));
  EXPECT_FALSE(ll(big, small));
  EXPECT_FALSE(ll(small, small));  // needs proper containment per node
}

TEST(LLRelationTest, BottomTargetNeverDominates) {
  const Execution exec = two_process_message();
  const Cut bottom = Cut::bottom(exec);
  const Cut other(exec, VectorClock({2, 1}));
  // <<(C, E^⊥) is false by definition (robustness clause).
  EXPECT_FALSE(ll(other, bottom));
  EXPECT_FALSE(ll(bottom, bottom));
  // E^⊥ << C' holds whenever C' is not E^⊥ (N_C is empty).
  EXPECT_TRUE(ll(bottom, other));
}

TEST(LLRelationTest, OnlyNodeSetComponentsMatter) {
  const Execution exec = two_process_message();
  // C has events only on p0; p1 may regress without breaking <<.
  const Cut c(exec, VectorClock({2, 4}));
  const Cut c_prime(exec, VectorClock({3, 2}));
  EXPECT_FALSE(ll(c, c_prime));  // p1 is in N_C and 4 >= 2
  const Cut c2(exec, VectorClock({2, 1}));
  EXPECT_TRUE(ll(c2, c_prime));  // N_{C2} = {0}: 2 < 3
}

TEST(LLRelationTest, FormsAgreeOnHandPickedCuts) {
  const Execution exec = two_process_message();
  const std::vector<VectorClock> counts = {
      {1, 1}, {2, 1}, {1, 2}, {2, 2}, {3, 2}, {2, 3}, {4, 4},
  };
  for (const auto& a : counts) {
    for (const auto& b : counts) {
      const Cut c(exec, a), cp(exec, b);
      const bool canonical = ll(c, cp);
      EXPECT_EQ(canonical, ll_form1(c, cp)) << a << " " << b;
      EXPECT_EQ(canonical, !not_ll_form2(c, cp)) << a << " " << b;
      EXPECT_EQ(canonical, ll_form3(c, cp)) << a << " " << b;
      EXPECT_EQ(canonical, !not_ll_form4(c, cp)) << a << " " << b;
    }
  }
}

TEST(LLRelationTest, DegenerateDivergenceOnEmptyProcessFinals) {
  // DESIGN.md §3.2: the four literal forms diverge from the canonical
  // counts form only when C contains the ⊤ of an event-less process. This
  // pins the divergence down so it stays documented.
  ExecutionBuilder b(2);
  b.local(0);  // p1 has no real events
  const Execution exec = b.build();
  const Cut c(exec, VectorClock({2, 2}));        // contains ⊤_1
  const Cut c_prime(exec, VectorClock({3, 2}));  // also contains ⊤_1
  // Canonical: N_C = {0} (p1 excluded by Defn 1), 2 < 3 → <<.
  EXPECT_TRUE(ll(c, c_prime));
  // Form 1 quantifies z = ⊤_1 ∈ S(C)\E^⊥ and finds it on S(C') → fails.
  EXPECT_FALSE(ll_form1(c, c_prime));
}

TEST(Theorem19Test, ProbeFindsViolationAtListedNode) {
  const Execution exec = two_process_message();
  ComparisonCounter counter;
  const VectorClock down({3, 1});
  const VectorClock up({3, 4});
  const std::vector<ProcessId> nodes{0};
  EXPECT_TRUE(theorem19_violated(down, up, nodes, counter));
  EXPECT_EQ(counter.integer_comparisons, 1u);
}

TEST(Theorem19Test, ProbeCountsOnePerNodeUntilHit) {
  ComparisonCounter counter;
  const VectorClock down({1, 1, 5, 9});
  const VectorClock up({9, 9, 5, 1});
  const std::vector<ProcessId> nodes{0, 1, 2, 3};
  EXPECT_TRUE(theorem19_violated(down, up, nodes, counter));
  EXPECT_EQ(counter.integer_comparisons, 3u);  // early exit at node 2
}

TEST(Theorem19Test, NoViolationCostsAllProbes) {
  ComparisonCounter counter;
  const VectorClock down({1, 2, 3});
  const VectorClock up({2, 3, 4});
  const std::vector<ProcessId> nodes{0, 1, 2};
  EXPECT_FALSE(theorem19_violated(down, up, nodes, counter));
  EXPECT_EQ(counter.integer_comparisons, 3u);
}

// ---------------------------------------------------------------------------
// Property sweep: on the ↓y / x↑ cut pairs the theory applies to, the
// Theorem 19 probe over {node(x)} ∪ {node(y)}-style sets must agree with the
// full |P|-scan canonical test.
// ---------------------------------------------------------------------------

class LLPropertyTest : public ::testing::TestWithParam<WorkloadConfig> {};

TEST_P(LLPropertyTest, SingleEventCutProbesMatchCanonical) {
  const Execution exec = generate_execution(GetParam());
  const Timestamps ts(exec);
  Xoshiro256StarStar rng(GetParam().seed ^ 0xabcdef);
  const auto& order = exec.topological_order();
  if (order.empty()) return;
  for (int trial = 0; trial < 200; ++trial) {
    const EventId x = order[rng.below(order.size())];
    const EventId y = order[rng.below(order.size())];
    const Cut down = past_cut(ts, y);
    const Cut up = future_cut(ts, x);
    const bool canonical = !ll(down, up);
    ComparisonCounter counter;
    // For single events, N_X = {node(x)} and N_Y = {node(y)}; both probes
    // must agree with the canonical full scan.
    const std::vector<ProcessId> nx{x.process};
    const std::vector<ProcessId> ny{y.process};
    ASSERT_EQ(theorem19_violated(down.counts(), up.counts(), nx, counter),
              canonical);
    ASSERT_EQ(theorem19_violated(down.counts(), up.counts(), ny, counter),
              canonical);
    // And ¬<<(↓y, x↑) must mean exactly x ⪯ y for atomic events.
    ASSERT_EQ(canonical, ts.leq(x, y));
  }
}

TEST_P(LLPropertyTest, FormsAgreeOnDownStyleCuts) {
  // Forms 7.1–7.4 agree with the canonical counts form whenever C contains
  // no final events of event-less processes — true for every ↓-style cut.
  const Execution exec = generate_execution(GetParam());
  const Timestamps ts(exec);
  Xoshiro256StarStar rng(GetParam().seed ^ 0x1234);
  const auto& order = exec.topological_order();
  if (order.empty()) return;
  for (int trial = 0; trial < 100; ++trial) {
    const EventId y = order[rng.below(order.size())];
    const EventId x = order[rng.below(order.size())];
    const Cut c = past_cut(ts, y);
    const Cut cp = future_cut(ts, x);
    const bool canonical = ll(c, cp);
    ASSERT_EQ(canonical, ll_form1(c, cp));
    ASSERT_EQ(canonical, !not_ll_form2(c, cp));
    ASSERT_EQ(canonical, ll_form3(c, cp));
    ASSERT_EQ(canonical, !not_ll_form4(c, cp));
  }
}

TEST_P(LLPropertyTest, LLIsTransitiveAndIrreflexive) {
  const Execution exec = generate_execution(GetParam());
  Xoshiro256StarStar rng(GetParam().seed ^ 0x717);
  auto random_cut = [&]() {
    VectorClock counts(exec.process_count());
    for (ProcessId p = 0; p < exec.process_count(); ++p) {
      counts.set(p,
                 static_cast<ClockValue>(1 + rng.below(exec.total_count(p))));
    }
    return Cut(exec, std::move(counts));
  };
  for (int trial = 0; trial < 60; ++trial) {
    const Cut a = random_cut(), b = random_cut(), c = random_cut();
    ASSERT_FALSE(ll(a, a)) << "<< must be irreflexive";
    if (ll(a, b) && ll(b, c)) {
      ASSERT_TRUE(ll(a, c)) << "<< must be transitive";
    }
    // << strengthens ⊂ on the node set: <<(a, b) implies a's node-set
    // portion is strictly below b's there.
    if (ll(a, b)) {
      for (const ProcessId i : a.node_set()) {
        ASSERT_LT(a.counts()[i], b.counts()[i]);
      }
    }
  }
}

TEST_P(LLPropertyTest, ViolationMeansSurfaceDominance) {
  // The paper's "significance of ≪̸": if ¬<<(C, C'), some event of S(C)
  // equals-or-follows some event of S(C') — checked against the oracle.
  const Execution exec = generate_execution(GetParam());
  const ReachabilityOracle oracle(exec);
  Xoshiro256StarStar rng(GetParam().seed ^ 0x718);
  auto random_cut = [&]() {
    VectorClock counts(exec.process_count());
    for (ProcessId p = 0; p < exec.process_count(); ++p) {
      counts.set(p,
                 static_cast<ClockValue>(1 + rng.below(exec.total_count(p))));
    }
    return Cut(exec, std::move(counts));
  };
  for (int trial = 0; trial < 40; ++trial) {
    const Cut c = random_cut(), cp = random_cut();
    if (ll(c, cp) || c.is_bottom()) continue;  // need a violation with N_C ≠ ∅
    if (cp.is_bottom()) continue;              // robustness clause case
    bool dominated = false;
    for (ProcessId i = 0; i < exec.process_count(); ++i) {
      for (ProcessId j = 0; j < exec.process_count(); ++j) {
        if (oracle.leq(cp.surface_event(j), c.surface_event(i))) {
          dominated = true;
        }
      }
    }
    ASSERT_TRUE(dominated);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, LLPropertyTest,
                         ::testing::ValuesIn(property_sweep()),
                         testing::sweep_case_name);

}  // namespace
}  // namespace syncon
