// Fuzz-style testing of the synchronization-condition language: random ASTs
// are rendered, re-parsed and evaluated; the result must match a direct
// evaluation of the same AST, and the renderer/parser must be mutually
// inverse. Malformed inputs drawn from mutation must never crash, only
// throw ConditionParseError.
#include <gtest/gtest.h>

#include <functional>
#include <string>

#include "helpers.hpp"
#include "monitor/predicate.hpp"
#include "sim/interval_picker.hpp"
#include "support/rng.hpp"

namespace syncon {
namespace {

// A miniature independent condition representation used as the oracle.
struct RandomCondition {
  enum class Kind { Atom, Not, And, Or } kind;
  RelationId atom{};
  std::unique_ptr<RandomCondition> left, right;

  std::string render(Xoshiro256StarStar& rng) const {
    switch (kind) {
      case Kind::Atom: {
        std::string s = to_string(atom.relation);
        // Randomly use the explicit proxy form or rely on the (U, L)
        // default when it matches.
        const bool is_default = atom.proxy_x == ProxyKind::End &&
                                atom.proxy_y == ProxyKind::Begin;
        if (!is_default || rng.bernoulli(0.5)) {
          s += "(";
          s += to_string(atom.proxy_x);
          s += ",";
          s += to_string(atom.proxy_y);
          s += ")";
        }
        return s;
      }
      case Kind::Not:
        return "!" + wrap(rng, *left);
      case Kind::And:
        return wrap(rng, *left) + " & " + wrap(rng, *right);
      case Kind::Or:
        return wrap(rng, *left) + " | " + wrap(rng, *right);
    }
    return {};
  }

  // Parenthesize children (always — keeps precedence unambiguous for the
  // oracle; the parser's own precedence is tested separately).
  static std::string wrap(Xoshiro256StarStar& rng, const RandomCondition& c) {
    return "(" + c.render(rng) + ")";
  }

  bool evaluate(const RelationEvaluator& eval, RelationEvaluator::Handle x,
                RelationEvaluator::Handle y) const {
    switch (kind) {
      case Kind::Atom: return eval.holds(atom, x, y);
      case Kind::Not: return !left->evaluate(eval, x, y);
      case Kind::And:
        return left->evaluate(eval, x, y) && right->evaluate(eval, x, y);
      case Kind::Or:
        return left->evaluate(eval, x, y) || right->evaluate(eval, x, y);
    }
    return false;
  }
};

std::unique_ptr<RandomCondition> random_condition(Xoshiro256StarStar& rng,
                                                  int depth) {
  auto node = std::make_unique<RandomCondition>();
  const std::uint64_t pick = depth <= 0 ? 0 : rng.below(4);
  switch (pick) {
    case 0: {
      node->kind = RandomCondition::Kind::Atom;
      const auto ids = all_relation_ids();
      node->atom = ids[rng.below(ids.size())];
      break;
    }
    case 1:
      node->kind = RandomCondition::Kind::Not;
      node->left = random_condition(rng, depth - 1);
      break;
    case 2:
      node->kind = RandomCondition::Kind::And;
      node->left = random_condition(rng, depth - 1);
      node->right = random_condition(rng, depth - 1);
      break;
    default:
      node->kind = RandomCondition::Kind::Or;
      node->left = random_condition(rng, depth - 1);
      node->right = random_condition(rng, depth - 1);
      break;
  }
  return node;
}

TEST(PredicateFuzzTest, RandomConditionsParseAndEvaluateConsistently) {
  WorkloadConfig cfg;
  cfg.process_count = 6;
  cfg.events_per_process = 30;
  cfg.seed = 31;
  const Execution exec = generate_execution(cfg);
  const Timestamps ts(exec);
  RelationEvaluator eval(ts);
  Xoshiro256StarStar rng(8);
  SYNCON_SEED_TRACE(8);
  IntervalSpec spec;
  spec.node_count = 3;
  spec.max_events_per_node = 3;
  const auto hx = eval.add_event(random_interval(exec, rng, spec, "X"));
  const auto hy = eval.add_event(random_interval(exec, rng, spec, "Y"));

  const int iters = testing::test_iters(500);
  for (int i = 0; i < iters; ++i) {
    const auto oracle = random_condition(rng, 4);
    const std::string text = oracle->render(rng);
    SyncCondition parsed = SyncCondition::parse(text);
    ASSERT_EQ(parsed.evaluate(eval, hx, hy), oracle->evaluate(eval, hx, hy))
        << "condition: " << text;
    // Round trip: rendering the parsed form re-parses to the same value.
    SyncCondition reparsed = SyncCondition::parse(parsed.to_string());
    ASSERT_EQ(reparsed.evaluate(eval, hx, hy),
              parsed.evaluate(eval, hx, hy))
        << "round trip: " << parsed.to_string();
  }
}

TEST(PredicateFuzzTest, MutatedInputsNeverCrash) {
  Xoshiro256StarStar rng(99);
  SYNCON_SEED_TRACE(99);
  const std::string alphabet = "R1234'()&|!LU, x";
  int parsed_ok = 0;
  const int iters = testing::test_iters(3000);
  for (int i = 0; i < iters; ++i) {
    std::string text;
    const std::uint64_t len = rng.below(24);
    for (std::uint64_t k = 0; k < len; ++k) {
      text += alphabet[rng.below(alphabet.size())];
    }
    try {
      SyncCondition c = SyncCondition::parse(text);
      ++parsed_ok;
      // Anything that parses must render and re-parse.
      SyncCondition again = SyncCondition::parse(c.to_string());
      (void)again;
    } catch (const ConditionParseError&) {
      // expected for most random strings
    }
  }
  // Sanity: the fuzz alphabet does occasionally produce valid conditions.
  EXPECT_GT(parsed_ok, 0);
}

TEST(PredicateFuzzTest, DeepNestingParses) {
  std::string text = "R1";
  for (int i = 0; i < 200; ++i) text = "!(" + text + ")";
  EXPECT_NO_THROW(SyncCondition::parse(text));
}

}  // namespace
}  // namespace syncon
