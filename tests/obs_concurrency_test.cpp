// Concurrency tests for the telemetry subsystem (DESIGN.md §3.8): sharded
// metric recording under ThreadPool::parallel_for must be race-free (run
// under the `tsan` preset) and deterministic — a parallel BatchEvaluator
// sweep with telemetry enabled reports bit-identical metric totals to the
// serial sweep, because per-shard slots are merged in shard order and every
// instrumented sample is integer-valued.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "helpers.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "relations/batch.hpp"
#include "relations/evaluator.hpp"
#include "support/thread_pool.hpp"

namespace syncon {
namespace {

// A seeded mid-size workload (same shape as batch_evaluator_test.cpp).
struct Seeded {
  Execution exec;
  std::unique_ptr<Timestamps> ts;
  std::unique_ptr<RelationEvaluator> eval;

  static WorkloadConfig config(std::uint64_t seed) {
    WorkloadConfig cfg;
    cfg.process_count = 12;
    cfg.events_per_process = 40;
    cfg.send_probability = 0.35;
    cfg.seed = seed;
    return cfg;
  }

  explicit Seeded(std::uint64_t seed, std::size_t intervals = 14)
      : exec(generate_execution(config(seed))) {
    ts = std::make_unique<Timestamps>(exec);
    eval = std::make_unique<RelationEvaluator>(*ts);
    Xoshiro256StarStar rng(seed ^ 0xb47c8ULL);
    IntervalSpec spec;
    spec.node_count = 5;
    spec.max_events_per_node = 4;
    for (std::size_t i = 0; i < intervals; ++i) {
      eval->add_event(random_interval(exec, rng, spec,
                                      "I" + std::to_string(i)));
    }
  }
};

class ObsConcurrencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_enabled(false);
    obs::MetricRegistry::global().reset();
  }
  void TearDown() override {
    obs::set_enabled(false);
    obs::MetricRegistry::global().reset();
  }
};

TEST_F(ObsConcurrencyTest, ShardedRecordingUnderParallelForIsDeterministic) {
  constexpr std::size_t kItems = 20'000;
  obs::HistogramSnapshot reference;
  std::uint64_t reference_total = 0;
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    obs::Counter counter;
    obs::Histogram histogram(obs::HistogramSpec::exponential(1.0, 16384.0));
    ThreadPool pool(threads);
    pool.parallel_for(
        kItems, [&](std::size_t shard, std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) {
            counter.add(1, shard);
            histogram.record(static_cast<double>(i % 997 + 1), shard);
          }
        });
    const obs::HistogramSnapshot snap = histogram.snapshot();
    EXPECT_EQ(counter.total(), kItems);
    if (threads == 1) {
      reference = snap;
      reference_total = counter.total();
      continue;
    }
    // Bit-identical to the serial run: counts, exact double sum, extrema.
    EXPECT_EQ(counter.total(), reference_total) << threads << " threads";
    EXPECT_EQ(snap.count, reference.count);
    EXPECT_EQ(snap.counts, reference.counts);
    EXPECT_EQ(snap.sum, reference.sum);  // exact: integer-valued samples
    EXPECT_EQ(snap.min, reference.min);
    EXPECT_EQ(snap.max, reference.max);
  }
}

// Metric families whose values are pure functions of the workload (never of
// wall time or scheduling): the determinism contract covers exactly these.
const char* const kDeterministicCounters[] = {
    "syncon_relation_queries_total",
    "syncon_relation_integer_comparisons_total",
    "syncon_relation_causality_checks_total",
    "syncon_batch_sweeps_total",
    "syncon_batch_pairs_total",
};
const char* const kDeterministicHistograms[] = {
    "syncon_relation_comparisons_per_query",
    "syncon_batch_pair_comparisons",
};

obs::MetricsSnapshot sweep_with_metrics(const Seeded& s, ThreadPool* pool) {
  obs::MetricRegistry::global().reset();
  obs::set_enabled(true);
  const BatchEvaluator batch(*s.eval, pool);
  const auto result = batch.all_pairs(/*pruned=*/true);
  obs::set_enabled(false);
  EXPECT_FALSE(result.pairs.empty());
  return obs::MetricRegistry::global().snapshot();
}

TEST_F(ObsConcurrencyTest, BatchSweepMetricsAreBitIdenticalAcrossThreadCounts) {
  const Seeded s(4242);
  const obs::MetricsSnapshot serial = sweep_with_metrics(s, nullptr);
  // Sanity: the instrumentation actually fired.
  EXPECT_GT(serial.counter_value("syncon_relation_queries_total"), 0u);
  EXPECT_EQ(serial.counter_value("syncon_batch_sweeps_total"), 1u);
  for (const std::size_t threads : {2u, 4u, 8u}) {
    ThreadPool pool(threads);
    const obs::MetricsSnapshot parallel = sweep_with_metrics(s, &pool);
    for (const char* name : kDeterministicCounters) {
      EXPECT_EQ(parallel.counter_value(name), serial.counter_value(name))
          << name << " with " << threads << " threads";
    }
    for (const char* name : kDeterministicHistograms) {
      const auto* a = serial.find(name);
      const auto* b = parallel.find(name);
      ASSERT_NE(a, nullptr) << name;
      ASSERT_NE(b, nullptr) << name;
      const obs::HistogramSnapshot& ha = *a->histogram;
      const obs::HistogramSnapshot& hb = *b->histogram;
      EXPECT_EQ(hb.count, ha.count) << name;
      EXPECT_EQ(hb.counts, ha.counts) << name;
      EXPECT_EQ(hb.sum, ha.sum) << name;  // exact double equality
      EXPECT_EQ(hb.min, ha.min) << name;
      EXPECT_EQ(hb.max, ha.max) << name;
    }
  }
}

TEST_F(ObsConcurrencyTest, DisabledSweepLeavesRegistryUntouched) {
  const Seeded s(99);
  obs::MetricRegistry::global().reset();
  ThreadPool pool(4);
  const BatchEvaluator batch(*s.eval, &pool);
  const auto result = batch.all_pairs(true);
  EXPECT_FALSE(result.pairs.empty());
  const obs::MetricsSnapshot snap = obs::MetricRegistry::global().snapshot();
  for (const char* name : kDeterministicCounters) {
    const auto* e = snap.find(name);
    // Either never registered in this process, or untouched since reset().
    if (e != nullptr) EXPECT_EQ(e->counter_value, 0u) << name;
  }
}

TEST_F(ObsConcurrencyTest, PoolInstrumentationCountsTasksAndShards) {
  obs::MetricRegistry::global().reset();
  obs::set_enabled(true);
  ThreadPool pool(3);
  pool.parallel_for(100, [](std::size_t, std::size_t, std::size_t) {});
  obs::set_enabled(false);
  const obs::MetricsSnapshot snap = obs::MetricRegistry::global().snapshot();
  EXPECT_EQ(snap.counter_value("syncon_pool_parallel_for_total"), 1u);
  const auto* shard_us = snap.find("syncon_pool_shard_us");
  ASSERT_NE(shard_us, nullptr);
  EXPECT_EQ(shard_us->histogram->count, pool.thread_count());
  const auto* imbalance = snap.find("syncon_pool_shard_imbalance_us");
  ASSERT_NE(imbalance, nullptr);
  EXPECT_EQ(imbalance->histogram->count, 1u);
}

}  // namespace
}  // namespace syncon
