#include <gtest/gtest.h>

#include <sstream>

#include "helpers.hpp"
#include "model/scalar_clock.hpp"
#include "monitor/trace_io.hpp"
#include "sim/metrics.hpp"
#include "support/contracts.hpp"

namespace syncon {
namespace {

using testing::property_sweep;
using testing::three_process_concurrent;
using testing::two_process_message;

TEST(ScalarClocksTest, MonotoneAlongCausality) {
  const Execution exec = two_process_message();
  const ScalarClocks clocks(exec);
  EXPECT_EQ(clocks.at(EventId{0, 1}), 1u);
  EXPECT_EQ(clocks.at(EventId{0, 2}), 2u);
  EXPECT_EQ(clocks.at(EventId{1, 1}), 1u);
  // The receive jumps past the send.
  EXPECT_EQ(clocks.at(EventId{1, 2}), 3u);
  EXPECT_EQ(clocks.at(EventId{1, 3}), 4u);
  EXPECT_EQ(clocks.critical_path_length(), 4u);
}

TEST(ScalarClocksTest, OrdersConcurrentEventsArbitrarily) {
  // The fundamental incompleteness: b1 and a2 are concurrent, yet
  // C(b1) = 1 < C(a2) = 2 — scalar order is NOT causality.
  const Execution exec = two_process_message();
  const ScalarClocks clocks(exec);
  const Timestamps ts(exec);
  const EventId a2{0, 2}, b1{1, 1};
  EXPECT_TRUE(ts.concurrent(a2, b1));
  EXPECT_LT(clocks.at(b1), clocks.at(a2));
  // The only sound scalar deduction:
  EXPECT_TRUE(clocks.cannot_precede(a2, b1));
}

TEST(ScalarClocksTest, RejectsDummies) {
  const Execution exec = two_process_message();
  const ScalarClocks clocks(exec);
  EXPECT_THROW(clocks.at(exec.initial(0)), ContractViolation);
}

TEST(MetricsTest, ConcurrentWorkloadHasHighConcurrency) {
  const Execution exec = three_process_concurrent();
  const Timestamps ts(exec);
  const ExecutionMetrics m = measure_execution(ts, 5000, 1);
  EXPECT_EQ(m.processes, 3u);
  EXPECT_EQ(m.events, 6u);
  EXPECT_EQ(m.messages, 0u);
  EXPECT_EQ(m.critical_path, 2u);
  EXPECT_DOUBLE_EQ(m.parallelism, 3.0);
  EXPECT_GT(m.concurrency_ratio, 0.5);
}

TEST(MetricsTest, PhasesWorkloadHasLowConcurrency) {
  WorkloadConfig free_cfg, phase_cfg;
  free_cfg.process_count = phase_cfg.process_count = 6;
  free_cfg.events_per_process = phase_cfg.events_per_process = 24;
  free_cfg.send_probability = 0.05;
  phase_cfg.topology = Topology::Phases;
  phase_cfg.phase_count = 6;
  const Execution free_exec = generate_execution(free_cfg);
  const Execution phase_exec = generate_execution(phase_cfg);
  const Timestamps ts_free(free_exec), ts_phase(phase_exec);
  const auto m_free = measure_execution(ts_free, 10000, 2);
  const auto m_phase = measure_execution(ts_phase, 10000, 2);
  // Barrier phases serialize far more pairs than sparse random messaging.
  EXPECT_LT(m_phase.concurrency_ratio, m_free.concurrency_ratio);
  EXPECT_GT(m_phase.message_density, m_free.message_density);
}

TEST(DotExportTest, EmitsProcessesMessagesAndHighlights) {
  const Execution exec = two_process_message();
  const NonatomicEvent x(exec, {EventId{0, 1}, EventId{0, 2}}, "X");
  std::ostringstream oss;
  write_dot(oss, exec, {x});
  const std::string dot = oss.str();
  EXPECT_NE(dot.find("digraph execution"), std::string::npos);
  EXPECT_NE(dot.find("cluster_p0"), std::string::npos);
  EXPECT_NE(dot.find("cluster_p1"), std::string::npos);
  EXPECT_NE(dot.find("e0_2 -> e1_2 [style=dashed"), std::string::npos);
  EXPECT_NE(dot.find("fillcolor"), std::string::npos);
  // Program-order edges present.
  EXPECT_NE(dot.find("e0_1 -> e0_2"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Property sweep for the scalar clock condition.
// ---------------------------------------------------------------------------

class ScalarClockPropertyTest
    : public ::testing::TestWithParam<WorkloadConfig> {};

TEST_P(ScalarClockPropertyTest, ClockConditionHolds) {
  const Execution exec = generate_execution(GetParam());
  const ScalarClocks clocks(exec);
  const Timestamps ts(exec);
  Xoshiro256StarStar rng(GetParam().seed ^ 0x5ca1);
  const auto& order = exec.topological_order();
  if (order.size() < 2) return;
  for (int trial = 0; trial < 400; ++trial) {
    const EventId a = order[rng.below(order.size())];
    const EventId b = order[rng.below(order.size())];
    if (ts.lt(a, b)) {
      ASSERT_LT(clocks.at(a), clocks.at(b));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ScalarClockPropertyTest,
                         ::testing::ValuesIn(property_sweep()),
                         testing::sweep_case_name);

}  // namespace
}  // namespace syncon
