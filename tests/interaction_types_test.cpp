#include <gtest/gtest.h>

#include "helpers.hpp"
#include "relations/interaction_types.hpp"
#include "relations/naive.hpp"
#include "sim/interval_picker.hpp"

namespace syncon {
namespace {

using testing::property_sweep;
using testing::three_process_concurrent;
using testing::two_process_message;

RelationProfile profile_of(const Timestamps& ts, const NonatomicEvent& x,
                           const NonatomicEvent& y) {
  const EventCuts xc(ts, x), yc(ts, y);
  ComparisonCounter counter;
  return relation_profile(xc, yc, counter);
}

TEST(InteractionTypesTest, FullyOrderedPairPrecedes) {
  const Execution exec = two_process_message();
  const Timestamps ts(exec);
  const NonatomicEvent x(exec, {EventId{0, 1}, EventId{0, 2}});
  const NonatomicEvent y(exec, {EventId{1, 2}, EventId{1, 3}});
  const RelationProfile p = profile_of(ts, x, y);
  EXPECT_EQ(classify(p), InteractionType::Precedes);
  EXPECT_EQ(forward_grade(p), CouplingGrade::Total);
  EXPECT_EQ(backward_grade(p), CouplingGrade::None);
  // The mirror pair classifies as Follows.
  EXPECT_EQ(classify(profile_of(ts, y, x)), InteractionType::Follows);
}

TEST(InteractionTypesTest, ConcurrentPair) {
  const Execution exec = three_process_concurrent();
  const Timestamps ts(exec);
  const NonatomicEvent x(exec, {EventId{0, 1}});
  const NonatomicEvent y(exec, {EventId{1, 1}});
  const RelationProfile p = profile_of(ts, x, y);
  EXPECT_EQ(classify(p), InteractionType::Concurrent);
  EXPECT_EQ(forward_grade(p), CouplingGrade::None);
  EXPECT_EQ(backward_grade(p), CouplingGrade::None);
}

TEST(InteractionTypesTest, PartialForwardCouplingIsWeak) {
  const Execution exec = two_process_message();
  const Timestamps ts(exec);
  // X = {a1, a3}: only a1 reaches Y = {b2}; a3 does not. Forward R4 holds
  // but R1 does not; no backward causality.
  const NonatomicEvent x(exec, {EventId{0, 1}, EventId{0, 3}});
  const NonatomicEvent y(exec, {EventId{1, 2}});
  const RelationProfile p = profile_of(ts, x, y);
  EXPECT_EQ(classify(p), InteractionType::WeaklyPrecedes);
  EXPECT_EQ(classify(profile_of(ts, y, x)), InteractionType::WeaklyFollows);
  // a1 ⪯ the single y (and y is one event), so ∃x∀y holds: funneled grade.
  EXPECT_EQ(forward_grade(p), CouplingGrade::Funneled);
}

TEST(InteractionTypesTest, EntangledWhenCausalityFlowsBothWays) {
  // p0 sends to p1, p1 later sends back to p0.
  ExecutionBuilder b(2);
  const EventId a1 = b.local(0);
  const MessageToken m1 = b.send(0);
  const EventId b1 = b.receive(1, m1);
  const MessageToken m2 = b.send(1);
  const EventId a2 = b.receive(0, m2);
  const Execution exec = b.build();
  const Timestamps ts(exec);
  const NonatomicEvent x(exec, {a1, a2});
  const NonatomicEvent y(exec, {b1, EventId{1, 2}});
  const RelationProfile p = profile_of(ts, x, y);
  EXPECT_EQ(classify(p), InteractionType::Entangled);
  EXPECT_NE(forward_grade(p), CouplingGrade::None);
  EXPECT_NE(backward_grade(p), CouplingGrade::None);
}

TEST(InteractionTypesTest, NamesAreStable) {
  EXPECT_STREQ(to_string(InteractionType::Entangled), "entangled");
  EXPECT_STREQ(to_string(CouplingGrade::Funneled), "funneled");
}

// ---------------------------------------------------------------------------
// Property sweep
// ---------------------------------------------------------------------------

class InteractionPropertyTest
    : public ::testing::TestWithParam<WorkloadConfig> {};

TEST_P(InteractionPropertyTest, ProfileMatchesNaiveEvaluation) {
  const Execution exec = generate_execution(GetParam());
  const Timestamps ts(exec);
  Xoshiro256StarStar rng(GetParam().seed ^ 0x1dea);
  IntervalSpec spec;
  spec.node_count = std::max<std::size_t>(1, exec.process_count() / 2);
  spec.max_events_per_node = 3;
  for (int trial = 0; trial < 25; ++trial) {
    const NonatomicEvent x = random_interval(exec, rng, spec, "X");
    const NonatomicEvent y = random_interval(exec, rng, spec, "Y");
    const RelationProfile p = profile_of(ts, x, y);
    for (const Relation r : kAllRelations) {
      ASSERT_EQ(p.holds(r), evaluate_naive(r, x, y, ts, Semantics::Weak));
      ASSERT_EQ(p.holds_reverse(r),
                evaluate_naive(r, y, x, ts, Semantics::Weak));
    }
  }
}

TEST_P(InteractionPropertyTest, ClassificationIsMirrorConsistent) {
  const Execution exec = generate_execution(GetParam());
  const Timestamps ts(exec);
  Xoshiro256StarStar rng(GetParam().seed ^ 0x2dea);
  IntervalSpec spec;
  spec.node_count = 2;
  spec.max_events_per_node = 2;
  auto mirror = [](InteractionType t) {
    switch (t) {
      case InteractionType::Precedes: return InteractionType::Follows;
      case InteractionType::Follows: return InteractionType::Precedes;
      case InteractionType::WeaklyPrecedes:
        return InteractionType::WeaklyFollows;
      case InteractionType::WeaklyFollows:
        return InteractionType::WeaklyPrecedes;
      default: return t;
    }
  };
  for (int trial = 0; trial < 25; ++trial) {
    const NonatomicEvent x = random_interval(exec, rng, spec, "X");
    const NonatomicEvent y = random_interval(exec, rng, spec, "Y");
    const InteractionType fwd = classify(profile_of(ts, x, y));
    const InteractionType bwd = classify(profile_of(ts, y, x));
    ASSERT_EQ(mirror(fwd), bwd);
  }
}

TEST_P(InteractionPropertyTest, GradeIsMonotoneInTheLattice) {
  // Whenever R1 holds the grade is Total; whenever only R4 holds it is
  // Partial; the grade can never be None while R4 holds.
  const Execution exec = generate_execution(GetParam());
  const Timestamps ts(exec);
  Xoshiro256StarStar rng(GetParam().seed ^ 0x3dea);
  IntervalSpec spec;
  spec.node_count = std::max<std::size_t>(1, exec.process_count() / 2);
  spec.max_events_per_node = 3;
  for (int trial = 0; trial < 25; ++trial) {
    const NonatomicEvent x = random_interval(exec, rng, spec, "X");
    const NonatomicEvent y = random_interval(exec, rng, spec, "Y");
    const RelationProfile p = profile_of(ts, x, y);
    const CouplingGrade g = forward_grade(p);
    if (p.holds(Relation::R1)) ASSERT_EQ(g, CouplingGrade::Total);
    if (!p.holds(Relation::R4)) ASSERT_EQ(g, CouplingGrade::None);
    if (p.holds(Relation::R4)) ASSERT_NE(g, CouplingGrade::None);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, InteractionPropertyTest,
                         ::testing::ValuesIn(property_sweep()),
                         testing::sweep_case_name);

}  // namespace
}  // namespace syncon
