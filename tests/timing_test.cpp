#include <gtest/gtest.h>

#include "helpers.hpp"
#include "model/reachability.hpp"
#include "relations/fast.hpp"
#include "sim/interval_picker.hpp"
#include "support/contracts.hpp"
#include "timing/timing_constraints.hpp"

namespace syncon {
namespace {

using testing::property_sweep;
using testing::two_process_message;

TEST(PhysicalTimesTest, ValidatesMonotonicity) {
  const Execution exec = two_process_message();
  // p0: 3 events, p1: 3 events. Non-monotone series rejected.
  EXPECT_THROW(
      PhysicalTimes(exec, {{10, 5, 20}, {1, 2, 3}}),
      ContractViolation);
  EXPECT_THROW(PhysicalTimes(exec, {{10, 20, 30}, {1, 2}}),
               ContractViolation);
}

TEST(PhysicalTimesTest, ValidatesMessageCausality) {
  const Execution exec = two_process_message();
  // Receive (p1 event 2) before send (p0 event 2) is rejected.
  EXPECT_THROW(PhysicalTimes(exec, {{10, 20, 30}, {1, 2, 3}}),
               ContractViolation);
  // A valid assignment passes.
  EXPECT_NO_THROW(PhysicalTimes(exec, {{10, 20, 30}, {1, 25, 40}}));
}

TEST(PhysicalTimesTest, AccessorsAndHorizon) {
  const Execution exec = two_process_message();
  const PhysicalTimes times(exec, {{10, 20, 30}, {1, 25, 40}});
  EXPECT_EQ(times.at(EventId{0, 2}), 20);
  EXPECT_EQ(times.at(EventId{1, 3}), 40);
  EXPECT_EQ(times.horizon(), 40);
  EXPECT_THROW(times.at(exec.initial(0)), ContractViolation);
}

TEST(PhysicalTimesTest, IntervalInstants) {
  const Execution exec = two_process_message();
  const PhysicalTimes times(exec, {{10, 20, 30}, {1, 25, 40}});
  const NonatomicEvent x(exec, {EventId{0, 1}, EventId{1, 2}});
  EXPECT_EQ(start_time(times, x), 10);
  EXPECT_EQ(end_time(times, x), 25);
  EXPECT_EQ(duration_of(times, x), 15);
}

TEST(TimingConstraintTest, GapAndWindow) {
  const Execution exec = two_process_message();
  const PhysicalTimes times(exec, {{10, 20, 30}, {1, 25, 40}});
  const NonatomicEvent x(exec, {EventId{0, 1}, EventId{0, 2}});  // ends 20
  const NonatomicEvent y(exec, {EventId{1, 2}, EventId{1, 3}});  // starts 25
  EXPECT_EQ(gap(times, x, Anchor::End, y, Anchor::Start), 5);
  TimingConstraint tight{"tight", Anchor::End, Anchor::Start, 0, 4};
  TimingConstraint loose{"loose", Anchor::End, Anchor::Start, 0, 10};
  EXPECT_FALSE(check_constraint(times, tight, x, y).satisfied);
  EXPECT_TRUE(check_constraint(times, loose, x, y).satisfied);
  TimingConstraint min_bound{"min", Anchor::End, Anchor::Start, 6,
                             std::numeric_limits<Duration>::max()};
  EXPECT_FALSE(check_constraint(times, min_bound, x, y).satisfied);
}

TEST(LatencyProfileTest, AccumulatesAndCountsViolations) {
  const Execution exec = two_process_message();
  const PhysicalTimes times(exec, {{10, 20, 30}, {1, 25, 40}});
  const NonatomicEvent x(exec, {EventId{0, 1}});
  const NonatomicEvent y1(exec, {EventId{1, 2}});  // gap 15
  const NonatomicEvent y2(exec, {EventId{1, 3}});  // gap 30
  LatencyProfile profile(
      TimingConstraint{"p", Anchor::End, Anchor::Start, 0, 20});
  profile.record(times, x, y1);
  profile.record(times, x, y2);
  EXPECT_EQ(profile.samples(), 2u);
  EXPECT_EQ(profile.violations(), 1u);
  EXPECT_EQ(profile.worst_gap(), 30);
  EXPECT_FALSE(profile.all_satisfied());
}

// ---------------------------------------------------------------------------
// Property sweep: synthetic timelines respect causality, which makes causal
// precedence imply temporal precedence (but not conversely).
// ---------------------------------------------------------------------------

class TimingPropertyTest : public ::testing::TestWithParam<WorkloadConfig> {};

TEST_P(TimingPropertyTest, AssignedTimesRespectCausality) {
  const Execution exec = generate_execution(GetParam());
  TimingModel model;
  model.seed = GetParam().seed;
  const PhysicalTimes times = assign_times(exec, model);
  const ReachabilityOracle oracle(exec);
  const auto& order = exec.topological_order();
  Xoshiro256StarStar rng(GetParam().seed ^ 0x7177);
  for (int trial = 0; trial < 300 && !order.empty(); ++trial) {
    const EventId a = order[rng.below(order.size())];
    const EventId b = order[rng.below(order.size())];
    if (oracle.lt(a, b)) {
      ASSERT_LT(times.at(a), times.at(b));
    }
  }
}

TEST_P(TimingPropertyTest, CausalPrecedenceImpliesTemporalPrecedence) {
  const Execution exec = generate_execution(GetParam());
  TimingModel model;
  model.seed = GetParam().seed ^ 1;
  const PhysicalTimes times = assign_times(exec, model);
  const Timestamps ts(exec);
  Xoshiro256StarStar rng(GetParam().seed ^ 0x7178);
  IntervalSpec spec;
  spec.node_count = std::max<std::size_t>(1, exec.process_count() / 2);
  spec.max_events_per_node = 3;
  for (int trial = 0; trial < 30; ++trial) {
    const NonatomicEvent x = random_interval(exec, rng, spec, "X");
    const NonatomicEvent y = random_interval(exec, rng, spec, "Y");
    const EventCuts xc(ts, x), yc(ts, y);
    ComparisonCounter counter;
    // R1 on (U, L) proxies == every end event ≺ every begin event, so the
    // physical end must precede the physical start.
    const NonatomicEvent ux = x.proxy_per_node(ProxyKind::End);
    const NonatomicEvent ly = y.proxy_per_node(ProxyKind::Begin);
    const EventCuts uxc(ts, ux), lyc(ts, ly);
    if (evaluate_fast(Relation::R1, uxc, lyc, counter) &&
        !ux.contains(ly.events().front())) {
      // Guard against the shared-event weak boundary: check disjointness.
      bool disjoint = true;
      for (const EventId& e : ly.events()) {
        if (ux.contains(e)) disjoint = false;
      }
      if (disjoint) {
        ASSERT_LT(end_time(times, ux), start_time(times, ly));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, TimingPropertyTest,
                         ::testing::ValuesIn(property_sweep()),
                         testing::sweep_case_name);

}  // namespace
}  // namespace syncon
