#include <gtest/gtest.h>

#include "cuts/global_states.hpp"
#include "helpers.hpp"
#include "nonatomic/cut_timestamps.hpp"
#include "support/contracts.hpp"

namespace syncon {
namespace {

using testing::three_process_concurrent;
using testing::two_process_message;

TEST(GlobalStatesTest, IndependentProcessesFormAGrid) {
  // Two independent processes with 2 real events each: states are all
  // (a, b) with a, b in {1..3} — a 3x3 grid (finals excluded).
  ExecutionBuilder b(2);
  b.local(0);
  b.local(0);
  b.local(1);
  b.local(1);
  const Execution exec = b.build();
  const Timestamps ts(exec);
  EXPECT_EQ(count_consistent_cuts(ts), 9u);
  // Including final dummies: ⊤ requires every real event first, so the
  // extra states are exactly {(4,3), (3,4), (4,4)}.
  LatticeOptions with_finals;
  with_finals.include_final_dummies = true;
  EXPECT_EQ(count_consistent_cuts(ts, with_finals), 12u);
}

TEST(GlobalStatesTest, MessageRestrictsTheLattice) {
  const Execution exec = two_process_message();  // a1 a2>m a3 | b1 b2<m b3
  const Timestamps ts(exec);
  // Count by brute force over all count combinations for cross-validation.
  std::size_t expected = 0;
  for (ClockValue a = 1; a <= 4; ++a) {
    for (ClockValue bcount = 1; bcount <= 4; ++bcount) {
      const Cut cut(exec, VectorClock({a, bcount}));
      if (cut.globally_consistent(ts)) ++expected;
    }
  }
  EXPECT_EQ(count_consistent_cuts(ts), expected);
  // The receive (b2, count 3) requires the send (a2, count 3).
  EXPECT_LT(expected, 16u);
}

TEST(GlobalStatesTest, EveryVisitedStateIsConsistent) {
  const Execution exec = two_process_message();
  const Timestamps ts(exec);
  for_each_consistent_cut(ts, [&](const Cut& cut) {
    EXPECT_TRUE(cut.globally_consistent(ts));
    return true;
  });
}

TEST(GlobalStatesTest, PastCutsOfIntervalsAppearInTheLattice) {
  // ∩⇓X and ∪⇓X are consistent cuts (the paper's Lemma 11 + downward
  // closure remark) — they must be visited by the enumeration.
  const auto fig = testing::Fig2Fixture::make();
  const Timestamps ts(fig.exec);
  const NonatomicEvent x(fig.exec, fig.x_events, "X");
  const EventCuts cuts(ts, x);
  bool saw_c1 = false, saw_c2 = false;
  for_each_consistent_cut(ts, [&](const Cut& cut) {
    saw_c1 = saw_c1 || cut.counts() == cuts.intersect_past();
    saw_c2 = saw_c2 || cut.counts() == cuts.union_past();
    return true;
  });
  EXPECT_TRUE(saw_c1);
  EXPECT_TRUE(saw_c2);
}

TEST(GlobalStatesTest, BudgetIsEnforced) {
  const Execution exec = three_process_concurrent();
  const Timestamps ts(exec);
  LatticeOptions opts;
  opts.max_states = 5;
  EXPECT_THROW(count_consistent_cuts(ts, opts), ContractViolation);
}

TEST(PossiblyDefinitelyTest, ConcurrentConjunctionIsPossiblyNotDefinitely) {
  // Two independent processes; φ = "both are exactly at their first real
  // event". Some observation passes through (2,2), but an observation can
  // run p0 to completion first — Possibly yes, Definitely no.
  ExecutionBuilder b(2);
  b.local(0);
  b.local(0);
  b.local(1);
  b.local(1);
  const Execution exec = b.build();
  const Timestamps ts(exec);
  const auto phi = [](const Cut& cut) {
    return cut.counts()[0] == 2 && cut.counts()[1] == 2;
  };
  EXPECT_TRUE(possibly(ts, phi));
  EXPECT_FALSE(definitely(ts, phi));
}

TEST(PossiblyDefinitelyTest, SynchronizedConjunctionIsDefinite) {
  // p0 sends after its first event; p1's second event is the receive. The
  // state "p0 past its send AND p1 at/past the receive"… is too late to be
  // unavoidable; instead use φ = "p0 has executed its send XOR-free": the
  // unavoidable state here is 'p0 at send, p1 before receive or after'.
  // A genuinely definite predicate: "p0 has executed at least its first
  // event by the time p1 executed its receive" — every path through the
  // lattice satisfies it at the receive edge, so phrase it as a state
  // predicate that captures the cut right at the receive.
  const Execution exec = two_process_message();
  const Timestamps ts(exec);
  // φ: p1 just executed the receive (count 3) — then causality forces
  // p0's send (count >= 3).
  const auto phi = [](const Cut& cut) {
    return cut.counts()[1] == 3 && cut.counts()[0] >= 3;
  };
  // Not every observation passes through "p1 exactly at the receive with
  // p0 at 3+": but since the receive REQUIRES p0 >= 3, every path that
  // advances p1 past event 2 is at some point exactly at count 3 with
  // p0 >= 3. So Definitely holds.
  EXPECT_TRUE(definitely(ts, phi));
  EXPECT_TRUE(possibly(ts, phi));
}

TEST(PossiblyDefinitelyTest, ImpossiblePredicate) {
  const Execution exec = two_process_message();
  const Timestamps ts(exec);
  // The receive (p1 count >= 3) without the send (p0 count < 3) violates
  // consistency — never observable.
  const auto phi = [](const Cut& cut) {
    return cut.counts()[1] >= 3 && cut.counts()[0] < 3;
  };
  EXPECT_FALSE(possibly(ts, phi));
  EXPECT_FALSE(definitely(ts, phi));
}

TEST(PossiblyDefinitelyTest, TrivialPredicates) {
  const Execution exec = three_process_concurrent();
  const Timestamps ts(exec);
  EXPECT_TRUE(possibly(ts, [](const Cut&) { return true; }));
  EXPECT_TRUE(definitely(ts, [](const Cut&) { return true; }));
  EXPECT_FALSE(possibly(ts, [](const Cut&) { return false; }));
  EXPECT_FALSE(definitely(ts, [](const Cut&) { return false; }));
}

TEST(PossiblyDefinitelyTest, BottomPredicateIsDefinite) {
  const Execution exec = three_process_concurrent();
  const Timestamps ts(exec);
  // Every observation starts at E^⊥.
  EXPECT_TRUE(definitely(ts, [](const Cut& cut) { return cut.is_bottom(); }));
}

}  // namespace
}  // namespace syncon
