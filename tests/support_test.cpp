#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "support/cli.hpp"
#include "support/contracts.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace syncon {
namespace {

TEST(SplitMix64Test, IsDeterministic) {
  SplitMix64 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(XoshiroTest, IsDeterministicAcrossInstances) {
  Xoshiro256StarStar a(99), b(99);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(a.next(), b.next());
}

TEST(XoshiroTest, DifferentSeedsDiffer) {
  Xoshiro256StarStar a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

TEST(XoshiroTest, BelowStaysInRange) {
  Xoshiro256StarStar rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(13), 13u);
  }
}

TEST(XoshiroTest, BelowHitsEveryResidue) {
  Xoshiro256StarStar rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(XoshiroTest, UniformIsInclusive) {
  Xoshiro256StarStar rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t v = rng.uniform(10, 12);
    ASSERT_GE(v, 10u);
    ASSERT_LE(v, 12u);
    saw_lo |= (v == 10);
    saw_hi |= (v == 12);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(XoshiroTest, Uniform01InHalfOpenRange) {
  Xoshiro256StarStar rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(XoshiroTest, BernoulliExtremes) {
  Xoshiro256StarStar rng(5);
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
  EXPECT_FALSE(rng.bernoulli(-1.0));
  EXPECT_TRUE(rng.bernoulli(2.0));
}

TEST(XoshiroTest, BernoulliRoughlyCalibrated) {
  Xoshiro256StarStar rng(11);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(XoshiroTest, BurstRespectsCap) {
  Xoshiro256StarStar rng(17);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t b = rng.burst(0.9, 5);
    ASSERT_GE(b, 1u);
    ASSERT_LE(b, 5u);
  }
}

TEST(XoshiroTest, SampleWithoutReplacementIsSortedAndUnique) {
  Xoshiro256StarStar rng(23);
  for (int i = 0; i < 200; ++i) {
    const auto sample = rng.sample_without_replacement(20, 7);
    ASSERT_EQ(sample.size(), 7u);
    for (std::size_t k = 1; k < sample.size(); ++k) {
      ASSERT_LT(sample[k - 1], sample[k]);
    }
    ASSERT_LT(sample.back(), 20u);
  }
}

TEST(XoshiroTest, SampleAllReturnsIdentity) {
  Xoshiro256StarStar rng(29);
  const auto sample = rng.sample_without_replacement(5, 5);
  ASSERT_EQ(sample.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(sample[i], i);
}

TEST(XoshiroTest, SampleRejectsOversizedRequest) {
  Xoshiro256StarStar rng(31);
  EXPECT_THROW(rng.sample_without_replacement(3, 4), ContractViolation);
}

TEST(RunningStatsTest, BasicMoments) {
  RunningStats s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);  // sample stddev
}

TEST(RunningStatsTest, EmptyIsSafe) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, MergeMatchesSequential) {
  RunningStats all, a, b;
  for (int i = 0; i < 50; ++i) {
    const double v = i * 0.7 - 3;
    all.add(v);
    (i % 2 == 0 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(SampleSetTest, QuantilesInterpolate) {
  SampleSet s;
  for (int i = 1; i <= 5; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.25), 2.0);
}

TEST(SampleSetTest, EmptyQuantileThrows) {
  SampleSet s;
  EXPECT_THROW(s.quantile(0.5), ContractViolation);
  EXPECT_THROW(s.min(), ContractViolation);
  EXPECT_THROW(s.max(), ContractViolation);
  EXPECT_THROW(s.mean(), ContractViolation);
}

TEST(SampleSetTest, SingleElementQuantiles) {
  SampleSet s;
  s.add(42.0);
  for (const double q : {0.0, 0.25, 0.5, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(s.quantile(q), 42.0);
  }
  EXPECT_DOUBLE_EQ(s.min(), 42.0);
  EXPECT_DOUBLE_EQ(s.max(), 42.0);
}

TEST(SampleSetTest, AddAfterQuantileInvalidatesMemo) {
  SampleSet s;
  s.add(10.0);
  s.add(20.0);
  EXPECT_DOUBLE_EQ(s.median(), 15.0);  // sorts and memoizes
  s.add(0.0);                          // must invalidate the memo
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.median(), 10.0);
  EXPECT_DOUBLE_EQ(s.max(), 20.0);
}

TEST(SampleSetTest, MergeDisjointRangesPreservesMinMax) {
  SampleSet lo, hi;
  for (int i = 1; i <= 4; ++i) lo.add(i);        // 1..4
  for (int i = 100; i <= 103; ++i) hi.add(i);    // 100..103
  EXPECT_DOUBLE_EQ(lo.median(), 2.5);            // memoized before merge
  lo.merge(hi);
  EXPECT_EQ(lo.count(), 8u);
  EXPECT_DOUBLE_EQ(lo.min(), 1.0);
  EXPECT_DOUBLE_EQ(lo.max(), 103.0);
  EXPECT_DOUBLE_EQ(lo.median(), 52.0);  // (4 + 100) / 2

  SampleSet empty;
  lo.merge(empty);  // merging an empty set is a no-op
  EXPECT_EQ(lo.count(), 8u);
  empty.merge(lo);
  EXPECT_EQ(empty.count(), 8u);
  EXPECT_DOUBLE_EQ(empty.min(), 1.0);
  EXPECT_DOUBLE_EQ(empty.max(), 103.0);
}

TEST(RunningStatsTest, MergeIntoEmptyAndFromEmpty) {
  RunningStats a, b, empty;
  for (const double v : {1.0, 2.0, 3.0}) b.add(v);
  a.merge(b);  // empty.merge(nonempty) copies
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  EXPECT_DOUBLE_EQ(a.min(), 1.0);
  EXPECT_DOUBLE_EQ(a.max(), 3.0);
  a.merge(empty);  // nonempty.merge(empty) is a no-op
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
}

TEST(IntHistogramTest, TracksBoundsAndViolations) {
  IntHistogram h;
  for (const std::uint64_t v : {1u, 2u, 2u, 3u, 8u}) h.add(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.min_value(), 1u);
  EXPECT_EQ(h.max_value(), 8u);
  EXPECT_DOUBLE_EQ(h.mean(), 3.2);
  EXPECT_EQ(h.count_above(3), 1u);
  EXPECT_EQ(h.count_above(8), 0u);
  EXPECT_EQ(h.count_above(0), 5u);
}

TEST(TextTableTest, RendersAlignedColumns) {
  TextTable t({"name", "n"});
  t.new_row().add_cell(std::string("alpha")).add_cell(std::uint64_t{7});
  t.new_row().add_cell(std::string("b")).add_cell(std::uint64_t{123});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("| alpha | 7   |"), std::string::npos);
  EXPECT_NE(out.find("| b     | 123 |"), std::string::npos);
}

TEST(TextTableTest, RejectsTooManyCells) {
  TextTable t({"only"});
  t.new_row().add_cell(std::string("x"));
  EXPECT_THROW(t.add_cell(std::string("y")), ContractViolation);
}

TEST(TextTableTest, RejectsCellWithoutRow) {
  TextTable t({"c"});
  EXPECT_THROW(t.add_cell(std::string("x")), ContractViolation);
}

TEST(WithThousandsTest, GroupsDigits) {
  EXPECT_EQ(with_thousands(0), "0");
  EXPECT_EQ(with_thousands(999), "999");
  EXPECT_EQ(with_thousands(1000), "1,000");
  EXPECT_EQ(with_thousands(1234567), "1,234,567");
}

TEST(CliParserTest, ParsesOptionsAndFlags) {
  CliParser cli("prog", "test");
  cli.add_option("count", "5", "how many");
  cli.add_option("name", "x", "label");
  cli.add_flag("verbose", "say more");
  const char* argv[] = {"prog", "--count=9", "--name", "hello", "--verbose"};
  ASSERT_TRUE(cli.parse(5, argv));
  EXPECT_EQ(cli.get_int("count"), 9);
  EXPECT_EQ(cli.get("name"), "hello");
  EXPECT_TRUE(cli.get_flag("verbose"));
}

TEST(CliParserTest, DefaultsApply) {
  CliParser cli("prog", "test");
  cli.add_option("count", "5", "how many");
  cli.add_flag("verbose", "say more");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, argv));
  EXPECT_EQ(cli.get_uint("count"), 5u);
  EXPECT_FALSE(cli.get_flag("verbose"));
}

TEST(CliParserTest, UnknownOptionFailsParse) {
  CliParser cli("prog", "test");
  const char* argv[] = {"prog", "--bogus"};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(CliParserTest, RejectsNonNumericValues) {
  CliParser cli("prog", "test");
  cli.add_option("count", "5", "how many");
  cli.add_option("rate", "0.5", "how fast");
  const char* argv[] = {"prog", "--count=abc", "--rate=x"};
  ASSERT_TRUE(cli.parse(3, argv));
  EXPECT_THROW(cli.get_int("count"), ContractViolation);
  EXPECT_THROW(cli.get_double("rate"), ContractViolation);
}

TEST(CliParserTest, RejectsTrailingJunk) {
  CliParser cli("prog", "test");
  cli.add_option("count", "5", "how many");
  const char* argv[] = {"prog", "--count=12x"};
  ASSERT_TRUE(cli.parse(2, argv));
  EXPECT_THROW(cli.get_int("count"), ContractViolation);
}

TEST(CliParserTest, RejectsNegativeForUnsigned) {
  CliParser cli("prog", "test");
  cli.add_option("count", "5", "how many");
  const char* argv[] = {"prog", "--count=-3"};
  ASSERT_TRUE(cli.parse(2, argv));
  EXPECT_EQ(cli.get_int("count"), -3);
  EXPECT_THROW(cli.get_uint("count"), ContractViolation);
}

TEST(CliParserTest, UnsignedCoversTheFullSeedRange) {
  // 64-bit case seeds routinely exceed int64 max; get_uint must not funnel
  // through signed parsing.
  CliParser cli("prog", "test");
  cli.add_option("seed", "1", "campaign seed");
  const char* argv[] = {"prog", "--seed=13498596972625284250"};
  ASSERT_TRUE(cli.parse(2, argv));
  EXPECT_EQ(cli.get_uint("seed"), 13498596972625284250ull);
}

TEST(CliParserTest, CollectsPositional) {
  CliParser cli("prog", "test");
  const char* argv[] = {"prog", "a.trace", "b.trace"};
  ASSERT_TRUE(cli.parse(3, argv));
  ASSERT_EQ(cli.positional().size(), 2u);
  EXPECT_EQ(cli.positional()[0], "a.trace");
}

TEST(ContractsTest, ViolationCarriesContext) {
  try {
    SYNCON_REQUIRE(false, "this failed");
    FAIL() << "should have thrown";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("this failed"), std::string::npos);
    EXPECT_NE(what.find("support_test.cpp"), std::string::npos);
  }
}

}  // namespace
}  // namespace syncon
