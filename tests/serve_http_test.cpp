// Regression tests for the scrape-path fixes that keep a long-running
// daemon alive under hostile clients:
//   - EINTR mid-write/mid-read must not truncate a response or drop a
//     request (a profiler's timer signal is not a disconnect),
//   - a client closing mid-response must not raise SIGPIPE and kill the
//     process,
//   - a client that connects but never sends must not stall serve_once
//     past Options::request_timeout_ms.
#include "obs/serve.hpp"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <pthread.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>

#include "obs/metrics.hpp"

namespace syncon {
namespace {

// Pads the global registry so /metrics is far larger than any socket
// buffer: a response this size cannot be delivered in one write, which is
// what exposes short-write, EINTR, and SIGPIPE handling.
void inflate_registry() {
  static bool done = false;
  if (done) return;
  done = true;
  auto& registry = obs::MetricRegistry::global();
  for (int i = 0; i < 10000; ++i) {
    registry.counter("syncon_serve_http_pad_" + std::to_string(i) + "_total")
        .add(1);
  }
}

int connect_to(std::uint16_t port, int rcvbuf_bytes = 0) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  if (rcvbuf_bytes > 0) {
    // Set before connect so the window is negotiated small; a tiny client
    // window is what forces the server to block mid-response.
    ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf_bytes,
                 sizeof(rcvbuf_bytes));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  return fd;
}

void send_get(int fd, const char* path) {
  const std::string request = std::string("GET ") + path + " HTTP/1.0\r\n\r\n";
  EXPECT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
}

std::size_t parse_content_length(const std::string& response) {
  const std::size_t at = response.find("Content-Length: ");
  if (at == std::string::npos) return 0;
  return static_cast<std::size_t>(
      std::stoull(response.substr(at + std::strlen("Content-Length: "))));
}

std::string scrape(obs::ScrapeServer& server, const char* path) {
  const int fd = connect_to(server.port());
  send_get(fd, path);
  EXPECT_TRUE(server.serve_once(2000));
  std::string response;
  char buffer[4096];
  ssize_t n;
  while ((n = ::read(fd, buffer, sizeof buffer)) > 0) {
    response.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

void noop_handler(int) {}

TEST(ServeHttpTest, LargeBodySurvivesEintrStorm) {
  inflate_registry();
  obs::ScrapeServer server;
  ASSERT_TRUE(server.ok());

  // SIGALRM with no SA_RESTART: every blocked read/poll/send in the server
  // thread returns EINTR when the interval timer fires. The old code
  // treated that as peer-gone and truncated the response.
  struct sigaction action{};
  action.sa_handler = noop_handler;
  struct sigaction previous{};
  ASSERT_EQ(::sigaction(SIGALRM, &action, &previous), 0);

  // Keep SIGALRM away from this (client) thread so delivery lands on the
  // serving thread, which unblocks it for itself below.
  sigset_t alarm_set;
  sigemptyset(&alarm_set);
  sigaddset(&alarm_set, SIGALRM);
  ASSERT_EQ(::pthread_sigmask(SIG_BLOCK, &alarm_set, nullptr), 0);

  std::thread server_thread([&] {
    ::pthread_sigmask(SIG_UNBLOCK, &alarm_set, nullptr);
    server.serve_once(10000);
  });

  itimerval storm{};
  storm.it_interval.tv_usec = 5000;
  storm.it_value.tv_usec = 5000;
  ASSERT_EQ(::setitimer(ITIMER_REAL, &storm, nullptr), 0);

  // A slow reader with a tiny window keeps the server blocked in send for
  // most of the transfer, maximising EINTR exposure.
  const int fd = connect_to(server.port(), 4096);
  send_get(fd, "/metrics");
  std::string response;
  char buffer[8192];
  ssize_t n;
  while ((n = ::read(fd, buffer, sizeof buffer)) > 0) {
    response.append(buffer, static_cast<std::size_t>(n));
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ::close(fd);
  server_thread.join();

  // Disarm, then unblock while the noop handler is still installed (a
  // pending SIGALRM delivered at unblock must hit the handler, not the
  // default terminate-the-process action), then restore.
  itimerval off{};
  ::setitimer(ITIMER_REAL, &off, nullptr);
  ::pthread_sigmask(SIG_UNBLOCK, &alarm_set, nullptr);
  ::sigaction(SIGALRM, &previous, nullptr);

  const std::size_t header_end = response.find("\r\n\r\n");
  ASSERT_NE(header_end, std::string::npos);
  const std::size_t body_size = response.size() - header_end - 4;
  EXPECT_GT(body_size, 64u * 1024u) << "padding failed to inflate /metrics";
  EXPECT_EQ(body_size, parse_content_length(response))
      << "response truncated mid-body";
  EXPECT_NE(response.find("200"), std::string::npos);
}

TEST(ServeHttpTest, ClientClosingMidResponseDoesNotKillProcess) {
  inflate_registry();
  obs::ScrapeServer server;
  ASSERT_TRUE(server.ok());

  std::thread server_thread([&] { server.serve_once(10000); });

  const int fd = connect_to(server.port(), 4096);
  send_get(fd, "/metrics");
  // Read a few bytes so the server is committed to the transfer, then
  // abort: SO_LINGER{1,0} turns close into an immediate RST, and the
  // server's next write would raise SIGPIPE without MSG_NOSIGNAL —
  // killing this whole test binary.
  char buffer[256];
  ::read(fd, buffer, sizeof buffer);
  linger abort_now{1, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &abort_now, sizeof abort_now);
  ::close(fd);
  server_thread.join();

  // Still alive, and the server still works for the next client.
  const std::string response = scrape(server, "/healthz");
  EXPECT_NE(response.find("200"), std::string::npos);
  EXPECT_NE(response.find("ok"), std::string::npos);
}

TEST(ServeHttpTest, SilentClientCannotStallServeOnce) {
  obs::ScrapeServer::Options options;
  options.request_timeout_ms = 200;
  obs::ScrapeServer server(options);
  ASSERT_TRUE(server.ok());

  // Connect but never send: the old blocking read stalled here forever.
  const int silent = connect_to(server.port());
  const auto t0 = std::chrono::steady_clock::now();
  server.serve_once(1000);
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(elapsed, std::chrono::seconds(5));
  ::close(silent);

  // The server has moved on and serves the next client normally.
  const std::string response = scrape(server, "/healthz");
  EXPECT_NE(response.find("200"), std::string::npos);
}

}  // namespace
}  // namespace syncon
