#include <gtest/gtest.h>

#include "helpers.hpp"
#include "relations/evaluator.hpp"
#include "sim/interval_picker.hpp"
#include "support/contracts.hpp"

namespace syncon {
namespace {

using testing::property_sweep;
using testing::two_process_message;

TEST(RelationEvaluatorTest, RegistersEventsAndProxies) {
  const Execution exec = two_process_message();
  const Timestamps ts(exec);
  RelationEvaluator eval(ts);
  const auto h = eval.add_event(
      NonatomicEvent(exec, {EventId{0, 1}, EventId{0, 3}, EventId{1, 1}},
                     "act"));
  EXPECT_EQ(eval.event_count(), 1u);
  EXPECT_EQ(eval.event(h).label(), "act");
  EXPECT_EQ(eval.proxy(h, ProxyKind::Begin).events(),
            (std::vector<EventId>{{0, 1}, {1, 1}}));
  EXPECT_EQ(eval.proxy(h, ProxyKind::End).events(),
            (std::vector<EventId>{{0, 3}, {1, 1}}));
  // Proxy cuts reference the proxies, not the original event.
  EXPECT_EQ(&eval.proxy_cuts(h, ProxyKind::Begin).event(),
            &eval.proxy(h, ProxyKind::Begin));
}

TEST(RelationEvaluatorTest, InvalidHandleRejected) {
  const Execution exec = two_process_message();
  const Timestamps ts(exec);
  RelationEvaluator eval(ts);
  EXPECT_THROW(eval.handle_at(0), ContractViolation);
  // A default-constructed handle was minted by no evaluator.
  EXPECT_THROW(eval.event(EventHandle{}), ContractViolation);
}

TEST(RelationEvaluatorTest, HandlesFromAnotherEvaluatorRejected) {
  const Execution exec = two_process_message();
  const Timestamps ts(exec);
  RelationEvaluator eval_a(ts);
  RelationEvaluator eval_b(ts);
  const auto ha = eval_a.add_event(NonatomicEvent(exec, {EventId{0, 1}}, "A"));
  const auto hb = eval_b.add_event(NonatomicEvent(exec, {EventId{1, 1}}, "B"));
  EXPECT_NE(ha, hb);  // same index, different evaluator id
  EXPECT_EQ(ha.index(), hb.index());
  EXPECT_THROW(eval_a.event(hb), ContractViolation);
  EXPECT_THROW(
      eval_a.holds({Relation::R1, ProxyKind::End, ProxyKind::Begin}, ha, hb),
      ContractViolation);
  // handle_at re-mints the same strong handle.
  EXPECT_EQ(eval_a.handle_at(0), ha);
  EXPECT_EQ(eval_a.handles(), std::vector<EventHandle>{ha});
}

TEST(RelationEvaluatorTest, HoldsEvaluatesProxyPair) {
  const Execution exec = two_process_message();
  const Timestamps ts(exec);
  RelationEvaluator eval(ts);
  // X = all of p0's events, Y = all of p1's events: a2 ≺ b2 via the message.
  const auto hx = eval.add_event(NonatomicEvent(
      exec, {EventId{0, 1}, EventId{0, 2}, EventId{0, 3}}, "X"));
  const auto hy = eval.add_event(NonatomicEvent(
      exec, {EventId{1, 1}, EventId{1, 2}, EventId{1, 3}}, "Y"));
  // End-of-X (a3) does not precede begin-of-Y (b1): R1(U,L) fails...
  EXPECT_FALSE(
      eval.holds({Relation::R1, ProxyKind::End, ProxyKind::Begin}, hx, hy));
  // ...but begin-of-X (a1) precedes end-of-Y (b3): R1(L,U) holds.
  EXPECT_TRUE(
      eval.holds({Relation::R1, ProxyKind::Begin, ProxyKind::End}, hx, hy));
  // R4(U,U): a3 precedes nothing in Y; U(X)={a3} so R4 fails.
  EXPECT_FALSE(
      eval.holds({Relation::R4, ProxyKind::End, ProxyKind::End}, hx, hy));
  // R4(L,U): a1 ≺ b3.
  EXPECT_TRUE(
      eval.holds({Relation::R4, ProxyKind::Begin, ProxyKind::End}, hx, hy));
}

TEST(RelationEvaluatorTest, ExplicitCostSinkReceivesPerCallCost) {
  const Execution exec = two_process_message();
  const Timestamps ts(exec);
  RelationEvaluator eval(ts);
  const auto hx = eval.add_event(NonatomicEvent(exec, {EventId{0, 1}}, "X"));
  const auto hy = eval.add_event(NonatomicEvent(exec, {EventId{1, 2}}, "Y"));
  QueryCost cost;
  (void)eval.holds({Relation::R4, ProxyKind::Begin, ProxyKind::Begin}, hx, hy,
                   &cost);
  EXPECT_EQ(cost.integer_comparisons, 1u);
  (void)eval.holds_naive({Relation::R4, ProxyKind::Begin, ProxyKind::Begin},
                         hx, hy, Semantics::Weak, &cost);
  EXPECT_EQ(cost.causality_checks, 1u);
  // Sink-routed calls bypass the shared tally entirely.
  EXPECT_EQ(eval.accumulated_cost(), QueryCost{});
  // all_holding reports its own exact cost on the result.
  const auto all = eval.all_holding(hx, hy, &cost);
  EXPECT_GT(all.cost.integer_comparisons, 0u);
  EXPECT_EQ(cost.integer_comparisons, 1u + all.cost.integer_comparisons);
}

TEST(RelationEvaluatorTest, SharedTallyAccumulatesAndResets) {
  const Execution exec = two_process_message();
  const Timestamps ts(exec);
  RelationEvaluator eval(ts);
  const auto hx = eval.add_event(NonatomicEvent(exec, {EventId{0, 1}}, "X"));
  const auto hy = eval.add_event(NonatomicEvent(exec, {EventId{1, 2}}, "Y"));
  EXPECT_EQ(eval.accumulated_cost().integer_comparisons, 0u);
  (void)eval.holds({Relation::R4, ProxyKind::Begin, ProxyKind::Begin}, hx, hy);
  EXPECT_EQ(eval.accumulated_cost().integer_comparisons, 1u);
  (void)eval.holds_naive({Relation::R4, ProxyKind::Begin, ProxyKind::Begin},
                         hx, hy);
  EXPECT_EQ(eval.accumulated_cost().causality_checks, 1u);
  eval.charge(QueryCost{10, 20});
  EXPECT_EQ(eval.accumulated_cost().integer_comparisons, 11u);
  EXPECT_EQ(eval.accumulated_cost().causality_checks, 21u);
  eval.reset_accumulated_cost();
  EXPECT_EQ(eval.accumulated_cost(), QueryCost{});
}

TEST(RelationEvaluatorTest, RejectsForeignEvents) {
  const Execution exec_a = two_process_message();
  const Execution exec_b = two_process_message();
  const Timestamps ts(exec_a);
  RelationEvaluator eval(ts);
  EXPECT_THROW(eval.add_event(NonatomicEvent(exec_b, {EventId{0, 1}})),
               ContractViolation);
}

// ---------------------------------------------------------------------------
// Property sweep: the evaluator's 32-relation answers match the definitional
// evaluation of R(X̂, Ŷ) on the proxies, for every member of R.
// ---------------------------------------------------------------------------

class EvaluatorPropertyTest
    : public ::testing::TestWithParam<WorkloadConfig> {};

TEST_P(EvaluatorPropertyTest, FastMatchesNaiveOnAll32Relations) {
  const Execution exec = generate_execution(GetParam());
  const Timestamps ts(exec);
  RelationEvaluator eval(ts);
  Xoshiro256StarStar rng(GetParam().seed ^ 0xcccc);
  IntervalSpec spec;
  spec.node_count = std::max<std::size_t>(1, exec.process_count() / 2 + 1);
  spec.max_events_per_node = 3;
  const auto hx = eval.add_event(random_interval(exec, rng, spec, "X"));
  const auto hy = eval.add_event(random_interval(exec, rng, spec, "Y"));
  for (const RelationId& id : all_relation_ids()) {
    ASSERT_EQ(eval.holds(id, hx, hy),
              eval.holds_naive(id, hx, hy, Semantics::Weak))
        << to_string(id);
  }
}

TEST_P(EvaluatorPropertyTest, AllHoldingListsExactlyTheHolders) {
  const Execution exec = generate_execution(GetParam());
  const Timestamps ts(exec);
  RelationEvaluator eval(ts);
  Xoshiro256StarStar rng(GetParam().seed ^ 0xdddd);
  IntervalSpec spec;
  spec.node_count = 2;
  spec.max_events_per_node = 2;
  const auto hx = eval.add_event(random_interval(exec, rng, spec, "X"));
  const auto hy = eval.add_event(random_interval(exec, rng, spec, "Y"));
  const auto result = eval.all_holding(hx, hy);
  std::size_t expected = 0;
  for (const RelationId& id : all_relation_ids()) {
    if (eval.holds(id, hx, hy)) ++expected;
  }
  EXPECT_EQ(result.holding.size(), expected);
}

TEST_P(EvaluatorPropertyTest, StrictMatchesNaiveStrictEvenWithOverlap) {
  const Execution exec = generate_execution(GetParam());
  const Timestamps ts(exec);
  RelationEvaluator eval(ts);
  Xoshiro256StarStar rng(GetParam().seed ^ 0xeeee);
  IntervalSpec spec;
  spec.node_count = std::max<std::size_t>(1, exec.process_count() / 2 + 1);
  spec.max_events_per_node = 3;
  const auto hx = eval.add_event(random_interval(exec, rng, spec, "X"));
  const auto hy = eval.add_event(random_interval(exec, rng, spec, "Y"));
  // Also a deliberately self-overlapping pair.
  const auto hz = eval.add_event(
      NonatomicEvent(exec, eval.event(hx).events(), "Z"));
  for (const RelationId& id : all_relation_ids()) {
    ASSERT_EQ(eval.holds_strict(id, hx, hy),
              eval.holds_naive(id, hx, hy, Semantics::Strict))
        << to_string(id);
    ASSERT_EQ(eval.holds_strict(id, hx, hz),
              eval.holds_naive(id, hx, hz, Semantics::Strict))
        << to_string(id) << " (overlapping pair)";
  }
}

TEST_P(EvaluatorPropertyTest, GlobalProxiesMatchNaiveWhenTheyExist) {
  const Execution exec = generate_execution(GetParam());
  const Timestamps ts(exec);
  RelationEvaluator eval(ts);
  Xoshiro256StarStar rng(GetParam().seed ^ 0xffff);
  IntervalSpec spec;
  spec.node_count = std::max<std::size_t>(1, exec.process_count() / 2);
  spec.max_events_per_node = 2;
  const auto hx = eval.add_event(random_interval(exec, rng, spec, "X"));
  const auto hy = eval.add_event(random_interval(exec, rng, spec, "Y"));
  const auto gx_begin =
      eval.event(hx).proxy_global(ProxyKind::Begin, ts);
  const auto gy_begin =
      eval.event(hy).proxy_global(ProxyKind::Begin, ts);
  const RelationId id{Relation::R2, ProxyKind::Begin, ProxyKind::Begin};
  const auto result = eval.holds_global_proxies(id, hx, hy);
  if (!gx_begin || !gy_begin) {
    EXPECT_FALSE(result.has_value());
  } else {
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(*result, evaluate_naive(Relation::R2, *gx_begin, *gy_begin, ts,
                                      Semantics::Weak));
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, EvaluatorPropertyTest,
                         ::testing::ValuesIn(property_sweep()),
                         testing::sweep_case_name);

}  // namespace
}  // namespace syncon
