#include <gtest/gtest.h>

#include "helpers.hpp"
#include "relations/composition.hpp"
#include "relations/hierarchy.hpp"
#include "relations/naive.hpp"
#include "sim/interval_picker.hpp"

namespace syncon {
namespace {

using testing::property_sweep;

TEST(CompositionTest, TableSpotChecks) {
  EXPECT_EQ(compose(Relation::R1, Relation::R1), Relation::R1);
  EXPECT_EQ(compose(Relation::R1, Relation::R2), Relation::R2p);
  EXPECT_EQ(compose(Relation::R2, Relation::R1), Relation::R1);
  EXPECT_EQ(compose(Relation::R2, Relation::R2), Relation::R2);
  EXPECT_EQ(compose(Relation::R3, Relation::R3p), Relation::R3);
  EXPECT_EQ(compose(Relation::R3p, Relation::R3p), Relation::R3p);
  EXPECT_EQ(compose(Relation::R4, Relation::R1), Relation::R3);
  EXPECT_FALSE(compose(Relation::R2, Relation::R3).has_value());
  EXPECT_FALSE(compose(Relation::R4, Relation::R4).has_value());
}

TEST(CompositionTest, PrimedTwinsNormalize) {
  EXPECT_EQ(compose(Relation::R1p, Relation::R1p), Relation::R1);
  EXPECT_EQ(compose(Relation::R4p, Relation::R1), Relation::R3);
  EXPECT_EQ(compose(Relation::R1p, Relation::R4p), Relation::R2p);
}

TEST(CompositionTest, CounterexampleForR2ComposeR3) {
  // R2(X,Y) and R3(Y,Z) can hold with no causality at all from X to Z:
  //   p0: x ──► y1 (p1)      x ⪯ y1          (R2: every x before some y)
  //   p2: y2 ──► z (p3)      y2 ⪯ every z    (R3: some y before every z)
  // X = {x}, Y = {y1, y2}, Z = {z}: x and z are concurrent.
  ExecutionBuilder b(4);
  EventId x_event;
  const MessageToken m1 = b.send(0, &x_event);
  const EventId y1 = b.receive(1, m1);
  EventId y2;
  const MessageToken m2 = b.send(2, &y2);
  const EventId z = b.receive(3, m2);
  const Execution exec = b.build();
  const Timestamps ts(exec);
  const NonatomicEvent X(exec, {x_event}, "X");
  const NonatomicEvent Y(exec, {y1, y2}, "Y");
  const NonatomicEvent Z(exec, {z}, "Z");
  ASSERT_TRUE(evaluate_naive(Relation::R2, X, Y, ts, Semantics::Weak));
  ASSERT_TRUE(evaluate_naive(Relation::R3, Y, Z, ts, Semantics::Weak));
  for (const Relation r : kAllRelations) {
    EXPECT_FALSE(evaluate_naive(r, X, Z, ts, Semantics::Weak))
        << to_string(r) << " holds although nothing should";
  }
}

TEST(CompositionTest, CounterexampleForR4ComposeR4) {
  // Same shape as above: x ⪯ y1 and y2 ⪯ z with y1, y2 unrelated shows
  // R4(X,Y) ∧ R4(Y,Z) guarantees nothing between X and Z.
  ExecutionBuilder b(4);
  EventId x_event;
  const MessageToken m1 = b.send(0, &x_event);
  const EventId y1 = b.receive(1, m1);
  EventId y2;
  const MessageToken m2 = b.send(2, &y2);
  const EventId z = b.receive(3, m2);
  const Execution exec = b.build();
  const Timestamps ts(exec);
  const NonatomicEvent X(exec, {x_event}, "X");
  const NonatomicEvent Y(exec, {y1, y2}, "Y");
  const NonatomicEvent Z(exec, {z}, "Z");
  ASSERT_TRUE(evaluate_naive(Relation::R4, X, Y, ts, Semantics::Weak));
  ASSERT_TRUE(evaluate_naive(Relation::R4, Y, Z, ts, Semantics::Weak));
  EXPECT_FALSE(evaluate_naive(Relation::R4, X, Z, ts, Semantics::Weak));
  EXPECT_FALSE(evaluate_naive(Relation::R4, Z, X, ts, Semantics::Weak));
}

// ---------------------------------------------------------------------------
// Soundness sweep: whenever R(X,Y) and S(Y,Z) hold, compose(R,S) holds.
// ---------------------------------------------------------------------------

class CompositionPropertyTest
    : public ::testing::TestWithParam<WorkloadConfig> {};

TEST_P(CompositionPropertyTest, ComposedRelationAlwaysHolds) {
  const Execution exec = generate_execution(GetParam());
  const Timestamps ts(exec);
  Xoshiro256StarStar rng(GetParam().seed ^ 0xc0c0);
  IntervalSpec spec;
  spec.node_count = std::max<std::size_t>(1, exec.process_count() / 2);
  spec.max_events_per_node = 3;
  for (int trial = 0; trial < 25; ++trial) {
    const NonatomicEvent x = random_interval(exec, rng, spec, "X");
    const NonatomicEvent y = random_interval(exec, rng, spec, "Y");
    const NonatomicEvent z = random_interval(exec, rng, spec, "Z");
    std::array<bool, 8> xy{}, yz{}, xz{};
    for (const Relation r : kAllRelations) {
      const auto i = static_cast<std::size_t>(r);
      xy[i] = evaluate_naive(r, x, y, ts, Semantics::Weak);
      yz[i] = evaluate_naive(r, y, z, ts, Semantics::Weak);
      xz[i] = evaluate_naive(r, x, z, ts, Semantics::Weak);
    }
    for (const Relation r : kAllRelations) {
      for (const Relation s : kAllRelations) {
        if (!xy[static_cast<std::size_t>(r)] ||
            !yz[static_cast<std::size_t>(s)]) {
          continue;
        }
        const auto t = compose(r, s);
        if (t.has_value()) {
          ASSERT_TRUE(xz[static_cast<std::size_t>(*t)])
              << to_string(r) << " ∘ " << to_string(s) << " ⟹ "
              << to_string(*t) << " failed at trial " << trial;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, CompositionPropertyTest,
                         ::testing::ValuesIn(property_sweep()),
                         testing::sweep_case_name);

}  // namespace
}  // namespace syncon
