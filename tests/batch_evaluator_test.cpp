// Concurrency tests for the batch-query engine: parallel sweeps must be
// observationally identical to serial ones (same holding sets, same exact
// comparison totals), and the const query API must tolerate many threads
// hammering one shared RelationEvaluator. Run under the `tsan` preset to
// have ThreadSanitizer check the same properties for data races.
#include "relations/batch.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "helpers.hpp"
#include "monitor/monitor.hpp"
#include "relations/evaluator.hpp"
#include "support/contracts.hpp"
#include "support/thread_pool.hpp"

namespace syncon {
namespace {

// A seeded mid-size workload shared by the determinism tests.
struct Seeded {
  Execution exec;
  std::unique_ptr<Timestamps> ts;
  std::unique_ptr<RelationEvaluator> eval;

  static WorkloadConfig config(std::uint64_t seed) {
    WorkloadConfig cfg;
    cfg.process_count = 12;
    cfg.events_per_process = 40;
    cfg.send_probability = 0.35;
    cfg.seed = seed;
    return cfg;
  }

  explicit Seeded(std::uint64_t seed, std::size_t intervals = 14)
      : exec(generate_execution(config(seed))) {
    ts = std::make_unique<Timestamps>(exec);
    eval = std::make_unique<RelationEvaluator>(*ts);
    Xoshiro256StarStar rng(seed ^ 0xb47c8ULL);
    IntervalSpec spec;
    spec.node_count = 5;
    spec.max_events_per_node = 4;
    for (std::size_t i = 0; i < intervals; ++i) {
      eval->add_event(random_interval(exec, rng, spec,
                                      "I" + std::to_string(i)));
    }
  }
};

void expect_identical(const BatchEvaluator::Result& serial,
                      const BatchEvaluator::Result& parallel) {
  ASSERT_EQ(serial.pairs.size(), parallel.pairs.size());
  for (std::size_t i = 0; i < serial.pairs.size(); ++i) {
    const auto& a = serial.pairs[i];
    const auto& b = parallel.pairs[i];
    ASSERT_EQ(a.x, b.x) << "pair " << i;
    ASSERT_EQ(a.y, b.y) << "pair " << i;
    ASSERT_EQ(a.relations.holding, b.relations.holding) << "pair " << i;
    ASSERT_EQ(a.relations.evaluated, b.relations.evaluated) << "pair " << i;
    ASSERT_EQ(a.relations.cost, b.relations.cost) << "pair " << i;
  }
  EXPECT_EQ(serial.cost, parallel.cost);
}

TEST(BatchEvaluatorTest, ParallelSweepIsBitIdenticalToSerial) {
  for (const std::uint64_t seed : {7u, 1234u, 999u}) {
    const Seeded s(seed);
    const BatchEvaluator serial(*s.eval, nullptr);
    for (const bool pruned : {true, false}) {
      const auto reference = serial.all_pairs(pruned);
      EXPECT_EQ(reference.threads_used, 1u);
      for (const std::size_t threads : {2u, 3u, 8u}) {
        ThreadPool pool(threads);
        const BatchEvaluator parallel(*s.eval, &pool);
        const auto result = parallel.all_pairs(pruned);
        EXPECT_GT(result.threads_used, 1u);
        expect_identical(reference, result);
      }
    }
  }
}

TEST(BatchEvaluatorTest, ResultAggregationMatchesPerPairCosts) {
  const Seeded s(42);
  ThreadPool pool(4);
  const auto result = BatchEvaluator(*s.eval, &pool).all_pairs();
  QueryCost summed;
  std::size_t evaluated = 0;
  for (const auto& p : result.pairs) {
    summed += p.relations.cost;
    evaluated += p.relations.evaluated;
  }
  EXPECT_EQ(result.cost, summed);
  EXPECT_EQ(result.evaluated_total(), evaluated);
  EXPECT_GT(result.holding_total(), 0u);
  EXPECT_GT(result.comparisons_per_query(), 0.0);
  // The explicit sinks kept the evaluator's shared tally untouched.
  EXPECT_EQ(s.eval->accumulated_cost(), QueryCost{});
}

TEST(BatchEvaluatorTest, ExplicitPairListRespectsInputOrder) {
  const Seeded s(5, 6);
  const auto hs = s.eval->handles();
  std::vector<std::pair<EventHandle, EventHandle>> pairs;
  for (std::size_t i = hs.size(); i-- > 1;) {
    pairs.emplace_back(hs[i], hs[i - 1]);  // deliberately reversed order
  }
  ThreadPool pool(3);
  const auto result = BatchEvaluator(*s.eval, &pool).evaluate_pairs(pairs);
  ASSERT_EQ(result.pairs.size(), pairs.size());
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ(result.pairs[i].x, pairs[i].first);
    EXPECT_EQ(result.pairs[i].y, pairs[i].second);
  }
}

// Many threads share one const evaluator, each with a private cost sink.
// Answers must agree with a serial reference, and per-thread costs must sum
// to exactly thread_count × the serial cost.
TEST(BatchEvaluatorStressTest, ConcurrentQueriesOnSharedEvaluator) {
  const Seeded s(2024, 10);
  const auto hs = s.eval->handles();
  const auto ids = all_relation_ids();

  // Serial reference pass.
  std::vector<bool> reference;
  QueryCost serial_cost;
  for (const auto& x : hs) {
    for (const auto& y : hs) {
      if (x == y) continue;
      for (const RelationId& id : ids) {
        reference.push_back(s.eval->holds(id, x, y, &serial_cost));
      }
      reference.push_back(
          s.eval->holds_strict(ids[3], x, y, &serial_cost));
      reference.push_back(
          !s.eval->all_holding_pruned(x, y, &serial_cost).holding.empty());
    }
  }

  constexpr std::size_t kThreads = 8;
  std::vector<QueryCost> costs(kThreads);
  std::vector<std::vector<bool>> answers(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      QueryCost& cost = costs[t];
      std::vector<bool>& out = answers[t];
      out.reserve(reference.size());
      for (const auto& x : hs) {
        for (const auto& y : hs) {
          if (x == y) continue;
          for (const RelationId& id : ids) {
            out.push_back(s.eval->holds(id, x, y, &cost));
          }
          out.push_back(s.eval->holds_strict(ids[3], x, y, &cost));
          out.push_back(
              !s.eval->all_holding_pruned(x, y, &cost).holding.empty());
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  QueryCost total;
  for (std::size_t t = 0; t < kThreads; ++t) {
    EXPECT_EQ(answers[t], reference) << "thread " << t;
    total += costs[t];
  }
  EXPECT_EQ(total.integer_comparisons,
            kThreads * serial_cost.integer_comparisons);
  EXPECT_EQ(total.causality_checks, kThreads * serial_cost.causality_checks);
  // None of the sink-routed queries touched the shared tally.
  EXPECT_EQ(s.eval->accumulated_cost(), QueryCost{});
}

// Sink-less queries fold into the lock-free shared tally; under concurrency
// the tally must still equal the exact total.
TEST(BatchEvaluatorStressTest, SharedTallyIsExactUnderConcurrency) {
  const Seeded s(77, 6);
  const auto hs = s.eval->handles();
  const RelationId id{Relation::R1, ProxyKind::End, ProxyKind::Begin};

  QueryCost one_pass;
  for (const auto& x : hs) {
    for (const auto& y : hs) {
      if (x != y) (void)s.eval->holds(id, x, y, &one_pass);
    }
  }

  constexpr std::size_t kThreads = 6;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (const auto& x : hs) {
        for (const auto& y : hs) {
          if (x != y) (void)s.eval->holds(id, x, y);  // no sink
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(s.eval->accumulated_cost().integer_comparisons,
            kThreads * one_pass.integer_comparisons);
}

// Monitor-level wiring: parallel find_pairs and relations_all_pairs return
// exactly the serial answers and costs.
TEST(BatchEvaluatorTest, MonitorParallelScenarioMatchesSerial) {
  WorkloadConfig cfg;
  cfg.process_count = 8;
  cfg.events_per_process = 30;
  cfg.seed = 31;
  auto exec = std::make_shared<const Execution>(generate_execution(cfg));
  SyncMonitor m(exec);
  Xoshiro256StarStar rng(313);
  IntervalSpec spec;
  spec.node_count = 4;
  spec.max_events_per_node = 3;
  for (int i = 0; i < 10; ++i) {
    m.add_interval(random_interval(*exec, rng, spec, "I" + std::to_string(i)));
  }
  const SyncCondition cond = SyncCondition::parse("R1(U,L) | R4(L,U)");

  QueryCost serial_cost;
  const auto serial_pairs = m.find_pairs(cond, &serial_cost);
  const auto serial_sweep = m.relations_all_pairs();
  EXPECT_EQ(serial_sweep.threads_used, 1u);

  ThreadPool pool(4);
  m.use_thread_pool(&pool);
  QueryCost parallel_cost;
  const auto parallel_pairs = m.find_pairs(cond, &parallel_cost);
  const auto parallel_sweep = m.relations_all_pairs();
  EXPECT_GT(parallel_sweep.threads_used, 1u);

  EXPECT_EQ(serial_pairs, parallel_pairs);
  EXPECT_EQ(serial_cost, parallel_cost);
  expect_identical(serial_sweep, parallel_sweep);
  m.use_thread_pool(nullptr);  // detach before the pool dies
}

}  // namespace
}  // namespace syncon
