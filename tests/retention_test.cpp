// The retention subsystem (DESIGN.md §3.10): watermark-cut compaction keeps
// the online log bounded while every observable answer — resync replies,
// duplicate suppression, monitor verdicts — stays identical to the
// uncompacted run. Plus the delivery-path fixes that ride along: the
// time-monotonicity floor, in-batch duplicate suppression, and chunked
// resync of large gaps.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "cuts/watermark.hpp"
#include "helpers.hpp"
#include "monitor/trace_io.hpp"
#include "online/gap_tracker.hpp"
#include "online/online_monitor.hpp"
#include "online/online_system.hpp"
#include "sim/soak.hpp"
#include "store/durable.hpp"
#include "store/storage.hpp"
#include "support/contracts.hpp"

namespace syncon {
namespace {

// ---------------------------------------------------------------------------
// GapTracker: bounded enumeration and checkpoint adoption.
// ---------------------------------------------------------------------------

TEST(GapTrackerRetentionTest, MissingLimitChunksTheEnumeration) {
  GapTracker g(2);
  g.claim(0, 100);
  EXPECT_EQ(g.missing_count(), 100u);
  const std::vector<EventId> chunk = g.missing(10);
  ASSERT_EQ(chunk.size(), 10u);
  EXPECT_EQ(chunk.front(), (EventId{0, 1}));
  EXPECT_EQ(chunk.back(), (EventId{0, 10}));
  EXPECT_EQ(g.resync_request(10).events, chunk);
  // Witnessed indices punch holes out of the count without materializing it.
  EXPECT_TRUE(g.witness(EventId{0, 5}));
  EXPECT_EQ(g.missing_count(), 99u);
  EXPECT_EQ(g.missing().size(), 99u);
  EXPECT_EQ(g.missing(4),
            (std::vector<EventId>{
                EventId{0, 1}, EventId{0, 2}, EventId{0, 3}, EventId{0, 4}}));
}

TEST(GapTrackerRetentionTest, ContiguousPrefixIgnoresAheadArrivals) {
  GapTracker g(2);
  EXPECT_EQ(g.contiguous_prefix(0), 0u);
  g.witness(EventId{0, 1});
  g.witness(EventId{0, 3});  // out of order: parked ahead
  EXPECT_EQ(g.contiguous_prefix(0), 1u);
  g.witness(EventId{0, 2});  // closes the hole, absorbs 3
  EXPECT_EQ(g.contiguous_prefix(0), 3u);
  EXPECT_EQ(g.contiguous_prefix(1), 0u);
}

TEST(GapTrackerRetentionTest, ForgiveAdoptsCheckpointPrefix) {
  GapTracker g(2);
  g.claim(0, 10);
  g.witness(EventId{0, 4});
  g.witness(EventId{0, 6});
  EXPECT_EQ(g.witnessed_count(), 2u);
  // A checkpoint covering (0, 1..5) closes the holes below it; the parked
  // arrival at 6 becomes contiguous and is absorbed.
  g.forgive(0, 5);
  EXPECT_EQ(g.contiguous_prefix(0), 6u);
  EXPECT_TRUE(g.witnessed(EventId{0, 3}));
  EXPECT_EQ(g.missing(), (std::vector<EventId>{EventId{0, 7}, EventId{0, 8},
                                               EventId{0, 9}, EventId{0, 10}}));
  // Forgiven events are not real arrivals.
  EXPECT_EQ(g.witnessed_count(), 2u);
  // Forgiving below the prefix is a no-op.
  g.forgive(0, 2);
  EXPECT_EQ(g.contiguous_prefix(0), 6u);
}

// ---------------------------------------------------------------------------
// Delivery-path fixes.
// ---------------------------------------------------------------------------

TEST(RetentionTest, UntimedEventsDoNotResetTheTimeFloor) {
  OnlineSystem sys(1);
  sys.local(0, 100);
  sys.local(0);  // untimed — must not lower the floor
  // The floor is still 100: equal or earlier stamps are rejected.
  EXPECT_THROW(sys.local(0, 100), ContractViolation);
  EXPECT_THROW(sys.local(0, 50), ContractViolation);
  sys.local(0, 101);
  EXPECT_EQ(sys.executed(0), 3u);  // the rejected events never executed
}

TEST(RetentionTest, DeliverAllSuppressesInBatchDuplicates) {
  OnlineSystem sys(2);
  const WireMessage m1 = sys.send(0, 10);
  const WireMessage m2 = sys.send(0, 20);
  const std::vector<WireMessage> batch{m1, m2, m1, m2, m1};
  const EventId r = sys.deliver_all(1, batch, 30);
  EXPECT_EQ(r, (EventId{1, 1}));
  EXPECT_EQ(sys.duplicates_suppressed(), 3u);

  // Bit-identical to the duplicate-free batch: same clocks, same causal
  // structure (one receive with two sources, not five).
  OnlineSystem ref(2);
  const WireMessage n1 = ref.send(0, 10);
  const WireMessage n2 = ref.send(0, 20);
  const std::vector<WireMessage> clean{n1, n2};
  ref.deliver_all(1, clean, 30);
  EXPECT_EQ(sys.current_clock(1), ref.current_clock(1));
  EXPECT_EQ(trace_to_string(sys.to_execution()),
            trace_to_string(ref.to_execution()));

  // A batch that is duplicates through and through is an idempotent no-op.
  EXPECT_EQ(sys.deliver_all(1, batch), r);
  EXPECT_EQ(sys.executed(1), 1u);
}

TEST(RetentionTest, ChunkedResyncConvergesOnLargeGap) {
  constexpr std::size_t kSends = 40;
  constexpr std::size_t kChunk = 7;
  OnlineSystem sys(2);
  OnlineSystem ref(2);
  std::vector<WireMessage> wires;
  for (std::size_t i = 0; i < kSends; ++i) {
    wires.push_back(sys.send(0));
    ref.deliver(1, ref.send(0));
  }
  // Only the last message lands: its clock exposes all 39 holes at once.
  sys.deliver(1, wires.back());
  EXPECT_TRUE(sys.has_gap(1));
  EXPECT_EQ(sys.missing_at(1).size(), kSends - 1);
  EXPECT_EQ(sys.missing_at(1, kChunk).size(), kChunk);

  // Recover in bounded chunks instead of one 39-event request.
  std::size_t rounds = 0;
  while (sys.has_gap(1)) {
    ASSERT_LT(rounds++, 10u) << "chunked resync failed to converge";
    for (const WireMessage& m : sys.serve(sys.resync_request(1, kChunk))) {
      sys.deliver(1, m);
    }
  }
  EXPECT_EQ(rounds, (kSends - 1 + kChunk - 1) / kChunk);
  EXPECT_EQ(sys.current_clock(1), ref.current_clock(1));
}

// ---------------------------------------------------------------------------
// Compaction: the watermark cut, the checkpoint, and checkpoint serving.
// ---------------------------------------------------------------------------

TEST(RetentionTest, CompactReclaimsPrefixAndRecordsCheckpoint) {
  OnlineSystem sys(2);
  sys.local(0, 10);                         // 0:1
  const WireMessage m = sys.send(0, 20);    // 0:2
  const EventId r = sys.deliver(1, m, 30);  // 1:1
  sys.local(1, 40);                         // 1:2
  EXPECT_EQ(sys.live_log_events(), 4u);
  EXPECT_EQ(sys.checkpoint().sequence, 0u);

  // Cut {3,1}: reclaim p0's two events, keep p1 whole.
  EXPECT_EQ(sys.compact(VectorClock({3, 1})), 2u);
  EXPECT_EQ(sys.live_log_events(), 2u);
  EXPECT_EQ(sys.reclaimed_events(), 2u);
  EXPECT_EQ(sys.reclaimed_before(0), 2u);
  EXPECT_EQ(sys.reclaimed_before(1), 0u);
  EXPECT_FALSE(sys.is_live(EventId{0, 1}));
  EXPECT_FALSE(sys.is_live(EventId{0, 2}));
  EXPECT_TRUE(sys.is_live(EventId{1, 1}));

  // The frontier is untouched: executed counts, snapshot and current clocks
  // answer exactly as before the compaction.
  EXPECT_EQ(sys.executed(0), 2u);
  EXPECT_EQ(sys.executed(1), 2u);
  EXPECT_EQ(sys.snapshot(), VectorClock({3, 3}));

  // The checkpoint remembers the cut's surface event on p0 — the send —
  // whose clock vouches for everything reclaimed.
  const RetentionCheckpoint& cp = sys.checkpoint();
  EXPECT_EQ(cp.cut, VectorClock({3, 1}));
  EXPECT_EQ(cp.surface_clocks[0], m.clock);
  EXPECT_EQ(cp.surface_times[0], 20);
  EXPECT_EQ(cp.surface_times[1], OnlineSystem::kNoTime);
  EXPECT_EQ(cp.sequence, 1u);

  // Reclaimed entries are gone: direct lookups fail loudly…
  EXPECT_THROW(sys.clock_of(EventId{0, 1}), ContractViolation);
  EXPECT_THROW(sys.time_of(EventId{0, 2}), ContractViolation);
  // …but the retransmission path answers from the checkpoint surface.
  const WireMessage surface = sys.wire_of(EventId{0, 1});
  EXPECT_EQ(surface.source, (EventId{0, 2}));
  EXPECT_EQ(surface.clock, m.clock);

  // serve() collapses every reclaimed event of a process into one surface
  // reply; live events are still served verbatim.
  const std::vector<WireMessage> replies =
      sys.serve(RetransmitRequest{{EventId{0, 1}, EventId{0, 2}, r}});
  ASSERT_EQ(replies.size(), 2u);
  EXPECT_EQ(replies[0].source, (EventId{0, 2}));
  EXPECT_EQ(replies[1].source, r);

  // Idempotence survives the dedup records being reclaimed: a duplicate of
  // an already-consumed source is still suppressed, answered with the
  // "consumed before the checkpoint" sentinel.
  EXPECT_TRUE(sys.already_delivered(1, m.source));
  const std::uint64_t dups = sys.duplicates_suppressed();
  EXPECT_EQ(sys.deliver(1, m), (EventId{1, 0}));
  EXPECT_EQ(sys.duplicates_suppressed(), dups + 1);
  EXPECT_EQ(sys.executed(1), 2u);

  // A compacted log cannot materialize its full execution.
  EXPECT_THROW(sys.to_execution(), ContractViolation);
}

TEST(RetentionTest, CompactIsMonotoneAndClampedToTheLog) {
  OnlineSystem sys(2);
  sys.local(0, 10);
  const WireMessage m = sys.send(0, 20);
  sys.deliver(1, m, 30);
  sys.local(1, 40);
  ASSERT_EQ(sys.compact(VectorClock({3, 1})), 2u);
  // A lower watermark never un-compacts.
  EXPECT_EQ(sys.compact(VectorClock({2, 1})), 0u);
  EXPECT_EQ(sys.checkpoint().cut, VectorClock({3, 1}));
  // A watermark past the frontier is clamped to executed + 1.
  EXPECT_EQ(sys.compact(VectorClock({99, 99})), 2u);
  EXPECT_EQ(sys.checkpoint().cut, VectorClock({3, 3}));
  EXPECT_EQ(sys.live_log_events(), 0u);
  EXPECT_EQ(sys.reclaimed_events(), 4u);
  // The system keeps running on the empty live log; ids keep counting from
  // the reclaimed base and times from the last timed floor.
  EXPECT_EQ(sys.local(0, 50), (EventId{0, 3}));
  EXPECT_EQ(sys.live_log_events(), 1u);
  EXPECT_EQ(sys.executed(0), 3u);
}

TEST(RetentionTest, RetentionWatermarkTracksReceiverPrefixes) {
  OnlineSystem sys(2);
  const WireMessage m1 = sys.send(0);
  const WireMessage m2 = sys.send(0);
  // Nothing witnessed yet: nothing reclaimable.
  EXPECT_EQ(sys.retention_watermark(), VectorClock({1, 1}));
  sys.deliver(1, m1);
  EXPECT_EQ(sys.retention_watermark(), VectorClock({2, 1}));
  sys.deliver(1, m2);
  // p1 witnessed all of p0; p0 never sees p1's receives, so p1's component
  // stays pinned (the documented sparse-mesh stall).
  EXPECT_EQ(sys.retention_watermark(), VectorClock({3, 1}));
  EXPECT_EQ(sys.compact(sys.retention_watermark()), 2u);
  EXPECT_EQ(sys.reclaimed_before(0), 2u);
  EXPECT_EQ(sys.reclaimed_before(1), 0u);
}

TEST(RetentionTest, SingleProcessWatermarkCoversEverything) {
  OnlineSystem sys(1);
  sys.local(0);
  sys.local(0);
  EXPECT_EQ(sys.retention_watermark(), VectorClock({3}));
  EXPECT_EQ(sys.compact(sys.retention_watermark()), 2u);
  EXPECT_EQ(sys.live_log_events(), 0u);
}

// ---------------------------------------------------------------------------
// The monitor's side of the contract: the pin, and checkpoint adoption.
// ---------------------------------------------------------------------------

TEST(RetentionTest, WatermarkPinHoldsGapsAndOpenActions) {
  OnlineSystem sys(2);
  sys.local(0, 10);                       // 0:1
  const WireMessage m = sys.send(0, 20);  // 0:2

  OnlineMonitor mon(2);
  mon.begin("A");
  // Only 0:2's report arrives; its clock claims 0:1 — a gap.
  mon.ingest("A", sys.wire_of(m.source), 20);
  EXPECT_EQ(mon.missing_report_count(), 1u);
  // The pin sits at the gap: 0:1 must stay servable.
  VectorClock pin = mon.watermark_pin();
  EXPECT_EQ(pin.at(0), 1u);

  // Resync closes the gap; the open action now pins at its least recorded
  // index (0:2), not at the witnessed prefix.
  for (const WireMessage& reply : sys.serve(mon.resync_request())) {
    mon.observe(reply);
  }
  EXPECT_EQ(mon.missing_report_count(), 0u);
  pin = mon.watermark_pin();
  EXPECT_EQ(pin.at(0), 2u);

  // Completion releases the action's pin; only the prefix bound remains.
  mon.complete("A");
  pin = mon.watermark_pin();
  EXPECT_EQ(pin.at(0), 3u);
  EXPECT_EQ(pin.at(1), 1u);  // nothing of p1 ever witnessed

  // The pin is a safe compaction bound: everything below it reclaims.
  const VectorClock pins[] = {pin};
  EXPECT_EQ(sys.compact(low_watermark(pins)), 2u);
}

TEST(RetentionTest, LateJoinerConvergesAcrossTheWatermark) {
  constexpr std::size_t kSends = 6;
  OnlineSystem sys(2);
  for (std::size_t i = 0; i < kSends; ++i) {
    sys.deliver(1, sys.send(0));
  }
  // Reclaim everything the in-system receiver witnessed: all of p0.
  ASSERT_EQ(sys.compact(sys.retention_watermark()), kSends);

  // A monitor born after the compaction: the authoritative snapshot claims
  // every event ever executed, so its resync crosses the watermark.
  OnlineMonitor late(2);
  late.checkpoint(sys.snapshot());
  EXPECT_EQ(late.missing_report_count(), 2 * kSends);

  std::size_t surface_replies = 0;
  std::size_t rounds = 0;
  while (late.missing_report_count() > 0) {
    ASSERT_LT(rounds++, 10u) << "late joiner failed to converge";
    for (const WireMessage& reply : sys.serve(late.resync_request(4))) {
      if (reply.source.index <= sys.reclaimed_before(reply.source.process)) {
        ++surface_replies;
      }
      late.observe(reply);
    }
    // The surface reply cannot replay the reclaimed events themselves; the
    // checkpoint closes those gaps for good.
    late.adopt_checkpoint(sys.checkpoint());
  }
  EXPECT_GT(surface_replies, 0u);
  EXPECT_EQ(late.missing_report_count(), 0u);
  // Reclaimed reports count as covered, not as arrivals.
  EXPECT_TRUE(late.degraded());
}

// ---------------------------------------------------------------------------
// Soak: the three retention guarantees at once, on the shared harness.
// SYNCON_TEST_ITERS dials the cycle count (e.g. =5000 for a long soak).
// ---------------------------------------------------------------------------

TEST(RetentionSoakTest, CompactedFaultyRunKeepsCleanVerdictsAndPlateaus) {
  SoakConfig compacted_cfg;
  compacted_cfg.processes = 4;
  compacted_cfg.cycles = static_cast<std::uint64_t>(
      std::max(240, syncon::testing::test_iters(600)));
  compacted_cfg.action_every = 8;
  compacted_cfg.recover_every = 24;
  compacted_cfg.compact_every = 48;
  compacted_cfg.resync_chunk = 64;
  compacted_cfg.report_link.drop_probability = 0.08;
  compacted_cfg.report_link.duplicate_probability = 0.04;
  compacted_cfg.report_link.reorder_probability = 0.08;
  compacted_cfg.report_link.min_delay = 1;
  compacted_cfg.report_link.max_delay = 30;
  compacted_cfg.seed = 2026;
  compacted_cfg.late_joiner_probe = true;

  // The reference: same application execution (the app links are fault-free
  // in both configs), clean report feed, never compacted.
  SoakConfig clean_cfg = compacted_cfg;
  clean_cfg.report_link = LinkFaultConfig{};
  clean_cfg.compact_every = 0;
  clean_cfg.late_joiner_probe = false;

  const SoakResult compacted = run_soak(compacted_cfg);
  const SoakResult clean = run_soak(clean_cfg);

  // The faults and the compactions really happened.
  EXPECT_GT(compacted.report_stats.dropped, 0u);
  EXPECT_GT(compacted.reclaimed_events, 0u);
  EXPECT_GT(compacted.compactions, 1u);
  EXPECT_EQ(clean.reclaimed_events, 0u);

  // (a) Verdict identity: the Definite-firing sequence of the faulty,
  // compacted run is bit-identical to the clean, uncompacted run.
  ASSERT_FALSE(clean.definite_verdicts.empty());
  EXPECT_EQ(compacted.definite_verdicts, clean.definite_verdicts);

  // (b) Bounded memory: the live log plateaus — the steady-state half of
  // the post-compaction samples stays within slack of the warm-up half,
  // while the uncompacted log grows with the event count.
  ASSERT_GE(compacted.live_log_samples.size(), 4u);
  std::size_t first_max = 0, second_max = 0;
  const std::size_t half = compacted.live_log_samples.size() / 2;
  for (std::size_t i = 0; i < compacted.live_log_samples.size(); ++i) {
    auto& side = i < half ? first_max : second_max;
    side = std::max(side, compacted.live_log_samples[i]);
  }
  EXPECT_LE(second_max, first_max + first_max / 10 + 64);
  EXPECT_LT(compacted.live_log_final, clean.live_log_final);

  // (c) Checkpoint serving: the late joiner's resync crossed the watermark
  // and converged via surface reports + adopt_checkpoint.
  EXPECT_GT(compacted.surface_replies, 0u);
  EXPECT_TRUE(compacted.late_joiner_converged);
}

// ---------------------------------------------------------------------------
// Compaction meets durability: a crash between compact() and the snapshot
// becoming durable must recover from the PREVIOUS snapshot plus a longer
// WAL tail — same final state, just more replay (DESIGN.md §3.12).
// ---------------------------------------------------------------------------

TEST(RetentionTest, CrashBeforeSnapshotDurableFallsBackToPriorSnapshot) {
  SimStorage storage;  // clean crash model: the crash point is the subject
  DurabilityPolicy policy;
  policy.sync_every = 1;
  policy.segment_records = 64;
  policy.snapshot_every = 1;
  policy.full_interval = 4;
  auto sys = std::make_unique<DurableSystem>(2, storage, policy);
  OnlineSystem oracle(2);

  const auto drive = [&](int rounds) {
    for (int i = 0; i < rounds; ++i) {
      sys->deliver(1, sys->send(0));
      sys->deliver(0, sys->send(1));
      oracle.deliver(1, oracle.send(0));
      oracle.deliver(0, oracle.send(1));
    }
  };
  const auto cut_below_surface = [&] {
    // Counts-form cut covering everything but each process's last event.
    VectorClock w(2, 0);
    for (ProcessId p = 0; p < 2; ++p) {
      w.set(p, static_cast<ClockValue>(sys->system().executed(p)));
    }
    return w;
  };

  drive(4);
  sys->compact(cut_below_surface());  // snapshot #1, fully durable
  const VectorClock first_cut = sys->store().durable_cut();
  EXPECT_GT(sys->system().reclaimed_events(), 0u);

  drive(4);
  // The second compaction's snapshot never becomes durable: op 1 is the
  // log-before-checkpoint WAL sync, op 2 the snapshot-file append — crash.
  const VectorClock second_cut = cut_below_surface();
  ASSERT_NE(second_cut, first_cut);
  storage.crash_after_ops(2);
  EXPECT_THROW(sys->compact(second_cut), StorageCrash);

  auto recovered = std::make_unique<DurableSystem>(2, storage, policy);
  ASSERT_TRUE(recovered->recovery().recovered);
  const auto& info = recovered->store().recovery();
  ASSERT_TRUE(info.snapshot.has_value());
  // Fell back to the prior snapshot, paid for with a longer replayed tail.
  EXPECT_EQ(info.snapshot->checkpoint.cut, first_cut);
  EXPECT_GT(recovered->recovery().events_replayed, 0u);

  // No divergence: every live clock matches the never-compacted oracle,
  // and the recovered system keeps running and compacting.
  const auto expect_identical = [&] {
    for (ProcessId p = 0; p < 2; ++p) {
      ASSERT_EQ(recovered->system().executed(p), oracle.executed(p));
      EXPECT_EQ(recovered->system().current_clock(p), oracle.current_clock(p));
      for (EventIndex j = recovered->system().reclaimed_before(p) + 1;
           j <= recovered->system().executed(p); ++j) {
        EXPECT_EQ(recovered->system().clock_of(EventId{p, j}),
                  oracle.clock_of(EventId{p, j}));
      }
    }
  };
  expect_identical();

  for (int i = 0; i < 2; ++i) {
    recovered->deliver(1, recovered->send(0));
    recovered->deliver(0, recovered->send(1));
    oracle.deliver(1, oracle.send(0));
    oracle.deliver(0, oracle.send(1));
  }
  recovered->compact(second_cut);  // the retried compaction now sticks
  EXPECT_EQ(recovered->store().durable_cut(), second_cut);
  expect_identical();
}

}  // namespace
}  // namespace syncon
