#include <gtest/gtest.h>

#include "model/timestamps.hpp"
#include "relations/evaluator.hpp"
#include "sim/air_defense_des.hpp"
#include "timing/timing_constraints.hpp"

namespace syncon {
namespace {

const NonatomicEvent* find_interval(const DesEngine::Result& r,
                                    const std::string& label) {
  for (const NonatomicEvent& iv : r.intervals) {
    if (iv.label() == label) return &iv;
  }
  return nullptr;
}

TEST(AirDefenseDesTest, AllRoundsCompleteWithoutLoss) {
  AirDefenseDesConfig cfg;
  const DesEngine::Result r = make_air_defense_des(cfg);
  for (std::size_t k = 0; k < cfg.rounds; ++k) {
    const std::string suffix = "/" + std::to_string(k);
    ASSERT_NE(find_interval(r, "detect" + suffix), nullptr) << k;
    ASSERT_NE(find_interval(r, "track" + suffix), nullptr) << k;
    ASSERT_NE(find_interval(r, "decide" + suffix), nullptr) << k;
    ASSERT_NE(find_interval(r, "engage" + suffix), nullptr) << k;
  }
}

TEST(AirDefenseDesTest, DoctrineHoldsOnSimulatedTrace) {
  AirDefenseDesConfig cfg;
  const DesEngine::Result r = make_air_defense_des(cfg);
  const Timestamps ts(*r.execution);
  RelationEvaluator eval(ts);
  const RelationId fully_before{Relation::R1, ProxyKind::End,
                                ProxyKind::Begin};
  for (std::size_t k = 0; k < cfg.rounds; ++k) {
    const std::string suffix = "/" + std::to_string(k);
    const auto detect = eval.add_event(*find_interval(r, "detect" + suffix));
    const auto decide = eval.add_event(*find_interval(r, "decide" + suffix));
    const auto engage = eval.add_event(*find_interval(r, "engage" + suffix));
    EXPECT_TRUE(eval.holds(fully_before, detect, engage)) << k;
    EXPECT_TRUE(eval.holds(fully_before, decide, engage)) << k;
  }
}

TEST(AirDefenseDesTest, ResponseTimesAreMeasurable) {
  AirDefenseDesConfig cfg;
  const DesEngine::Result r = make_air_defense_des(cfg);
  LatencyProfile profile(TimingConstraint{
      "detect→engage", Anchor::Start, Anchor::End, 0, 60'000});
  for (std::size_t k = 0; k < cfg.rounds; ++k) {
    const std::string suffix = "/" + std::to_string(k);
    profile.record(*r.times, *find_interval(r, "detect" + suffix),
                   *find_interval(r, "engage" + suffix));
  }
  EXPECT_EQ(profile.samples(), cfg.rounds);
  // Response time is at least the pipeline's processing budget.
  EXPECT_GT(profile.worst_gap(),
            cfg.detect_work + cfg.fusion_work + cfg.decide_work);
}

TEST(AirDefenseDesTest, MessageLossStallsRounds) {
  AirDefenseDesConfig cfg;
  cfg.rounds = 8;
  cfg.network.loss_probability = 0.3;
  cfg.network.seed = 21;
  const DesEngine::Result r = make_air_defense_des(cfg);
  // Some rounds never make it through the fusion barrier: fewer engage
  // intervals than rounds.
  std::size_t engagements = 0;
  for (std::size_t k = 0; k < cfg.rounds; ++k) {
    if (find_interval(r, "engage/" + std::to_string(k)) != nullptr) {
      ++engagements;
    }
  }
  EXPECT_LT(engagements, cfg.rounds);
}

TEST(AirDefenseDesTest, DeterministicForFixedSeed) {
  AirDefenseDesConfig cfg;
  cfg.network.seed = 5;
  const auto a = make_air_defense_des(cfg);
  const auto b = make_air_defense_des(cfg);
  ASSERT_EQ(a.execution->total_real_count(), b.execution->total_real_count());
  EXPECT_EQ(a.times->horizon(), b.times->horizon());
}

}  // namespace
}  // namespace syncon
