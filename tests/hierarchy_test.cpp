#include <gtest/gtest.h>

#include "helpers.hpp"
#include "relations/evaluator.hpp"
#include "relations/hierarchy.hpp"
#include "sim/interval_picker.hpp"

namespace syncon {
namespace {

using testing::property_sweep;

TEST(HierarchyTest, QuantifierLatticeEdges) {
  EXPECT_TRUE(implies(Relation::R1, Relation::R2));
  EXPECT_TRUE(implies(Relation::R1, Relation::R2p));
  EXPECT_TRUE(implies(Relation::R1, Relation::R3));
  EXPECT_TRUE(implies(Relation::R1, Relation::R4));
  EXPECT_TRUE(implies(Relation::R1, Relation::R1p));
  EXPECT_TRUE(implies(Relation::R1p, Relation::R1));
  EXPECT_TRUE(implies(Relation::R2p, Relation::R2));
  EXPECT_TRUE(implies(Relation::R2, Relation::R4));
  EXPECT_TRUE(implies(Relation::R3, Relation::R3p));
  EXPECT_TRUE(implies(Relation::R3p, Relation::R4));
  EXPECT_TRUE(implies(Relation::R4, Relation::R4p));

  EXPECT_FALSE(implies(Relation::R2, Relation::R3));
  EXPECT_FALSE(implies(Relation::R2p, Relation::R3p));
  EXPECT_FALSE(implies(Relation::R3p, Relation::R2));
  EXPECT_FALSE(implies(Relation::R4, Relation::R2));
  EXPECT_FALSE(implies(Relation::R2, Relation::R1));
}

TEST(HierarchyTest, ProxyMonotonicity) {
  const RelationId strong{Relation::R4, ProxyKind::End, ProxyKind::Begin};
  const RelationId weak{Relation::R4, ProxyKind::Begin, ProxyKind::End};
  EXPECT_TRUE(implies(strong, weak));
  EXPECT_FALSE(implies(weak, strong));
  // Mixed: quantifier strengthening with proxy weakening composes.
  const RelationId a{Relation::R1, ProxyKind::End, ProxyKind::Begin};
  const RelationId b{Relation::R4, ProxyKind::Begin, ProxyKind::End};
  EXPECT_TRUE(implies(a, b));
  EXPECT_FALSE(implies(b, a));
  // Proxy change in the wrong direction blocks the implication.
  const RelationId c{Relation::R1, ProxyKind::Begin, ProxyKind::Begin};
  const RelationId d{Relation::R4, ProxyKind::End, ProxyKind::Begin};
  EXPECT_FALSE(implies(c, d));
}

TEST(HierarchyTest, ImplicationIsReflexiveAndTransitive) {
  const auto ids = all_relation_ids();
  for (const RelationId& a : ids) {
    EXPECT_TRUE(implies(a, a));
    for (const RelationId& b : ids) {
      if (!implies(a, b)) continue;
      for (const RelationId& c : ids) {
        if (implies(b, c)) {
          EXPECT_TRUE(implies(a, c))
              << to_string(a) << " => " << to_string(b) << " => "
              << to_string(c);
        }
      }
    }
  }
}

TEST(HierarchyTest, AllImplicationsEnumeratesThePreorder) {
  const auto edges = all_implications();
  // Spot-size: it must contain at least the within-proxy lattice (14 proper
  // edges per proxy pair × 4 pairs) and be consistent with implies().
  EXPECT_GT(edges.size(), 56u);
  for (const auto& [a, b] : edges) {
    EXPECT_TRUE(implies(a, b));
    EXPECT_FALSE(a == b);
  }
}

// Non-implications are genuine: for each key missing edge of the 8-relation
// lattice, a concrete witness where the antecedent holds and the consequent
// fails.
TEST(HierarchyTest, NonImplicationsHaveWitnesses) {
  // Execution: x1@p0 → y1@p2 and x2@p1 → y2@p3 (two disjoint chains).
  ExecutionBuilder b(4);
  EventId x1, x2;
  const MessageToken m1 = b.send(0, &x1);
  const MessageToken m2 = b.send(1, &x2);
  const EventId y1 = b.receive(2, m1);
  const EventId y2 = b.receive(3, m2);
  const Execution exec = b.build();
  const Timestamps ts(exec);
  const NonatomicEvent x(exec, {x1, x2}, "X");
  const NonatomicEvent y(exec, {y1, y2}, "Y");
  const EventCuts xc(ts, x), yc(ts, y);
  ComparisonCounter c;
  // R2 holds (each x reaches its own y) but R2' fails (no single y sees
  // both xs) and R3 fails (no single x seeds both ys).
  EXPECT_TRUE(evaluate_fast(Relation::R2, xc, yc, c));
  EXPECT_TRUE(evaluate_fast(Relation::R3p, xc, yc, c));
  EXPECT_FALSE(evaluate_fast(Relation::R2p, xc, yc, c));
  EXPECT_FALSE(evaluate_fast(Relation::R3, xc, yc, c));
  EXPECT_FALSE(evaluate_fast(Relation::R1, xc, yc, c));

  // Funnel execution: both xs reach a single y₁, while y₂ is unreachable —
  // R2' holds (y₁ sees all of X) but R1 and R3' fail (y₂ sees nothing),
  // separating R2' from the relations universal in y.
  ExecutionBuilder b2(4);
  EventId u1, u2;
  const MessageToken n1 = b2.send(0, &u1);
  const MessageToken n2 = b2.send(1, &u2);
  const std::vector<MessageToken> both{n1, n2};
  const EventId v1 = b2.receive_all(2, both);
  const EventId v2 = b2.local(3);
  const Execution exec2 = b2.build();
  const Timestamps ts2(exec2);
  const NonatomicEvent x2set(exec2, {u1, u2}, "X");
  const NonatomicEvent y2set(exec2, {v1, v2}, "Y");
  const EventCuts xc2(ts2, x2set), yc2(ts2, y2set);
  EXPECT_TRUE(evaluate_fast(Relation::R2p, xc2, yc2, c));
  EXPECT_TRUE(evaluate_fast(Relation::R2, xc2, yc2, c));
  EXPECT_FALSE(evaluate_fast(Relation::R1, xc2, yc2, c));
  EXPECT_FALSE(evaluate_fast(Relation::R3p, xc2, yc2, c));
  EXPECT_FALSE(evaluate_fast(Relation::R3, xc2, yc2, c));
}

// ---------------------------------------------------------------------------
// Semantic soundness: whenever implies(a, b) and a holds, b holds — verified
// with the fast evaluator over the sweep.
// ---------------------------------------------------------------------------

class HierarchyPropertyTest
    : public ::testing::TestWithParam<WorkloadConfig> {};

TEST_P(HierarchyPropertyTest, ImplicationsHoldSemantically) {
  const Execution exec = generate_execution(GetParam());
  const Timestamps ts(exec);
  RelationEvaluator eval(ts);
  Xoshiro256StarStar rng(GetParam().seed ^ 0xaaaa);
  IntervalSpec spec;
  spec.node_count = std::max<std::size_t>(1, exec.process_count() / 2);
  spec.max_events_per_node = 3;
  const auto hx = eval.add_event(random_interval(exec, rng, spec, "X"));
  const auto hy = eval.add_event(random_interval(exec, rng, spec, "Y"));

  const auto ids = all_relation_ids();
  std::array<bool, 32> value{};
  for (std::size_t i = 0; i < ids.size(); ++i) {
    value[i] = eval.holds(ids[i], hx, hy);
  }
  for (std::size_t i = 0; i < ids.size(); ++i) {
    for (std::size_t j = 0; j < ids.size(); ++j) {
      if (implies(ids[i], ids[j]) && value[i]) {
        ASSERT_TRUE(value[j]) << to_string(ids[i]) << " holds but implied "
                              << to_string(ids[j]) << " does not";
      }
    }
  }
}

TEST_P(HierarchyPropertyTest, PrunedAllHoldingMatchesExhaustive) {
  const Execution exec = generate_execution(GetParam());
  const Timestamps ts(exec);
  RelationEvaluator eval(ts);
  Xoshiro256StarStar rng(GetParam().seed ^ 0xbbbb);
  IntervalSpec spec;
  spec.node_count = std::max<std::size_t>(1, exec.process_count() / 2);
  spec.max_events_per_node = 3;
  for (int trial = 0; trial < 10; ++trial) {
    const auto hx = eval.add_event(
        random_interval(exec, rng, spec, "X" + std::to_string(trial)));
    const auto hy = eval.add_event(
        random_interval(exec, rng, spec, "Y" + std::to_string(trial)));
    const auto full = eval.all_holding(hx, hy);
    const auto pruned = eval.all_holding_pruned(hx, hy);
    ASSERT_EQ(full.holding.size(), pruned.holding.size());
    for (std::size_t i = 0; i < full.holding.size(); ++i) {
      ASSERT_TRUE(full.holding[i] == pruned.holding[i]);
    }
    EXPECT_EQ(full.evaluated, 32u);
    EXPECT_LE(pruned.evaluated, full.evaluated);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, HierarchyPropertyTest,
                         ::testing::ValuesIn(property_sweep()),
                         testing::sweep_case_name);

}  // namespace
}  // namespace syncon
