#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "helpers.hpp"
#include "model/timestamps.hpp"
#include "monitor/trace_io.hpp"
#include "sim/interval_picker.hpp"
#include "sim/workload.hpp"
#include "timing/physical_time.hpp"

namespace syncon {
namespace {

using testing::property_sweep;
using testing::two_process_message;

TEST(TraceIoTest, WritesReadableFormat) {
  const Execution exec = two_process_message();
  const std::string text = trace_to_string(exec);
  EXPECT_NE(text.find("syncon-trace 1"), std::string::npos);
  EXPECT_NE(text.find("processes 2"), std::string::npos);
  EXPECT_NE(text.find("e 1 < 0:2"), std::string::npos);  // the receive
}

TEST(TraceIoTest, RoundTripPreservesStructure) {
  const Execution exec = two_process_message();
  const Execution copy = trace_from_string(trace_to_string(exec));
  ASSERT_EQ(copy.process_count(), exec.process_count());
  for (ProcessId p = 0; p < exec.process_count(); ++p) {
    ASSERT_EQ(copy.real_count(p), exec.real_count(p));
  }
  ASSERT_EQ(copy.messages().size(), exec.messages().size());
  // Causality is identical.
  const Timestamps ts_a(exec), ts_b(copy);
  for (const EventId& e : exec.topological_order()) {
    ASSERT_EQ(ts_a.forward(e), ts_b.forward(e));
  }
}

TEST(TraceIoTest, CommentsAndBlankLinesIgnored) {
  const std::string text =
      "# a trace\n\nsyncon-trace 1\n# p count\nprocesses 2\n\ne 0\n# recv\n"
      "e 1 < 0:1\n";
  const Execution exec = trace_from_string(text);
  EXPECT_EQ(exec.real_count(0), 1u);
  EXPECT_EQ(exec.real_count(1), 1u);
  EXPECT_EQ(exec.messages().size(), 1u);
}

TEST(TraceIoTest, RejectsMissingHeader) {
  EXPECT_THROW(trace_from_string("processes 2\ne 0\n"), TraceFormatError);
}

TEST(TraceIoTest, RejectsBadProcessCount) {
  EXPECT_THROW(trace_from_string("syncon-trace 1\nprocesses 0\n"),
               TraceFormatError);
  EXPECT_THROW(trace_from_string("syncon-trace 1\nprocesses x\n"),
               TraceFormatError);
}

TEST(TraceIoTest, RejectsOutOfRangeProcess) {
  EXPECT_THROW(trace_from_string("syncon-trace 1\nprocesses 2\ne 2\n"),
               TraceFormatError);
}

TEST(TraceIoTest, RejectsForwardReferences) {
  // Receive references an event that does not exist yet.
  EXPECT_THROW(
      trace_from_string("syncon-trace 1\nprocesses 2\ne 1 < 0:1\ne 0\n"),
      TraceFormatError);
}

TEST(TraceIoTest, RejectsSelfReceive) {
  EXPECT_THROW(
      trace_from_string("syncon-trace 1\nprocesses 2\ne 0\ne 0 < 0:1\n"),
      TraceFormatError);
}

TEST(TraceIoTest, RejectsMalformedEventRef) {
  EXPECT_THROW(
      trace_from_string("syncon-trace 1\nprocesses 2\ne 0\ne 1 < 0-1\n"),
      TraceFormatError);
}

TEST(IntervalIoTest, RoundTrip) {
  WorkloadConfig cfg;
  cfg.seed = 5;
  const Execution exec = generate_execution(cfg);
  Xoshiro256StarStar rng(3);
  IntervalSpec spec;
  spec.node_count = 2;
  spec.max_events_per_node = 2;
  const auto intervals = random_intervals(exec, rng, spec, 5);

  std::stringstream ss;
  write_intervals(ss, intervals);
  const auto loaded = read_intervals(ss, exec);
  ASSERT_EQ(loaded.size(), intervals.size());
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    EXPECT_EQ(loaded[i].label(), intervals[i].label());
    EXPECT_EQ(loaded[i].events(), intervals[i].events());
  }
}

TEST(IntervalIoTest, RejectsUnknownEvents) {
  const Execution exec = two_process_message();
  std::stringstream ss("syncon-intervals 1\ni bogus 0:9\n");
  EXPECT_THROW(read_intervals(ss, exec), TraceFormatError);
}

TEST(IntervalIoTest, RejectsDummyEvents) {
  const Execution exec = two_process_message();
  std::stringstream ss("syncon-intervals 1\ni dummy 0:0\n");
  EXPECT_THROW(read_intervals(ss, exec), TraceFormatError);
}

TEST(IntervalIoTest, RejectsEmptyInterval) {
  const Execution exec = two_process_message();
  std::stringstream ss("syncon-intervals 1\ni empty\n");
  EXPECT_THROW(read_intervals(ss, exec), TraceFormatError);
}

TEST(TraceIoTest, GoldenFormatIsStable) {
  // The on-disk format is a compatibility contract; this golden pins it.
  ExecutionBuilder b(3);
  b.local(0);
  const MessageToken m1 = b.send(0);
  b.receive(1, m1);
  const MessageToken m2 = b.send(2);
  const std::vector<MessageToken> both{m1, m2};
  b.receive_all(1, both);
  const Execution exec = b.build();
  const std::string expected =
      "syncon-trace 1\n"
      "processes 3\n"
      "e 0\n"
      "e 0\n"
      "e 1 < 0:2\n"
      "e 2\n"
      "e 1 < 0:2 2:1\n";
  EXPECT_EQ(trace_to_string(exec), expected);
}

TEST(TimedTraceTest, RoundTripPreservesTimes) {
  const Execution exec = two_process_message();
  const PhysicalTimes times(exec, {{10, 20, 30}, {1, 25, 40}});
  std::stringstream ss;
  write_timed_trace(ss, exec, times);
  const TimedTrace loaded = read_timed_trace(ss);
  ASSERT_NE(loaded.times, nullptr);
  for (const EventId& e : exec.topological_order()) {
    ASSERT_EQ(loaded.times->at(e), times.at(e));
  }
}

TEST(TimedTraceTest, UntimedInputYieldsNullTimes) {
  const Execution exec = two_process_message();
  std::stringstream ss(trace_to_string(exec));
  const TimedTrace loaded = read_timed_trace(ss);
  EXPECT_EQ(loaded.times, nullptr);
  EXPECT_EQ(loaded.execution->total_real_count(), exec.total_real_count());
}

TEST(TimedTraceTest, RejectsMixedRecords) {
  const std::string text =
      "syncon-trace 1\nprocesses 2\ne 0 @10\ne 1\n";
  std::stringstream ss(text);
  EXPECT_THROW(read_timed_trace(ss), TraceFormatError);
}

TEST(TimedTraceTest, RejectsCausallyInvalidTimes) {
  // Receive stamped before its send.
  const std::string text =
      "syncon-trace 1\nprocesses 2\ne 0 @100\ne 1 @50 < 0:1\n";
  std::stringstream ss(text);
  EXPECT_THROW(read_timed_trace(ss), TraceFormatError);
}

TEST(TimedTraceTest, RejectsBadAnnotation) {
  const std::string text = "syncon-trace 1\nprocesses 1\ne 0 @abc\n";
  std::stringstream ss(text);
  EXPECT_THROW(read_timed_trace(ss), TraceFormatError);
}

TEST(TimedTraceTest, DesResultRoundTrips) {
  // End-to-end: simulate with the DES engine, persist the timed trace,
  // reload, and verify the timeline survives.
  WorkloadConfig wcfg;  // unused; the DES run below is self-contained
  (void)wcfg;
  const Execution exec = two_process_message();
  TimingModel model;
  model.seed = 3;
  const PhysicalTimes times = assign_times(exec, model);
  std::stringstream ss;
  write_timed_trace(ss, exec, times);
  const TimedTrace loaded = read_timed_trace(ss);
  ASSERT_NE(loaded.times, nullptr);
  EXPECT_EQ(loaded.times->horizon(), times.horizon());
}

class TraceIoPropertyTest : public ::testing::TestWithParam<WorkloadConfig> {};

TEST_P(TraceIoPropertyTest, RoundTripOnGeneratedWorkloads) {
  const Execution exec = generate_execution(GetParam());
  const Execution copy = trace_from_string(trace_to_string(exec));
  ASSERT_EQ(copy.process_count(), exec.process_count());
  ASSERT_EQ(copy.total_real_count(), exec.total_real_count());
  ASSERT_EQ(copy.messages().size(), exec.messages().size());
  const Timestamps ts_a(exec), ts_b(copy);
  for (const EventId& e : exec.topological_order()) {
    ASSERT_EQ(ts_a.forward(e), ts_b.forward(e));
    ASSERT_EQ(ts_a.future_start(e), ts_b.future_start(e));
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, TraceIoPropertyTest,
                         ::testing::ValuesIn(property_sweep()),
                         testing::sweep_case_name);

TEST(TraceIoErrorTest, ErrorsCarryLineAndToken) {
  try {
    trace_from_string("syncon-trace 1\nprocesses 2\ne 0\ne 7\n");
    FAIL() << "expected TraceFormatError";
  } catch (const TraceFormatError& err) {
    EXPECT_EQ(err.line(), 4u);
    EXPECT_EQ(err.token(), "e 7");
    const std::string what = err.what();
    EXPECT_NE(what.find("line 4"), std::string::npos);
    EXPECT_NE(what.find("2 processes"), std::string::npos);
    EXPECT_NE(what.find("'e 7'"), std::string::npos);
  }
}

// Robustness property (DESIGN.md §3.7): a reader facing storage/transport
// corruption must either parse (when the damage happens to leave a valid
// trace) or throw a clean TraceFormatError — never crash, never escape a
// different exception type, never return a structurally broken Execution.
class TraceCorruptionTest : public ::testing::Test {
 protected:
  // Returns true if the text still parsed; validates failure cleanliness
  // otherwise. Any non-TraceFormatError exception propagates and fails.
  static bool parses_or_fails_cleanly(const std::string& text) {
    try {
      const Execution parsed = trace_from_string(text);
      // No silent misparse: the accepted result must itself round-trip.
      const Execution again = trace_from_string(trace_to_string(parsed));
      EXPECT_EQ(again.total_real_count(), parsed.total_real_count());
      return true;
    } catch (const TraceFormatError& err) {
      EXPECT_FALSE(std::string(err.what()).empty());
      const auto lines = static_cast<std::size_t>(
          1 + std::count(text.begin(), text.end(), '\n'));
      EXPECT_LE(err.line(), lines + 1);  // LineReader's virtual EOF line
      return false;
    }
  }

  static std::string valid_trace() {
    WorkloadConfig cfg;
    cfg.seed = 9;
    return trace_to_string(generate_execution(cfg));
  }
};

TEST_F(TraceCorruptionTest, EveryTruncationFailsCleanlyOrParses) {
  const std::string good = valid_trace();
  for (std::size_t len = 0; len < good.size(); ++len) {
    parses_or_fails_cleanly(good.substr(0, len));
  }
}

TEST_F(TraceCorruptionTest, BitFlipsFailCleanlyOrParse) {
  const std::string good = valid_trace();
  Xoshiro256StarStar rng(2026);
  std::size_t rejected = 0;
  for (int trial = 0; trial < 800; ++trial) {
    std::string text = good;
    const std::size_t pos = rng.below(text.size());
    text[pos] = static_cast<char>(
        static_cast<unsigned char>(text[pos]) ^ (1u << rng.below(8)));
    if (!parses_or_fails_cleanly(text)) ++rejected;
  }
  // The format is dense enough that most single-bit flips are detected.
  EXPECT_GT(rejected, 0u);
}

TEST_F(TraceCorruptionTest, LinePermutationsFailCleanlyOrParse) {
  const std::string good = valid_trace();
  std::vector<std::string> lines;
  std::istringstream in(good);
  for (std::string l; std::getline(in, l);) lines.push_back(l);
  Xoshiro256StarStar rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    std::shuffle(lines.begin(), lines.end(), rng);
    std::string text;
    for (const std::string& l : lines) text += l + "\n";
    parses_or_fails_cleanly(text);
  }
}

}  // namespace
}  // namespace syncon
