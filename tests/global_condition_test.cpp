#include <gtest/gtest.h>

#include <memory>

#include "monitor/global_condition.hpp"
#include "sim/scenarios.hpp"
#include "support/contracts.hpp"

namespace syncon {
namespace {

SyncMonitor air_defense_monitor() {
  const Scenario s = make_air_defense({});
  SyncMonitor m(s.execution_ptr());
  for (const NonatomicEvent& iv : s.intervals()) m.add_interval(iv);
  return m;
}

TEST(GlobalConditionTest, ParsesAndRenders) {
  const GlobalCondition c =
      GlobalCondition::parse("R1[U,L](a,b) & !R4(b,a) | R2'[L,U](c,d)");
  EXPECT_EQ(c.to_string(),
            "((R1[U,L](a,b) & !R4[U,L](b,a)) | R2'[L,U](c,d))");
  EXPECT_EQ(c.labels(), (std::vector<std::string>{"a", "b", "c", "d"}));
}

TEST(GlobalConditionTest, ParseErrors) {
  EXPECT_THROW(GlobalCondition::parse(""), ConditionParseError);
  EXPECT_THROW(GlobalCondition::parse("R1"), ConditionParseError);
  EXPECT_THROW(GlobalCondition::parse("R1(a)"), ConditionParseError);
  EXPECT_THROW(GlobalCondition::parse("R1(a,)"), ConditionParseError);
  EXPECT_THROW(GlobalCondition::parse("R1[X,L](a,b)"), ConditionParseError);
  EXPECT_THROW(GlobalCondition::parse("R1[U,L](a,b) &"), ConditionParseError);
  EXPECT_THROW(GlobalCondition::parse("(R1(a,b)"), ConditionParseError);
  EXPECT_THROW(GlobalCondition::parse("R5(a,b)"), ConditionParseError);
}

TEST(GlobalConditionTest, EvaluatesEngagementDoctrine) {
  const SyncMonitor m = air_defense_monitor();
  // The full doctrine for round 0 as a single specification.
  const GlobalCondition doctrine = GlobalCondition::parse(
      "R1[U,L](detect/0, engage/0) & R1[U,L](decide/0, engage/0) & "
      "!R4[L,U](engage/0, detect/0)");
  EXPECT_TRUE(doctrine.evaluate(m));
  // A deliberately false doctrine: engagement before its own detection.
  EXPECT_FALSE(
      GlobalCondition::parse("R4[L,U](engage/0, detect/0)").evaluate(m));
}

TEST(GlobalConditionTest, MultiRoundSpecification) {
  const SyncMonitor m = air_defense_monitor();
  // One formula over six distinct intervals: pipeline order for rounds 0
  // and 1 plus cross-round serialization through the command post.
  const GlobalCondition c = GlobalCondition::parse(
      "R1[U,L](detect/0, engage/0) & R1[U,L](detect/1, engage/1) & "
      "R1[U,L](decide/0, decide/1)");
  EXPECT_TRUE(c.evaluate(m));
  EXPECT_EQ(c.labels().size(), 6u);
}

TEST(GlobalConditionTest, UnknownLabelRaises) {
  const SyncMonitor m = air_defense_monitor();
  const GlobalCondition c = GlobalCondition::parse("R1(nope/0, engage/0)");
  EXPECT_THROW(c.evaluate(m), ContractViolation);
}

TEST(GlobalConditionTest, GroupingAndPrecedence) {
  const SyncMonitor m = air_defense_monitor();
  // & binds tighter than |: false & false | true == true.
  const GlobalCondition c = GlobalCondition::parse(
      "R4[L,U](engage/0, detect/0) & R4[L,U](engage/1, detect/1) | "
      "R1[U,L](detect/0, engage/0)");
  EXPECT_TRUE(c.evaluate(m));
  // With explicit grouping the | happens first: false & (false|true) == false.
  const GlobalCondition grouped = GlobalCondition::parse(
      "R4[L,U](engage/0, detect/0) & (R4[L,U](engage/1, detect/1) | "
      "R1[U,L](detect/0, engage/0))");
  EXPECT_FALSE(grouped.evaluate(m));
}

}  // namespace
}  // namespace syncon
