#include <gtest/gtest.h>

#include "helpers.hpp"
#include "model/reachability.hpp"
#include "model/timestamps.hpp"
#include "sim/workload.hpp"

namespace syncon {
namespace {

using testing::property_sweep;
using testing::three_process_concurrent;
using testing::two_process_message;

std::vector<EventId> all_events(const Execution& exec) {
  std::vector<EventId> out;
  for (ProcessId p = 0; p < exec.process_count(); ++p) {
    for (EventIndex k = 0; k < exec.total_count(p); ++k) {
      out.push_back(EventId{p, k});
    }
  }
  return out;
}

TEST(TimestampsTest, MessageCreatesCausality) {
  const Execution exec = two_process_message();
  const Timestamps ts(exec);
  const EventId a1{0, 1}, a2{0, 2}, a3{0, 3};
  const EventId b1{1, 1}, b2{1, 2}, b3{1, 3};
  EXPECT_TRUE(ts.lt(a1, a2));
  EXPECT_TRUE(ts.lt(a2, b2));  // the message
  EXPECT_TRUE(ts.lt(a1, b3));  // transitively
  EXPECT_TRUE(ts.concurrent(a3, b2));
  EXPECT_TRUE(ts.concurrent(a1, b1));
  EXPECT_FALSE(ts.lt(b2, a2));
}

TEST(TimestampsTest, ForwardClockValues) {
  const Execution exec = two_process_message();
  const Timestamps ts(exec);
  // Convention: T(e)[i] counts dummies, so the floor is 1.
  EXPECT_EQ(ts.forward(EventId{0, 1}), VectorClock({2, 1}));
  EXPECT_EQ(ts.forward(EventId{0, 2}), VectorClock({3, 1}));
  EXPECT_EQ(ts.forward(EventId{1, 1}), VectorClock({1, 2}));
  EXPECT_EQ(ts.forward(EventId{1, 2}), VectorClock({3, 3}));  // knows a2
  EXPECT_EQ(ts.forward(EventId{1, 3}), VectorClock({3, 4}));
}

TEST(TimestampsTest, OwnComponentIsIndexPlusOne) {
  const Execution exec = two_process_message();
  const Timestamps ts(exec);
  for (const EventId& e : all_events(exec)) {
    EXPECT_EQ(ts.forward(e).at(e.process), e.index + 1)
        << e.process << ":" << e.index;
  }
}

TEST(TimestampsTest, DummyClockClosedForms) {
  const Execution exec = two_process_message();  // 3 real events each
  const Timestamps ts(exec);
  EXPECT_EQ(ts.forward(EventId{0, 0}), VectorClock({1, 0}));
  EXPECT_EQ(ts.forward(EventId{1, 0}), VectorClock({0, 1}));
  EXPECT_EQ(ts.forward(EventId{0, 4}), VectorClock({5, 4}));  // ⊤_0
  EXPECT_EQ(ts.forward(EventId{1, 4}), VectorClock({4, 5}));  // ⊤_1
}

TEST(TimestampsTest, ReverseCountsFutureEvents) {
  const Execution exec = two_process_message();
  const Timestamps ts(exec);
  // a2 = 0.2 is followed on p0 by a3 and ⊤_0 (plus itself = 3) and on p1 by
  // b2, b3, ⊤_1 (= 3).
  EXPECT_EQ(ts.reverse(EventId{0, 2}), VectorClock({3, 3}));
  // a3 = 0.3: itself + ⊤_0; nothing real on p1, only ⊤_1.
  EXPECT_EQ(ts.reverse(EventId{0, 3}), VectorClock({2, 1}));
  // ⊥_0 precedes everything incl. both ⊤s but not ⊥_1.
  EXPECT_EQ(ts.reverse(EventId{0, 0}), VectorClock({5, 4}));
  // ⊤_0 is followed only by itself.
  EXPECT_EQ(ts.reverse(EventId{0, 4}), VectorClock({1, 0}));
}

TEST(TimestampsTest, FutureCutCountsOfMessageSend) {
  const Execution exec = two_process_message();
  const Timestamps ts(exec);
  // a2↑ reaches a2 on p0 and the receive b2 on p1.
  EXPECT_EQ(ts.future_cut_counts(EventId{0, 2}), VectorClock({3, 3}));
  // a3↑: a3 on p0; nothing on p1 follows a3 except ⊤_1.
  EXPECT_EQ(ts.future_cut_counts(EventId{0, 3}), VectorClock({4, 5}));
}

TEST(TimestampsTest, ConcurrentProcessesStayIncomparable) {
  const Execution exec = three_process_concurrent();
  const Timestamps ts(exec);
  for (ProcessId p = 0; p < 3; ++p) {
    for (ProcessId q = 0; q < 3; ++q) {
      if (p == q) continue;
      EXPECT_TRUE(ts.concurrent(EventId{p, 1}, EventId{q, 2}));
    }
  }
}

TEST(TimestampsTest, DummyAxioms) {
  const Execution exec = three_process_concurrent();
  const Timestamps ts(exec);
  for (ProcessId i = 0; i < 3; ++i) {
    for (ProcessId j = 0; j < 3; ++j) {
      // ⊥_i ≺ every real event and every ⊤_j; ⊥s mutually incomparable.
      EXPECT_TRUE(ts.lt(exec.initial(i), EventId{j, 1}));
      EXPECT_TRUE(ts.lt(exec.initial(i), exec.final(j)));
      EXPECT_TRUE(ts.lt(EventId{j, 1}, exec.final(i)));
      if (i != j) {
        EXPECT_TRUE(ts.concurrent(exec.initial(i), exec.initial(j)));
        EXPECT_TRUE(ts.concurrent(exec.final(i), exec.final(j)));
      }
    }
  }
}

TEST(TimestampsTest, LeqIsReflexiveOnDummies) {
  const Execution exec = three_process_concurrent();
  const Timestamps ts(exec);
  EXPECT_TRUE(ts.leq(exec.initial(0), exec.initial(0)));
  EXPECT_TRUE(ts.leq(exec.final(2), exec.final(2)));
  EXPECT_FALSE(ts.lt(exec.final(2), exec.final(2)));
}

// ---------------------------------------------------------------------------
// Property sweep: timestamps must agree with the explicit transitive closure
// on every event pair, and T must be an isomorphism (Defn 13's property).
// ---------------------------------------------------------------------------

class TimestampPropertyTest
    : public ::testing::TestWithParam<WorkloadConfig> {};

TEST_P(TimestampPropertyTest, AgreesWithReachabilityOracle) {
  const Execution exec = generate_execution(GetParam());
  const Timestamps ts(exec);
  const ReachabilityOracle oracle(exec);
  const auto events = all_events(exec);
  for (const EventId& a : events) {
    for (const EventId& b : events) {
      ASSERT_EQ(ts.leq(a, b), oracle.leq(a, b))
          << a.process << ":" << a.index << " vs " << b.process << ":"
          << b.index;
    }
  }
}

TEST_P(TimestampPropertyTest, ClockOrderIsomorphicToCausality) {
  const Execution exec = generate_execution(GetParam());
  const Timestamps ts(exec);
  // For real events: e ≺ e' iff T(e) < T(e') (the paper's clock condition).
  for (const EventId& a : exec.topological_order()) {
    for (const EventId& b : exec.topological_order()) {
      if (a == b) continue;
      ASSERT_EQ(ts.lt(a, b), ts.forward_ref(a).lt(ts.forward_ref(b)));
    }
  }
}

TEST_P(TimestampPropertyTest, ReverseTimestampMatchesOracleCounts) {
  const Execution exec = generate_execution(GetParam());
  const Timestamps ts(exec);
  const ReachabilityOracle oracle(exec);
  for (const EventId& e : exec.topological_order()) {
    const VectorClock r = ts.reverse(e);
    for (ProcessId i = 0; i < exec.process_count(); ++i) {
      ClockValue expected = 0;
      for (EventIndex k = 0; k < exec.total_count(i); ++k) {
        if (oracle.leq(e, EventId{i, k})) ++expected;
      }
      ASSERT_EQ(r[i], expected) << "T^R mismatch at process " << i;
    }
  }
}

TEST_P(TimestampPropertyTest, ForwardTimestampMatchesOracleCounts) {
  const Execution exec = generate_execution(GetParam());
  const Timestamps ts(exec);
  const ReachabilityOracle oracle(exec);
  for (const EventId& e : exec.topological_order()) {
    const VectorClock t = ts.forward(e);
    for (ProcessId i = 0; i < exec.process_count(); ++i) {
      ClockValue expected = 0;
      for (EventIndex k = 0; k < exec.total_count(i); ++k) {
        if (oracle.leq(EventId{i, k}, e)) ++expected;
      }
      ASSERT_EQ(t[i], expected) << "T mismatch at process " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, TimestampPropertyTest,
                         ::testing::ValuesIn(property_sweep()),
                         testing::sweep_case_name);

}  // namespace
}  // namespace syncon
