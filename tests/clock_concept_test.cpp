// Contract suite for the clock concept (model/clock.hpp): every backend
// must satisfy the same lattice laws, order semantics, tick monotonicity
// and serialization round-trips. The laws are checked on deterministic
// pseudo-random clocks, so sparse/structured backends are exercised on both
// their fast and fallback paths; a separate causal simulation pins the
// TreeClock pruned joins against the dense backend step by step.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <span>
#include <vector>

#include "model/clock.hpp"
#include "model/compressed_clock.hpp"
#include "model/tree_clock.hpp"
#include "model/vector_clock.hpp"

namespace syncon {
namespace {

static_assert(ClockRep<VectorClock>);
static_assert(ClockRep<TreeClock>);
static_assert(ClockRep<CompressedClock>);

template <typename Clock>
class ClockConceptTest : public ::testing::Test {
 protected:
  Clock random_clock(std::size_t size, std::mt19937& rng,
                     ClockValue max_value = 12) {
    std::uniform_int_distribution<ClockValue> dist(0, max_value);
    Clock c(size, 0);
    for (std::size_t i = 0; i < size; ++i) c.set(i, dist(rng));
    return c;
  }
};

using Backends = ::testing::Types<VectorClock, TreeClock, CompressedClock>;
TYPED_TEST_SUITE(ClockConceptTest, Backends);

TYPED_TEST(ClockConceptTest, FillConstructionAndAccess) {
  TypeParam c(4, 3);
  ASSERT_EQ(c.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(c.at(i), 3u);
  c.set(2, 9);
  EXPECT_EQ(c.at(2), 9u);
  c.tick(2);
  EXPECT_EQ(c.at(2), 10u);
  EXPECT_EQ(c.at(1), 3u);
}

TYPED_TEST(ClockConceptTest, LatticeLaws) {
  std::mt19937 rng(7);
  for (int round = 0; round < 200; ++round) {
    const std::size_t size = static_cast<std::size_t>(1 + round % 9);
    const TypeParam a = this->random_clock(size, rng);
    const TypeParam b = this->random_clock(size, rng);
    const TypeParam c = this->random_clock(size, rng);

    // Commutativity.
    EXPECT_EQ(component_max(a, b), component_max(b, a));
    EXPECT_EQ(component_min(a, b), component_min(b, a));
    // Associativity.
    EXPECT_EQ(component_max(component_max(a, b), c),
              component_max(a, component_max(b, c)));
    EXPECT_EQ(component_min(component_min(a, b), c),
              component_min(a, component_min(b, c)));
    // Idempotence and absorption.
    EXPECT_EQ(component_max(a, a), a);
    EXPECT_EQ(component_min(a, a), a);
    EXPECT_EQ(component_max(a, component_min(a, b)), a);
    EXPECT_EQ(component_min(a, component_max(a, b)), a);
  }
}

TYPED_TEST(ClockConceptTest, OrderIsTheLatticeOrder) {
  std::mt19937 rng(11);
  for (int round = 0; round < 200; ++round) {
    const std::size_t size = static_cast<std::size_t>(1 + round % 9);
    const TypeParam a = this->random_clock(size, rng, 4);
    const TypeParam b = this->random_clock(size, rng, 4);
    // a.leq(b) iff joining a into b changes nothing.
    EXPECT_EQ(a.leq(b), component_max(a, b) == b);
    EXPECT_EQ(a.lt(b), a.leq(b) && !(a == b));
    EXPECT_EQ(a.incomparable(b), !a.leq(b) && !b.leq(a));
    // Antisymmetry.
    if (a.leq(b) && b.leq(a)) {
      EXPECT_EQ(a, b);
    }
    // The meet and join bracket both operands.
    EXPECT_TRUE(component_min(a, b).leq(a));
    EXPECT_TRUE(a.leq(component_max(a, b)));
  }
}

TYPED_TEST(ClockConceptTest, TickIsStrictlyMonotone) {
  std::mt19937 rng(13);
  for (int round = 0; round < 50; ++round) {
    const std::size_t size = static_cast<std::size_t>(1 + round % 9);
    TypeParam c = this->random_clock(size, rng);
    const TypeParam before = c;
    const std::size_t i = static_cast<std::size_t>(round) % size;
    c.tick(i);
    EXPECT_TRUE(before.lt(c));
    EXPECT_EQ(c.at(i), before.at(i) + 1);
    for (std::size_t j = 0; j < size; ++j) {
      if (j != i) {
        EXPECT_EQ(c.at(j), before.at(j));
      }
    }
  }
}

TYPED_TEST(ClockConceptTest, DenseConversionRoundTrips) {
  std::mt19937 rng(17);
  for (int round = 0; round < 50; ++round) {
    const TypeParam c = this->random_clock(static_cast<std::size_t>(1 + round % 9), rng);
    const VectorClock dense = c.to_dense();
    ASSERT_EQ(dense.size(), c.size());
    for (std::size_t i = 0; i < c.size(); ++i) EXPECT_EQ(dense.at(i), c.at(i));
    EXPECT_EQ(TypeParam::from_dense(dense), c);
  }
}

TYPED_TEST(ClockConceptTest, SerializationRoundTripsAndConcatenates) {
  std::mt19937 rng(19);
  std::vector<std::uint8_t> bytes;
  std::vector<TypeParam> originals;
  for (int round = 0; round < 40; ++round) {
    // Stamped clocks have correlated adjacent components; emulate that so
    // the delta encoding's small-value path is exercised too.
    TypeParam c = this->random_clock(static_cast<std::size_t>(1 + round % 9), rng, 3);
    for (std::size_t i = 1; i < c.size(); ++i) {
      c.set(i, c.at(i) + c.at(i - 1));
    }
    c.encode(bytes);
    originals.push_back(std::move(c));
  }
  std::span<const std::uint8_t> in(bytes);
  for (const TypeParam& original : originals) {
    EXPECT_EQ(TypeParam::decode(in), original);
  }
  EXPECT_TRUE(in.empty());
}

// The three backends share the absolute wire layout, so a clock encoded by
// one backend decodes through any other.
TEST(ClockInteropTest, WireFormatIsSharedAcrossBackends) {
  const VectorClock dense({3, 1, 4, 1, 5});
  std::vector<std::uint8_t> bytes;
  dense.encode(bytes);
  std::span<const std::uint8_t> in1(bytes);
  EXPECT_EQ(TreeClock::decode(in1).to_dense(), dense);
  std::span<const std::uint8_t> in2(bytes);
  EXPECT_EQ(CompressedClock::decode(in2).to_dense(), dense);

  bytes.clear();
  TreeClock::from_dense(dense).encode(bytes);
  std::span<const std::uint8_t> in3(bytes);
  EXPECT_EQ(VectorClock::decode(in3), dense);
}

// Step-for-step simulation of a message-passing run under the stamping
// discipline (start from the predecessor or the all-ones floor, tick the
// owner, join the piggybacked clocks): the TreeClock must stay on its
// causal fast path and agree with the dense backend after every event.
TEST(TreeClockCausalTest, SimulatedRunMatchesDenseAndStaysCausal) {
  constexpr std::size_t kProcs = 8;
  constexpr int kEvents = 600;
  std::mt19937 rng(23);
  std::uniform_int_distribution<std::size_t> proc_dist(0, kProcs - 1);
  std::uniform_int_distribution<int> kind_dist(0, 3);

  std::vector<TreeClock> tree(kProcs, TreeClock(kProcs, 1));
  std::vector<VectorClock> dense(kProcs, VectorClock(kProcs, 1));
  // In-flight messages: (tree clock, dense clock) pairs.
  std::vector<std::pair<TreeClock, VectorClock>> in_flight;

  for (int step = 0; step < kEvents; ++step) {
    const std::size_t p = proc_dist(rng);
    tree[p].tick(p);
    dense[p].tick(p);
    const int kind = kind_dist(rng);
    if (kind == 0 || in_flight.empty()) {
      // Send: snapshot the post-tick clock onto the wire.
      in_flight.emplace_back(tree[p], dense[p]);
    } else if (kind == 1) {
      // Receive one pending message (any order across links).
      std::uniform_int_distribution<std::size_t> pick(0, in_flight.size() - 1);
      const std::size_t m = pick(rng);
      tree[p].merge_max(in_flight[m].first);
      dense[p].merge_max(in_flight[m].second);
      in_flight.erase(in_flight.begin() + static_cast<std::ptrdiff_t>(m));
    }
    ASSERT_TRUE(tree[p].causal()) << "step " << step;
    ASSERT_EQ(tree[p].root(), static_cast<ProcessId>(p));
    ASSERT_EQ(tree[p].to_dense(), dense[p]) << "step " << step;
  }
}

// Non-causal inputs (arbitrary set() values) must demote TreeClock to its
// dense fallback, never silently prune.
TEST(TreeClockCausalTest, ArbitraryWritesDemoteToDenseFallback) {
  TreeClock a(4, 1);
  a.tick(2);
  EXPECT_TRUE(a.causal());
  a.set(0, 9);
  EXPECT_FALSE(a.causal());

  TreeClock b(4, 1);
  b.tick(1);
  b.merge_max(a);  // non-causal source → dense path
  EXPECT_FALSE(b.causal());
  EXPECT_EQ(b.to_dense(), VectorClock({9, 2, 2, 1}));
}

TEST(TreeClockCausalTest, MergeMinAndDecodeAreNonCausal) {
  TreeClock a(3, 1);
  a.tick(0);
  TreeClock b(3, 1);
  b.tick(1);
  a.merge_min(b);
  EXPECT_FALSE(a.causal());
  EXPECT_EQ(a.to_dense(), VectorClock({1, 1, 1}));

  std::vector<std::uint8_t> bytes;
  b.encode(bytes);
  std::span<const std::uint8_t> in(bytes);
  EXPECT_FALSE(TreeClock::decode(in).causal());
}

}  // namespace
}  // namespace syncon
