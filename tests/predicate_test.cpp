#include <gtest/gtest.h>

#include "helpers.hpp"
#include "monitor/predicate.hpp"

namespace syncon {
namespace {

using testing::two_process_message;

struct EvalFixture {
  Execution exec = two_process_message();
  Timestamps ts{exec};
  RelationEvaluator eval{ts};
  RelationEvaluator::Handle hx;
  RelationEvaluator::Handle hy;

  EvalFixture() {
    hx = eval.add_event(
        NonatomicEvent(exec, {EventId{0, 1}, EventId{0, 2}}, "X"));
    hy = eval.add_event(
        NonatomicEvent(exec, {EventId{1, 2}, EventId{1, 3}}, "Y"));
  }
};

TEST(SyncConditionTest, ParsesBareRelationWithDefaultProxies) {
  const SyncCondition c = SyncCondition::parse("R1");
  EXPECT_EQ(c.to_string(), "R1(U,L)");
}

TEST(SyncConditionTest, ParsesExplicitProxies) {
  EXPECT_EQ(SyncCondition::parse("R2'(L,U)").to_string(), "R2'(L,U)");
  EXPECT_EQ(SyncCondition::parse("R4' ( U , U )").to_string(), "R4'(U,U)");
}

TEST(SyncConditionTest, ParsesBooleanStructure) {
  const SyncCondition c = SyncCondition::parse("R1 & !R2 | (R3 & R4)");
  // & binds tighter than |.
  EXPECT_EQ(c.to_string(), "((R1(U,L) & !R2(U,L)) | (R3(U,L) & R4(U,L)))");
}

TEST(SyncConditionTest, ParseErrors) {
  EXPECT_THROW(SyncCondition::parse(""), ConditionParseError);
  EXPECT_THROW(SyncCondition::parse("R5"), ConditionParseError);
  EXPECT_THROW(SyncCondition::parse("Q1"), ConditionParseError);
  EXPECT_THROW(SyncCondition::parse("R1 &"), ConditionParseError);
  EXPECT_THROW(SyncCondition::parse("R1 R2"), ConditionParseError);
  EXPECT_THROW(SyncCondition::parse("(R1"), ConditionParseError);
  EXPECT_THROW(SyncCondition::parse("R1(L)"), ConditionParseError);
  EXPECT_THROW(SyncCondition::parse("R1(L,)"), ConditionParseError);
}

TEST(SyncConditionTest, EvaluatesAtoms) {
  EvalFixture f;
  // Every event of X precedes every event of Y in this fixture (a1,a2 ≺
  // b2,b3), so R1 holds on all proxy pairs.
  EXPECT_TRUE(SyncCondition::parse("R1(U,L)").evaluate(f.eval, f.hx, f.hy));
  EXPECT_TRUE(SyncCondition::parse("R1(L,U)").evaluate(f.eval, f.hx, f.hy));
  // And fails in the reverse direction.
  EXPECT_FALSE(SyncCondition::parse("R4(L,U)").evaluate(f.eval, f.hy, f.hx));
}

TEST(SyncConditionTest, EvaluatesBooleanOperators) {
  EvalFixture f;
  EXPECT_TRUE(
      SyncCondition::parse("R1 & R2 & R3").evaluate(f.eval, f.hx, f.hy));
  EXPECT_FALSE(
      SyncCondition::parse("R1 & !R2").evaluate(f.eval, f.hx, f.hy));
  EXPECT_TRUE(
      SyncCondition::parse("!R1 | R4").evaluate(f.eval, f.hx, f.hy));
  EXPECT_TRUE(SyncCondition::parse("!(R1 & !R1)").evaluate(f.eval, f.hx,
                                                           f.hy));
}

TEST(SyncConditionTest, NotBindsTightest) {
  EvalFixture f;
  // !R4 | R4 is a tautology only if ! binds to the atom.
  EXPECT_TRUE(SyncCondition::parse("!R4 | R4").evaluate(f.eval, f.hx, f.hy));
  EXPECT_TRUE(SyncCondition::parse("!R4 | R4").evaluate(f.eval, f.hy, f.hx));
}

TEST(SyncConditionTest, AtomFactory) {
  const SyncCondition c = SyncCondition::atom(
      RelationId{Relation::R3p, ProxyKind::Begin, ProxyKind::End});
  EXPECT_EQ(c.to_string(), "R3'(L,U)");
}

}  // namespace
}  // namespace syncon
