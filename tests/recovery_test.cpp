// Crash/recovery end-to-end (DESIGN.md §3.12): the headline differential
// kills a durable monitor at a seeded-random point while its feed suffers
// ≥15% drop/duplicate/reorder AND its storage suffers torn tails and bit
// flips, recovers from snapshot + WAL tail, and demands verdicts, clocks
// and traces bit-identical to an uninterrupted fault-free run. Plus the
// ingress-hardening (quarantine) and resync retry-budget satellites.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "helpers.hpp"
#include "online/online_monitor.hpp"
#include "online/online_system.hpp"
#include "online/wire_codec.hpp"
#include "relations/relation.hpp"
#include "sim/faulty_channel.hpp"
#include "sim/workload.hpp"
#include "store/durable.hpp"
#include "store/storage.hpp"
#include "support/rng.hpp"

namespace syncon {
namespace {

struct Firing {
  bool holds = false;
  Confidence conf = Confidence::Definite;

  friend bool operator==(const Firing&, const Firing&) = default;
};

std::vector<Firing> verdicts_of(OnlineMonitor& mon) {
  std::vector<Firing> fired;
  for (const RelationId& id : all_relation_ids()) {
    mon.watch(id, "X", "Y",
              [&fired](const std::string&, const std::string&, bool holds,
                       Confidence conf) { fired.push_back({holds, conf}); });
  }
  return fired;
}

Execution sample_execution(std::uint64_t seed) {
  WorkloadConfig config;
  config.process_count = 4;
  config.events_per_process = 20;
  config.seed = seed;
  return generate_execution(config);
}

// X/Y pick a prefix window on two processes — enough events on each that
// the intervals overlap the message traffic.
void pick_intervals(const Execution& exec, std::set<EventId>& x_set,
                    std::set<EventId>& y_set) {
  for (EventIndex i = 2; i <= exec.real_count(0) && i <= 9; ++i) {
    x_set.insert(EventId{0, i});
  }
  for (EventIndex i = 3; i <= exec.real_count(1) && i <= 11; ++i) {
    y_set.insert(EventId{1, i});
  }
  ASSERT_FALSE(x_set.empty());
  ASSERT_FALSE(y_set.empty());
}

DurabilityPolicy test_policy(Xoshiro256StarStar& rng) {
  DurabilityPolicy policy;
  policy.sync_every = 1 + static_cast<std::uint32_t>(rng.below(4));
  policy.segment_records = 4 + static_cast<std::uint32_t>(rng.below(12));
  policy.snapshot_every = 1;
  policy.full_interval = 1 + static_cast<std::uint32_t>(rng.below(8));
  return policy;
}

// --- headline: crash under link + storage faults, recover, bit-identity ---

TEST(RecoveryTest, MonitorCrashUnderFaultsRecoversToFaultFreeVerdicts) {
  const int iters = testing::test_iters(20);
  for (int iter = 0; iter < iters; ++iter) {
    const std::uint64_t seed = 0x51CCA0 + static_cast<std::uint64_t>(iter);
    SYNCON_SEED_TRACE(seed);
    Xoshiro256StarStar rng(seed);
    const Execution exec = sample_execution(seed);
    std::set<EventId> x_set, y_set;
    pick_intervals(exec, x_set, y_set);
    const OnlineSystem sys = replay(exec);

    // Uninterrupted fault-free reference.
    OnlineMonitor clean(exec.process_count());
    clean.begin("X");
    clean.begin("Y");
    for (const EventId& e : exec.topological_order()) {
      const WireMessage w = sys.wire_of(e);
      if (x_set.count(e)) {
        clean.ingest("X", w);
      } else if (y_set.count(e)) {
        clean.ingest("Y", w);
      } else {
        clean.observe(w);
      }
    }
    clean.complete("X");
    clean.complete("Y");
    const std::vector<Firing> clean_fires = verdicts_of(clean);
    ASSERT_EQ(clean_fires.size(), 32u);

    // Subject: ≥15% of each link fault, torn/bit-flipped storage, and a
    // crash at a seeded-random feed position.
    LinkFaultConfig link;
    link.drop_probability = 0.2;
    link.duplicate_probability = 0.18;
    link.reorder_probability = 0.25;
    link.max_delay = 40;
    FaultyChannel channel(link, seed ^ 0xFEED);
    TimePoint t = 0;
    for (const EventId& e : exec.topological_order()) {
      channel.push(sys.wire_of(e), t += 5);
    }
    const std::vector<Arrival> arrivals = channel.drain();

    SimFaultConfig faults;
    faults.torn_tail = 0.6;
    faults.bit_flip = 0.1;
    faults.seed = seed ^ 0xC0FFEE;
    SimStorage storage(faults);
    const DurabilityPolicy policy = test_policy(rng);
    auto mon = std::make_unique<DurableMonitor>(exec.process_count(),
                                                storage, policy);
    bool crashed = false;
    const auto ensure_begun = [&] {
      for (const char* label : {"X", "Y"}) {
        if (!mon->monitor().is_open(label) &&
            mon->monitor().summary(label) == nullptr) {
          mon->begin(label);
        }
      }
    };
    const auto recover = [&] {
      // A crash before the first sync barrier can leave nothing durable:
      // recovery then starts fresh, which must ALSO converge to identity.
      mon = std::make_unique<DurableMonitor>(exec.process_count(), storage,
                                             policy);
      ensure_begun();
    };
    const auto feed = [&](const WireMessage& report) {
      if (x_set.count(report.source)) {
        mon->ingest("X", report);
      } else if (y_set.count(report.source)) {
        mon->ingest("Y", report);
      } else {
        mon->observe(report);
      }
    };
    const auto guarded = [&](const auto& fn) {
      try {
        fn();
      } catch (const StorageCrash&) {
        ASSERT_FALSE(crashed) << "armed crash fired twice";
        crashed = true;
        recover();
        fn();
      }
    };

    storage.crash_after_ops(1 + rng.below(arrivals.size() + 2));
    guarded(ensure_begun);
    for (const Arrival& a : arrivals) {
      guarded([&] { feed(a.message); });
    }
    bool need_round = true;
    int rounds = 0;
    while (need_round || mon->monitor().missing_report_count() > 0) {
      ASSERT_LT(++rounds, 512) << "resync failed to converge";
      need_round = false;
      guarded([&] {
        mon->checkpoint(sys.snapshot());
        for (const WireMessage& w :
             sys.serve(mon->monitor().resync_request(8))) {
          feed(w);
        }
      });
    }
    guarded([&] {
      if (mon->monitor().is_open("X")) mon->complete("X");
    });
    guarded([&] {
      if (mon->monitor().is_open("Y")) mon->complete("Y");
    });
    rounds = 0;
    while (mon->monitor().missing_report_count() > 0) {
      ASSERT_LT(++rounds, 512);
      mon->checkpoint(sys.snapshot());
      for (const WireMessage& w :
           sys.serve(mon->monitor().resync_request(8))) {
        feed(w);
      }
    }
    EXPECT_TRUE(crashed) << "seeded crash point was never reached";

    const std::vector<Firing> crash_fires = verdicts_of(mon->monitor());
    ASSERT_EQ(crash_fires.size(), 32u);
    const auto ids = all_relation_ids();
    for (std::size_t i = 0; i < 32; ++i) {
      EXPECT_EQ(crash_fires[i].conf, Confidence::Definite)
          << to_string(ids[i]);
      EXPECT_TRUE(crash_fires[i] == clean_fires[i]) << to_string(ids[i]);
    }
  }
}

// The system-side identity: a journaling DurableSystem crashed mid-drive
// (with compaction in the mix) recovers and finishes with clocks and traces
// bit-identical to a never-crashed replay.
TEST(RecoveryTest, SystemCrashRecoversToIdenticalClocksAndTraces) {
  const int iters = testing::test_iters(20);
  for (int iter = 0; iter < iters; ++iter) {
    const std::uint64_t seed = 0xD15C + static_cast<std::uint64_t>(iter);
    SYNCON_SEED_TRACE(seed);
    Xoshiro256StarStar rng(seed);
    const Execution exec = sample_execution(seed * 3 + 1);
    const OnlineSystem oracle = replay(exec);

    SimFaultConfig faults;
    faults.torn_tail = 0.6;
    faults.bit_flip = 0.1;
    faults.seed = seed;
    SimStorage storage(faults);
    const DurabilityPolicy policy = test_policy(rng);
    auto sys = std::make_unique<DurableSystem>(exec.process_count(), storage,
                                               policy);
    std::set<EventId> is_source;
    for (const Message& msg : exec.messages()) is_source.insert(msg.source);
    const std::vector<EventId>& order = exec.topological_order();
    storage.crash_after_ops(1 + rng.below(order.size()));
    bool crashed = false;
    std::size_t i = 0;
    while (i < order.size()) {
      const EventId e = order[i];
      try {
        if (e.index > sys->system().executed(e.process)) {
          const auto incoming = exec.incoming(e);
          if (!incoming.empty()) {
            std::vector<WireMessage> msgs;
            for (const EventId& src : incoming) {
              msgs.push_back(sys->system().wire_of(src));
            }
            sys->deliver_all(e.process, msgs);
          } else if (is_source.count(e)) {
            sys->send(e.process);
          } else {
            sys->local(e.process);
          }
        }
        if ((i + 1) % 7 == 0) {
          sys->compact(sys->system().retention_watermark());
        }
        ++i;
      } catch (const StorageCrash&) {
        ASSERT_FALSE(crashed);
        crashed = true;
        sys = std::make_unique<DurableSystem>(exec.process_count(), storage,
                                              policy);
        i = 0;  // re-scan; recovered events are skipped, lost ones re-driven
      }
    }
    EXPECT_TRUE(crashed);

    for (ProcessId p = 0; p < exec.process_count(); ++p) {
      ASSERT_EQ(sys->system().executed(p), oracle.executed(p)) << "p=" << p;
      EXPECT_EQ(sys->system().current_clock(p), oracle.current_clock(p));
      for (EventIndex j = sys->system().reclaimed_before(p) + 1;
           j <= sys->system().executed(p); ++j) {
        const EventId e{p, j};
        EXPECT_EQ(sys->system().clock_of(e), oracle.clock_of(e));
        EXPECT_EQ(sys->system().time_of(e), oracle.time_of(e));
      }
    }
  }
}

// --- satellite: hardened ingress quarantines garbage, never aborts --------

TEST(QuarantineTest, LinkDecoderRejectsGarbageWithoutStateDamage) {
  LinkEncoder enc(3, 4);
  LinkDecoder dec(3);
  OnlineSystem sys(3);
  const WireMessage w1 = sys.send(0);
  sys.deliver(1, w1);
  const WireMessage w2 = {EventId{1, 1}, sys.clock_of(EventId{1, 1})};

  std::vector<std::uint8_t> frames;
  enc.encode(w1, frames);
  const std::size_t boundary = frames.size();
  enc.encode(w2, frames);

  // Garbage: random bytes are rejected and the input span is not consumed.
  const std::vector<std::uint8_t> junk = {0xde, 0xad, 0xbe, 0xef, 0x99};
  std::span<const std::uint8_t> junk_in = junk;
  WireMessage out;
  EXPECT_FALSE(dec.try_decode(junk_in, out));
  EXPECT_EQ(junk_in.size(), junk.size());

  // A bit-flipped first frame is rejected; the pristine copy still decodes,
  // proving the failed attempt left no partial decoder state behind.
  std::vector<std::uint8_t> flipped(frames.begin(),
                                    frames.begin() +
                                        static_cast<std::ptrdiff_t>(boundary));
  flipped[flipped.size() / 2] ^= 0x40;
  std::span<const std::uint8_t> flipped_in = flipped;
  const bool flipped_ok = dec.try_decode(flipped_in, out);
  std::span<const std::uint8_t> good_in = frames;
  ASSERT_TRUE(dec.try_decode(good_in, out));
  EXPECT_EQ(out.source, w1.source);
  EXPECT_EQ(out.clock, w1.clock);
  ASSERT_TRUE(dec.try_decode(good_in, out));
  EXPECT_EQ(out.source, w2.source);
  EXPECT_EQ(out.clock, w2.clock);
  // (flipped_ok may rarely be true if the flip lands in a don't-care bit;
  // the invariant under test is the pristine stream decoding either way.)
  (void)flipped_ok;
}

TEST(QuarantineTest, TryDeliverQuarantinesMalformedMessages) {
  OnlineSystem sys(2);
  const WireMessage good = sys.send(0);

  // Out-of-range process, zero index, clock that violates the Fidge
  // convention: all quarantined, none aborts, nothing executes.
  WireMessage bad = good;
  bad.source.process = 7;
  EXPECT_FALSE(sys.try_deliver(1, bad));
  bad = good;
  bad.source.index = 0;
  EXPECT_FALSE(sys.try_deliver(1, bad));
  bad = good;
  bad.clock = VectorClock({9, 9});  // clock[0] != index + 1
  EXPECT_FALSE(sys.try_deliver(1, bad));
  EXPECT_EQ(sys.quarantined(), 3u);
  EXPECT_EQ(sys.executed(1), 0u);

  // The clean message still goes through afterwards.
  EventId receipt;
  ASSERT_TRUE(sys.try_deliver(1, good, OnlineSystem::kNoTime, &receipt));
  EXPECT_EQ(receipt, (EventId{1, 1}));
  EXPECT_EQ(sys.quarantined(), 3u);
}

TEST(QuarantineTest, MonitorQuarantinesGarbageReportsAndKeepsServing) {
  OnlineSystem sys(2);
  OnlineMonitor mon(2);
  mon.begin("A");
  const WireMessage w = sys.send(0);

  WireMessage bad = w;
  bad.clock = VectorClock({3, 1, 4});  // wrong width
  EXPECT_FALSE(mon.try_ingest("A", bad));
  bad = w;
  bad.source.process = 9;
  EXPECT_FALSE(mon.try_observe(bad));
  bad = w;
  bad.clock = VectorClock({7, 0});  // violates clock[p] == index + 1
  EXPECT_FALSE(mon.try_ingest("A", bad));
  EXPECT_EQ(mon.quarantined(), 3u);

  EXPECT_TRUE(mon.try_ingest("A", w));  // clean traffic unaffected
  EXPECT_EQ(mon.quarantined(), 3u);
  mon.complete("A");

  // The quarantine count surfaces on the health report.
  bool found = false;
  for (const auto& row : mon.health_metrics()) {
    if (row.metric == "syncon_monitor_quarantined_reports") {
      found = true;
      EXPECT_EQ(row.value, 3u);
    }
  }
  EXPECT_TRUE(found);
}

TEST(QuarantineTest, DurableShellsNeverJournalQuarantinedInput) {
  SimStorage storage;
  DurableMonitor mon(2, storage);
  mon.begin("A");
  OnlineSystem sys(2);
  const WireMessage w = sys.send(0);
  WireMessage bad = w;
  bad.clock = VectorClock({9, 9});
  const std::uint64_t before = mon.store().records_appended();
  EXPECT_FALSE(mon.try_ingest("A", bad));
  EXPECT_EQ(mon.store().records_appended(), before);  // nothing journaled
  EXPECT_TRUE(mon.try_ingest("A", w));
  EXPECT_EQ(mon.store().records_appended(), before + 1);
}

// --- satellite: resync retry budget + exponential backoff ------------------

TEST(ResyncBudgetTest, BacksOffExponentiallyAndGivesUpAfterBudget) {
  OnlineSystem sys(2);
  OnlineMonitor mon(2);
  // One gap: process 0's event 1 was dropped; event 2's clock names it.
  sys.send(0);
  mon.observe(sys.send(0));
  OnlineMonitor::ResyncPolicy policy;
  policy.budget = 3;
  policy.initial_backoff = 2;
  policy.max_backoff = 16;
  mon.set_resync_policy(policy);
  ASSERT_GT(mon.missing_report_count(), 0u);

  // Attempt 1 fires immediately; the next is gated by backoff 2, then 4.
  EXPECT_TRUE(mon.next_resync(100).has_value());
  EXPECT_FALSE(mon.next_resync(101).has_value());  // inside backoff window
  EXPECT_TRUE(mon.next_resync(102).has_value());   // 100 + 2
  EXPECT_FALSE(mon.next_resync(105).has_value());  // inside doubled window
  EXPECT_TRUE(mon.next_resync(106).has_value());   // 102 + 4
  EXPECT_EQ(mon.resync_attempts(), 3u);

  // Budget spent with no progress: give up (once), stay given-up.
  EXPECT_FALSE(mon.next_resync(1000).has_value());
  EXPECT_TRUE(mon.resync_exhausted());
  EXPECT_EQ(mon.resync_give_ups(), 1u);
  EXPECT_FALSE(mon.next_resync(2000).has_value());
  EXPECT_EQ(mon.resync_give_ups(), 1u);

  // A given-up gap is still a gap: an action completed across it reports
  // PendingGap honestly rather than pretending the verdict is final.
  mon.begin("A");
  mon.ingest("A", sys.send(1));
  mon.begin("B");
  mon.ingest("B", sys.send(1));
  Firing fired;
  bool any = false;
  mon.watch({Relation::R3, ProxyKind::Begin, ProxyKind::End}, "A", "B",
            [&](const std::string&, const std::string&, bool, Confidence c) {
              fired.conf = c;
              any = true;
            });
  mon.complete("A");
  mon.complete("B");
  ASSERT_TRUE(any);
  EXPECT_EQ(fired.conf, Confidence::PendingGap);
}

TEST(ResyncBudgetTest, ProgressRefundsTheBudgetAndResetsBackoff) {
  OnlineSystem sys(2);
  OnlineMonitor mon(2);
  // Two missing reports on process 0.
  const WireMessage w3 = [&] {
    sys.send(0);
    sys.send(0);
    return sys.send(0);
  }();
  mon.observe(w3);
  OnlineMonitor::ResyncPolicy policy;
  policy.budget = 2;
  policy.initial_backoff = 4;
  policy.max_backoff = 64;
  mon.set_resync_policy(policy);
  ASSERT_EQ(mon.missing_report_count(), 2u);

  EXPECT_TRUE(mon.next_resync(10).has_value());
  EXPECT_TRUE(mon.next_resync(14).has_value());
  EXPECT_FALSE(mon.next_resync(200).has_value());  // budget spent
  EXPECT_TRUE(mon.resync_exhausted());

  // One missing report arrives: progress refunds the budget and resets the
  // backoff, so the next attempt fires immediately and clears exhaustion.
  for (const WireMessage& w : sys.serve(mon.resync_request(1))) {
    mon.observe(w);
  }
  ASSERT_EQ(mon.missing_report_count(), 1u);
  EXPECT_TRUE(mon.next_resync(201).has_value());
  EXPECT_FALSE(mon.resync_exhausted());

  // Closing the gap entirely resets the episode state.
  for (const WireMessage& w : sys.serve(mon.resync_request())) {
    mon.observe(w);
  }
  EXPECT_EQ(mon.missing_report_count(), 0u);
  EXPECT_FALSE(mon.next_resync(300).has_value());
  EXPECT_FALSE(mon.resync_exhausted());
}

TEST(ResyncBudgetTest, DroppedFirstReplyIsRetriedAfterBackoffToDefinite) {
  OnlineSystem sys(2);
  OnlineMonitor mon(2);
  mon.begin("A");
  sys.send(0);  // dropped by the link
  const WireMessage w2 = sys.send(0);
  mon.ingest("A", w2);
  ASSERT_EQ(mon.missing_report_count(), 1u);

  std::uint64_t now = 50;
  int served = 0;
  while (mon.missing_report_count() > 0) {
    if (const auto request = mon.next_resync(now)) {
      ++served;
      if (served > 1) {  // the FIRST resync reply is dropped too
        for (const WireMessage& w : sys.serve(*request)) mon.ingest("A", w);
      }
    }
    ++now;
    ASSERT_LT(now, 1000u) << "retry never converged";
  }
  EXPECT_GE(mon.resync_attempts(), 2u);
  EXPECT_EQ(mon.resync_give_ups(), 0u);
  EXPECT_EQ(mon.missing_report_count(), 0u);

  Firing fired;
  bool any = false;
  mon.watch({Relation::R3, ProxyKind::Begin, ProxyKind::End}, "A", "A2",
            [&](const std::string&, const std::string&, bool holds,
                Confidence conf) {
              fired = {holds, conf};
              any = true;
            });
  mon.begin("A2");
  mon.ingest("A2", sys.send(1));
  mon.complete("A2");
  mon.complete("A");
  EXPECT_TRUE(any);
  EXPECT_EQ(fired.conf, Confidence::Definite);
}

}  // namespace
}  // namespace syncon
