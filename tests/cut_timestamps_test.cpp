#include <gtest/gtest.h>

#include "cuts/ll_relation.hpp"
#include "helpers.hpp"
#include "model/reachability.hpp"
#include "nonatomic/cut_timestamps.hpp"
#include "sim/interval_picker.hpp"

namespace syncon {
namespace {

using testing::Fig2Fixture;
using testing::property_sweep;

TEST(EventCutsTest, Fig2ExampleCutStructure) {
  // Replica of the paper's Figure 2: an 8-event poset X across four nodes,
  // chained by messages 0→1→2→3 (see helpers.hpp for the exact layout).
  const Fig2Fixture f = Fig2Fixture::make();
  const Timestamps ts(f.exec);
  const NonatomicEvent x(f.exec, f.x_events, "X");
  ASSERT_EQ(x.size(), 8u);
  ASSERT_EQ(x.node_count(), 4u);
  const EventCuts cuts(ts, x);

  // C1 = ∩⇓X: what every member of X knows — only x01's past survives the
  // intersection because x01 knows nothing beyond itself.
  EXPECT_EQ(cuts.intersect_past(), VectorClock({2, 1, 1, 1}));

  // C2 = ∪⇓X: everything known to some member — x32 is last in the chain
  // and knows p0 up to the send (4), p1 up to its send (5), p2 up to its
  // send (5) and itself (4).
  EXPECT_EQ(cuts.union_past(), VectorClock({4, 5, 5, 4}));

  // C3 = ∩⇑X: earliest events preceded by SOME member of X per node — the
  // chain head x01 reaches every node through the receive cascade.
  EXPECT_EQ(cuts.intersect_future(), VectorClock({2, 2, 2, 2}));

  // C4 = ∪⇑X: earliest events preceded by EVERY member of X. x31/x32 only
  // reach ⊤ of nodes 0..2, so C4 runs to the end there; on node 3 it stops
  // at x32 itself.
  EXPECT_EQ(cuts.union_future(), VectorClock({6, 7, 6, 4}));
}

TEST(EventCutsTest, Fig2CutsAreOrderedByContainment) {
  const Fig2Fixture f = Fig2Fixture::make();
  const Timestamps ts(f.exec);
  const NonatomicEvent x(f.exec, f.x_events, "X");
  const EventCuts cuts(ts, x);
  // ∩⇓X ⊆ ∪⇓X and ∩⇑X ⊆ ∪⇑X always.
  EXPECT_TRUE(cuts.intersect_past().leq(cuts.union_past()));
  EXPECT_TRUE(cuts.intersect_future().leq(cuts.union_future()));
}

TEST(EventCutsTest, SingleAtomicEventDegeneratesToSpecialCuts) {
  const Fig2Fixture f = Fig2Fixture::make();
  const Timestamps ts(f.exec);
  const EventId e = f.x_events[2];
  const NonatomicEvent x(f.exec, {e});
  const EventCuts cuts(ts, x);
  EXPECT_EQ(cuts.intersect_past(), ts.past_cut_counts(e));
  EXPECT_EQ(cuts.union_past(), ts.past_cut_counts(e));
  EXPECT_EQ(cuts.intersect_future(), ts.future_cut_counts(e));
  EXPECT_EQ(cuts.union_future(), ts.future_cut_counts(e));
}

TEST(EventCutsTest, CutAccessorsMatchCounts) {
  const Fig2Fixture f = Fig2Fixture::make();
  const Timestamps ts(f.exec);
  const NonatomicEvent x(f.exec, f.x_events);
  const EventCuts cuts(ts, x);
  for (const PosetCut which :
       {PosetCut::IntersectPast, PosetCut::UnionPast,
        PosetCut::IntersectFuture, PosetCut::UnionFuture}) {
    EXPECT_EQ(cuts.cut(which).counts(), cuts.counts(which));
  }
}

// ---------------------------------------------------------------------------
// Property sweep
// ---------------------------------------------------------------------------

class EventCutsPropertyTest
    : public ::testing::TestWithParam<WorkloadConfig> {};

// Lemma 11 is trivially satisfied by construction (counts representation);
// what needs proof is that the optimized extreme-element computation matches
// the full fold over every member (Lemma 16 / Corollary 17 / §2.3).
TEST_P(EventCutsPropertyTest, OptimizedMatchesReferenceFold) {
  const Execution exec = generate_execution(GetParam());
  const Timestamps ts(exec);
  Xoshiro256StarStar rng(GetParam().seed ^ 0x77);
  IntervalSpec spec;
  spec.node_count = std::max<std::size_t>(1, exec.process_count() / 2);
  spec.max_events_per_node = 4;
  for (int trial = 0; trial < 40; ++trial) {
    const NonatomicEvent x = random_interval(exec, rng, spec);
    const EventCuts cuts(ts, x);
    for (const PosetCut which :
         {PosetCut::IntersectPast, PosetCut::UnionPast,
          PosetCut::IntersectFuture, PosetCut::UnionFuture}) {
      ASSERT_EQ(cuts.counts(which), poset_cut_counts_reference(ts, x, which))
          << to_string(which);
    }
  }
}

// Lemma 12: the members of X relate to the surfaces of C1..C4 as stated.
TEST_P(EventCutsPropertyTest, Lemma12SurfaceProperties) {
  const Execution exec = generate_execution(GetParam());
  const Timestamps ts(exec);
  const ReachabilityOracle oracle(exec);
  Xoshiro256StarStar rng(GetParam().seed ^ 0x99);
  IntervalSpec spec;
  spec.node_count = std::max<std::size_t>(1, exec.process_count() / 2);
  spec.max_events_per_node = 3;
  for (int trial = 0; trial < 20; ++trial) {
    const NonatomicEvent x = random_interval(exec, rng, spec);
    const EventCuts cuts(ts, x);
    const Cut c1 = cuts.cut(PosetCut::IntersectPast);
    const Cut c2 = cuts.cut(PosetCut::UnionPast);
    const Cut c3 = cuts.cut(PosetCut::IntersectFuture);
    const Cut c4 = cuts.cut(PosetCut::UnionFuture);
    for (ProcessId p = 0; p < exec.process_count(); ++p) {
      // 12.1: ∀e' ∈ S(∩⇓X) ∀x: e' ⪯ x.
      for (const EventId& member : x.events()) {
        ASSERT_TRUE(oracle.leq(c1.surface_event(p), member));
      }
      // 12.2: ∀e' ∈ S(∪⇓X) ∃x: e' ⪯ x.
      {
        bool found = false;
        for (const EventId& member : x.events()) {
          if (oracle.leq(c2.surface_event(p), member)) {
            found = true;
            break;
          }
        }
        ASSERT_TRUE(found);
      }
      // 12.3: ∀e' ∈ S(∩⇑X) ∃x: x ⪯ e'.
      {
        bool found = false;
        for (const EventId& member : x.events()) {
          if (oracle.leq(member, c3.surface_event(p))) {
            found = true;
            break;
          }
        }
        ASSERT_TRUE(found);
      }
      // 12.4: ∀e' ∈ S(∪⇑X) ∀x: x ⪯ e'.
      for (const EventId& member : x.events()) {
        ASSERT_TRUE(oracle.leq(member, c4.surface_event(p)));
      }
    }
  }
}

// Defn 10 containment chain: C1 ⊆ C2 and C3 ⊆ C4; pasts are globally
// consistent cuts, futures need not be.
TEST_P(EventCutsPropertyTest, ContainmentAndConsistency) {
  const Execution exec = generate_execution(GetParam());
  const Timestamps ts(exec);
  Xoshiro256StarStar rng(GetParam().seed ^ 0xee);
  IntervalSpec spec;
  spec.node_count = exec.process_count();
  spec.max_events_per_node = 2;
  for (int trial = 0; trial < 20; ++trial) {
    const NonatomicEvent x = random_interval(exec, rng, spec);
    const EventCuts cuts(ts, x);
    ASSERT_TRUE(cuts.intersect_past().leq(cuts.union_past()));
    ASSERT_TRUE(cuts.intersect_future().leq(cuts.union_future()));
    // The paper: ∩⇓X and ∪⇓X are downward-closed in (E, ≺).
    ASSERT_TRUE(cuts.cut(PosetCut::IntersectPast).globally_consistent(ts));
    ASSERT_TRUE(cuts.cut(PosetCut::UnionPast).globally_consistent(ts));
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, EventCutsPropertyTest,
                         ::testing::ValuesIn(property_sweep()),
                         testing::sweep_case_name);

}  // namespace
}  // namespace syncon
