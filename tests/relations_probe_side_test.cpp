// Regression tests for DESIGN.md §3.3b: which side (N_X or N_Y) may be
// probed for each ≪-based condition. These encode the concrete
// counterexamples showing the paper's Theorem 20 over-claims min(|N_X|,
// |N_Y|) for R2' and R3.
#include <gtest/gtest.h>

#include "cuts/ll_relation.hpp"
#include "helpers.hpp"
#include "nonatomic/cut_timestamps.hpp"
#include "relations/fast.hpp"
#include "relations/naive.hpp"
#include "sim/interval_picker.hpp"

namespace syncon {
namespace {

using testing::property_sweep;

// X = {x} on p0 messaging y1@p1 and y2@p2 directly. R3(X, Y) holds (x
// precedes every y), but the violation of ≪(∩⇓Y, ∩⇑X) is visible only at
// p0 ∈ N_X; both N_Y components compare clean.
TEST(ProbeSideTest, R3CounterexampleDefeatsNYProbing) {
  ExecutionBuilder b(3);
  EventId x_event;
  const MessageToken m1 = b.send(0, &x_event);
  const EventId y1 = b.receive(1, m1);
  // Reuse the multicast token for p2 — one send, two receives.
  const EventId y2 = b.receive(2, m1);
  const Execution exec = b.build();
  const Timestamps ts(exec);

  const NonatomicEvent x(exec, {x_event}, "X");
  const NonatomicEvent y(exec, {y1, y2}, "Y");
  EXPECT_TRUE(evaluate_naive(Relation::R3, x, y, ts, Semantics::Strict));

  const EventCuts xc(ts, x), yc(ts, y);
  ComparisonCounter counter;
  // Our evaluator (probing N_X) gets it right.
  EXPECT_TRUE(evaluate_fast(Relation::R3, xc, yc, counter));
  // Probing N_Y, as the paper's min() claim would allow, misses the
  // violation — the would-be optimization is unsound.
  EXPECT_FALSE(theorem19_violated(yc.intersect_past(), xc.intersect_future(),
                                  y.node_set(), counter));
  // Probing N_X finds it.
  EXPECT_TRUE(theorem19_violated(yc.intersect_past(), xc.intersect_future(),
                                 x.node_set(), counter));
}

// Mirror counterexample for R2': X = {x1@p0, x2@p1}, Y = {y@p2} receiving
// from both. R2' holds, but only the N_Y component shows the violation of
// ≪(∪⇓Y, ∪⇑X).
TEST(ProbeSideTest, R2pCounterexampleDefeatsNXProbing) {
  ExecutionBuilder b(3);
  EventId x1_event, x2_event;
  const MessageToken m1 = b.send(0, &x1_event);
  const MessageToken m2 = b.send(1, &x2_event);
  const std::vector<MessageToken> both{m1, m2};
  const EventId y_event = b.receive_all(2, both);
  const Execution exec = b.build();
  const Timestamps ts(exec);

  const NonatomicEvent x(exec, {x1_event, x2_event}, "X");
  const NonatomicEvent y(exec, {y_event}, "Y");
  EXPECT_TRUE(evaluate_naive(Relation::R2p, x, y, ts, Semantics::Strict));

  const EventCuts xc(ts, x), yc(ts, y);
  ComparisonCounter counter;
  EXPECT_TRUE(evaluate_fast(Relation::R2p, xc, yc, counter));
  EXPECT_FALSE(theorem19_violated(yc.union_past(), xc.union_future(),
                                  x.node_set(), counter));
  EXPECT_TRUE(theorem19_violated(yc.union_past(), xc.union_future(),
                                 y.node_set(), counter));
}

// ---------------------------------------------------------------------------
// For R4 the paper's claim IS sound: a violation of ≪(∪⇓Y, ∩⇑X) is always
// visible from both sides. Verify on the sweep.
// ---------------------------------------------------------------------------

class ProbeSidePropertyTest
    : public ::testing::TestWithParam<WorkloadConfig> {};

TEST_P(ProbeSidePropertyTest, R4ViolationVisibleFromBothSides) {
  const Execution exec = generate_execution(GetParam());
  const Timestamps ts(exec);
  Xoshiro256StarStar rng(GetParam().seed ^ 0x7777);
  IntervalSpec spec;
  spec.node_count = std::max<std::size_t>(1, exec.process_count() / 2);
  spec.max_events_per_node = 3;
  for (int trial = 0; trial < 50; ++trial) {
    const NonatomicEvent x = random_interval(exec, rng, spec, "X");
    const NonatomicEvent y = random_interval(exec, rng, spec, "Y");
    const EventCuts xc(ts, x), yc(ts, y);
    ComparisonCounter counter;
    const bool via_x = theorem19_violated(
        yc.union_past(), xc.intersect_future(), x.node_set(), counter);
    const bool via_y = theorem19_violated(
        yc.union_past(), xc.intersect_future(), y.node_set(), counter);
    ASSERT_EQ(via_x, via_y) << "R4 probe sides disagree at trial " << trial;
    ASSERT_EQ(via_x, evaluate_naive(Relation::R4, x, y, ts, Semantics::Weak));
  }
}

// R1's two evaluation routes (|N_X| per-x tests vs |N_Y| per-y tests) agree.
TEST_P(ProbeSidePropertyTest, R1BothRoutesAgree) {
  const Execution exec = generate_execution(GetParam());
  const Timestamps ts(exec);
  Xoshiro256StarStar rng(GetParam().seed ^ 0x8888);
  IntervalSpec spec;
  spec.node_count = std::max<std::size_t>(1, exec.process_count() / 2);
  spec.max_events_per_node = 3;
  for (int trial = 0; trial < 50; ++trial) {
    const NonatomicEvent x = random_interval(exec, rng, spec, "X");
    const NonatomicEvent y = random_interval(exec, rng, spec, "Y");
    const EventCuts xc(ts, x), yc(ts, y);
    // Route 1 (per-x, N_X comparisons): ∀x greatest: ∩⇓Y[i] >= idx+1.
    bool route_x = true;
    for (const ProcessId i : x.node_set()) {
      if (yc.intersect_past()[i] < x.greatest_on(i).index + 1) {
        route_x = false;
        break;
      }
    }
    // Route 2 (per-y, N_Y comparisons): ∀y least: idx+1 >= ∪⇑X[j].
    bool route_y = true;
    for (const ProcessId j : y.node_set()) {
      if (y.least_on(j).index + 1 < xc.union_future()[j]) {
        route_y = false;
        break;
      }
    }
    ASSERT_EQ(route_x, route_y);
    ASSERT_EQ(route_x, evaluate_naive(Relation::R1, x, y, ts, Semantics::Weak));
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ProbeSidePropertyTest,
                         ::testing::ValuesIn(property_sweep()),
                         testing::sweep_case_name);

}  // namespace
}  // namespace syncon
