// The registered cross-layer conformance properties hold on generated
// cases, and the driver that sweeps them is deterministic by seed.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "check/driver.hpp"
#include "check/generators.hpp"
#include "check/properties.hpp"
#include "helpers.hpp"
#include "support/contracts.hpp"

namespace syncon::check {
namespace {

TEST(CheckPropertiesTest, RegistryExposesAllTwelveProperties) {
  EXPECT_EQ(all_properties().size(), 12u);
  for (const PropertyInfo& info : all_properties()) {
    EXPECT_EQ(find_property(info.name), &info);
    EXPECT_FALSE(info.description.empty());
  }
  EXPECT_EQ(find_property("no_such_property"), nullptr);
}

TEST(CheckPropertiesTest, AllPropertiesHoldOnGeneratedCases) {
  const int iters = testing::test_iters(12);
  for (int i = 0; i < iters; ++i) {
    const std::uint64_t seed = case_seed_for(7, static_cast<std::size_t>(i));
    SYNCON_SEED_TRACE(seed);
    const CheckCase c = generate_case(seed);
    for (const PropertyInfo& info : all_properties()) {
      const PropertyResult result = run_property_on_case(info, c);
      EXPECT_TRUE(result.passed)
          << info.name << " failed: " << result.message;
    }
  }
}

TEST(CheckPropertiesTest, RunPropertyConvertsExceptionsToFailures) {
  const PropertyInfo crashing{
      "crashing", "always throws",
      +[](const CheckCase&) -> PropertyResult {
        throw std::runtime_error("boom");
      }};
  const PropertyResult result =
      run_property_on_case(crashing, generate_case(1));
  EXPECT_FALSE(result.passed);
  EXPECT_NE(result.message.find("boom"), std::string::npos);
}

TEST(CheckPropertiesTest, MonitorPropertyIsVacuousWhenYInsideX) {
  // Y ⊆ X: the monitor cannot double-claim shared events, so the property
  // declares the case out of scope rather than failing.
  CheckCase c;
  c.events_per_process = {2, 1};
  c.x_members = {EventId{0, 1}, EventId{0, 2}, EventId{1, 1}};
  c.y_members = {EventId{0, 2}};
  const PropertyInfo* info = find_property("monitor_faulty_vs_clean");
  ASSERT_NE(info, nullptr);
  EXPECT_TRUE(run_property_on_case(*info, c).passed);
}

TEST(CheckPropertiesTest, DriverIsDeterministicBySeed) {
  DriverOptions options;
  options.seed = 2026;
  options.max_cases = 6;
  options.properties = {"fast_vs_naive", "timestamp_ll_forms"};
  const DriverReport a = run_conformance(options);
  const DriverReport b = run_conformance(options);
  EXPECT_EQ(a.cases_run, 6u);
  EXPECT_EQ(a.property_runs, 12u);
  EXPECT_EQ(a.cases_run, b.cases_run);
  EXPECT_EQ(a.property_runs, b.property_runs);
  EXPECT_TRUE(a.ok());
  EXPECT_TRUE(b.ok());
}

TEST(CheckPropertiesTest, DriverRejectsUnknownPropertyNames) {
  DriverOptions options;
  options.properties = {"not_a_property"};
  EXPECT_THROW(run_conformance(options), ContractViolation);
}

TEST(CheckPropertiesTest, DriverTimeBudgetTerminates) {
  DriverOptions options;
  options.seed = 5;
  options.max_cases = 0;  // unlimited — the budget is the only stop
  options.budget_seconds = 0.2;
  options.properties = {"predicate_roundtrip"};
  const DriverReport report = run_conformance(options);
  EXPECT_GE(report.cases_run, 1u);
  EXPECT_TRUE(report.ok());
}

TEST(CheckPropertiesTest, DriverStreamsProgressToLog) {
  DriverOptions options;
  options.seed = 9;
  options.max_cases = 50;  // exactly one progress line
  options.properties = {"predicate_roundtrip"};
  std::ostringstream log;
  const DriverReport clean = run_conformance(options, &log);
  EXPECT_TRUE(clean.ok());
  EXPECT_NE(log.str().find("50 cases"), std::string::npos);
  EXPECT_NE(log.str().find("50 property runs"), std::string::npos);
}

}  // namespace
}  // namespace syncon::check
