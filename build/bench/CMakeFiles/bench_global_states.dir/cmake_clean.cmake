file(REMOVE_RECURSE
  "CMakeFiles/bench_global_states.dir/bench_global_states.cpp.o"
  "CMakeFiles/bench_global_states.dir/bench_global_states.cpp.o.d"
  "bench_global_states"
  "bench_global_states.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_global_states.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
