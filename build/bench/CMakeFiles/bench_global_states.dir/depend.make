# Empty dependencies file for bench_global_states.
# This may be replaced when dependencies are built.
