file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_cuts.dir/bench_fig2_cuts.cpp.o"
  "CMakeFiles/bench_fig2_cuts.dir/bench_fig2_cuts.cpp.o.d"
  "bench_fig2_cuts"
  "bench_fig2_cuts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_cuts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
