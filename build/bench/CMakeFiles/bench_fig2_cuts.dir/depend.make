# Empty dependencies file for bench_fig2_cuts.
# This may be replaced when dependencies are built.
