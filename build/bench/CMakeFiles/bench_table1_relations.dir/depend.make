# Empty dependencies file for bench_table1_relations.
# This may be replaced when dependencies are built.
