# Empty dependencies file for bench_fig13_proxies.
# This may be replaced when dependencies are built.
