file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_proxies.dir/bench_fig13_proxies.cpp.o"
  "CMakeFiles/bench_fig13_proxies.dir/bench_fig13_proxies.cpp.o.d"
  "bench_fig13_proxies"
  "bench_fig13_proxies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_proxies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
