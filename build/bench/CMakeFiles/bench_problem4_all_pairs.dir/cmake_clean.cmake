file(REMOVE_RECURSE
  "CMakeFiles/bench_problem4_all_pairs.dir/bench_problem4_all_pairs.cpp.o"
  "CMakeFiles/bench_problem4_all_pairs.dir/bench_problem4_all_pairs.cpp.o.d"
  "bench_problem4_all_pairs"
  "bench_problem4_all_pairs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_problem4_all_pairs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
