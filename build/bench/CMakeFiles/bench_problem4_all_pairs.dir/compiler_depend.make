# Empty compiler generated dependencies file for bench_problem4_all_pairs.
# This may be replaced when dependencies are built.
