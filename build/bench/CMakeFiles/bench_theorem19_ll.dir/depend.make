# Empty dependencies file for bench_theorem19_ll.
# This may be replaced when dependencies are built.
