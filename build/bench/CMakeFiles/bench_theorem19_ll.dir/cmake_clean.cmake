file(REMOVE_RECURSE
  "CMakeFiles/bench_theorem19_ll.dir/bench_theorem19_ll.cpp.o"
  "CMakeFiles/bench_theorem19_ll.dir/bench_theorem19_ll.cpp.o.d"
  "bench_theorem19_ll"
  "bench_theorem19_ll.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_theorem19_ll.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
