file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_cut_timestamps.dir/bench_table2_cut_timestamps.cpp.o"
  "CMakeFiles/bench_table2_cut_timestamps.dir/bench_table2_cut_timestamps.cpp.o.d"
  "bench_table2_cut_timestamps"
  "bench_table2_cut_timestamps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_cut_timestamps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
