# Empty compiler generated dependencies file for bench_table2_cut_timestamps.
# This may be replaced when dependencies are built.
