file(REMOVE_RECURSE
  "CMakeFiles/bench_online_monitor.dir/bench_online_monitor.cpp.o"
  "CMakeFiles/bench_online_monitor.dir/bench_online_monitor.cpp.o.d"
  "bench_online_monitor"
  "bench_online_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_online_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
