# Empty compiler generated dependencies file for bench_online_monitor.
# This may be replaced when dependencies are built.
