file(REMOVE_RECURSE
  "CMakeFiles/bench_theorem20_linear.dir/bench_theorem20_linear.cpp.o"
  "CMakeFiles/bench_theorem20_linear.dir/bench_theorem20_linear.cpp.o.d"
  "bench_theorem20_linear"
  "bench_theorem20_linear.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_theorem20_linear.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
