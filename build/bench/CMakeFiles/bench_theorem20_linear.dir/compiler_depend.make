# Empty compiler generated dependencies file for bench_theorem20_linear.
# This may be replaced when dependencies are built.
