# Empty dependencies file for bench_des_pipeline.
# This may be replaced when dependencies are built.
