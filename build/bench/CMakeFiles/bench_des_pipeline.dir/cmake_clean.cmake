file(REMOVE_RECURSE
  "CMakeFiles/bench_des_pipeline.dir/bench_des_pipeline.cpp.o"
  "CMakeFiles/bench_des_pipeline.dir/bench_des_pipeline.cpp.o.d"
  "bench_des_pipeline"
  "bench_des_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_des_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
