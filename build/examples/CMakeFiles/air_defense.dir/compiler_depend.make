# Empty compiler generated dependencies file for air_defense.
# This may be replaced when dependencies are built.
