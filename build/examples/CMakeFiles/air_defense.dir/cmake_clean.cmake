file(REMOVE_RECURSE
  "CMakeFiles/air_defense.dir/air_defense.cpp.o"
  "CMakeFiles/air_defense.dir/air_defense.cpp.o.d"
  "air_defense"
  "air_defense.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/air_defense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
