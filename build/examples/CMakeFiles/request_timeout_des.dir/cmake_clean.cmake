file(REMOVE_RECURSE
  "CMakeFiles/request_timeout_des.dir/request_timeout_des.cpp.o"
  "CMakeFiles/request_timeout_des.dir/request_timeout_des.cpp.o.d"
  "request_timeout_des"
  "request_timeout_des.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/request_timeout_des.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
