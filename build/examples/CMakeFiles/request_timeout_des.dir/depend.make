# Empty dependencies file for request_timeout_des.
# This may be replaced when dependencies are built.
