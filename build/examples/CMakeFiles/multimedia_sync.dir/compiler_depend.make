# Empty compiler generated dependencies file for multimedia_sync.
# This may be replaced when dependencies are built.
