file(REMOVE_RECURSE
  "CMakeFiles/multimedia_sync.dir/multimedia_sync.cpp.o"
  "CMakeFiles/multimedia_sync.dir/multimedia_sync.cpp.o.d"
  "multimedia_sync"
  "multimedia_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multimedia_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
