file(REMOVE_RECURSE
  "CMakeFiles/relations_equivalence_test.dir/relations_equivalence_test.cpp.o"
  "CMakeFiles/relations_equivalence_test.dir/relations_equivalence_test.cpp.o.d"
  "relations_equivalence_test"
  "relations_equivalence_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relations_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
