# Empty compiler generated dependencies file for air_defense_des_test.
# This may be replaced when dependencies are built.
