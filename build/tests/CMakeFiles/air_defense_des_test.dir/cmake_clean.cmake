file(REMOVE_RECURSE
  "CMakeFiles/air_defense_des_test.dir/air_defense_des_test.cpp.o"
  "CMakeFiles/air_defense_des_test.dir/air_defense_des_test.cpp.o.d"
  "air_defense_des_test"
  "air_defense_des_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/air_defense_des_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
