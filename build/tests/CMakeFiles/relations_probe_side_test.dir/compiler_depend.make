# Empty compiler generated dependencies file for relations_probe_side_test.
# This may be replaced when dependencies are built.
