file(REMOVE_RECURSE
  "CMakeFiles/relations_probe_side_test.dir/relations_probe_side_test.cpp.o"
  "CMakeFiles/relations_probe_side_test.dir/relations_probe_side_test.cpp.o.d"
  "relations_probe_side_test"
  "relations_probe_side_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relations_probe_side_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
