# Empty dependencies file for global_condition_test.
# This may be replaced when dependencies are built.
