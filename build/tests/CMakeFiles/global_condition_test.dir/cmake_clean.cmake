file(REMOVE_RECURSE
  "CMakeFiles/global_condition_test.dir/global_condition_test.cpp.o"
  "CMakeFiles/global_condition_test.dir/global_condition_test.cpp.o.d"
  "global_condition_test"
  "global_condition_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/global_condition_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
