file(REMOVE_RECURSE
  "CMakeFiles/ll_relation_test.dir/ll_relation_test.cpp.o"
  "CMakeFiles/ll_relation_test.dir/ll_relation_test.cpp.o.d"
  "ll_relation_test"
  "ll_relation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ll_relation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
