# Empty compiler generated dependencies file for ll_relation_test.
# This may be replaced when dependencies are built.
