# Empty dependencies file for cut_test.
# This may be replaced when dependencies are built.
