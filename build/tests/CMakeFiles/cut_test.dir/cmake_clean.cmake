file(REMOVE_RECURSE
  "CMakeFiles/cut_test.dir/cut_test.cpp.o"
  "CMakeFiles/cut_test.dir/cut_test.cpp.o.d"
  "cut_test"
  "cut_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cut_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
