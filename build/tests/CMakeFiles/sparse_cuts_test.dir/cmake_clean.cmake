file(REMOVE_RECURSE
  "CMakeFiles/sparse_cuts_test.dir/sparse_cuts_test.cpp.o"
  "CMakeFiles/sparse_cuts_test.dir/sparse_cuts_test.cpp.o.d"
  "sparse_cuts_test"
  "sparse_cuts_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparse_cuts_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
