# Empty dependencies file for sparse_cuts_test.
# This may be replaced when dependencies are built.
