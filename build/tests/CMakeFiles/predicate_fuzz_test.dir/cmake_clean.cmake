file(REMOVE_RECURSE
  "CMakeFiles/predicate_fuzz_test.dir/predicate_fuzz_test.cpp.o"
  "CMakeFiles/predicate_fuzz_test.dir/predicate_fuzz_test.cpp.o.d"
  "predicate_fuzz_test"
  "predicate_fuzz_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predicate_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
