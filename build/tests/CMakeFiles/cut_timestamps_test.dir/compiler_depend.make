# Empty compiler generated dependencies file for cut_timestamps_test.
# This may be replaced when dependencies are built.
