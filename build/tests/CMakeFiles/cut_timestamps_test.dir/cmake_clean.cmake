file(REMOVE_RECURSE
  "CMakeFiles/cut_timestamps_test.dir/cut_timestamps_test.cpp.o"
  "CMakeFiles/cut_timestamps_test.dir/cut_timestamps_test.cpp.o.d"
  "cut_timestamps_test"
  "cut_timestamps_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cut_timestamps_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
