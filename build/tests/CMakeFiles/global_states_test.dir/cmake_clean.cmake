file(REMOVE_RECURSE
  "CMakeFiles/global_states_test.dir/global_states_test.cpp.o"
  "CMakeFiles/global_states_test.dir/global_states_test.cpp.o.d"
  "global_states_test"
  "global_states_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/global_states_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
