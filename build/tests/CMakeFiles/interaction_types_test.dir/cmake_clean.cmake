file(REMOVE_RECURSE
  "CMakeFiles/interaction_types_test.dir/interaction_types_test.cpp.o"
  "CMakeFiles/interaction_types_test.dir/interaction_types_test.cpp.o.d"
  "interaction_types_test"
  "interaction_types_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interaction_types_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
