# Empty dependencies file for interaction_types_test.
# This may be replaced when dependencies are built.
