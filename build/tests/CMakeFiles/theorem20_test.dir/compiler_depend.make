# Empty compiler generated dependencies file for theorem20_test.
# This may be replaced when dependencies are built.
