file(REMOVE_RECURSE
  "CMakeFiles/theorem20_test.dir/theorem20_test.cpp.o"
  "CMakeFiles/theorem20_test.dir/theorem20_test.cpp.o.d"
  "theorem20_test"
  "theorem20_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/theorem20_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
