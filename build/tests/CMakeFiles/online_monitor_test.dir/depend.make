# Empty dependencies file for online_monitor_test.
# This may be replaced when dependencies are built.
