file(REMOVE_RECURSE
  "CMakeFiles/scalar_metrics_test.dir/scalar_metrics_test.cpp.o"
  "CMakeFiles/scalar_metrics_test.dir/scalar_metrics_test.cpp.o.d"
  "scalar_metrics_test"
  "scalar_metrics_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scalar_metrics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
