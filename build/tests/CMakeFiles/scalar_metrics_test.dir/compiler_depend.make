# Empty compiler generated dependencies file for scalar_metrics_test.
# This may be replaced when dependencies are built.
