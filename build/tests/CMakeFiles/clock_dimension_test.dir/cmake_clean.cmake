file(REMOVE_RECURSE
  "CMakeFiles/clock_dimension_test.dir/clock_dimension_test.cpp.o"
  "CMakeFiles/clock_dimension_test.dir/clock_dimension_test.cpp.o.d"
  "clock_dimension_test"
  "clock_dimension_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clock_dimension_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
