# Empty compiler generated dependencies file for clock_dimension_test.
# This may be replaced when dependencies are built.
