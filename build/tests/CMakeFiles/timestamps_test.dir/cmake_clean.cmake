file(REMOVE_RECURSE
  "CMakeFiles/timestamps_test.dir/timestamps_test.cpp.o"
  "CMakeFiles/timestamps_test.dir/timestamps_test.cpp.o.d"
  "timestamps_test"
  "timestamps_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timestamps_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
