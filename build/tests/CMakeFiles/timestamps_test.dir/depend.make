# Empty dependencies file for timestamps_test.
# This may be replaced when dependencies are built.
