
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/interval_test.cpp" "tests/CMakeFiles/interval_test.dir/interval_test.cpp.o" "gcc" "tests/CMakeFiles/interval_test.dir/interval_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/monitor/CMakeFiles/syncon_monitor.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/syncon_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/online/CMakeFiles/syncon_online.dir/DependInfo.cmake"
  "/root/repo/build/src/timing/CMakeFiles/syncon_timing.dir/DependInfo.cmake"
  "/root/repo/build/src/relations/CMakeFiles/syncon_relations.dir/DependInfo.cmake"
  "/root/repo/build/src/nonatomic/CMakeFiles/syncon_nonatomic.dir/DependInfo.cmake"
  "/root/repo/build/src/cuts/CMakeFiles/syncon_cuts.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/syncon_model.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/syncon_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
