# Empty dependencies file for syncon_timing.
# This may be replaced when dependencies are built.
