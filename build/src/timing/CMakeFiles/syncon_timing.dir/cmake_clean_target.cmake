file(REMOVE_RECURSE
  "libsyncon_timing.a"
)
