file(REMOVE_RECURSE
  "CMakeFiles/syncon_timing.dir/physical_time.cpp.o"
  "CMakeFiles/syncon_timing.dir/physical_time.cpp.o.d"
  "CMakeFiles/syncon_timing.dir/timing_constraints.cpp.o"
  "CMakeFiles/syncon_timing.dir/timing_constraints.cpp.o.d"
  "libsyncon_timing.a"
  "libsyncon_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/syncon_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
