file(REMOVE_RECURSE
  "libsyncon_cuts.a"
)
