file(REMOVE_RECURSE
  "CMakeFiles/syncon_cuts.dir/cut.cpp.o"
  "CMakeFiles/syncon_cuts.dir/cut.cpp.o.d"
  "CMakeFiles/syncon_cuts.dir/global_states.cpp.o"
  "CMakeFiles/syncon_cuts.dir/global_states.cpp.o.d"
  "CMakeFiles/syncon_cuts.dir/ll_relation.cpp.o"
  "CMakeFiles/syncon_cuts.dir/ll_relation.cpp.o.d"
  "CMakeFiles/syncon_cuts.dir/special_cuts.cpp.o"
  "CMakeFiles/syncon_cuts.dir/special_cuts.cpp.o.d"
  "libsyncon_cuts.a"
  "libsyncon_cuts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/syncon_cuts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
