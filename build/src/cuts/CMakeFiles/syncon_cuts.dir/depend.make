# Empty dependencies file for syncon_cuts.
# This may be replaced when dependencies are built.
