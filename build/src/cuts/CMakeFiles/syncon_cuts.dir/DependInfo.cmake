
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cuts/cut.cpp" "src/cuts/CMakeFiles/syncon_cuts.dir/cut.cpp.o" "gcc" "src/cuts/CMakeFiles/syncon_cuts.dir/cut.cpp.o.d"
  "/root/repo/src/cuts/global_states.cpp" "src/cuts/CMakeFiles/syncon_cuts.dir/global_states.cpp.o" "gcc" "src/cuts/CMakeFiles/syncon_cuts.dir/global_states.cpp.o.d"
  "/root/repo/src/cuts/ll_relation.cpp" "src/cuts/CMakeFiles/syncon_cuts.dir/ll_relation.cpp.o" "gcc" "src/cuts/CMakeFiles/syncon_cuts.dir/ll_relation.cpp.o.d"
  "/root/repo/src/cuts/special_cuts.cpp" "src/cuts/CMakeFiles/syncon_cuts.dir/special_cuts.cpp.o" "gcc" "src/cuts/CMakeFiles/syncon_cuts.dir/special_cuts.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/syncon_model.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/syncon_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
