
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/air_defense_des.cpp" "src/sim/CMakeFiles/syncon_sim.dir/air_defense_des.cpp.o" "gcc" "src/sim/CMakeFiles/syncon_sim.dir/air_defense_des.cpp.o.d"
  "/root/repo/src/sim/des.cpp" "src/sim/CMakeFiles/syncon_sim.dir/des.cpp.o" "gcc" "src/sim/CMakeFiles/syncon_sim.dir/des.cpp.o.d"
  "/root/repo/src/sim/interval_picker.cpp" "src/sim/CMakeFiles/syncon_sim.dir/interval_picker.cpp.o" "gcc" "src/sim/CMakeFiles/syncon_sim.dir/interval_picker.cpp.o.d"
  "/root/repo/src/sim/metrics.cpp" "src/sim/CMakeFiles/syncon_sim.dir/metrics.cpp.o" "gcc" "src/sim/CMakeFiles/syncon_sim.dir/metrics.cpp.o.d"
  "/root/repo/src/sim/scenarios.cpp" "src/sim/CMakeFiles/syncon_sim.dir/scenarios.cpp.o" "gcc" "src/sim/CMakeFiles/syncon_sim.dir/scenarios.cpp.o.d"
  "/root/repo/src/sim/workload.cpp" "src/sim/CMakeFiles/syncon_sim.dir/workload.cpp.o" "gcc" "src/sim/CMakeFiles/syncon_sim.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nonatomic/CMakeFiles/syncon_nonatomic.dir/DependInfo.cmake"
  "/root/repo/build/src/timing/CMakeFiles/syncon_timing.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/syncon_support.dir/DependInfo.cmake"
  "/root/repo/build/src/cuts/CMakeFiles/syncon_cuts.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/syncon_model.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
