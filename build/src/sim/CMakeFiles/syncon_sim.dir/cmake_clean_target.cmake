file(REMOVE_RECURSE
  "libsyncon_sim.a"
)
