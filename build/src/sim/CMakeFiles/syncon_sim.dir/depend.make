# Empty dependencies file for syncon_sim.
# This may be replaced when dependencies are built.
