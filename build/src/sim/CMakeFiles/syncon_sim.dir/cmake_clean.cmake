file(REMOVE_RECURSE
  "CMakeFiles/syncon_sim.dir/air_defense_des.cpp.o"
  "CMakeFiles/syncon_sim.dir/air_defense_des.cpp.o.d"
  "CMakeFiles/syncon_sim.dir/des.cpp.o"
  "CMakeFiles/syncon_sim.dir/des.cpp.o.d"
  "CMakeFiles/syncon_sim.dir/interval_picker.cpp.o"
  "CMakeFiles/syncon_sim.dir/interval_picker.cpp.o.d"
  "CMakeFiles/syncon_sim.dir/metrics.cpp.o"
  "CMakeFiles/syncon_sim.dir/metrics.cpp.o.d"
  "CMakeFiles/syncon_sim.dir/scenarios.cpp.o"
  "CMakeFiles/syncon_sim.dir/scenarios.cpp.o.d"
  "CMakeFiles/syncon_sim.dir/workload.cpp.o"
  "CMakeFiles/syncon_sim.dir/workload.cpp.o.d"
  "libsyncon_sim.a"
  "libsyncon_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/syncon_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
