file(REMOVE_RECURSE
  "CMakeFiles/syncon_monitor.dir/global_condition.cpp.o"
  "CMakeFiles/syncon_monitor.dir/global_condition.cpp.o.d"
  "CMakeFiles/syncon_monitor.dir/monitor.cpp.o"
  "CMakeFiles/syncon_monitor.dir/monitor.cpp.o.d"
  "CMakeFiles/syncon_monitor.dir/mutex_checker.cpp.o"
  "CMakeFiles/syncon_monitor.dir/mutex_checker.cpp.o.d"
  "CMakeFiles/syncon_monitor.dir/predicate.cpp.o"
  "CMakeFiles/syncon_monitor.dir/predicate.cpp.o.d"
  "CMakeFiles/syncon_monitor.dir/report.cpp.o"
  "CMakeFiles/syncon_monitor.dir/report.cpp.o.d"
  "CMakeFiles/syncon_monitor.dir/trace_io.cpp.o"
  "CMakeFiles/syncon_monitor.dir/trace_io.cpp.o.d"
  "libsyncon_monitor.a"
  "libsyncon_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/syncon_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
