# Empty dependencies file for syncon_monitor.
# This may be replaced when dependencies are built.
