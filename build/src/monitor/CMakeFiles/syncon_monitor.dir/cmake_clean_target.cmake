file(REMOVE_RECURSE
  "libsyncon_monitor.a"
)
