# Empty compiler generated dependencies file for syncon_relations.
# This may be replaced when dependencies are built.
