file(REMOVE_RECURSE
  "CMakeFiles/syncon_relations.dir/composition.cpp.o"
  "CMakeFiles/syncon_relations.dir/composition.cpp.o.d"
  "CMakeFiles/syncon_relations.dir/evaluator.cpp.o"
  "CMakeFiles/syncon_relations.dir/evaluator.cpp.o.d"
  "CMakeFiles/syncon_relations.dir/fast.cpp.o"
  "CMakeFiles/syncon_relations.dir/fast.cpp.o.d"
  "CMakeFiles/syncon_relations.dir/hierarchy.cpp.o"
  "CMakeFiles/syncon_relations.dir/hierarchy.cpp.o.d"
  "CMakeFiles/syncon_relations.dir/inference.cpp.o"
  "CMakeFiles/syncon_relations.dir/inference.cpp.o.d"
  "CMakeFiles/syncon_relations.dir/interaction_types.cpp.o"
  "CMakeFiles/syncon_relations.dir/interaction_types.cpp.o.d"
  "CMakeFiles/syncon_relations.dir/naive.cpp.o"
  "CMakeFiles/syncon_relations.dir/naive.cpp.o.d"
  "CMakeFiles/syncon_relations.dir/relation.cpp.o"
  "CMakeFiles/syncon_relations.dir/relation.cpp.o.d"
  "CMakeFiles/syncon_relations.dir/sparse_cuts.cpp.o"
  "CMakeFiles/syncon_relations.dir/sparse_cuts.cpp.o.d"
  "libsyncon_relations.a"
  "libsyncon_relations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/syncon_relations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
