file(REMOVE_RECURSE
  "libsyncon_relations.a"
)
