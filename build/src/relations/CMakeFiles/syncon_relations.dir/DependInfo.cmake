
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/relations/composition.cpp" "src/relations/CMakeFiles/syncon_relations.dir/composition.cpp.o" "gcc" "src/relations/CMakeFiles/syncon_relations.dir/composition.cpp.o.d"
  "/root/repo/src/relations/evaluator.cpp" "src/relations/CMakeFiles/syncon_relations.dir/evaluator.cpp.o" "gcc" "src/relations/CMakeFiles/syncon_relations.dir/evaluator.cpp.o.d"
  "/root/repo/src/relations/fast.cpp" "src/relations/CMakeFiles/syncon_relations.dir/fast.cpp.o" "gcc" "src/relations/CMakeFiles/syncon_relations.dir/fast.cpp.o.d"
  "/root/repo/src/relations/hierarchy.cpp" "src/relations/CMakeFiles/syncon_relations.dir/hierarchy.cpp.o" "gcc" "src/relations/CMakeFiles/syncon_relations.dir/hierarchy.cpp.o.d"
  "/root/repo/src/relations/inference.cpp" "src/relations/CMakeFiles/syncon_relations.dir/inference.cpp.o" "gcc" "src/relations/CMakeFiles/syncon_relations.dir/inference.cpp.o.d"
  "/root/repo/src/relations/interaction_types.cpp" "src/relations/CMakeFiles/syncon_relations.dir/interaction_types.cpp.o" "gcc" "src/relations/CMakeFiles/syncon_relations.dir/interaction_types.cpp.o.d"
  "/root/repo/src/relations/naive.cpp" "src/relations/CMakeFiles/syncon_relations.dir/naive.cpp.o" "gcc" "src/relations/CMakeFiles/syncon_relations.dir/naive.cpp.o.d"
  "/root/repo/src/relations/relation.cpp" "src/relations/CMakeFiles/syncon_relations.dir/relation.cpp.o" "gcc" "src/relations/CMakeFiles/syncon_relations.dir/relation.cpp.o.d"
  "/root/repo/src/relations/sparse_cuts.cpp" "src/relations/CMakeFiles/syncon_relations.dir/sparse_cuts.cpp.o" "gcc" "src/relations/CMakeFiles/syncon_relations.dir/sparse_cuts.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nonatomic/CMakeFiles/syncon_nonatomic.dir/DependInfo.cmake"
  "/root/repo/build/src/cuts/CMakeFiles/syncon_cuts.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/syncon_model.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/syncon_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
