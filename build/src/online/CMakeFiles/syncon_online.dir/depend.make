# Empty dependencies file for syncon_online.
# This may be replaced when dependencies are built.
