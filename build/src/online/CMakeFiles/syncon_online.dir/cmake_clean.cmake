file(REMOVE_RECURSE
  "CMakeFiles/syncon_online.dir/interval_tracker.cpp.o"
  "CMakeFiles/syncon_online.dir/interval_tracker.cpp.o.d"
  "CMakeFiles/syncon_online.dir/online_evaluator.cpp.o"
  "CMakeFiles/syncon_online.dir/online_evaluator.cpp.o.d"
  "CMakeFiles/syncon_online.dir/online_monitor.cpp.o"
  "CMakeFiles/syncon_online.dir/online_monitor.cpp.o.d"
  "CMakeFiles/syncon_online.dir/online_system.cpp.o"
  "CMakeFiles/syncon_online.dir/online_system.cpp.o.d"
  "libsyncon_online.a"
  "libsyncon_online.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/syncon_online.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
