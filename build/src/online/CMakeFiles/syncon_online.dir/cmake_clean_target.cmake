file(REMOVE_RECURSE
  "libsyncon_online.a"
)
