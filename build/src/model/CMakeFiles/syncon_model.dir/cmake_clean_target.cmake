file(REMOVE_RECURSE
  "libsyncon_model.a"
)
