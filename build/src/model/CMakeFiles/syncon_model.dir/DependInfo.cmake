
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/execution.cpp" "src/model/CMakeFiles/syncon_model.dir/execution.cpp.o" "gcc" "src/model/CMakeFiles/syncon_model.dir/execution.cpp.o.d"
  "/root/repo/src/model/reachability.cpp" "src/model/CMakeFiles/syncon_model.dir/reachability.cpp.o" "gcc" "src/model/CMakeFiles/syncon_model.dir/reachability.cpp.o.d"
  "/root/repo/src/model/scalar_clock.cpp" "src/model/CMakeFiles/syncon_model.dir/scalar_clock.cpp.o" "gcc" "src/model/CMakeFiles/syncon_model.dir/scalar_clock.cpp.o.d"
  "/root/repo/src/model/timestamps.cpp" "src/model/CMakeFiles/syncon_model.dir/timestamps.cpp.o" "gcc" "src/model/CMakeFiles/syncon_model.dir/timestamps.cpp.o.d"
  "/root/repo/src/model/vector_clock.cpp" "src/model/CMakeFiles/syncon_model.dir/vector_clock.cpp.o" "gcc" "src/model/CMakeFiles/syncon_model.dir/vector_clock.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/syncon_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
