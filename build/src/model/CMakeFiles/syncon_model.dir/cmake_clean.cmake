file(REMOVE_RECURSE
  "CMakeFiles/syncon_model.dir/execution.cpp.o"
  "CMakeFiles/syncon_model.dir/execution.cpp.o.d"
  "CMakeFiles/syncon_model.dir/reachability.cpp.o"
  "CMakeFiles/syncon_model.dir/reachability.cpp.o.d"
  "CMakeFiles/syncon_model.dir/scalar_clock.cpp.o"
  "CMakeFiles/syncon_model.dir/scalar_clock.cpp.o.d"
  "CMakeFiles/syncon_model.dir/timestamps.cpp.o"
  "CMakeFiles/syncon_model.dir/timestamps.cpp.o.d"
  "CMakeFiles/syncon_model.dir/vector_clock.cpp.o"
  "CMakeFiles/syncon_model.dir/vector_clock.cpp.o.d"
  "libsyncon_model.a"
  "libsyncon_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/syncon_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
