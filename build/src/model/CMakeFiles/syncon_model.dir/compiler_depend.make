# Empty compiler generated dependencies file for syncon_model.
# This may be replaced when dependencies are built.
