# Empty compiler generated dependencies file for syncon_support.
# This may be replaced when dependencies are built.
