file(REMOVE_RECURSE
  "CMakeFiles/syncon_support.dir/cli.cpp.o"
  "CMakeFiles/syncon_support.dir/cli.cpp.o.d"
  "CMakeFiles/syncon_support.dir/contracts.cpp.o"
  "CMakeFiles/syncon_support.dir/contracts.cpp.o.d"
  "CMakeFiles/syncon_support.dir/rng.cpp.o"
  "CMakeFiles/syncon_support.dir/rng.cpp.o.d"
  "CMakeFiles/syncon_support.dir/stats.cpp.o"
  "CMakeFiles/syncon_support.dir/stats.cpp.o.d"
  "CMakeFiles/syncon_support.dir/table.cpp.o"
  "CMakeFiles/syncon_support.dir/table.cpp.o.d"
  "libsyncon_support.a"
  "libsyncon_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/syncon_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
