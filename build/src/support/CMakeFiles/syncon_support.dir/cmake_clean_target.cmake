file(REMOVE_RECURSE
  "libsyncon_support.a"
)
