file(REMOVE_RECURSE
  "libsyncon_nonatomic.a"
)
