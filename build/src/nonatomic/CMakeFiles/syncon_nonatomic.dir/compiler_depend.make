# Empty compiler generated dependencies file for syncon_nonatomic.
# This may be replaced when dependencies are built.
