
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nonatomic/cut_timestamps.cpp" "src/nonatomic/CMakeFiles/syncon_nonatomic.dir/cut_timestamps.cpp.o" "gcc" "src/nonatomic/CMakeFiles/syncon_nonatomic.dir/cut_timestamps.cpp.o.d"
  "/root/repo/src/nonatomic/interval.cpp" "src/nonatomic/CMakeFiles/syncon_nonatomic.dir/interval.cpp.o" "gcc" "src/nonatomic/CMakeFiles/syncon_nonatomic.dir/interval.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cuts/CMakeFiles/syncon_cuts.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/syncon_model.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/syncon_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
