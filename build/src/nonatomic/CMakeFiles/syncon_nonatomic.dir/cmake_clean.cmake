file(REMOVE_RECURSE
  "CMakeFiles/syncon_nonatomic.dir/cut_timestamps.cpp.o"
  "CMakeFiles/syncon_nonatomic.dir/cut_timestamps.cpp.o.d"
  "CMakeFiles/syncon_nonatomic.dir/interval.cpp.o"
  "CMakeFiles/syncon_nonatomic.dir/interval.cpp.o.d"
  "libsyncon_nonatomic.a"
  "libsyncon_nonatomic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/syncon_nonatomic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
