// syncon_monitord — the sharded multi-tenant monitoring daemon
// (DESIGN.md §3.15).
//
// Hosts N scripted tenant sessions behind the tenant wire codec, shards
// them across the process ThreadPool, and drives them with the service
// load generator: bounded ingress queues with retry-on-backpressure, an
// optional global memory budget compacting the laggiest tenants first,
// and per-tenant verdict-identity checking against each tenant's
// standalone reference run. Metrics are exported on the standard scrape
// endpoint (GET /metrics, /healthz).
//
//   # 10k-tenant faulty soak, 8 shards, 512k-event budget, with scraping
//   syncon_monitord --tenants=10000 --shards=8 --memory-budget=524288
//       --report-drop=0.15 --report-dup=0.1 --report-reorder=0.2
//       --port=9465 --stats-json=service.json
//
// Exit status: 0 when every tenant's daemon-side Definite verdict log is
// bit-identical to its reference, 1 otherwise.
#include <sys/resource.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>

#include "obs/metrics.hpp"
#include "obs/serve.hpp"
#include "service/daemon.hpp"
#include "service/load.hpp"
#include "support/cli.hpp"
#include "support/thread_pool.hpp"

using namespace syncon;

namespace {

/// Peak resident set size in KiB (ru_maxrss is KiB on Linux).
long peak_rss_kib() {
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  return usage.ru_maxrss;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("syncon_monitord",
                "sharded multi-tenant monitoring daemon: scripted tenant "
                "load through the wire codec with verdict-identity checks");
  cli.add_option("tenants", "1000", "total tenant sessions to run");
  cli.add_option("window", "64", "tenants in flight at once");
  cli.add_option("batch", "8", "frames submitted per tenant per round");
  cli.add_option("shards", "8", "session shards (tenant_id % shards)");
  cli.add_option("queue-capacity", "1024", "frames per shard ingress queue");
  cli.add_option("memory-budget", "0",
                 "global live-log event budget (0 = unbounded); enforced by "
                 "compacting the laggiest tenants at their watermark pins");
  cli.add_option("processes", "3", "processes per tenant ring");
  cli.add_option("cycles", "18", "tenant workload cycles");
  cli.add_option("action-every", "4", "open a tracked pair every N cycles");
  cli.add_option("recover-every", "8", "checkpoint + resync every N cycles");
  cli.add_option("report-drop", "0", "report-feed drop probability");
  cli.add_option("report-dup", "0", "report-feed duplicate probability");
  cli.add_option("report-reorder", "0", "report-feed reorder probability");
  cli.add_option("seed", "1", "master seed (per-tenant seeds derive from it)");
  cli.add_option("port", "0",
                 "serve /metrics on 127.0.0.1:port (0 = ephemeral)");
  cli.add_option("serve-every", "16",
                 "drain pending scrapes + publish gauges every N rounds");
  cli.add_option("stats-json", "",
                 "write run statistics (identity, p99 ingest latency, peak "
                 "RSS, reclaimed events) as JSON here");
  cli.add_flag("keep-sessions",
               "retain finished sessions instead of releasing them (bounds "
               "checking only; large runs will hold every live log)");
  cli.add_flag("no-serve", "skip the scrape endpoint entirely");
  if (!cli.parse(argc, argv)) return 1;

  obs::set_enabled(true);

  service::DaemonOptions daemon_options;
  daemon_options.shards = cli.get_uint("shards");
  daemon_options.queue_capacity = cli.get_uint("queue-capacity");
  daemon_options.memory_budget_events = cli.get_uint("memory-budget");

  service::ServiceLoadConfig load;
  load.tenants = cli.get_uint("tenants");
  load.window = cli.get_uint("window");
  load.batch = cli.get_uint("batch");
  load.seed = cli.get_uint("seed");
  load.release_finished = !cli.get_flag("keep-sessions");
  load.workload.processes = cli.get_uint("processes");
  load.workload.cycles = cli.get_uint("cycles");
  load.workload.action_every = cli.get_uint("action-every");
  load.workload.recover_every = cli.get_uint("recover-every");
  load.workload.report_link.drop_probability = cli.get_double("report-drop");
  load.workload.report_link.duplicate_probability =
      cli.get_double("report-dup");
  load.workload.report_link.reorder_probability =
      cli.get_double("report-reorder");
  if (load.workload.report_link.drop_probability > 0 ||
      load.workload.report_link.reorder_probability > 0) {
    load.workload.report_link.min_delay = 1;
    load.workload.report_link.max_delay = 24;
  }

  ThreadPool& pool = ThreadPool::shared();
  service::MonitorDaemon daemon(daemon_options, pool);

  obs::ScrapeServer::Options server_options;
  server_options.port = static_cast<std::uint16_t>(cli.get_uint("port"));
  server_options.run_label = "syncon_monitord";
  std::unique_ptr<obs::ScrapeServer> server;
  if (!cli.get_flag("no-serve")) {
    server = std::make_unique<obs::ScrapeServer>(server_options);
    if (server->ok()) {
      std::printf("serving on http://127.0.0.1:%u (/metrics /healthz)\n",
                  server->port());
    } else {
      std::fprintf(stderr, "warning: scrape endpoint unavailable\n");
      server.reset();
    }
  }

  const std::uint64_t serve_every =
      std::max<std::uint64_t>(1, cli.get_uint("serve-every"));
  load.on_round = [&](std::uint64_t round) {
    if (round % serve_every != 0) return;
    daemon.publish_metrics();
    if (server) server->serve_pending();
  };

  const service::ServiceLoadResult result =
      service::run_service_load(load, daemon);
  daemon.publish_metrics();
  if (server) server->serve_pending();

  const long rss_kib = peak_rss_kib();
  obs::MetricRegistry::global()
      .gauge("syncon_service_peak_rss_kib")
      .set(rss_kib);

  double p99_ingest_us = 0.0;
  const auto snapshot = obs::MetricRegistry::global().snapshot();
  if (const auto* entry = snapshot.find("syncon_service_ingest_latency_us");
      entry != nullptr && entry->histogram && entry->histogram->count > 0) {
    p99_ingest_us = entry->histogram->quantile(0.99);
  }

  std::printf(
      "service: %llu tenants, %llu events, %llu frames, %llu rounds, "
      "%llu verdicts, %llu mismatches\n",
      static_cast<unsigned long long>(result.tenants_run),
      static_cast<unsigned long long>(result.total_events),
      static_cast<unsigned long long>(result.total_frames),
      static_cast<unsigned long long>(result.rounds),
      static_cast<unsigned long long>(result.verdicts_total),
      static_cast<unsigned long long>(result.identity_mismatches));
  std::printf(
      "daemon: %llu applied, %llu quarantined, %llu backpressure rejects, "
      "%zu live-log peak, %llu reclaimed (%llu compactions)\n",
      static_cast<unsigned long long>(result.daemon.frames_applied),
      static_cast<unsigned long long>(result.daemon.frames_quarantined),
      static_cast<unsigned long long>(result.daemon.rejected_submits),
      result.daemon.live_log_peak,
      static_cast<unsigned long long>(result.daemon.reclaimed_events),
      static_cast<unsigned long long>(result.daemon.compactions));
  std::printf("ingest p99: %.1f us, peak RSS: %ld KiB\n", p99_ingest_us,
              rss_kib);

  if (!cli.get("stats-json").empty()) {
    std::ofstream out(cli.get("stats-json"));
    out << "{\n"
        << "  \"tenants\": " << result.tenants_run << ",\n"
        << "  \"total_events\": " << result.total_events << ",\n"
        << "  \"total_frames\": " << result.total_frames << ",\n"
        << "  \"rounds\": " << result.rounds << ",\n"
        << "  \"verdicts\": " << result.verdicts_total << ",\n"
        << "  \"identity_mismatches\": " << result.identity_mismatches
        << ",\n"
        << "  \"frames_applied\": " << result.daemon.frames_applied << ",\n"
        << "  \"frames_quarantined\": " << result.daemon.frames_quarantined
        << ",\n"
        << "  \"backpressure_rejects\": " << result.daemon.rejected_submits
        << ",\n"
        << "  \"live_log_peak\": " << result.daemon.live_log_peak << ",\n"
        << "  \"reclaimed_events\": " << result.daemon.reclaimed_events
        << ",\n"
        << "  \"compactions\": " << result.daemon.compactions << ",\n"
        << "  \"p99_ingest_us\": " << p99_ingest_us << ",\n"
        << "  \"peak_rss_kib\": " << rss_kib << "\n"
        << "}\n";
    std::printf("wrote stats JSON to %s\n", cli.get("stats-json").c_str());
  }

  // Let in-flight pool work retire before global teardown orders race.
  pool.drain();

  if (!result.identity_ok) {
    std::fprintf(stderr, "IDENTITY FAILURE: %llu tenant(s) diverged\n",
                 static_cast<unsigned long long>(result.identity_mismatches));
    return 1;
  }
  return 0;
}
