// syncon_metricsd — the observability daemon harness (DESIGN.md §3.13).
//
// Drives a seeded (optionally faulty) soak run with full causal-observability
// capture — detection-latency waterfalls, the flight recorder, and (for
// uncompacted runs) the complete execution — while answering scrape requests
// on a localhost HTTP endpoint:
//
//   GET /metrics          Prometheus text exposition
//   GET /telemetry.json   syncon-telemetry-v1 JSON document
//   GET /flight           flight-recorder text dump
//   GET /flight.json      flight-recorder JSON dump
//   GET /healthz          liveness probe
//
// After the run it can export every artifact of the observability stack:
//
//   syncon_metricsd --cycles=2000 --report-drop=0.05 --port=9464
//       --causal-trace=trace.otlp.json --waterfalls=falls.txt
//       --flight-json=flight.json   (one command line)
//   # CI quarantine drill: poison report + automatic flight dump
//   syncon_metricsd --cycles=200 --inject-quarantine --flight-dump=dump.txt
//
// Exit status: 0 on success, 1 on a failed export or consistency check.
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "model/timestamps.hpp"
#include "obs/causal_trace.hpp"
#include "obs/export.hpp"
#include "obs/flight.hpp"
#include "obs/latency.hpp"
#include "obs/metrics.hpp"
#include "obs/serve.hpp"
#include "obs/telemetry.hpp"
#include "online/online_monitor.hpp"
#include "sim/soak.hpp"
#include "support/cli.hpp"
#include "support/thread_pool.hpp"

using namespace syncon;

int main(int argc, char** argv) {
  CliParser cli("syncon_metricsd",
                "soak-driving observability daemon: scrape endpoint + "
                "causal-trace / waterfall / flight-recorder export");
  cli.add_option("port", "0", "listen port on 127.0.0.1 (0 = ephemeral)");
  cli.add_option("cycles", "2000", "soak main-loop cycles");
  cli.add_option("processes", "4", "ring size");
  cli.add_option("seed", "1", "fault + workload seed");
  cli.add_option("action-every", "8", "open a tracked pair every N cycles");
  cli.add_option("recover-every", "32", "checkpoint + resync every N cycles");
  cli.add_option("compact-every", "0",
                 "compact at the watermark every N cycles (0 = off; causal "
                 "trace export needs the uncompacted log)");
  cli.add_option("report-drop", "0", "report-feed drop probability");
  cli.add_option("report-dup", "0", "report-feed duplicate probability");
  cli.add_option("report-reorder", "0", "report-feed reorder probability");
  cli.add_option("serve-every", "16",
                 "drain pending scrape requests every N cycles");
  cli.add_option("serve-requests", "0",
                 "after the soak, keep serving until this many further "
                 "requests have been answered (0 = exit immediately)");
  cli.add_option("causal-trace", "",
                 "write the full causal span trace (events, messages, "
                 "verdicts, flight markers) as OTLP-style JSON here");
  cli.add_option("causal-chrome", "",
                 "write the causal span trace as Chrome trace-event JSON");
  cli.add_option("waterfalls", "",
                 "write the detection-latency waterfall report here "
                 "(JSON when the name ends in .json, text otherwise)");
  cli.add_option("telemetry-json", "",
                 "write the final metrics snapshot (stage-latency "
                 "histograms with p50/p95/p99) as telemetry JSON here");
  cli.add_option("flight-text", "", "write the flight dump as text here");
  cli.add_option("flight-json", "", "write the flight dump as JSON here");
  cli.add_option("flight-dump", "",
                 "automatic flight-dump path for quarantine / recovery / "
                 "contract-failure triggers");
  cli.add_flag("inject-quarantine",
               "after the soak, feed one malformed report to a monitor to "
               "trigger quarantine + automatic flight dump");
  if (!cli.parse(argc, argv)) return 1;

  obs::set_enabled(true);
  obs::set_flight_enabled(true);
  if (!cli.get("flight-dump").empty()) {
    obs::set_flight_dump_path(cli.get("flight-dump"));
  }

  SoakConfig config;
  config.processes = cli.get_uint("processes");
  config.cycles = cli.get_uint("cycles");
  config.action_every = cli.get_uint("action-every");
  config.recover_every = cli.get_uint("recover-every");
  config.compact_every = cli.get_uint("compact-every");
  config.seed = cli.get_uint("seed");
  config.report_link.drop_probability = cli.get_double("report-drop");
  config.report_link.duplicate_probability = cli.get_double("report-dup");
  config.report_link.reorder_probability = cli.get_double("report-reorder");
  config.capture_observability = true;

  obs::ScrapeServer::Options server_options;
  server_options.port = static_cast<std::uint16_t>(cli.get_uint("port"));
  server_options.run_label = "syncon_metricsd";
  obs::ScrapeServer server(server_options);
  if (server.ok()) {
    std::printf("serving on http://127.0.0.1:%u "
                "(/metrics /telemetry.json /flight /flight.json /healthz)\n",
                server.port());
  } else {
    std::fprintf(stderr, "warning: scrape endpoint unavailable\n");
  }

  const std::uint64_t serve_every = std::max<std::uint64_t>(
      1, cli.get_uint("serve-every"));
  config.on_cycle = [&](std::uint64_t cycle) {
    if (server.ok() && cycle % serve_every == 0) server.serve_pending();
  };

  const SoakResult result = run_soak(config);
  obs::set_flight_enabled(true);  // run_soak restores the pre-run state

  std::printf(
      "soak: %llu events, %llu definite fires, %llu resync rounds, "
      "%zu waterfalls, %zu flight records\n",
      static_cast<unsigned long long>(result.executed_events),
      static_cast<unsigned long long>(result.definite_fires),
      static_cast<unsigned long long>(result.resync_rounds),
      result.waterfalls.size(), result.flight.size());

  int status = 0;

  // --- quarantine drill ------------------------------------------------------
  if (cli.get_flag("inject-quarantine")) {
    OnlineMonitor victim(config.processes);
    // Own clock component must be index + 1 (the Fidge invariant); an
    // all-zero clock is the classic corrupt frame every layer must survive.
    WireMessage poison;
    poison.source = EventId{0, 7};
    poison.clock = VectorClock(config.processes, 0);
    const bool accepted = victim.try_observe(poison);
    std::printf("inject-quarantine: report %s (quarantined %llu)\n",
                accepted ? "ACCEPTED (unexpected)" : "rejected",
                static_cast<unsigned long long>(victim.quarantined()));
    if (accepted) status = 1;
  }

  // --- artifact export -------------------------------------------------------
  if (!cli.get("causal-trace").empty() || !cli.get("causal-chrome").empty()) {
    if (!result.execution) {
      std::fprintf(stderr,
                   "causal trace export needs --compact-every=0 (the "
                   "compacted log cannot materialize its execution)\n");
      status = 1;
    } else {
      const Timestamps stamps(*result.execution);
      obs::CausalTrace trace =
          obs::build_causal_trace(*result.execution, stamps);
      obs::append_monitor_spans(trace, result.waterfalls);
      obs::append_flight_spans(trace, result.flight);
      std::string why;
      if (!obs::verify_causal_consistency(trace, *result.execution, stamps,
                                          &why)) {
        std::fprintf(stderr, "causal trace inconsistency: %s\n", why.c_str());
        status = 1;
      }
      std::printf("causal trace: %zu spans (%zu resync, %zu verdict)\n",
                  trace.spans.size(),
                  obs::count_spans_of_kind(trace, "resync"),
                  obs::count_spans_of_kind(trace, "verdict"));
      if (!cli.get("causal-trace").empty()) {
        std::ofstream out(cli.get("causal-trace"));
        obs::write_causal_otlp(out, trace);
        std::printf("wrote OTLP causal trace to %s\n",
                    cli.get("causal-trace").c_str());
      }
      if (!cli.get("causal-chrome").empty()) {
        std::ofstream out(cli.get("causal-chrome"));
        obs::write_causal_chrome_trace(out, trace);
        std::printf("wrote Chrome causal trace to %s\n",
                    cli.get("causal-chrome").c_str());
      }
    }
  }

  if (!cli.get("waterfalls").empty()) {
    const std::string path = cli.get("waterfalls");
    std::ofstream out(path);
    if (path.size() >= 5 && path.rfind(".json") == path.size() - 5) {
      obs::write_waterfalls_json(out, result.waterfalls);
    } else {
      obs::write_waterfalls(out, result.waterfalls);
    }
    std::printf("wrote %zu waterfalls to %s\n", result.waterfalls.size(),
                path.c_str());
  }
  if (!cli.get("telemetry-json").empty()) {
    std::ofstream out(cli.get("telemetry-json"));
    obs::write_json(out, obs::MetricRegistry::global().snapshot(),
                    "syncon_metricsd");
    std::printf("wrote telemetry JSON to %s\n",
                cli.get("telemetry-json").c_str());
  }
  if (!cli.get("flight-text").empty()) {
    std::ofstream out(cli.get("flight-text"));
    obs::write_flight_text(out, obs::FlightRecorder::global().dump());
    std::printf("wrote flight text to %s\n", cli.get("flight-text").c_str());
  }
  if (!cli.get("flight-json").empty()) {
    std::ofstream out(cli.get("flight-json"));
    obs::write_flight_json(out, obs::FlightRecorder::global().dump());
    std::printf("wrote flight JSON to %s\n", cli.get("flight-json").c_str());
  }

  // --- post-run serving ------------------------------------------------------
  const std::uint64_t keep_serving = cli.get_uint("serve-requests");
  if (server.ok() && keep_serving > 0) {
    std::printf("serving %llu more request(s)...\n",
                static_cast<unsigned long long>(keep_serving));
    const std::uint64_t until = server.requests_served() + keep_serving;
    while (server.requests_served() < until) {
      if (!server.serve_once(1000)) continue;
    }
  }

  // Let shared-pool work (batch evaluation spill-over) retire before static
  // destruction starts tearing down the registries it records into.
  ThreadPool::shared().drain();

  return status;
}
