// syncon_check — the cross-layer differential fuzzer.
//
// Generates random executions + nonatomic event pairs from a master seed,
// runs the registered conformance properties on each case, and
// delta-debugs every failure down to a minimal self-contained repro
// (printed as a replayable trace_io document plus the seed that made it).
//
//   syncon_check --seed 7 --cases 500          # fixed-size campaign
//   syncon_check --seed 7 --minutes 5          # time-budgeted campaign
//   syncon_check --list                        # registered properties
//   syncon_check --case-seed 123456            # replay one generated case
//   syncon_check --repro failing.trace         # replay a saved repro
//
// Exit status: 0 all properties held, 1 a failure was found, 2 usage error.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "check/driver.hpp"
#include "support/cli.hpp"

namespace {

using namespace syncon;
using namespace syncon::check;

std::vector<std::string> split_names(const std::string& csv) {
  std::vector<std::string> names;
  std::istringstream is(csv);
  std::string item;
  while (std::getline(is, item, ',')) {
    if (!item.empty()) names.push_back(item);
  }
  return names;
}

/// Shared by --case-seed and --repro: run the selected properties on one
/// case, shrink any failure, print its repro. Returns the exit status.
int run_single_case(const CheckCase& c, std::uint64_t case_seed,
                    const std::vector<std::string>& names, bool shrink) {
  std::vector<const PropertyInfo*> selected;
  if (names.empty()) {
    for (const PropertyInfo& info : all_properties()) selected.push_back(&info);
  } else {
    for (const std::string& name : names) {
      const PropertyInfo* info = find_property(name);
      if (!info) {
        std::cerr << "unknown property: " << name << "\n";
        return 2;
      }
      selected.push_back(info);
    }
  }

  int status = 0;
  for (const PropertyInfo* property : selected) {
    const PropertyResult result = run_property_on_case(*property, c);
    if (result.passed) {
      std::cout << "PASS " << property->name << "\n";
      continue;
    }
    status = 1;
    std::cout << "FAIL " << property->name << ": " << result.message << "\n";
    CheckCase minimized = c;
    if (shrink) {
      ShrinkStats stats;
      minimized = shrink_case(
          c,
          [property](const CheckCase& candidate) {
            return run_property_on_case(*property, candidate);
          },
          &stats);
      std::cout << "  shrunk to " << minimized.process_count() << " procs / "
                << minimized.total_events() << " events in "
                << stats.evaluations << " evaluations\n";
    }
    std::cout << repro_to_string(
        minimized, ReproMeta{std::string(property->name), case_seed});
  }
  return status;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("syncon_check",
                "Differential conformance fuzzer: random executions vs the "
                "library's reference semantics, with delta-debugged repros.");
  cli.add_option("seed", "1", "master seed of the campaign");
  cli.add_option("cases", "200",
                 "number of cases to generate (0 = until the time budget)");
  cli.add_option("minutes", "0",
                 "wall-clock budget in minutes (0 = no time limit)");
  cli.add_option("properties", "",
                 "comma-separated property names (default: all)");
  cli.add_option("max-failures", "1",
                 "stop after this many failures (0 = collect all)");
  cli.add_option("case-seed", "",
                 "replay ONE generated case from its case seed");
  cli.add_option("repro", "", "replay a repro file saved from a failure");
  cli.add_flag("list", "list the registered properties and exit");
  cli.add_flag("no-shrink", "report failures without minimizing them");
  cli.add_flag("exhaustive",
               "force schedule_invariance into the property set and lift "
               "its schedule budget (full enumeration under the size gate)");
  if (!cli.parse(argc, argv)) return 2;

  if (cli.get_flag("list")) {
    for (const PropertyInfo& info : all_properties()) {
      std::cout << info.name << "\n    " << info.description << "\n";
    }
    return 0;
  }

  const std::vector<std::string> names = split_names(cli.get("properties"));
  const bool shrink = !cli.get_flag("no-shrink");

  if (!cli.get("repro").empty()) {
    std::ifstream file(cli.get("repro"));
    if (!file) {
      std::cerr << "cannot open repro file: " << cli.get("repro") << "\n";
      return 2;
    }
    try {
      const Repro repro = load_repro(file);
      // The repro names its property; an explicit --properties overrides.
      std::vector<std::string> selected = names;
      if (selected.empty() && find_property(repro.meta.property)) {
        selected.push_back(repro.meta.property);
      }
      return run_single_case(repro.c, repro.meta.case_seed, selected, shrink);
    } catch (const std::exception& e) {
      std::cerr << "bad repro file: " << e.what() << "\n";
      return 2;
    }
  }

  if (!cli.get("case-seed").empty()) {
    const std::uint64_t case_seed = cli.get_uint("case-seed");
    return run_single_case(generate_case(case_seed), case_seed, names, shrink);
  }

  DriverOptions options;
  options.seed = cli.get_uint("seed");
  options.max_cases = static_cast<std::size_t>(cli.get_uint("cases"));
  options.budget_seconds = cli.get_double("minutes") * 60.0;
  options.properties = names;
  options.shrink_failures = shrink;
  options.stop_after_failures =
      static_cast<std::size_t>(cli.get_uint("max-failures"));
  options.exhaustive = cli.get_flag("exhaustive");
  if (options.max_cases == 0 && options.budget_seconds <= 0) {
    std::cerr << "--cases 0 needs a --minutes budget\n";
    return 2;
  }

  const DriverReport report = run_conformance(options, &std::cout);
  std::cout << report.cases_run << " cases, " << report.property_runs
            << " property runs, " << report.failures.size() << " failures\n";
  for (const FailureReport& failure : report.failures) {
    std::cout << "--- repro (property " << failure.property << ", replay with "
              << "--case-seed " << failure.case_seed << ") ---\n"
              << failure.repro;
  }
  return report.ok() ? 0 : 1;
}
