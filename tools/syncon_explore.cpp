// syncon_explore — exhaustive delivery-schedule exploration (DPOR).
//
// Builds a bounded universe (from the conformance generators or a saved
// repro), enumerates every inequivalent delivery schedule — one canonical
// schedule per induced happens-before poset — and runs the selected
// invariant battery on each. Any violating universe is delta-debugged down
// to a minimal replayable repro, shared with syncon_check.
//
//   syncon_explore --seed 1 --procs 4 --messages 10     # one universe
//   syncon_explore --seed 7 --cases 100                 # property sweep
//   syncon_explore --repro failing.trace                # replay a repro
//   syncon_explore --procs 4 --messages 10 --naive      # measure reduction
//
// Exit status: 0 every schedule held, 1 a violation was found, 2 usage
// error (including: no generated case matches the requested universe size).
#include <chrono>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "check/driver.hpp"
#include "explore/explorer.hpp"
#include "explore/invariants.hpp"
#include "support/cli.hpp"

namespace {

using namespace syncon;
using namespace syncon::check;

struct UniverseRun {
  explore::ExploreStats stats;
  std::uint64_t naive_schedules = 0;
  bool naive_capped = false;
  bool naive_ran = false;
  double wall_seconds = 0.0;
  std::string violation;
};

/// Explores one case's universe with the given battery. Fills `run`;
/// returns false when a schedule violated an invariant.
bool explore_case(const CheckCase& c, unsigned mask,
                  std::uint64_t max_schedules, bool parallel, bool naive,
                  UniverseRun& run) {
  const std::optional<MaterializedCase> m = materialize(c);
  if (!m) {
    run.violation = "case failed to materialize";
    return false;
  }
  const explore::Universe u = explore::universe_from_execution(*m->exec);

  explore::InvariantOptions inv;
  inv.mask = mask;
  inv.fault_seed = fingerprint(c);
  explore::ExploreOptions opt;
  opt.max_schedules = max_schedules;
  opt.parallel = parallel;

  const auto start = std::chrono::steady_clock::now();
  run.stats = explore::explore(u, opt, [&](const explore::Schedule& s) {
    const explore::ScheduleCheckResult r =
        explore::check_schedule(u, s, c.x_members, c.y_members, inv);
    if (!r.passed) {
      run.violation = r.message;
      return false;
    }
    return true;
  });
  run.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  if (naive && run.violation.empty()) {
    explore::ExploreOptions base = opt;
    base.dpor = false;
    // Unbounded naive enumeration can explode where DPOR does not; give it
    // a cap when the caller did not.
    if (base.max_schedules == 0) base.max_schedules = std::uint64_t{1} << 22;
    const explore::ExploreStats nstats =
        explore::explore(u, base, [](const explore::Schedule&) {
          return true;
        });
    run.naive_ran = true;
    run.naive_schedules = nstats.schedules_executed;
    run.naive_capped = nstats.budget_exhausted;
  }
  return run.violation.empty();
}

void print_run(const UniverseRun& run) {
  std::cout << "schedules executed " << run.stats.schedules_executed
            << ", inequivalent " << run.stats.traces_visited
            << ", prefixes pruned " << run.stats.prefixes_pruned
            << ", duplicates " << run.stats.duplicate_traces << ", dead ends "
            << run.stats.dead_ends << ", wall "
            << run.wall_seconds << "s\n";
  if (run.stats.budget_exhausted) {
    std::cout << "NOTE: schedule budget exhausted — enumeration incomplete\n";
  }
  if (run.naive_ran) {
    std::cout << "naive enumeration: " << run.naive_schedules << " schedules"
              << (run.naive_capped ? " (capped)" : "") << " -> DPOR ran "
              << run.stats.schedules_executed << "\n";
  }
}

void write_stats_json(const std::string& path, const CheckCase& c,
                      const UniverseRun& run) {
  std::ofstream os(path);
  if (!os) {
    std::cerr << "cannot write stats file: " << path << "\n";
    return;
  }
  os << "{\n"
     << "  \"procs\": " << c.process_count() << ",\n"
     << "  \"events\": " << c.total_events() << ",\n"
     << "  \"messages\": " << c.messages.size() << ",\n"
     << "  \"schedules_executed\": " << run.stats.schedules_executed << ",\n"
     << "  \"inequivalent_schedules\": " << run.stats.traces_visited << ",\n"
     << "  \"prefixes_pruned\": " << run.stats.prefixes_pruned << ",\n"
     << "  \"duplicate_traces\": " << run.stats.duplicate_traces << ",\n"
     << "  \"dead_ends\": " << run.stats.dead_ends << ",\n"
     << "  \"budget_exhausted\": "
     << (run.stats.budget_exhausted ? "true" : "false") << ",\n"
     << "  \"naive_schedules\": " << run.naive_schedules << ",\n"
     << "  \"naive_capped\": " << (run.naive_capped ? "true" : "false")
     << ",\n"
     << "  \"wall_seconds\": " << run.wall_seconds << ",\n"
     << "  \"violation\": " << (run.violation.empty() ? "false" : "true")
     << "\n}\n";
}

/// Shrinks a violating case through the schedule_invariance property (the
/// same predicate the fuzzer uses) and prints the repro. The property gate
/// is already lifted to cover the CLI universe by the caller.
void report_violation(const CheckCase& c, std::uint64_t case_seed,
                      const std::string& message, bool shrink,
                      const std::string& repro_out) {
  std::cout << "VIOLATION: " << message << "\n";
  const PropertyInfo* property = find_property("schedule_invariance");
  CheckCase minimized = c;
  if (shrink && !run_property_on_case(*property, c).passed) {
    ShrinkStats stats;
    minimized = shrink_case(
        c,
        [property](const CheckCase& candidate) {
          return run_property_on_case(*property, candidate);
        },
        &stats);
    std::cout << "shrunk to " << minimized.process_count() << " procs / "
              << minimized.total_events() << " events / "
              << minimized.messages.size() << " msgs in " << stats.evaluations
              << " evaluations\n";
  }
  const std::string repro = repro_to_string(
      minimized, ReproMeta{"schedule_invariance", case_seed});
  if (!repro_out.empty()) {
    std::ofstream os(repro_out);
    os << repro;
    std::cout << "repro written to " << repro_out << "\n";
  } else {
    std::cout << repro;
  }
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("syncon_explore",
                "DPOR delivery-schedule explorer: enumerate every "
                "inequivalent interleaving of a bounded universe and prove "
                "the invariant battery on each.");
  cli.add_option("seed", "1", "master seed (case search / sweep stream)");
  cli.add_option("procs", "4", "process count of the target universe");
  cli.add_option("events", "5", "max events per process of the universe");
  cli.add_option("messages", "10", "message count of the target universe");
  cli.add_option("cases", "",
                 "run the schedule_invariance sweep over N generated cases "
                 "instead of one universe");
  cli.add_option("max-schedules", "0",
                 "stop after this many schedules (0 = exhaustive)");
  cli.add_option("invariants", "core",
                 "battery: comma list of relations,online,monitor,stability,"
                 "compaction,recovery or core/all");
  cli.add_option("repro", "", "explore the universe of a saved repro file");
  cli.add_option("repro-out", "", "write a violating repro to this file");
  cli.add_option("stats-json", "", "write exploration stats to this file");
  cli.add_flag("naive",
               "also count the naive (unpruned) enumeration to measure the "
               "DPOR reduction");
  cli.add_flag("parallel", "explore the frontier over the thread pool");
  cli.add_flag("no-shrink", "report violations without minimizing them");
  if (!cli.parse(argc, argv)) return 2;

  const std::optional<unsigned> mask =
      explore::invariant_mask_from_csv(cli.get("invariants"));
  if (!mask) {
    std::cerr << "unknown invariant in --invariants\n";
    return 2;
  }
  const std::uint64_t max_schedules = cli.get_uint("max-schedules");
  const bool parallel = cli.get_flag("parallel");
  const bool shrink = !cli.get_flag("no-shrink");

  // Sweep mode: the pinned-seed schedule_invariance campaign over small
  // generated cases (what CI asserts zero violations on).
  if (!cli.get("cases").empty()) {
    const std::size_t cases = static_cast<std::size_t>(cli.get_uint("cases"));
    GenLimits limits;
    limits.workload.min_processes = 2;
    limits.workload.max_processes = 4;
    limits.workload.min_events_per_process = 2;
    limits.workload.max_events_per_process = 4;
    std::size_t explored = 0, vacuous = 0, failures = 0;
    const ScheduleInvarianceConfig gate = schedule_invariance_config();
    for (std::size_t i = 0; i < cases; ++i) {
      const std::uint64_t case_seed = case_seed_for(cli.get_uint("seed"), i);
      const CheckCase c = generate_case(case_seed, limits);
      const bool gated = c.process_count() > gate.max_processes ||
                         c.messages.size() > gate.max_messages ||
                         c.total_events() > gate.max_events;
      if (gated) {
        ++vacuous;
        continue;
      }
      ++explored;
      const PropertyResult result =
          run_property_on_case(*find_property("schedule_invariance"), c);
      if (!result.passed) {
        ++failures;
        std::cout << "FAIL case #" << i << " seed " << case_seed << ": "
                  << result.message << "\n";
        report_violation(c, case_seed, result.message, shrink,
                         cli.get("repro-out"));
      }
    }
    std::cout << cases << " cases: " << explored << " explored exhaustively, "
              << vacuous << " above the size gate, " << failures
              << " violations\n";
    return failures == 0 ? 0 : 1;
  }

  // Single-universe mode: a saved repro, or a generated case matching the
  // requested size.
  CheckCase c;
  std::uint64_t case_seed = 0;
  if (!cli.get("repro").empty()) {
    std::ifstream file(cli.get("repro"));
    if (!file) {
      std::cerr << "cannot open repro file: " << cli.get("repro") << "\n";
      return 2;
    }
    try {
      const Repro repro = load_repro(file);
      c = repro.c;
      case_seed = repro.meta.case_seed;
    } catch (const std::exception& e) {
      std::cerr << "bad repro file: " << e.what() << "\n";
      return 2;
    }
  } else {
    const std::size_t procs = static_cast<std::size_t>(cli.get_uint("procs"));
    const std::size_t events =
        static_cast<std::size_t>(cli.get_uint("events"));
    const std::size_t messages =
        static_cast<std::size_t>(cli.get_uint("messages"));
    GenLimits limits;
    limits.workload.min_processes = procs;
    limits.workload.max_processes = procs;
    limits.workload.min_events_per_process = std::min<std::size_t>(2, events);
    limits.workload.max_events_per_process = events;
    bool found = false;
    for (std::size_t i = 0; i < 50000 && !found; ++i) {
      case_seed = case_seed_for(cli.get_uint("seed"), i);
      c = generate_case(case_seed, limits);
      found = c.process_count() == procs && c.messages.size() == messages;
    }
    if (!found) {
      std::cerr << "no generated case matches --procs " << procs
                << " --messages " << messages << " (try another --seed)\n";
      return 2;
    }
    std::cout << "universe from case seed " << case_seed << ": "
              << c.process_count() << " procs / " << c.total_events()
              << " events / " << c.messages.size() << " msgs\n";
  }

  // Lift the property gate to cover this universe, so the shrink predicate
  // sees the same exploration the CLI ran.
  ScheduleInvarianceConfig& cfg = schedule_invariance_config();
  cfg.max_processes = std::max(cfg.max_processes, c.process_count());
  cfg.max_messages = std::max(cfg.max_messages, c.messages.size());
  cfg.max_events = std::max(cfg.max_events, c.total_events());
  cfg.max_schedules =
      max_schedules == 0 ? std::uint64_t{1} << 20 : max_schedules;

  UniverseRun run;
  const bool ok = explore_case(c, *mask, max_schedules, parallel,
                               cli.get_flag("naive"), run);
  print_run(run);
  if (!cli.get("stats-json").empty()) {
    write_stats_json(cli.get("stats-json"), c, run);
  }
  if (!ok) {
    report_violation(c, case_seed, run.violation, shrink,
                     cli.get("repro-out"));
    return 1;
  }
  return 0;
}
