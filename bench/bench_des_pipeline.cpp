// E11 (extension) — the full analysis pipeline on simulator-generated
// traces: discrete-event simulation → vector-clock stamping → relation
// evaluation. Measures each stage's throughput so downstream users can
// budget an end-to-end monitoring deployment.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "model/timestamps.hpp"
#include "relations/evaluator.hpp"
#include "sim/air_defense_des.hpp"

namespace {

using namespace syncon;
using namespace syncon::bench;

AirDefenseDesConfig scaled_config(std::size_t rounds) {
  AirDefenseDesConfig cfg;
  cfg.radars = 4;
  cfg.batteries = 3;
  cfg.rounds = rounds;
  cfg.network.seed = 99;
  return cfg;
}

void print_pipeline() {
  banner("E11: bench_des_pipeline", "extension: end-to-end pipeline",
         "simulate → stamp → evaluate, per stage");
  const DesEngine::Result r = make_air_defense_des(scaled_config(24));
  const Timestamps ts(*r.execution);
  RelationEvaluator eval(ts);
  std::vector<RelationEvaluator::Handle> handles;
  for (const NonatomicEvent& iv : r.intervals) {
    handles.push_back(eval.add_event(iv));
  }
  std::size_t holding = 0, pairs = 0;
  for (std::size_t x = 0; x < handles.size(); ++x) {
    for (std::size_t y = 0; y < handles.size(); ++y) {
      if (x == y) continue;
      holding += eval.all_holding_pruned(x, y).holding.size();
      ++pairs;
    }
  }
  TextTable table({"stage", "value"});
  table.new_row()
      .add_cell(std::string("simulated events"))
      .add_cell(r.execution->total_real_count());
  table.new_row()
      .add_cell(std::string("simulated horizon (µs)"))
      .add_cell(static_cast<std::uint64_t>(r.times->horizon()));
  table.new_row()
      .add_cell(std::string("intervals"))
      .add_cell(r.intervals.size());
  table.new_row().add_cell(std::string("ordered pairs")).add_cell(pairs);
  table.new_row()
      .add_cell(std::string("relations holding"))
      .add_cell(holding);
  table.new_row()
      .add_cell(std::string("comparisons spent"))
      .add_cell(with_thousands(eval.counter().integer_comparisons));
  std::printf("%s\n", table.to_string().c_str());
}

void BM_Simulate(benchmark::State& state) {
  const auto rounds = static_cast<std::size_t>(state.range(0));
  std::size_t events = 0;
  for (auto _ : state) {
    const DesEngine::Result r = make_air_defense_des(scaled_config(rounds));
    events = r.execution->total_real_count();
    benchmark::DoNotOptimize(events);
  }
  state.SetLabel(std::to_string(events) + " events");
  state.SetItemsProcessed(static_cast<std::int64_t>(
      state.iterations() * static_cast<std::int64_t>(events)));
}

void BM_Stamp(benchmark::State& state) {
  const auto rounds = static_cast<std::size_t>(state.range(0));
  const DesEngine::Result r = make_air_defense_des(scaled_config(rounds));
  for (auto _ : state) {
    const Timestamps ts(*r.execution);
    benchmark::DoNotOptimize(&ts);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(
      state.iterations() *
      static_cast<std::int64_t>(r.execution->total_real_count())));
}

void BM_EvaluateAllPairs(benchmark::State& state) {
  const auto rounds = static_cast<std::size_t>(state.range(0));
  const DesEngine::Result r = make_air_defense_des(scaled_config(rounds));
  const Timestamps ts(*r.execution);
  RelationEvaluator eval(ts);
  std::vector<RelationEvaluator::Handle> handles;
  for (const NonatomicEvent& iv : r.intervals) {
    handles.push_back(eval.add_event(iv));
  }
  for (auto _ : state) {
    std::size_t holding = 0;
    for (std::size_t x = 0; x < handles.size(); ++x) {
      for (std::size_t y = 0; y < handles.size(); ++y) {
        if (x != y) holding += eval.all_holding_pruned(x, y).holding.size();
      }
    }
    benchmark::DoNotOptimize(holding);
  }
}

BENCHMARK(BM_Simulate)->Arg(8)->Arg(32)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Stamp)->Arg(8)->Arg(32);
BENCHMARK(BM_EvaluateAllPairs)->Arg(8)->Arg(16)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_pipeline();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
