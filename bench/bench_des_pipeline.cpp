// E11 (extension) — the full analysis pipeline on simulator-generated
// traces: discrete-event simulation → vector-clock stamping → relation
// evaluation. Measures each stage's throughput so downstream users can
// budget an end-to-end monitoring deployment.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "model/timestamps.hpp"
#include "relations/batch.hpp"
#include "relations/evaluator.hpp"
#include "sim/air_defense_des.hpp"

namespace {

using namespace syncon;
using namespace syncon::bench;

AirDefenseDesConfig scaled_config(std::size_t rounds) {
  AirDefenseDesConfig cfg;
  cfg.radars = 4;
  cfg.batteries = 3;
  cfg.rounds = rounds;
  cfg.network.seed = 99;
  return cfg;
}

void print_pipeline() {
  banner("E11: bench_des_pipeline", "extension: end-to-end pipeline",
         "simulate → stamp → evaluate, per stage");
  const DesEngine::Result r = make_air_defense_des(scaled_config(24));
  const Timestamps ts(*r.execution);
  RelationEvaluator eval(ts);
  for (const NonatomicEvent& iv : r.intervals) eval.add_event(iv);
  const auto sweep = BatchEvaluator(eval, nullptr).all_pairs();
  TextTable table({"stage", "value"});
  table.new_row()
      .add_cell(std::string("simulated events"))
      .add_cell(r.execution->total_real_count());
  table.new_row()
      .add_cell(std::string("simulated horizon (µs)"))
      .add_cell(static_cast<std::uint64_t>(r.times->horizon()));
  table.new_row()
      .add_cell(std::string("intervals"))
      .add_cell(r.intervals.size());
  table.new_row()
      .add_cell(std::string("ordered pairs"))
      .add_cell(sweep.pairs.size());
  table.new_row()
      .add_cell(std::string("relations holding"))
      .add_cell(sweep.holding_total());
  table.new_row()
      .add_cell(std::string("comparisons spent"))
      .add_cell(with_thousands(sweep.cost.integer_comparisons));
  table.new_row()
      .add_cell(std::string("comparisons per query"))
      .add_cell(comparisons_per_query(sweep.cost, sweep.evaluated_total()), 2);
  std::printf("%s\n", table.to_string().c_str());
}

void BM_Simulate(benchmark::State& state) {
  const auto rounds = static_cast<std::size_t>(state.range(0));
  std::size_t events = 0;
  for (auto _ : state) {
    const DesEngine::Result r = make_air_defense_des(scaled_config(rounds));
    events = r.execution->total_real_count();
    benchmark::DoNotOptimize(events);
  }
  state.SetLabel(std::to_string(events) + " events");
  state.SetItemsProcessed(static_cast<std::int64_t>(
      state.iterations() * static_cast<std::int64_t>(events)));
}

void BM_Stamp(benchmark::State& state) {
  const auto rounds = static_cast<std::size_t>(state.range(0));
  const DesEngine::Result r = make_air_defense_des(scaled_config(rounds));
  for (auto _ : state) {
    const Timestamps ts(*r.execution);
    benchmark::DoNotOptimize(&ts);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(
      state.iterations() *
      static_cast<std::int64_t>(r.execution->total_real_count())));
}

void BM_EvaluateAllPairs(benchmark::State& state) {
  const auto rounds = static_cast<std::size_t>(state.range(0));
  const DesEngine::Result r = make_air_defense_des(scaled_config(rounds));
  const Timestamps ts(*r.execution);
  RelationEvaluator eval(ts);
  for (const NonatomicEvent& iv : r.intervals) eval.add_event(iv);
  const BatchEvaluator batch(eval, nullptr);
  for (auto _ : state) {
    const auto sweep = batch.all_pairs();
    benchmark::DoNotOptimize(sweep.holding_total());
  }
}

// Parallel-vs-serial ablation of the evaluate stage: same sweep, sharded
// across a thread pool (identical holding sets and comparison totals).
void BM_EvaluateAllPairsParallel(benchmark::State& state) {
  const auto rounds = static_cast<std::size_t>(state.range(0));
  const auto threads = static_cast<std::size_t>(state.range(1));
  const DesEngine::Result r = make_air_defense_des(scaled_config(rounds));
  const Timestamps ts(*r.execution);
  RelationEvaluator eval(ts);
  for (const NonatomicEvent& iv : r.intervals) eval.add_event(iv);
  const BatchEvaluator batch(eval, &pool_with(threads));
  for (auto _ : state) {
    const auto sweep = batch.all_pairs();
    benchmark::DoNotOptimize(sweep.holding_total());
  }
  state.SetLabel(std::to_string(threads) + " threads");
}

BENCHMARK(BM_Simulate)->Arg(8)->Arg(32)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Stamp)->Arg(8)->Arg(32);
BENCHMARK(BM_EvaluateAllPairs)->Arg(8)->Arg(16)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EvaluateAllPairsParallel)
    ->Args({16, 2})
    ->Args({16, 4})
    ->Args({16, 8})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  print_pipeline();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
