// E7 — reproduces Key Idea 1 and Problem 4(ii): evaluating all 32 relations
// over every ordered pair of a registered interval set.
//
// Ablations:
//   cached       one-time EventCuts per interval, reused across pairs
//   uncached     EventCuts rebuilt for every pair (no Key Idea 1)
//   pruned       cached + implication-lattice pruning of the 32 queries
//   naive        per-pair quantifier evaluation on proxies (pre-paper)
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "relations/evaluator.hpp"
#include "relations/fast.hpp"
#include "relations/naive.hpp"

namespace {

using namespace syncon;
using namespace syncon::bench;

constexpr std::size_t kProcesses = 32;
constexpr std::size_t kEventsPerProcess = 120;
constexpr std::size_t kIntervals = 24;

Substrate& substrate() {
  static Substrate s(standard_workload(kProcesses, kEventsPerProcess),
                     standard_spec(12, 6), kIntervals, 888);
  return s;
}

RelationEvaluator& evaluator() {
  static RelationEvaluator eval = [] {
    RelationEvaluator e(*substrate().ts);
    for (const NonatomicEvent& iv : substrate().intervals) e.add_event(iv);
    return e;
  }();
  return eval;
}

void print_summary() {
  banner("E7: bench_problem4_all_pairs", "Key Idea 1 / Problem 4(ii)",
         "all 32 relations over all ordered interval pairs");
  RelationEvaluator& eval = evaluator();
  eval.reset_counter();

  std::size_t holding_total = 0, evaluated_exhaustive = 0,
              evaluated_pruned = 0;
  for (std::size_t x = 0; x < kIntervals; ++x) {
    for (std::size_t y = 0; y < kIntervals; ++y) {
      if (x == y) continue;
      const auto full = eval.all_holding(x, y);
      const auto pruned = eval.all_holding_pruned(x, y);
      holding_total += full.holding.size();
      evaluated_exhaustive += full.evaluated;
      evaluated_pruned += pruned.evaluated;
    }
  }
  const std::size_t pairs = kIntervals * (kIntervals - 1);
  TextTable table({"metric", "value"});
  table.new_row().add_cell(std::string("intervals")).add_cell(kIntervals);
  table.new_row().add_cell(std::string("ordered pairs")).add_cell(pairs);
  table.new_row()
      .add_cell(std::string("relations holding (total)"))
      .add_cell(holding_total);
  table.new_row()
      .add_cell(std::string("relation evaluations, exhaustive"))
      .add_cell(evaluated_exhaustive);
  table.new_row()
      .add_cell(std::string("relation evaluations, lattice-pruned"))
      .add_cell(evaluated_pruned);
  table.new_row()
      .add_cell(std::string("pruning saves"))
      .add_cell(100.0 *
                    (1.0 - static_cast<double>(evaluated_pruned) /
                               static_cast<double>(evaluated_exhaustive)),
                1);
  table.new_row()
      .add_cell(std::string("integer comparisons (both passes)"))
      .add_cell(with_thousands(eval.counter().integer_comparisons));
  std::printf("%s\n", table.to_string().c_str());
}

// Cached: Key Idea 1 — proxies + cut timestamps computed once per interval.
void BM_AllPairsCached(benchmark::State& state) {
  RelationEvaluator& eval = evaluator();
  for (auto _ : state) {
    std::size_t holding = 0;
    for (std::size_t x = 0; x < kIntervals; ++x) {
      for (std::size_t y = 0; y < kIntervals; ++y) {
        if (x != y) holding += eval.all_holding(x, y).holding.size();
      }
    }
    benchmark::DoNotOptimize(holding);
  }
}

// Pruned: cached + hierarchy propagation.
void BM_AllPairsPruned(benchmark::State& state) {
  RelationEvaluator& eval = evaluator();
  for (auto _ : state) {
    std::size_t holding = 0;
    for (std::size_t x = 0; x < kIntervals; ++x) {
      for (std::size_t y = 0; y < kIntervals; ++y) {
        if (x != y) holding += eval.all_holding_pruned(x, y).holding.size();
      }
    }
    benchmark::DoNotOptimize(holding);
  }
}

// Uncached: rebuild the cut timestamps for every pair (ablates Key Idea 1).
void BM_AllPairsUncached(benchmark::State& state) {
  Substrate& s = substrate();
  for (auto _ : state) {
    std::size_t holding = 0;
    for (std::size_t xi = 0; xi < kIntervals; ++xi) {
      for (std::size_t yi = 0; yi < kIntervals; ++yi) {
        if (xi == yi) continue;
        ComparisonCounter counter;
        for (const RelationId& id : all_relation_ids()) {
          const NonatomicEvent px =
              s.intervals[xi].proxy_per_node(id.proxy_x);
          const NonatomicEvent py =
              s.intervals[yi].proxy_per_node(id.proxy_y);
          const EventCuts xc(*s.ts, px), yc(*s.ts, py);
          holding += evaluate_fast(id.relation, xc, yc, counter) ? 1 : 0;
        }
      }
    }
    benchmark::DoNotOptimize(holding);
  }
}

// Naive: per-pair quantifier evaluation over proxies (|N_X|·|N_Y| checks).
void BM_AllPairsNaive(benchmark::State& state) {
  Substrate& s = substrate();
  std::vector<NonatomicEvent> begin_proxies, end_proxies;
  for (const NonatomicEvent& iv : s.intervals) {
    begin_proxies.push_back(iv.proxy_per_node(ProxyKind::Begin));
    end_proxies.push_back(iv.proxy_per_node(ProxyKind::End));
  }
  auto proxy_of = [&](std::size_t i, ProxyKind k) -> const NonatomicEvent& {
    return k == ProxyKind::Begin ? begin_proxies[i] : end_proxies[i];
  };
  for (auto _ : state) {
    std::size_t holding = 0;
    for (std::size_t xi = 0; xi < kIntervals; ++xi) {
      for (std::size_t yi = 0; yi < kIntervals; ++yi) {
        if (xi == yi) continue;
        for (const RelationId& id : all_relation_ids()) {
          holding += evaluate_proxy_naive(
                         id.relation, proxy_of(xi, id.proxy_x),
                         proxy_of(yi, id.proxy_y), *s.ts, Semantics::Weak)
                         ? 1
                         : 0;
        }
      }
    }
    benchmark::DoNotOptimize(holding);
  }
}

BENCHMARK(BM_AllPairsCached)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AllPairsPruned)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AllPairsUncached)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AllPairsNaive)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_summary();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
