// E7 — reproduces Key Idea 1 and Problem 4(ii): evaluating all 32 relations
// over every ordered pair of a registered interval set.
//
// Ablations:
//   cached       one-time EventCuts per interval, reused across pairs
//   uncached     EventCuts rebuilt for every pair (no Key Idea 1)
//   pruned       cached + implication-lattice pruning of the 32 queries
//   naive        per-pair quantifier evaluation on proxies (pre-paper)
//   parallel/T   pruned sweep sharded over a T-thread BatchEvaluator; the
//                holding sets and total comparison counts are bit-identical
//                to the serial sweep (verified in the summary below)
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "relations/batch.hpp"
#include "relations/evaluator.hpp"
#include "relations/fast.hpp"
#include "relations/naive.hpp"

namespace {

using namespace syncon;
using namespace syncon::bench;

constexpr std::size_t kProcesses = 32;
constexpr std::size_t kEventsPerProcess = 120;
constexpr std::size_t kIntervals = 24;

Substrate& substrate() {
  static Substrate s(standard_workload(kProcesses, kEventsPerProcess),
                     standard_spec(12, 6), kIntervals, 888);
  return s;
}

RelationEvaluator& evaluator() {
  // The evaluator is immovable (it owns atomic cost tallies), so construct
  // it in place and register the intervals once.
  static RelationEvaluator eval(*substrate().ts);
  static const bool filled = [] {
    for (const NonatomicEvent& iv : substrate().intervals) eval.add_event(iv);
    return true;
  }();
  (void)filled;
  return eval;
}

bool identical(const BatchEvaluator::Result& a,
               const BatchEvaluator::Result& b) {
  if (a.pairs.size() != b.pairs.size() || !(a.cost == b.cost)) return false;
  for (std::size_t i = 0; i < a.pairs.size(); ++i) {
    if (a.pairs[i].x != b.pairs[i].x || a.pairs[i].y != b.pairs[i].y ||
        a.pairs[i].relations.holding != b.pairs[i].relations.holding) {
      return false;
    }
  }
  return true;
}

void print_summary() {
  banner("E7: bench_problem4_all_pairs", "Key Idea 1 / Problem 4(ii)",
         "all 32 relations over all ordered interval pairs");
  RelationEvaluator& eval = evaluator();

  const BatchEvaluator serial(eval, nullptr);
  const auto full = serial.all_pairs(/*pruned=*/false);
  const auto pruned = serial.all_pairs(/*pruned=*/true);
  // Determinism cross-check: the parallel sweep must reproduce the serial
  // holding sets and the exact comparison totals at every thread count.
  bool parallel_matches = true;
  std::size_t max_threads_checked = 0;
  for (const std::size_t threads : {2u, 4u, 8u}) {
    const BatchEvaluator parallel(eval, &pool_with(threads));
    parallel_matches =
        parallel_matches && identical(pruned, parallel.all_pairs(true));
    max_threads_checked = threads;
  }

  TextTable table({"metric", "value"});
  table.new_row().add_cell(std::string("intervals")).add_cell(kIntervals);
  table.new_row()
      .add_cell(std::string("ordered pairs"))
      .add_cell(pruned.pairs.size());
  table.new_row()
      .add_cell(std::string("relations holding (total)"))
      .add_cell(full.holding_total());
  table.new_row()
      .add_cell(std::string("relation evaluations, exhaustive"))
      .add_cell(full.evaluated_total());
  table.new_row()
      .add_cell(std::string("relation evaluations, lattice-pruned"))
      .add_cell(pruned.evaluated_total());
  table.new_row()
      .add_cell(std::string("pruning saves"))
      .add_cell(100.0 *
                    (1.0 - static_cast<double>(pruned.evaluated_total()) /
                               static_cast<double>(full.evaluated_total())),
                1);
  table.new_row()
      .add_cell(std::string("integer comparisons, exhaustive sweep"))
      .add_cell(with_thousands(full.cost.integer_comparisons));
  table.new_row()
      .add_cell(std::string("integer comparisons, pruned sweep"))
      .add_cell(with_thousands(pruned.cost.integer_comparisons));
  table.new_row()
      .add_cell(std::string("comparisons per query (pruned)"))
      .add_cell(comparisons_per_query(pruned.cost, pruned.evaluated_total()),
                2);
  table.new_row()
      .add_cell(std::string("parallel == serial (up to " +
                            std::to_string(max_threads_checked) + " threads)"))
      .add_cell(parallel_matches ? std::string("yes (bit-identical)")
                                 : std::string("NO — BUG"));
  std::printf("%s\n", table.to_string().c_str());
}

// Cached: Key Idea 1 — proxies + cut timestamps computed once per interval.
void BM_AllPairsCached(benchmark::State& state) {
  const BatchEvaluator batch(evaluator(), nullptr);
  for (auto _ : state) {
    const auto result = batch.all_pairs(/*pruned=*/false);
    benchmark::DoNotOptimize(result.holding_total());
  }
}

// Pruned: cached + hierarchy propagation.
void BM_AllPairsPruned(benchmark::State& state) {
  const BatchEvaluator batch(evaluator(), nullptr);
  for (auto _ : state) {
    const auto result = batch.all_pairs(/*pruned=*/true);
    benchmark::DoNotOptimize(result.holding_total());
  }
}

// Parallel: the pruned sweep sharded across a thread pool. Compare against
// BM_AllPairsPruned for the speedup; the summary table already verified the
// outputs are bit-identical.
void BM_AllPairsPrunedParallel(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  const BatchEvaluator batch(evaluator(), &pool_with(threads));
  for (auto _ : state) {
    const auto result = batch.all_pairs(/*pruned=*/true);
    benchmark::DoNotOptimize(result.holding_total());
  }
  state.SetLabel(std::to_string(threads) + " threads");
}

// Uncached: rebuild the cut timestamps for every pair (ablates Key Idea 1).
void BM_AllPairsUncached(benchmark::State& state) {
  Substrate& s = substrate();
  for (auto _ : state) {
    std::size_t holding = 0;
    for (std::size_t xi = 0; xi < kIntervals; ++xi) {
      for (std::size_t yi = 0; yi < kIntervals; ++yi) {
        if (xi == yi) continue;
        QueryCost cost;
        for (const RelationId& id : all_relation_ids()) {
          const NonatomicEvent px =
              s.intervals[xi].proxy_per_node(id.proxy_x);
          const NonatomicEvent py =
              s.intervals[yi].proxy_per_node(id.proxy_y);
          const EventCuts xc(*s.ts, px), yc(*s.ts, py);
          if (evaluate_fast(id.relation, xc, yc, cost)) ++holding;
        }
      }
    }
    benchmark::DoNotOptimize(holding);
  }
}

// Naive: per-pair quantifier evaluation over proxies (|N_X|·|N_Y| checks).
void BM_AllPairsNaive(benchmark::State& state) {
  Substrate& s = substrate();
  std::vector<NonatomicEvent> begin_proxies, end_proxies;
  for (const NonatomicEvent& iv : s.intervals) {
    begin_proxies.push_back(iv.proxy_per_node(ProxyKind::Begin));
    end_proxies.push_back(iv.proxy_per_node(ProxyKind::End));
  }
  auto proxy_of = [&](std::size_t i, ProxyKind k) -> const NonatomicEvent& {
    return k == ProxyKind::Begin ? begin_proxies[i] : end_proxies[i];
  };
  for (auto _ : state) {
    std::size_t holding = 0;
    for (std::size_t xi = 0; xi < kIntervals; ++xi) {
      for (std::size_t yi = 0; yi < kIntervals; ++yi) {
        if (xi == yi) continue;
        for (const RelationId& id : all_relation_ids()) {
          if (evaluate_proxy_naive(id.relation, proxy_of(xi, id.proxy_x),
                                   proxy_of(yi, id.proxy_y), *s.ts,
                                   Semantics::Weak)) {
            ++holding;
          }
        }
      }
    }
    benchmark::DoNotOptimize(holding);
  }
}

BENCHMARK(BM_AllPairsCached)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AllPairsPruned)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AllPairsPrunedParallel)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK(BM_AllPairsUncached)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AllPairsNaive)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  start_telemetry();
  print_summary();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  finish_telemetry("bench_problem4_all_pairs");
  return 0;
}
