// E6 — reproduces Figure 2: the cuts C1(X)..C4(X) of an eight-event poset
// on four nodes. Prints the replica's cut surfaces as ASCII (the figure's
// content) and benches cut construction as |X|, |N_X| and |P| grow.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "fig_render.hpp"
#include "sim/scenarios.hpp"

namespace {

using namespace syncon;
using namespace syncon::bench;

void print_figure2() {
  banner("E6: bench_fig2_cuts", "Figure 2",
         "the four cuts of an 8-event poset across four nodes");
  const Scenario fig = make_figure2();
  const Timestamps ts(fig.execution());
  const NonatomicEvent& x = fig.interval("X");
  const EventCuts cuts(ts, x);
  const std::vector<std::pair<std::string, const VectorClock*>> rows = {
      {"C1", &cuts.intersect_past()},
      {"C2", &cuts.union_past()},
      {"C3", &cuts.intersect_future()},
      {"C4", &cuts.union_future()},
  };
  render_event_and_cuts(fig.execution(), x, rows);

  TextTable table({"cut", "definition", "timestamp (per-process counts)",
                   "globally consistent"});
  const char* defs[] = {"∩⇓X  (past all know)", "∪⇓X  (past some know)",
                        "∩⇑X  (future of some)", "∪⇑X  (future of all)"};
  const PosetCut kinds[] = {PosetCut::IntersectPast, PosetCut::UnionPast,
                            PosetCut::IntersectFuture, PosetCut::UnionFuture};
  for (int i = 0; i < 4; ++i) {
    std::string stamp;
    for (std::size_t p = 0; p < fig.execution().process_count(); ++p) {
      stamp += std::to_string(cuts.counts(kinds[i])[p]) + " ";
    }
    table.new_row()
        .add_cell("C" + std::to_string(i + 1))
        .add_cell(std::string(defs[i]))
        .add_cell(stamp)
        .add_cell(cuts.cut(kinds[i]).globally_consistent(ts));
  }
  std::printf("\n%s\n", table.to_string().c_str());
}

void BM_CutConstruction(benchmark::State& state) {
  const auto processes = static_cast<std::size_t>(state.range(0));
  const auto span = static_cast<std::size_t>(state.range(1));
  static std::vector<std::unique_ptr<Substrate>> cache;
  Substrate* sub = nullptr;
  for (auto& c : cache) {
    if (c->exec.process_count() == processes) sub = c.get();
  }
  if (sub == nullptr) {
    cache.push_back(std::make_unique<Substrate>(
        standard_workload(processes, 60, 5000 + processes),
        standard_spec(2, 2), 2, 1));
    sub = cache.back().get();
  }
  Xoshiro256StarStar rng(9 + span);
  const NonatomicEvent x =
      random_interval(sub->exec, rng, standard_spec(span, 6), "X");
  for (auto _ : state) {
    const EventCuts cuts(*sub->ts, x);
    benchmark::DoNotOptimize(cuts.union_future()[0]);
  }
  state.SetLabel("|P|=" + std::to_string(processes) +
                 " |N_X|=" + std::to_string(x.node_count()) +
                 " |X|=" + std::to_string(x.size()));
}

BENCHMARK(BM_CutConstruction)
    ->Args({8, 4})
    ->Args({32, 4})
    ->Args({32, 16})
    ->Args({128, 16})
    ->Args({128, 64});

}  // namespace

int main(int argc, char** argv) {
  print_figure2();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
