// E9 (extension) — online vs offline evaluation. The paper's Theorem 20
// budgets assume the whole trace is stamped (forward AND reverse
// timestamps). A runtime monitor only has forward clocks, which keeps
// R1/R2/R3/R4 linear but forces |N_X|·|N_Y| work for R2'/R3'. This bench
// quantifies that gap and the piggybacking protocol's cost.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "online/interval_tracker.hpp"
#include "online/online_evaluator.hpp"
#include "online/online_system.hpp"
#include "relations/fast.hpp"
#include "support/stats.hpp"

namespace {

using namespace syncon;
using namespace syncon::bench;

constexpr std::size_t kProcesses = 32;
constexpr std::size_t kNX = 16;
constexpr std::size_t kNY = 16;

struct OnlineFixture {
  Execution exec;
  std::unique_ptr<Timestamps> ts;
  OnlineSystem sys;
  std::vector<NonatomicEvent> intervals;
  std::vector<IntervalSummary> summaries;
  std::vector<std::unique_ptr<EventCuts>> cuts;

  OnlineFixture()
      : exec(generate_execution(standard_workload(kProcesses, 100, 11))),
        sys(replay(exec)) {
    ts = std::make_unique<Timestamps>(exec);
    Xoshiro256StarStar rng(5);
    intervals = random_intervals(exec, rng, standard_spec(kNX, 4), 32);
    for (const NonatomicEvent& iv : intervals) {
      IntervalTracker tracker(iv.label());
      for (const EventId& e : iv.events()) tracker.add(sys, e);
      summaries.push_back(tracker.summary());
      cuts.push_back(std::make_unique<EventCuts>(*ts, iv));
    }
  }
};

OnlineFixture& fixture() {
  static OnlineFixture f;
  return f;
}

void print_summary() {
  banner("E9: bench_online_monitor", "extension: runtime monitoring",
         "online (forward-clocks-only) vs offline (Theorem 20) costs");
  OnlineFixture& f = fixture();
  TextTable table({"relation", "offline bound", "online bound",
                   "offline mean cmps", "online mean cmps", "agree"});
  for (const Relation r : kAllRelations) {
    ComparisonCounter off_c, on_c;
    bool agree = true;
    int pairs = 0;
    for (std::size_t x = 0; x < f.intervals.size(); x += 2) {
      for (std::size_t y = 1; y < f.intervals.size(); y += 2) {
        const bool off = evaluate_fast(r, *f.cuts[x], *f.cuts[y], off_c);
        const bool on =
            evaluate_online(r, f.summaries[x], f.summaries[y], on_c);
        agree = agree && off == on;
        ++pairs;
      }
    }
    table.new_row()
        .add_cell(std::string(to_string(r)))
        .add_cell(theorem20_bound(r, kNX, kNY))
        .add_cell(online_cost_bound(r, kNX, kNY))
        .add_cell(static_cast<double>(off_c.integer_comparisons) / pairs, 2)
        .add_cell(static_cast<double>(on_c.integer_comparisons) / pairs, 2)
        .add_cell(agree);
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("piggybacking overhead: every message carries |P| = %zu clock "
              "components.\n\n", f.exec.process_count());
}

void BM_OnlineEvaluate(benchmark::State& state) {
  OnlineFixture& f = fixture();
  const auto r = static_cast<Relation>(state.range(0));
  ComparisonCounter counter;
  std::size_t i = 0;
  for (auto _ : state) {
    const bool v = evaluate_online(r, f.summaries[i], f.summaries[i + 1],
                                   counter);
    benchmark::DoNotOptimize(v);
    i = (i + 2) % (f.summaries.size() - 1);
  }
}

void BM_OfflineEvaluate(benchmark::State& state) {
  OnlineFixture& f = fixture();
  const auto r = static_cast<Relation>(state.range(0));
  ComparisonCounter counter;
  std::size_t i = 0;
  for (auto _ : state) {
    const bool v = evaluate_fast(r, *f.cuts[i], *f.cuts[i + 1], counter);
    benchmark::DoNotOptimize(v);
    i = (i + 2) % (f.cuts.size() - 1);
  }
}

void BM_TrackerAdd(benchmark::State& state) {
  OnlineFixture& f = fixture();
  const NonatomicEvent& iv = f.intervals[0];
  for (auto _ : state) {
    IntervalTracker tracker("t");
    for (const EventId& e : iv.events()) tracker.add(f.sys, e);
    benchmark::DoNotOptimize(tracker.event_count());
  }
  state.SetLabel("|X|=" + std::to_string(iv.size()));
}

void BM_ReplayThroughProtocol(benchmark::State& state) {
  OnlineFixture& f = fixture();
  for (auto _ : state) {
    const OnlineSystem sys = replay(f.exec);
    benchmark::DoNotOptimize(sys.total_executed());
  }
  state.SetLabel(std::to_string(f.exec.total_real_count()) + " events");
}

void register_all() {
  for (int r = 0; r < 8; ++r) {
    const std::string name = to_string(static_cast<Relation>(r));
    benchmark::RegisterBenchmark(("online/" + name).c_str(),
                                 BM_OnlineEvaluate)
        ->Arg(r);
    benchmark::RegisterBenchmark(("offline/" + name).c_str(),
                                 BM_OfflineEvaluate)
        ->Arg(r);
  }
  benchmark::RegisterBenchmark("tracker_add", BM_TrackerAdd);
  benchmark::RegisterBenchmark("replay_protocol", BM_ReplayThroughProtocol)
      ->Unit(benchmark::kMillisecond);
}

}  // namespace

int main(int argc, char** argv) {
  start_telemetry();
  print_summary();
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  finish_telemetry("bench_online_monitor");
  return 0;
}
