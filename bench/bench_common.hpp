// Shared setup for the benchmark harness: standard workloads, interval
// samplers and pretty-printers used by every experiment binary.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "cuts/ll_relation.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/telemetry.hpp"
#include "model/timestamps.hpp"
#include "nonatomic/cut_timestamps.hpp"
#include "sim/interval_picker.hpp"
#include "sim/workload.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"

namespace syncon::bench {

/// The standard benchmark substrate: one execution, its timestamps, and a
/// pool of sampled interval pairs.
struct Substrate {
  Execution exec;
  std::unique_ptr<Timestamps> ts;
  std::vector<NonatomicEvent> intervals;

  Substrate(Substrate&&) = delete;  // NonatomicEvents hold &exec

  explicit Substrate(const WorkloadConfig& cfg, const IntervalSpec& spec,
                     std::size_t interval_count, std::uint64_t sample_seed)
      : exec(generate_execution(cfg)) {
    ts = std::make_unique<Timestamps>(exec);
    Xoshiro256StarStar rng(sample_seed);
    intervals = random_intervals(exec, rng, spec, interval_count);
  }
};

inline WorkloadConfig standard_workload(std::size_t processes,
                                        std::size_t events_per_process,
                                        std::uint64_t seed = 12345) {
  WorkloadConfig cfg;
  cfg.process_count = processes;
  cfg.events_per_process = events_per_process;
  cfg.send_probability = 0.35;
  cfg.receive_probability = 0.7;
  cfg.topology = Topology::Random;
  cfg.seed = seed;
  return cfg;
}

inline IntervalSpec standard_spec(std::size_t nodes,
                                  std::size_t events_per_node) {
  IntervalSpec spec;
  spec.node_count = nodes;
  spec.max_events_per_node = events_per_node;
  return spec;
}

/// Comparisons per relation query, computed from a returned QueryCost — not
/// from any evaluator-global counter, so the number stays correct when the
/// same evaluator serves several benchmark loops or concurrent sweeps.
inline double comparisons_per_query(const QueryCost& cost,
                                    std::size_t queries) {
  if (queries == 0) return 0.0;
  return static_cast<double>(cost.integer_comparisons) /
         static_cast<double>(queries);
}

/// Lazily constructed pools for the parallel-vs-serial ablations; one pool
/// per distinct thread count, reused across benchmark iterations.
inline ThreadPool& pool_with(std::size_t threads) {
  static std::vector<std::unique_ptr<ThreadPool>> pools;
  for (const auto& p : pools) {
    if (p->thread_count() == threads) return *p;
  }
  pools.push_back(std::make_unique<ThreadPool>(threads));
  return *pools.back();
}

/// Turns telemetry on for the whole benchmark run (DESIGN.md §3.8). Pair
/// with finish_telemetry() at the end of main.
inline void start_telemetry() { obs::set_enabled(true); }

/// Prints the per-phase span summary table, then honors two environment
/// variables: SYNCON_BENCH_JSON names a file for the telemetry JSON
/// snapshot (scripts/ci_bench_smoke.sh assembles these per-binary
/// snapshots into BENCH_smoke.json), and SYNCON_BENCH_TRACE names a file
/// for the Chrome trace-event export (load it in Perfetto or
/// chrome://tracing — see README "Telemetry" quickstart).
inline void finish_telemetry(const char* run_name) {
  obs::set_enabled(false);
  std::printf("\n=== span summary: %s ===\n", run_name);
  std::ostringstream table;
  obs::write_span_summary(table, obs::TraceRecorder::global());
  std::fputs(table.str().c_str(), stdout);
  if (const char* path = std::getenv("SYNCON_BENCH_JSON")) {
    std::ofstream out(path);
    obs::write_json(out, obs::MetricRegistry::global().snapshot(), run_name);
    std::printf("telemetry snapshot -> %s\n", path);
  }
  if (const char* path = std::getenv("SYNCON_BENCH_TRACE")) {
    std::ofstream out(path);
    obs::write_chrome_trace(out, obs::TraceRecorder::global());
    std::printf("chrome trace -> %s (open in Perfetto)\n", path);
  }
}

/// Prints a banner so the harness output reads like the paper artifact it
/// regenerates.
inline void banner(const char* experiment, const char* paper_artifact,
                   const char* what) {
  std::printf("==============================================================\n");
  std::printf("%s — reproduces %s\n%s\n", experiment, paper_artifact, what);
  std::printf("==============================================================\n");
}

}  // namespace syncon::bench
