// ASCII rendering of executions, nonatomic events and cut surfaces — used by
// the figure-reproduction benches (E5, E6) to print the structures the
// paper's Figures 1–3 draw.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "model/execution.hpp"
#include "model/vector_clock.hpp"
#include "nonatomic/interval.hpp"

namespace syncon::bench {

// One row per process: '#' marks a member of X, 'o' other real events,
// 'B'/'T' the dummies. Below each row, one line per cut with '-' inside the
// cut and '|' at its surface.
inline void render_event_and_cuts(
    const Execution& exec, const NonatomicEvent& x,
    const std::vector<std::pair<std::string, const VectorClock*>>& cuts) {
  for (ProcessId p = 0; p < exec.process_count(); ++p) {
    std::string row = "p" + std::to_string(p) + "  ";
    for (EventIndex k = 0; k < exec.total_count(p); ++k) {
      if (exec.is_initial(EventId{p, k})) {
        row += "B ";
      } else if (exec.is_final(EventId{p, k})) {
        row += "T ";
      } else {
        row += x.contains(EventId{p, k}) ? "# " : "o ";
      }
    }
    std::printf("%s\n", row.c_str());
    for (const auto& [label, counts] : cuts) {
      std::string cut_row = "  " + label;
      cut_row.resize(4, ' ');
      const ClockValue c = (*counts)[p];
      for (EventIndex k = 0; k < exec.total_count(p); ++k) {
        if (k + 1 < c) {
          cut_row += "--";
        } else if (k + 1 == c) {
          cut_row += "| ";
        } else {
          cut_row += "  ";
        }
      }
      std::printf("%s\n", cut_row.c_str());
    }
  }
  std::printf("legend: # member of the nonatomic event, o other event, "
              "B/T dummy initial/final;\n'|' marks each cut's surface "
              "event on that process line.\n");
}

}  // namespace syncon::bench
