// E3 — reproduces Theorem 19: testing ¬≪(↓Y, X↑) needs only
// min(|N_X|, |N_Y|) integer comparisons. Sweeps |N_X| and |N_Y|
// independently, measuring worst-case comparisons against the bound and the
// wall-clock advantage over a full |P|-component scan.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "cuts/ll_relation.hpp"
#include "support/stats.hpp"

namespace {

using namespace syncon;
using namespace syncon::bench;

constexpr std::size_t kProcesses = 64;
constexpr std::size_t kEventsPerProcess = 80;

Substrate& substrate() {
  static Substrate s(standard_workload(kProcesses, kEventsPerProcess),
                     standard_spec(4, 4), 4, 31415);
  return s;
}

// Samples an interval pair with the requested node-set sizes and runs the
// R4-style test (cut pair ∪⇓Y vs ∩⇑X — the pair for which both probe sides
// are sound).
void print_theorem19() {
  banner("E3: bench_theorem19_ll", "Theorem 19",
         "¬≪(↓Y, X↑) cost vs min(|N_X|, |N_Y|), sweeping node-set sizes");
  Substrate& s = substrate();
  Xoshiro256StarStar rng(777);

  TextTable table({"|N_X|", "|N_Y|", "bound min()", "max cmps measured",
                   "mean cmps", "violations of bound"});
  for (const std::size_t nx : {2u, 8u, 16u, 32u, 64u}) {
    for (const std::size_t ny : {2u, 16u, 64u}) {
      IntHistogram hist;
      for (int trial = 0; trial < 300; ++trial) {
        const NonatomicEvent x =
            random_interval(s.exec, rng, standard_spec(nx, 3), "X");
        const NonatomicEvent y =
            random_interval(s.exec, rng, standard_spec(ny, 3), "Y");
        const EventCuts xc(*s.ts, x), yc(*s.ts, y);
        ComparisonCounter counter;
        const auto& probe = x.node_count() <= y.node_count() ? x.node_set()
                                                             : y.node_set();
        (void)theorem19_violated(yc.union_past(), xc.intersect_future(),
                                 probe, counter);
        hist.add(counter.integer_comparisons);
      }
      const std::uint64_t bound = std::min(nx, ny);
      table.new_row()
          .add_cell(nx)
          .add_cell(ny)
          .add_cell(bound)
          .add_cell(hist.max_value())
          .add_cell(hist.mean(), 2)
          .add_cell(hist.count_above(bound));
    }
  }
  std::printf("%s\n", table.to_string().c_str());
}

void BM_LLProbeMinSide(benchmark::State& state) {
  Substrate& s = substrate();
  const auto n = static_cast<std::size_t>(state.range(0));
  Xoshiro256StarStar rng(1000 + n);
  const NonatomicEvent x =
      random_interval(s.exec, rng, standard_spec(n, 3), "X");
  const NonatomicEvent y =
      random_interval(s.exec, rng, standard_spec(n, 3), "Y");
  const EventCuts xc(*s.ts, x), yc(*s.ts, y);
  ComparisonCounter counter;
  for (auto _ : state) {
    const bool v = theorem19_violated(yc.union_past(), xc.intersect_future(),
                                      x.node_set(), counter);
    benchmark::DoNotOptimize(v);
  }
}

void BM_LLFullScan(benchmark::State& state) {
  Substrate& s = substrate();
  const auto n = static_cast<std::size_t>(state.range(0));
  Xoshiro256StarStar rng(1000 + n);
  const NonatomicEvent x =
      random_interval(s.exec, rng, standard_spec(n, 3), "X");
  const NonatomicEvent y =
      random_interval(s.exec, rng, standard_spec(n, 3), "Y");
  const EventCuts xc(*s.ts, x), yc(*s.ts, y);
  const Cut down = yc.cut(PosetCut::UnionPast);
  const Cut up = xc.cut(PosetCut::IntersectFuture);
  for (auto _ : state) {
    const bool v = !ll(down, up);  // canonical |P|-component scan
    benchmark::DoNotOptimize(v);
  }
}

BENCHMARK(BM_LLProbeMinSide)->Arg(2)->Arg(8)->Arg(32)->Arg(64);
BENCHMARK(BM_LLFullScan)->Arg(2)->Arg(8)->Arg(32)->Arg(64);

}  // namespace

int main(int argc, char** argv) {
  print_theorem19();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
