// E1 — reproduces Table 1: the eight relations, their quantifier
// definitions, and the derived evaluation conditions. For each relation the
// harness compares the three evaluation tiers on identical inputs:
//   naive        quantifiers over all of X × Y      (|X|·|Y| checks)
//   proxy-naive  quantifiers over per-node extremes (|N_X|·|N_Y| checks)
//   fast         Table 1 column-3 conditions        (Theorem 20 comparisons)
// and verifies they agree while counting their cost-model operations.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "relations/fast.hpp"
#include "relations/naive.hpp"

namespace {

using namespace syncon;
using namespace syncon::bench;

constexpr std::size_t kProcesses = 32;
constexpr std::size_t kEventsPerProcess = 120;
constexpr std::size_t kIntervalNodes = 16;
constexpr std::size_t kEventsPerNode = 8;
constexpr std::size_t kPairs = 64;

Substrate& substrate() {
  static Substrate s(standard_workload(kProcesses, kEventsPerProcess),
                     standard_spec(kIntervalNodes, kEventsPerNode),
                     2 * kPairs, 999);
  return s;
}

std::vector<const EventCuts*> cuts_pool() {
  static std::vector<std::unique_ptr<EventCuts>> owned = [] {
    std::vector<std::unique_ptr<EventCuts>> v;
    for (const NonatomicEvent& iv : substrate().intervals) {
      v.push_back(std::make_unique<EventCuts>(*substrate().ts, iv));
    }
    return v;
  }();
  std::vector<const EventCuts*> out;
  for (const auto& c : owned) out.push_back(c.get());
  return out;
}

void print_table1() {
  banner("E1: bench_table1_relations", "Table 1",
         "per-relation agreement + operation counts of the three tiers");
  Substrate& s = substrate();
  const auto cuts = cuts_pool();
  TextTable table({"relation", "definition", "holds%", "naive checks/query",
                   "proxy checks/query", "fast cmps/query", "agree"});
  const char* defs[] = {"∀x∀y: x≺y", "∀y∀x: x≺y", "∀x∃y: x≺y",
                        "∃y∀x: x≺y", "∃x∀y: x≺y", "∀y∃x: x≺y",
                        "∃x∃y: x≺y", "∃y∃x: x≺y"};
  int d = 0;
  for (const Relation r : kAllRelations) {
    ComparisonCounter naive_c, proxy_c, fast_c;
    std::size_t holds = 0;
    bool agree = true;
    for (std::size_t i = 0; i < kPairs; ++i) {
      const NonatomicEvent& x = s.intervals[2 * i];
      const NonatomicEvent& y = s.intervals[2 * i + 1];
      const bool v_naive =
          evaluate_naive(r, x, y, *s.ts, Semantics::Weak, &naive_c);
      const bool v_proxy =
          evaluate_proxy_naive(r, x, y, *s.ts, Semantics::Weak, &proxy_c);
      const bool v_fast = evaluate_fast(r, *cuts[2 * i], *cuts[2 * i + 1],
                                        fast_c);
      agree = agree && v_naive == v_proxy && v_proxy == v_fast;
      holds += v_fast ? 1 : 0;
    }
    table.new_row()
        .add_cell(std::string(to_string(r)))
        .add_cell(std::string(defs[d++]))
        .add_cell(100.0 * static_cast<double>(holds) / kPairs, 1)
        .add_cell(static_cast<double>(naive_c.causality_checks) / kPairs, 1)
        .add_cell(static_cast<double>(proxy_c.causality_checks) / kPairs, 1)
        .add_cell(static_cast<double>(fast_c.integer_comparisons) / kPairs, 1)
        .add_cell(agree);
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("workload: %zu processes, %zu events; intervals span %zu nodes"
              " x up to %zu events\n\n",
              kProcesses, s.exec.total_real_count(), kIntervalNodes,
              kEventsPerNode);
}

void BM_Naive(benchmark::State& state) {
  Substrate& s = substrate();
  const auto r = static_cast<Relation>(state.range(0));
  std::size_t i = 0;
  for (auto _ : state) {
    const bool v = evaluate_naive(r, s.intervals[2 * i], s.intervals[2 * i + 1],
                                  *s.ts, Semantics::Weak);
    benchmark::DoNotOptimize(v);
    i = (i + 1) % kPairs;
  }
}

void BM_ProxyNaive(benchmark::State& state) {
  Substrate& s = substrate();
  const auto r = static_cast<Relation>(state.range(0));
  std::size_t i = 0;
  for (auto _ : state) {
    const bool v = evaluate_proxy_naive(
        r, s.intervals[2 * i], s.intervals[2 * i + 1], *s.ts, Semantics::Weak);
    benchmark::DoNotOptimize(v);
    i = (i + 1) % kPairs;
  }
}

void BM_Fast(benchmark::State& state) {
  const auto cuts = cuts_pool();
  const auto r = static_cast<Relation>(state.range(0));
  ComparisonCounter counter;
  std::size_t i = 0;
  for (auto _ : state) {
    const bool v = evaluate_fast(r, *cuts[2 * i], *cuts[2 * i + 1], counter);
    benchmark::DoNotOptimize(v);
    i = (i + 1) % kPairs;
  }
}

void register_all() {
  for (int r = 0; r < 8; ++r) {
    const std::string name = to_string(static_cast<Relation>(r));
    benchmark::RegisterBenchmark(("naive/" + name).c_str(), BM_Naive)
        ->Arg(r);
    benchmark::RegisterBenchmark(("proxy/" + name).c_str(), BM_ProxyNaive)
        ->Arg(r);
    benchmark::RegisterBenchmark(("fast/" + name).c_str(), BM_Fast)->Arg(r);
  }
}

}  // namespace

int main(int argc, char** argv) {
  print_table1();
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
