// E12 (extension) — long-running soak for the retention subsystem
// (DESIGN.md §3.10). Two phases:
//
//   plateau   a ring under app + report faults, millions of events, the
//             log compacted at the composed watermark (monitor pin ∧ app
//             pin) on a fixed cadence: the live log must plateau instead
//             of growing with the event count, and a late-joining monitor
//             must converge across the watermark from the checkpoint.
//   identity  a deterministic application under report faults: the
//             Definite-firing sequence of the compacted faulty run must be
//             bit-identical to the clean, uncompacted run.
//
// Scale dials (for CI smoke vs full soak): SYNCON_SOAK_CYCLES,
// SYNCON_SOAK_PROCS, SYNCON_SOAK_SEED. scripts/ci_soak_smoke.sh runs a
// short configuration and asserts on the syncon_longrun_* gauges this
// binary publishes into the telemetry JSON (SYNCON_BENCH_JSON).
//
// Observability hooks (DESIGN.md §3.13): SYNCON_METRICS_PORT serves live
// /metrics + /flight scrapes on 127.0.0.1 during the plateau phase;
// SYNCON_CAUSAL_TRACE captures the identity phase's clean run with full
// observability and writes its causal span trace as OTLP-style JSON.
//
// Service phase (DESIGN.md §3.15, off by default): SYNCON_TENANTS=N runs N
// scripted faulty tenants through a sharded MonitorDaemon under a binding
// memory budget and folds the per-tenant verdict-identity result into the
// exit status (SYNCON_SERVICE_SHARDS / SYNCON_SERVICE_BUDGET to dial).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "bench_common.hpp"
#include "model/timestamps.hpp"
#include "obs/causal_trace.hpp"
#include "obs/serve.hpp"
#include "service/daemon.hpp"
#include "service/load.hpp"
#include "sim/soak.hpp"
#include "support/thread_pool.hpp"

namespace {

using namespace syncon;
using namespace syncon::bench;

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  return value == nullptr ? fallback : std::strtoull(value, nullptr, 10);
}

SoakConfig plateau_config() {
  SoakConfig cfg;
  cfg.processes = static_cast<std::size_t>(env_u64("SYNCON_SOAK_PROCS", 8));
  // ~16.5 events/cycle at 8 processes -> the default crosses 1M events.
  cfg.cycles = env_u64("SYNCON_SOAK_CYCLES", 62000);
  cfg.seed = env_u64("SYNCON_SOAK_SEED", 20260805);
  cfg.action_every = 8;
  cfg.recover_every = 32;
  cfg.compact_every = 64;
  cfg.resync_chunk = 512;
  cfg.app_link.drop_probability = 0.02;
  cfg.app_link.duplicate_probability = 0.01;
  cfg.app_link.reorder_probability = 0.05;
  cfg.app_link.min_delay = 1;
  cfg.app_link.max_delay = 24;
  cfg.report_link.drop_probability = 0.05;
  cfg.report_link.duplicate_probability = 0.02;
  cfg.report_link.reorder_probability = 0.05;
  cfg.report_link.min_delay = 1;
  cfg.report_link.max_delay = 40;
  cfg.late_joiner_probe = true;
  return cfg;
}

/// Bounded-memory check on the post-compaction samples: the steady-state
/// half must not exceed the warm-up half by more than slack — a live log
/// that tracks the event count would roughly double instead.
bool plateaus(const std::vector<std::size_t>& samples) {
  if (samples.size() < 4) return false;
  std::size_t first_max = 0, second_max = 0;
  const std::size_t half = samples.size() / 2;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    auto& side = i < half ? first_max : second_max;
    side = std::max(side, samples[i]);
  }
  return second_max <= first_max + first_max / 10 + 64;
}

int run() {
  banner("E12: bench_longrun", "extension: bounded-memory retention",
         "watermark compaction under faults: plateau + verdict identity");
  auto& registry = obs::MetricRegistry::global();

  // --- phase 1: plateau ---
  SoakConfig cfg = plateau_config();
  obs::ScrapeServer server(obs::ScrapeServer::Options{
      static_cast<std::uint16_t>(env_u64("SYNCON_METRICS_PORT", 0)),
      "bench_longrun"});
  if (std::getenv("SYNCON_METRICS_PORT") != nullptr && server.ok()) {
    std::printf("serving scrapes on http://127.0.0.1:%u\n", server.port());
    cfg.on_cycle = [&server](std::uint64_t cycle) {
      if (cycle % 64 == 0) server.serve_pending();
    };
  }
  const auto t0 = std::chrono::steady_clock::now();
  const SoakResult soak = run_soak(cfg);
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const bool plateau_ok = plateaus(soak.live_log_samples);

  TextTable table({"plateau phase", "value"});
  table.new_row().add_cell(std::string("cycles")).add_cell(cfg.cycles);
  table.new_row()
      .add_cell(std::string("events executed"))
      .add_cell(with_thousands(soak.executed_events));
  table.new_row()
      .add_cell(std::string("events reclaimed"))
      .add_cell(with_thousands(soak.reclaimed_events));
  table.new_row()
      .add_cell(std::string("compactions"))
      .add_cell(soak.compactions);
  table.new_row()
      .add_cell(std::string("live log peak / final"))
      .add_cell(std::to_string(soak.live_log_peak) + " / " +
                std::to_string(soak.live_log_final));
  table.new_row()
      .add_cell(std::string("plateau held"))
      .add_cell(std::string(plateau_ok ? "yes" : "NO"));
  table.new_row()
      .add_cell(std::string("definite / pending fires"))
      .add_cell(std::to_string(soak.definite_fires) + " / " +
                std::to_string(soak.pending_fires));
  table.new_row()
      .add_cell(std::string("reports dropped / duplicated"))
      .add_cell(std::to_string(soak.report_stats.dropped) + " / " +
                std::to_string(soak.report_stats.duplicated));
  table.new_row()
      .add_cell(std::string("resync rounds"))
      .add_cell(soak.resync_rounds);
  table.new_row()
      .add_cell(std::string("late joiner converged"))
      .add_cell(std::string(soak.late_joiner_converged ? "yes" : "NO"));
  table.new_row()
      .add_cell(std::string("checkpoint surface replies"))
      .add_cell(soak.surface_replies);
  table.new_row()
      .add_cell(std::string("events/s"))
      .add_cell(with_thousands(static_cast<std::uint64_t>(
          secs > 0 ? static_cast<double>(soak.executed_events) / secs : 0)));
  std::printf("%s\n", table.to_string().c_str());

  // --- phase 2: verdict identity (deterministic app, lossy reports) ---
  SoakConfig faulty = cfg;
  faulty.cycles = std::max<std::uint64_t>(2000, cfg.cycles / 20);
  faulty.app_link = LinkFaultConfig{};  // identical execution in both runs
  faulty.recover_every = 24;
  faulty.compact_every = 48;
  faulty.late_joiner_probe = false;
  SoakConfig clean = faulty;
  clean.report_link = LinkFaultConfig{};
  clean.compact_every = 0;  // uncompacted reference
  const char* causal_path = std::getenv("SYNCON_CAUSAL_TRACE");
  clean.capture_observability = causal_path != nullptr;

  const SoakResult faulty_run = run_soak(faulty);
  const SoakResult clean_run = run_soak(clean);

  if (causal_path != nullptr && clean_run.execution) {
    const Timestamps stamps(*clean_run.execution);
    obs::CausalTrace trace =
        obs::build_causal_trace(*clean_run.execution, stamps);
    obs::append_monitor_spans(trace, clean_run.waterfalls);
    obs::append_flight_spans(trace, clean_run.flight);
    std::string why;
    const bool consistent = obs::verify_causal_consistency(
        trace, *clean_run.execution, stamps, &why);
    std::ofstream out(causal_path);
    obs::write_causal_otlp(out, trace);
    std::printf("causal trace (%zu spans, consistency %s) -> %s\n",
                trace.spans.size(), consistent ? "verified" : why.c_str(),
                causal_path);
  }
  const bool identical =
      !clean_run.definite_verdicts.empty() &&
      faulty_run.definite_verdicts == clean_run.definite_verdicts;

  TextTable id_table({"identity phase", "value"});
  id_table.new_row()
      .add_cell(std::string("definite verdicts (clean / compacted)"))
      .add_cell(std::to_string(clean_run.definite_verdicts.size()) + " / " +
                std::to_string(faulty_run.definite_verdicts.size()));
  id_table.new_row()
      .add_cell(std::string("compacted run reclaimed"))
      .add_cell(with_thousands(faulty_run.reclaimed_events));
  id_table.new_row()
      .add_cell(std::string("verdict sequences bit-identical"))
      .add_cell(std::string(identical ? "yes" : "NO"));
  std::printf("%s\n", id_table.to_string().c_str());

  // --- phase 3 (opt-in): multi-tenant service soak ---
  bool service_ok = true;
  if (const std::uint64_t tenants = env_u64("SYNCON_TENANTS", 0);
      tenants > 0) {
    service::DaemonOptions daemon_options;
    daemon_options.shards =
        static_cast<std::size_t>(env_u64("SYNCON_SERVICE_SHARDS", 8));
    daemon_options.memory_budget_events =
        static_cast<std::size_t>(env_u64("SYNCON_SERVICE_BUDGET", 4096));
    service::MonitorDaemon daemon(daemon_options, ThreadPool::shared());

    service::ServiceLoadConfig load;
    load.tenants = static_cast<std::size_t>(tenants);
    load.seed = cfg.seed;
    load.release_finished = true;
    load.workload.report_link = cfg.report_link;
    const auto s0 = std::chrono::steady_clock::now();
    const service::ServiceLoadResult svc = run_service_load(load, daemon);
    const double svc_secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - s0)
            .count();
    daemon.publish_metrics();
    service_ok = svc.identity_ok && svc.daemon.frames_quarantined == 0 &&
                 (daemon_options.memory_budget_events == 0 ||
                  svc.daemon.reclaimed_events > 0);

    TextTable svc_table({"service phase", "value"});
    svc_table.new_row().add_cell(std::string("tenants")).add_cell(tenants);
    svc_table.new_row()
        .add_cell(std::string("events / frames"))
        .add_cell(with_thousands(svc.total_events) + " / " +
                  with_thousands(svc.total_frames));
    svc_table.new_row()
        .add_cell(std::string("verdicts (all bit-identical)"))
        .add_cell(std::to_string(svc.verdicts_total) + " / " +
                  std::string(svc.identity_ok ? "yes" : "NO"));
    svc_table.new_row()
        .add_cell(std::string("live-log peak / reclaimed"))
        .add_cell(std::to_string(svc.daemon.live_log_peak) + " / " +
                  with_thousands(svc.daemon.reclaimed_events));
    svc_table.new_row()
        .add_cell(std::string("frames/s"))
        .add_cell(with_thousands(static_cast<std::uint64_t>(
            svc_secs > 0 ? static_cast<double>(svc.total_frames) / svc_secs
                         : 0)));
    std::printf("%s\n", svc_table.to_string().c_str());

    registry.gauge("syncon_longrun_service_identity")
        .set(svc.identity_ok ? 1 : 0);
    registry.gauge("syncon_longrun_service_tenants")
        .set(static_cast<std::int64_t>(svc.tenants_run));
    registry.gauge("syncon_longrun_service_reclaimed")
        .set(static_cast<std::int64_t>(svc.daemon.reclaimed_events));
  }

  registry.gauge("syncon_longrun_executed_events")
      .set(static_cast<std::int64_t>(soak.executed_events));
  registry.gauge("syncon_longrun_live_log_peak")
      .set(static_cast<std::int64_t>(soak.live_log_peak));
  registry.gauge("syncon_longrun_live_log_final")
      .set(static_cast<std::int64_t>(soak.live_log_final));
  registry.gauge("syncon_longrun_plateau_ok").set(plateau_ok ? 1 : 0);
  registry.gauge("syncon_longrun_verdict_identity").set(identical ? 1 : 0);
  registry.gauge("syncon_longrun_late_joiner_converged")
      .set(soak.late_joiner_converged ? 1 : 0);
  registry.gauge("syncon_longrun_surface_replies")
      .set(static_cast<std::int64_t>(soak.surface_replies));

  const bool ok = plateau_ok && identical && soak.late_joiner_converged &&
                  soak.reclaimed_events > 0 && service_ok;
  if (!ok) std::printf("bench_longrun: FAILED retention guarantees\n");
  return ok ? 0 : 1;
}

}  // namespace

int main() {
  start_telemetry();
  const int rc = run();
  finish_telemetry("bench_longrun");
  return rc;
}
