// E10 (extension) — the consistent-global-state lattice substrate used for
// distributed predicate detection (the application context of the paper's
// reference [11]). Measures lattice size and Possibly/Definitely detection
// cost as trace size and coupling grow, and contrasts it with the paper's
// point: relation queries on nonatomic events stay LINEAR while state-space
// analysis explodes combinatorially.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "cuts/global_states.hpp"
#include "relations/fast.hpp"

namespace {

using namespace syncon;
using namespace syncon::bench;

WorkloadConfig lattice_workload(std::size_t processes, std::size_t events,
                                double send_p) {
  WorkloadConfig cfg;
  cfg.process_count = processes;
  cfg.events_per_process = events;
  cfg.send_probability = send_p;
  cfg.receive_probability = 0.9;
  cfg.topology = Topology::Random;
  cfg.seed = 1234;
  return cfg;
}

void print_lattice_sizes() {
  banner("E10: bench_global_states", "extension: predicate detection",
         "consistent-state lattice size vs message coupling");
  TextTable table({"|P|", "events/proc", "send prob", "events",
                   "consistent states", "states per event"});
  for (const double send_p : {0.0, 0.2, 0.5}) {
    for (const std::size_t events : {4u, 8u}) {
      const WorkloadConfig cfg = lattice_workload(3, events, send_p);
      const Execution exec = generate_execution(cfg);
      const Timestamps ts(exec);
      LatticeOptions opts;
      opts.max_states = 4u << 20;
      const std::size_t states = count_consistent_cuts(ts, opts);
      table.new_row()
          .add_cell(std::size_t{3})
          .add_cell(events)
          .add_cell(send_p, 1)
          .add_cell(exec.total_real_count())
          .add_cell(states)
          .add_cell(static_cast<double>(states) /
                        static_cast<double>(exec.total_real_count()),
                    1);
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("messages prune the lattice (receives force sender progress), "
              "but growth stays\ncombinatorial — which is why the paper's "
              "linear per-relation tests matter.\n\n");
}

void BM_LatticeEnumeration(benchmark::State& state) {
  const auto events = static_cast<std::size_t>(state.range(0));
  const Execution exec =
      generate_execution(lattice_workload(3, events, 0.3));
  const Timestamps ts(exec);
  LatticeOptions opts;
  opts.max_states = 4u << 20;
  std::size_t states = 0;
  for (auto _ : state) {
    states = count_consistent_cuts(ts, opts);
    benchmark::DoNotOptimize(states);
  }
  state.SetLabel(std::to_string(states) + " states");
}

void BM_PossiblyDetection(benchmark::State& state) {
  const auto events = static_cast<std::size_t>(state.range(0));
  const Execution exec =
      generate_execution(lattice_workload(3, events, 0.3));
  const Timestamps ts(exec);
  LatticeOptions opts;
  opts.max_states = 4u << 20;
  // A predicate that never holds — worst case, full exploration.
  const CutPredicate phi = [](const Cut& cut) {
    return cut.counts()[0] == 0;  // impossible
  };
  for (auto _ : state) {
    const bool v = possibly(ts, phi, opts);
    benchmark::DoNotOptimize(v);
  }
}

void BM_DefinitelyDetection(benchmark::State& state) {
  const auto events = static_cast<std::size_t>(state.range(0));
  const Execution exec =
      generate_execution(lattice_workload(3, events, 0.3));
  const Timestamps ts(exec);
  LatticeOptions opts;
  opts.max_states = 4u << 20;
  const CutPredicate phi = [](const Cut& cut) {
    return cut.counts()[0] >= 3 && cut.counts()[1] >= 3;
  };
  for (auto _ : state) {
    const bool v = definitely(ts, phi, opts);
    benchmark::DoNotOptimize(v);
  }
}

BENCHMARK(BM_LatticeEnumeration)->Arg(4)->Arg(8)->Arg(12);
BENCHMARK(BM_PossiblyDetection)->Arg(4)->Arg(8);
BENCHMARK(BM_DefinitelyDetection)->Arg(4)->Arg(8);

}  // namespace

int main(int argc, char** argv) {
  print_lattice_sizes();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
