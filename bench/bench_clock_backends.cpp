// E-clock — pluggable clock representations under scale (DESIGN.md §3.11):
// sweeps |P| = 64 / 256 / 1024 over the three ClockRep backends measuring
//
//   * the online monotone stamping sweep (per-process running clocks:
//     tick the owner, join the piggybacked clock) — the workload where the
//     TreeClock's pruned joins are sublinear in |P| while the dense backend
//     pays O(|P|) per receive;
//   * offline BasicTimestamps construction (per-event stored clocks — the
//     copies are O(|P|) for every backend, so this column shows the honest
//     overhead, not a win);
//   * the Theorem 19 probe over each backend's cut timestamps (component
//     reads through at(); should be flat across backends);
//   * wire bytes per message for the compressed codec against raw dense
//     serialization.
//
// The stamping workload is locality-heavy: processes talk almost entirely
// within a small cluster, with rare cross-cluster messages. That keeps the
// per-join changed-set small — the regime real systems live in and the one
// arXiv 2201.06325's pruning exploits. (A fully-mixed workload makes every
// join touch ~|P| components, where no sparse representation can beat a
// sequential dense max-loop; the table is only meaningful because the
// script's causal fan-in is sparse.)
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "model/clock.hpp"
#include "obs/metrics.hpp"
#include "model/compressed_clock.hpp"
#include "model/tree_clock.hpp"
#include "model/vector_clock.hpp"
#include "online/wire_codec.hpp"
#include "relations/fast.hpp"

namespace {

using namespace syncon;
using namespace syncon::bench;

constexpr int kRoundsPerProcess = 96;

// One step of the online sweep: process `p` executes an event and (src !=
// kNoSrc) absorbs the current clock of process `src`.
struct Step {
  std::uint32_t p;
  std::uint32_t src;
  static constexpr std::uint32_t kNoSrc = 0xffffffffu;
};

constexpr std::uint32_t kClusterSize = 4;

std::vector<Step> cluster_script(std::size_t procs, std::uint64_t seed) {
  Xoshiro256StarStar rng(seed);
  std::vector<Step> script;
  script.reserve(procs * kRoundsPerProcess);
  const auto n = static_cast<std::uint32_t>(procs);
  for (int round = 0; round < kRoundsPerProcess; ++round) {
    for (std::uint32_t p = 0; p < n; ++p) {
      Step s{p, Step::kNoSrc};
      const std::uint64_t roll = rng.below(512);
      const std::uint32_t base = (p / kClusterSize) * kClusterSize;
      const std::uint32_t width = std::min(kClusterSize, n - base);
      if (roll < 448) {
        // Ring neighbor within the cluster.
        s.src = base + (p - base + width - 1) % width;
        if (s.src == p) s.src = Step::kNoSrc;
      } else if (roll < 449) {
        // Rare remote contact. Kept rare on purpose: remote knowledge is
        // re-gossiped through every cluster merge, so even a 3% remote rate
        // makes each join's changed-set approach |P| within a few rounds.
        s.src = static_cast<std::uint32_t>(rng.below(procs));
        if (s.src == p) s.src = Step::kNoSrc;
      }
      script.push_back(s);
    }
  }
  return script;
}

struct SweepResult {
  std::uint64_t checksum = 0;
  double seconds = 0;  // stamping loop only — construction excluded
};

template <ClockRep Clock>
SweepResult run_sweep(std::size_t procs, const std::vector<Step>& script) {
  std::vector<Clock> cur(procs, Clock(procs, 1));
  const auto start = std::chrono::steady_clock::now();
  for (const Step& s : script) {
    Clock& t = cur[s.p];
    t.tick(s.p);
    if (s.src != Step::kNoSrc) t.merge_max(cur[s.src]);
  }
  const auto stop = std::chrono::steady_clock::now();
  SweepResult r;
  for (std::size_t p = 0; p < procs; ++p) r.checksum += cur[p].at(p);
  r.seconds = std::chrono::duration<double>(stop - start).count();
  return r;
}

template <ClockRep Clock>
void BM_OnlineStampSweep(benchmark::State& state) {
  const auto procs = static_cast<std::size_t>(state.range(0));
  const std::vector<Step> script = cluster_script(procs, 42);
  // All backends must agree before we time anything.
  const std::uint64_t expect = run_sweep<VectorClock>(procs, script).checksum;
  if (run_sweep<Clock>(procs, script).checksum != expect) {
    state.SkipWithError("backend sweep diverged from dense");
    return;
  }
  // Manual timing: an online monitor constructs its clocks once and stamps
  // forever, so the per-iteration construction must not count.
  for (auto _ : state) {
    const SweepResult r = run_sweep<Clock>(procs, script);
    benchmark::DoNotOptimize(r.checksum);
    state.SetIterationTime(r.seconds);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(script.size()));
}

template <ClockRep Clock>
void BM_OfflineTimestamps(benchmark::State& state) {
  const auto procs = static_cast<std::size_t>(state.range(0));
  const Execution exec = generate_execution(standard_workload(procs, 8));
  for (auto _ : state) {
    const BasicTimestamps<Clock> ts(exec);
    benchmark::DoNotOptimize(ts.forward_ref(exec.topological_order().back()));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(exec.topological_order().size()));
}

template <ClockRep Clock>
void BM_Theorem19Probe(benchmark::State& state) {
  const auto procs = static_cast<std::size_t>(state.range(0));
  const Execution exec = generate_execution(standard_workload(procs, 8));
  const BasicTimestamps<Clock> ts(exec);
  Xoshiro256StarStar rng(271);
  const NonatomicEvent x = random_interval(exec, rng, standard_spec(8, 3), "X");
  const NonatomicEvent y = random_interval(exec, rng, standard_spec(8, 3), "Y");
  const BasicEventCuts<Clock> xc(ts, x), yc(ts, y);
  ComparisonCounter counter;
  for (auto _ : state) {
    const bool v = theorem19_violated(yc.union_past(), xc.intersect_future(),
                                      x.node_set(), counter);
    benchmark::DoNotOptimize(v);
  }
}

void BM_WireBytesPerMessage(benchmark::State& state) {
  const auto procs = static_cast<std::size_t>(state.range(0));
  const std::vector<Step> script = cluster_script(procs, 43);
  // Replay the sweep once, recording the per-process clocks message by
  // message on one link, then measure codec throughput and bytes.
  std::vector<VectorClock> cur(procs, VectorClock(procs, 1));
  std::vector<WireMessage> stream;
  for (const Step& s : script) {
    cur[s.p].tick(s.p);
    if (s.src != Step::kNoSrc) cur[s.p].merge_max(cur[s.src]);
    if (s.p == 0) {
      stream.push_back(WireMessage{
          {0, static_cast<EventIndex>(stream.size() + 1)}, cur[0]});
    }
  }
  std::size_t total_bytes = 0;
  for (auto _ : state) {
    LinkEncoder enc(procs, 16);
    std::vector<std::uint8_t> bytes;
    for (const WireMessage& m : stream) enc.encode(m, bytes);
    total_bytes = bytes.size();
    benchmark::DoNotOptimize(bytes.data());
  }
  std::size_t dense_bytes = 0;
  for (const WireMessage& m : stream) {
    dense_bytes += sizeof(EventId) + m.clock.size() * sizeof(ClockValue);
  }
  const double ratio_pct =
      100.0 * static_cast<double>(total_bytes) /
      static_cast<double>(dense_bytes == 0 ? 1 : dense_bytes);
  state.counters["bytes_per_msg"] = benchmark::Counter(
      static_cast<double>(total_bytes) / static_cast<double>(stream.size()));
  state.counters["dense_bytes_per_msg"] = benchmark::Counter(
      static_cast<double>(dense_bytes) / static_cast<double>(stream.size()));
  state.counters["delta_vs_dense_pct"] = benchmark::Counter(ratio_pct);
  // Publish the per-|P| compression ratio into the telemetry snapshot
  // (SYNCON_BENCH_JSON) alongside the codec's own frame/byte counters,
  // which the timed loop above populated via LinkEncoder::encode.
  if (obs::enabled()) {
    obs::MetricRegistry::global()
        .gauge("syncon_wire_delta_vs_dense_ratio_pct_p" +
               std::to_string(procs))
        .set(ratio_pct);
  }
}

void print_backend_table() {
  banner("E-clock: bench_clock_backends", "clock concept (DESIGN.md §3.11)",
         "online stamping sweep ns/event per backend, |P| = 64/256/1024");
  TextTable table({"|P|", "dense ns/event", "tree ns/event", "tree causal",
                   "compressed ns/event"});
  for (const std::size_t procs : {64u, 256u, 1024u}) {
    const std::vector<Step> script = cluster_script(procs, 42);
    const int reps = procs >= 1024 ? 3 : 10;
    auto time_one = [&](auto tag) {
      using Clock = decltype(tag);
      double seconds = 0;
      std::uint64_t sink = 0;
      for (int i = 0; i < reps; ++i) {
        const SweepResult r = run_sweep<Clock>(procs, script);
        sink += r.checksum;
        seconds += r.seconds;
      }
      benchmark::DoNotOptimize(sink);
      return seconds * 1e9 / static_cast<double>(reps) /
             static_cast<double>(script.size());
    };
    // The sweep keeps every TreeClock on its causal fast path; report it so
    // a regression that silently demotes to dense shows up here.
    std::vector<TreeClock> probe(procs, TreeClock(procs, 1));
    for (const Step& s : script) {
      probe[s.p].tick(s.p);
      if (s.src != Step::kNoSrc) probe[s.p].merge_max(probe[s.src]);
    }
    bool causal = true;
    for (const TreeClock& tc : probe) causal = causal && tc.causal();
    table.new_row()
        .add_cell(procs)
        .add_cell(time_one(VectorClock{}), 1)
        .add_cell(time_one(TreeClock{}), 1)
        .add_cell(causal ? 1 : 0)
        .add_cell(time_one(CompressedClock{}), 1);
  }
  std::printf("%s\n", table.to_string().c_str());
}

BENCHMARK_TEMPLATE(BM_OnlineStampSweep, VectorClock)
    ->Arg(64)->Arg(256)->Arg(1024)->UseManualTime();
BENCHMARK_TEMPLATE(BM_OnlineStampSweep, TreeClock)
    ->Arg(64)->Arg(256)->Arg(1024)->UseManualTime();
BENCHMARK_TEMPLATE(BM_OnlineStampSweep, CompressedClock)
    ->Arg(64)->Arg(256)->Arg(1024)->UseManualTime();
BENCHMARK_TEMPLATE(BM_OfflineTimestamps, VectorClock)->Arg(64)->Arg(256);
BENCHMARK_TEMPLATE(BM_OfflineTimestamps, TreeClock)->Arg(64)->Arg(256);
BENCHMARK_TEMPLATE(BM_OfflineTimestamps, CompressedClock)->Arg(64)->Arg(256);
BENCHMARK_TEMPLATE(BM_Theorem19Probe, VectorClock)->Arg(64)->Arg(1024);
BENCHMARK_TEMPLATE(BM_Theorem19Probe, TreeClock)->Arg(64)->Arg(1024);
BENCHMARK_TEMPLATE(BM_Theorem19Probe, CompressedClock)->Arg(64)->Arg(1024);
BENCHMARK(BM_WireBytesPerMessage)->Arg(64)->Arg(256)->Arg(1024);

}  // namespace

int main(int argc, char** argv) {
  print_backend_table();
  syncon::bench::start_telemetry();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  syncon::bench::finish_telemetry("bench_clock_backends");
  benchmark::Shutdown();
  return 0;
}
