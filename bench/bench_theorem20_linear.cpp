// E4 — reproduces Theorem 20, the paper's headline result: per-relation
// integer-comparison budgets for evaluating R(X, Y).
//
// For every relation the harness reports, over a large random pair sample,
// the measured worst-case comparisons next to (a) the bound we prove sound
// (R1/R1'/R4/R4': min, R2/R3: |N_X|, R2'/R3': |N_Y|) and (b) the bound as
// literally stated in the paper (min for R2'/R3 as well) — the two differ
// only where DESIGN.md §3.3b documents the paper's overclaim. It also
// reports the speedup over the |N_X|·|N_Y| proxy-naive evaluation the paper
// takes as its baseline.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "relations/fast.hpp"
#include "relations/naive.hpp"
#include "support/stats.hpp"

namespace {

using namespace syncon;
using namespace syncon::bench;

constexpr std::size_t kProcesses = 48;
constexpr std::size_t kEventsPerProcess = 100;
constexpr std::size_t kNX = 24;  // nodes spanned by X
constexpr std::size_t kNY = 12;  // nodes spanned by Y

Substrate& substrate() {
  static Substrate s(standard_workload(kProcesses, kEventsPerProcess),
                     standard_spec(2, 2), 2, 2718);
  return s;
}

void print_theorem20() {
  banner("E4: bench_theorem20_linear", "Theorem 20 (main result)",
         "per-relation comparison budgets, measured vs bounds");
  Substrate& s = substrate();
  Xoshiro256StarStar rng(31337);
  std::printf("|N_X| = %zu, |N_Y| = %zu; 500 random pairs per relation\n\n",
              kNX, kNY);

  TextTable table({"relation", "bound (ours)", "bound (paper)",
                   "max cmps", "mean cmps", ">ours", "proxy-naive checks",
                   "speedup (ops)"});
  for (const Relation r : kAllRelations) {
    IntHistogram fast_hist;
    std::uint64_t proxy_checks = 0;
    std::uint64_t bound_ours = 0, bound_paper = 0;
    for (int trial = 0; trial < 500; ++trial) {
      const NonatomicEvent x =
          random_interval(s.exec, rng, standard_spec(kNX, 3), "X");
      const NonatomicEvent y =
          random_interval(s.exec, rng, standard_spec(kNY, 3), "Y");
      const EventCuts xc(*s.ts, x), yc(*s.ts, y);
      ComparisonCounter fast_c, proxy_c;
      const bool v_fast = evaluate_fast(r, xc, yc, fast_c);
      const bool v_proxy =
          evaluate_proxy_naive(r, x, y, *s.ts, Semantics::Weak, &proxy_c);
      if (v_fast != v_proxy) {
        std::printf("DISAGREEMENT at %s — reproduction bug!\n", to_string(r));
      }
      fast_hist.add(fast_c.integer_comparisons);
      proxy_checks += proxy_c.causality_checks;
      bound_ours = theorem20_bound(r, x.node_count(), y.node_count());
      bound_paper = theorem20_paper_bound(r, x.node_count(), y.node_count());
    }
    const double proxy_mean = static_cast<double>(proxy_checks) / 500.0;
    table.new_row()
        .add_cell(std::string(to_string(r)))
        .add_cell(bound_ours)
        .add_cell(bound_paper)
        .add_cell(fast_hist.max_value())
        .add_cell(fast_hist.mean(), 2)
        .add_cell(fast_hist.count_above(bound_ours))
        .add_cell(proxy_mean, 1)
        .add_cell(proxy_mean / fast_hist.mean(), 1);
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "note: for R3 the sound bound is |N_X| and for R2' it is |N_Y| — the\n"
      "paper's min() claim for these two is refuted by the counterexamples\n"
      "in tests/relations_probe_side_test.cpp (DESIGN.md §3.3b).\n\n");
}

// How often would the paper's min-side probing actually return a wrong
// verdict for R2'/R3? (It errs only when the relation holds but the
// violation is invisible on the cheaper side.)
void print_probe_side_error_rate() {
  Substrate& s = substrate();
  Xoshiro256StarStar rng(424242);
  TextTable table({"relation", "pairs", "holds", "min-probe wrong",
                   "error rate when holds"});
  struct Case {
    Relation r;
    bool probe_y_cheaper;  // with |N_Y| < |N_X| the min side is N_Y
  };
  constexpr int kTrials = 2000;
  for (const Relation r : {Relation::R3, Relation::R2p}) {
    // Size the pair so min() picks the UNSOUND side: N_Y for R3 (needs
    // |N_Y| < |N_X|), N_X for R2' (needs |N_X| < |N_Y|).
    const std::size_t span_x = r == Relation::R3 ? kNX : kNY;
    const std::size_t span_y = r == Relation::R3 ? kNY : kNX;
    int holds = 0, wrong = 0;
    for (int t = 0; t < kTrials; ++t) {
      const NonatomicEvent x =
          random_interval(s.exec, rng, standard_spec(span_x, 3), "X");
      const NonatomicEvent y =
          random_interval(s.exec, rng, standard_spec(span_y, 3), "Y");
      const EventCuts xc(*s.ts, x), yc(*s.ts, y);
      ComparisonCounter c;
      const bool truth = evaluate_fast(r, xc, yc, c);
      // The paper's min() probing: choose the smaller node set regardless
      // of soundness.
      const auto& probe = x.node_count() <= y.node_count() ? x.node_set()
                                                           : y.node_set();
      const VectorClock& down =
          r == Relation::R3 ? yc.intersect_past() : yc.union_past();
      const VectorClock& up =
          r == Relation::R3 ? xc.intersect_future() : xc.union_future();
      const bool min_probe = theorem19_violated(down, up, probe, c);
      holds += truth ? 1 : 0;
      wrong += (min_probe != truth) ? 1 : 0;
    }
    table.new_row()
        .add_cell(std::string(to_string(r)))
        .add_cell(kTrials)
        .add_cell(holds)
        .add_cell(wrong)
        .add_cell(holds > 0 ? 100.0 * wrong / holds : 0.0, 1);
  }
  std::printf("min-side probing error rate (pairs sized so min() picks the "
              "unsound side: %zu vs %zu nodes):\n%s\n",
              kNX, kNY, table.to_string().c_str());
}

void BM_FastRelation(benchmark::State& state) {
  Substrate& s = substrate();
  const auto r = static_cast<Relation>(state.range(0));
  Xoshiro256StarStar rng(41);
  const NonatomicEvent x =
      random_interval(s.exec, rng, standard_spec(kNX, 3), "X");
  const NonatomicEvent y =
      random_interval(s.exec, rng, standard_spec(kNY, 3), "Y");
  const EventCuts xc(*s.ts, x), yc(*s.ts, y);
  ComparisonCounter counter;
  for (auto _ : state) {
    const bool v = evaluate_fast(r, xc, yc, counter);
    benchmark::DoNotOptimize(v);
  }
}

void BM_ProxyNaiveRelation(benchmark::State& state) {
  Substrate& s = substrate();
  const auto r = static_cast<Relation>(state.range(0));
  Xoshiro256StarStar rng(41);
  const NonatomicEvent x =
      random_interval(s.exec, rng, standard_spec(kNX, 3), "X");
  const NonatomicEvent y =
      random_interval(s.exec, rng, standard_spec(kNY, 3), "Y");
  for (auto _ : state) {
    const bool v =
        evaluate_proxy_naive(r, x, y, *s.ts, Semantics::Weak);
    benchmark::DoNotOptimize(v);
  }
}

void register_all() {
  for (int r = 0; r < 8; ++r) {
    const std::string name = to_string(static_cast<Relation>(r));
    benchmark::RegisterBenchmark(("fast/" + name).c_str(), BM_FastRelation)
        ->Arg(r);
    benchmark::RegisterBenchmark(("proxy/" + name).c_str(),
                                 BM_ProxyNaiveRelation)
        ->Arg(r);
  }
}

}  // namespace

int main(int argc, char** argv) {
  print_theorem20();
  print_probe_side_error_rate();
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
