// E8 — end-to-end scaling implied by the abstract's efficiency claim:
// relation-evaluation cost as the system grows. Sweeps the process count
// and the interval node-spans, reporting operations per query for the
// |X|·|Y| naive, |N_X|·|N_Y| proxy-naive and linear fast tiers, including
// where the tiers' costs cross over.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "relations/fast.hpp"
#include "relations/naive.hpp"
#include "sim/metrics.hpp"

namespace {

using namespace syncon;
using namespace syncon::bench;

void print_scaling() {
  banner("E8: bench_scaling", "abstract / Section 1 efficiency claim",
         "operation counts per relation query as |N_X| = |N_Y| grows");
  TextTable table({"|P|", "|N|", "|X| events", "naive checks",
                   "proxy checks", "fast cmps", "fast vs proxy", "fast vs naive"});
  for (const std::size_t processes : {8u, 16u, 32u, 64u, 128u}) {
    Substrate s(standard_workload(processes, 60, 7000 + processes),
                standard_spec(2, 2), 2, 1);
    const std::size_t span = processes / 2;
    Xoshiro256StarStar rng(17);
    ComparisonCounter naive_c, proxy_c, fast_c;
    std::size_t x_events = 0;
    const int kTrials = 100;
    for (int t = 0; t < kTrials; ++t) {
      const NonatomicEvent x =
          random_interval(s.exec, rng, standard_spec(span, 4), "X");
      const NonatomicEvent y =
          random_interval(s.exec, rng, standard_spec(span, 4), "Y");
      x_events += x.size();
      const EventCuts xc(*s.ts, x), yc(*s.ts, y);
      for (const Relation r : kAllRelations) {
        (void)evaluate_naive(r, x, y, *s.ts, Semantics::Weak, &naive_c);
        (void)evaluate_proxy_naive(r, x, y, *s.ts, Semantics::Weak,
                                   &proxy_c);
        (void)evaluate_fast(r, xc, yc, fast_c);
      }
    }
    const double queries = kTrials * 8.0;
    const double naive = static_cast<double>(naive_c.causality_checks) / queries;
    const double proxy = static_cast<double>(proxy_c.causality_checks) / queries;
    const double fast = static_cast<double>(fast_c.integer_comparisons) / queries;
    table.new_row()
        .add_cell(processes)
        .add_cell(span)
        .add_cell(static_cast<double>(x_events) / kTrials, 1)
        .add_cell(naive, 1)
        .add_cell(proxy, 1)
        .add_cell(fast, 1)
        .add_cell(proxy / fast, 1)
        .add_cell(naive / fast, 1);
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("expected shape: fast stays linear in |N|, so 'fast vs proxy' "
              "grows ~linearly with |N|\nand 'fast vs naive' faster still "
              "(|X| > |N_X|).\n\n");

  // Characterize the workloads so the numbers above are interpretable.
  TextTable traits({"|P|", "events", "msg density", "concurrency",
                    "critical path", "parallelism"});
  for (const std::size_t processes : {8u, 32u, 128u}) {
    Substrate s(standard_workload(processes, 60, 7000 + processes),
                standard_spec(2, 2), 2, 1);
    const ExecutionMetrics m = measure_execution(*s.ts, 10000, 5);
    traits.new_row()
        .add_cell(processes)
        .add_cell(m.events)
        .add_cell(m.message_density, 2)
        .add_cell(m.concurrency_ratio, 2)
        .add_cell(m.critical_path)
        .add_cell(m.parallelism, 1);
  }
  std::printf("workload characterization:\n%s\n", traits.to_string().c_str());
}

// Wall-clock per query at growing scale, all tiers.
void BM_QueryAtScale(benchmark::State& state) {
  const auto processes = static_cast<std::size_t>(state.range(0));
  const int tier = static_cast<int>(state.range(1));  // 0 naive 1 proxy 2 fast
  static std::vector<std::unique_ptr<Substrate>> cache;
  Substrate* sub = nullptr;
  for (auto& c : cache) {
    if (c->exec.process_count() == processes) sub = c.get();
  }
  if (sub == nullptr) {
    cache.push_back(std::make_unique<Substrate>(
        standard_workload(processes, 60, 7000 + processes),
        standard_spec(processes / 2, 4), 8, 3));
    sub = cache.back().get();
  }
  const NonatomicEvent& x = sub->intervals[0];
  const NonatomicEvent& y = sub->intervals[1];
  const EventCuts xc(*sub->ts, x), yc(*sub->ts, y);
  ComparisonCounter counter;
  int r = 0;
  for (auto _ : state) {
    const auto rel = static_cast<Relation>(r);
    bool v = false;
    switch (tier) {
      case 0:
        v = evaluate_naive(rel, x, y, *sub->ts, Semantics::Weak);
        break;
      case 1:
        v = evaluate_proxy_naive(rel, x, y, *sub->ts, Semantics::Weak);
        break;
      default:
        v = evaluate_fast(rel, xc, yc, counter);
    }
    benchmark::DoNotOptimize(v);
    r = (r + 1) % 8;
  }
  static const char* tiers[] = {"naive", "proxy", "fast"};
  state.SetLabel(std::string(tiers[tier]) + " |P|=" +
                 std::to_string(processes));
}

void register_scaling() {
  for (const std::int64_t p : {16, 64, 128}) {
    for (const std::int64_t tier : {0, 1, 2}) {
      benchmark::RegisterBenchmark("query_at_scale", BM_QueryAtScale)
          ->Args({p, tier});
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  print_scaling();
  register_scaling();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
