// E5 — reproduces Figures 1 and 3: the proxies L_X / U_X of a nonatomic
// event (Figure 1) and the four cuts of each proxy (Figure 3). Prints the
// replica structures and benches proxy construction under both Defn 2 and
// Defn 3.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "fig_render.hpp"
#include "sim/scenarios.hpp"

namespace {

using namespace syncon;
using namespace syncon::bench;

void print_figures() {
  banner("E5: bench_fig13_proxies", "Figures 1 and 3",
         "proxies L_X / U_X and the cuts of each proxy");
  const Scenario fig = make_figure2();
  const Timestamps ts(fig.execution());
  const NonatomicEvent& x = fig.interval("X");
  const NonatomicEvent& lx = fig.interval("L(X)");
  const NonatomicEvent& ux = fig.interval("U(X)");

  std::printf("Figure 1 content — X and its proxies (Defn 2):\n");
  std::printf("  X    = { ");
  for (const EventId& e : x.events()) std::printf("%u.%u ", e.process, e.index);
  std::printf("}\n  L_X  = { ");
  for (const EventId& e : lx.events())
    std::printf("%u.%u ", e.process, e.index);
  std::printf("}\n  U_X  = { ");
  for (const EventId& e : ux.events())
    std::printf("%u.%u ", e.process, e.index);
  std::printf("}\n\n");

  for (const NonatomicEvent* proxy : {&lx, &ux}) {
    const EventCuts cuts(ts, *proxy);
    std::printf("Figure 3 content — cuts of %s:\n", proxy->label().c_str());
    const std::vector<std::pair<std::string, const VectorClock*>> rows = {
        {"C1", &cuts.intersect_past()},
        {"C2", &cuts.union_past()},
        {"C3", &cuts.intersect_future()},
        {"C4", &cuts.union_future()},
    };
    render_event_and_cuts(fig.execution(), *proxy, rows);
    std::printf("\n");
  }

  // Defn 3 proxies on the same poset: X is a causal chain head-to-tail, so
  // the global extrema exist.
  const auto l3 = x.proxy_global(ProxyKind::Begin, ts);
  const auto u3 = x.proxy_global(ProxyKind::End, ts);
  std::printf("Defn 3 proxies: L3 %s, U3 %s\n\n",
              l3 ? ("= {" + std::to_string(l3->events()[0].process) + "." +
                    std::to_string(l3->events()[0].index) + "}")
                       .c_str()
                 : "does not exist",
              u3 ? ("= {" + std::to_string(u3->events()[0].process) + "." +
                    std::to_string(u3->events()[0].index) + "}")
                       .c_str()
                 : "does not exist");
}

void BM_ProxyPerNode(benchmark::State& state) {
  static Substrate s(standard_workload(32, 120), standard_spec(16, 8), 8,
                     606);
  const auto idx = static_cast<std::size_t>(state.range(0));
  const NonatomicEvent& x = s.intervals[idx];
  for (auto _ : state) {
    const NonatomicEvent l = x.proxy_per_node(ProxyKind::Begin);
    benchmark::DoNotOptimize(l.size());
  }
  state.SetLabel("|X|=" + std::to_string(x.size()));
}

void BM_ProxyGlobal(benchmark::State& state) {
  static Substrate s(standard_workload(32, 120), standard_spec(16, 8), 8,
                     606);
  const auto idx = static_cast<std::size_t>(state.range(0));
  const NonatomicEvent& x = s.intervals[idx];
  for (auto _ : state) {
    const auto l = x.proxy_global(ProxyKind::Begin, *s.ts);
    benchmark::DoNotOptimize(l.has_value());
  }
  state.SetLabel("|X|=" + std::to_string(x.size()));
}

void BM_ProxyCuts(benchmark::State& state) {
  static Substrate s(standard_workload(32, 120), standard_spec(16, 8), 8,
                     606);
  const auto idx = static_cast<std::size_t>(state.range(0));
  const NonatomicEvent proxy =
      s.intervals[idx].proxy_per_node(ProxyKind::End);
  for (auto _ : state) {
    const EventCuts cuts(*s.ts, proxy);
    benchmark::DoNotOptimize(cuts.union_future()[0]);
  }
}

BENCHMARK(BM_ProxyPerNode)->DenseRange(0, 3);
BENCHMARK(BM_ProxyGlobal)->DenseRange(0, 3);
BENCHMARK(BM_ProxyCuts)->DenseRange(0, 3);

}  // namespace

int main(int argc, char** argv) {
  print_figures();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
