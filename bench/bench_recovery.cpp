// Crash/recovery sweep for the durability subsystem (DESIGN.md §3.12).
//
// Each iteration kills a DurableSystem and a DurableMonitor at a
// seeded-random operation count while the monitor feed suffers ≥15%
// drop/duplicate/reorder and the storage backend injects torn tails and
// bit flips, recovers from the newest valid snapshot plus the surviving
// WAL tail, and checks the recovered run against an uninterrupted
// fault-free reference: per-event clocks and physical times on the system
// side, all 32 relation verdicts (Definite) on the monitor side.
//
// Scale dials for CI smoke vs a long sweep: SYNCON_RECOVERY_ITERS,
// SYNCON_RECOVERY_SEED. scripts/ci_recovery_smoke.sh runs a pinned-seed
// configuration and asserts on the syncon_recovery_* gauges this binary
// publishes into the telemetry JSON (SYNCON_BENCH_JSON), including a
// wall-clock budget on the worst recovery constructor scan.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "obs/flight.hpp"
#include "online/online_monitor.hpp"
#include "online/online_system.hpp"
#include "relations/relation.hpp"
#include "sim/faulty_channel.hpp"
#include "store/durable.hpp"
#include "store/storage.hpp"

namespace {

using namespace syncon;
using namespace syncon::bench;

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  return value == nullptr ? fallback : std::strtoull(value, nullptr, 10);
}

struct Firing {
  bool holds = false;
  Confidence conf = Confidence::Definite;

  friend bool operator==(const Firing&, const Firing&) = default;
};

std::vector<Firing> verdicts_of(OnlineMonitor& mon) {
  std::vector<Firing> fired;
  for (const RelationId& id : all_relation_ids()) {
    mon.watch(id, "X", "Y",
              [&fired](const std::string&, const std::string&, bool holds,
                       Confidence conf) { fired.push_back({holds, conf}); });
  }
  return fired;
}

DurabilityPolicy sweep_policy(Xoshiro256StarStar& rng) {
  DurabilityPolicy policy;
  policy.sync_every = 1 + static_cast<std::uint32_t>(rng.below(4));
  policy.segment_records = 4 + static_cast<std::uint32_t>(rng.below(12));
  policy.snapshot_every = 1;
  policy.full_interval = 1 + static_cast<std::uint32_t>(rng.below(8));
  return policy;
}

/// Running tally across the sweep; `identity` goes (and stays) false on the
/// first divergence from the uninterrupted reference.
struct SweepStats {
  bool identity = true;
  std::uint64_t runs = 0;
  std::uint64_t crashes = 0;
  std::uint64_t recoveries = 0;  // recoveries that found durable state
  std::uint64_t events_replayed = 0;
  std::uint64_t events_skipped = 0;
  std::uint64_t recovery_micros_max = 0;
  std::uint64_t recovery_micros_total = 0;

  void absorb(const RecoveryStats& r) {
    if (!r.recovered) return;  // fresh start: nothing was scanned
    ++recoveries;
    events_replayed += r.events_replayed;
    events_skipped += r.events_skipped;
    recovery_micros_max = std::max(recovery_micros_max, r.recovery_micros);
    recovery_micros_total += r.recovery_micros;
  }
};

/// System leg: crash a journaling DurableSystem mid-drive (compaction in
/// the mix), recover, finish, and compare clocks/times against a replay
/// that never crashed.
void system_leg(std::uint64_t seed, SweepStats& stats) {
  Xoshiro256StarStar rng(seed);
  const Execution exec =
      generate_execution(standard_workload(4, 24, seed * 3 + 1));
  const OnlineSystem oracle = replay(exec);

  SimFaultConfig faults;
  faults.torn_tail = 0.6;
  faults.bit_flip = 0.1;
  faults.seed = seed;
  SimStorage storage(faults);
  const DurabilityPolicy policy = sweep_policy(rng);
  auto sys =
      std::make_unique<DurableSystem>(exec.process_count(), storage, policy);
  std::set<EventId> is_source;
  for (const Message& msg : exec.messages()) is_source.insert(msg.source);
  const std::vector<EventId>& order = exec.topological_order();
  storage.crash_after_ops(1 + rng.below(order.size()));
  std::size_t i = 0;
  while (i < order.size()) {
    const EventId e = order[i];
    try {
      if (e.index > sys->system().executed(e.process)) {
        const auto incoming = exec.incoming(e);
        if (!incoming.empty()) {
          std::vector<WireMessage> msgs;
          for (const EventId& src : incoming) {
            msgs.push_back(sys->system().wire_of(src));
          }
          sys->deliver_all(e.process, msgs);
        } else if (is_source.count(e)) {
          sys->send(e.process);
        } else {
          sys->local(e.process);
        }
      }
      if ((i + 1) % 7 == 0) sys->compact(sys->system().retention_watermark());
      ++i;
    } catch (const StorageCrash&) {
      ++stats.crashes;
      sys = std::make_unique<DurableSystem>(exec.process_count(), storage,
                                            policy);
      stats.absorb(sys->recovery());
      i = 0;  // re-scan; recovered events are skipped, lost ones re-driven
    }
  }

  for (ProcessId p = 0; p < exec.process_count(); ++p) {
    if (sys->system().executed(p) != oracle.executed(p) ||
        sys->system().current_clock(p) != oracle.current_clock(p)) {
      stats.identity = false;
      return;
    }
    for (EventIndex j = sys->system().reclaimed_before(p) + 1;
         j <= sys->system().executed(p); ++j) {
      const EventId e{p, j};
      if (sys->system().clock_of(e) != oracle.clock_of(e) ||
          sys->system().time_of(e) != oracle.time_of(e)) {
        stats.identity = false;
        return;
      }
    }
  }
}

/// Monitor leg: crash a DurableMonitor whose feed runs through a faulty
/// channel, recover, converge through resync, and compare all 32 relation
/// verdicts against a clean uninterrupted run.
void monitor_leg(std::uint64_t seed, SweepStats& stats) {
  Xoshiro256StarStar rng(seed);
  const Execution exec = generate_execution(standard_workload(4, 20, seed));
  std::set<EventId> x_set, y_set;
  for (EventIndex i = 2; i <= exec.real_count(0) && i <= 9; ++i) {
    x_set.insert(EventId{0, i});
  }
  for (EventIndex i = 3; i <= exec.real_count(1) && i <= 11; ++i) {
    y_set.insert(EventId{1, i});
  }
  const OnlineSystem sys = replay(exec);

  OnlineMonitor clean(exec.process_count());
  clean.begin("X");
  clean.begin("Y");
  for (const EventId& e : exec.topological_order()) {
    const WireMessage w = sys.wire_of(e);
    if (x_set.count(e)) {
      clean.ingest("X", w);
    } else if (y_set.count(e)) {
      clean.ingest("Y", w);
    } else {
      clean.observe(w);
    }
  }
  clean.complete("X");
  clean.complete("Y");
  const std::vector<Firing> clean_fires = verdicts_of(clean);

  LinkFaultConfig link;
  link.drop_probability = 0.2;
  link.duplicate_probability = 0.18;
  link.reorder_probability = 0.25;
  link.max_delay = 40;
  FaultyChannel channel(link, seed ^ 0xFEED);
  TimePoint t = 0;
  for (const EventId& e : exec.topological_order()) {
    channel.push(sys.wire_of(e), t += 5);
  }
  const std::vector<Arrival> arrivals = channel.drain();

  SimFaultConfig faults;
  faults.torn_tail = 0.6;
  faults.bit_flip = 0.1;
  faults.seed = seed ^ 0xC0FFEE;
  SimStorage storage(faults);
  const DurabilityPolicy policy = sweep_policy(rng);
  auto mon =
      std::make_unique<DurableMonitor>(exec.process_count(), storage, policy);
  const auto ensure_begun = [&] {
    for (const char* label : {"X", "Y"}) {
      if (!mon->monitor().is_open(label) &&
          mon->monitor().summary(label) == nullptr) {
        mon->begin(label);
      }
    }
  };
  const auto feed = [&](const WireMessage& report) {
    if (x_set.count(report.source)) {
      mon->ingest("X", report);
    } else if (y_set.count(report.source)) {
      mon->ingest("Y", report);
    } else {
      mon->observe(report);
    }
  };
  const auto guarded = [&](const auto& fn) {
    try {
      fn();
    } catch (const StorageCrash&) {
      ++stats.crashes;
      mon = std::make_unique<DurableMonitor>(exec.process_count(), storage,
                                             policy);
      stats.absorb(mon->recovery());
      ensure_begun();
      fn();
    }
  };

  storage.crash_after_ops(1 + rng.below(arrivals.size() + 2));
  guarded(ensure_begun);
  for (const Arrival& a : arrivals) {
    guarded([&] { feed(a.message); });
  }
  bool need_round = true;
  int rounds = 0;
  while (need_round || mon->monitor().missing_report_count() > 0) {
    if (++rounds > 512) {
      stats.identity = false;  // resync failed to converge
      return;
    }
    need_round = false;
    guarded([&] {
      mon->checkpoint(sys.snapshot());
      for (const WireMessage& w :
           sys.serve(mon->monitor().resync_request(8))) {
        feed(w);
      }
    });
  }
  guarded([&] {
    if (mon->monitor().is_open("X")) mon->complete("X");
  });
  guarded([&] {
    if (mon->monitor().is_open("Y")) mon->complete("Y");
  });
  rounds = 0;
  while (mon->monitor().missing_report_count() > 0) {
    if (++rounds > 512) {
      stats.identity = false;
      return;
    }
    mon->checkpoint(sys.snapshot());
    for (const WireMessage& w : sys.serve(mon->monitor().resync_request(8))) {
      feed(w);
    }
  }

  const std::vector<Firing> crash_fires = verdicts_of(mon->monitor());
  if (crash_fires.size() != clean_fires.size()) {
    stats.identity = false;
    return;
  }
  for (std::size_t i = 0; i < crash_fires.size(); ++i) {
    if (crash_fires[i].conf != Confidence::Definite ||
        !(crash_fires[i] == clean_fires[i])) {
      stats.identity = false;
      return;
    }
  }
}

int run() {
  banner("E13: bench_recovery", "extension: crash/recovery identity",
         "kill + recover under link and storage faults: verdict identity");
  auto& registry = obs::MetricRegistry::global();

  const std::uint64_t iters = env_u64("SYNCON_RECOVERY_ITERS", 24);
  const std::uint64_t seed0 = env_u64("SYNCON_RECOVERY_SEED", 0x5EC0BE);

  SweepStats stats;
  for (std::uint64_t iter = 0; iter < iters; ++iter) {
    const std::uint64_t seed = seed0 + iter;
    system_leg(seed, stats);
    monitor_leg(seed, stats);
    stats.runs += 2;
    if (!stats.identity) {
      std::printf("bench_recovery: identity BROKEN at seed %llu\n",
                  static_cast<unsigned long long>(seed));
      break;
    }
  }

  const std::uint64_t micros_avg =
      stats.recoveries == 0 ? 0
                            : stats.recovery_micros_total / stats.recoveries;
  TextTable table({"crash/recovery sweep", "value"});
  table.new_row().add_cell(std::string("runs (system + monitor)"))
      .add_cell(stats.runs);
  table.new_row().add_cell(std::string("crashes injected"))
      .add_cell(stats.crashes);
  table.new_row()
      .add_cell(std::string("recoveries with durable state"))
      .add_cell(stats.recoveries);
  table.new_row()
      .add_cell(std::string("WAL records replayed / skipped"))
      .add_cell(std::to_string(stats.events_replayed) + " / " +
                std::to_string(stats.events_skipped));
  table.new_row()
      .add_cell(std::string("recovery scan µs (max / avg)"))
      .add_cell(std::to_string(stats.recovery_micros_max) + " / " +
                std::to_string(micros_avg));
  table.new_row()
      .add_cell(std::string("bit-identical to uninterrupted run"))
      .add_cell(std::string(stats.identity ? "yes" : "NO"));
  std::printf("%s\n", table.to_string().c_str());

  registry.gauge("syncon_recovery_identity").set(stats.identity ? 1 : 0);
  registry.gauge("syncon_recovery_runs")
      .set(static_cast<std::int64_t>(stats.runs));
  registry.gauge("syncon_recovery_crashes")
      .set(static_cast<std::int64_t>(stats.crashes));
  registry.gauge("syncon_recovery_recoveries")
      .set(static_cast<std::int64_t>(stats.recoveries));
  registry.gauge("syncon_recovery_events_replayed")
      .set(static_cast<std::int64_t>(stats.events_replayed));
  registry.gauge("syncon_recovery_events_skipped")
      .set(static_cast<std::int64_t>(stats.events_skipped));
  registry.gauge("syncon_recovery_micros_max")
      .set(static_cast<std::int64_t>(stats.recovery_micros_max));
  registry.gauge("syncon_recovery_micros_avg")
      .set(static_cast<std::int64_t>(micros_avg));

  const bool ok = stats.identity && stats.crashes > 0 && stats.recoveries > 0;
  if (!ok) std::printf("bench_recovery: FAILED recovery guarantees\n");
  return ok ? 0 : 1;
}

}  // namespace

int main() {
  start_telemetry();
  // SYNCON_FLIGHT_JSON (DESIGN.md §3.13): record the sweep's WAL syncs,
  // rotations, snapshots, and recoveries in the flight ring and dump it.
  const char* flight_path = std::getenv("SYNCON_FLIGHT_JSON");
  if (flight_path != nullptr) syncon::obs::set_flight_enabled(true);
  const int rc = run();
  if (flight_path != nullptr) {
    syncon::obs::set_flight_enabled(false);
    std::ofstream out(flight_path);
    syncon::obs::write_flight_json(out,
                                   syncon::obs::FlightRecorder::global().dump());
    std::printf("flight dump -> %s\n", flight_path);
  }
  finish_telemetry("bench_recovery");
  return rc;
}
