// E2 — reproduces Table 2: the four special cuts C1..C4 of a poset event
// and their timestamps. Measures
//   * the optimized computation (per-node extremes only, Corollary 17 +
//     §2.3 shortcut) vs the reference fold over every member event;
//   * the paper's "one-time cost is negligible" claim: cut-timestamp setup
//     cost amortized against relation queries that reuse it (Key Idea 1).
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "relations/fast.hpp"
#include "relations/sparse_cuts.hpp"

namespace {

using namespace syncon;
using namespace syncon::bench;

constexpr std::size_t kProcesses = 32;
constexpr std::size_t kEventsPerProcess = 160;

Substrate& substrate() {
  static Substrate s(standard_workload(kProcesses, kEventsPerProcess),
                     standard_spec(16, 12), 64, 4242);
  return s;
}

void print_table2() {
  banner("E2: bench_table2_cut_timestamps", "Table 2",
         "cut-timestamp computation: optimized vs reference; one-time cost");
  Substrate& s = substrate();

  // Verify + count: the optimized path touches |N_X| event timestamps per
  // cut; the reference touches |X|.
  TextTable table({"interval", "|X|", "|N_X|", "optimized = reference",
                   "events touched (opt)", "events touched (ref)"});
  for (std::size_t i = 0; i < 6; ++i) {
    const NonatomicEvent& x = s.intervals[i];
    const EventCuts cuts(*s.ts, x);
    bool equal = true;
    for (const PosetCut which :
         {PosetCut::IntersectPast, PosetCut::UnionPast,
          PosetCut::IntersectFuture, PosetCut::UnionFuture}) {
      equal = equal &&
              cuts.counts(which) == poset_cut_counts_reference(*s.ts, x, which);
    }
    table.new_row()
        .add_cell("I" + std::to_string(i))
        .add_cell(x.size())
        .add_cell(x.node_count())
        .add_cell(equal)
        .add_cell(std::uint64_t{2} * x.node_count())  // least+greatest per node
        .add_cell(std::uint64_t{4} * x.size());       // each member, each cut
  }
  std::printf("%s\n", table.to_string().c_str());

  // Amortization: one-time cut setup vs per-query comparisons.
  const NonatomicEvent& x = s.intervals[0];
  const NonatomicEvent& y = s.intervals[1];
  const EventCuts xc(*s.ts, x), yc(*s.ts, y);
  ComparisonCounter counter;
  for (const Relation r : kAllRelations) {
    (void)evaluate_fast(r, xc, yc, counter);
  }
  std::printf("Key Idea 1: one EventCuts setup costs O(|N_X|·|P|) = %zu·%zu "
              "component ops,\nthen ALL 8 relation queries above cost only "
              "%llu integer comparisons total.\n\n",
              x.node_count(), s.exec.process_count(),
              static_cast<unsigned long long>(counter.integer_comparisons));

  // Ablation: the O(1)-storage sparse variant (§2.3's "only the |N_X|
  // components need to be computed") pays |N| clock lookups per component
  // at query time.
  const SparseEventCuts sx(*s.ts, x), sy(*s.ts, y);
  TextTable ablation({"relation", "dense cmps", "sparse cmps",
                      "sparse/dense"});
  for (const Relation r : kAllRelations) {
    ComparisonCounter dense_c, sparse_c;
    (void)evaluate_fast(r, xc, yc, dense_c);
    (void)evaluate_fast_sparse(r, sx, sy, sparse_c);
    ablation.new_row()
        .add_cell(std::string(to_string(r)))
        .add_cell(dense_c.integer_comparisons)
        .add_cell(sparse_c.integer_comparisons)
        .add_cell(static_cast<double>(sparse_c.integer_comparisons) /
                      static_cast<double>(dense_c.integer_comparisons),
                  1);
  }
  std::printf("ablation — precomputed (dense) vs on-demand (sparse) cut "
              "timestamps, one query each:\n%s\n",
              ablation.to_string().c_str());
}

void BM_EventCutsOptimized(benchmark::State& state) {
  Substrate& s = substrate();
  const auto idx = static_cast<std::size_t>(state.range(0));
  const NonatomicEvent& x = s.intervals[idx];
  for (auto _ : state) {
    const EventCuts cuts(*s.ts, x);
    benchmark::DoNotOptimize(cuts.intersect_past()[0]);
  }
  state.SetLabel("|X|=" + std::to_string(x.size()) +
                 " |N_X|=" + std::to_string(x.node_count()));
}

void BM_EventCutsReference(benchmark::State& state) {
  Substrate& s = substrate();
  const auto idx = static_cast<std::size_t>(state.range(0));
  const NonatomicEvent& x = s.intervals[idx];
  for (auto _ : state) {
    for (const PosetCut which :
         {PosetCut::IntersectPast, PosetCut::UnionPast,
          PosetCut::IntersectFuture, PosetCut::UnionFuture}) {
      const VectorClock vc = poset_cut_counts_reference(*s.ts, x, which);
      benchmark::DoNotOptimize(vc[0]);
    }
  }
}

// The trace-wide one-time cost: stamping the whole execution.
void BM_TimestampSetup(benchmark::State& state) {
  const auto processes = static_cast<std::size_t>(state.range(0));
  const Execution exec =
      generate_execution(standard_workload(processes, 100, 777));
  for (auto _ : state) {
    const Timestamps ts(exec);
    benchmark::DoNotOptimize(ts.forward_ref(exec.topological_order()[0])[0]);
  }
  state.SetLabel(std::to_string(exec.total_real_count()) + " events");
}

BENCHMARK(BM_EventCutsOptimized)->DenseRange(0, 3);
BENCHMARK(BM_EventCutsReference)->DenseRange(0, 3);
BENCHMARK(BM_TimestampSetup)->Arg(8)->Arg(32)->Arg(128);

}  // namespace

int main(int argc, char** argv) {
  print_table2();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
