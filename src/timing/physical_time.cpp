#include "timing/physical_time.hpp"

#include <algorithm>
#include <limits>

#include "support/contracts.hpp"

namespace syncon {

PhysicalTimes::PhysicalTimes(
    const Execution& exec, std::vector<std::vector<TimePoint>> times_by_process)
    : exec_(&exec), times_(std::move(times_by_process)) {
  SYNCON_REQUIRE(times_.size() == exec.process_count(),
                 "one time series per process required");
  for (ProcessId p = 0; p < exec.process_count(); ++p) {
    SYNCON_REQUIRE(times_[p].size() == exec.real_count(p),
                   "one timestamp per real event required");
    for (std::size_t k = 1; k < times_[p].size(); ++k) {
      SYNCON_REQUIRE(times_[p][k - 1] < times_[p][k],
                     "per-process times must be strictly increasing");
    }
  }
  for (const Message& m : exec.messages()) {
    SYNCON_REQUIRE(at(m.source) < at(m.target),
                   "a message must be received after it was sent");
  }
}

TimePoint PhysicalTimes::at(EventId e) const {
  SYNCON_REQUIRE(exec_->is_real(e), "only real events carry physical time");
  return times_[e.process][e.index - 1];
}

TimePoint PhysicalTimes::horizon() const {
  TimePoint h = 0;
  for (ProcessId p = 0; p < exec_->process_count(); ++p) {
    if (!times_[p].empty()) h = std::max(h, times_[p].back());
  }
  return h;
}

PhysicalTimes assign_times(const Execution& exec, const TimingModel& model) {
  SYNCON_REQUIRE(model.mean_step > 0, "mean_step must be positive");
  SYNCON_REQUIRE(model.jitter >= 0.0 && model.jitter < 1.0,
                 "jitter must be in [0, 1)");
  SYNCON_REQUIRE(model.min_latency >= 0 &&
                     model.min_latency <= model.max_latency,
                 "latency window must be ordered and non-negative");
  Xoshiro256StarStar rng(model.seed);
  std::vector<std::vector<TimePoint>> times(exec.process_count());
  for (ProcessId p = 0; p < exec.process_count(); ++p) {
    times[p].resize(exec.real_count(p));
  }
  auto step = [&]() -> Duration {
    const double lo = static_cast<double>(model.mean_step) *
                      (1.0 - model.jitter);
    const double hi = static_cast<double>(model.mean_step) *
                      (1.0 + model.jitter);
    return std::max<Duration>(
        1, static_cast<Duration>(lo + (hi - lo) * rng.uniform01()));
  };
  // Creation order is topological, so message sources are always timed
  // before their receives.
  for (const EventId& e : exec.topological_order()) {
    TimePoint t =
        e.index > 1 ? times[e.process][e.index - 2] + step() : step();
    for (const EventId& src : exec.incoming(e)) {
      const Duration latency =
          model.min_latency +
          static_cast<Duration>(rng.uniform(
              0, static_cast<std::uint64_t>(model.max_latency -
                                            model.min_latency)));
      t = std::max(t, times[src.process][src.index - 1] + latency);
    }
    times[e.process][e.index - 1] = t;
  }
  return PhysicalTimes(exec, std::move(times));
}

TimePoint start_time(const PhysicalTimes& times, const NonatomicEvent& x) {
  TimePoint t = std::numeric_limits<TimePoint>::max();
  for (const ProcessId p : x.node_set()) {
    t = std::min(t, times.at(x.least_on(p)));
  }
  return t;
}

TimePoint end_time(const PhysicalTimes& times, const NonatomicEvent& x) {
  TimePoint t = std::numeric_limits<TimePoint>::min();
  for (const ProcessId p : x.node_set()) {
    t = std::max(t, times.at(x.greatest_on(p)));
  }
  return t;
}

Duration duration_of(const PhysicalTimes& times, const NonatomicEvent& x) {
  return end_time(times, x) - start_time(times, x);
}

}  // namespace syncon
