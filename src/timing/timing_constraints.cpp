#include "timing/timing_constraints.hpp"

#include <cmath>

#include "support/contracts.hpp"

namespace syncon {

const char* to_string(Anchor a) {
  return a == Anchor::Start ? "start" : "end";
}

Duration gap(const PhysicalTimes& times, const NonatomicEvent& x, Anchor ax,
             const NonatomicEvent& y, Anchor ay) {
  const TimePoint tx =
      ax == Anchor::Start ? start_time(times, x) : end_time(times, x);
  const TimePoint ty =
      ay == Anchor::Start ? start_time(times, y) : end_time(times, y);
  return ty - tx;
}

TimingCheckResult check_constraint(const PhysicalTimes& times,
                                   const TimingConstraint& constraint,
                                   const NonatomicEvent& x,
                                   const NonatomicEvent& y) {
  SYNCON_REQUIRE(constraint.min_gap <= constraint.max_gap,
                 "constraint window must be ordered");
  TimingCheckResult result;
  result.measured_gap =
      gap(times, x, constraint.anchor_x, y, constraint.anchor_y);
  result.satisfied = result.measured_gap >= constraint.min_gap &&
                     result.measured_gap <= constraint.max_gap;
  return result;
}

LatencyProfile::LatencyProfile(TimingConstraint constraint)
    : constraint_(std::move(constraint)) {
  SYNCON_REQUIRE(constraint_.min_gap <= constraint_.max_gap,
                 "constraint window must be ordered");
}

void LatencyProfile::record(const PhysicalTimes& times,
                            const NonatomicEvent& x,
                            const NonatomicEvent& y) {
  const TimingCheckResult r = check_constraint(times, constraint_, x, y);
  gaps_.add(static_cast<double>(r.measured_gap));
  if (!r.satisfied) ++violations_;
}

Duration LatencyProfile::worst_gap() const {
  SYNCON_REQUIRE(gaps_.count() > 0, "no samples recorded");
  return static_cast<Duration>(std::llround(gaps_.max()));
}

}  // namespace syncon
