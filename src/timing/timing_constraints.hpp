// Relative timing constraints between nonatomic events — the quantitative
// counterpart of the causality relations (after the paper's companion
// reference [12]). A constraint bounds the gap between an anchor instant of
// X (its start or end) and an anchor instant of Y:
//
//     min_gap  <=  anchor(Y) - anchor(X)  <=  max_gap        (µs)
//
// e.g. "engagement must start between 0 and 50ms after detection ends".
#pragma once

#include <limits>
#include <string>
#include <vector>

#include "support/stats.hpp"
#include "timing/physical_time.hpp"

namespace syncon {

/// Which instant of a nonatomic event a constraint anchors to.
enum class Anchor { Start, End };

const char* to_string(Anchor a);

struct TimingConstraint {
  std::string name;
  Anchor anchor_x = Anchor::End;
  Anchor anchor_y = Anchor::Start;
  Duration min_gap = 0;
  Duration max_gap = std::numeric_limits<Duration>::max();
};

/// anchor(Y) − anchor(X) under the timeline.
Duration gap(const PhysicalTimes& times, const NonatomicEvent& x, Anchor ax,
             const NonatomicEvent& y, Anchor ay);

struct TimingCheckResult {
  Duration measured_gap = 0;
  bool satisfied = false;
};

TimingCheckResult check_constraint(const PhysicalTimes& times,
                                   const TimingConstraint& constraint,
                                   const NonatomicEvent& x,
                                   const NonatomicEvent& y);

/// Latency profile of a repeated constraint (e.g. one measurement per
/// engagement round): collects gaps and reports quantiles plus the
/// worst-case margin against the bound.
class LatencyProfile {
 public:
  explicit LatencyProfile(TimingConstraint constraint);

  void record(const PhysicalTimes& times, const NonatomicEvent& x,
              const NonatomicEvent& y);

  const TimingConstraint& constraint() const { return constraint_; }
  std::size_t samples() const { return gaps_.count(); }
  std::size_t violations() const { return violations_; }
  bool all_satisfied() const { return violations_ == 0; }
  Duration worst_gap() const;
  double quantile(double q) const { return gaps_.quantile(q); }

 private:
  TimingConstraint constraint_;
  SampleSet gaps_;
  std::size_t violations_ = 0;
};

}  // namespace syncon
