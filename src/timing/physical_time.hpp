// Physical (wall-clock) time for recorded executions. The causality
// relations say which orderings are *certain*; distributed real-time
// applications additionally need the *quantitative* layer — when events
// happened and whether latencies meet deadlines (the paper's companion
// reference [12], "Relative timing constraints between complex events").
//
// A PhysicalTimes object assigns a timestamp (microseconds) to every real
// event, validated to respect the trace's causal structure: strictly
// monotone along each process line and send-before-receive across messages.
#pragma once

#include <cstdint>
#include <vector>

#include "model/execution.hpp"
#include "model/types.hpp"
#include "nonatomic/interval.hpp"
#include "support/rng.hpp"

namespace syncon {

/// Microseconds since the start of the computation.
using TimePoint = std::int64_t;
using Duration = std::int64_t;

class PhysicalTimes {
 public:
  /// `times_by_process[p][k-1]` is the time of event (p, k). Validates
  /// per-process monotonicity and message causality against `exec`.
  PhysicalTimes(const Execution& exec,
                std::vector<std::vector<TimePoint>> times_by_process);

  const Execution& execution() const { return *exec_; }

  /// Time of a real event.
  TimePoint at(EventId e) const;

  /// Last timestamp in the trace.
  TimePoint horizon() const;

 private:
  const Execution* exec_;
  std::vector<std::vector<TimePoint>> times_;
};

/// Parameters of the synthetic timing model used by `assign_times`.
struct TimingModel {
  /// Mean spacing between consecutive local events of a process (µs).
  Duration mean_step = 1000;
  /// Uniform jitter applied to each step: step ∈ [mean·(1-j), mean·(1+j)].
  double jitter = 0.5;
  /// Minimum and maximum network latency added to receive events (µs).
  Duration min_latency = 200;
  Duration max_latency = 5000;
  std::uint64_t seed = 1;
};

/// Draws a causally consistent physical timeline for the execution.
PhysicalTimes assign_times(const Execution& exec, const TimingModel& model);

/// First / last instant of a nonatomic event under the timeline.
TimePoint start_time(const PhysicalTimes& times, const NonatomicEvent& x);
TimePoint end_time(const PhysicalTimes& times, const NonatomicEvent& x);
Duration duration_of(const PhysicalTimes& times, const NonatomicEvent& x);

}  // namespace syncon
