// LEB128 varint and zigzag encoding — the byte-level vocabulary shared by
// every clock serialization (model/vector_clock, model/tree_clock,
// model/compressed_clock) and the online wire codec (online/wire_codec).
//
// Encoders append to a byte vector; decoders consume from the front of a
// span *by reference*, so sequential fields parse naturally:
//
//   std::span<const std::uint8_t> in = bytes;
//   const auto a = decode_varint(in);   // in now starts after a
//   const auto b = decode_varint(in);
//
// Malformed input (truncated, or more than 10 continuation bytes) raises a
// ContractViolation — wire decoding is a trust boundary.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "support/contracts.hpp"

namespace syncon {

/// Appends v as an unsigned LEB128 varint (1 byte per 7 bits, msb = more).
inline void encode_varint(std::uint64_t v, std::vector<std::uint8_t>& out) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80u);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

/// Consumes one unsigned LEB128 varint from the front of `in`.
inline std::uint64_t decode_varint(std::span<const std::uint8_t>& in) {
  std::uint64_t v = 0;
  for (unsigned shift = 0; shift < 70; shift += 7) {
    SYNCON_REQUIRE(!in.empty(), "truncated varint");
    const std::uint8_t byte = in.front();
    in = in.subspan(1);
    SYNCON_REQUIRE(shift < 64, "varint longer than 64 bits");
    v |= static_cast<std::uint64_t>(byte & 0x7Fu) << shift;
    if ((byte & 0x80u) == 0) return v;
  }
  SYNCON_REQUIRE(false, "varint longer than 64 bits");
  return 0;  // unreachable
}

/// Zigzag mapping: small-magnitude signed values become small unsigned ones
/// (0 → 0, -1 → 1, 1 → 2, -2 → 3, …) so deltas varint-encode compactly.
inline std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

inline std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^ -static_cast<std::int64_t>(v & 1);
}

inline void encode_signed_varint(std::int64_t v,
                                 std::vector<std::uint8_t>& out) {
  encode_varint(zigzag(v), out);
}

inline std::int64_t decode_signed_varint(std::span<const std::uint8_t>& in) {
  return unzigzag(decode_varint(in));
}

}  // namespace syncon
