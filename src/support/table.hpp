// Plain-text table rendering for the benchmark harness and examples.
// Produces aligned, pipe-separated tables that mirror how the paper's
// Tables 1 and 2 are laid out.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace syncon {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Starts a new row. Subsequent add_cell calls fill it left to right.
  TextTable& new_row();
  TextTable& add_cell(std::string value);
  TextTable& add_cell(std::uint64_t value);
  TextTable& add_cell(std::int64_t value);
  TextTable& add_cell(int value);
  TextTable& add_cell(unsigned value);
  /// Renders doubles with fixed precision (default 3 digits).
  TextTable& add_cell(double value, int precision = 3);
  TextTable& add_cell(bool value);

  std::size_t row_count() const { return rows_.size(); }

  /// Renders the table with a header rule; every column is padded to its
  /// widest cell.
  void print(std::ostream& os) const;
  std::string to_string() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats `value` with thousands separators ("1,234,567") for readability
/// in benchmark output.
std::string with_thousands(std::uint64_t value);

}  // namespace syncon
