// CRC-32 (ISO-HDLC polynomial 0xEDB88320, the zlib/PNG variant) for the
// durability layer's record framing (store/wal.hpp). Every WAL frame and
// snapshot carries the checksum of its payload; a mismatch marks the frame
// as torn or corrupted and recovery truncates there (DESIGN.md §3.12).
//
// Table-driven, one slice, constexpr-initialized — fast enough for the
// record sizes involved (tens of bytes) without pulling in a dependency.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>

namespace syncon {

namespace detail {

constexpr std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t n = 0; n < 256; ++n) {
    std::uint32_t c = n;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[n] = c;
  }
  return table;
}

inline constexpr std::array<std::uint32_t, 256> kCrc32Table =
    make_crc32_table();

}  // namespace detail

/// CRC-32 of `bytes`, optionally continuing from a previous checksum (pass
/// the prior result as `seed` to checksum split buffers incrementally).
inline std::uint32_t crc32(std::span<const std::uint8_t> bytes,
                           std::uint32_t seed = 0) {
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (const std::uint8_t b : bytes) {
    c = detail::kCrc32Table[(c ^ b) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace syncon
