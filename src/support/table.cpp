#include "support/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "support/contracts.hpp"

namespace syncon {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  SYNCON_REQUIRE(!headers_.empty(), "a table needs at least one column");
}

TextTable& TextTable::new_row() {
  rows_.emplace_back();
  rows_.back().reserve(headers_.size());
  return *this;
}

TextTable& TextTable::add_cell(std::string value) {
  SYNCON_REQUIRE(!rows_.empty(), "call new_row() before add_cell()");
  SYNCON_REQUIRE(rows_.back().size() < headers_.size(),
                 "row already has a cell for every column");
  rows_.back().push_back(std::move(value));
  return *this;
}

TextTable& TextTable::add_cell(std::uint64_t value) {
  return add_cell(std::to_string(value));
}

TextTable& TextTable::add_cell(std::int64_t value) {
  return add_cell(std::to_string(value));
}

TextTable& TextTable::add_cell(int value) {
  return add_cell(std::to_string(value));
}

TextTable& TextTable::add_cell(unsigned value) {
  return add_cell(std::to_string(value));
}

TextTable& TextTable::add_cell(double value, int precision) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << value;
  return add_cell(oss.str());
}

TextTable& TextTable::add_cell(bool value) {
  return add_cell(std::string(value ? "yes" : "no"));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    os << "|";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string{};
      os << ' ' << cell << std::string(widths[c] - cell.size(), ' ') << " |";
    }
    os << '\n';
  };
  print_row(headers_);
  os << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string TextTable::to_string() const {
  std::ostringstream oss;
  print(oss);
  return oss.str();
}

std::string with_thousands(std::uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  std::size_t run = 0;
  for (std::size_t i = digits.size(); i-- > 0;) {
    out.push_back(digits[i]);
    if (++run == 3 && i != 0) {
      out.push_back(',');
      run = 0;
    }
  }
  std::reverse(out.begin(), out.end());
  return out;
}

}  // namespace syncon
