// Contract-checking macros used across the library.
//
// SYNCON_REQUIRE   -- precondition on a public API; always on, throws
//                     syncon::ContractViolation so callers can test misuse.
// SYNCON_ASSERT    -- internal invariant; always on in this reference
//                     implementation (the library is about correctness of an
//                     algorithm, not peak production throughput), aborts via
//                     exception as well so tests can observe it.
//
// Both macros evaluate their condition exactly once.
#pragma once

#include <stdexcept>
#include <string>

namespace syncon {

/// Thrown when a SYNCON_REQUIRE / SYNCON_ASSERT contract is violated.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what_arg)
      : std::logic_error(what_arg) {}
};

namespace detail {
[[noreturn]] void contract_failure(const char* kind, const char* condition,
                                   const char* file, int line,
                                   const std::string& message);
}  // namespace detail

}  // namespace syncon

#define SYNCON_REQUIRE(cond, message)                                       \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::syncon::detail::contract_failure("precondition", #cond, __FILE__,   \
                                         __LINE__, (message));              \
    }                                                                       \
  } while (false)

#define SYNCON_ASSERT(cond, message)                                        \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::syncon::detail::contract_failure("invariant", #cond, __FILE__,      \
                                         __LINE__, (message));              \
    }                                                                       \
  } while (false)
