// Deterministic pseudo-random number generation for simulations and tests.
//
// All stochastic behaviour in the library flows through SplitMix64 (seeding)
// and Xoshiro256StarStar (bulk generation) so that every experiment is exactly
// reproducible from a single 64-bit seed, independent of the platform's
// <random> implementation.
#pragma once

#include <cstdint>
#include <vector>

namespace syncon {

/// SplitMix64: tiny, high-quality generator used to expand one 64-bit seed
/// into the 256-bit state of Xoshiro256StarStar (and usable on its own).
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next();

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference algorithm).
/// Deterministic across platforms; satisfies UniformRandomBitGenerator.
class Xoshiro256StarStar {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256StarStar(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() { return next(); }
  std::uint64_t next();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi);

  /// Uniform integer in [0, n) (n > 0), without modulo bias.
  std::uint64_t below(std::uint64_t n);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Bernoulli trial with probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Geometric-ish positive count: 1 + number of successes of bernoulli(p).
  /// Used for bursty event generation.
  std::uint64_t burst(double p, std::uint64_t cap);

  /// Sample k distinct values from [0, n) in increasing order.
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);

 private:
  std::uint64_t s_[4];
};

}  // namespace syncon
