#include "support/rng.hpp"

#include "support/contracts.hpp"

namespace syncon {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

std::uint64_t SplitMix64::next() {
  std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Xoshiro256StarStar::Xoshiro256StarStar(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.next();
  // A zero state would be degenerate; SplitMix64 cannot produce four zero
  // outputs from any seed, but keep the guard explicit.
  if (s_[0] == 0 && s_[1] == 0 && s_[2] == 0 && s_[3] == 0) s_[0] = 1;
}

std::uint64_t Xoshiro256StarStar::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Xoshiro256StarStar::below(std::uint64_t n) {
  SYNCON_REQUIRE(n > 0, "below(n) requires n > 0");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (~n + 1) % n;  // (2^64 - n) mod n
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % n;
  }
}

std::uint64_t Xoshiro256StarStar::uniform(std::uint64_t lo, std::uint64_t hi) {
  SYNCON_REQUIRE(lo <= hi, "uniform(lo, hi) requires lo <= hi");
  const std::uint64_t span = hi - lo;
  if (span == ~std::uint64_t{0}) return next();
  return lo + below(span + 1);
}

double Xoshiro256StarStar::uniform01() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Xoshiro256StarStar::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

std::uint64_t Xoshiro256StarStar::burst(double p, std::uint64_t cap) {
  std::uint64_t count = 1;
  while (count < cap && bernoulli(p)) ++count;
  return count;
}

std::vector<std::size_t> Xoshiro256StarStar::sample_without_replacement(
    std::size_t n, std::size_t k) {
  SYNCON_REQUIRE(k <= n, "cannot sample more elements than the population");
  // Selection sampling (Knuth 3.4.2 Algorithm S): O(n), produces sorted output.
  std::vector<std::size_t> out;
  out.reserve(k);
  std::size_t remaining = k;
  for (std::size_t i = 0; i < n && remaining > 0; ++i) {
    const std::size_t left = n - i;
    if (below(left) < remaining) {
      out.push_back(i);
      --remaining;
    }
  }
  return out;
}

}  // namespace syncon
