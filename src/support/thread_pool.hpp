// A small fixed-size thread pool with deterministic static sharding — no
// work stealing, by design: parallel_for assigns shard s the contiguous
// index block [s·n/T, (s+1)·n/T), so which worker computes which item is a
// pure function of (n, T). Combined with per-shard accumulators merged in
// shard order at the join, parallel runs produce bit-identical aggregates
// to serial runs (see DESIGN.md §3.6).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace syncon {

class ThreadPool {
 public:
  /// Spawns `thread_count` workers; 0 means std::thread::hardware_concurrency
  /// (at least 1).
  explicit ThreadPool(std::size_t thread_count = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  /// Enqueues a task; runs on some worker. Tasks must not throw out of the
  /// pool via submit — use parallel_for for exception propagation.
  void submit(std::function<void()> task);

  /// Blocks until every task submitted so far has finished — the queue is
  /// empty AND no worker is mid-task. The completion barrier submit lacks:
  /// an owner tearing down state that queued tasks reference (daemon
  /// sessions, shared accumulators) must drain first or the workers race
  /// the destructor. Must be called from outside the pool (a worker calling
  /// drain on its own pool would wait for itself). Tasks submitted
  /// concurrently with drain may or may not be covered.
  void drain();

  /// Tasks currently queued or running (a snapshot; racy by nature).
  std::size_t pending() const;

  /// Runs body(shard, begin, end) for shard = 0..shards-1 over a static
  /// contiguous partition of [0, count), blocking until all shards finish.
  /// `shards` defaults (0) to thread_count(). The calling thread executes
  /// shard 0 itself, so a 1-thread pool degenerates to a plain serial loop
  /// plus one handoff. The first exception thrown by any shard is rethrown
  /// here after all shards complete.
  void parallel_for(
      std::size_t count,
      const std::function<void(std::size_t shard, std::size_t begin,
                               std::size_t end)>& body,
      std::size_t shards = 0);

  /// Process-wide default pool, sized to the hardware. Lives until exit.
  static ThreadPool& shared();

 private:
  void worker_loop();

  mutable std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::size_t active_ = 0;  // tasks popped but not yet finished
  bool stopping_ = false;
};

}  // namespace syncon
