// Minimal command-line option parsing for the example applications.
// Supports --name=value / --name value / --flag forms plus -h/--help.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace syncon {

class CliParser {
 public:
  CliParser(std::string program, std::string description);

  /// Registers an option; `help` is shown by print_help().
  void add_option(std::string name, std::string default_value,
                  std::string help);
  void add_flag(std::string name, std::string help);

  /// Parses argv. Returns false (after printing help) when -h/--help was
  /// given or an unknown option was encountered.
  bool parse(int argc, const char* const* argv);

  std::string get(const std::string& name) const;
  std::int64_t get_int(const std::string& name) const;
  std::uint64_t get_uint(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool get_flag(const std::string& name) const;

  /// Positional arguments (everything not starting with --).
  const std::vector<std::string>& positional() const { return positional_; }

  void print_help() const;

 private:
  struct Option {
    std::string default_value;
    std::string help;
    bool is_flag = false;
  };

  std::string program_;
  std::string description_;
  std::map<std::string, Option> options_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace syncon
