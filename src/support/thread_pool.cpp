#include "support/thread_pool.hpp"

#include <algorithm>
#include <exception>
#include <utility>

#include "support/contracts.hpp"

namespace syncon {

ThreadPool::ThreadPool(std::size_t thread_count) {
  if (thread_count == 0) {
    thread_count = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(thread_count);
  for (std::size_t i = 0; i < thread_count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  SYNCON_REQUIRE(task != nullptr, "submit needs a task");
  {
    std::lock_guard<std::mutex> lock(mutex_);
    SYNCON_REQUIRE(!stopping_, "submit on a stopping pool");
    queue_.push_back(std::move(task));
  }
  wake_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::parallel_for(
    std::size_t count,
    const std::function<void(std::size_t shard, std::size_t begin,
                             std::size_t end)>& body,
    std::size_t shards) {
  SYNCON_REQUIRE(body != nullptr, "parallel_for needs a body");
  if (shards == 0) shards = thread_count();
  shards = std::max<std::size_t>(1, std::min(shards, std::max<std::size_t>(count, 1)));

  // Per-call join state; shared_ptr so stray workers finishing after an
  // exception rethrow can never touch a dead frame.
  struct Join {
    std::mutex mutex;
    std::condition_variable done;
    std::size_t remaining;
    std::exception_ptr error;
  };
  auto join = std::make_shared<Join>();
  join->remaining = shards - 1;

  auto run_shard = [count, shards, &body](std::size_t shard) {
    const std::size_t begin = shard * count / shards;
    const std::size_t end = (shard + 1) * count / shards;
    body(shard, begin, end);
  };

  for (std::size_t s = 1; s < shards; ++s) {
    submit([join, run_shard, s] {
      try {
        run_shard(s);
      } catch (...) {
        std::lock_guard<std::mutex> lock(join->mutex);
        if (!join->error) join->error = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(join->mutex);
      if (--join->remaining == 0) join->done.notify_all();
    });
  }

  // The caller works too: shard 0 runs here.
  try {
    run_shard(0);
  } catch (...) {
    std::lock_guard<std::mutex> lock(join->mutex);
    if (!join->error) join->error = std::current_exception();
  }

  std::unique_lock<std::mutex> lock(join->mutex);
  join->done.wait(lock, [&] { return join->remaining == 0; });
  if (join->error) std::rethrow_exception(join->error);
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;
  return pool;
}

}  // namespace syncon
