#include "support/thread_pool.hpp"

#include <algorithm>
#include <exception>
#include <memory>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "support/contracts.hpp"

namespace syncon {

namespace {

// Time a submitted task spent queued before a worker picked it up. Called
// only when obs::enabled() was set at submit time.
void record_task_wait(std::uint64_t wait_us) {
  auto& registry = obs::MetricRegistry::global();
  static obs::Counter& tasks = registry.counter("syncon_pool_tasks_total");
  static obs::Histogram& wait = registry.histogram(
      "syncon_pool_task_wait_us",
      obs::HistogramSpec::exponential(1.0, 65536.0));
  const std::size_t shard = obs::current_thread_slot();
  tasks.add(1, shard);
  wait.record(static_cast<double>(wait_us), shard);
}

}  // namespace

ThreadPool::ThreadPool(std::size_t thread_count) {
  if (thread_count == 0) {
    thread_count = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(thread_count);
  for (std::size_t i = 0; i < thread_count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  SYNCON_REQUIRE(task != nullptr, "submit needs a task");
  if (obs::enabled()) {
    // Wrap to measure queue wait; the extra allocation happens only with
    // telemetry on.
    const std::uint64_t enqueued = obs::now_us();
    task = [enqueued, inner = std::move(task)] {
      record_task_wait(obs::now_us() - enqueued);
      inner();
    };
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    SYNCON_REQUIRE(!stopping_, "submit on a stopping pool");
    queue_.push_back(std::move(task));
  }
  wake_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_.notify_all();
    }
  }
}

void ThreadPool::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

std::size_t ThreadPool::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size() + active_;
}

void ThreadPool::parallel_for(
    std::size_t count,
    const std::function<void(std::size_t shard, std::size_t begin,
                             std::size_t end)>& body,
    std::size_t shards) {
  SYNCON_REQUIRE(body != nullptr, "parallel_for needs a body");
  if (shards == 0) shards = thread_count();
  shards = std::max<std::size_t>(1, std::min(shards, std::max<std::size_t>(count, 1)));

  // Per-call join state; shared_ptr so stray workers finishing after an
  // exception rethrow can never touch a dead frame.
  struct Join {
    std::mutex mutex;
    std::condition_variable done;
    std::size_t remaining;
    std::exception_ptr error;
  };
  auto join = std::make_shared<Join>();
  join->remaining = shards - 1;

  // With telemetry on, time each shard so the join can report imbalance.
  // Distinct indices: no synchronization needed beyond the join itself.
  auto durations =
      obs::enabled()
          ? std::make_shared<std::vector<std::uint64_t>>(shards, 0)
          : nullptr;

  auto run_shard = [count, shards, &body, durations](std::size_t shard) {
    const std::size_t begin = shard * count / shards;
    const std::size_t end = (shard + 1) * count / shards;
    if (durations != nullptr) {
      const std::uint64_t t0 = obs::now_us();
      body(shard, begin, end);
      (*durations)[shard] = obs::now_us() - t0;
    } else {
      body(shard, begin, end);
    }
  };

  for (std::size_t s = 1; s < shards; ++s) {
    submit([join, run_shard, s] {
      try {
        run_shard(s);
      } catch (...) {
        std::lock_guard<std::mutex> lock(join->mutex);
        if (!join->error) join->error = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(join->mutex);
      if (--join->remaining == 0) join->done.notify_all();
    });
  }

  // The caller works too: shard 0 runs here.
  try {
    run_shard(0);
  } catch (...) {
    std::lock_guard<std::mutex> lock(join->mutex);
    if (!join->error) join->error = std::current_exception();
  }

  std::unique_lock<std::mutex> lock(join->mutex);
  join->done.wait(lock, [&] { return join->remaining == 0; });
  if (join->error) std::rethrow_exception(join->error);

  if (durations != nullptr) {
    // Recorded at the join, in shard order, on the caller's thread:
    // deterministic sample order regardless of worker scheduling.
    auto& registry = obs::MetricRegistry::global();
    static obs::Counter& calls =
        registry.counter("syncon_pool_parallel_for_total");
    static obs::Histogram& shard_us = registry.histogram(
        "syncon_pool_shard_us",
        obs::HistogramSpec::exponential(1.0, 65536.0));
    static obs::Histogram& imbalance = registry.histogram(
        "syncon_pool_shard_imbalance_us",
        obs::HistogramSpec::exponential(1.0, 65536.0));
    calls.add(1);
    const auto [lo, hi] =
        std::minmax_element(durations->begin(), durations->end());
    for (const std::uint64_t d : *durations) {
      shard_us.record(static_cast<double>(d));
    }
    imbalance.record(static_cast<double>(*hi - *lo));
  }
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;
  return pool;
}

}  // namespace syncon
