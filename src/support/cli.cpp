#include "support/cli.hpp"

#include <cstdio>
#include <stdexcept>

#include "support/contracts.hpp"

namespace syncon {

CliParser::CliParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void CliParser::add_option(std::string name, std::string default_value,
                           std::string help) {
  SYNCON_REQUIRE(!options_.count(name), "duplicate option: " + name);
  options_[std::move(name)] =
      Option{std::move(default_value), std::move(help), false};
}

void CliParser::add_flag(std::string name, std::string help) {
  SYNCON_REQUIRE(!options_.count(name), "duplicate flag: " + name);
  options_[std::move(name)] = Option{"false", std::move(help), true};
}

bool CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "-h" || arg == "--help") {
      print_help();
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string name = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_value = true;
    }
    auto it = options_.find(name);
    if (it == options_.end()) {
      std::fprintf(stderr, "unknown option --%s\n\n", name.c_str());
      print_help();
      return false;
    }
    if (it->second.is_flag) {
      values_[name] = has_value ? value : "true";
    } else if (has_value) {
      values_[name] = value;
    } else if (i + 1 < argc) {
      values_[name] = argv[++i];
    } else {
      std::fprintf(stderr, "option --%s needs a value\n\n", name.c_str());
      print_help();
      return false;
    }
  }
  return true;
}

std::string CliParser::get(const std::string& name) const {
  auto opt = options_.find(name);
  SYNCON_REQUIRE(opt != options_.end(), "unregistered option: " + name);
  auto it = values_.find(name);
  return it != values_.end() ? it->second : opt->second.default_value;
}

std::int64_t CliParser::get_int(const std::string& name) const {
  const std::string value = get(name);
  try {
    std::size_t consumed = 0;
    const std::int64_t parsed = std::stoll(value, &consumed);
    SYNCON_REQUIRE(consumed == value.size(),
                   "option --" + name + " has trailing junk: " + value);
    return parsed;
  } catch (const ContractViolation&) {
    throw;
  } catch (const std::exception&) {
    throw ContractViolation("option --" + name + " is not an integer: " +
                            value);
  }
}

std::uint64_t CliParser::get_uint(const std::string& name) const {
  // Parsed as unsigned directly (not via get_int): values above 2^63-1 are
  // legitimate here — e.g. replaying a 64-bit case seed.
  const std::string value = get(name);
  SYNCON_REQUIRE(value.empty() || value[0] != '-',
                 "option --" + name + " must be non-negative");
  try {
    std::size_t consumed = 0;
    const std::uint64_t parsed = std::stoull(value, &consumed);
    SYNCON_REQUIRE(consumed == value.size(),
                   "option --" + name + " has trailing junk: " + value);
    return parsed;
  } catch (const ContractViolation&) {
    throw;
  } catch (const std::exception&) {
    throw ContractViolation("option --" + name + " is not an integer: " +
                            value);
  }
}

double CliParser::get_double(const std::string& name) const {
  const std::string value = get(name);
  try {
    return std::stod(value);
  } catch (const std::exception&) {
    throw ContractViolation("option --" + name + " is not a number: " +
                            value);
  }
}

bool CliParser::get_flag(const std::string& name) const {
  const std::string v = get(name);
  return v == "true" || v == "1" || v == "yes";
}

void CliParser::print_help() const {
  std::printf("%s — %s\n\nOptions:\n", program_.c_str(),
              description_.c_str());
  for (const auto& [name, opt] : options_) {
    if (opt.is_flag) {
      std::printf("  --%-22s %s\n", name.c_str(), opt.help.c_str());
    } else {
      std::printf("  --%-22s %s (default: %s)\n", (name + "=<v>").c_str(),
                  opt.help.c_str(), opt.default_value.c_str());
    }
  }
}

}  // namespace syncon
