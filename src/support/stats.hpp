// Small statistics accumulators used by the benchmark harness and the
// monitor's summary reports.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace syncon {

/// Streaming accumulator: count/min/max/mean/variance (Welford).
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double sum() const { return sum_; }

  void merge(const RunningStats& other);

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Retaining accumulator with exact quantiles; used where percentile
/// reporting matters (e.g. distribution of comparison counts). Quantile
/// queries sort once and memoize; add()/merge() invalidate the memo.
class SampleSet {
 public:
  void add(double x) {
    values_.push_back(x);
    dirty_ = true;
  }
  /// Appends all of `other`'s samples.
  void merge(const SampleSet& other);
  std::size_t count() const { return values_.size(); }
  double mean() const;
  double min() const;
  double max() const;
  /// Quantile in [0, 1] by linear interpolation; requires nonempty set.
  double quantile(double q) const;
  double median() const { return quantile(0.5); }

 private:
  std::vector<double> values_;
  mutable std::vector<double> sorted_;
  mutable bool dirty_ = true;
  void ensure_sorted() const;
};

/// Histogram over integer values; used to summarize per-pair comparison
/// counts against the Theorem 20 bounds.
class IntHistogram {
 public:
  void add(std::uint64_t value);
  std::uint64_t count() const { return total_; }
  std::uint64_t max_value() const { return max_; }
  std::uint64_t min_value() const { return total_ == 0 ? 0 : min_; }
  double mean() const;
  /// Number of samples strictly greater than `bound` (bound violations).
  std::uint64_t count_above(std::uint64_t bound) const;

 private:
  std::vector<std::uint64_t> buckets_;  // buckets_[v] = multiplicity of v
  std::uint64_t total_ = 0;
  std::uint64_t max_ = 0;
  std::uint64_t min_ = ~std::uint64_t{0};
  std::uint64_t weighted_sum_ = 0;
};

}  // namespace syncon
