#include "support/stats.hpp"

#include <algorithm>
#include <cmath>

#include "support/contracts.hpp"

namespace syncon {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void SampleSet::ensure_sorted() const {
  if (!dirty_) return;
  sorted_ = values_;
  std::sort(sorted_.begin(), sorted_.end());
  dirty_ = false;
}

void SampleSet::merge(const SampleSet& other) {
  if (other.values_.empty()) return;
  values_.insert(values_.end(), other.values_.begin(), other.values_.end());
  dirty_ = true;
}

double SampleSet::mean() const {
  SYNCON_REQUIRE(!values_.empty(), "mean of empty sample set");
  double s = 0;
  for (double v : values_) s += v;
  return s / static_cast<double>(values_.size());
}

double SampleSet::min() const {
  SYNCON_REQUIRE(!values_.empty(), "min of empty sample set");
  ensure_sorted();
  return sorted_.front();
}

double SampleSet::max() const {
  SYNCON_REQUIRE(!values_.empty(), "max of empty sample set");
  ensure_sorted();
  return sorted_.back();
}

double SampleSet::quantile(double q) const {
  SYNCON_REQUIRE(!values_.empty(), "quantile of empty sample set");
  SYNCON_REQUIRE(q >= 0.0 && q <= 1.0, "quantile requires q in [0, 1]");
  ensure_sorted();
  if (sorted_.size() == 1) return sorted_[0];
  const double pos = q * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

void IntHistogram::add(std::uint64_t value) {
  if (value >= buckets_.size()) buckets_.resize(value + 1, 0);
  ++buckets_[value];
  ++total_;
  max_ = std::max(max_, value);
  min_ = std::min(min_, value);
  weighted_sum_ += value;
}

double IntHistogram::mean() const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(weighted_sum_) / static_cast<double>(total_);
}

std::uint64_t IntHistogram::count_above(std::uint64_t bound) const {
  std::uint64_t n = 0;
  for (std::size_t v = static_cast<std::size_t>(bound) + 1;
       v < buckets_.size(); ++v) {
    n += buckets_[v];
  }
  return n;
}

}  // namespace syncon
