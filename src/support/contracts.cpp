#include "support/contracts.hpp"

#include <sstream>

namespace syncon::detail {

void contract_failure(const char* kind, const char* condition,
                      const char* file, int line,
                      const std::string& message) {
  std::ostringstream oss;
  oss << "syncon " << kind << " violated: " << message << " [" << condition
      << "] at " << file << ":" << line;
  throw ContractViolation(oss.str());
}

}  // namespace syncon::detail
