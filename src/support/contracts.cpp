#include "support/contracts.hpp"

#include <sstream>

#include "obs/flight.hpp"

namespace syncon::detail {

void contract_failure(const char* kind, const char* condition,
                      const char* file, int line,
                      const std::string& message) {
  // A contract failure is exactly the moment the flight recorder exists
  // for: note it and flush the ring before the exception unwinds state.
  obs::flight(obs::FlightKind::kContractFailure, obs::FlightRecord::kNoProcess,
              static_cast<std::uint64_t>(line));
  obs::flight_auto_dump("contract-failure");
  std::ostringstream oss;
  oss << "syncon " << kind << " violated: " << message << " [" << condition
      << "] at " << file << ":" << line;
  throw ContractViolation(oss.str());
}

}  // namespace syncon::detail
