// Low-watermark cuts for bounded-memory retention (DESIGN.md §3.10).
//
// A cut timestamp (Defn 15) is a per-process event count, and Lemma 16 says
// the intersection of cuts is the componentwise min of their timestamps —
// so the componentwise minimum of "what every consumer has witnessed as a
// contiguous prefix" is itself a cut: the *low-watermark cut*. Every event
// strictly inside it has been witnessed by every consumer that could ever
// ask for it again, so its log entry can be reclaimed without changing any
// future `<<` probe, resync reply, or Definite/PendingGap verdict.
//
// What survives a compaction is a RetentionCheckpoint: the cut's timestamp
// plus, per process, the authoritative clock (and physical time) of the
// cut's surface event (Defn 6). A retransmit request that crosses the
// watermark is answered from the checkpoint — the surface report vouches
// for everything inside the cut — instead of aborting on a missing log
// entry (OnlineSystem::wire_of / serve).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "model/types.hpp"
#include "model/vector_clock.hpp"

namespace syncon {

/// What a compaction leaves behind for the reclaimed prefix of the log.
struct RetentionCheckpoint {
  /// Timestamp of the low-watermark cut, counts form (Defn 15): component p
  /// counts the dummy, so events (p, 1 .. cut[p]-1) are inside the cut and
  /// their log entries have been reclaimed.
  VectorClock cut;
  /// Per process: T of the cut's surface event (p, cut[p]-1) — the clock of
  /// ⊥_p when nothing of p was reclaimed. A retransmit request for a
  /// reclaimed event is answered with this surface report, whose clock
  /// vouches for every event inside the cut on that process.
  std::vector<VectorClock> surface_clocks;
  /// Physical time of each surface event (-1 = unstamped / nothing
  /// reclaimed, the OnlineSystem::kNoTime convention).
  std::vector<std::int64_t> surface_times;
  /// Compactions recorded so far (0 = the bottom checkpoint).
  std::uint64_t sequence = 0;
  /// Log entries reclaimed across all compactions.
  std::uint64_t reclaimed_total = 0;

  /// The checkpoint of the bottom cut E^⊥: nothing reclaimed yet.
  static RetentionCheckpoint bottom(std::size_t process_count);
};

/// Componentwise minimum of cut timestamps — by Lemma 16 the timestamp of
/// the intersection cut, i.e. the low watermark of the given consumer
/// bounds. Requires at least one bound; all must have the same size.
VectorClock low_watermark(std::span<const VectorClock> bounds);

/// True iff real event e lies inside the cut with this timestamp (counts
/// form), i.e. e.index <= cut[e.process] - 1.
bool cut_covers(const VectorClock& cut, EventId e);

/// How far each process's frontier runs ahead of the cut: the maximum over
/// p of frontier[p] - cut[p] (both counts form; 0 when the cut is the
/// frontier). This is the "watermark lag" gauge of DESIGN.md §3.10.
ClockValue watermark_lag(const VectorClock& cut, const VectorClock& frontier);

}  // namespace syncon
