// The << relation between cuts (Defn 7) and its efficient violation test
// (Key Idea 2 / Theorem 19).
//
// Canonical counts form (derived in DESIGN.md §3.2):
//   <<(C, C')  iff  C' != E^⊥  and  ∀ i ∈ N_C : counts_C[i] < counts_C'[i].
//
// The four definitional forms 7.1–7.4 are provided verbatim as reference
// implementations (7.2 and 7.4 express ¬<<, as the paper notes). They agree
// with the canonical form on every cut pair where C contains no final dummy
// event of an *event-less* process (always true for the ↓-style cuts the
// theory applies them to); tests pin down the degenerate divergence.
#pragma once

#include <cstdint>
#include <span>

#include "cuts/cut.hpp"
#include "model/clock.hpp"
#include "model/types.hpp"
#include "model/vector_clock.hpp"
#include "support/contracts.hpp"

namespace syncon {

/// Cost-model instrumentation. `integer_comparisons` counts the unit the
/// paper's Theorems 19/20 count (one per surface-timestamp probe);
/// `causality_checks` counts atomic-event causality tests (the unit of the
/// naive |N_X| x |N_Y| evaluation).
///
/// QueryCost is a plain value: evaluators accumulate into a caller-provided
/// instance, so each thread keeps its own tally and merges with `+=` at
/// join. Totals are exact regardless of scheduling — the counts are sums of
/// per-query contributions, and addition commutes.
struct QueryCost {
  std::uint64_t integer_comparisons = 0;
  std::uint64_t causality_checks = 0;

  void reset() { *this = QueryCost{}; }

  QueryCost& operator+=(const QueryCost& other) {
    integer_comparisons += other.integer_comparisons;
    causality_checks += other.causality_checks;
    return *this;
  }
  friend QueryCost operator+(QueryCost lhs, const QueryCost& rhs) {
    lhs += rhs;
    return lhs;
  }
  friend bool operator==(const QueryCost&, const QueryCost&) = default;
};

/// Legacy name for QueryCost, kept for the pre-batch-engine call sites.
using ComparisonCounter = QueryCost;

/// Canonical test for <<(C, C'); scans all |P| components.
bool ll(const Cut& c, const Cut& c_prime);

/// Convenience: ¬<<(C, C') — the form the relation conditions use.
inline bool ll_violated(const Cut& c, const Cut& c_prime) {
  return !ll(c, c_prime);
}

/// Defn 7.1 (condition for <<), implemented literally over surfaces.
bool ll_form1(const Cut& c, const Cut& c_prime);
/// Defn 7.2 (condition for ¬<<), literal.
bool not_ll_form2(const Cut& c, const Cut& c_prime);
/// Defn 7.3 (condition for <<), literal.
bool ll_form3(const Cut& c, const Cut& c_prime);
/// Defn 7.4 (condition for ¬<<), literal.
bool not_ll_form4(const Cut& c, const Cut& c_prime);

/// Theorem 19 probe: decides ¬<<(down_counts, up_counts) by examining ONLY
/// the given probe nodes, at one integer comparison each (early exit on the
/// first violation).
///
/// Preconditions (satisfied by the cuts the theorem applies to — C of
/// ↓-type determined by a set Y, C' of ↑-type determined by a set X; see
/// Key Idea 2):
///  * up_counts[i] >= 2 for every process i (↑-style cuts always reach past
///    ⊥, because ⊥_i never ⪰ a real event), so any probed violation site is
///    automatically in N_C;
///  * probe_nodes is N_X or N_Y — the proof of Theorem 19 shows a violation,
///    if any exists, is visible at a node of either set.
///
/// Generic over the clock representation: the probe touches single
/// components through the concept's at() accessor, so sparse or structured
/// backends answer it without densifying.
template <ClockRep Clock>
bool theorem19_violated(const Clock& down_counts, const Clock& up_counts,
                        std::span<const ProcessId> probe_nodes,
                        ComparisonCounter& counter) {
  SYNCON_REQUIRE(down_counts.size() == up_counts.size(),
                 "cut timestamps of different sizes");
  for (const ProcessId i : probe_nodes) {
    // One paper-counted comparison per probed node: is the ↑-cut surface
    // at i at or below the ↓-cut surface? (Defn 7.4's violation site.)
    ++counter.integer_comparisons;
    if (down_counts.at(i) >= up_counts.at(i)) return true;
  }
  return false;
}

}  // namespace syncon
