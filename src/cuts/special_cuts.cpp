#include "cuts/special_cuts.hpp"

#include "support/contracts.hpp"

namespace syncon {

Cut past_cut(const Timestamps& ts, EventId e) {
  SYNCON_REQUIRE(ts.execution().is_real(e),
                 "↓e is defined here for real events only");
  return Cut(ts.execution(), ts.past_cut_counts(e));
}

Cut future_cut(const Timestamps& ts, EventId e) {
  SYNCON_REQUIRE(ts.execution().is_real(e),
                 "e↑ is defined here for real events only");
  return Cut(ts.execution(), ts.future_cut_counts(e));
}

Cut past_cut_reference(const ReachabilityOracle& oracle, EventId e) {
  const Execution& exec = oracle.execution();
  SYNCON_REQUIRE(exec.is_real(e), "↓e is defined here for real events only");
  VectorClock counts(exec.process_count(), 0);
  for (ProcessId p = 0; p < exec.process_count(); ++p) {
    // Events of p that ⪯ e form a prefix; count them directly.
    ClockValue c = 0;
    for (EventIndex k = 0; k < exec.total_count(p); ++k) {
      if (oracle.leq(EventId{p, k}, e)) {
        c = k + 1;
      }
    }
    counts.set(p, c);
  }
  return Cut(exec, std::move(counts));
}

Cut future_cut_reference(const ReachabilityOracle& oracle, EventId e) {
  const Execution& exec = oracle.execution();
  SYNCON_REQUIRE(exec.is_real(e), "e↑ is defined here for real events only");
  VectorClock counts(exec.process_count(), 0);
  for (ProcessId p = 0; p < exec.process_count(); ++p) {
    // Defn 9: everything that ⋡ e, plus the earliest event on p that ⪰ e.
    ClockValue earliest = exec.total_count(p);  // sentinel
    for (EventIndex k = 0; k < exec.total_count(p); ++k) {
      if (oracle.leq(e, EventId{p, k})) {
        earliest = k;
        break;
      }
    }
    SYNCON_ASSERT(earliest < exec.total_count(p),
                  "⊤_p must causally follow every real event");
    counts.set(p, earliest + 1);
  }
  return Cut(exec, std::move(counts));
}

}  // namespace syncon
