#include "cuts/global_states.hpp"

#include <queue>
#include <unordered_set>
#include <vector>

#include "support/contracts.hpp"

namespace syncon {

namespace {

struct CountsHash {
  std::size_t operator()(const std::vector<ClockValue>& v) const noexcept {
    std::size_t h = 0xcbf29ce484222325ULL;
    for (const ClockValue c : v) {
      h ^= c;
      h *= 0x100000001b3ULL;
    }
    return h;
  }
};

// Can the cut with `counts` be extended by the next event of process p?
// The successor state is consistent iff every causal predecessor of that
// event is already inside the cut: T(next)[j] <= counts[j] for j != p.
bool can_advance(const Timestamps& ts, const std::vector<ClockValue>& counts,
                 ProcessId p, ClockValue limit_p) {
  const Execution& exec = ts.execution();
  const ClockValue next_index = counts[p];  // 0-based: counts[p] events held
  if (next_index + 1 > limit_p) return false;
  const EventId next{p, next_index};
  const VectorClock t = ts.forward(next);
  for (std::size_t j = 0; j < counts.size(); ++j) {
    if (j == p) continue;
    if (t[j] > counts[j]) return false;
  }
  (void)exec;
  return true;
}

// Generic BFS over the consistent-state lattice. `visit` may stop the walk;
// `expand` decides whether a state's successors are explored (used by
// definitely() to walk only ¬φ states).
std::size_t walk(const Timestamps& ts, const LatticeOptions& options,
                 const std::function<bool(const Cut&)>& visit,
                 const std::function<bool(const Cut&)>& expand) {
  const Execution& exec = ts.execution();
  const std::size_t p_count = exec.process_count();

  std::vector<ClockValue> limits(p_count);
  for (ProcessId p = 0; p < p_count; ++p) {
    limits[p] = options.include_final_dummies ? exec.total_count(p)
                                              : exec.total_count(p) - 1;
  }

  std::vector<ClockValue> bottom(p_count, 1);
  std::unordered_set<std::vector<ClockValue>, CountsHash> seen;
  std::queue<std::vector<ClockValue>> frontier;
  seen.insert(bottom);
  frontier.push(std::move(bottom));

  std::size_t visited = 0;
  while (!frontier.empty()) {
    std::vector<ClockValue> counts = std::move(frontier.front());
    frontier.pop();
    ++visited;
    SYNCON_REQUIRE(visited <= options.max_states,
                   "consistent-cut lattice exceeds the state budget");
    const Cut cut(exec, VectorClock(counts));
    if (!visit(cut)) return visited;
    if (!expand(cut)) continue;
    for (ProcessId p = 0; p < p_count; ++p) {
      if (!can_advance(ts, counts, p, limits[p])) continue;
      std::vector<ClockValue> next = counts;
      ++next[p];
      if (seen.insert(next).second) frontier.push(std::move(next));
    }
  }
  return visited;
}

}  // namespace

std::size_t for_each_consistent_cut(
    const Timestamps& ts, const std::function<bool(const Cut&)>& visit,
    const LatticeOptions& options) {
  return walk(ts, options, visit, [](const Cut&) { return true; });
}

std::size_t count_consistent_cuts(const Timestamps& ts,
                                  const LatticeOptions& options) {
  return for_each_consistent_cut(ts, [](const Cut&) { return true; },
                                 options);
}

bool possibly(const Timestamps& ts, const CutPredicate& predicate,
              const LatticeOptions& options) {
  bool found = false;
  for_each_consistent_cut(
      ts,
      [&](const Cut& cut) {
        if (predicate(cut)) {
          found = true;
          return false;  // stop the walk
        }
        return true;
      },
      options);
  return found;
}

bool definitely(const Timestamps& ts, const CutPredicate& predicate,
                const LatticeOptions& options) {
  // Definitely(φ) fails iff some maximal path avoids φ entirely: walk only
  // ¬φ states and see whether the final state is reachable.
  const Execution& exec = ts.execution();
  VectorClock top_counts(exec.process_count());
  for (ProcessId p = 0; p < exec.process_count(); ++p) {
    top_counts[p] = options.include_final_dummies ? exec.total_count(p)
                                                  : exec.total_count(p) - 1;
  }
  bool top_reached_avoiding = false;
  walk(
      ts, options,
      [&](const Cut& cut) {
        if (!predicate(cut) && cut.counts() == top_counts) {
          top_reached_avoiding = true;
          return false;
        }
        return true;
      },
      [&](const Cut& cut) { return !predicate(cut); });
  return !top_reached_avoiding;
}

}  // namespace syncon
