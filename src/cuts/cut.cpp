#include "cuts/cut.hpp"

#include "support/contracts.hpp"

namespace syncon {

Cut::Cut(const Execution& exec, VectorClock counts)
    : exec_(&exec), counts_(std::move(counts)) {
  SYNCON_REQUIRE(counts_.size() == exec.process_count(),
                 "cut counts size must equal the process count");
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    SYNCON_REQUIRE(counts_.at(i) >= 1,
                   "a cut contains at least ⊥_i of every process (Defn 5)");
    SYNCON_REQUIRE(counts_.at(i) <= exec.total_count(static_cast<ProcessId>(i)),
                   "cut contains more events than the process has");
  }
}

Cut Cut::bottom(const Execution& exec) {
  return Cut(exec, VectorClock(exec.process_count(), 1));
}

Cut Cut::full(const Execution& exec) {
  VectorClock counts(exec.process_count());
  for (std::size_t i = 0; i < counts.size(); ++i) {
    counts.set(i, exec.total_count(static_cast<ProcessId>(i)));
  }
  return Cut(exec, std::move(counts));
}

bool Cut::contains(EventId e) const {
  SYNCON_REQUIRE(exec_->valid_event(e), "contains() of invalid event");
  return e.index < counts_[e.process];
}

EventId Cut::surface_event(ProcessId i) const {
  SYNCON_REQUIRE(i < counts_.size(), "process id out of range");
  return EventId{i, counts_[i] - 1};
}

std::vector<EventId> Cut::surface() const {
  std::vector<EventId> s;
  s.reserve(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    s.push_back(surface_event(static_cast<ProcessId>(i)));
  }
  return s;
}

bool Cut::node_in_node_set(ProcessId i) const {
  SYNCON_REQUIRE(i < counts_.size(), "process id out of range");
  // Defn 1: E_i ∩ C ⊄ {⊥_i, ⊤_i}. With per-process prefixes this means the
  // cut holds a real event of i — at least two events, and not only the
  // degenerate {⊥_i, ⊤_i} of an empty process.
  return counts_[i] >= 2 && exec_->real_count(i) > 0;
}

std::vector<ProcessId> Cut::node_set() const {
  std::vector<ProcessId> nodes;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (node_in_node_set(static_cast<ProcessId>(i))) {
      nodes.push_back(static_cast<ProcessId>(i));
    }
  }
  return nodes;
}

bool Cut::is_bottom() const {
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] != 1) return false;
  }
  return true;
}

std::size_t Cut::event_count() const {
  std::size_t total = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) total += counts_[i];
  return total;
}

bool Cut::subset_of(const Cut& other) const {
  SYNCON_REQUIRE(exec_ == other.exec_, "cuts of different executions");
  return counts_.leq(other.counts_);
}

bool Cut::proper_subset_of(const Cut& other) const {
  return subset_of(other) && counts_ != other.counts_;
}

Cut Cut::set_union(const Cut& a, const Cut& b) {
  SYNCON_REQUIRE(a.exec_ == b.exec_, "cuts of different executions");
  return Cut(*a.exec_, component_max(a.counts_, b.counts_));
}

Cut Cut::set_intersection(const Cut& a, const Cut& b) {
  SYNCON_REQUIRE(a.exec_ == b.exec_, "cuts of different executions");
  return Cut(*a.exec_, component_min(a.counts_, b.counts_));
}

std::vector<Message> Cut::in_transit() const {
  std::vector<Message> out;
  for (const Message& m : exec_->messages()) {
    if (contains(m.source) && !contains(m.target)) out.push_back(m);
  }
  return out;
}

std::vector<Message> Cut::orphan_messages() const {
  std::vector<Message> out;
  for (const Message& m : exec_->messages()) {
    if (contains(m.target) && !contains(m.source)) out.push_back(m);
  }
  return out;
}

bool Cut::globally_consistent(const Timestamps& ts) const {
  SYNCON_REQUIRE(&ts.execution() == exec_,
                 "timestamps belong to a different execution");
  // Consistent iff for every surface event s_i, ↓s_i ⊆ C, i.e. T(s_i) ≤
  // counts componentwise.
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const EventId s = surface_event(static_cast<ProcessId>(i));
    if (!ts.forward(s).leq(counts_)) return false;
  }
  return true;
}

}  // namespace syncon
