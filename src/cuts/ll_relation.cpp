#include "cuts/ll_relation.hpp"

#include "support/contracts.hpp"

namespace syncon {

namespace {

void require_same_execution(const Cut& c, const Cut& c_prime) {
  SYNCON_REQUIRE(&c.execution() == &c_prime.execution(),
                 "<< compares cuts of the same execution");
}

bool is_initial_dummy(const Cut& cut, ProcessId i) {
  return cut.counts()[i] == 1;
}

}  // namespace

bool ll(const Cut& c, const Cut& c_prime) {
  require_same_execution(c, c_prime);
  if (c_prime.is_bottom()) return false;
  const VectorClock& a = c.counts();
  const VectorClock& b = c_prime.counts();
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto p = static_cast<ProcessId>(i);
    if (c.node_in_node_set(p) && a[i] >= b[i]) return false;
  }
  return true;
}

bool ll_form1(const Cut& c, const Cut& c_prime) {
  require_same_execution(c, c_prime);
  // (∀z ∈ S(C)\E^⊥ : z ∉ S(C') ∧ z ∈ C') ∧ C' ≠ E^⊥
  if (c_prime.is_bottom()) return false;
  for (std::size_t i = 0; i < c.process_count(); ++i) {
    const auto p = static_cast<ProcessId>(i);
    if (is_initial_dummy(c, p)) continue;  // z ∈ E^⊥
    const EventId z = c.surface_event(p);
    const bool in_surface_cp = (c_prime.surface_event(p) == z);
    const bool in_cp = c_prime.contains(z);
    if (in_surface_cp || !in_cp) return false;
  }
  return true;
}

bool not_ll_form2(const Cut& c, const Cut& c_prime) {
  require_same_execution(c, c_prime);
  // (∃z ∈ S(C)\E^⊥ : z ∈ S(C') ∨ z ∉ C') ∨ C' = E^⊥
  if (c_prime.is_bottom()) return true;
  for (std::size_t i = 0; i < c.process_count(); ++i) {
    const auto p = static_cast<ProcessId>(i);
    if (is_initial_dummy(c, p)) continue;
    const EventId z = c.surface_event(p);
    if (c_prime.surface_event(p) == z || !c_prime.contains(z)) return true;
  }
  return false;
}

bool ll_form3(const Cut& c, const Cut& c_prime) {
  require_same_execution(c, c_prime);
  // (∀z ∈ S(C')\E^⊥ : z ∉ C) ∧ C' ≠ E^⊥ ∧ N_C ⊆ N_C'
  if (c_prime.is_bottom()) return false;
  for (std::size_t i = 0; i < c.process_count(); ++i) {
    const auto p = static_cast<ProcessId>(i);
    if (!is_initial_dummy(c_prime, p)) {
      const EventId z = c_prime.surface_event(p);
      if (c.contains(z)) return false;
    }
    if (c.node_in_node_set(p) && !c_prime.node_in_node_set(p)) return false;
  }
  return true;
}

bool not_ll_form4(const Cut& c, const Cut& c_prime) {
  require_same_execution(c, c_prime);
  // (∃z ∈ S(C')\E^⊥ : z ∈ C) ∨ C' = E^⊥ ∨ N_C ⊄ N_C'
  if (c_prime.is_bottom()) return true;
  for (std::size_t i = 0; i < c.process_count(); ++i) {
    const auto p = static_cast<ProcessId>(i);
    if (!is_initial_dummy(c_prime, p) && c.contains(c_prime.surface_event(p))) {
      return true;
    }
    if (c.node_in_node_set(p) && !c_prime.node_in_node_set(p)) return true;
  }
  return false;
}

}  // namespace syncon
