#include "cuts/watermark.hpp"

#include <algorithm>
#include <string>

#include "support/contracts.hpp"

namespace syncon {

RetentionCheckpoint RetentionCheckpoint::bottom(std::size_t process_count) {
  SYNCON_REQUIRE(process_count > 0, "checkpoint needs at least one process");
  RetentionCheckpoint cp;
  cp.cut = VectorClock(process_count, 1);  // |C ∩ E_p| = 1: just ⊥_p
  cp.surface_times.assign(process_count, -1);
  cp.surface_clocks.reserve(process_count);
  for (std::size_t p = 0; p < process_count; ++p) {
    VectorClock c(process_count, 0);
    c.set(p, 1);  // T(⊥_p)
    cp.surface_clocks.push_back(std::move(c));
  }
  return cp;
}

VectorClock low_watermark(std::span<const VectorClock> bounds) {
  SYNCON_REQUIRE(!bounds.empty(),
                 "low watermark of zero consumer bounds is undefined");
  VectorClock out = bounds.front();
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    SYNCON_REQUIRE(bounds[i].size() == out.size(),
                   "consumer bound " + std::to_string(i) + " has " +
                       std::to_string(bounds[i].size()) +
                       " components; expected " + std::to_string(out.size()));
    out.merge_min(bounds[i]);
  }
  return out;
}

bool cut_covers(const VectorClock& cut, EventId e) {
  SYNCON_REQUIRE(e.process < cut.size(),
                 "event of unknown process " + std::to_string(e.process));
  SYNCON_REQUIRE(e.index >= 1, "real events have index >= 1");
  return e.index < cut[e.process];
}

ClockValue watermark_lag(const VectorClock& cut, const VectorClock& frontier) {
  SYNCON_REQUIRE(cut.size() == frontier.size(),
                 "cut and frontier cover different process counts");
  ClockValue lag = 0;
  for (std::size_t p = 0; p < cut.size(); ++p) {
    SYNCON_REQUIRE(cut[p] <= frontier[p],
                   "watermark cut runs ahead of the frontier at process " +
                       std::to_string(p));
    lag = std::max(lag, frontier[p] - cut[p]);
  }
  return lag;
}

}  // namespace syncon
