// Cuts of an execution (Defn 5): unions of per-process prefixes of each E_i.
//
// Because Defn 5 closes downward only within each process's linear order, a
// cut is fully determined by how many events of each process it contains —
// which is exactly its timestamp T(C) under Defn 15 (whose max is taken over
// the events of C *on node i*). A Cut therefore stores one `counts` vector:
//   counts[i] = |C ∩ E_i|, with 1 <= counts[i] <= n_i + 2
// (>= 1 because E^⊥ ⊆ C). The surface S(C) (Defn 6) at node i is the event
// with index counts[i] - 1.
#pragma once

#include <vector>

#include "model/execution.hpp"
#include "model/timestamps.hpp"
#include "model/types.hpp"
#include "model/vector_clock.hpp"

namespace syncon {

class Cut {
 public:
  /// Wraps a counts vector; validates 1 <= counts[i] <= total_count(i).
  Cut(const Execution& exec, VectorClock counts);

  /// The bottom cut E^⊥ = {⊥_0, …, ⊥_{P-1}}.
  static Cut bottom(const Execution& exec);
  /// The full execution (every event of every process).
  static Cut full(const Execution& exec);

  const Execution& execution() const { return *exec_; }
  /// T(C) (Defn 15) — identical to the per-process membership counts.
  const VectorClock& counts() const { return counts_; }
  std::size_t process_count() const { return counts_.size(); }

  bool contains(EventId e) const;

  /// The single surface event of C at node i (Defn 6): latest event in C∩E_i.
  EventId surface_event(ProcessId i) const;
  /// S(C): surface events of every process, by process id.
  std::vector<EventId> surface() const;

  /// N_C (Defn 1): processes whose portion of C is not just {⊥_i} —
  /// equivalently counts[i] >= 2 excluding the degenerate {⊥_i, ⊤_i}-only
  /// processes (n_i = 0), which Defn 1 excludes from every node set.
  std::vector<ProcessId> node_set() const;
  bool node_in_node_set(ProcessId i) const;

  bool is_bottom() const;
  /// Total number of events in the cut (dummies included).
  std::size_t event_count() const;

  bool subset_of(const Cut& other) const;
  bool proper_subset_of(const Cut& other) const;

  /// Lattice operations; by Lemma 16 these are componentwise max / min.
  static Cut set_union(const Cut& a, const Cut& b);
  static Cut set_intersection(const Cut& a, const Cut& b);

  /// True iff the cut is also downward-closed in the *global* order (E, ≺),
  /// i.e. a consistent global state. ↓-style cuts are; ↑-style generally
  /// are not (the paper notes this after Defn 10).
  bool globally_consistent(const Timestamps& ts) const;

  /// Messages sent inside the cut but not yet received — the channel state
  /// of the global snapshot this cut represents.
  std::vector<Message> in_transit() const;

  /// Messages whose receive is inside the cut but whose send is not. A
  /// per-process-prefix cut is a consistent global state iff it has no
  /// orphans and contains a final dummy only when it contains every real
  /// event (verified against globally_consistent() in tests).
  std::vector<Message> orphan_messages() const;

  friend bool operator==(const Cut& a, const Cut& b) {
    return a.exec_ == b.exec_ && a.counts_ == b.counts_;
  }

 private:
  const Execution* exec_;
  VectorClock counts_;
};

}  // namespace syncon
