// The lattice of consistent global states and weak/strong predicate
// detection (Possibly / Definitely in the Cooper–Marzullo sense). The paper
// leans on this classical picture ("the set of all cuts forms a lattice
// ordered by ⊆", §2.1) and its reference [11] uses the relations for
// distributed predicate specification; this module supplies the substrate.
//
// Enumeration is exponential in the worst case (that is inherent); it is
// intended for verification-scale executions and guarded by an explicit
// budget.
#pragma once

#include <cstddef>
#include <functional>

#include "cuts/cut.hpp"
#include "model/timestamps.hpp"

namespace syncon {

/// A predicate over consistent global states.
using CutPredicate = std::function<bool(const Cut&)>;

struct LatticeOptions {
  /// Hard cap on visited states; exceeding it throws ContractViolation.
  std::size_t max_states = 1u << 20;
  /// When false (default), the dummy final events are excluded — the
  /// lattice ranges over states of the computation proper. (Because
  /// e ≺ ⊤_j for every event e, any state containing a ⊤ contains every
  /// real event, which is rarely what a predicate is about.)
  bool include_final_dummies = false;
};

/// Visits every consistent global state exactly once, in BFS order by event
/// count, starting from E^⊥. Stops early if `visit` returns false.
/// Returns the number of states visited.
std::size_t for_each_consistent_cut(const Timestamps& ts,
                                    const std::function<bool(const Cut&)>& visit,
                                    const LatticeOptions& options = {});

/// Number of consistent global states.
std::size_t count_consistent_cuts(const Timestamps& ts,
                                  const LatticeOptions& options = {});

/// Possibly(φ): some consistent global state satisfies φ — some observer
/// could have seen φ.
bool possibly(const Timestamps& ts, const CutPredicate& predicate,
              const LatticeOptions& options = {});

/// Definitely(φ): every observation (every maximal path through the state
/// lattice) passes through a state satisfying φ.
bool definitely(const Timestamps& ts, const CutPredicate& predicate,
                const LatticeOptions& options = {});

}  // namespace syncon
