// The two special cuts of an atomic event (Defns 8 and 9):
//   ↓e — the causal past CP(e): maximal set of events that ⪯ e;
//   e↑ — the complement of the causal future CCF(e): the prefix reaching, on
//        every process, exactly up to (and including) the first event ⪰ e.
//
// Each is provided in two implementations: the O(|P|) timestamp-based one
// used by the library, and an extensional reference built by scanning every
// event against the ReachabilityOracle (used to cross-validate in tests).
#pragma once

#include "cuts/cut.hpp"
#include "model/reachability.hpp"
#include "model/timestamps.hpp"

namespace syncon {

/// ↓e via timestamps: counts = T(e). Requires a real event.
Cut past_cut(const Timestamps& ts, EventId e);

/// e↑ via timestamps: counts[i] = F(e)[i] + 1. Requires a real event.
Cut future_cut(const Timestamps& ts, EventId e);

/// ↓e by brute-force reachability scan (reference).
Cut past_cut_reference(const ReachabilityOracle& oracle, EventId e);

/// e↑ by brute-force reachability scan (reference).
Cut future_cut_reference(const ReachabilityOracle& oracle, EventId e);

}  // namespace syncon
