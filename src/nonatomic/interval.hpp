// Nonatomic (poset) events — the paper's "intervals": non-empty sets of
// atomic events grouped into one application-level action, possibly spanning
// several processes (Section 1).
//
// Also implements the two proxy definitions:
//   Defn 2 — L_X / U_X as the per-node least / greatest events of X
//            (always non-empty, one event per node of N_X);
//   Defn 3 — L_X / U_X as the events that ⪯ / ⪰ *every* event of X
//            (may be empty for genuinely nonlinear X).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "model/execution.hpp"
#include "model/timestamps.hpp"
#include "model/types.hpp"

namespace syncon {

/// Which proxy of a nonatomic event: its beginning (L_X) or its end (U_X).
enum class ProxyKind { Begin, End };

const char* to_string(ProxyKind kind);

class NonatomicEvent {
 public:
  /// `events` must be non-empty, contain only real events of `exec`, and is
  /// deduplicated and sorted internally.
  NonatomicEvent(const Execution& exec, std::vector<EventId> events,
                 std::string label = {});

  const Execution& execution() const { return *exec_; }
  const std::string& label() const { return label_; }

  /// Component atomic events, sorted by (process, index).
  const std::vector<EventId>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }
  bool contains(EventId e) const;

  /// N_X (Defn 1): processes on which the event has a component, ascending.
  const std::vector<ProcessId>& node_set() const { return nodes_; }
  std::size_t node_count() const { return nodes_.size(); }
  bool occurs_on(ProcessId p) const;

  /// Least / greatest event of X ∩ E_p; requires p ∈ N_X.
  EventId least_on(ProcessId p) const;
  EventId greatest_on(ProcessId p) const;

  /// Defn 2 proxy: one event per node of N_X (least for Begin, greatest for
  /// End). Its node set equals N_X.
  NonatomicEvent proxy_per_node(ProxyKind kind) const;

  /// Defn 3 proxy: events of X that ⪯ (Begin) / ⪰ (End) every event of X.
  /// Empty (nullopt) when X has no global extremum.
  std::optional<NonatomicEvent> proxy_global(ProxyKind kind,
                                             const Timestamps& ts) const;

 private:
  struct NodeSpan {
    ProcessId process;
    EventIndex least;
    EventIndex greatest;
  };

  const NodeSpan& span_of(ProcessId p) const;

  const Execution* exec_;
  std::string label_;
  std::vector<EventId> events_;
  std::vector<ProcessId> nodes_;
  std::vector<NodeSpan> spans_;  // parallel to nodes_
};

}  // namespace syncon
