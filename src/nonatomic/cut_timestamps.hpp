// The four execution prefixes a nonatomic poset event X identifies
// (Defn 10 / Table 2) and their timestamps (Lemma 16 / Corollary 17):
//
//   C1(X) = ∩⇓X = ∩_{x∈X} ↓x   — past every x knows      (min of T(x))
//   C2(X) = ∪⇓X = ∪_{x∈X} ↓x   — past X collectively knows (max of T(x))
//   C3(X) = ∩⇑X = ∩_{x∈X} x↑   — future started by some x  (min of T(x↑))
//   C4(X) = ∪⇑X = ∪_{x∈X} x↑   — future started by all x   (max of T(x↑))
//
// BasicEventCuts computes all four timestamps once per nonatomic event (Key
// Idea 1) touching only the per-node extreme elements of X (the end-of-§2.3
// optimization: the min is attained at per-node least events, the max at
// per-node greatest events), i.e. |N_X| event timestamps per cut instead of
// |X|. It is generic over the clock representation (ClockRep), folding the
// stored stamped clocks in place — no per-node temporaries — and applying
// the uniform +1 that turns F(x) into the e↑ cut counts once at the end
// (min and max commute with adding the same constant to every component).
//
// `EventCuts` remains the dense VectorClock instantiation. Materializing a
// Cut densifies through counts(...).to_dense() — cut arithmetic past this
// point stays on VectorClock (the dense boundary, DESIGN.md §3.11).
#pragma once

#include "cuts/cut.hpp"
#include "model/clock.hpp"
#include "model/timestamps.hpp"
#include "model/vector_clock.hpp"
#include "nonatomic/interval.hpp"
#include "support/contracts.hpp"

namespace syncon {

/// Identifies one of the four special cuts of a poset event (Table 2).
enum class PosetCut {
  IntersectPast,   // C1(X) = ∩⇓X
  UnionPast,       // C2(X) = ∪⇓X
  IntersectFuture, // C3(X) = ∩⇑X
  UnionFuture,     // C4(X) = ∪⇑X
};

const char* to_string(PosetCut which);

/// The cached cut timestamps of one nonatomic event. Construction costs
/// O(|N_X| · |P|) and is reused across every relation evaluation involving
/// the event (Key Idea 1).
template <ClockRep Clock>
class BasicEventCuts {
 public:
  using clock_type = Clock;

  BasicEventCuts(const BasicTimestamps<Clock>& ts, const NonatomicEvent& x);

  const NonatomicEvent& event() const { return *event_; }
  const BasicTimestamps<Clock>& timestamps() const { return *ts_; }

  /// T(Ck(X)) as per Corollary 17.
  const Clock& counts(PosetCut which) const {
    return c_[static_cast<std::size_t>(which)];
  }

  /// Materializes the chosen prefix as a Cut object (always dense: Cut
  /// arithmetic is the conversion boundary of the clock concept).
  Cut cut(PosetCut which) const {
    return Cut(ts_->execution(), counts(which).to_dense());
  }

  /// Shorthands matching the paper's notation.
  const Clock& intersect_past() const { return c_[0]; }   // ∩⇓X
  const Clock& union_past() const { return c_[1]; }       // ∪⇓X
  const Clock& intersect_future() const { return c_[2]; } // ∩⇑X
  const Clock& union_future() const { return c_[3]; }     // ∪⇑X

 private:
  const BasicTimestamps<Clock>* ts_;
  const NonatomicEvent* event_;
  Clock c_[4];
};

/// The default, dense instantiation used throughout the repo.
using EventCuts = BasicEventCuts<VectorClock>;

/// Reference computation folding over EVERY member event with the cut
/// lattice operations (no extreme-element shortcut); used by tests to
/// validate the optimized path and Lemma 16 itself. Intentionally dense.
VectorClock poset_cut_counts_reference(const Timestamps& ts,
                                       const NonatomicEvent& x,
                                       PosetCut which);

// ---------------------------------------------------------------------------
// Implementation.

template <ClockRep Clock>
BasicEventCuts<Clock>::BasicEventCuts(const BasicTimestamps<Clock>& ts,
                                      const NonatomicEvent& x)
    : ts_(&ts), event_(&x) {
  SYNCON_REQUIRE(&ts.execution() == &x.execution(),
                 "timestamps belong to a different execution");
  const Execution& exec = ts.execution();
  bool first = true;
  for (const ProcessId p : x.node_set()) {
    // Minima over ↓/↑ cuts are attained at the per-node least events and
    // maxima at the per-node greatest events (§2.3), so only extremes are
    // consulted. Real events merge straight from the stored clocks; only
    // dummy extremes (⊥/⊤ members) pay for an on-demand copy.
    const EventId lo = x.least_on(p);
    const EventId hi = x.greatest_on(p);
    if (first) {
      c_[0] = ts.forward(lo);
      c_[1] = ts.forward(hi);
      c_[2] = ts.future_start(lo);
      c_[3] = ts.future_start(hi);
      first = false;
      continue;
    }
    if (exec.is_real(lo)) {
      c_[0].merge_min(ts.forward_ref(lo));
      c_[2].merge_min(ts.future_start_ref(lo));
    } else {
      c_[0].merge_min(ts.forward(lo));
      c_[2].merge_min(ts.future_start(lo));
    }
    if (exec.is_real(hi)) {
      c_[1].merge_max(ts.forward_ref(hi));
      c_[3].merge_max(ts.future_start_ref(hi));
    } else {
      c_[1].merge_max(ts.forward(hi));
      c_[3].merge_max(ts.future_start(hi));
    }
  }
  // The future cuts fold F(x); the e↑ counts are F(x) + 1 per component,
  // and the uniform +1 commutes with min/max — apply it once at the end.
  for (Clock* f : {&c_[2], &c_[3]}) {
    for (std::size_t i = 0; i < f->size(); ++i) f->set(i, f->at(i) + 1);
  }
}

}  // namespace syncon
