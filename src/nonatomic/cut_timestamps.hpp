// The four execution prefixes a nonatomic poset event X identifies
// (Defn 10 / Table 2) and their timestamps (Lemma 16 / Corollary 17):
//
//   C1(X) = ∩⇓X = ∩_{x∈X} ↓x   — past every x knows      (min of T(x))
//   C2(X) = ∪⇓X = ∪_{x∈X} ↓x   — past X collectively knows (max of T(x))
//   C3(X) = ∩⇑X = ∩_{x∈X} x↑   — future started by some x  (min of T(x↑))
//   C4(X) = ∪⇑X = ∪_{x∈X} x↑   — future started by all x   (max of T(x↑))
//
// EventCuts computes all four timestamps once per nonatomic event (Key
// Idea 1) touching only the per-node extreme elements of X (the end-of-§2.3
// optimization: the min is attained at per-node least events, the max at
// per-node greatest events), i.e. |N_X| event timestamps per cut instead of
// |X|.
#pragma once

#include "cuts/cut.hpp"
#include "model/timestamps.hpp"
#include "model/vector_clock.hpp"
#include "nonatomic/interval.hpp"

namespace syncon {

/// Identifies one of the four special cuts of a poset event (Table 2).
enum class PosetCut {
  IntersectPast,   // C1(X) = ∩⇓X
  UnionPast,       // C2(X) = ∪⇓X
  IntersectFuture, // C3(X) = ∩⇑X
  UnionFuture,     // C4(X) = ∪⇑X
};

const char* to_string(PosetCut which);

/// The cached cut timestamps of one nonatomic event. Construction costs
/// O(|N_X| · |P|) and is reused across every relation evaluation involving
/// the event (Key Idea 1).
class EventCuts {
 public:
  EventCuts(const Timestamps& ts, const NonatomicEvent& x);

  const NonatomicEvent& event() const { return *event_; }
  const Timestamps& timestamps() const { return *ts_; }

  /// T(Ck(X)) as per Corollary 17.
  const VectorClock& counts(PosetCut which) const;

  /// Materializes the chosen prefix as a Cut object.
  Cut cut(PosetCut which) const;

  /// Shorthands matching the paper's notation.
  const VectorClock& intersect_past() const { return c_[0]; }   // ∩⇓X
  const VectorClock& union_past() const { return c_[1]; }       // ∪⇓X
  const VectorClock& intersect_future() const { return c_[2]; } // ∩⇑X
  const VectorClock& union_future() const { return c_[3]; }     // ∪⇑X

 private:
  const Timestamps* ts_;
  const NonatomicEvent* event_;
  VectorClock c_[4];
};

/// Reference computation folding over EVERY member event with the cut
/// lattice operations (no extreme-element shortcut); used by tests to
/// validate the optimized path and Lemma 16 itself.
VectorClock poset_cut_counts_reference(const Timestamps& ts,
                                       const NonatomicEvent& x,
                                       PosetCut which);

}  // namespace syncon
