#include "nonatomic/cut_timestamps.hpp"

#include "model/compressed_clock.hpp"
#include "model/tree_clock.hpp"
#include "support/contracts.hpp"

namespace syncon {

const char* to_string(PosetCut which) {
  switch (which) {
    case PosetCut::IntersectPast: return "C1 (∩⇓X)";
    case PosetCut::UnionPast: return "C2 (∪⇓X)";
    case PosetCut::IntersectFuture: return "C3 (∩⇑X)";
    case PosetCut::UnionFuture: return "C4 (∪⇑X)";
  }
  return "?";
}

VectorClock poset_cut_counts_reference(const Timestamps& ts,
                                       const NonatomicEvent& x,
                                       PosetCut which) {
  SYNCON_REQUIRE(&ts.execution() == &x.execution(),
                 "timestamps belong to a different execution");
  const bool past = which == PosetCut::IntersectPast ||
                    which == PosetCut::UnionPast;
  const bool is_min = which == PosetCut::IntersectPast ||
                      which == PosetCut::IntersectFuture;
  VectorClock acc;
  bool first = true;
  for (const EventId& e : x.events()) {
    VectorClock c = past ? ts.past_cut_counts(e) : ts.future_cut_counts(e);
    if (first) {
      acc = std::move(c);
      first = false;
    } else if (is_min) {
      acc.merge_min(c);
    } else {
      acc.merge_max(c);
    }
  }
  return acc;
}

// One compiled instance per supported backend (see model/timestamps.cpp).
template class BasicEventCuts<VectorClock>;
template class BasicEventCuts<TreeClock>;
template class BasicEventCuts<CompressedClock>;

}  // namespace syncon
