#include "nonatomic/cut_timestamps.hpp"

#include "support/contracts.hpp"

namespace syncon {

const char* to_string(PosetCut which) {
  switch (which) {
    case PosetCut::IntersectPast: return "C1 (∩⇓X)";
    case PosetCut::UnionPast: return "C2 (∪⇓X)";
    case PosetCut::IntersectFuture: return "C3 (∩⇑X)";
    case PosetCut::UnionFuture: return "C4 (∪⇑X)";
  }
  return "?";
}

EventCuts::EventCuts(const Timestamps& ts, const NonatomicEvent& x)
    : ts_(&ts), event_(&x) {
  SYNCON_REQUIRE(&ts.execution() == &x.execution(),
                 "timestamps belong to a different execution");
  bool first = true;
  for (const ProcessId p : x.node_set()) {
    // Minima over ↓/↑ cuts are attained at the per-node least events and
    // maxima at the per-node greatest events (§2.3), so only extremes are
    // consulted.
    const VectorClock least_past = ts.past_cut_counts(x.least_on(p));
    const VectorClock greatest_past = ts.past_cut_counts(x.greatest_on(p));
    const VectorClock least_future = ts.future_cut_counts(x.least_on(p));
    const VectorClock greatest_future = ts.future_cut_counts(x.greatest_on(p));
    if (first) {
      c_[0] = least_past;
      c_[1] = greatest_past;
      c_[2] = least_future;
      c_[3] = greatest_future;
      first = false;
    } else {
      c_[0].merge_min(least_past);
      c_[1].merge_max(greatest_past);
      c_[2].merge_min(least_future);
      c_[3].merge_max(greatest_future);
    }
  }
}

const VectorClock& EventCuts::counts(PosetCut which) const {
  return c_[static_cast<std::size_t>(which)];
}

Cut EventCuts::cut(PosetCut which) const {
  return Cut(ts_->execution(), counts(which));
}

VectorClock poset_cut_counts_reference(const Timestamps& ts,
                                       const NonatomicEvent& x,
                                       PosetCut which) {
  SYNCON_REQUIRE(&ts.execution() == &x.execution(),
                 "timestamps belong to a different execution");
  const bool past = which == PosetCut::IntersectPast ||
                    which == PosetCut::UnionPast;
  const bool is_min = which == PosetCut::IntersectPast ||
                      which == PosetCut::IntersectFuture;
  VectorClock acc;
  bool first = true;
  for (const EventId& e : x.events()) {
    VectorClock c = past ? ts.past_cut_counts(e) : ts.future_cut_counts(e);
    if (first) {
      acc = std::move(c);
      first = false;
    } else if (is_min) {
      acc.merge_min(c);
    } else {
      acc.merge_max(c);
    }
  }
  return acc;
}

}  // namespace syncon
