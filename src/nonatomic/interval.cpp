#include "nonatomic/interval.hpp"

#include <algorithm>

#include "support/contracts.hpp"

namespace syncon {

const char* to_string(ProxyKind kind) {
  return kind == ProxyKind::Begin ? "L" : "U";
}

NonatomicEvent::NonatomicEvent(const Execution& exec,
                               std::vector<EventId> events, std::string label)
    : exec_(&exec), label_(std::move(label)), events_(std::move(events)) {
  SYNCON_REQUIRE(!events_.empty(), "a nonatomic event is a non-empty set");
  std::sort(events_.begin(), events_.end());
  events_.erase(std::unique(events_.begin(), events_.end()), events_.end());
  for (const EventId& e : events_) {
    SYNCON_REQUIRE(exec.is_real(e),
                   "nonatomic events contain real (non-dummy) events only");
  }
  // events_ is sorted by (process, index): per-node spans are contiguous.
  for (std::size_t i = 0; i < events_.size();) {
    const ProcessId p = events_[i].process;
    std::size_t j = i;
    while (j < events_.size() && events_[j].process == p) ++j;
    nodes_.push_back(p);
    spans_.push_back(NodeSpan{p, events_[i].index, events_[j - 1].index});
    i = j;
  }
}

bool NonatomicEvent::contains(EventId e) const {
  return std::binary_search(events_.begin(), events_.end(), e);
}

bool NonatomicEvent::occurs_on(ProcessId p) const {
  return std::binary_search(nodes_.begin(), nodes_.end(), p);
}

const NonatomicEvent::NodeSpan& NonatomicEvent::span_of(ProcessId p) const {
  const auto it = std::lower_bound(nodes_.begin(), nodes_.end(), p);
  SYNCON_REQUIRE(it != nodes_.end() && *it == p,
                 "event has no component on this process");
  return spans_[static_cast<std::size_t>(it - nodes_.begin())];
}

EventId NonatomicEvent::least_on(ProcessId p) const {
  return EventId{p, span_of(p).least};
}

EventId NonatomicEvent::greatest_on(ProcessId p) const {
  return EventId{p, span_of(p).greatest};
}

NonatomicEvent NonatomicEvent::proxy_per_node(ProxyKind kind) const {
  std::vector<EventId> proxy;
  proxy.reserve(nodes_.size());
  for (const NodeSpan& s : spans_) {
    proxy.push_back(
        EventId{s.process, kind == ProxyKind::Begin ? s.least : s.greatest});
  }
  std::string name = label_.empty() ? std::string("X") : label_;
  return NonatomicEvent(*exec_, std::move(proxy),
                        std::string(to_string(kind)) + "(" + name + ")");
}

std::optional<NonatomicEvent> NonatomicEvent::proxy_global(
    ProxyKind kind, const Timestamps& ts) const {
  SYNCON_REQUIRE(&ts.execution() == exec_,
                 "timestamps belong to a different execution");
  // Only the per-node extrema can be global extrema; check each against
  // every other extremum (an event ⪯ all per-node least events is ⪯ all X).
  std::vector<EventId> result;
  for (const NodeSpan& s : spans_) {
    const EventId candidate{
        s.process, kind == ProxyKind::Begin ? s.least : s.greatest};
    bool extremal = true;
    for (const NodeSpan& other : spans_) {
      const EventId bound{other.process, kind == ProxyKind::Begin
                                             ? other.least
                                             : other.greatest};
      const bool ok = kind == ProxyKind::Begin ? ts.leq(candidate, bound)
                                               : ts.leq(bound, candidate);
      if (!ok) {
        extremal = false;
        break;
      }
    }
    if (extremal) result.push_back(candidate);
  }
  if (result.empty()) return std::nullopt;
  std::string name = label_.empty() ? std::string("X") : label_;
  return NonatomicEvent(*exec_, std::move(result),
                        std::string(to_string(kind)) + "3(" + name + ")");
}

}  // namespace syncon
