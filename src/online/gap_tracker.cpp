#include "online/gap_tracker.hpp"

#include "support/contracts.hpp"

namespace syncon {

GapTracker::GapTracker(std::size_t process_count) : peers_(process_count) {
  SYNCON_REQUIRE(process_count > 0, "gap tracker needs at least one process");
}

bool GapTracker::witness(EventId e) {
  SYNCON_REQUIRE(e.process < peers_.size(),
                 "witnessed event of unknown process " +
                     std::to_string(e.process) + " (tracker covers " +
                     std::to_string(peers_.size()) + " processes)");
  SYNCON_REQUIRE(e.index >= 1, "real events have index >= 1");
  Peer& peer = peers_[e.process];
  if (e.index <= peer.contiguous || peer.ahead.count(e.index)) {
    return false;  // duplicate
  }
  if (e.index == peer.contiguous + 1) {
    ++peer.contiguous;
    // Absorb any out-of-order arrivals that are now contiguous.
    auto it = peer.ahead.begin();
    while (it != peer.ahead.end() && *it == peer.contiguous + 1) {
      ++peer.contiguous;
      it = peer.ahead.erase(it);
    }
  } else {
    peer.ahead.insert(e.index);
  }
  ++witnessed_total_;
  return true;
}

bool GapTracker::witnessed(EventId e) const {
  SYNCON_REQUIRE(e.process < peers_.size(), "unknown process");
  const Peer& peer = peers_[e.process];
  return e.index >= 1 &&
         (e.index <= peer.contiguous || peer.ahead.count(e.index) != 0);
}

void GapTracker::claim(const VectorClock& clock) {
  SYNCON_REQUIRE(clock.size() == peers_.size(),
                 "claimed clock has " + std::to_string(clock.size()) +
                     " components, tracker covers " +
                     std::to_string(peers_.size()) + " processes");
  for (ProcessId q = 0; q < peers_.size(); ++q) {
    if (clock[q] > 0) claim(q, clock[q] - 1);  // component counts the dummy
  }
}

void GapTracker::claim(ProcessId q, EventIndex up_to) {
  SYNCON_REQUIRE(q < peers_.size(), "claim for unknown process");
  peers_[q].claimed = std::max(peers_[q].claimed, up_to);
}

std::vector<EventId> GapTracker::missing(std::size_t limit) const {
  std::vector<EventId> out;
  for (ProcessId q = 0; q < peers_.size() && out.size() < limit; ++q) {
    const Peer& peer = peers_[q];
    auto it = peer.ahead.begin();
    for (EventIndex i = peer.contiguous + 1; i <= peer.claimed; ++i) {
      while (it != peer.ahead.end() && *it < i) ++it;
      if (it != peer.ahead.end() && *it == i) continue;
      out.push_back(EventId{q, i});
      if (out.size() == limit) break;
    }
  }
  return out;
}

std::size_t GapTracker::missing_count() const {
  std::size_t holes = 0;
  for (const Peer& peer : peers_) {
    if (peer.claimed <= peer.contiguous) continue;
    // Every ahead entry is > contiguous by invariant; the ones <= claimed
    // are witnessed indices punched out of the claimed range.
    std::size_t witnessed_in_range = 0;
    for (auto it = peer.ahead.begin();
         it != peer.ahead.end() && *it <= peer.claimed; ++it) {
      ++witnessed_in_range;
    }
    holes += (peer.claimed - peer.contiguous) - witnessed_in_range;
  }
  return holes;
}

EventIndex GapTracker::contiguous_prefix(ProcessId q) const {
  SYNCON_REQUIRE(q < peers_.size(), "unknown process");
  return peers_[q].contiguous;
}

void GapTracker::forgive(ProcessId q, EventIndex up_to) {
  SYNCON_REQUIRE(q < peers_.size(), "forgive for unknown process");
  Peer& peer = peers_[q];
  if (up_to <= peer.contiguous) return;
  peer.contiguous = up_to;
  // Drop witnessed-ahead entries swallowed by the new prefix, then absorb
  // any that became contiguous — exactly the witness() absorption step.
  auto it = peer.ahead.begin();
  while (it != peer.ahead.end() && *it <= peer.contiguous) {
    it = peer.ahead.erase(it);
  }
  while (it != peer.ahead.end() && *it == peer.contiguous + 1) {
    ++peer.contiguous;
    it = peer.ahead.erase(it);
  }
}

bool GapTracker::has_gap() const {
  for (ProcessId q = 0; q < peers_.size(); ++q) {
    if (gap_on(q)) return true;
  }
  return false;
}

bool GapTracker::gap_on(ProcessId q) const {
  SYNCON_REQUIRE(q < peers_.size(), "unknown process");
  // If every witnessed index beyond the prefix were contiguous it would have
  // been absorbed, so claimed > contiguous implies a hole at contiguous + 1
  // unless the hole lies beyond everything claimed.
  return peers_[q].claimed > peers_[q].contiguous;
}

}  // namespace syncon
