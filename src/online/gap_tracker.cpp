#include "online/gap_tracker.hpp"

#include "support/contracts.hpp"

namespace syncon {

GapTracker::GapTracker(std::size_t process_count) : peers_(process_count) {
  SYNCON_REQUIRE(process_count > 0, "gap tracker needs at least one process");
}

bool GapTracker::witness(EventId e) {
  SYNCON_REQUIRE(e.process < peers_.size(),
                 "witnessed event of unknown process " +
                     std::to_string(e.process) + " (tracker covers " +
                     std::to_string(peers_.size()) + " processes)");
  SYNCON_REQUIRE(e.index >= 1, "real events have index >= 1");
  Peer& peer = peers_[e.process];
  if (e.index <= peer.contiguous || peer.ahead.count(e.index)) {
    return false;  // duplicate
  }
  if (e.index == peer.contiguous + 1) {
    ++peer.contiguous;
    // Absorb any out-of-order arrivals that are now contiguous.
    auto it = peer.ahead.begin();
    while (it != peer.ahead.end() && *it == peer.contiguous + 1) {
      ++peer.contiguous;
      it = peer.ahead.erase(it);
    }
  } else {
    peer.ahead.insert(e.index);
  }
  ++witnessed_total_;
  return true;
}

bool GapTracker::witnessed(EventId e) const {
  SYNCON_REQUIRE(e.process < peers_.size(), "unknown process");
  const Peer& peer = peers_[e.process];
  return e.index >= 1 &&
         (e.index <= peer.contiguous || peer.ahead.count(e.index) != 0);
}

void GapTracker::claim(const VectorClock& clock) {
  SYNCON_REQUIRE(clock.size() == peers_.size(),
                 "claimed clock has " + std::to_string(clock.size()) +
                     " components, tracker covers " +
                     std::to_string(peers_.size()) + " processes");
  for (ProcessId q = 0; q < peers_.size(); ++q) {
    if (clock[q] > 0) claim(q, clock[q] - 1);  // component counts the dummy
  }
}

void GapTracker::claim(ProcessId q, EventIndex up_to) {
  SYNCON_REQUIRE(q < peers_.size(), "claim for unknown process");
  peers_[q].claimed = std::max(peers_[q].claimed, up_to);
}

std::vector<EventId> GapTracker::missing() const {
  std::vector<EventId> out;
  for (ProcessId q = 0; q < peers_.size(); ++q) {
    const Peer& peer = peers_[q];
    auto it = peer.ahead.begin();
    for (EventIndex i = peer.contiguous + 1; i <= peer.claimed; ++i) {
      while (it != peer.ahead.end() && *it < i) ++it;
      if (it != peer.ahead.end() && *it == i) continue;
      out.push_back(EventId{q, i});
    }
  }
  return out;
}

bool GapTracker::has_gap() const {
  for (ProcessId q = 0; q < peers_.size(); ++q) {
    if (gap_on(q)) return true;
  }
  return false;
}

bool GapTracker::gap_on(ProcessId q) const {
  SYNCON_REQUIRE(q < peers_.size(), "unknown process");
  // If every witnessed index beyond the prefix were contiguous it would have
  // been absorbed, so claimed > contiguous implies a hole at contiguous + 1
  // unless the hole lies beyond everything claimed.
  return peers_[q].claimed > peers_[q].contiguous;
}

}  // namespace syncon
