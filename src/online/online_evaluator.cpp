#include "online/online_evaluator.hpp"

#include "support/contracts.hpp"

namespace syncon {

namespace {

// ∀ i ∈ N_X : past[i] >= bound_index(i) + 1, one comparison per node.
// With bound = greatest index this is "every x-extreme is known to the
// relevant Y aggregate"; with least index, the ∃x variants.
bool all_nodes_dominated(const IntervalSummary& x, const VectorClock& past,
                         bool use_greatest, ComparisonCounter& counter) {
  for (std::size_t s = 0; s < x.nodes.size(); ++s) {
    ++counter.integer_comparisons;
    const EventIndex idx =
        use_greatest ? x.greatest_index[s] : x.least_index[s];
    if (past[x.nodes[s]] < idx + 1) return false;
  }
  return true;
}

bool any_node_dominated(const IntervalSummary& x, const VectorClock& past,
                        bool use_greatest, ComparisonCounter& counter) {
  for (std::size_t s = 0; s < x.nodes.size(); ++s) {
    ++counter.integer_comparisons;
    const EventIndex idx =
        use_greatest ? x.greatest_index[s] : x.least_index[s];
    if (past[x.nodes[s]] >= idx + 1) return true;
  }
  return false;
}

// Does clock dominate X's per-node profile (T(y)[i] >= idx_X(i)+1 ∀i)?
bool clock_dominates_profile(const VectorClock& clock,
                             const IntervalSummary& x, bool use_greatest,
                             ComparisonCounter& counter) {
  for (std::size_t s = 0; s < x.nodes.size(); ++s) {
    ++counter.integer_comparisons;
    const EventIndex idx =
        use_greatest ? x.greatest_index[s] : x.least_index[s];
    if (clock[x.nodes[s]] < idx + 1) return false;
  }
  return true;
}

}  // namespace

bool evaluate_online(Relation r, const IntervalSummary& x,
                     const IntervalSummary& y, ComparisonCounter& counter) {
  SYNCON_REQUIRE(x.process_count == y.process_count,
                 "summaries from different systems");
  // A summary assembled from wire reports (degraded-mode feed) could in
  // principle carry malformed aggregates; fail loudly rather than index a
  // too-narrow past cut below.
  SYNCON_REQUIRE(x.intersect_past.size() == x.process_count &&
                     x.union_past.size() == x.process_count &&
                     y.intersect_past.size() == y.process_count &&
                     y.union_past.size() == y.process_count,
                 "summary past-cut width disagrees with its process count "
                 "(corrupt report feed?)");
  switch (r) {
    case Relation::R1:
    case Relation::R1p:
      // ∀x ∀y: x ⪯ y ⟺ every y knows every per-node greatest x.
      return all_nodes_dominated(x, y.intersect_past, /*use_greatest=*/true,
                                 counter);
    case Relation::R2:
      // ∀x ∃y ⟺ some y knows each per-node greatest x.
      return all_nodes_dominated(x, y.union_past, /*use_greatest=*/true,
                                 counter);
    case Relation::R3:
      // ∃x ∀y ⟺ every y knows some per-node least x.
      return any_node_dominated(x, y.intersect_past, /*use_greatest=*/false,
                                counter);
    case Relation::R4:
    case Relation::R4p:
      // ∃x ∃y ⟺ some y knows some per-node least x.
      return any_node_dominated(x, y.union_past, /*use_greatest=*/false,
                                counter);
    case Relation::R2p:
      // ∃y ∀x: some per-node greatest y dominates X's greatest profile.
      for (std::size_t s = 0; s < y.nodes.size(); ++s) {
        if (clock_dominates_profile(y.greatest_clock[s], x,
                                    /*use_greatest=*/true, counter)) {
          return true;
        }
      }
      return false;
    case Relation::R3p:
      // ∀y ∃x: every per-node least y knows some per-node least x.
      for (std::size_t s = 0; s < y.nodes.size(); ++s) {
        bool found = false;
        for (std::size_t t = 0; t < x.nodes.size(); ++t) {
          ++counter.integer_comparisons;
          if (y.least_clock[s][x.nodes[t]] >= x.least_index[t] + 1) {
            found = true;
            break;
          }
        }
        if (!found) return false;
      }
      return true;
  }
  SYNCON_ASSERT(false, "unreachable relation value");
  return false;
}

bool evaluate_online(const RelationId& id, const IntervalSummary& x,
                     const IntervalSummary& y, ComparisonCounter& counter) {
  return evaluate_online(id.relation, x.proxy(id.proxy_x),
                         y.proxy(id.proxy_y), counter);
}

std::uint64_t online_cost_bound(Relation r, std::size_t n_x,
                                std::size_t n_y) {
  switch (r) {
    case Relation::R1:
    case Relation::R1p:
    case Relation::R2:
    case Relation::R3:
    case Relation::R4:
    case Relation::R4p:
      return n_x;
    case Relation::R2p:
    case Relation::R3p:
      return n_x * n_y;
  }
  return 0;
}

}  // namespace syncon
