// Bounded-bytes serialization of the online protocol's wire messages
// (arXiv 1606.05962's compressed vector timestamps, DESIGN.md §3.11).
//
// A WireMessage piggybacks a full |P|-component clock — the protocol's only
// overhead, and the part that stops scaling when |P| grows. Between two
// consecutive messages on the same FIFO link the sender's clock changes in
// only a handful of components (its own, plus whatever causal fan-in it
// absorbed since), so the codec ships each clock as a CompressedClock
// change-list against the previous clock sent on that link:
//
//   frame := tag:u8 (kFull | kDelta)
//            varint(source.process) varint(source.index)
//            clock bytes — absolute (tag kFull) or relative to the link's
//            previous clock (tag kDelta)
//
// Every `full_interval`-th frame (and the first) is absolute, so a receiver
// that lost codec state — or joined mid-stream via snapshot/resync — locks
// back on at the next full frame without a round trip; reset() forces one.
// Chained deltas REQUIRE FIFO delivery of the encoded byte stream; for
// lossy or reordering transports construct the codec with full_interval = 1
// (every frame absolute — still varint/delta-compressed column-wise, just
// not chained).
//
// Decoding is the densify boundary: decode() hands back a WireMessage with
// a dense VectorClock, so everything past the codec (gap tracking,
// watermark minima, retention cuts) stays on the dense representation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "model/compressed_clock.hpp"
#include "online/online_system.hpp"

namespace syncon {

/// Sender-side half of one directed FIFO link.
class LinkEncoder {
 public:
  /// `full_interval` = n emits an absolute frame every n-th message
  /// (1 = every frame absolute; the first frame is always absolute).
  explicit LinkEncoder(std::size_t process_count,
                       std::uint32_t full_interval = 16);

  /// Appends one frame for `message` to `out`; returns the frame size in
  /// bytes (the codec's per-message piggyback cost).
  std::size_t encode(const WireMessage& message, std::vector<std::uint8_t>& out);

  /// Forces the next frame to be absolute (sender-side resync).
  void reset() { since_full_ = full_interval_; }

 private:
  CompressedClock last_;
  std::uint32_t full_interval_;
  std::uint32_t since_full_;
};

/// Receiver-side half of one directed FIFO link.
class LinkDecoder {
 public:
  explicit LinkDecoder(std::size_t process_count);

  /// Consumes one frame from the front of `in`. Delta frames received while
  /// unsynchronized (before any full frame after construction or reset)
  /// fail the contract check.
  WireMessage decode(std::span<const std::uint8_t>& in);

  /// Fault-hardened decode: consumes one frame iff it parses cleanly with
  /// the current codec state; on garbage (empty input, unknown tag,
  /// malformed varints, foreign clock size, delta before sync) returns
  /// false with `in` and the codec state untouched, so the caller can skip
  /// or quarantine the bytes and keep the link alive (DESIGN.md §3.12).
  bool try_decode(std::span<const std::uint8_t>& in, WireMessage& out);

  /// Drops codec state; decoding resumes at the next absolute frame.
  void reset() { synced_ = false; }
  bool synced() const { return synced_; }

 private:
  CompressedClock last_;
  bool synced_ = false;
};

}  // namespace syncon
