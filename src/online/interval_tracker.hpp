// Online accumulation of a nonatomic event: as the application executes the
// component events of a high-level action, the tracker folds their
// timestamps into exactly the aggregates the relation tests need —
// node set, per-node extreme indices, the past cut timestamps ∩⇓X / ∪⇓X
// (Table 2, maintained incrementally), and the extreme events' clocks.
//
// Everything here is derivable from the events' own (past) timestamps, so
// it is available the moment the interval completes — no post-processing
// pass over the trace.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "model/types.hpp"
#include "model/vector_clock.hpp"
#include "nonatomic/interval.hpp"
#include "online/online_system.hpp"

namespace syncon {

/// The completed aggregate of one online-tracked interval.
struct IntervalSummary {
  std::string label;
  std::size_t process_count = 0;
  std::size_t event_count = 0;

  /// Sorted node set N_X.
  std::vector<ProcessId> nodes;
  /// Parallel to `nodes`: index of the least / greatest component event on
  /// that node, and their full clocks.
  std::vector<EventIndex> least_index;
  std::vector<EventIndex> greatest_index;
  std::vector<VectorClock> least_clock;
  std::vector<VectorClock> greatest_clock;
  /// Physical times of the extreme events (kNoTime when unstamped).
  std::vector<std::int64_t> least_event_time;
  std::vector<std::int64_t> greatest_event_time;

  /// T(∩⇓X) and T(∪⇓X) (Table 2) — the past cuts, exact.
  VectorClock intersect_past;
  VectorClock union_past;

  /// Physical span of the interval when every component event was stamped
  /// with a time (OnlineSystem::kNoTime markers otherwise).
  std::int64_t start_time = -1;
  std::int64_t end_time = -1;
  bool fully_timed = false;

  std::size_t node_count() const { return nodes.size(); }
  /// Position of process p within `nodes`, or npos.
  std::size_t node_slot(ProcessId p) const;

  /// Summary of the Defn-2 proxy (per-node least events for Begin,
  /// greatest for End) — lets the online evaluator answer the full
  /// 32-relation set R.
  IntervalSummary proxy(ProxyKind kind) const;
};

class IntervalTracker {
 public:
  explicit IntervalTracker(std::string label);

  /// Folds one component event in, reading its clock and physical time from
  /// the (authoritative) running system.
  ///
  /// Fault tolerance: events of one process may be added in ANY order — the
  /// natural online order is not required, so a monitor fed over a lossy,
  /// reordering channel can fold reports in as they arrive. Each event must
  /// be added at most once; callers on at-least-once transports deduplicate
  /// first (OnlineMonitor::ingest does, via its GapTracker).
  void add(const OnlineSystem& system, EventId e);

  /// Same, from the event's wire report instead of the shared system — the
  /// form a monitor deployed behind a lossy channel uses (it may never see
  /// the authoritative system at all). `when` is the event's physical time
  /// if the report carried one.
  void add(EventId e, const VectorClock& clock,
           std::int64_t when = /* OnlineSystem::kNoTime */ -1);

  bool empty() const { return per_node_.empty(); }
  std::size_t event_count() const { return event_count_; }
  /// Processes with at least one folded component event, sorted.
  std::vector<ProcessId> nodes() const;
  /// (process, least folded index) per node, sorted by process id — the
  /// open-interval references that pin a retention watermark
  /// (OnlineMonitor::watermark_pin, DESIGN.md §3.10).
  std::vector<std::pair<ProcessId, EventIndex>> least_indices() const;

  /// Finalizes the aggregates. The tracker may keep accumulating afterwards;
  /// summary() just snapshots the current state.
  IntervalSummary summary() const;

 private:
  struct NodeAgg {
    ProcessId process;
    EventIndex least = 0;
    EventIndex greatest = 0;
    VectorClock least_clock;
    VectorClock greatest_clock;
    std::int64_t least_time = -1;
    std::int64_t greatest_time = -1;
  };

  std::string label_;
  std::vector<NodeAgg> per_node_;  // sorted by process id
  std::size_t process_count_ = 0;
  std::size_t event_count_ = 0;
  std::int64_t start_time_ = -1;
  std::int64_t end_time_ = -1;
  bool all_timed_ = true;
};

}  // namespace syncon
