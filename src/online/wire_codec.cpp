#include "online/wire_codec.hpp"

#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "support/contracts.hpp"
#include "support/varint.hpp"

namespace syncon {

namespace {
constexpr std::uint8_t kFull = 0;
constexpr std::uint8_t kDelta = 1;
}  // namespace

LinkEncoder::LinkEncoder(std::size_t process_count,
                         std::uint32_t full_interval)
    : last_(process_count, 0), full_interval_(full_interval) {
  SYNCON_REQUIRE(full_interval >= 1, "full_interval must be at least 1");
  since_full_ = full_interval;  // first frame is always absolute
}

std::size_t LinkEncoder::encode(const WireMessage& message,
                                std::vector<std::uint8_t>& out) {
  SYNCON_REQUIRE(message.clock.size() == last_.size(),
                 "wire clock size does not match the link's process count");
  const std::size_t start = out.size();
  const CompressedClock clock = CompressedClock::from_dense(message.clock);
  const bool full = since_full_ >= full_interval_;
  out.push_back(full ? kFull : kDelta);
  encode_varint(message.source.process, out);
  encode_varint(message.source.index, out);
  if (full) {
    clock.encode(out);
    since_full_ = 1;
  } else {
    clock.encode_relative(last_, out);
    ++since_full_;
  }
  last_ = clock;
  const std::size_t frame_bytes = out.size() - start;
  if (obs::enabled()) {
    static obs::Histogram& bytes_per_message = obs::MetricRegistry::global()
        .histogram("syncon_wire_bytes_per_message",
                   obs::HistogramSpec::exponential(1.0, 65536.0));
    static obs::Counter& frames =
        obs::MetricRegistry::global().counter("syncon_wire_frames_total");
    static obs::Counter& absolute_escapes = obs::MetricRegistry::global()
        .counter("syncon_wire_absolute_escapes_total");
    static obs::Counter& bytes =
        obs::MetricRegistry::global().counter("syncon_wire_bytes_total");
    bytes_per_message.record(static_cast<double>(frame_bytes));
    frames.add();
    if (full) absolute_escapes.add();
    bytes.add(frame_bytes);
  }
  return frame_bytes;
}

LinkDecoder::LinkDecoder(std::size_t process_count)
    : last_(process_count, 0) {}

WireMessage LinkDecoder::decode(std::span<const std::uint8_t>& in) {
  SYNCON_REQUIRE(!in.empty(), "decoding an empty wire frame");
  const std::uint8_t tag = in.front();
  in = in.subspan(1);
  WireMessage message;
  message.source.process =
      static_cast<ProcessId>(decode_varint(in));
  message.source.index = static_cast<EventIndex>(decode_varint(in));
  if (tag == kFull) {
    CompressedClock decoded = CompressedClock::decode(in);
    SYNCON_REQUIRE(decoded.size() == last_.size(),
                   "wire clock size does not match the link's process count");
    last_ = std::move(decoded);
    synced_ = true;
  } else {
    SYNCON_REQUIRE(tag == kDelta, "unknown wire frame tag");
    SYNCON_REQUIRE(synced_,
                   "delta frame before any full frame on this link — "
                   "request a resync or wait for the next full frame");
    last_ = CompressedClock::decode_relative(last_, in);
  }
  message.clock = last_.to_dense();  // the densify boundary
  return message;
}

bool LinkDecoder::try_decode(std::span<const std::uint8_t>& in,
                             WireMessage& out) {
  // decode() mutates last_/synced_ only after its final contract check
  // passes, so catching the violation on a probe cursor leaves both the
  // input span and the codec state exactly as they were.
  std::span<const std::uint8_t> probe = in;
  try {
    out = decode(probe);
  } catch (const ContractViolation&) {
    if (obs::enabled()) {
      static obs::Counter& rejected = obs::MetricRegistry::global().counter(
          "syncon_wire_rejected_frames_total");
      rejected.add();
    }
    return false;
  }
  in = probe;
  return true;
}

}  // namespace syncon
