#include "online/interval_tracker.hpp"

#include <algorithm>

#include "support/contracts.hpp"

namespace syncon {

std::size_t IntervalSummary::node_slot(ProcessId p) const {
  const auto it = std::lower_bound(nodes.begin(), nodes.end(), p);
  if (it == nodes.end() || *it != p) return static_cast<std::size_t>(-1);
  return static_cast<std::size_t>(it - nodes.begin());
}

IntervalSummary IntervalSummary::proxy(ProxyKind kind) const {
  IntervalSummary p = *this;
  p.label = std::string(to_string(kind)) + "(" + label + ")";
  p.event_count = nodes.size();
  const bool begin = kind == ProxyKind::Begin;
  // Collapse each node to its extreme event; recompute the past cuts and
  // the physical span from the surviving events.
  bool first = true;
  bool timed = true;
  p.start_time = p.end_time = -1;
  for (std::size_t s = 0; s < p.nodes.size(); ++s) {
    if (begin) {
      p.greatest_index[s] = p.least_index[s];
      p.greatest_clock[s] = p.least_clock[s];
      p.greatest_event_time[s] = p.least_event_time[s];
    } else {
      p.least_index[s] = p.greatest_index[s];
      p.least_clock[s] = p.greatest_clock[s];
      p.least_event_time[s] = p.greatest_event_time[s];
    }
    const std::int64_t t = p.least_event_time[s];
    if (t < 0) {
      timed = false;
    } else {
      p.start_time = p.start_time < 0 ? t : std::min(p.start_time, t);
      p.end_time = std::max(p.end_time, t);
    }
    if (first) {
      p.intersect_past = p.least_clock[s];
      p.union_past = p.greatest_clock[s];
      first = false;
    } else {
      p.intersect_past.merge_min(p.least_clock[s]);
      p.union_past.merge_max(p.greatest_clock[s]);
    }
  }
  p.fully_timed = timed && p.start_time >= 0;
  return p;
}

IntervalTracker::IntervalTracker(std::string label)
    : label_(std::move(label)) {}

void IntervalTracker::add(const OnlineSystem& system, EventId e) {
  add(e, system.clock_of(e), system.time_of(e));  // clock_of validates e
}

void IntervalTracker::add(EventId e, const VectorClock& clock,
                          std::int64_t when) {
  SYNCON_REQUIRE(e.index >= 1, "real events have index >= 1");
  SYNCON_REQUIRE(clock.size() > e.process,
                 "event's clock has no component for its own process");
  SYNCON_REQUIRE(process_count_ == 0 || process_count_ == clock.size(),
                 "events of one interval must come from one system");
  process_count_ = clock.size();
  ++event_count_;
  if (when == OnlineSystem::kNoTime) {
    all_timed_ = false;
  } else {
    start_time_ = start_time_ < 0 ? when : std::min(start_time_, when);
    end_time_ = std::max(end_time_, when);
  }
  auto it = std::lower_bound(
      per_node_.begin(), per_node_.end(), e.process,
      [](const NodeAgg& agg, ProcessId p) { return agg.process < p; });
  if (it == per_node_.end() || it->process != e.process) {
    NodeAgg agg;
    agg.process = e.process;
    agg.least = agg.greatest = e.index;
    agg.least_clock = agg.greatest_clock = clock;
    agg.least_time = agg.greatest_time = when;
    per_node_.insert(it, std::move(agg));
    return;
  }
  SYNCON_REQUIRE(e.index != it->least && e.index != it->greatest,
                 "event added twice to one interval (deduplicate at-least-"
                 "once deliveries before folding)");
  // Out-of-order tolerant: only the per-node extremes matter, so an event
  // arriving late (or early) just competes for the least / greatest slot.
  if (e.index < it->least) {
    it->least = e.index;
    it->least_clock = clock;
    it->least_time = when;
  } else if (e.index > it->greatest) {
    it->greatest = e.index;
    it->greatest_clock = clock;
    it->greatest_time = when;
  }
}

std::vector<ProcessId> IntervalTracker::nodes() const {
  std::vector<ProcessId> out;
  out.reserve(per_node_.size());
  for (const NodeAgg& agg : per_node_) out.push_back(agg.process);
  return out;
}

std::vector<std::pair<ProcessId, EventIndex>> IntervalTracker::least_indices()
    const {
  std::vector<std::pair<ProcessId, EventIndex>> out;
  out.reserve(per_node_.size());
  for (const NodeAgg& agg : per_node_) out.emplace_back(agg.process, agg.least);
  return out;
}

IntervalSummary IntervalTracker::summary() const {
  SYNCON_REQUIRE(!per_node_.empty(), "summary of an empty interval");
  IntervalSummary s;
  s.label = label_;
  s.process_count = process_count_;
  s.event_count = event_count_;
  s.start_time = start_time_;
  s.end_time = end_time_;
  s.fully_timed = all_timed_ && start_time_ >= 0;
  bool first = true;
  for (const NodeAgg& agg : per_node_) {
    s.nodes.push_back(agg.process);
    s.least_index.push_back(agg.least);
    s.greatest_index.push_back(agg.greatest);
    s.least_clock.push_back(agg.least_clock);
    s.greatest_clock.push_back(agg.greatest_clock);
    s.least_event_time.push_back(agg.least_time);
    s.greatest_event_time.push_back(agg.greatest_time);
    if (first) {
      s.intersect_past = agg.least_clock;
      s.union_past = agg.greatest_clock;
      first = false;
    } else {
      s.intersect_past.merge_min(agg.least_clock);
      s.union_past.merge_max(agg.greatest_clock);
    }
  }
  return s;
}

}  // namespace syncon
