// Application-facing runtime monitor: track named high-level actions as
// their component events execute, and have registered synchronization /
// deadline watches fire the moment both actions of a pair complete — the
// "detect the relations efficiently" loop the paper motivates, without any
// post-hoc trace pass.
//
// Degraded mode (DESIGN.md §3.7): a monitor deployed behind a real network
// sees event *reports* that can be lost, duplicated or reordered, and it
// must not silently evaluate on the resulting corrupted state. The ingest
// path folds reports in any arrival order, suppresses duplicates, and runs
// a GapTracker over the piggybacked clocks; every watch then fires with a
// Confidence flag — Definite when the local history explains every clock
// seen, PendingGap when known-lost predecessor reports may still change
// the verdict. When recovery (resync_request → OnlineSystem::serve →
// ingest) closes all gaps, pending watches re-fire Definite with the
// repaired summaries, converging to the fault-free verdicts. A crash
// watchdog (mark_crashed / doomed_actions) surfaces open actions that can
// never complete because their process died.
#pragma once

#include <deque>
#include <functional>
#include <limits>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "cuts/ll_relation.hpp"
#include "obs/latency.hpp"
#include "online/gap_tracker.hpp"
#include "online/interval_tracker.hpp"
#include "online/online_evaluator.hpp"
#include "timing/timing_constraints.hpp"

namespace syncon {

/// How much a fired verdict can be trusted in degraded mode.
enum class Confidence {
  /// Every clock the monitor has seen is fully explained by witnessed
  /// reports — the verdict equals the fault-free one (for the data seen).
  Definite,
  /// Known-lost predecessor reports are outstanding; the verdict was
  /// computed on provably incomplete state and will be re-issued after
  /// recovery.
  PendingGap,
};

const char* to_string(Confidence c);

class OnlineMonitor {
 public:
  /// Fired when both actions of a watched pair have completed (and again,
  /// at most once per repair, when recovery upgrades a PendingGap verdict).
  using RelationCallback =
      std::function<void(const std::string& x, const std::string& y,
                         bool holds, Confidence confidence)>;
  using DeadlineCallback = std::function<void(
      const std::string& x, const std::string& y, Duration measured_gap,
      bool satisfied, Confidence confidence)>;

  /// The monitor observes (does not own) the running system.
  explicit OnlineMonitor(const OnlineSystem& system);

  /// A monitor with no access to the running system — the deployment shape
  /// behind a lossy report channel. Only the ingest/observe feed works;
  /// record() requires the system-observing constructor.
  explicit OnlineMonitor(std::size_t process_count);

  // --- interval lifecycle ---------------------------------------------------

  /// Opens a new tracked action. Labels are unique across open+completed.
  void begin(const std::string& label);
  /// Adds an event of the running system to an open action.
  void record(const std::string& label, EventId e);
  /// Completes an action: snapshots its summary and fires every watch whose
  /// counterpart is already complete.
  const IntervalSummary& complete(const std::string& label);

  bool is_open(const std::string& label) const;
  bool is_complete(const std::string& label) const;
  /// Component events folded so far into an open action. In degraded mode
  /// an action can reach its completion point with zero recorded events —
  /// every report lost — and complete() requires at least one; callers
  /// behind a lossy feed check this and resync (checkpoint + resync_request)
  /// before completing.
  std::size_t recorded_events(const std::string& label) const;
  /// Summary of a completed action (nullptr otherwise).
  const IntervalSummary* summary(const std::string& label) const;

  /// Drops a completed action's summary and every fired watch that
  /// referenced it — the garbage-collection hook a long-running monitor
  /// needs for bounded memory. Unfired watches naming the label are dropped
  /// too (they could never fire again). The label may be reused afterwards.
  void forget(const std::string& label);

  /// Completed summaries currently retained.
  std::size_t retained() const { return completed_.size(); }
  /// Labels currently open, sorted.
  std::vector<std::string> open_actions() const;

  // --- degraded-mode report feed --------------------------------------------

  /// Integrates an event report that arrived over a (possibly lossy)
  /// channel without folding it into any action: deduplication and gap
  /// bookkeeping only. Returns true iff the report was fresh.
  bool observe(const WireMessage& report);

  /// observe() + fold the event into the named action from the report's
  /// own clock (never reading the shared system). The action must be open,
  /// or already completed — a late report for a completed action repairs
  /// its summary and re-arms the watches that used it. Duplicate reports
  /// are dropped. Reports may arrive in any order. Returns true iff the
  /// report was fresh.
  bool ingest(const std::string& label, const WireMessage& report,
              std::int64_t when = OnlineSystem::kNoTime);

  /// Fault-hardened observe: a malformed report (unknown source process,
  /// non-event index, foreign clock size, clock breaking the Fidge own-
  /// component invariant) is rejected into quarantined() instead of
  /// tripping the gap tracker's contracts — wire garbage must not kill the
  /// monitor (DESIGN.md §3.12). Returns observe()'s freshness verdict;
  /// false also means quarantined (the counter tells them apart).
  bool try_observe(const WireMessage& report);

  /// Fault-hardened ingest, same rejection rule. The label must still name
  /// an open or completed action — that is a caller bug, not wire garbage.
  bool try_ingest(const std::string& label, const WireMessage& report,
                  std::int64_t when = OnlineSystem::kNoTime);

  /// Reports rejected by try_observe/try_ingest so far.
  std::uint64_t quarantined() const { return quarantined_; }

  /// Clock-snapshot recovery: an authoritative clock snapshot (e.g. from
  /// OnlineSystem::snapshot(), broadcast periodically) vouches for every
  /// event executed so far, exposing tail losses no later report would
  /// claim. Closing the resulting gaps goes through the usual resync path.
  void checkpoint(const VectorClock& snapshot);

  /// Known-lost reports: claimed by some clock seen here, never ingested.
  /// `limit` bounds the enumeration so a long outage can be recovered in
  /// chunks instead of materializing millions of EventIds at once.
  std::vector<EventId> missing_reports(
      std::size_t limit = std::numeric_limits<std::size_t>::max()) const {
    return gaps_.missing(limit);
  }
  /// Exact number of known-lost reports, without materializing them.
  std::size_t missing_report_count() const { return gaps_.missing_count(); }
  /// Retransmit request covering missing_reports(limit) (serve it from the
  /// authoritative log with OnlineSystem::serve, then ingest/observe the
  /// replies; repeat while has-gap until recovery completes).
  RetransmitRequest resync_request(
      std::size_t limit = std::numeric_limits<std::size_t>::max()) const {
    return gaps_.resync_request(limit);
  }
  /// True once any report has been observed/ingested (the monitor then
  /// treats outstanding gaps as verdict-tainting).
  bool degraded() const { return degraded_; }
  /// Duplicate reports suppressed so far.
  std::uint64_t duplicate_reports() const { return duplicate_reports_; }

  /// Retry discipline for the resync loop: attempts against an unresponsive
  /// server are spaced by exponential backoff and capped by a budget, after
  /// which the monitor gives up and the open gaps stay PendingGap for good.
  /// Any recovery progress (the missing-report count dropping between
  /// attempts) refunds the budget and resets the backoff.
  struct ResyncPolicy {
    std::uint32_t budget = 8;          // attempts per no-progress episode
    std::uint64_t initial_backoff = 1; // ticks between attempts 1 and 2
    std::uint64_t max_backoff = 64;    // backoff cap, ticks
  };

  void set_resync_policy(const ResyncPolicy& policy);
  const ResyncPolicy& resync_policy() const { return resync_policy_; }

  /// Budgeted resync driver: the retransmit request to send now, or nullopt
  /// when there is no gap, the backoff window has not elapsed, or the budget
  /// is exhausted (counted in resync_give_ups()). `now` is any monotone
  /// tick — wall µs, report counts, loop iterations — the same unit as the
  /// policy's backoff fields.
  std::optional<RetransmitRequest> next_resync(
      std::uint64_t now,
      std::size_t limit = std::numeric_limits<std::size_t>::max());

  /// Attempts next_resync has issued / episodes it has given up on.
  std::uint64_t resync_attempts() const { return resync_attempts_; }
  std::uint64_t resync_give_ups() const { return resync_give_ups_; }
  /// True while the current gap episode's budget is spent (cleared by
  /// progress or by the gaps closing).
  bool resync_exhausted() const { return resync_exhausted_; }

  // --- retention (DESIGN.md §3.10) ------------------------------------------

  /// This monitor's retention pin, in the watermark's counts form: component
  /// p is the smallest index the authoritative log must keep live for p —
  /// min(witnessed contiguous prefix + 1, least event index referenced by
  /// any open action). While a gap is open the pin sits at the gap (every
  /// missing report lies above the contiguous prefix, so resync can always
  /// be served); while an action is open its events stay servable until the
  /// watches that need them have evaluated. Feed the componentwise min of
  /// every consumer's pin (cuts::low_watermark) to OnlineSystem::compact.
  VectorClock watermark_pin() const;

  /// Adopts the authoritative system's retention checkpoint: reports below
  /// the checkpoint cut can never be served again (their log entries were
  /// reclaimed), so the gaps they caused are closed via GapTracker::forgive,
  /// and the cut's surface clocks are claimed so a late-joining monitor
  /// learns the frontier it can never see reports for. Pending watches
  /// re-fire Definite if this closes the last gap — the deployment
  /// guarantees (by compacting only below every consumer's pin) that the
  /// forgiven reports were either already witnessed here or irrelevant.
  void adopt_checkpoint(const RetentionCheckpoint& checkpoint);

  // --- crash watchdog -------------------------------------------------------

  /// Marks a process as crashed (fed by the fault plan or an external
  /// failure detector). Its lost reports can never be retransmitted.
  void mark_crashed(ProcessId p);
  bool is_crashed(ProcessId p) const;
  std::vector<ProcessId> crashed_processes() const;

  /// Watchdog: open actions that can never complete — they have component
  /// events on a crashed process, so the rest of the action (and its
  /// completion) will never arrive.
  std::vector<std::string> doomed_actions() const;

  /// Missing reports whose process crashed: no log can serve them, so the
  /// gaps they cause are permanent (watches involving them stay PendingGap).
  std::vector<EventId> unrecoverable_reports() const;

  // --- watches ---------------------------------------------------------------

  /// Watch r(X, Y) for the labeled pair; fires at the later completion with
  /// the current Confidence. A PendingGap firing leaves the watch armed: it
  /// fires once more, Definite, when recovery closes every gap.
  /// Registration after both completed fires immediately.
  void watch(const RelationId& relation, const std::string& x,
             const std::string& y, RelationCallback callback);

  /// Watch a relative timing constraint between the pair's physical spans
  /// (requires both actions fully timed; fires with satisfied=false and
  /// gap=0 if they are not).
  void watch_deadline(const TimingConstraint& constraint,
                      const std::string& x, const std::string& y,
                      DeadlineCallback callback);

  /// Comparison-cost accounting across all fired watches.
  const ComparisonCounter& counter() const { return counter_; }

  /// Watch firings so far, by confidence (re-firings count again).
  std::uint64_t definite_fires() const { return definite_fires_; }
  std::uint64_t pending_fires() const { return pending_fires_; }

  // --- detection-latency attribution (DESIGN.md §3.13) ----------------------

  /// With tracking on, every action stamps wall-clock stage times
  /// (begin → reports → complete) and every watch firing produces an
  /// obs::Waterfall attributing its end-to-end detection latency to the
  /// observe / track / gap_wait / evaluate / fire stages (each also fed
  /// into the syncon_detect_latency_{stage}_us histograms). Off by default:
  /// the fast path then never reads the clock for attribution.
  void set_latency_tracking(bool on) { latency_tracking_ = on; }
  bool latency_tracking() const { return latency_tracking_; }

  /// Waterfalls of the most recent firings, oldest first. Bounded: the
  /// newest kMaxWaterfalls are retained (a soak does not grow this).
  const std::deque<obs::Waterfall>& waterfalls() const { return waterfalls_; }

  static constexpr std::size_t kMaxWaterfalls = 256;

  // --- health / telemetry ---------------------------------------------------

  /// One row of the monitor's health report: the registry metric name, the
  /// prose label write_online_report prints, and the value.
  struct HealthMetric {
    std::string metric;
    std::string label;
    std::uint64_t value = 0;
  };

  /// The monitor's health numbers, one list for every consumer: the text
  /// report (monitor/report.cpp) renders the labels, publish_metrics()
  /// mirrors the metric names into the registry — so the table and the
  /// Prometheus/JSON exporters can never disagree (DESIGN.md §3.8).
  std::vector<HealthMetric> health_metrics() const;

  /// Publishes health_metrics() into MetricRegistry::global() as gauges.
  void publish_metrics() const;

 private:
  struct RelationWatch {
    RelationId relation;
    std::string x, y;
    RelationCallback callback;
    bool armed = true;
    int fires = 0;
    Confidence last = Confidence::Definite;
  };
  struct DeadlineWatch {
    TimingConstraint constraint;
    std::string x, y;
    DeadlineCallback callback;
    bool armed = true;
    int fires = 0;
    Confidence last = Confidence::Definite;
  };

  /// Wall-clock stage stamps of one tracked action (all obs::now_us();
  /// zero = never stamped, e.g. tracking was enabled mid-action).
  struct ActionTiming {
    std::uint64_t begin_us = 0;
    std::uint64_t first_report_us = 0;
    std::uint64_t last_report_us = 0;
    std::uint64_t completed_us = 0;
  };

  void fire_ready_watches();
  Confidence current_confidence() const;
  /// Stamps a report's arrival into the named action's timing record.
  void note_action_report(const std::string& label);
  /// Builds the contiguous five-stage waterfall for a firing of (x, y),
  /// records the stage histograms and the kVerdict flight record, and
  /// retains it (bounded by kMaxWaterfalls).
  void emit_waterfall(const std::string& x, const std::string& y, bool holds,
                      Confidence confidence, int fires, std::uint64_t eval0_us,
                      std::uint64_t eval1_us, std::uint64_t fired_us);
  /// Structural sanity of a wire report (see try_observe).
  bool valid_report(const WireMessage& report) const;
  void quarantine(const WireMessage& report);
  /// Tracks has_gap() transitions after each report/checkpoint, feeding the
  /// gap-open-duration histogram (measured in observed reports — the
  /// monitor's deterministic clock).
  void note_gap_state();
  /// Re-arms watches so they re-fire with repaired state: all watches
  /// naming `label` (after a late report repaired it), and — when every gap
  /// has closed — all watches whose last firing was PendingGap.
  void rearm_after_recovery(const std::string* label);
  static Duration anchor_time(const IntervalSummary& s, Anchor a);

  const OnlineSystem* system_;  // null for the feed-only monitor
  std::size_t process_count_;
  std::map<std::string, IntervalTracker> open_;
  /// Trackers of completed actions, kept so late reports can repair them.
  std::map<std::string, IntervalTracker> sealed_;
  std::map<std::string, IntervalSummary> completed_;
  std::vector<RelationWatch> relation_watches_;
  std::vector<DeadlineWatch> deadline_watches_;
  GapTracker gaps_;
  std::vector<bool> crashed_;
  ComparisonCounter counter_;
  bool degraded_ = false;
  std::uint64_t duplicate_reports_ = 0;
  std::uint64_t quarantined_ = 0;
  ResyncPolicy resync_policy_;
  std::uint32_t resync_episode_attempts_ = 0;
  std::uint64_t resync_backoff_ = 1;
  std::uint64_t resync_next_at_ = 0;
  std::size_t resync_last_missing_ = 0;
  bool resync_exhausted_ = false;
  std::uint64_t resync_attempts_ = 0;
  std::uint64_t resync_give_ups_ = 0;
  std::uint64_t definite_fires_ = 0;
  std::uint64_t pending_fires_ = 0;
  bool firing_ = false;
  // Gap-open accounting in report counts (see note_gap_state).
  std::uint64_t reports_seen_ = 0;
  std::uint64_t gap_opened_at_report_ = 0;
  bool gap_open_ = false;
  // Detection-latency attribution (see set_latency_tracking).
  bool latency_tracking_ = false;
  std::map<std::string, ActionTiming> timing_;
  std::deque<obs::Waterfall> waterfalls_;
  std::uint64_t gap_opened_us_ = 0;
};

}  // namespace syncon
