// Application-facing runtime monitor: track named high-level actions as
// their component events execute, and have registered synchronization /
// deadline watches fire the moment both actions of a pair complete — the
// "detect the relations efficiently" loop the paper motivates, without any
// post-hoc trace pass.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "cuts/ll_relation.hpp"
#include "online/interval_tracker.hpp"
#include "online/online_evaluator.hpp"
#include "timing/timing_constraints.hpp"

namespace syncon {

class OnlineMonitor {
 public:
  /// Fired when both actions of a watched pair have completed.
  using RelationCallback = std::function<void(
      const std::string& x, const std::string& y, bool holds)>;
  using DeadlineCallback = std::function<void(
      const std::string& x, const std::string& y, Duration measured_gap,
      bool satisfied)>;

  /// The monitor observes (does not own) the running system.
  explicit OnlineMonitor(const OnlineSystem& system);

  // --- interval lifecycle ---------------------------------------------------

  /// Opens a new tracked action. Labels are unique across open+completed.
  void begin(const std::string& label);
  /// Adds an event of the running system to an open action.
  void record(const std::string& label, EventId e);
  /// Completes an action: snapshots its summary and fires every watch whose
  /// counterpart is already complete.
  const IntervalSummary& complete(const std::string& label);

  bool is_open(const std::string& label) const;
  bool is_complete(const std::string& label) const;
  /// Summary of a completed action (nullptr otherwise).
  const IntervalSummary* summary(const std::string& label) const;

  /// Drops a completed action's summary and every fired watch that
  /// referenced it — the garbage-collection hook a long-running monitor
  /// needs for bounded memory. Unfired watches naming the label are dropped
  /// too (they could never fire again). The label may be reused afterwards.
  void forget(const std::string& label);

  /// Completed summaries currently retained.
  std::size_t retained() const { return completed_.size(); }

  // --- watches ---------------------------------------------------------------

  /// Watch r(X, Y) for the labeled pair; fires once, at the later
  /// completion. Registration after both completed fires immediately.
  void watch(const RelationId& relation, const std::string& x,
             const std::string& y, RelationCallback callback);

  /// Watch a relative timing constraint between the pair's physical spans
  /// (requires both actions fully timed; fires with satisfied=false and
  /// gap=0 if they are not).
  void watch_deadline(const TimingConstraint& constraint,
                      const std::string& x, const std::string& y,
                      DeadlineCallback callback);

  /// Comparison-cost accounting across all fired watches.
  const ComparisonCounter& counter() const { return counter_; }

 private:
  struct RelationWatch {
    RelationId relation;
    std::string x, y;
    RelationCallback callback;
    bool fired = false;
  };
  struct DeadlineWatch {
    TimingConstraint constraint;
    std::string x, y;
    DeadlineCallback callback;
    bool fired = false;
  };

  void fire_ready_watches();
  static Duration anchor_time(const IntervalSummary& s, Anchor a);

  const OnlineSystem* system_;
  std::map<std::string, IntervalTracker> open_;
  std::map<std::string, IntervalSummary> completed_;
  std::vector<RelationWatch> relation_watches_;
  std::vector<DeadlineWatch> deadline_watches_;
  ComparisonCounter counter_;
  bool firing_ = false;
};

}  // namespace syncon
