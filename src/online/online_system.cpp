#include "online/online_system.hpp"

#include <algorithm>
#include <ostream>
#include <string>

#include "obs/flight.hpp"
#include "obs/latency.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "support/contracts.hpp"

namespace syncon {

namespace {

std::string describe(const EventId& e) {
  return std::to_string(e.process) + ":" + std::to_string(e.index);
}

obs::Counter& deliveries_counter() {
  static obs::Counter& c =
      obs::MetricRegistry::global().counter("syncon_online_deliveries_total");
  return c;
}

obs::Counter& duplicates_counter() {
  static obs::Counter& c = obs::MetricRegistry::global().counter(
      "syncon_online_duplicates_suppressed_total");
  return c;
}

// Wire latency of one delivery in µs of application time (receive `when`
// minus the source event's send time), when both sides are stamped.
void record_delivery_latency(std::int64_t sent_at, std::int64_t when) {
  if (sent_at < 0 || when < 0) return;  // kNoTime on either side
  static obs::Histogram& latency = obs::MetricRegistry::global().histogram(
      "syncon_online_delivery_latency_us",
      obs::HistogramSpec::exponential(1.0, 1048576.0));
  latency.record(static_cast<double>(when - sent_at));
  // Same measurement, filed under the detection-latency stage taxonomy
  // (the occurred → delivered leg; application-time domain).
  obs::record_stage_latency("delivered",
                            static_cast<std::uint64_t>(when - sent_at));
}

}  // namespace

OnlineSystem::OnlineSystem(std::size_t process_count) {
  SYNCON_REQUIRE(process_count > 0, "need at least one process");
  checkpoint_ = RetentionCheckpoint::bottom(process_count);
  clocks_.reserve(process_count);
  for (std::size_t p = 0; p < process_count; ++p) {
    // Clock of ⊥_p: one own event (the dummy), nothing else known.
    VectorClock c(process_count, 0);
    c.set(p, 1);
    clocks_.push_back(std::move(c));
  }
  log_.resize(process_count);
  base_.assign(process_count, 0);
  last_timed_.assign(process_count, kNoTime);
  delivered_.resize(process_count);
  gaps_.assign(process_count, GapTracker(process_count));
}

void OnlineSystem::check_deliverable(ProcessId p, const WireMessage& m) const {
  SYNCON_REQUIRE(m.source.process < clocks_.size(),
                 "message source " + describe(m.source) +
                     " names an unknown process (system has " +
                     std::to_string(clocks_.size()) + " processes)");
  SYNCON_REQUIRE(m.source.process != p,
                 "process " + std::to_string(p) +
                     " cannot receive its own message " + describe(m.source));
  SYNCON_REQUIRE(m.source.index >= 1,
                 "message source " + describe(m.source) +
                     " is not a real event (real events have index >= 1)");
  SYNCON_REQUIRE(m.clock.size() == clocks_[p].size(),
                 "message " + describe(m.source) + " carries a clock of " +
                     std::to_string(m.clock.size()) +
                     " components; this system has " +
                     std::to_string(clocks_[p].size()));
  SYNCON_REQUIRE(
      m.clock[p] <= clocks_[p][p],
      "message " + describe(m.source) +
          " claims receiver events that never executed (corrupt or foreign "
          "message: clock[" +
          std::to_string(p) + "] = " + std::to_string(m.clock[p]) +
          " > " + std::to_string(clocks_[p][p]) + ")");
}

const OnlineSystem::LoggedEvent& OnlineSystem::live_entry(EventId e) const {
  SYNCON_REQUIRE(e.process < log_.size() && e.index >= 1, "unknown event");
  SYNCON_REQUIRE(e.index > base_[e.process],
                 "event " + describe(e) +
                     " was reclaimed by compaction (the retention checkpoint "
                     "covers it; ask wire_of for its surface report)");
  const std::size_t k = e.index - base_[e.process] - 1;
  SYNCON_REQUIRE(k < log_[e.process].size(), "unknown event");
  return log_[e.process][k];
}

EventId OnlineSystem::advance(ProcessId p,
                              std::span<const WireMessage> messages,
                              std::int64_t when) {
  SYNCON_REQUIRE(p < clocks_.size(),
                 "process id " + std::to_string(p) + " out of range (" +
                     std::to_string(clocks_.size()) + " processes)");
  // The monotonicity floor is the last *timed* event: an untimed event in
  // between must not reset it and let time run backwards.
  SYNCON_REQUIRE(when == kNoTime || last_timed_[p] == kNoTime ||
                     when > last_timed_[p],
                 "per-process physical times must be strictly increasing");
  VectorClock& clock = clocks_[p];
  LoggedEvent logged;
  logged.time = when;
  for (const WireMessage& m : messages) {
    check_deliverable(p, m);
    // Loss accounting doubles as in-batch dedup: witness() is idempotent
    // and answers false for a source this receiver already consumed — the
    // same wire message twice in one gather batch is one delivery, not two
    // entries in the receive's source list.
    if (!gaps_[p].witness(m.source)) {
      ++duplicates_suppressed_;
      if (obs::enabled()) duplicates_counter().add();
      obs::flight(obs::FlightKind::kDuplicate, p, obs::pack_event(m.source));
      continue;
    }
    obs::flight(obs::FlightKind::kDelivery, p, obs::pack_event(m.source),
                when < 0 ? 0 : static_cast<std::uint64_t>(when));
    clock.merge_max(m.clock);
    logged.sources.push_back(m.source);
    // Everything the source's clock vouches for (other than p's own events)
    // must eventually be witnessed too, or it was lost.
    for (ProcessId q = 0; q < clock.size(); ++q) {
      if (q == p || m.clock[q] == 0) continue;
      gaps_[p].claim(q, m.clock[q] - 1);
    }
    if (obs::enabled()) {
      deliveries_counter().add();
      if (is_live(m.source)) {
        record_delivery_latency(time_of(m.source), when);
      }
    }
  }
  // Delivery within a gather batch is set-like: merge_max commutes and
  // witness() is idempotent, so the only batch-order-dependent state would
  // be this source list. Canonicalize it so the logged event — and with it
  // sources_of, WAL records, and to_execution() — is a pure function of the
  // delivered *set*, not of the arrival permutation.
  std::sort(logged.sources.begin(), logged.sources.end());
  // The paper's axiom ⊥_i ≺ e lifts every component to at least 1.
  for (std::size_t i = 0; i < clock.size(); ++i) {
    if (clock.at(i) == 0) clock.set(i, 1);
  }
  clock.tick(p);
  const EventId e{
      p, static_cast<EventIndex>(base_[p] + log_[p].size() + 1)};
  logged.clock = clock;
  log_[p].push_back(std::move(logged));
  if (when != kNoTime) last_timed_[p] = when;
  ++total_;
  for (const WireMessage& m : messages) {
    delivered_[p].emplace(m.source, e);
  }
  return e;
}

EventId OnlineSystem::local(ProcessId p, std::int64_t when) {
  return advance(p, {}, when);
}

WireMessage OnlineSystem::send(ProcessId p, std::int64_t when) {
  const EventId e = advance(p, {}, when);
  return WireMessage{e, clocks_[p]};
}

EventId OnlineSystem::deliver(ProcessId p, const WireMessage& message,
                              std::int64_t when) {
  SYNCON_SPAN("online/deliver");
  SYNCON_REQUIRE(p < clocks_.size(),
                 "process id " + std::to_string(p) + " out of range (" +
                     std::to_string(clocks_.size()) + " processes)");
  check_deliverable(p, message);
  const auto it = delivered_[p].find(message.source);
  if (it != delivered_[p].end()) {
    ++duplicates_suppressed_;
    if (obs::enabled()) duplicates_counter().add();
    return it->second;
  }
  // The dedup record may have been reclaimed by compaction, but the gap
  // tracker remembers every source this receiver consumed (witnessed ⟺
  // consumed at this level): still suppress, answer with the sentinel.
  if (gaps_[p].witnessed(message.source)) {
    ++duplicates_suppressed_;
    if (obs::enabled()) duplicates_counter().add();
    return EventId{p, 0};
  }
  const WireMessage msgs[] = {message};
  return advance(p, msgs, when);
}

EventId OnlineSystem::deliver_all(ProcessId p,
                                  std::span<const WireMessage> messages,
                                  std::int64_t when) {
  SYNCON_REQUIRE(p < clocks_.size(),
                 "process id " + std::to_string(p) + " out of range (" +
                     std::to_string(clocks_.size()) + " processes)");
  SYNCON_REQUIRE(!messages.empty(), "deliver_all needs at least one message");
  // Suppress messages already consumed by an earlier receive; duplicates
  // *within* the batch survive to advance(), whose witness() call collapses
  // them into a single source entry.
  std::vector<WireMessage> fresh;
  fresh.reserve(messages.size());
  for (const WireMessage& m : messages) {
    check_deliverable(p, m);
    if (delivered_[p].count(m.source) || gaps_[p].witnessed(m.source)) {
      ++duplicates_suppressed_;
      if (obs::enabled()) duplicates_counter().add();
      continue;
    }
    fresh.push_back(m);
  }
  if (fresh.empty()) {
    // Every message was a duplicate: idempotent no-op, answered with the
    // receive that first consumed the batch's first source ({p, 0} when
    // that record was reclaimed by compaction).
    const auto it = delivered_[p].find(messages.front().source);
    return it != delivered_[p].end() ? it->second : EventId{p, 0};
  }
  return advance(p, fresh, when);
}

std::int64_t OnlineSystem::time_of(EventId e) const {
  return live_entry(e).time;
}

const VectorClock& OnlineSystem::current_clock(ProcessId p) const {
  SYNCON_REQUIRE(p < clocks_.size(), "process id out of range");
  return clocks_[p];
}

const VectorClock& OnlineSystem::clock_of(EventId e) const {
  return live_entry(e).clock;
}

EventIndex OnlineSystem::executed(ProcessId p) const {
  SYNCON_REQUIRE(p < log_.size(), "process id out of range");
  return static_cast<EventIndex>(base_[p] + log_[p].size());
}

WireMessage OnlineSystem::wire_of(EventId e) const {
  SYNCON_REQUIRE(e.process < log_.size() && e.index >= 1 &&
                     e.index <= executed(e.process),
                 "unknown event");
  if (e.index <= base_[e.process]) {
    // Reclaimed: answer with the checkpoint's surface event on e's process.
    // Its clock vouches for e and everything else inside the cut.
    return WireMessage{EventId{e.process, base_[e.process]},
                       checkpoint_.surface_clocks[e.process]};
  }
  return WireMessage{e, clock_of(e)};
}

bool OnlineSystem::already_delivered(ProcessId p, EventId source) const {
  SYNCON_REQUIRE(p < delivered_.size(), "process id out of range");
  return delivered_[p].count(source) != 0 || gaps_[p].witnessed(source);
}

bool OnlineSystem::try_deliver(ProcessId p, const WireMessage& message,
                               std::int64_t when, EventId* receipt) {
  // Every contract check on the single-message deliver path (process range,
  // check_deliverable, the time floor) runs before the first state mutation,
  // so a rejection here leaves the system untouched.
  try {
    const EventId r = deliver(p, message, when);
    if (receipt != nullptr) *receipt = r;
    return true;
  } catch (const ContractViolation&) {
    ++quarantined_;
    if (obs::enabled()) {
      static obs::Counter& c = obs::MetricRegistry::global().counter(
          "syncon_online_quarantined_total");
      c.add();
    }
    obs::flight(obs::FlightKind::kQuarantine, p,
                obs::pack_event(message.source));
    obs::flight_auto_dump("quarantine");
    return false;
  }
}

void OnlineSystem::dump_flight(std::ostream& os) const {
  obs::write_flight_text(os, obs::FlightRecorder::global().dump());
}

void OnlineSystem::restore_checkpoint(const RetentionCheckpoint& checkpoint) {
  SYNCON_REQUIRE(total_ == 0,
                 "restore_checkpoint requires a fresh system (recovery "
                 "installs the snapshot before replaying the WAL tail)");
  SYNCON_REQUIRE(checkpoint.cut.size() == process_count() &&
                     checkpoint.surface_clocks.size() == process_count() &&
                     checkpoint.surface_times.size() == process_count(),
                 "checkpoint does not match this system's process count");
  checkpoint_ = checkpoint;
  for (ProcessId p = 0; p < process_count(); ++p) {
    SYNCON_REQUIRE(checkpoint.cut[p] >= 1,
                   "cut timestamps count the dummy (component >= 1)");
    base_[p] = checkpoint.cut[p] - 1;
    clocks_[p] = checkpoint.surface_clocks[p];
    last_timed_[p] = checkpoint.surface_times[p];
    total_ += base_[p];
  }
  for (ProcessId p = 0; p < process_count(); ++p) {
    for (ProcessId q = 0; q < process_count(); ++q) {
      if (q == p || checkpoint.cut[q] <= 1) continue;
      // Everything inside the cut was durably witnessed by every consumer
      // (the compaction precondition), and any claim a below-cut message
      // made is bounded by the cut (clocks of cut members are <= the cut
      // componentwise): forgiving the cut restores both sides.
      gaps_[p].forgive(q, checkpoint.cut[q] - 1);
      // Re-claim what p's own pre-crash state vouched for (never p's own
      // component — a receiver does not track itself, exactly as advance()
      // skips it). Redundant under the precondition, but keeps the claimed
      // frontier consistent with the pre-crash tracker's.
      if (checkpoint.surface_clocks[p][q] > 0) {
        gaps_[p].claim(q, checkpoint.surface_clocks[p][q] - 1);
      }
    }
  }
}

bool OnlineSystem::restore_event(EventId e, const VectorClock& clock,
                                 std::span<const EventId> sources,
                                 std::int64_t time) {
  const ProcessId p = e.process;
  SYNCON_REQUIRE(p < clocks_.size() && e.index >= 1, "unknown event");
  SYNCON_REQUIRE(clock.size() == clocks_.size(),
                 "restored clock size does not match the process count");
  SYNCON_REQUIRE(clock[p] == e.index + 1,
                 "restored clock breaks the Fidge invariant (own component "
                 "counts the dummy: event (p, i) has clock[p] == i + 1)");
  const bool fresh = e.index > executed(p);
  if (fresh) {
    SYNCON_REQUIRE(e.index == executed(p) + 1,
                   "WAL replay must restore each process's events in order");
    LoggedEvent logged;
    logged.clock = clock;
    logged.sources.assign(sources.begin(), sources.end());
    // WAL records written before source-order canonicalization may carry an
    // arrival permutation; normalize on replay so restored and live logs
    // agree byte for byte.
    std::sort(logged.sources.begin(), logged.sources.end());
    logged.time = time;
    clocks_[p] = clock;
    log_[p].push_back(std::move(logged));
    if (time != kNoTime) last_timed_[p] = time;
    ++total_;
  }
  // Witness/dedup state is refreshed even for events the snapshot already
  // covers: a below-cut receive can be the only witness of an above-cut
  // source, and pruning its dedup record must not resurrect the duplicate.
  for (const EventId& src : sources) {
    SYNCON_REQUIRE(src.process < clocks_.size() && src.process != p &&
                       src.index >= 1,
                   "restored event has a malformed source");
    gaps_[p].witness(src);
    delivered_[p].emplace(src, e);
  }
  for (ProcessId q = 0; q < clocks_.size(); ++q) {
    if (q == p || clock[q] == 0) continue;
    // The event's own clock dominates every message clock it merged, and
    // claimed frontiers are maxima — claiming it reproduces the original
    // claim state exactly.
    gaps_[p].claim(q, clock[q] - 1);
  }
  return fresh;
}

std::span<const EventId> OnlineSystem::sources_of(EventId e) const {
  return live_entry(e).sources;
}

std::vector<EventId> OnlineSystem::missing_at(ProcessId p,
                                              std::size_t limit) const {
  SYNCON_REQUIRE(p < gaps_.size(), "process id out of range");
  return gaps_[p].missing(limit);
}

bool OnlineSystem::has_gap(ProcessId p) const {
  SYNCON_REQUIRE(p < gaps_.size(), "process id out of range");
  return gaps_[p].has_gap();
}

RetransmitRequest OnlineSystem::resync_request(ProcessId p,
                                               std::size_t limit) const {
  return RetransmitRequest{missing_at(p, limit)};
}

std::vector<WireMessage> OnlineSystem::serve(
    const RetransmitRequest& request) const {
  SYNCON_SPAN("online/resync_serve");
  std::vector<WireMessage> out;
  out.reserve(request.events.size());
  // At most one checkpoint-surface reply per process, no matter how many
  // reclaimed events the request names on it — one surface report covers
  // them all.
  std::vector<bool> surfaced(process_count(), false);
  for (const EventId& e : request.events) {
    if (e.process >= log_.size() || e.index < 1 ||
        e.index > executed(e.process)) {
      continue;  // never executed here — this log cannot serve it
    }
    if (e.index <= base_[e.process]) {
      if (!surfaced[e.process]) {
        surfaced[e.process] = true;
        out.push_back(wire_of(e));
      }
      continue;
    }
    out.push_back(wire_of(e));
  }
  if (obs::enabled()) {
    auto& registry = obs::MetricRegistry::global();
    static obs::Counter& serves =
        registry.counter("syncon_online_resync_serves_total");
    static obs::Counter& served =
        registry.counter("syncon_online_resync_messages_total");
    serves.add(1);
    served.add(out.size());
  }
  obs::flight(obs::FlightKind::kResyncServe, obs::FlightRecord::kNoProcess,
              request.events.size(), out.size());
  return out;
}

VectorClock OnlineSystem::snapshot() const {
  VectorClock snap(process_count(), 0);
  for (ProcessId q = 0; q < process_count(); ++q) {
    snap.set(q, static_cast<EventIndex>(base_[q] + log_[q].size() + 1));
  }
  return snap;
}

std::size_t OnlineSystem::compact(const VectorClock& watermark) {
  SYNCON_SPAN("online/compact");
  SYNCON_REQUIRE(watermark.size() == process_count(),
                 "watermark has " + std::to_string(watermark.size()) +
                     " components, system has " +
                     std::to_string(process_count()) + " processes");
  std::size_t reclaimed = 0;
  for (ProcessId p = 0; p < process_count(); ++p) {
    // Counts form: component value c covers events (p, 1..c-1). Clamp to
    // [current checkpoint, executed + 1] — monotone, never past the log.
    ClockValue target = std::min<ClockValue>(
        watermark.at(p), static_cast<ClockValue>(executed(p)) + 1);
    if (target <= checkpoint_.cut.at(p)) continue;
    const EventIndex new_base = target - 1;
    const std::size_t drop = new_base - base_[p];
    // The cut's surface event on p is the last one reclaimed: remember its
    // clock and time so wire_of/serve can answer for everything below it.
    const LoggedEvent& surface = log_[p][drop - 1];
    checkpoint_.surface_clocks[p] = surface.clock;
    checkpoint_.surface_times[p] = surface.time;
    checkpoint_.cut.set(p, target);
    log_[p].erase(log_[p].begin(),
                  log_[p].begin() + static_cast<std::ptrdiff_t>(drop));
    base_[p] = new_base;
    reclaimed += drop;
  }
  if (reclaimed == 0) return 0;
  checkpoint_.reclaimed_total += reclaimed;
  ++checkpoint_.sequence;
  // Dedup records for sources inside the cut are reclaimed with the log;
  // deliver() falls back to the gap tracker's witnessed() for them.
  for (auto& per_receiver : delivered_) {
    for (auto it = per_receiver.begin(); it != per_receiver.end();) {
      it = cut_covers(checkpoint_.cut, it->first) ? per_receiver.erase(it)
                                                  : std::next(it);
    }
  }
  if (obs::enabled()) {
    auto& registry = obs::MetricRegistry::global();
    static obs::Counter& reclaimed_total =
        registry.counter("syncon_online_reclaimed_events_total");
    static obs::Counter& compactions =
        registry.counter("syncon_online_compactions_total");
    static obs::Gauge& live =
        registry.gauge("syncon_online_live_log_events");
    static obs::Gauge& peak =
        registry.gauge("syncon_online_live_log_peak_events");
    static obs::Gauge& lag =
        registry.gauge("syncon_online_watermark_lag_events");
    reclaimed_total.add(reclaimed);
    compactions.add(1);
    const std::size_t live_now = live_log_events();
    live.set(static_cast<std::int64_t>(live_now));
    peak.set_max(static_cast<std::int64_t>(live_now));
    lag.set(static_cast<std::int64_t>(
        watermark_lag(checkpoint_.cut, snapshot())));
  }
  obs::flight(obs::FlightKind::kCompact, obs::FlightRecord::kNoProcess,
              reclaimed, live_log_events());
  return reclaimed;
}

VectorClock OnlineSystem::retention_watermark() const {
  VectorClock w(process_count(), 0);
  for (ProcessId p = 0; p < process_count(); ++p) {
    if (process_count() == 1) {
      // No other consumer exists; everything executed is reclaimable.
      w.set(p, static_cast<ClockValue>(executed(p)) + 1);
      continue;
    }
    EventIndex floor = std::numeric_limits<EventIndex>::max();
    for (ProcessId q = 0; q < process_count(); ++q) {
      if (q == p) continue;
      floor = std::min(floor, gaps_[q].contiguous_prefix(p));
    }
    w.set(p, floor + 1);  // counts form: covers (p, 1..floor)
  }
  return w;
}

std::size_t OnlineSystem::live_log_events() const {
  std::size_t n = 0;
  for (const auto& per_process : log_) n += per_process.size();
  return n;
}

EventIndex OnlineSystem::reclaimed_before(ProcessId p) const {
  SYNCON_REQUIRE(p < base_.size(), "process id out of range");
  return base_[p];
}

bool OnlineSystem::is_live(EventId e) const {
  SYNCON_REQUIRE(e.process < log_.size(), "process id out of range");
  return e.index > base_[e.process] &&
         e.index - base_[e.process] <= log_[e.process].size();
}

Execution OnlineSystem::to_execution() const {
  SYNCON_REQUIRE(reclaimed_events() == 0,
                 "a compacted system cannot materialize its full execution (" +
                     std::to_string(checkpoint_.reclaimed_total) +
                     " events were reclaimed)");
  ExecutionBuilder builder(process_count());
  // Emit events in a topological order: release the next event of each
  // process once all its message sources are already emitted.
  std::vector<std::size_t> next(process_count(), 1);
  std::vector<std::size_t> emitted(process_count(), 0);
  std::size_t remaining = total_;
  while (remaining > 0) {
    bool progress = false;
    for (ProcessId p = 0; p < process_count(); ++p) {
      while (next[p] <= log_[p].size()) {
        const LoggedEvent& ev = log_[p][next[p] - 1];
        bool ready = true;
        for (const EventId& src : ev.sources) {
          if (emitted[src.process] < src.index) {
            ready = false;
            break;
          }
        }
        if (!ready) break;
        if (ev.sources.empty()) {
          builder.local(p);
        } else {
          builder.receive_from(p, ev.sources);
        }
        emitted[p] = next[p];
        ++next[p];
        --remaining;
        progress = true;
      }
    }
    SYNCON_ASSERT(progress || remaining == 0,
                  "online log is not causally consistent");
  }
  return builder.build();
}

OnlineSystem replay(const Execution& exec) {
  OnlineSystem system(exec.process_count());
  // Events that are message sources must be executed via send() so their
  // wire message exists when the receiver is replayed.
  std::unordered_map<EventId, bool> is_source;
  for (const Message& m : exec.messages()) is_source[m.source] = true;
  std::unordered_map<EventId, WireMessage> wires;
  for (const EventId& e : exec.topological_order()) {
    const auto incoming = exec.incoming(e);
    EventId replayed;
    if (!incoming.empty()) {
      std::vector<WireMessage> msgs;
      msgs.reserve(incoming.size());
      for (const EventId& src : incoming) {
        const auto it = wires.find(src);
        SYNCON_ASSERT(it != wires.end(), "source not replayed yet");
        msgs.push_back(it->second);
      }
      replayed = system.deliver_all(e.process, msgs);
    } else if (is_source.count(e)) {
      const WireMessage wire = system.send(e.process);
      wires.emplace(e, wire);
      replayed = wire.source;
    } else {
      replayed = system.local(e.process);
    }
    SYNCON_ASSERT(replayed == e, "replay must preserve event ids");
    // A receive can also be a source (receive-and-forward pattern).
    if (!incoming.empty() && is_source.count(e)) {
      wires.emplace(e, WireMessage{e, system.clock_of(e)});
    }
  }
  return system;
}

}  // namespace syncon
