#include "online/online_system.hpp"

#include <string>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "support/contracts.hpp"

namespace syncon {

namespace {

std::string describe(const EventId& e) {
  return std::to_string(e.process) + ":" + std::to_string(e.index);
}

obs::Counter& deliveries_counter() {
  static obs::Counter& c =
      obs::MetricRegistry::global().counter("syncon_online_deliveries_total");
  return c;
}

obs::Counter& duplicates_counter() {
  static obs::Counter& c = obs::MetricRegistry::global().counter(
      "syncon_online_duplicates_suppressed_total");
  return c;
}

// Wire latency of one delivery in µs of application time (receive `when`
// minus the source event's send time), when both sides are stamped.
void record_delivery_latency(std::int64_t sent_at, std::int64_t when) {
  if (sent_at < 0 || when < 0) return;  // kNoTime on either side
  static obs::Histogram& latency = obs::MetricRegistry::global().histogram(
      "syncon_online_delivery_latency_us",
      obs::HistogramSpec::exponential(1.0, 1048576.0));
  latency.record(static_cast<double>(when - sent_at));
}

}  // namespace

OnlineSystem::OnlineSystem(std::size_t process_count) {
  SYNCON_REQUIRE(process_count > 0, "need at least one process");
  clocks_.reserve(process_count);
  for (std::size_t p = 0; p < process_count; ++p) {
    // Clock of ⊥_p: one own event (the dummy), nothing else known.
    VectorClock c(process_count, 0);
    c[p] = 1;
    clocks_.push_back(std::move(c));
  }
  log_.resize(process_count);
  delivered_.resize(process_count);
  gaps_.assign(process_count, GapTracker(process_count));
}

void OnlineSystem::check_deliverable(ProcessId p, const WireMessage& m) const {
  SYNCON_REQUIRE(m.source.process < clocks_.size(),
                 "message source " + describe(m.source) +
                     " names an unknown process (system has " +
                     std::to_string(clocks_.size()) + " processes)");
  SYNCON_REQUIRE(m.source.process != p,
                 "process " + std::to_string(p) +
                     " cannot receive its own message " + describe(m.source));
  SYNCON_REQUIRE(m.source.index >= 1,
                 "message source " + describe(m.source) +
                     " is not a real event (real events have index >= 1)");
  SYNCON_REQUIRE(m.clock.size() == clocks_[p].size(),
                 "message " + describe(m.source) + " carries a clock of " +
                     std::to_string(m.clock.size()) +
                     " components; this system has " +
                     std::to_string(clocks_[p].size()));
  SYNCON_REQUIRE(
      m.clock[p] <= clocks_[p][p],
      "message " + describe(m.source) +
          " claims receiver events that never executed (corrupt or foreign "
          "message: clock[" +
          std::to_string(p) + "] = " + std::to_string(m.clock[p]) +
          " > " + std::to_string(clocks_[p][p]) + ")");
}

EventId OnlineSystem::advance(ProcessId p,
                              std::span<const WireMessage> messages,
                              std::int64_t when) {
  SYNCON_REQUIRE(p < clocks_.size(),
                 "process id " + std::to_string(p) + " out of range (" +
                     std::to_string(clocks_.size()) + " processes)");
  SYNCON_REQUIRE(when == kNoTime || log_[p].empty() ||
                     log_[p].back().time == kNoTime ||
                     when > log_[p].back().time,
                 "per-process physical times must be strictly increasing");
  VectorClock& clock = clocks_[p];
  LoggedEvent logged;
  logged.time = when;
  for (const WireMessage& m : messages) {
    check_deliverable(p, m);
    clock.merge_max(m.clock);
    logged.sources.push_back(m.source);
    // Loss accounting: the source itself was witnessed; everything its
    // clock vouches for (other than p's own events) must eventually be
    // witnessed too, or it was lost.
    gaps_[p].witness(m.source);
    for (ProcessId q = 0; q < clock.size(); ++q) {
      if (q == p || m.clock[q] == 0) continue;
      gaps_[p].claim(q, m.clock[q] - 1);
    }
  }
  // The paper's axiom ⊥_i ≺ e lifts every component to at least 1.
  for (std::size_t i = 0; i < clock.size(); ++i) {
    if (clock[i] == 0) clock[i] = 1;
  }
  clock[p] = clock[p] + 1;
  const EventId e{p, static_cast<EventIndex>(log_[p].size() + 1)};
  logged.clock = clock;
  log_[p].push_back(std::move(logged));
  ++total_;
  for (const WireMessage& m : messages) {
    delivered_[p].emplace(m.source, e);
  }
  return e;
}

EventId OnlineSystem::local(ProcessId p, std::int64_t when) {
  return advance(p, {}, when);
}

WireMessage OnlineSystem::send(ProcessId p, std::int64_t when) {
  const EventId e = advance(p, {}, when);
  return WireMessage{e, clocks_[p]};
}

EventId OnlineSystem::deliver(ProcessId p, const WireMessage& message,
                              std::int64_t when) {
  SYNCON_SPAN("online/deliver");
  SYNCON_REQUIRE(p < clocks_.size(),
                 "process id " + std::to_string(p) + " out of range (" +
                     std::to_string(clocks_.size()) + " processes)");
  check_deliverable(p, message);
  const auto it = delivered_[p].find(message.source);
  if (it != delivered_[p].end()) {
    ++duplicates_suppressed_;
    if (obs::enabled()) duplicates_counter().add();
    return it->second;
  }
  if (obs::enabled()) {
    deliveries_counter().add();
    if (message.source.index <= log_[message.source.process].size()) {
      record_delivery_latency(time_of(message.source), when);
    }
  }
  const WireMessage msgs[] = {message};
  return advance(p, msgs, when);
}

EventId OnlineSystem::deliver_all(ProcessId p,
                                  std::span<const WireMessage> messages,
                                  std::int64_t when) {
  SYNCON_REQUIRE(p < clocks_.size(),
                 "process id " + std::to_string(p) + " out of range (" +
                     std::to_string(clocks_.size()) + " processes)");
  SYNCON_REQUIRE(!messages.empty(), "deliver_all needs at least one message");
  // Suppress duplicates: against earlier deliveries and within the batch
  // (the same gather point may legitimately see one wire message twice on a
  // faulty transport).
  std::vector<WireMessage> fresh;
  fresh.reserve(messages.size());
  for (const WireMessage& m : messages) {
    check_deliverable(p, m);
    if (delivered_[p].count(m.source)) {
      ++duplicates_suppressed_;
      if (obs::enabled()) duplicates_counter().add();
      continue;
    }
    bool in_batch = false;
    for (const WireMessage& f : fresh) {
      if (f.source == m.source) {
        in_batch = true;
        break;
      }
    }
    if (in_batch) {
      ++duplicates_suppressed_;
      if (obs::enabled()) duplicates_counter().add();
      continue;
    }
    if (obs::enabled()) {
      deliveries_counter().add();
      if (m.source.index <= log_[m.source.process].size()) {
        record_delivery_latency(time_of(m.source), when);
      }
    }
    fresh.push_back(m);
  }
  if (fresh.empty()) {
    // Every message was a duplicate: idempotent no-op, answered with the
    // receive that first consumed the batch's first source.
    return delivered_[p].at(messages.front().source);
  }
  return advance(p, fresh, when);
}

std::int64_t OnlineSystem::time_of(EventId e) const {
  SYNCON_REQUIRE(e.process < log_.size() && e.index >= 1 &&
                     e.index <= log_[e.process].size(),
                 "unknown event");
  return log_[e.process][e.index - 1].time;
}

const VectorClock& OnlineSystem::current_clock(ProcessId p) const {
  SYNCON_REQUIRE(p < clocks_.size(), "process id out of range");
  return clocks_[p];
}

const VectorClock& OnlineSystem::clock_of(EventId e) const {
  SYNCON_REQUIRE(e.process < log_.size() && e.index >= 1 &&
                     e.index <= log_[e.process].size(),
                 "unknown event");
  return log_[e.process][e.index - 1].clock;
}

EventIndex OnlineSystem::executed(ProcessId p) const {
  SYNCON_REQUIRE(p < log_.size(), "process id out of range");
  return static_cast<EventIndex>(log_[p].size());
}

WireMessage OnlineSystem::wire_of(EventId e) const {
  return WireMessage{e, clock_of(e)};  // clock_of validates e
}

bool OnlineSystem::already_delivered(ProcessId p, EventId source) const {
  SYNCON_REQUIRE(p < delivered_.size(), "process id out of range");
  return delivered_[p].count(source) != 0;
}

std::vector<EventId> OnlineSystem::missing_at(ProcessId p) const {
  SYNCON_REQUIRE(p < gaps_.size(), "process id out of range");
  return gaps_[p].missing();
}

bool OnlineSystem::has_gap(ProcessId p) const {
  SYNCON_REQUIRE(p < gaps_.size(), "process id out of range");
  return gaps_[p].has_gap();
}

RetransmitRequest OnlineSystem::resync_request(ProcessId p) const {
  return RetransmitRequest{missing_at(p)};
}

std::vector<WireMessage> OnlineSystem::serve(
    const RetransmitRequest& request) const {
  SYNCON_SPAN("online/resync_serve");
  std::vector<WireMessage> out;
  out.reserve(request.events.size());
  for (const EventId& e : request.events) {
    if (e.process < log_.size() && e.index >= 1 &&
        e.index <= log_[e.process].size()) {
      out.push_back(wire_of(e));
    }
  }
  if (obs::enabled()) {
    auto& registry = obs::MetricRegistry::global();
    static obs::Counter& serves =
        registry.counter("syncon_online_resync_serves_total");
    static obs::Counter& served =
        registry.counter("syncon_online_resync_messages_total");
    serves.add(1);
    served.add(out.size());
  }
  return out;
}

VectorClock OnlineSystem::snapshot() const {
  VectorClock snap(process_count(), 0);
  for (ProcessId q = 0; q < process_count(); ++q) {
    snap[q] = static_cast<EventIndex>(log_[q].size() + 1);
  }
  return snap;
}

Execution OnlineSystem::to_execution() const {
  ExecutionBuilder builder(process_count());
  // Emit events in a topological order: release the next event of each
  // process once all its message sources are already emitted.
  std::vector<std::size_t> next(process_count(), 1);
  std::vector<std::size_t> emitted(process_count(), 0);
  std::size_t remaining = total_;
  while (remaining > 0) {
    bool progress = false;
    for (ProcessId p = 0; p < process_count(); ++p) {
      while (next[p] <= log_[p].size()) {
        const LoggedEvent& ev = log_[p][next[p] - 1];
        bool ready = true;
        for (const EventId& src : ev.sources) {
          if (emitted[src.process] < src.index) {
            ready = false;
            break;
          }
        }
        if (!ready) break;
        if (ev.sources.empty()) {
          builder.local(p);
        } else {
          builder.receive_from(p, ev.sources);
        }
        emitted[p] = next[p];
        ++next[p];
        --remaining;
        progress = true;
      }
    }
    SYNCON_ASSERT(progress || remaining == 0,
                  "online log is not causally consistent");
  }
  return builder.build();
}

OnlineSystem replay(const Execution& exec) {
  OnlineSystem system(exec.process_count());
  // Events that are message sources must be executed via send() so their
  // wire message exists when the receiver is replayed.
  std::unordered_map<EventId, bool> is_source;
  for (const Message& m : exec.messages()) is_source[m.source] = true;
  std::unordered_map<EventId, WireMessage> wires;
  for (const EventId& e : exec.topological_order()) {
    const auto incoming = exec.incoming(e);
    EventId replayed;
    if (!incoming.empty()) {
      std::vector<WireMessage> msgs;
      msgs.reserve(incoming.size());
      for (const EventId& src : incoming) {
        const auto it = wires.find(src);
        SYNCON_ASSERT(it != wires.end(), "source not replayed yet");
        msgs.push_back(it->second);
      }
      replayed = system.deliver_all(e.process, msgs);
    } else if (is_source.count(e)) {
      const WireMessage wire = system.send(e.process);
      wires.emplace(e, wire);
      replayed = wire.source;
    } else {
      replayed = system.local(e.process);
    }
    SYNCON_ASSERT(replayed == e, "replay must preserve event ids");
    // A receive can also be a source (receive-and-forward pattern).
    if (!incoming.empty() && is_source.count(e)) {
      wires.emplace(e, WireMessage{e, system.clock_of(e)});
    }
  }
  return system;
}

}  // namespace syncon
