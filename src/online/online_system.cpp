#include "online/online_system.hpp"

#include <unordered_map>

#include "support/contracts.hpp"

namespace syncon {

OnlineSystem::OnlineSystem(std::size_t process_count) {
  SYNCON_REQUIRE(process_count > 0, "need at least one process");
  clocks_.reserve(process_count);
  for (std::size_t p = 0; p < process_count; ++p) {
    // Clock of ⊥_p: one own event (the dummy), nothing else known.
    VectorClock c(process_count, 0);
    c[p] = 1;
    clocks_.push_back(std::move(c));
  }
  log_.resize(process_count);
}

EventId OnlineSystem::advance(ProcessId p,
                              std::span<const WireMessage> messages,
                              std::int64_t when) {
  SYNCON_REQUIRE(p < clocks_.size(), "process id out of range");
  SYNCON_REQUIRE(when == kNoTime || log_[p].empty() ||
                     log_[p].back().time == kNoTime ||
                     when > log_[p].back().time,
                 "per-process physical times must be strictly increasing");
  VectorClock& clock = clocks_[p];
  LoggedEvent logged;
  logged.time = when;
  for (const WireMessage& m : messages) {
    SYNCON_REQUIRE(m.source.process != p,
                   "a process cannot receive its own message");
    SYNCON_REQUIRE(m.source.process < clocks_.size(),
                   "message from unknown process");
    SYNCON_REQUIRE(m.clock.size() == clock.size(),
                   "foreign clock has the wrong size");
    clock.merge_max(m.clock);
    logged.sources.push_back(m.source);
  }
  // The paper's axiom ⊥_i ≺ e lifts every component to at least 1.
  for (std::size_t i = 0; i < clock.size(); ++i) {
    if (clock[i] == 0) clock[i] = 1;
  }
  clock[p] = clock[p] + 1;
  const EventId e{p, static_cast<EventIndex>(log_[p].size() + 1)};
  logged.clock = clock;
  log_[p].push_back(std::move(logged));
  ++total_;
  return e;
}

EventId OnlineSystem::local(ProcessId p, std::int64_t when) {
  return advance(p, {}, when);
}

WireMessage OnlineSystem::send(ProcessId p, std::int64_t when) {
  const EventId e = advance(p, {}, when);
  return WireMessage{e, clocks_[p]};
}

EventId OnlineSystem::deliver(ProcessId p, const WireMessage& message,
                              std::int64_t when) {
  const WireMessage msgs[] = {message};
  return advance(p, msgs, when);
}

EventId OnlineSystem::deliver_all(ProcessId p,
                                  std::span<const WireMessage> messages,
                                  std::int64_t when) {
  SYNCON_REQUIRE(!messages.empty(), "deliver_all needs at least one message");
  return advance(p, messages, when);
}

std::int64_t OnlineSystem::time_of(EventId e) const {
  SYNCON_REQUIRE(e.process < log_.size() && e.index >= 1 &&
                     e.index <= log_[e.process].size(),
                 "unknown event");
  return log_[e.process][e.index - 1].time;
}

const VectorClock& OnlineSystem::current_clock(ProcessId p) const {
  SYNCON_REQUIRE(p < clocks_.size(), "process id out of range");
  return clocks_[p];
}

const VectorClock& OnlineSystem::clock_of(EventId e) const {
  SYNCON_REQUIRE(e.process < log_.size() && e.index >= 1 &&
                     e.index <= log_[e.process].size(),
                 "unknown event");
  return log_[e.process][e.index - 1].clock;
}

EventIndex OnlineSystem::executed(ProcessId p) const {
  SYNCON_REQUIRE(p < log_.size(), "process id out of range");
  return static_cast<EventIndex>(log_[p].size());
}

Execution OnlineSystem::to_execution() const {
  ExecutionBuilder builder(process_count());
  // Emit events in a topological order: release the next event of each
  // process once all its message sources are already emitted.
  std::vector<std::size_t> next(process_count(), 1);
  std::vector<std::size_t> emitted(process_count(), 0);
  std::size_t remaining = total_;
  while (remaining > 0) {
    bool progress = false;
    for (ProcessId p = 0; p < process_count(); ++p) {
      while (next[p] <= log_[p].size()) {
        const LoggedEvent& ev = log_[p][next[p] - 1];
        bool ready = true;
        for (const EventId& src : ev.sources) {
          if (emitted[src.process] < src.index) {
            ready = false;
            break;
          }
        }
        if (!ready) break;
        if (ev.sources.empty()) {
          builder.local(p);
        } else {
          builder.receive_from(p, ev.sources);
        }
        emitted[p] = next[p];
        ++next[p];
        --remaining;
        progress = true;
      }
    }
    SYNCON_ASSERT(progress || remaining == 0,
                  "online log is not causally consistent");
  }
  return builder.build();
}

OnlineSystem replay(const Execution& exec) {
  OnlineSystem system(exec.process_count());
  // Events that are message sources must be executed via send() so their
  // wire message exists when the receiver is replayed.
  std::unordered_map<EventId, bool> is_source;
  for (const Message& m : exec.messages()) is_source[m.source] = true;
  std::unordered_map<EventId, WireMessage> wires;
  for (const EventId& e : exec.topological_order()) {
    const auto incoming = exec.incoming(e);
    EventId replayed;
    if (!incoming.empty()) {
      std::vector<WireMessage> msgs;
      msgs.reserve(incoming.size());
      for (const EventId& src : incoming) {
        const auto it = wires.find(src);
        SYNCON_ASSERT(it != wires.end(), "source not replayed yet");
        msgs.push_back(it->second);
      }
      replayed = system.deliver_all(e.process, msgs);
    } else if (is_source.count(e)) {
      const WireMessage wire = system.send(e.process);
      wires.emplace(e, wire);
      replayed = wire.source;
    } else {
      replayed = system.local(e.process);
    }
    SYNCON_ASSERT(replayed == e, "replay must preserve event ids");
    // A receive can also be a source (receive-and-forward pattern).
    if (!incoming.empty() && is_source.count(e)) {
      wires.emplace(e, WireMessage{e, system.clock_of(e)});
    }
  }
  return system;
}

}  // namespace syncon
