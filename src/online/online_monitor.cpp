#include "online/online_monitor.hpp"

#include "support/contracts.hpp"

namespace syncon {

OnlineMonitor::OnlineMonitor(const OnlineSystem& system) : system_(&system) {}

void OnlineMonitor::begin(const std::string& label) {
  SYNCON_REQUIRE(!label.empty(), "actions need a label");
  SYNCON_REQUIRE(!open_.count(label) && !completed_.count(label),
                 "duplicate action label '" + label + "'");
  open_.emplace(label, IntervalTracker(label));
}

void OnlineMonitor::record(const std::string& label, EventId e) {
  const auto it = open_.find(label);
  SYNCON_REQUIRE(it != open_.end(), "no open action labeled '" + label + "'");
  it->second.add(*system_, e);
}

const IntervalSummary& OnlineMonitor::complete(const std::string& label) {
  const auto it = open_.find(label);
  SYNCON_REQUIRE(it != open_.end(), "no open action labeled '" + label + "'");
  SYNCON_REQUIRE(!it->second.empty(),
                 "completing '" + label + "' with no recorded events");
  auto [pos, inserted] = completed_.emplace(label, it->second.summary());
  SYNCON_ASSERT(inserted, "label uniqueness invariant broken");
  open_.erase(it);
  fire_ready_watches();
  return pos->second;
}

bool OnlineMonitor::is_open(const std::string& label) const {
  return open_.count(label) != 0;
}

bool OnlineMonitor::is_complete(const std::string& label) const {
  return completed_.count(label) != 0;
}

const IntervalSummary* OnlineMonitor::summary(const std::string& label) const {
  const auto it = completed_.find(label);
  return it == completed_.end() ? nullptr : &it->second;
}

void OnlineMonitor::forget(const std::string& label) {
  SYNCON_REQUIRE(completed_.count(label) != 0,
                 "no completed action labeled '" + label + "'");
  completed_.erase(label);
  std::erase_if(relation_watches_, [&](const RelationWatch& w) {
    return w.x == label || w.y == label;
  });
  std::erase_if(deadline_watches_, [&](const DeadlineWatch& w) {
    return w.x == label || w.y == label;
  });
}

void OnlineMonitor::watch(const RelationId& relation, const std::string& x,
                          const std::string& y, RelationCallback callback) {
  SYNCON_REQUIRE(callback != nullptr, "watch needs a callback");
  relation_watches_.push_back(
      RelationWatch{relation, x, y, std::move(callback), false});
  fire_ready_watches();
}

void OnlineMonitor::watch_deadline(const TimingConstraint& constraint,
                                   const std::string& x, const std::string& y,
                                   DeadlineCallback callback) {
  SYNCON_REQUIRE(callback != nullptr, "watch needs a callback");
  SYNCON_REQUIRE(constraint.min_gap <= constraint.max_gap,
                 "constraint window must be ordered");
  deadline_watches_.push_back(
      DeadlineWatch{constraint, x, y, std::move(callback), false});
  fire_ready_watches();
}

Duration OnlineMonitor::anchor_time(const IntervalSummary& s, Anchor a) {
  return a == Anchor::Start ? s.start_time : s.end_time;
}

void OnlineMonitor::fire_ready_watches() {
  // Callbacks may re-enter the monitor (register further watches, complete
  // more actions): iterate by index so vector growth is safe, and suppress
  // recursive firing — the outer pass will pick up anything new. Callbacks
  // must not call forget() (it compacts the watch vectors).
  if (firing_) return;
  firing_ = true;
  bool fired_any = true;
  while (fired_any) {  // repeat: a callback may make earlier watches ready
    fired_any = false;
    for (std::size_t i = 0; i < relation_watches_.size(); ++i) {
      if (relation_watches_[i].fired) continue;
      const IntervalSummary* sx = summary(relation_watches_[i].x);
      const IntervalSummary* sy = summary(relation_watches_[i].y);
      if (sx == nullptr || sy == nullptr) continue;
      relation_watches_[i].fired = true;
      fired_any = true;
      const bool holds =
          evaluate_online(relation_watches_[i].relation, *sx, *sy, counter_);
      // Copy what the callback needs: re-entrant registrations may grow the
      // vector and invalidate references.
      const RelationCallback callback = relation_watches_[i].callback;
      const std::string x = relation_watches_[i].x;
      const std::string y = relation_watches_[i].y;
      callback(x, y, holds);
    }
    for (std::size_t i = 0; i < deadline_watches_.size(); ++i) {
      if (deadline_watches_[i].fired) continue;
      const IntervalSummary* sx = summary(deadline_watches_[i].x);
      const IntervalSummary* sy = summary(deadline_watches_[i].y);
      if (sx == nullptr || sy == nullptr) continue;
      deadline_watches_[i].fired = true;
      fired_any = true;
      const TimingConstraint constraint = deadline_watches_[i].constraint;
      const DeadlineCallback callback = deadline_watches_[i].callback;
      const std::string x = deadline_watches_[i].x;
      const std::string y = deadline_watches_[i].y;
      if (!sx->fully_timed || !sy->fully_timed) {
        callback(x, y, 0, false);
        continue;
      }
      const Duration measured = anchor_time(*sy, constraint.anchor_y) -
                                anchor_time(*sx, constraint.anchor_x);
      const bool ok =
          measured >= constraint.min_gap && measured <= constraint.max_gap;
      callback(x, y, measured, ok);
    }
  }
  firing_ = false;
}

}  // namespace syncon
