#include "online/online_monitor.hpp"

#include <algorithm>

#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "support/contracts.hpp"

namespace syncon {

const char* to_string(Confidence c) {
  return c == Confidence::Definite ? "definite" : "pending-gap";
}

OnlineMonitor::OnlineMonitor(const OnlineSystem& system)
    : system_(&system),
      process_count_(system.process_count()),
      gaps_(system.process_count()),
      crashed_(system.process_count(), false) {}

OnlineMonitor::OnlineMonitor(std::size_t process_count)
    : system_(nullptr),
      process_count_(process_count),
      gaps_(process_count),
      crashed_(process_count, false) {
  SYNCON_REQUIRE(process_count > 0, "need at least one process");
}

void OnlineMonitor::begin(const std::string& label) {
  SYNCON_REQUIRE(!label.empty(), "actions need a label");
  SYNCON_REQUIRE(!open_.count(label) && !completed_.count(label),
                 "duplicate action label '" + label + "'");
  open_.emplace(label, IntervalTracker(label));
  if (latency_tracking_) timing_[label].begin_us = obs::now_us();
}

void OnlineMonitor::record(const std::string& label, EventId e) {
  SYNCON_REQUIRE(system_ != nullptr,
                 "record() reads the running system; a feed-only monitor "
                 "must ingest() event reports instead");
  const auto it = open_.find(label);
  SYNCON_REQUIRE(it != open_.end(), "no open action labeled '" + label + "'");
  it->second.add(*system_, e);
  note_action_report(label);
}

const IntervalSummary& OnlineMonitor::complete(const std::string& label) {
  const auto it = open_.find(label);
  SYNCON_REQUIRE(it != open_.end(), "no open action labeled '" + label + "'");
  SYNCON_REQUIRE(!it->second.empty(),
                 "completing '" + label + "' with no recorded events" +
                     (system_ == nullptr
                          ? " — every report may have been lost; checkpoint() "
                            "an authoritative snapshot and resync first"
                          : ""));
  auto [pos, inserted] = completed_.emplace(label, it->second.summary());
  SYNCON_ASSERT(inserted, "label uniqueness invariant broken");
  // Keep the tracker: a late report recovered after a loss can still repair
  // this summary (degraded mode). forget() releases it.
  sealed_.insert(open_.extract(it));
  if (latency_tracking_) timing_[label].completed_us = obs::now_us();
  fire_ready_watches();
  return pos->second;
}

bool OnlineMonitor::is_open(const std::string& label) const {
  return open_.count(label) != 0;
}

bool OnlineMonitor::is_complete(const std::string& label) const {
  return completed_.count(label) != 0;
}

std::size_t OnlineMonitor::recorded_events(const std::string& label) const {
  const auto it = open_.find(label);
  SYNCON_REQUIRE(it != open_.end(), "no open action labeled '" + label + "'");
  return it->second.event_count();
}

const IntervalSummary* OnlineMonitor::summary(const std::string& label) const {
  const auto it = completed_.find(label);
  return it == completed_.end() ? nullptr : &it->second;
}

void OnlineMonitor::forget(const std::string& label) {
  SYNCON_REQUIRE(completed_.count(label) != 0,
                 "no completed action labeled '" + label + "'");
  completed_.erase(label);
  sealed_.erase(label);
  timing_.erase(label);
  std::erase_if(relation_watches_, [&](const RelationWatch& w) {
    return w.x == label || w.y == label;
  });
  std::erase_if(deadline_watches_, [&](const DeadlineWatch& w) {
    return w.x == label || w.y == label;
  });
}

std::vector<std::string> OnlineMonitor::open_actions() const {
  std::vector<std::string> out;
  out.reserve(open_.size());
  for (const auto& [label, tracker] : open_) out.push_back(label);
  return out;
}

bool OnlineMonitor::observe(const WireMessage& report) {
  SYNCON_SPAN("monitor/ingest");
  degraded_ = true;
  ++reports_seen_;
  if (!gaps_.witness(report.source)) {
    ++duplicate_reports_;
    return false;
  }
  gaps_.claim(report.clock);
  note_gap_state();
  if (!gaps_.has_gap()) rearm_after_recovery(nullptr);
  fire_ready_watches();
  return true;
}

bool OnlineMonitor::ingest(const std::string& label,
                           const WireMessage& report, std::int64_t when) {
  SYNCON_SPAN("monitor/ingest");
  const auto open_it = open_.find(label);
  const auto sealed_it = sealed_.find(label);
  SYNCON_REQUIRE(open_it != open_.end() || sealed_it != sealed_.end(),
                 "no open or completed action labeled '" + label + "'");
  degraded_ = true;
  ++reports_seen_;
  if (!gaps_.witness(report.source)) {
    ++duplicate_reports_;
    return false;
  }
  gaps_.claim(report.clock);
  note_action_report(label);
  if (open_it != open_.end()) {
    open_it->second.add(report.source, report.clock, when);
  } else {
    // Late report for a completed action: repair the sealed summary and let
    // the watches that consumed it re-fire with the corrected verdict.
    sealed_it->second.add(report.source, report.clock, when);
    completed_[label] = sealed_it->second.summary();
    rearm_after_recovery(&label);
  }
  note_gap_state();
  if (!gaps_.has_gap()) rearm_after_recovery(nullptr);
  fire_ready_watches();
  return true;
}

bool OnlineMonitor::try_observe(const WireMessage& report) {
  if (!valid_report(report)) {
    quarantine(report);
    return false;
  }
  return observe(report);
}

bool OnlineMonitor::try_ingest(const std::string& label,
                               const WireMessage& report, std::int64_t when) {
  if (!valid_report(report)) {
    quarantine(report);
    return false;
  }
  return ingest(label, report, when);
}

bool OnlineMonitor::valid_report(const WireMessage& report) const {
  // Everything a genuine report satisfies and garbage usually does not:
  // range checks the gap tracker would otherwise abort on, plus the Fidge
  // invariant — the clock of event (p, i) has own component i + 1 (the
  // convention counts the dummy). A corrupt frame that still passes all of
  // this carries a self-consistent clock and folds in harmlessly.
  return report.source.process < process_count_ && report.source.index >= 1 &&
         report.clock.size() == process_count_ &&
         report.clock[report.source.process] == report.source.index + 1;
}

void OnlineMonitor::quarantine(const WireMessage& report) {
  ++quarantined_;
  if (obs::enabled()) {
    static obs::Counter& c = obs::MetricRegistry::global().counter(
        "syncon_monitor_quarantined_reports_total");
    c.add();
  }
  obs::flight(obs::FlightKind::kQuarantine, obs::FlightRecord::kNoProcess,
              obs::pack_event(report.source));
  obs::flight_auto_dump("quarantine");
}

void OnlineMonitor::set_resync_policy(const ResyncPolicy& policy) {
  SYNCON_REQUIRE(policy.budget >= 1 && policy.initial_backoff >= 1 &&
                     policy.max_backoff >= policy.initial_backoff,
                 "resync policy needs budget >= 1 and an ordered backoff "
                 "range");
  resync_policy_ = policy;
  resync_episode_attempts_ = 0;
  resync_backoff_ = policy.initial_backoff;
  resync_exhausted_ = false;
}

std::optional<RetransmitRequest> OnlineMonitor::next_resync(
    std::uint64_t now, std::size_t limit) {
  if (!gaps_.has_gap()) {
    resync_episode_attempts_ = 0;
    resync_backoff_ = resync_policy_.initial_backoff;
    resync_exhausted_ = false;
    return std::nullopt;
  }
  const std::size_t missing_now = gaps_.missing_count();
  if (resync_episode_attempts_ > 0 && missing_now < resync_last_missing_) {
    // The last round recovered something — the server is alive; a slow
    // chunked recovery must not burn the budget. Fresh episode.
    resync_episode_attempts_ = 0;
    resync_backoff_ = resync_policy_.initial_backoff;
    resync_exhausted_ = false;
  }
  if (resync_episode_attempts_ >= resync_policy_.budget) {
    if (!resync_exhausted_) {
      resync_exhausted_ = true;
      ++resync_give_ups_;
      if (obs::enabled()) {
        static obs::Counter& c = obs::MetricRegistry::global().counter(
            "syncon_monitor_resync_give_ups_total");
        c.add();
      }
    }
    return std::nullopt;  // gaps stay PendingGap for good
  }
  if (resync_episode_attempts_ > 0 && now < resync_next_at_) {
    return std::nullopt;  // backing off
  }
  ++resync_episode_attempts_;
  ++resync_attempts_;
  resync_last_missing_ = missing_now;
  resync_next_at_ = now + resync_backoff_;
  resync_backoff_ = std::min(resync_backoff_ * 2, resync_policy_.max_backoff);
  if (obs::enabled()) {
    static obs::Counter& c = obs::MetricRegistry::global().counter(
        "syncon_monitor_resync_attempts_total");
    c.add();
  }
  RetransmitRequest request = gaps_.resync_request(limit);
  obs::flight(obs::FlightKind::kResyncRequest, obs::FlightRecord::kNoProcess,
              request.events.size(), resync_episode_attempts_);
  return request;
}

void OnlineMonitor::checkpoint(const VectorClock& snapshot) {
  degraded_ = true;
  gaps_.claim(snapshot);
  obs::flight(obs::FlightKind::kCheckpoint, obs::FlightRecord::kNoProcess);
  note_gap_state();
}

VectorClock OnlineMonitor::watermark_pin() const {
  VectorClock pin(process_count_, 0);
  for (ProcessId p = 0; p < process_count_; ++p) {
    pin.set(p, gaps_.contiguous_prefix(p) + 1);
  }
  // Open (unevaluated) actions keep their component events servable: the
  // pin holds at the least referenced index until the action completes and
  // its watches have consumed the summary.
  for (const auto& [label, tracker] : open_) {
    for (const auto& [q, least] : tracker.least_indices()) {
      pin.set(q, std::min<ClockValue>(pin.at(q), least));
    }
  }
  return pin;
}

void OnlineMonitor::adopt_checkpoint(const RetentionCheckpoint& checkpoint) {
  SYNCON_REQUIRE(checkpoint.cut.size() == process_count_,
                 "checkpoint cut has " +
                     std::to_string(checkpoint.cut.size()) +
                     " components, monitor covers " +
                     std::to_string(process_count_) + " processes");
  degraded_ = true;
  for (ProcessId p = 0; p < process_count_; ++p) {
    // The surface clock vouches for the frontier a late joiner can never
    // see reports for; anything it claims beyond the cut is a real gap the
    // normal resync path recovers.
    gaps_.claim(checkpoint.surface_clocks[p]);
    if (checkpoint.cut[p] > 0) gaps_.forgive(p, checkpoint.cut[p] - 1);
  }
  obs::flight(obs::FlightKind::kCheckpoint, obs::FlightRecord::kNoProcess,
              checkpoint.sequence);
  note_gap_state();
  if (!gaps_.has_gap()) rearm_after_recovery(nullptr);
  fire_ready_watches();
}

void OnlineMonitor::note_gap_state() {
  const bool open_now = gaps_.has_gap();
  if (open_now && !gap_open_) {
    gap_open_ = true;
    gap_opened_at_report_ = reports_seen_;
    gap_opened_us_ = obs::now_us();
    obs::flight(obs::FlightKind::kGapOpen, obs::FlightRecord::kNoProcess,
                gaps_.missing_count());
  } else if (!open_now && gap_open_) {
    gap_open_ = false;
    const std::uint64_t open_us = obs::now_us() - gap_opened_us_;
    if (obs::enabled()) {
      // Duration measured in reports observed while the gap stayed open —
      // the monitor's own deterministic clock, unlike wall time.
      static obs::Histogram& open_reports =
          obs::MetricRegistry::global().histogram(
              "syncon_monitor_gap_open_reports",
              obs::HistogramSpec::exponential(1.0, 4096.0));
      open_reports.record(
          static_cast<double>(reports_seen_ - gap_opened_at_report_));
    }
    // The wall-clock dwell behind PendingGap verdicts — the resync leg of
    // the detection-latency taxonomy (outside the per-verdict waterfall,
    // since one gap episode can taint many verdicts).
    obs::record_stage_latency("resync_wait", open_us);
    obs::flight(obs::FlightKind::kGapClose, obs::FlightRecord::kNoProcess,
                reports_seen_ - gap_opened_at_report_, open_us);
  }
}

void OnlineMonitor::mark_crashed(ProcessId p) {
  SYNCON_REQUIRE(p < process_count_, "process id out of range");
  crashed_[p] = true;
  obs::flight(obs::FlightKind::kCrash, p);
}

bool OnlineMonitor::is_crashed(ProcessId p) const {
  SYNCON_REQUIRE(p < process_count_, "process id out of range");
  return crashed_[p];
}

std::vector<ProcessId> OnlineMonitor::crashed_processes() const {
  std::vector<ProcessId> out;
  for (ProcessId p = 0; p < process_count_; ++p) {
    if (crashed_[p]) out.push_back(p);
  }
  return out;
}

std::vector<std::string> OnlineMonitor::doomed_actions() const {
  std::vector<std::string> out;
  for (const auto& [label, tracker] : open_) {
    for (const ProcessId p : tracker.nodes()) {
      if (crashed_[p]) {
        out.push_back(label);
        break;
      }
    }
  }
  return out;
}

std::vector<EventId> OnlineMonitor::unrecoverable_reports() const {
  std::vector<EventId> out;
  for (const EventId& e : gaps_.missing()) {
    if (crashed_[e.process]) out.push_back(e);
  }
  return out;
}

void OnlineMonitor::watch(const RelationId& relation, const std::string& x,
                          const std::string& y, RelationCallback callback) {
  SYNCON_REQUIRE(callback != nullptr, "watch needs a callback");
  relation_watches_.push_back(
      RelationWatch{relation, x, y, std::move(callback)});
  fire_ready_watches();
}

void OnlineMonitor::watch_deadline(const TimingConstraint& constraint,
                                   const std::string& x, const std::string& y,
                                   DeadlineCallback callback) {
  SYNCON_REQUIRE(callback != nullptr, "watch needs a callback");
  SYNCON_REQUIRE(constraint.min_gap <= constraint.max_gap,
                 "constraint window must be ordered");
  deadline_watches_.push_back(
      DeadlineWatch{constraint, x, y, std::move(callback)});
  fire_ready_watches();
}

Duration OnlineMonitor::anchor_time(const IntervalSummary& s, Anchor a) {
  return a == Anchor::Start ? s.start_time : s.end_time;
}

Confidence OnlineMonitor::current_confidence() const {
  // Conservative: any outstanding gap taints every verdict — a lost report
  // could be a component event of any action (even one whose node set does
  // not show the lost event's process: all of an action's events on that
  // process may have been lost). See DESIGN.md §3.7.
  return degraded_ && gaps_.has_gap() ? Confidence::PendingGap
                                      : Confidence::Definite;
}

std::vector<OnlineMonitor::HealthMetric> OnlineMonitor::health_metrics()
    const {
  return {
      {"syncon_monitor_open_actions", "open actions", open_.size()},
      {"syncon_monitor_completed_summaries", "completed summaries",
       retained()},
      {"syncon_monitor_reports_seen", "reports observed", reports_seen_},
      {"syncon_monitor_duplicate_reports", "duplicate reports suppressed",
       duplicate_reports_},
      {"syncon_monitor_known_lost_reports", "known-lost reports",
       missing_report_count()},
      {"syncon_monitor_quarantined_reports", "quarantined reports",
       quarantined_},
      {"syncon_monitor_resync_attempts", "resync attempts", resync_attempts_},
      {"syncon_monitor_resync_give_ups", "resync budget exhaustions",
       resync_give_ups_},
      {"syncon_monitor_definite_fires", "definite watch firings",
       definite_fires_},
      {"syncon_monitor_pending_fires", "pending-gap watch firings",
       pending_fires_},
      {"syncon_monitor_crashed_processes", "crashed processes",
       crashed_processes().size()},
  };
}

void OnlineMonitor::publish_metrics() const {
  auto& registry = obs::MetricRegistry::global();
  for (const HealthMetric& m : health_metrics()) {
    registry.gauge(m.metric).set(static_cast<std::int64_t>(m.value));
  }
}

void OnlineMonitor::note_action_report(const std::string& label) {
  if (!latency_tracking_) return;
  ActionTiming& t = timing_[label];
  const std::uint64_t now = obs::now_us();
  if (t.first_report_us == 0) t.first_report_us = now;
  t.last_report_us = now;
}

void OnlineMonitor::emit_waterfall(const std::string& x, const std::string& y,
                                   bool holds, Confidence confidence,
                                   int fires, std::uint64_t eval0_us,
                                   std::uint64_t eval1_us,
                                   std::uint64_t fired_us) {
  const auto timing_of = [&](const std::string& label) {
    const auto it = timing_.find(label);
    return it == timing_.end() ? ActionTiming{} : it->second;
  };
  const ActionTiming tx = timing_of(x);
  const ActionTiming ty = timing_of(y);
  // Earliest stamp either action carries; a zero stamp means "tracking was
  // not on yet" and contributes nothing.
  const auto min_nonzero = [](std::uint64_t a, std::uint64_t b) {
    if (a == 0) return b;
    if (b == 0) return a;
    return std::min(a, b);
  };
  std::uint64_t start = min_nonzero(min_nonzero(tx.begin_us, ty.begin_us),
                                    min_nonzero(tx.first_report_us,
                                                ty.first_report_us));
  if (start == 0 || start > eval0_us) start = eval0_us;

  obs::Waterfall w;
  w.x = x;
  w.y = y;
  w.holds = holds;
  w.definite = confidence == Confidence::Definite;
  w.fire_index = fires;
  w.start_us = start;
  // Contiguous, clamped boundaries: each stage begins where the previous
  // ended, so the waterfall is monotone by construction and its durations
  // sum exactly to the end-to-end latency.
  const std::uint64_t bounds[] = {
      start,
      std::max(tx.last_report_us, ty.last_report_us),   // observe ends
      std::max(tx.completed_us, ty.completed_us),       // track ends
      eval0_us,                                         // gap_wait ends
      eval1_us,                                         // evaluate ends
      fired_us,                                         // fire ends
  };
  std::uint64_t cursor = start;
  const auto stages = obs::detect_stages();
  for (std::size_t s = 0; s < stages.size(); ++s) {
    const std::uint64_t end = std::max(cursor, bounds[s + 1]);
    w.stages.push_back(
        obs::StageSpan{std::string(stages[s]), cursor, end - cursor});
    obs::record_stage_latency(stages[s], end - cursor);
    cursor = end;
  }
  obs::flight(obs::FlightKind::kVerdict, obs::FlightRecord::kNoProcess,
              static_cast<std::uint64_t>(holds) |
                  (static_cast<std::uint64_t>(w.definite) << 1),
              w.total_us());
  waterfalls_.push_back(std::move(w));
  while (waterfalls_.size() > kMaxWaterfalls) waterfalls_.pop_front();
}

void OnlineMonitor::rearm_after_recovery(const std::string* label) {
  const bool all_clear = !gaps_.has_gap();
  const auto rearm = [&](auto& watch) {
    if (watch.fires == 0 || watch.armed) return;
    const bool repaired =
        label != nullptr && (watch.x == *label || watch.y == *label);
    const bool upgradable = all_clear && watch.last == Confidence::PendingGap;
    if (repaired || upgradable) watch.armed = true;
  };
  for (RelationWatch& w : relation_watches_) rearm(w);
  for (DeadlineWatch& w : deadline_watches_) rearm(w);
}

void OnlineMonitor::fire_ready_watches() {
  // Callbacks may re-enter the monitor (register further watches, complete
  // more actions): iterate by index so vector growth is safe, and suppress
  // recursive firing — the outer pass will pick up anything new. Callbacks
  // must not call forget() (it compacts the watch vectors).
  if (firing_) return;
  firing_ = true;
  bool fired_any = true;
  while (fired_any) {  // repeat: a callback may make earlier watches ready
    fired_any = false;
    for (std::size_t i = 0; i < relation_watches_.size(); ++i) {
      if (!relation_watches_[i].armed) continue;
      const IntervalSummary* sx = summary(relation_watches_[i].x);
      const IntervalSummary* sy = summary(relation_watches_[i].y);
      if (sx == nullptr || sy == nullptr) continue;
      const Confidence conf = current_confidence();
      relation_watches_[i].armed = false;
      relation_watches_[i].last = conf;
      ++relation_watches_[i].fires;
      (conf == Confidence::Definite ? definite_fires_ : pending_fires_) += 1;
      fired_any = true;
      const int fires = relation_watches_[i].fires;
      const std::uint64_t eval0 = latency_tracking_ ? obs::now_us() : 0;
      const bool holds =
          evaluate_online(relation_watches_[i].relation, *sx, *sy, counter_);
      const std::uint64_t eval1 = latency_tracking_ ? obs::now_us() : 0;
      // Copy what the callback needs: re-entrant registrations may grow the
      // vector and invalidate references.
      const RelationCallback callback = relation_watches_[i].callback;
      const std::string x = relation_watches_[i].x;
      const std::string y = relation_watches_[i].y;
      callback(x, y, holds, conf);
      if (latency_tracking_) {
        emit_waterfall(x, y, holds, conf, fires, eval0, eval1, obs::now_us());
      }
    }
    for (std::size_t i = 0; i < deadline_watches_.size(); ++i) {
      if (!deadline_watches_[i].armed) continue;
      const IntervalSummary* sx = summary(deadline_watches_[i].x);
      const IntervalSummary* sy = summary(deadline_watches_[i].y);
      if (sx == nullptr || sy == nullptr) continue;
      const Confidence conf = current_confidence();
      deadline_watches_[i].armed = false;
      deadline_watches_[i].last = conf;
      ++deadline_watches_[i].fires;
      (conf == Confidence::Definite ? definite_fires_ : pending_fires_) += 1;
      fired_any = true;
      const int fires = deadline_watches_[i].fires;
      const std::uint64_t eval0 = latency_tracking_ ? obs::now_us() : 0;
      const TimingConstraint constraint = deadline_watches_[i].constraint;
      const DeadlineCallback callback = deadline_watches_[i].callback;
      const std::string x = deadline_watches_[i].x;
      const std::string y = deadline_watches_[i].y;
      if (!sx->fully_timed || !sy->fully_timed) {
        const std::uint64_t eval1 = latency_tracking_ ? obs::now_us() : 0;
        callback(x, y, 0, false, conf);
        if (latency_tracking_) {
          emit_waterfall(x, y, false, conf, fires, eval0, eval1,
                         obs::now_us());
        }
        continue;
      }
      const Duration measured = anchor_time(*sy, constraint.anchor_y) -
                                anchor_time(*sx, constraint.anchor_x);
      const bool ok =
          measured >= constraint.min_gap && measured <= constraint.max_gap;
      const std::uint64_t eval1 = latency_tracking_ ? obs::now_us() : 0;
      callback(x, y, measured, ok, conf);
      if (latency_tracking_) {
        emit_waterfall(x, y, ok, conf, fires, eval0, eval1, obs::now_us());
      }
    }
  }
  firing_ = false;
}

}  // namespace syncon
