// Online (runtime) substrate for the paper's real-time motivation: instead
// of stamping a recorded trace after the fact, processes maintain vector
// clocks incrementally and piggyback them on messages — the classical
// Fidge/Mattern protocol — so synchronization conditions can be tested
// while the application runs.
//
// The clock convention matches the offline Timestamps class (T counts
// dummies, so a process's first event has own-component 2), which makes the
// online and offline paths directly comparable in tests.
//
// Fault tolerance (DESIGN.md §3.7): real transports drop, duplicate,
// reorder and delay messages. Delivery is therefore idempotent — each
// (receiver, source-event) pair executes at most one receive event; a
// duplicate arrival is suppressed and answered with the original receive's
// id. Each receiver also runs a GapTracker over the piggybacked clocks: a
// received clock vouching for events never directly delivered here flags a
// lost predecessor, and the resync path (resync_request → serve → deliver)
// recovers it from the sender's log, converging a faulty run back to the
// fault-free one.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "model/execution.hpp"
#include "model/types.hpp"
#include "model/vector_clock.hpp"
#include "online/gap_tracker.hpp"

namespace syncon {

/// What actually travels on the wire: the sender's event id plus its
/// timestamp. |P| clock values per message — the protocol's only overhead.
/// The same record doubles as the event *report* a remote monitor consumes.
struct WireMessage {
  EventId source;
  VectorClock clock;
};

class OnlineSystem {
 public:
  explicit OnlineSystem(std::size_t process_count);

  std::size_t process_count() const { return clocks_.size(); }

  /// Executes an internal event on process p. `when` is the local physical
  /// time of the event in µs (kNoTime if the application does not track
  /// time); per-process times must be strictly increasing when provided.
  EventId local(ProcessId p, std::int64_t when = kNoTime);

  /// Executes a send event on p; the returned message carries the clock.
  /// Deliver it any number of times (multicast) to other processes.
  WireMessage send(ProcessId p, std::int64_t when = kNoTime);

  /// Executes a receive event on p, merging the piggybacked clock.
  /// Idempotent: delivering a message whose source was already consumed by
  /// p executes nothing and returns the original receive event's id (the
  /// suppression is counted in duplicates_suppressed()).
  EventId deliver(ProcessId p, const WireMessage& message,
                  std::int64_t when = kNoTime);

  /// Executes one receive event consuming several messages at once (gather
  /// / barrier commit points). Duplicate sources — within the batch or
  /// against earlier deliveries — are suppressed first; if every message is
  /// a duplicate, no event executes and the receive that first consumed
  /// messages[0].source is returned.
  EventId deliver_all(ProcessId p, std::span<const WireMessage> messages,
                      std::int64_t when = kNoTime);

  /// Sentinel for "no physical timestamp".
  static constexpr std::int64_t kNoTime = std::int64_t{-1};

  /// Physical time of an executed event (kNoTime if it was not stamped).
  std::int64_t time_of(EventId e) const;

  /// T of the latest event executed by p (all-zero+own=1 before any event,
  /// i.e. the clock of ⊥_p).
  const VectorClock& current_clock(ProcessId p) const;

  /// T(e) of any executed event, from the online log.
  const VectorClock& clock_of(EventId e) const;

  /// Events executed so far by p / in total.
  EventIndex executed(ProcessId p) const;
  std::size_t total_executed() const { return total_; }

  // --- fault tolerance -------------------------------------------------------

  /// Re-materializes the wire form of any executed event from the log — the
  /// retransmission primitive: a lost message (or a lost event report for a
  /// remote monitor) can be served again at any time.
  WireMessage wire_of(EventId e) const;

  /// True iff p already consumed a message with this source event.
  bool already_delivered(ProcessId p, EventId source) const;

  /// Duplicate deliveries suppressed across all processes so far.
  std::uint64_t duplicates_suppressed() const {
    return duplicates_suppressed_;
  }

  /// Lost predecessors at p: events some delivered clock vouched for but
  /// whose own message never reached p. Exact for topologies where peers
  /// ship every event to p (monitor feeds, full replication); in sparse
  /// meshes transitively-learned events are reported too, by design — p
  /// genuinely never witnessed them.
  std::vector<EventId> missing_at(ProcessId p) const;
  bool has_gap(ProcessId p) const;

  /// Retransmit request covering missing_at(p).
  RetransmitRequest resync_request(ProcessId p) const;

  /// Serves a retransmit request from this (authoritative) log: one wire
  /// message per requested event that has executed here. Requested events
  /// not executed here are skipped — a crashed process's log cannot serve.
  std::vector<WireMessage> serve(const RetransmitRequest& request) const;

  /// Authoritative global clock snapshot: component q = 1 + events executed
  /// by q (same dummy-counting convention as event clocks). Broadcast it
  /// periodically so observers can detect *tail* losses — lost reports no
  /// later report's clock would ever vouch for (OnlineMonitor::checkpoint).
  VectorClock snapshot() const;

  /// Materializes the run so far as an offline Execution (for
  /// cross-validation and archival).
  Execution to_execution() const;

 private:
  EventId advance(ProcessId p, std::span<const WireMessage> messages,
                  std::int64_t when);
  void check_deliverable(ProcessId p, const WireMessage& m) const;

  std::vector<VectorClock> clocks_;  // current clock per process
  // Log: per process, per event (1-based index - 1): its clock + sources.
  struct LoggedEvent {
    VectorClock clock;
    std::vector<EventId> sources;
    std::int64_t time = kNoTime;
  };
  std::vector<std::vector<LoggedEvent>> log_;
  // Per receiver: source event -> the receive that consumed it (dedup).
  std::vector<std::unordered_map<EventId, EventId>> delivered_;
  // Per receiver: witnessed/claimed account of every peer's events.
  std::vector<GapTracker> gaps_;
  std::uint64_t duplicates_suppressed_ = 0;
  std::size_t total_ = 0;
};

/// Replays a recorded execution through an OnlineSystem; events keep their
/// (process, index) ids, so online and offline analyses of the same run can
/// be compared directly.
OnlineSystem replay(const Execution& exec);

}  // namespace syncon
