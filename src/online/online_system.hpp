// Online (runtime) substrate for the paper's real-time motivation: instead
// of stamping a recorded trace after the fact, processes maintain vector
// clocks incrementally and piggyback them on messages — the classical
// Fidge/Mattern protocol — so synchronization conditions can be tested
// while the application runs.
//
// The clock convention matches the offline Timestamps class (T counts
// dummies, so a process's first event has own-component 2), which makes the
// online and offline paths directly comparable in tests.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "model/execution.hpp"
#include "model/types.hpp"
#include "model/vector_clock.hpp"

namespace syncon {

/// What actually travels on the wire: the sender's event id plus its
/// timestamp. |P| clock values per message — the protocol's only overhead.
struct WireMessage {
  EventId source;
  VectorClock clock;
};

class OnlineSystem {
 public:
  explicit OnlineSystem(std::size_t process_count);

  std::size_t process_count() const { return clocks_.size(); }

  /// Executes an internal event on process p. `when` is the local physical
  /// time of the event in µs (kNoTime if the application does not track
  /// time); per-process times must be strictly increasing when provided.
  EventId local(ProcessId p, std::int64_t when = kNoTime);

  /// Executes a send event on p; the returned message carries the clock.
  /// Deliver it any number of times (multicast) to other processes.
  WireMessage send(ProcessId p, std::int64_t when = kNoTime);

  /// Executes a receive event on p, merging the piggybacked clock.
  EventId deliver(ProcessId p, const WireMessage& message,
                  std::int64_t when = kNoTime);

  /// Executes one receive event consuming several messages at once (gather
  /// / barrier commit points).
  EventId deliver_all(ProcessId p, std::span<const WireMessage> messages,
                      std::int64_t when = kNoTime);

  /// Sentinel for "no physical timestamp".
  static constexpr std::int64_t kNoTime = std::int64_t{-1};

  /// Physical time of an executed event (kNoTime if it was not stamped).
  std::int64_t time_of(EventId e) const;

  /// T of the latest event executed by p (all-zero+own=1 before any event,
  /// i.e. the clock of ⊥_p).
  const VectorClock& current_clock(ProcessId p) const;

  /// T(e) of any executed event, from the online log.
  const VectorClock& clock_of(EventId e) const;

  /// Events executed so far by p / in total.
  EventIndex executed(ProcessId p) const;
  std::size_t total_executed() const { return total_; }

  /// Materializes the run so far as an offline Execution (for
  /// cross-validation and archival).
  Execution to_execution() const;

 private:
  EventId advance(ProcessId p, std::span<const WireMessage> messages,
                  std::int64_t when);

  std::vector<VectorClock> clocks_;  // current clock per process
  // Log: per process, per event (1-based index - 1): its clock + sources.
  struct LoggedEvent {
    VectorClock clock;
    std::vector<EventId> sources;
    std::int64_t time = kNoTime;
  };
  std::vector<std::vector<LoggedEvent>> log_;
  std::size_t total_ = 0;
};

/// Replays a recorded execution through an OnlineSystem; events keep their
/// (process, index) ids, so online and offline analyses of the same run can
/// be compared directly.
OnlineSystem replay(const Execution& exec);

}  // namespace syncon
