// Online (runtime) substrate for the paper's real-time motivation: instead
// of stamping a recorded trace after the fact, processes maintain vector
// clocks incrementally and piggyback them on messages — the classical
// Fidge/Mattern protocol — so synchronization conditions can be tested
// while the application runs.
//
// The clock convention matches the offline Timestamps class (T counts
// dummies, so a process's first event has own-component 2), which makes the
// online and offline paths directly comparable in tests.
//
// Fault tolerance (DESIGN.md §3.7): real transports drop, duplicate,
// reorder and delay messages. Delivery is therefore idempotent — each
// (receiver, source-event) pair executes at most one receive event; a
// duplicate arrival is suppressed and answered with the original receive's
// id. Each receiver also runs a GapTracker over the piggybacked clocks: a
// received clock vouching for events never directly delivered here flags a
// lost predecessor, and the resync path (resync_request → serve → deliver)
// recovers it from the sender's log, converging a faulty run back to the
// fault-free one.
//
// Retention (DESIGN.md §3.10): a long-running system cannot keep every
// LoggedEvent forever. compact() reclaims the log prefix inside a
// low-watermark cut (cuts/watermark.hpp) supplied by the deployment — the
// componentwise min of every consumer's witnessed contiguous prefix
// (retention_watermark() for in-system receivers, OnlineMonitor::
// watermark_pin() for report consumers) — and records a RetentionCheckpoint
// so retransmit requests that cross the watermark are answered with the
// cut's surface report instead of aborting.
#pragma once

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <limits>
#include <span>
#include <unordered_map>
#include <vector>

#include "cuts/watermark.hpp"
#include "model/execution.hpp"
#include "model/types.hpp"
#include "model/vector_clock.hpp"
#include "online/gap_tracker.hpp"

namespace syncon {

/// What actually travels on the wire: the sender's event id plus its
/// timestamp. |P| clock values per message — the protocol's only overhead.
/// The same record doubles as the event *report* a remote monitor consumes.
struct WireMessage {
  EventId source;
  VectorClock clock;
};

class OnlineSystem {
 public:
  explicit OnlineSystem(std::size_t process_count);

  std::size_t process_count() const { return clocks_.size(); }

  /// Executes an internal event on process p. `when` is the local physical
  /// time of the event in µs (kNoTime if the application does not track
  /// time); per-process times must be strictly increasing when provided.
  EventId local(ProcessId p, std::int64_t when = kNoTime);

  /// Executes a send event on p; the returned message carries the clock.
  /// Deliver it any number of times (multicast) to other processes.
  WireMessage send(ProcessId p, std::int64_t when = kNoTime);

  /// Executes a receive event on p, merging the piggybacked clock.
  /// Idempotent: delivering a message whose source was already consumed by
  /// p executes nothing and returns the original receive event's id (the
  /// suppression is counted in duplicates_suppressed()). When the original
  /// receive's dedup record was reclaimed by compaction, the suppression
  /// still happens (the receiver's GapTracker remembers every witnessed
  /// source) and the dummy id {p, 0} is returned — "consumed before the
  /// current checkpoint".
  EventId deliver(ProcessId p, const WireMessage& message,
                  std::int64_t when = kNoTime);

  /// Executes one receive event consuming several messages at once (gather
  /// / barrier commit points). Duplicate sources — within the batch or
  /// against earlier deliveries — are suppressed first; if every message is
  /// a duplicate, no event executes and the receive that first consumed
  /// messages[0].source is returned.
  EventId deliver_all(ProcessId p, std::span<const WireMessage> messages,
                      std::int64_t when = kNoTime);

  /// Sentinel for "no physical timestamp".
  static constexpr std::int64_t kNoTime = std::int64_t{-1};

  /// Physical time of an executed event (kNoTime if it was not stamped).
  std::int64_t time_of(EventId e) const;

  /// T of the latest event executed by p (all-zero+own=1 before any event,
  /// i.e. the clock of ⊥_p).
  const VectorClock& current_clock(ProcessId p) const;

  /// T(e) of any executed event, from the online log.
  const VectorClock& clock_of(EventId e) const;

  /// Events executed so far by p / in total.
  EventIndex executed(ProcessId p) const;
  std::size_t total_executed() const { return total_; }

  // --- fault tolerance -------------------------------------------------------

  /// Re-materializes the wire form of any executed event — the
  /// retransmission primitive: a lost message (or a lost event report for a
  /// remote monitor) can be served again at any time. For an event whose
  /// log entry was reclaimed by compact(), the answer comes from the
  /// retention checkpoint instead: the returned report is the watermark
  /// cut's *surface* event on e's process, whose clock vouches for e and
  /// everything else inside the cut (the requester adopts the checkpoint —
  /// OnlineMonitor::adopt_checkpoint — rather than replaying e itself).
  WireMessage wire_of(EventId e) const;

  /// True iff p already consumed a message with this source event.
  bool already_delivered(ProcessId p, EventId source) const;

  /// Fault-hardened deliver: a malformed or corrupt message (unknown source
  /// process, foreign clock size, impossible receiver component, physical
  /// time regression) is rejected — counted in quarantined() — instead of
  /// tripping the delivery contract checks, so wire garbage cannot kill the
  /// process (DESIGN.md §3.12). On success `receipt` (when non-null) gets
  /// what deliver() would have returned.
  bool try_deliver(ProcessId p, const WireMessage& message,
                   std::int64_t when = kNoTime, EventId* receipt = nullptr);

  /// Messages rejected by try_deliver so far.
  std::uint64_t quarantined() const { return quarantined_; }

  /// Writes the flight recorder's current contents (text form) — the last
  /// few thousand structured records across every subsystem, oldest first.
  /// A convenience over obs::write_flight_text for operators holding a
  /// system handle; the ring itself is process-global.
  void dump_flight(std::ostream& os) const;

  /// Duplicate deliveries suppressed across all processes so far.
  std::uint64_t duplicates_suppressed() const {
    return duplicates_suppressed_;
  }

  /// Lost predecessors at p: events some delivered clock vouched for but
  /// whose own message never reached p. Exact for topologies where peers
  /// ship every event to p (monitor feeds, full replication); in sparse
  /// meshes transitively-learned events are reported too, by design — p
  /// genuinely never witnessed them.
  /// `limit` bounds the enumeration: after a long outage the hole set can
  /// run to millions of events, and recovery should request them in chunks
  /// (repeat resync_request/serve/deliver until has_gap clears) instead of
  /// materializing one EventId per hole up front.
  std::vector<EventId> missing_at(
      ProcessId p,
      std::size_t limit = std::numeric_limits<std::size_t>::max()) const;
  bool has_gap(ProcessId p) const;

  /// Retransmit request covering missing_at(p, limit).
  RetransmitRequest resync_request(
      ProcessId p,
      std::size_t limit = std::numeric_limits<std::size_t>::max()) const;

  /// Serves a retransmit request from this (authoritative) log: one wire
  /// message per requested event that has executed here. Requested events
  /// not executed here are skipped — a crashed process's log cannot serve.
  /// Requests that cross the retention watermark are answered from the
  /// checkpoint: at most one surface report per process covers every
  /// reclaimed event requested on it (see wire_of).
  std::vector<WireMessage> serve(const RetransmitRequest& request) const;

  /// Authoritative global clock snapshot: component q = 1 + events executed
  /// by q (same dummy-counting convention as event clocks). Broadcast it
  /// periodically so observers can detect *tail* losses — lost reports no
  /// later report's clock would ever vouch for (OnlineMonitor::checkpoint).
  VectorClock snapshot() const;

  /// Materializes the run so far as an offline Execution (for
  /// cross-validation and archival). Requires the full log — a compacted
  /// system cannot reconstruct reclaimed events.
  Execution to_execution() const;

  // --- retention / compaction ------------------------------------------------

  /// Reclaims every log entry inside the watermark cut (counts form, same
  /// dummy-counting convention as snapshot(): component p of value c covers
  /// events (p, 1..c-1)). The effective cut is clamped per component to
  /// [current checkpoint, executed + 1], so compaction is monotone and never
  /// outruns the log. Records the RetentionCheckpoint (cut + surface clocks
  /// + surface times) before dropping entries, erases dedup records inside
  /// the cut, and returns the number of log entries reclaimed.
  ///
  /// The caller owns watermark safety: compact only up to what every
  /// consumer has durably witnessed — compose retention_watermark() for
  /// in-system receivers with each OnlineMonitor::watermark_pin().
  std::size_t compact(const VectorClock& watermark);

  /// The in-system receivers' low-watermark cut: component p is
  /// 1 + min over receivers q != p of gaps_[q].contiguous_prefix(p).
  /// Exact only under full replication (every event's wire shipped to every
  /// peer, e.g. monitor-feed topologies); in sparse meshes receivers never
  /// witness events not sent to them, so this stalls — compose the
  /// watermark from consumer-side pins instead.
  VectorClock retention_watermark() const;

  /// The checkpoint recorded by the latest compact() (bottom before any).
  const RetentionCheckpoint& checkpoint() const { return checkpoint_; }

  /// Log entries currently held in memory / reclaimed so far.
  std::size_t live_log_events() const;
  std::uint64_t reclaimed_events() const { return checkpoint_.reclaimed_total; }

  /// Events (p, 1..reclaimed_before(p)) have been reclaimed; an EventId is
  /// live iff its index is beyond this base.
  EventIndex reclaimed_before(ProcessId p) const;
  bool is_live(EventId e) const;

  // --- durability / crash recovery (DESIGN.md §3.12) -------------------------

  /// Installs a retention checkpoint into a *fresh* system (no events
  /// executed) — the first step of crash recovery. The checkpoint's cut
  /// becomes the reclaimed log prefix, its surface clocks/times become each
  /// process's current state, and every receiver's gap tracker forgives the
  /// cut and claims the surfaces. Requires the deployment's compaction
  /// precondition (compact only below every consumer's durable watermark):
  /// then everything a pre-crash receiver witnessed or claimed below the cut
  /// is covered, and replaying the WAL tail converges to the pre-crash
  /// state. restore_checkpoint(bottom(n)) is the fresh system itself.
  void restore_checkpoint(const RetentionCheckpoint& checkpoint);

  /// Re-executes one journaled event during WAL replay. The id, clock,
  /// sources and time are authoritative — they were journaled after the
  /// original execution — so this bypasses deliver()'s merge and writes them
  /// back verbatim. Idempotent against the restored checkpoint and earlier
  /// replays: an event at or below the current frontier only refreshes its
  /// witness/dedup state (a receive journaled below the snapshot cut may
  /// still be the sole witness of an above-cut source). Returns true iff the
  /// event extended the log.
  bool restore_event(EventId e, const VectorClock& clock,
                     std::span<const EventId> sources,
                     std::int64_t time = kNoTime);

  /// Source events of a live executed event (empty for local/send events) —
  /// what the durability layer journals alongside the wire form.
  std::span<const EventId> sources_of(EventId e) const;

 private:
  EventId advance(ProcessId p, std::span<const WireMessage> messages,
                  std::int64_t when);
  void check_deliverable(ProcessId p, const WireMessage& m) const;

  // Log entry: per event (1-based index - base - 1): its clock + sources.
  struct LoggedEvent {
    VectorClock clock;
    std::vector<EventId> sources;
    std::int64_t time = kNoTime;
  };

  const LoggedEvent& live_entry(EventId e) const;

  std::vector<VectorClock> clocks_;  // current clock per process
  // Live log: log_[p][k] is event (p, base_[p] + k + 1). compact() pops
  // reclaimed entries from the front and advances base_.
  std::vector<std::deque<LoggedEvent>> log_;
  std::vector<EventIndex> base_;  // events (p, 1..base_[p]) reclaimed
  // Last *timed* physical stamp per process — the monotonicity floor. An
  // untimed event must not reset it (the time-floor bugfix).
  std::vector<std::int64_t> last_timed_;
  // Per receiver: source event -> the receive that consumed it (dedup).
  // compact() erases entries whose source fell inside the cut; deliver()
  // then falls back to gaps_[p].witnessed(source).
  std::vector<std::unordered_map<EventId, EventId>> delivered_;
  // Per receiver: witnessed/claimed account of every peer's events.
  std::vector<GapTracker> gaps_;
  RetentionCheckpoint checkpoint_;
  std::uint64_t duplicates_suppressed_ = 0;
  std::uint64_t quarantined_ = 0;
  std::size_t total_ = 0;
};

/// Replays a recorded execution through an OnlineSystem; events keep their
/// (process, index) ids, so online and offline analyses of the same run can
/// be compared directly.
OnlineSystem replay(const Execution& exec);

}  // namespace syncon
