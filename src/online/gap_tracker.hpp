// Receiver-side loss accounting for the fault-tolerant online stack
// (DESIGN.md §3.7): a receiver keeps, per peer, which of the peer's events
// it has *witnessed* directly (their message or event report arrived) and
// which it merely knows happened because some piggybacked vector clock
// vouched for them (*claimed*). An event that is claimed but never
// witnessed is a lost predecessor — the causal-gap signal that turns
// "silently evaluate on corrupted state" into "report a pending gap and
// request retransmission".
//
// The structure is the classical contiguous-prefix + out-of-order-set form
// (cf. selective acknowledgment): witnessing is idempotent, reordered
// arrivals are absorbed, and missing() enumerates the exact holes.
#pragma once

#include <limits>
#include <set>
#include <vector>

#include "model/types.hpp"
#include "model/vector_clock.hpp"

namespace syncon {

/// The events a receiver wants retransmitted (served from the sender's or
/// the authoritative system's log via OnlineSystem::serve).
struct RetransmitRequest {
  std::vector<EventId> events;  // sorted by (process, index)
  bool empty() const { return events.empty(); }
};

class GapTracker {
 public:
  explicit GapTracker(std::size_t process_count);

  std::size_t process_count() const { return peers_.size(); }

  /// Marks e as directly witnessed (its message/report arrived). Idempotent:
  /// returns false if e had already been witnessed.
  bool witness(EventId e);
  bool witnessed(EventId e) const;

  /// A piggybacked clock vouches for its causal past: component q of value
  /// c means events (q, 1..c-1) happened before the carrier (the clock
  /// convention counts the dummy, so c = 1 + greatest real index).
  void claim(const VectorClock& clock);
  /// Vouches for events (q, 1 .. up_to).
  void claim(ProcessId q, EventIndex up_to);

  /// Claimed-but-never-witnessed events, sorted: the known-lost
  /// predecessors. Empty iff the local history explains every clock seen.
  /// `limit` bounds the enumeration — after a long outage the full hole set
  /// can run to millions of events, and a resync wants to request (and
  /// allocate) them in chunks, not all at once.
  std::vector<EventId> missing(
      std::size_t limit = std::numeric_limits<std::size_t>::max()) const;
  /// Exact |missing()| without materializing it (cheap: O(|P| + reordered
  /// arrivals), not O(holes)).
  std::size_t missing_count() const;
  bool has_gap() const;
  /// True iff some event of q is claimed but not witnessed.
  bool gap_on(ProcessId q) const;

  /// Length of the witnessed contiguous prefix of q: every event
  /// (q, 1 .. contiguous_prefix(q)) has been witnessed. This is q's
  /// component of the consumer's retention bound (cuts/watermark.hpp):
  /// nothing at or below the prefix can ever appear in missing().
  EventIndex contiguous_prefix(ProcessId q) const;

  /// Adopts a retention checkpoint: treats events (q, 1 .. up_to) as
  /// witnessed even if their reports never arrived — their log entries were
  /// reclaimed, so the holes below the checkpoint cut can never be served
  /// and must stop counting as gaps. Witnessed(e) answers true for forgiven
  /// events; witnessed_count() only counts reports that really arrived.
  void forgive(ProcessId q, EventIndex up_to);

  /// Distinct events witnessed so far.
  std::size_t witnessed_count() const { return witnessed_total_; }

  /// Retransmit request covering missing(limit) — chunk the recovery of a
  /// large gap by calling this repeatedly as replies are folded in.
  RetransmitRequest resync_request(
      std::size_t limit = std::numeric_limits<std::size_t>::max()) const {
    return {missing(limit)};
  }

 private:
  struct Peer {
    EventIndex contiguous = 0;   // all of 1..contiguous witnessed
    std::set<EventIndex> ahead;  // witnessed beyond the contiguous prefix
    EventIndex claimed = 0;      // highest index any clock vouched for
  };
  std::vector<Peer> peers_;
  std::size_t witnessed_total_ = 0;
};

}  // namespace syncon
