// Online evaluation of the Table 1 relations between completed interval
// summaries, using ONLY past timestamps (what a running system can know).
//
// Cost model (verified in tests/bench; weak ⪯ semantics as usual):
//   R1, R1'  —  |N_X| comparisons      (against ∩⇓Y)
//   R2       —  |N_X| comparisons      (against ∪⇓Y)
//   R3       —  |N_X| comparisons      (against ∩⇓Y)
//   R4, R4'  —  |N_X| comparisons      (against ∪⇓Y)
//   R2'      —  |N_Y|·|N_X| comparisons (per-candidate domination test)
//   R3'      —  |N_Y|·|N_X| comparisons
//
// The offline Theorem 20 budgets for R2'/R3' rely on REVERSE timestamps
// (the ∩⇑X / ∪⇑X future cuts), which only exist once the whole trace is
// known; an online monitor fundamentally pays the quadratic corner for
// those two relations. This trade-off is this reproduction's addition to
// the paper's story (DESIGN.md §8).
#pragma once

#include "cuts/ll_relation.hpp"
#include "online/interval_tracker.hpp"
#include "relations/relation.hpp"

namespace syncon {

/// Evaluates R(X, Y) from online summaries (weak semantics).
bool evaluate_online(Relation r, const IntervalSummary& x,
                     const IntervalSummary& y, ComparisonCounter& counter);

/// Full 32-relation form: applies the chosen Defn-2 proxies of the
/// summaries before evaluating (r(X, Y) ≡ R(X̂, Ŷ)).
bool evaluate_online(const RelationId& id, const IntervalSummary& x,
                     const IntervalSummary& y, ComparisonCounter& counter);

/// Worst-case comparison budget of evaluate_online.
std::uint64_t online_cost_bound(Relation r, std::size_t n_x, std::size_t n_y);

}  // namespace syncon
