#include "relations/naive.hpp"

#include <span>

#include "support/contracts.hpp"

namespace syncon {

namespace {

// Evaluates the quantifier structure of `r` over the given x- and y-ranges
// with an arbitrary causality predicate.
template <typename Prec>
bool quantify(Relation r, std::span<const EventId> xs,
              std::span<const EventId> ys, Prec&& prec) {
  auto forall_x = [&](auto&& inner) {
    for (const EventId& x : xs) {
      if (!inner(x)) return false;
    }
    return true;
  };
  auto exists_x = [&](auto&& inner) {
    for (const EventId& x : xs) {
      if (inner(x)) return true;
    }
    return false;
  };
  auto forall_y = [&](auto&& inner) {
    for (const EventId& y : ys) {
      if (!inner(y)) return false;
    }
    return true;
  };
  auto exists_y = [&](auto&& inner) {
    for (const EventId& y : ys) {
      if (inner(y)) return true;
    }
    return false;
  };

  switch (r) {
    case Relation::R1:
    case Relation::R1p:
      return forall_x([&](EventId x) {
        return forall_y([&](EventId y) { return prec(x, y); });
      });
    case Relation::R2:
      return forall_x([&](EventId x) {
        return exists_y([&](EventId y) { return prec(x, y); });
      });
    case Relation::R2p:
      return exists_y([&](EventId y) {
        return forall_x([&](EventId x) { return prec(x, y); });
      });
    case Relation::R3:
      return exists_x([&](EventId x) {
        return forall_y([&](EventId y) { return prec(x, y); });
      });
    case Relation::R3p:
      return forall_y([&](EventId y) {
        return exists_x([&](EventId x) { return prec(x, y); });
      });
    case Relation::R4:
    case Relation::R4p:
      return exists_x([&](EventId x) {
        return exists_y([&](EventId y) { return prec(x, y); });
      });
  }
  SYNCON_ASSERT(false, "unreachable relation value");
  return false;
}

// The per-node extreme events to quantify over when restricting X × Y to
// proxies of proxies (end of §2.3 / Theorem 20 reasoning): a universally
// quantified x is hardest at the per-node greatest event, an existential x
// easiest at the per-node least, and dually for y.
std::vector<EventId> extremes(const NonatomicEvent& ev, bool greatest) {
  std::vector<EventId> out;
  out.reserve(ev.node_count());
  for (const ProcessId p : ev.node_set()) {
    out.push_back(greatest ? ev.greatest_on(p) : ev.least_on(p));
  }
  return out;
}

bool x_wants_greatest(Relation r) {
  // x is universally quantified in R1/R1'/R2; in R2' the x-quantifier is
  // also universal. Existential x (R3, R3', R4, R4') wants the least.
  switch (r) {
    case Relation::R1:
    case Relation::R1p:
    case Relation::R2:
    case Relation::R2p:
      return true;
    default:
      return false;
  }
}

bool y_wants_greatest(Relation r) {
  // y is existentially quantified in R2/R2'/R4/R4' (wants greatest);
  // universal y (R1, R1', R3, R3') wants the least.
  switch (r) {
    case Relation::R2:
    case Relation::R2p:
    case Relation::R4:
    case Relation::R4p:
      return true;
    default:
      return false;
  }
}

}  // namespace

bool evaluate_oracle(Relation r, const NonatomicEvent& x,
                     const NonatomicEvent& y, const ReachabilityOracle& oracle,
                     Semantics sem) {
  SYNCON_REQUIRE(&oracle.execution() == &x.execution() &&
                     &x.execution() == &y.execution(),
                 "events/oracle of different executions");
  auto prec = [&](EventId a, EventId b) {
    return sem == Semantics::Strict ? oracle.lt(a, b) : oracle.leq(a, b);
  };
  return quantify(r, x.events(), y.events(), prec);
}

bool evaluate_naive(Relation r, const NonatomicEvent& x,
                    const NonatomicEvent& y, const Timestamps& ts,
                    Semantics sem, ComparisonCounter* counter) {
  SYNCON_REQUIRE(&ts.execution() == &x.execution() &&
                     &x.execution() == &y.execution(),
                 "events/timestamps of different executions");
  auto prec = [&](EventId a, EventId b) {
    if (counter != nullptr) ++counter->causality_checks;
    return sem == Semantics::Strict ? ts.lt(a, b) : ts.leq(a, b);
  };
  return quantify(r, x.events(), y.events(), prec);
}

bool evaluate_proxy_naive(Relation r, const NonatomicEvent& x,
                          const NonatomicEvent& y, const Timestamps& ts,
                          Semantics sem, ComparisonCounter* counter) {
  SYNCON_REQUIRE(&ts.execution() == &x.execution() &&
                     &x.execution() == &y.execution(),
                 "events/timestamps of different executions");
  const std::vector<EventId> xs = extremes(x, x_wants_greatest(r));
  const std::vector<EventId> ys = extremes(y, y_wants_greatest(r));
  auto prec = [&](EventId a, EventId b) {
    if (counter != nullptr) ++counter->causality_checks;
    return sem == Semantics::Strict ? ts.lt(a, b) : ts.leq(a, b);
  };
  return quantify(r, xs, ys, prec);
}

}  // namespace syncon
