// Application-level discrimination on top of the relation set: the full
// profile of the eight Table 1 relations in both directions between two
// nonatomic events, a coarse interaction classification derived from it,
// and per-direction coupling grades (the "fine level of discrimination in
// the specification of causality" the paper's introduction motivates).
#pragma once

#include <array>
#include <optional>

#include "cuts/ll_relation.hpp"
#include "nonatomic/cut_timestamps.hpp"
#include "relations/relation.hpp"

namespace syncon {

/// All eight relations, evaluated forward (X, Y) and backward (Y, X).
struct RelationProfile {
  std::array<bool, 8> forward{};
  std::array<bool, 8> backward{};

  bool holds(Relation r) const {
    return forward[static_cast<std::size_t>(r)];
  }
  bool holds_reverse(Relation r) const {
    return backward[static_cast<std::size_t>(r)];
  }
};

/// Computes the profile with the linear-time evaluators (weak semantics);
/// at most 16 · max(|N_X|, |N_Y|) integer comparisons.
RelationProfile relation_profile(const EventCuts& x, const EventCuts& y,
                                 ComparisonCounter& counter);

/// Coarse classification of how X and Y interact causally.
enum class InteractionType {
  Concurrent,      // no causality in either direction
  Precedes,        // R1(X, Y): X completes entirely before any of Y depends
  Follows,         // R1(Y, X)
  WeaklyPrecedes,  // forward causality only, but not total (¬R1)
  WeaklyFollows,   // backward causality only
  Entangled,       // causality in both directions (the events interleave)
};

const char* to_string(InteractionType t);

InteractionType classify(const RelationProfile& profile);

/// Per-direction coupling grade: the strongest relation that holds, by the
/// quantifier lattice (R1 ≻ {R2', R3} ≻ {R2, R3'} ≻ R4 ≻ none).
enum class CouplingGrade {
  None,       // not even R4
  Partial,    // R4 only
  OneSided,   // R2 or R3' (every x feeds Y / every y fed by X) but not both
  Funneled,   // R2' or R3 (a single event dominates/seeds the other side)
  Total,      // R1
};

const char* to_string(CouplingGrade g);

CouplingGrade forward_grade(const RelationProfile& profile);
CouplingGrade backward_grade(const RelationProfile& profile);

}  // namespace syncon
