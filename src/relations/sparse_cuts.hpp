// Space-frugal alternative to EventCuts, matching the paper's §2.3 remark
// that only the |N_X| own-node components of a poset event's cut timestamps
// "need to be computed": SparseEventCuts stores nothing but the per-node
// extreme events (already inside NonatomicEvent) and derives ANY component
// of T(C1..C4) on demand from the trace's Timestamps, at |N_X| clock
// lookups per component.
//
// Trade-off (quantified in bench_table2_cut_timestamps):
//   EventCuts        O(|P|) clock values per event, O(1) per component read;
//   SparseEventCuts  O(1) extra storage,            O(|N_X|) per component.
// A pair query therefore costs Theorem-20-comparisons × |N| clock lookups —
// asymptotically the |N_X|·|N_Y| of proxy-naive, which is exactly why Key
// Idea 1 (precompute + reuse) is the right default.
#pragma once

#include "cuts/ll_relation.hpp"
#include "model/timestamps.hpp"
#include "nonatomic/cut_timestamps.hpp"
#include "nonatomic/interval.hpp"
#include "relations/relation.hpp"

namespace syncon {

class SparseEventCuts {
 public:
  /// O(1): keeps references only.
  SparseEventCuts(const Timestamps& ts, const NonatomicEvent& x);

  const NonatomicEvent& event() const { return *event_; }
  const Timestamps& timestamps() const { return *ts_; }

  /// One component of T(Ck(X)), computed on demand (|N_X| clock lookups;
  /// each lookup is counted as one integer comparison in `counter` because
  /// the min/max fold compares once per extreme event).
  ClockValue component(PosetCut which, ProcessId i,
                       ComparisonCounter* counter = nullptr) const;

  /// Materializes all |P| components (for cross-validation).
  VectorClock counts(PosetCut which) const;

 private:
  const Timestamps* ts_;
  const NonatomicEvent* event_;
};

/// evaluate_fast re-expressed over sparse cuts: identical verdicts, but the
/// comparison counter now reflects the on-demand component derivations.
bool evaluate_fast_sparse(Relation r, const SparseEventCuts& x,
                          const SparseEventCuts& y,
                          ComparisonCounter& counter);

}  // namespace syncon
