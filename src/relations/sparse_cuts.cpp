#include "relations/sparse_cuts.hpp"

#include "support/contracts.hpp"

namespace syncon {

SparseEventCuts::SparseEventCuts(const Timestamps& ts,
                                 const NonatomicEvent& x)
    : ts_(&ts), event_(&x) {
  SYNCON_REQUIRE(&ts.execution() == &x.execution(),
                 "timestamps belong to a different execution");
}

ClockValue SparseEventCuts::component(PosetCut which, ProcessId i,
                                      ComparisonCounter* counter) const {
  const bool past = which == PosetCut::IntersectPast ||
                    which == PosetCut::UnionPast;
  const bool is_min = which == PosetCut::IntersectPast ||
                      which == PosetCut::IntersectFuture;
  bool first = true;
  ClockValue acc = 0;
  for (const ProcessId p : event_->node_set()) {
    const EventId extreme =
        is_min ? event_->least_on(p) : event_->greatest_on(p);
    ClockValue v;
    if (past) {
      v = ts_->forward_ref(extreme)[i];
    } else {
      // Component of the e↑ cut: F(e)[i] + 1.
      v = ts_->future_start_ref(extreme)[i] + 1;
    }
    if (counter != nullptr) ++counter->integer_comparisons;
    if (first) {
      acc = v;
      first = false;
    } else {
      acc = is_min ? std::min(acc, v) : std::max(acc, v);
    }
  }
  return acc;
}

VectorClock SparseEventCuts::counts(PosetCut which) const {
  VectorClock out(ts_->execution().process_count());
  for (std::size_t i = 0; i < out.size(); ++i) {
    out.set(i, component(which, static_cast<ProcessId>(i)));
  }
  return out;
}

namespace {

// ¬≪ probe over the given nodes, with both cut components derived on
// demand.
bool violated_sparse(const SparseEventCuts& y_cuts, PosetCut down,
                     const SparseEventCuts& x_cuts, PosetCut up,
                     const std::vector<ProcessId>& nodes,
                     ComparisonCounter& counter) {
  for (const ProcessId i : nodes) {
    const ClockValue d = y_cuts.component(down, i, &counter);
    const ClockValue u = x_cuts.component(up, i, &counter);
    ++counter.integer_comparisons;
    if (d >= u) return true;
  }
  return false;
}

}  // namespace

bool evaluate_fast_sparse(Relation r, const SparseEventCuts& x,
                          const SparseEventCuts& y,
                          ComparisonCounter& counter) {
  SYNCON_REQUIRE(&x.timestamps() == &y.timestamps(),
                 "cuts of different executions");
  const NonatomicEvent& ex = x.event();
  const NonatomicEvent& ey = y.event();
  const bool x_side_smaller = ex.node_count() <= ey.node_count();

  auto all_x_pass = [&](PosetCut down) {
    for (const ProcessId i : ex.node_set()) {
      const ClockValue d = y.component(down, i, &counter);
      ++counter.integer_comparisons;
      if (d < ex.greatest_on(i).index + 1) return false;
    }
    return true;
  };
  auto all_y_pass = [&](PosetCut up) {
    for (const ProcessId j : ey.node_set()) {
      const ClockValue u = x.component(up, j, &counter);
      ++counter.integer_comparisons;
      if (ey.least_on(j).index + 1 < u) return false;
    }
    return true;
  };

  switch (r) {
    case Relation::R1:
    case Relation::R1p:
      return x_side_smaller ? all_x_pass(PosetCut::IntersectPast)
                            : all_y_pass(PosetCut::UnionFuture);
    case Relation::R2:
      return all_x_pass(PosetCut::UnionPast);
    case Relation::R2p:
      return violated_sparse(y, PosetCut::UnionPast, x, PosetCut::UnionFuture,
                             ey.node_set(), counter);
    case Relation::R3:
      return violated_sparse(y, PosetCut::IntersectPast, x,
                             PosetCut::IntersectFuture, ex.node_set(),
                             counter);
    case Relation::R3p:
      return all_y_pass(PosetCut::IntersectFuture);
    case Relation::R4:
    case Relation::R4p:
      return violated_sparse(y, PosetCut::UnionPast, x,
                             PosetCut::IntersectFuture,
                             x_side_smaller ? ex.node_set() : ey.node_set(),
                             counter);
  }
  SYNCON_ASSERT(false, "unreachable relation value");
  return false;
}

}  // namespace syncon
