// Composition calculus for the causality relations: what is guaranteed
// between X and Z when R(X, Y) and S(Y, Z) hold? This is the transitivity
// fragment of the axiom system the paper cites as [13], derived from first
// principles for the weak (⪯) semantics; soundness is property-tested on
// randomized executions, and the empty entries are witnessed by concrete
// counterexamples in tests/composition_test.cpp.
//
// Table (rows: R(X,Y), columns: S(Y,Z); entries: strongest sound R(X,Z)):
//
//          ∘R1    ∘R2    ∘R2'   ∘R3    ∘R3'   ∘R4
//    R1  |  R1     R2'    R2'    R1     R1     R2'
//    R2  |  R1     R2     R2'    —      —      —
//    R2' |  R1     R2'    R2'    —      —      —
//    R3  |  R3     R4     R4     R3     R3     R4
//    R3' |  R3     R4     R4     R3     R3'    R4
//    R4  |  R3     R4     R4     —      —      —
//
// (R1' behaves as R1 and R4' as R4 on both axes; results are normalized to
// the unprimed representative.)
#pragma once

#include <optional>

#include "relations/relation.hpp"

namespace syncon {

/// Strongest relation T with R(X,Y) ∧ S(Y,Z) ⟹ T(X,Z) for all X, Y, Z
/// (weak semantics, Y non-empty); nullopt when nothing is implied.
std::optional<Relation> compose(Relation r, Relation s);

}  // namespace syncon
