#include "relations/composition.hpp"

namespace syncon {

namespace {

Relation normalize(Relation r) {
  if (r == Relation::R1p) return Relation::R1;
  if (r == Relation::R4p) return Relation::R4;
  return r;
}

// Row-major 6x6 table over {R1, R2, R2', R3, R3', R4}; -1 = nothing.
constexpr int kNone = -1;
constexpr int idx_of(Relation r) {
  switch (r) {
    case Relation::R1: return 0;
    case Relation::R2: return 1;
    case Relation::R2p: return 2;
    case Relation::R3: return 3;
    case Relation::R3p: return 4;
    case Relation::R4: return 5;
    default: return -1;  // unreachable after normalize()
  }
}

constexpr Relation kByIndex[6] = {Relation::R1,  Relation::R2,
                                  Relation::R2p, Relation::R3,
                                  Relation::R3p, Relation::R4};

// Derivations in the header comment; chains are through the shared Y.
constexpr int kTable[6][6] = {
    //            ∘R1          ∘R2          ∘R2'         ∘R3          ∘R3'         ∘R4
    /* R1  */ {idx_of(Relation::R1), idx_of(Relation::R2p),
               idx_of(Relation::R2p), idx_of(Relation::R1),
               idx_of(Relation::R1), idx_of(Relation::R2p)},
    /* R2  */ {idx_of(Relation::R1), idx_of(Relation::R2),
               idx_of(Relation::R2p), kNone, kNone, kNone},
    /* R2' */ {idx_of(Relation::R1), idx_of(Relation::R2p),
               idx_of(Relation::R2p), kNone, kNone, kNone},
    /* R3  */ {idx_of(Relation::R3), idx_of(Relation::R4),
               idx_of(Relation::R4), idx_of(Relation::R3),
               idx_of(Relation::R3), idx_of(Relation::R4)},
    /* R3' */ {idx_of(Relation::R3), idx_of(Relation::R4),
               idx_of(Relation::R4), idx_of(Relation::R3),
               idx_of(Relation::R3p), idx_of(Relation::R4)},
    /* R4  */ {idx_of(Relation::R3), idx_of(Relation::R4),
               idx_of(Relation::R4), kNone, kNone, kNone},
};

}  // namespace

std::optional<Relation> compose(Relation r, Relation s) {
  const int row = idx_of(normalize(r));
  const int col = idx_of(normalize(s));
  const int out = kTable[row][col];
  if (out == kNone) return std::nullopt;
  return kByIndex[out];
}

}  // namespace syncon
