// The eight causality relations of Table 1 (from Kshemkalyani, JCSS 1996)
// and the 32-relation set R between nonatomic poset events obtained by
// instantiating each of the eight with one of the two proxies of X and of Y.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>

#include "nonatomic/interval.hpp"

namespace syncon {

/// Table 1. The primed relations reverse the quantifier order; R4 and R4'
/// are logically identical, as are R1 and R1' (kept distinct for fidelity).
enum class Relation : std::uint8_t {
  R1,   // ∀x ∀y : x ≺ y
  R1p,  // ∀y ∀x : x ≺ y
  R2,   // ∀x ∃y : x ≺ y
  R2p,  // ∃y ∀x : x ≺ y
  R3,   // ∃x ∀y : x ≺ y
  R3p,  // ∀y ∃x : x ≺ y
  R4,   // ∃x ∃y : x ≺ y
  R4p,  // ∃y ∃x : x ≺ y
};

inline constexpr std::array<Relation, 8> kAllRelations = {
    Relation::R1, Relation::R1p, Relation::R2, Relation::R2p,
    Relation::R3, Relation::R3p, Relation::R4, Relation::R4p};

const char* to_string(Relation r);
std::ostream& operator<<(std::ostream& os, Relation r);

/// Whether ≺ is taken strictly (the paper's definitions) or as its reflexive
/// closure ⪯ (what the linear-time conditions compute; see DESIGN.md §3.3 —
/// the two agree whenever X and Y are disjoint).
enum class Semantics : std::uint8_t { Strict, Weak };

const char* to_string(Semantics s);

/// One element of the 32-relation set R: a Table 1 relation applied to a
/// chosen proxy of X and a chosen proxy of Y.
struct RelationId {
  Relation relation;
  ProxyKind proxy_x;
  ProxyKind proxy_y;

  friend bool operator==(const RelationId&, const RelationId&) = default;
};

/// All 32 members of R, ordered by (relation, proxy_x, proxy_y).
std::array<RelationId, 32> all_relation_ids();

/// "R2'(U(X), L(Y))"-style rendering.
std::string to_string(const RelationId& id);
std::ostream& operator<<(std::ostream& os, const RelationId& id);

}  // namespace syncon
