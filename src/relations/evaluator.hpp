// RelationEvaluator — the application-facing answer to Problem 4.
//
// Register the nonatomic events the application cares about once; the
// evaluator computes each event's proxies (Defn 2) and the proxies' four cut
// timestamps (Key Idea 1's one-time cost). Every subsequent relation query
// r(X, Y), for r in the 32-relation set R, then runs in the Theorem 20
// comparison budget.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cuts/ll_relation.hpp"
#include "nonatomic/cut_timestamps.hpp"
#include "relations/fast.hpp"
#include "relations/naive.hpp"
#include "relations/relation.hpp"

namespace syncon {

class RelationEvaluator {
 public:
  /// Handle to a registered nonatomic event.
  using Handle = std::size_t;

  /// Result of an all-relations query (Problem 4 ii).
  struct AllRelationsResult {
    std::vector<RelationId> holding;
    /// How many of the 32 relations were actually evaluated (the rest were
    /// decided by hierarchy propagation).
    std::size_t evaluated = 0;
  };

  explicit RelationEvaluator(const Timestamps& ts);

  const Timestamps& timestamps() const { return *ts_; }

  /// Registers an event: computes proxies and cut timestamps (one-time,
  /// O(|N_X| · |P|)). Returns its handle.
  Handle add_event(NonatomicEvent event);

  std::size_t event_count() const { return entries_.size(); }
  const NonatomicEvent& event(Handle h) const;
  const NonatomicEvent& proxy(Handle h, ProxyKind kind) const;
  const EventCuts& proxy_cuts(Handle h, ProxyKind kind) const;

  /// Problem 4(i): does r(X, Y) hold? Weak (⪯) semantics, Theorem 20 cost.
  bool holds(const RelationId& r, Handle x, Handle y) const;

  /// Strict (≺) semantics. When the two proxies share no atomic event the
  /// weak fast path is exact and is used (Theorem 20 cost); otherwise the
  /// evaluator falls back to the |N_X|·|N_Y| proxy quantification, which is
  /// the best known bound for the boundary case (DESIGN.md §3.3).
  bool holds_strict(const RelationId& r, Handle x, Handle y) const;

  /// r(X, Y) under the Defn 3 (global-extremum) proxies. nullopt when the
  /// required proxy does not exist (X or Y has no global extremum).
  std::optional<bool> holds_global_proxies(const RelationId& r, Handle x,
                                           Handle y) const;

  /// Reference evaluation of the same relation by direct quantification over
  /// the proxy events (|N_X| · |N_Y| causality checks).
  bool holds_naive(const RelationId& r, Handle x, Handle y,
                   Semantics sem = Semantics::Weak) const;

  /// Problem 4(ii): all relations of R that hold between X and Y.
  AllRelationsResult all_holding(Handle x, Handle y) const;
  /// Same, skipping relations decided by the implication lattice.
  AllRelationsResult all_holding_pruned(Handle x, Handle y) const;

  /// Accumulated cost counters (integer comparisons for fast paths,
  /// causality checks for naive paths).
  const ComparisonCounter& counter() const { return counter_; }
  void reset_counter() const { counter_.reset(); }

 private:
  struct Entry {
    NonatomicEvent event;
    NonatomicEvent begin_proxy;  // L_X, Defn 2
    NonatomicEvent end_proxy;    // U_X, Defn 2
    std::unique_ptr<EventCuts> begin_cuts;
    std::unique_ptr<EventCuts> end_cuts;
    // Defn 3 proxies (global extrema); absent for genuinely nonlinear X.
    std::unique_ptr<NonatomicEvent> global_begin;
    std::unique_ptr<NonatomicEvent> global_end;
    std::unique_ptr<EventCuts> global_begin_cuts;
    std::unique_ptr<EventCuts> global_end_cuts;
  };

  const Entry& entry(Handle h) const;

  const Timestamps* ts_;
  std::vector<std::unique_ptr<Entry>> entries_;
  mutable ComparisonCounter counter_;
};

}  // namespace syncon
