// RelationEvaluator — the application-facing answer to Problem 4.
//
// Register the nonatomic events the application cares about once; the
// evaluator computes each event's proxies (Defn 2) and the proxies' four cut
// timestamps (Key Idea 1's one-time cost). Every subsequent relation query
// r(X, Y), for r in the 32-relation set R, then runs in the Theorem 20
// comparison budget.
//
// Concurrency model (DESIGN.md §3.6): registration (add_event) is a
// single-threaded setup phase. After it, every const query method is
// thread-safe — queries share no mutable state. Cost accounting is explicit:
// each query either writes its QueryCost into a caller-provided sink (one
// per thread; merge with `+=`) or, when no sink is passed, folds it into a
// lock-free shared tally readable via accumulated_cost().
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "cuts/ll_relation.hpp"
#include "nonatomic/cut_timestamps.hpp"
#include "relations/fast.hpp"
#include "relations/naive.hpp"
#include "relations/relation.hpp"

namespace syncon {

class RelationEvaluator;

/// Strong handle to an event registered with one specific RelationEvaluator.
/// Carries the owning evaluator's id, so a handle minted by one evaluator
/// cannot be silently used with another (contract violation instead of a
/// wrong answer). Value-semantic, ordered and hashable-by-members; a
/// default-constructed handle is invalid.
class EventHandle {
 public:
  constexpr EventHandle() = default;

  /// Position of the event in its evaluator's registration order.
  constexpr std::size_t index() const { return index_; }
  /// Id of the evaluator that minted the handle (0 for an invalid handle).
  constexpr std::uint64_t evaluator_id() const { return evaluator_id_; }
  constexpr bool valid() const { return evaluator_id_ != 0; }

  friend constexpr bool operator==(const EventHandle&,
                                   const EventHandle&) = default;
  friend constexpr auto operator<=>(const EventHandle&,
                                    const EventHandle&) = default;

 private:
  friend class RelationEvaluator;
  constexpr EventHandle(std::uint64_t evaluator_id, std::size_t index)
      : evaluator_id_(evaluator_id), index_(index) {}

  std::uint64_t evaluator_id_ = 0;
  std::size_t index_ = 0;
};

class RelationEvaluator {
 public:
  /// Handle to a registered nonatomic event.
  using Handle = EventHandle;

  /// Result of an all-relations query (Problem 4 ii).
  struct AllRelationsResult {
    std::vector<RelationId> holding;
    /// How many of the 32 relations were actually evaluated (the rest were
    /// decided by hierarchy propagation).
    std::size_t evaluated = 0;
    /// Exact cost of this call (Theorem 20 units).
    QueryCost cost;
  };

  explicit RelationEvaluator(const Timestamps& ts);

  const Timestamps& timestamps() const { return *ts_; }

  /// Registers an event: computes proxies and cut timestamps (one-time,
  /// O(|N_X| · |P|)). Returns its handle. NOT thread-safe — registration is
  /// the setup phase; queries become thread-safe once it is done.
  EventHandle add_event(NonatomicEvent event);

  std::size_t event_count() const { return entries_.size(); }
  /// Handle of the i-th registered event (registration order).
  EventHandle handle_at(std::size_t index) const;
  /// Handles of all registered events, in registration order.
  std::vector<EventHandle> handles() const;

  const NonatomicEvent& event(EventHandle h) const;
  const NonatomicEvent& proxy(EventHandle h, ProxyKind kind) const;
  const EventCuts& proxy_cuts(EventHandle h, ProxyKind kind) const;

  /// Problem 4(i): does r(X, Y) hold? Weak (⪯) semantics, Theorem 20 cost.
  /// The cost of the call is added to *cost when given, otherwise to the
  /// shared tally (accumulated_cost()).
  bool holds(const RelationId& r, EventHandle x, EventHandle y,
             QueryCost* cost = nullptr) const;

  /// Strict (≺) semantics. When the two proxies share no atomic event the
  /// weak fast path is exact and is used (Theorem 20 cost); otherwise the
  /// evaluator falls back to the |N_X|·|N_Y| proxy quantification, which is
  /// the best known bound for the boundary case (DESIGN.md §3.3).
  bool holds_strict(const RelationId& r, EventHandle x, EventHandle y,
                    QueryCost* cost = nullptr) const;

  /// r(X, Y) under the Defn 3 (global-extremum) proxies. nullopt when the
  /// required proxy does not exist (X or Y has no global extremum).
  std::optional<bool> holds_global_proxies(const RelationId& r, EventHandle x,
                                           EventHandle y,
                                           QueryCost* cost = nullptr) const;

  /// Reference evaluation of the same relation by direct quantification over
  /// the proxy events (|N_X| · |N_Y| causality checks).
  bool holds_naive(const RelationId& r, EventHandle x, EventHandle y,
                   Semantics sem = Semantics::Weak,
                   QueryCost* cost = nullptr) const;

  /// Problem 4(ii): all relations of R that hold between X and Y. The
  /// result carries its own exact QueryCost; additionally the cost goes to
  /// *cost when given, else to the shared tally.
  AllRelationsResult all_holding(EventHandle x, EventHandle y,
                                 QueryCost* cost = nullptr) const;
  /// Same, skipping relations decided by the implication lattice.
  AllRelationsResult all_holding_pruned(EventHandle x, EventHandle y,
                                        QueryCost* cost = nullptr) const;

  /// The shared cost tally: every query made without an explicit sink folds
  /// its cost here (lock-free, exact under concurrency).
  QueryCost accumulated_cost() const;
  /// Folds an externally tracked cost into the shared tally (thread-safe);
  /// lets batch drivers that used private sinks keep the tally meaningful.
  void charge(const QueryCost& cost) const { deposit(cost, nullptr); }
  /// Clears the shared tally. Deliberately non-const: resetting is a
  /// bookkeeping mutation, not a query.
  void reset_accumulated_cost();

 private:
  struct Entry {
    NonatomicEvent event;
    NonatomicEvent begin_proxy;  // L_X, Defn 2
    NonatomicEvent end_proxy;    // U_X, Defn 2
    std::unique_ptr<EventCuts> begin_cuts;
    std::unique_ptr<EventCuts> end_cuts;
    // Defn 3 proxies (global extrema); absent for genuinely nonlinear X.
    std::unique_ptr<NonatomicEvent> global_begin;
    std::unique_ptr<NonatomicEvent> global_end;
    std::unique_ptr<EventCuts> global_begin_cuts;
    std::unique_ptr<EventCuts> global_end_cuts;
  };

  const Entry& entry(EventHandle h) const;
  bool holds_impl(const RelationId& r, EventHandle x, EventHandle y,
                  QueryCost& cost) const;
  /// Routes a finished call's cost to the sink or the shared tally.
  void deposit(const QueryCost& cost, QueryCost* sink) const;

  const Timestamps* ts_;
  const std::uint64_t id_;
  std::vector<std::unique_ptr<Entry>> entries_;
  // Shared tally for sink-less calls. Atomics keep sink-less queries
  // thread-safe; queries with explicit sinks never touch these (no
  // cache-line traffic on the parallel path).
  mutable std::atomic<std::uint64_t> tally_integer_comparisons_{0};
  mutable std::atomic<std::uint64_t> tally_causality_checks_{0};
};

}  // namespace syncon
