#include "relations/inference.hpp"

#include <bit>

#include "relations/composition.hpp"
#include "relations/hierarchy.hpp"
#include "support/contracts.hpp"

namespace syncon {

namespace {

constexpr std::uint8_t bit_of(Relation r) {
  return static_cast<std::uint8_t>(1u << static_cast<unsigned>(r));
}

}  // namespace

RelationKnowledge::RelationKnowledge(std::size_t interval_count)
    : count_(interval_count), bits_(interval_count * interval_count, 0) {
  SYNCON_REQUIRE(interval_count > 0, "need at least one interval");
}

std::uint8_t& RelationKnowledge::bits(std::size_t x, std::size_t y) {
  SYNCON_REQUIRE(x < count_ && y < count_, "interval index out of range");
  return bits_[x * count_ + y];
}

std::uint8_t RelationKnowledge::bits(std::size_t x, std::size_t y) const {
  SYNCON_REQUIRE(x < count_ && y < count_, "interval index out of range");
  return bits_[x * count_ + y];
}

std::uint8_t RelationKnowledge::with_implications(std::uint8_t mask) {
  std::uint8_t out = mask;
  for (const Relation r : kAllRelations) {
    if (!(mask & bit_of(r))) continue;
    for (const Relation s : kAllRelations) {
      if (implies(r, s)) out = static_cast<std::uint8_t>(out | bit_of(s));
    }
  }
  return out;
}

void RelationKnowledge::assert_fact(std::size_t x, std::size_t y,
                                    Relation r) {
  SYNCON_REQUIRE(x != y, "facts relate two distinct intervals");
  std::uint8_t& cell = bits(x, y);
  cell = with_implications(static_cast<std::uint8_t>(cell | bit_of(r)));
}

std::size_t RelationKnowledge::propagate() {
  std::size_t derived = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t x = 0; x < count_; ++x) {
      for (std::size_t y = 0; y < count_; ++y) {
        if (x == y) continue;
        const std::uint8_t xy = bits(x, y);
        if (xy == 0) continue;
        for (std::size_t z = 0; z < count_; ++z) {
          if (z == x || z == y) continue;
          const std::uint8_t yz = bits(y, z);
          if (yz == 0) continue;
          std::uint8_t& xz = bits(x, z);
          for (const Relation r : kAllRelations) {
            if (!(xy & bit_of(r))) continue;
            for (const Relation s : kAllRelations) {
              if (!(yz & bit_of(s))) continue;
              const auto t = compose(r, s);
              if (!t.has_value()) continue;
              const std::uint8_t updated =
                  with_implications(static_cast<std::uint8_t>(
                      xz | bit_of(*t)));
              if (updated != xz) {
                derived += static_cast<std::size_t>(
                    std::popcount(static_cast<unsigned>(updated ^ xz)));
                xz = updated;
                changed = true;
              }
            }
          }
        }
      }
    }
  }
  return derived;
}

bool RelationKnowledge::known(std::size_t x, std::size_t y,
                              Relation r) const {
  return (bits(x, y) & bit_of(r)) != 0;
}

std::vector<Relation> RelationKnowledge::known_relations(
    std::size_t x, std::size_t y) const {
  std::vector<Relation> out;
  for (const Relation r : kAllRelations) {
    if (known(x, y, r)) out.push_back(r);
  }
  return out;
}

std::size_t RelationKnowledge::fact_count() const {
  std::size_t total = 0;
  for (const std::uint8_t cell : bits_) {
    total += static_cast<std::size_t>(std::popcount(
        static_cast<unsigned>(cell)));
  }
  return total;
}

}  // namespace syncon
