#include "relations/interaction_types.hpp"

#include "relations/fast.hpp"

namespace syncon {

RelationProfile relation_profile(const EventCuts& x, const EventCuts& y,
                                 ComparisonCounter& counter) {
  RelationProfile p;
  for (const Relation r : kAllRelations) {
    const auto i = static_cast<std::size_t>(r);
    p.forward[i] = evaluate_fast(r, x, y, counter);
    p.backward[i] = evaluate_fast(r, y, x, counter);
  }
  return p;
}

const char* to_string(InteractionType t) {
  switch (t) {
    case InteractionType::Concurrent: return "concurrent";
    case InteractionType::Precedes: return "precedes";
    case InteractionType::Follows: return "follows";
    case InteractionType::WeaklyPrecedes: return "weakly-precedes";
    case InteractionType::WeaklyFollows: return "weakly-follows";
    case InteractionType::Entangled: return "entangled";
  }
  return "?";
}

InteractionType classify(const RelationProfile& p) {
  const bool fwd = p.holds(Relation::R4);
  const bool bwd = p.holds_reverse(Relation::R4);
  if (!fwd && !bwd) return InteractionType::Concurrent;
  if (fwd && bwd) return InteractionType::Entangled;
  if (fwd) {
    return p.holds(Relation::R1) ? InteractionType::Precedes
                                 : InteractionType::WeaklyPrecedes;
  }
  return p.holds_reverse(Relation::R1) ? InteractionType::Follows
                                       : InteractionType::WeaklyFollows;
}

const char* to_string(CouplingGrade g) {
  switch (g) {
    case CouplingGrade::None: return "none";
    case CouplingGrade::Partial: return "partial";
    case CouplingGrade::OneSided: return "one-sided";
    case CouplingGrade::Funneled: return "funneled";
    case CouplingGrade::Total: return "total";
  }
  return "?";
}

namespace {

CouplingGrade grade(const std::array<bool, 8>& bits) {
  auto holds = [&](Relation r) { return bits[static_cast<std::size_t>(r)]; };
  if (holds(Relation::R1)) return CouplingGrade::Total;
  if (holds(Relation::R2p) || holds(Relation::R3)) {
    return CouplingGrade::Funneled;
  }
  if (holds(Relation::R2) || holds(Relation::R3p)) {
    return CouplingGrade::OneSided;
  }
  if (holds(Relation::R4)) return CouplingGrade::Partial;
  return CouplingGrade::None;
}

}  // namespace

CouplingGrade forward_grade(const RelationProfile& p) {
  return grade(p.forward);
}

CouplingGrade backward_grade(const RelationProfile& p) {
  return grade(p.backward);
}

}  // namespace syncon
