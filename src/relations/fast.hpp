// The paper's contribution: linear-time evaluation of the Table 1 relations
// using the ≪ relation on cut timestamps (Table 1 third column, Theorems 19
// and 20).
//
// evaluate_fast computes the relations under Weak (⪯) semantics — exactly
// what the ≪-based conditions decide (DESIGN.md §3.3); for disjoint X and Y
// this coincides with the strict definitions.
//
// Comparison budgets (verified by instrumentation; see DESIGN.md §3.3b for
// why R2' and R3 differ from the paper's statement):
//   R1, R1', R4, R4'  —  min(|N_X|, |N_Y|)
//   R2, R3            —  |N_X|
//   R2', R3'          —  |N_Y|
#pragma once

#include <cstdint>

#include "cuts/ll_relation.hpp"
#include "nonatomic/cut_timestamps.hpp"
#include "relations/relation.hpp"

namespace syncon {

/// Evaluates R(X, Y) from the cached cut timestamps of X and Y. The counter
/// accumulates one integer comparison per node probed.
bool evaluate_fast(Relation r, const EventCuts& x, const EventCuts& y,
                   ComparisonCounter& counter);

/// Worst-case integer-comparison budget of evaluate_fast for the given node
/// set sizes (the corrected Theorem 20 bound).
std::uint64_t theorem20_bound(Relation r, std::size_t n_x, std::size_t n_y);

/// The bound as literally claimed by the paper's Theorem 20 (min() for R2'
/// and R3); kept so the benchmark can report both.
std::uint64_t theorem20_paper_bound(Relation r, std::size_t n_x,
                                    std::size_t n_y);

/// Test-only fault injection for the conformance subsystem (src/check): the
/// shrinker's own test suite plants a deliberately wrong condition here and
/// asserts the differential fuzzer finds it and minimizes the failing trace.
/// Off by default; never enable outside tests.
struct FastDebugHooks {
  /// Evaluate R2 with ∩⇓Y in place of ∪⇓Y (R1's down-cut — a strictly
  /// stronger condition, so the fast path under-reports R2).
  bool wrong_r2 = false;
};
FastDebugHooks& fast_debug_hooks();

}  // namespace syncon
