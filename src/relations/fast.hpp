// The paper's contribution: linear-time evaluation of the Table 1 relations
// using the ≪ relation on cut timestamps (Table 1 third column, Theorems 19
// and 20).
//
// evaluate_fast computes the relations under Weak (⪯) semantics — exactly
// what the ≪-based conditions decide (DESIGN.md §3.3); for disjoint X and Y
// this coincides with the strict definitions.
//
// Comparison budgets (verified by instrumentation; see DESIGN.md §3.3b for
// why R2' and R3 differ from the paper's statement):
//   R1, R1', R4, R4'  —  min(|N_X|, |N_Y|)
//   R2, R3            —  |N_X|
//   R2', R3'          —  |N_Y|
//
// The evaluator is generic over the clock representation: every condition
// reads cut-timestamp components through the concept's at() accessor (via
// theorem19_violated and the per-node single-comparison forms), so it runs
// unchanged over dense, tree and compressed cut timestamps. `evaluate_fast`
// on the dense EventCuts alias is the default everywhere.
#pragma once

#include <cstdint>

#include "cuts/ll_relation.hpp"
#include "model/clock.hpp"
#include "nonatomic/cut_timestamps.hpp"
#include "relations/relation.hpp"
#include "support/contracts.hpp"

namespace syncon {

/// Test-only fault injection for the conformance subsystem (src/check): the
/// shrinker's own test suite plants a deliberately wrong condition here and
/// asserts the differential fuzzer finds it and minimizes the failing trace.
/// Off by default; never enable outside tests.
struct FastDebugHooks {
  /// Evaluate R2 with ∩⇓Y in place of ∪⇓Y (R1's down-cut — a strictly
  /// stronger condition, so the fast path under-reports R2).
  bool wrong_r2 = false;
};
FastDebugHooks& fast_debug_hooks();

namespace fast_detail {

// ¬≪(down, up) probed at the X side (nodes of N_X): for each i ∈ N_X the
// up-cut surface is compared against the down-cut at one integer comparison.
template <ClockRep Clock>
bool violated_at(const Clock& down, const Clock& up,
                 std::span<const ProcessId> nodes,
                 ComparisonCounter& counter) {
  return theorem19_violated(down, up, nodes, counter);
}

// Per-node conjunctive tests (R1/R2 via X's nodes): for every i ∈ N_X the
// single-event cut x↑ of the per-node greatest x has surface index(x) at i,
// so ¬≪(down, x↑) probed at {i} is one comparison: down[i] >= index(x)+1.
template <ClockRep Clock>
bool all_x_tests_pass(const Clock& down, const NonatomicEvent& x,
                      ComparisonCounter& counter) {
  for (const ProcessId i : x.node_set()) {
    ++counter.integer_comparisons;
    if (down.at(i) < x.greatest_on(i).index + 1) return false;
  }
  return true;
}

// Dual per-node tests (R1'/R3' via Y's nodes): ↓y of the per-node least y
// has surface index(y) at j, so ¬≪(↓y, up) probed at {j} is one comparison:
// index(y)+1 >= up[j].
template <ClockRep Clock>
bool all_y_tests_pass(const Clock& up, const NonatomicEvent& y,
                      ComparisonCounter& counter) {
  for (const ProcessId j : y.node_set()) {
    ++counter.integer_comparisons;
    if (y.least_on(j).index + 1 < up.at(j)) return false;
  }
  return true;
}

}  // namespace fast_detail

/// Evaluates R(X, Y) from the cached cut timestamps of X and Y. The counter
/// accumulates one integer comparison per node probed.
template <ClockRep Clock>
bool evaluate_fast(Relation r, const BasicEventCuts<Clock>& x,
                   const BasicEventCuts<Clock>& y,
                   ComparisonCounter& counter) {
  SYNCON_REQUIRE(&x.timestamps() == &y.timestamps(),
                 "cut timestamps of different executions");
  const NonatomicEvent& ex = x.event();
  const NonatomicEvent& ey = y.event();
  const bool x_side_smaller = ex.node_count() <= ey.node_count();

  using namespace fast_detail;
  switch (r) {
    case Relation::R1:
    case Relation::R1p:
      // ∀x: ¬≪(∩⇓Y, x↑), or equivalently ∀y: ¬≪(↓y, ∪⇑X); pick the
      // cheaper route — min(|N_X|, |N_Y|) comparisons.
      if (x_side_smaller) {
        return all_x_tests_pass(y.intersect_past(), ex, counter);
      }
      return all_y_tests_pass(x.union_future(), ey, counter);

    case Relation::R2:
      // ∀x: ¬≪(∪⇓Y, x↑) — |N_X| comparisons. The debug hook swaps in the
      // wrong down-cut (∩⇓Y — R1's condition) for the conformance
      // subsystem's planted-bug tests.
      return all_x_tests_pass(fast_debug_hooks().wrong_r2 ? y.intersect_past()
                                                          : y.union_past(),
                              ex, counter);

    case Relation::R2p:
      // ¬≪(∪⇓Y, ∪⇑X) probed at N_Y — |N_Y| comparisons (the ∪⇑X surface
      // is not early at N_X nodes; probing N_X is unsound, DESIGN.md §3.3b).
      return violated_at(y.union_past(), x.union_future(), ey.node_set(),
                         counter);

    case Relation::R3:
      // ¬≪(∩⇓Y, ∩⇑X) probed at N_X — |N_X| comparisons (dual of R2').
      return violated_at(y.intersect_past(), x.intersect_future(),
                         ex.node_set(), counter);

    case Relation::R3p:
      // ∀y: ¬≪(↓y, ∩⇑X) — |N_Y| comparisons.
      return all_y_tests_pass(x.intersect_future(), ey, counter);

    case Relation::R4:
    case Relation::R4p:
      // ¬≪(∪⇓Y, ∩⇑X): a violation is visible at both N_X and N_Y
      // (Key Idea 2), so probe the smaller — min(|N_X|, |N_Y|).
      return violated_at(y.union_past(), x.intersect_future(),
                         x_side_smaller ? ex.node_set() : ey.node_set(),
                         counter);
  }
  SYNCON_ASSERT(false, "unreachable relation value");
  return false;
}

/// Worst-case integer-comparison budget of evaluate_fast for the given node
/// set sizes (the corrected Theorem 20 bound).
std::uint64_t theorem20_bound(Relation r, std::size_t n_x, std::size_t n_y);

/// The bound as literally claimed by the paper's Theorem 20 (min() for R2'
/// and R3); kept so the benchmark can report both.
std::uint64_t theorem20_paper_bound(Relation r, std::size_t n_x,
                                    std::size_t n_y);

}  // namespace syncon
