// Reference evaluators for the Table 1 relations: direct evaluation of the
// quantifier formulas. These define the semantics the fast conditions are
// tested against.
//
// Three tiers:
//  * evaluate_oracle      — quantifiers over all of X × Y with BFS-closure
//                           causality (no vector clocks anywhere);
//  * evaluate_naive       — quantifiers over all of X × Y, causality via
//                           timestamps (|X| · |Y| causality checks);
//  * evaluate_proxy_naive — quantifiers over the per-node extreme events
//                           only (|N_X| · |N_Y| causality checks — the
//                           pre-paper state of the art the paper improves).
#pragma once

#include "cuts/ll_relation.hpp"
#include "model/reachability.hpp"
#include "model/timestamps.hpp"
#include "nonatomic/interval.hpp"
#include "relations/relation.hpp"

namespace syncon {

bool evaluate_oracle(Relation r, const NonatomicEvent& x,
                     const NonatomicEvent& y, const ReachabilityOracle& oracle,
                     Semantics sem);

bool evaluate_naive(Relation r, const NonatomicEvent& x,
                    const NonatomicEvent& y, const Timestamps& ts,
                    Semantics sem, ComparisonCounter* counter = nullptr);

bool evaluate_proxy_naive(Relation r, const NonatomicEvent& x,
                          const NonatomicEvent& y, const Timestamps& ts,
                          Semantics sem, ComparisonCounter* counter = nullptr);

}  // namespace syncon
