// The implication lattice of the causality relations: the partial hierarchy
// of [9, 15] that the 32-relation set fills in.
//
// Two ingredients:
//  * quantifier implications among the eight Table 1 relations
//    (R1 ≡ R1' ⇒ R2' ⇒ R2 ⇒ R4 ≡ R4', R1 ⇒ R3 ⇒ R3' ⇒ R4);
//  * proxy monotonicity: replacing X's proxy U_X by L_X (earlier events)
//    weakens any "x before y" relation, and replacing Y's proxy L_Y by U_Y
//    (later events) also weakens it.
//
// Both are proved by elementary chaining through the per-node linear orders;
// tests/hierarchy_test.cpp verifies them against randomized executions.
#pragma once

#include <vector>

#include "relations/relation.hpp"

namespace syncon {

/// r(X,Y) ⟹ s(X,Y) for all X, Y (quantifier lattice, reflexive).
bool implies(Relation r, Relation s);

/// Full implication over the 32-relation set, combining the quantifier
/// lattice with proxy monotonicity (reflexive).
bool implies(const RelationId& a, const RelationId& b);

/// All ordered pairs (a, b), a != b, with implies(a, b) — the edges of the
/// implication preorder on the 32-relation set.
std::vector<std::pair<RelationId, RelationId>> all_implications();

}  // namespace syncon
