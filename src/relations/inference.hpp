// Relation inference: propagate a set of known facts "r(X, Y) holds" to
// its deductive closure under (a) the quantifier implication lattice and
// (b) the composition calculus R(X,Y) ∘ S(Y,Z) ⟹ T(X,Z).
//
// Use case: an application that has evaluated (or been told) relations for
// some interval pairs can answer queries about other pairs without touching
// the trace — sound but not complete (a fact may hold without being
// derivable from the seeds).
#pragma once

#include <cstdint>
#include <vector>

#include "relations/relation.hpp"

namespace syncon {

class RelationKnowledge {
 public:
  explicit RelationKnowledge(std::size_t interval_count);

  std::size_t interval_count() const { return count_; }

  /// Records that r(x, y) holds. Implications within the 8-relation lattice
  /// are applied immediately; call propagate() to also close under
  /// composition across pairs.
  void assert_fact(std::size_t x, std::size_t y, Relation r);

  /// Fixed-point closure under composition (and implications). Returns the
  /// number of new facts derived.
  std::size_t propagate();

  /// Is r(x, y) known (asserted or derived)?
  bool known(std::size_t x, std::size_t y, Relation r) const;

  /// All relations known for the ordered pair.
  std::vector<Relation> known_relations(std::size_t x, std::size_t y) const;

  /// Total number of (pair, relation) facts currently known.
  std::size_t fact_count() const;

 private:
  std::uint8_t& bits(std::size_t x, std::size_t y);
  std::uint8_t bits(std::size_t x, std::size_t y) const;
  static std::uint8_t with_implications(std::uint8_t mask);

  std::size_t count_;
  // bits_[x * count_ + y]: bit i set = relation i known for (x, y).
  std::vector<std::uint8_t> bits_;
};

}  // namespace syncon
