// BatchEvaluator — the throughput front end for Problem 4(ii) sweeps.
//
// Shards a list of ordered event pairs across a ThreadPool (static
// contiguous sharding, no work stealing) and runs all_holding /
// all_holding_pruned on each pair with per-shard QueryCost accumulation,
// merged in shard order at the join. Because the underlying const queries
// share no mutable state and the per-pair costs are data-independent, the
// parallel sweep returns bit-identical holding sets and exactly the serial
// total comparison count — the Theorem 19/20 budgets stay verifiable at any
// thread count (DESIGN.md §3.6).
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "relations/evaluator.hpp"
#include "support/thread_pool.hpp"

namespace syncon {

class BatchEvaluator {
 public:
  /// One evaluated ordered pair.
  struct PairRelations {
    EventHandle x;
    EventHandle y;
    RelationEvaluator::AllRelationsResult relations;
  };

  /// Outcome of a batch sweep. `cost` is the exact merged total of every
  /// per-pair QueryCost — the explicit replacement for the evaluator's old
  /// hidden counter.
  struct Result {
    /// Pair results in input order (x-major for all_pairs), independent of
    /// scheduling.
    std::vector<PairRelations> pairs;
    /// Merged cost across all shards (== sum of pairs[i].relations.cost).
    QueryCost cost;
    /// Shards the sweep actually used (1 == serial).
    std::size_t threads_used = 1;

    /// Total number of (pair, relation) facts that hold.
    std::size_t holding_total() const;
    /// Total relation evaluations actually performed (post-pruning).
    std::size_t evaluated_total() const;
    /// Mean Theorem-20 comparisons per evaluated relation query.
    double comparisons_per_query() const;
  };

  /// Evaluates with `pool` (nullptr → serial). The evaluator must outlive
  /// the BatchEvaluator; registration must be finished before sweeping.
  explicit BatchEvaluator(const RelationEvaluator& eval,
                          ThreadPool* pool = nullptr);

  const RelationEvaluator& evaluator() const { return *eval_; }

  /// All ordered pairs (x, y), x != y, over the registered events.
  Result all_pairs(bool pruned = true) const;

  /// An explicit pair list (handles must belong to the evaluator).
  Result evaluate_pairs(std::vector<std::pair<EventHandle, EventHandle>> pairs,
                        bool pruned = true) const;

 private:
  const RelationEvaluator* eval_;
  ThreadPool* pool_;
};

}  // namespace syncon
