#include "relations/fast.hpp"

#include <algorithm>
#include <span>

#include "support/contracts.hpp"

namespace syncon {

namespace {

// ¬≪(down, up) probed at the X side (nodes of N_X): for each i ∈ N_X the
// up-cut surface is compared against the down-cut at one integer comparison.
bool violated_at(const VectorClock& down, const VectorClock& up,
                 std::span<const ProcessId> nodes,
                 ComparisonCounter& counter) {
  return theorem19_violated(down, up, nodes, counter);
}

// Per-node conjunctive tests (R1/R2 via X's nodes): for every i ∈ N_X the
// single-event cut x↑ of the per-node greatest x has surface index(x) at i,
// so ¬≪(down, x↑) probed at {i} is one comparison: down[i] >= index(x)+1.
bool all_x_tests_pass(const VectorClock& down, const NonatomicEvent& x,
                      ComparisonCounter& counter) {
  for (const ProcessId i : x.node_set()) {
    ++counter.integer_comparisons;
    if (down[i] < x.greatest_on(i).index + 1) return false;
  }
  return true;
}

// Dual per-node tests (R1'/R3' via Y's nodes): ↓y of the per-node least y
// has surface index(y) at j, so ¬≪(↓y, up) probed at {j} is one comparison:
// index(y)+1 >= up[j].
bool all_y_tests_pass(const VectorClock& up, const NonatomicEvent& y,
                      ComparisonCounter& counter) {
  for (const ProcessId j : y.node_set()) {
    ++counter.integer_comparisons;
    if (y.least_on(j).index + 1 < up[j]) return false;
  }
  return true;
}

}  // namespace

FastDebugHooks& fast_debug_hooks() {
  static FastDebugHooks hooks;
  return hooks;
}

bool evaluate_fast(Relation r, const EventCuts& x, const EventCuts& y,
                   ComparisonCounter& counter) {
  SYNCON_REQUIRE(&x.timestamps() == &y.timestamps(),
                 "cut timestamps of different executions");
  const NonatomicEvent& ex = x.event();
  const NonatomicEvent& ey = y.event();
  const bool x_side_smaller = ex.node_count() <= ey.node_count();

  switch (r) {
    case Relation::R1:
    case Relation::R1p:
      // ∀x: ¬≪(∩⇓Y, x↑), or equivalently ∀y: ¬≪(↓y, ∪⇑X); pick the
      // cheaper route — min(|N_X|, |N_Y|) comparisons.
      if (x_side_smaller) {
        return all_x_tests_pass(y.intersect_past(), ex, counter);
      }
      return all_y_tests_pass(x.union_future(), ey, counter);

    case Relation::R2:
      // ∀x: ¬≪(∪⇓Y, x↑) — |N_X| comparisons. The debug hook swaps in the
      // wrong down-cut (∩⇓Y — R1's condition) for the conformance
      // subsystem's planted-bug tests.
      return all_x_tests_pass(fast_debug_hooks().wrong_r2 ? y.intersect_past()
                                                          : y.union_past(),
                              ex, counter);

    case Relation::R2p:
      // ¬≪(∪⇓Y, ∪⇑X) probed at N_Y — |N_Y| comparisons (the ∪⇑X surface
      // is not early at N_X nodes; probing N_X is unsound, DESIGN.md §3.3b).
      return violated_at(y.union_past(), x.union_future(), ey.node_set(),
                         counter);

    case Relation::R3:
      // ¬≪(∩⇓Y, ∩⇑X) probed at N_X — |N_X| comparisons (dual of R2').
      return violated_at(y.intersect_past(), x.intersect_future(),
                         ex.node_set(), counter);

    case Relation::R3p:
      // ∀y: ¬≪(↓y, ∩⇑X) — |N_Y| comparisons.
      return all_y_tests_pass(x.intersect_future(), ey, counter);

    case Relation::R4:
    case Relation::R4p:
      // ¬≪(∪⇓Y, ∩⇑X): a violation is visible at both N_X and N_Y
      // (Key Idea 2), so probe the smaller — min(|N_X|, |N_Y|).
      return violated_at(y.union_past(), x.intersect_future(),
                         x_side_smaller ? ex.node_set() : ey.node_set(),
                         counter);
  }
  SYNCON_ASSERT(false, "unreachable relation value");
  return false;
}

std::uint64_t theorem20_bound(Relation r, std::size_t n_x, std::size_t n_y) {
  switch (r) {
    case Relation::R1:
    case Relation::R1p:
    case Relation::R4:
    case Relation::R4p:
      return std::min(n_x, n_y);
    case Relation::R2:
    case Relation::R3:
      return n_x;
    case Relation::R2p:
    case Relation::R3p:
      return n_y;
  }
  return 0;
}

std::uint64_t theorem20_paper_bound(Relation r, std::size_t n_x,
                                    std::size_t n_y) {
  switch (r) {
    case Relation::R1:
    case Relation::R1p:
    case Relation::R2p:
    case Relation::R3:
    case Relation::R4:
    case Relation::R4p:
      return std::min(n_x, n_y);
    case Relation::R2:
      return n_x;
    case Relation::R3p:
      return n_y;
  }
  return 0;
}

}  // namespace syncon
