#include "relations/fast.hpp"

#include <algorithm>

#include "model/compressed_clock.hpp"
#include "model/tree_clock.hpp"

namespace syncon {

FastDebugHooks& fast_debug_hooks() {
  static FastDebugHooks hooks;
  return hooks;
}

std::uint64_t theorem20_bound(Relation r, std::size_t n_x, std::size_t n_y) {
  switch (r) {
    case Relation::R1:
    case Relation::R1p:
    case Relation::R4:
    case Relation::R4p:
      return std::min(n_x, n_y);
    case Relation::R2:
    case Relation::R3:
      return n_x;
    case Relation::R2p:
    case Relation::R3p:
      return n_y;
  }
  return 0;
}

std::uint64_t theorem20_paper_bound(Relation r, std::size_t n_x,
                                    std::size_t n_y) {
  switch (r) {
    case Relation::R1:
    case Relation::R1p:
    case Relation::R2p:
    case Relation::R3:
    case Relation::R4:
    case Relation::R4p:
      return std::min(n_x, n_y);
    case Relation::R2:
      return n_x;
    case Relation::R3p:
      return n_y;
  }
  return 0;
}

// One compiled instance of the evaluator per supported backend.
template bool evaluate_fast<VectorClock>(Relation,
                                         const BasicEventCuts<VectorClock>&,
                                         const BasicEventCuts<VectorClock>&,
                                         ComparisonCounter&);
template bool evaluate_fast<TreeClock>(Relation,
                                       const BasicEventCuts<TreeClock>&,
                                       const BasicEventCuts<TreeClock>&,
                                       ComparisonCounter&);
template bool evaluate_fast<CompressedClock>(
    Relation, const BasicEventCuts<CompressedClock>&,
    const BasicEventCuts<CompressedClock>&, ComparisonCounter&);

}  // namespace syncon
