#include "relations/evaluator.hpp"

#include <array>
#include <optional>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "relations/hierarchy.hpp"
#include "support/contracts.hpp"

namespace syncon {

namespace {

std::uint64_t next_evaluator_id() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

// Every query cost flows through deposit(), so this one site feeds the
// registry's whole relation-query family. Called only when obs::enabled().
void record_query_metrics(const QueryCost& cost) {
  auto& registry = obs::MetricRegistry::global();
  static obs::Counter& queries =
      registry.counter("syncon_relation_queries_total");
  static obs::Counter& comparisons =
      registry.counter("syncon_relation_integer_comparisons_total");
  static obs::Counter& causality =
      registry.counter("syncon_relation_causality_checks_total");
  static obs::Histogram& per_query = registry.histogram(
      "syncon_relation_comparisons_per_query",
      obs::HistogramSpec::exponential(1.0, 4096.0));
  const std::size_t shard = obs::current_thread_slot();
  queries.add(1, shard);
  comparisons.add(cost.integer_comparisons, shard);
  causality.add(cost.causality_checks, shard);
  per_query.record(static_cast<double>(cost.integer_comparisons), shard);
}

// µs latency of one all_holding / all_holding_pruned evaluation.
void record_evaluate_latency(std::uint64_t us) {
  static obs::Histogram& latency = obs::MetricRegistry::global().histogram(
      "syncon_relation_evaluate_us",
      obs::HistogramSpec::exponential(1.0, 65536.0));
  latency.record(static_cast<double>(us), obs::current_thread_slot());
}

}  // namespace

RelationEvaluator::RelationEvaluator(const Timestamps& ts)
    : ts_(&ts), id_(next_evaluator_id()) {}

EventHandle RelationEvaluator::add_event(NonatomicEvent event) {
  SYNCON_SPAN("relation/register");
  SYNCON_REQUIRE(&event.execution() == &ts_->execution(),
                 "event belongs to a different execution");
  NonatomicEvent begin_proxy = event.proxy_per_node(ProxyKind::Begin);
  NonatomicEvent end_proxy = event.proxy_per_node(ProxyKind::End);
  auto e = std::make_unique<Entry>(Entry{std::move(event),
                                         std::move(begin_proxy),
                                         std::move(end_proxy), nullptr,
                                         nullptr});
  e->begin_cuts = std::make_unique<EventCuts>(*ts_, e->begin_proxy);
  e->end_cuts = std::make_unique<EventCuts>(*ts_, e->end_proxy);
  if (auto g = e->event.proxy_global(ProxyKind::Begin, *ts_)) {
    e->global_begin = std::make_unique<NonatomicEvent>(std::move(*g));
    e->global_begin_cuts = std::make_unique<EventCuts>(*ts_, *e->global_begin);
  }
  if (auto g = e->event.proxy_global(ProxyKind::End, *ts_)) {
    e->global_end = std::make_unique<NonatomicEvent>(std::move(*g));
    e->global_end_cuts = std::make_unique<EventCuts>(*ts_, *e->global_end);
  }
  entries_.push_back(std::move(e));
  return EventHandle(id_, entries_.size() - 1);
}

EventHandle RelationEvaluator::handle_at(std::size_t index) const {
  SYNCON_REQUIRE(index < entries_.size(), "event index out of range");
  return EventHandle(id_, index);
}

std::vector<EventHandle> RelationEvaluator::handles() const {
  std::vector<EventHandle> out;
  out.reserve(entries_.size());
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    out.push_back(EventHandle(id_, i));
  }
  return out;
}

const RelationEvaluator::Entry& RelationEvaluator::entry(EventHandle h) const {
  SYNCON_REQUIRE(h.evaluator_id_ == id_,
                 "handle minted by a different evaluator");
  SYNCON_REQUIRE(h.index_ < entries_.size(), "invalid event handle");
  return *entries_[h.index_];
}

const NonatomicEvent& RelationEvaluator::event(EventHandle h) const {
  return entry(h).event;
}

const NonatomicEvent& RelationEvaluator::proxy(EventHandle h,
                                               ProxyKind kind) const {
  const Entry& e = entry(h);
  return kind == ProxyKind::Begin ? e.begin_proxy : e.end_proxy;
}

const EventCuts& RelationEvaluator::proxy_cuts(EventHandle h,
                                               ProxyKind kind) const {
  const Entry& e = entry(h);
  return kind == ProxyKind::Begin ? *e.begin_cuts : *e.end_cuts;
}

void RelationEvaluator::deposit(const QueryCost& cost, QueryCost* sink) const {
  if (obs::enabled()) record_query_metrics(cost);
  if (sink != nullptr) {
    *sink += cost;
    return;
  }
  tally_integer_comparisons_.fetch_add(cost.integer_comparisons,
                                       std::memory_order_relaxed);
  tally_causality_checks_.fetch_add(cost.causality_checks,
                                    std::memory_order_relaxed);
}

QueryCost RelationEvaluator::accumulated_cost() const {
  QueryCost out;
  out.integer_comparisons =
      tally_integer_comparisons_.load(std::memory_order_relaxed);
  out.causality_checks =
      tally_causality_checks_.load(std::memory_order_relaxed);
  return out;
}

void RelationEvaluator::reset_accumulated_cost() {
  tally_integer_comparisons_.store(0, std::memory_order_relaxed);
  tally_causality_checks_.store(0, std::memory_order_relaxed);
}

bool RelationEvaluator::holds_impl(const RelationId& r, EventHandle x,
                                   EventHandle y, QueryCost& cost) const {
  return evaluate_fast(r.relation, proxy_cuts(x, r.proxy_x),
                       proxy_cuts(y, r.proxy_y), cost);
}

bool RelationEvaluator::holds(const RelationId& r, EventHandle x,
                              EventHandle y, QueryCost* cost) const {
  QueryCost local;
  const bool value = holds_impl(r, x, y, local);
  deposit(local, cost);
  return value;
}

bool RelationEvaluator::holds_strict(const RelationId& r, EventHandle x,
                                     EventHandle y, QueryCost* cost) const {
  const NonatomicEvent& px = proxy(x, r.proxy_x);
  const NonatomicEvent& py = proxy(y, r.proxy_y);
  // Overlap check over the two sorted event lists.
  bool overlap = false;
  const auto& a = px.events();
  const auto& b = py.events();
  for (std::size_t i = 0, j = 0; i < a.size() && j < b.size();) {
    if (a[i] == b[j]) {
      overlap = true;
      break;
    }
    if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  if (!overlap) return holds(r, x, y, cost);
  QueryCost local;
  const bool value = evaluate_proxy_naive(r.relation, px, py, *ts_,
                                          Semantics::Strict, &local);
  deposit(local, cost);
  return value;
}

std::optional<bool> RelationEvaluator::holds_global_proxies(
    const RelationId& r, EventHandle x, EventHandle y,
    QueryCost* cost) const {
  const Entry& ex = entry(x);
  const Entry& ey = entry(y);
  const EventCuts* xc = r.proxy_x == ProxyKind::Begin
                            ? ex.global_begin_cuts.get()
                            : ex.global_end_cuts.get();
  const EventCuts* yc = r.proxy_y == ProxyKind::Begin
                            ? ey.global_begin_cuts.get()
                            : ey.global_end_cuts.get();
  if (xc == nullptr || yc == nullptr) return std::nullopt;
  QueryCost local;
  const bool value = evaluate_fast(r.relation, *xc, *yc, local);
  deposit(local, cost);
  return value;
}

bool RelationEvaluator::holds_naive(const RelationId& r, EventHandle x,
                                    EventHandle y, Semantics sem,
                                    QueryCost* cost) const {
  QueryCost local;
  const bool value = evaluate_naive(r.relation, proxy(x, r.proxy_x),
                                    proxy(y, r.proxy_y), *ts_, sem, &local);
  deposit(local, cost);
  return value;
}

RelationEvaluator::AllRelationsResult RelationEvaluator::all_holding(
    EventHandle x, EventHandle y, QueryCost* cost) const {
  SYNCON_SPAN("relation/evaluate");
  const std::uint64_t t0 = obs::enabled() ? obs::now_us() : 0;
  AllRelationsResult result;
  for (const RelationId& id : all_relation_ids()) {
    ++result.evaluated;
    if (holds_impl(id, x, y, result.cost)) result.holding.push_back(id);
  }
  deposit(result.cost, cost);
  if (obs::enabled()) record_evaluate_latency(obs::now_us() - t0);
  return result;
}

RelationEvaluator::AllRelationsResult RelationEvaluator::all_holding_pruned(
    EventHandle x, EventHandle y, QueryCost* cost) const {
  SYNCON_SPAN("relation/evaluate");
  const std::uint64_t t0 = obs::enabled() ? obs::now_us() : 0;
  const auto ids = all_relation_ids();
  std::array<std::optional<bool>, 32> decided;

  AllRelationsResult result;
  // Evaluate in declaration order (strong relations first: R1 block leads).
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (decided[i].has_value()) continue;
    const bool value = holds_impl(ids[i], x, y, result.cost);
    ++result.evaluated;
    decided[i] = value;
    // Propagate: a true relation forces everything it implies true; a false
    // one forces everything that would imply it false.
    for (std::size_t j = 0; j < ids.size(); ++j) {
      if (decided[j].has_value()) continue;
      if (value && implies(ids[i], ids[j])) decided[j] = true;
      if (!value && implies(ids[j], ids[i])) decided[j] = false;
    }
  }
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (*decided[i]) result.holding.push_back(ids[i]);
  }
  deposit(result.cost, cost);
  if (obs::enabled()) record_evaluate_latency(obs::now_us() - t0);
  return result;
}

}  // namespace syncon
