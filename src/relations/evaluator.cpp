#include "relations/evaluator.hpp"

#include <array>
#include <optional>

#include "relations/hierarchy.hpp"
#include "support/contracts.hpp"

namespace syncon {

RelationEvaluator::RelationEvaluator(const Timestamps& ts) : ts_(&ts) {}

RelationEvaluator::Handle RelationEvaluator::add_event(NonatomicEvent event) {
  SYNCON_REQUIRE(&event.execution() == &ts_->execution(),
                 "event belongs to a different execution");
  NonatomicEvent begin_proxy = event.proxy_per_node(ProxyKind::Begin);
  NonatomicEvent end_proxy = event.proxy_per_node(ProxyKind::End);
  auto e = std::make_unique<Entry>(Entry{std::move(event),
                                         std::move(begin_proxy),
                                         std::move(end_proxy), nullptr,
                                         nullptr});
  e->begin_cuts = std::make_unique<EventCuts>(*ts_, e->begin_proxy);
  e->end_cuts = std::make_unique<EventCuts>(*ts_, e->end_proxy);
  if (auto g = e->event.proxy_global(ProxyKind::Begin, *ts_)) {
    e->global_begin = std::make_unique<NonatomicEvent>(std::move(*g));
    e->global_begin_cuts = std::make_unique<EventCuts>(*ts_, *e->global_begin);
  }
  if (auto g = e->event.proxy_global(ProxyKind::End, *ts_)) {
    e->global_end = std::make_unique<NonatomicEvent>(std::move(*g));
    e->global_end_cuts = std::make_unique<EventCuts>(*ts_, *e->global_end);
  }
  entries_.push_back(std::move(e));
  return entries_.size() - 1;
}

const RelationEvaluator::Entry& RelationEvaluator::entry(Handle h) const {
  SYNCON_REQUIRE(h < entries_.size(), "invalid event handle");
  return *entries_[h];
}

const NonatomicEvent& RelationEvaluator::event(Handle h) const {
  return entry(h).event;
}

const NonatomicEvent& RelationEvaluator::proxy(Handle h,
                                               ProxyKind kind) const {
  const Entry& e = entry(h);
  return kind == ProxyKind::Begin ? e.begin_proxy : e.end_proxy;
}

const EventCuts& RelationEvaluator::proxy_cuts(Handle h,
                                               ProxyKind kind) const {
  const Entry& e = entry(h);
  return kind == ProxyKind::Begin ? *e.begin_cuts : *e.end_cuts;
}

bool RelationEvaluator::holds(const RelationId& r, Handle x, Handle y) const {
  return evaluate_fast(r.relation, proxy_cuts(x, r.proxy_x),
                       proxy_cuts(y, r.proxy_y), counter_);
}

bool RelationEvaluator::holds_strict(const RelationId& r, Handle x,
                                     Handle y) const {
  const NonatomicEvent& px = proxy(x, r.proxy_x);
  const NonatomicEvent& py = proxy(y, r.proxy_y);
  // Overlap check over the two sorted event lists.
  bool overlap = false;
  const auto& a = px.events();
  const auto& b = py.events();
  for (std::size_t i = 0, j = 0; i < a.size() && j < b.size();) {
    if (a[i] == b[j]) {
      overlap = true;
      break;
    }
    if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  if (!overlap) return holds(r, x, y);
  return evaluate_proxy_naive(r.relation, px, py, *ts_, Semantics::Strict,
                              &counter_);
}

std::optional<bool> RelationEvaluator::holds_global_proxies(
    const RelationId& r, Handle x, Handle y) const {
  const Entry& ex = entry(x);
  const Entry& ey = entry(y);
  const EventCuts* xc = r.proxy_x == ProxyKind::Begin
                            ? ex.global_begin_cuts.get()
                            : ex.global_end_cuts.get();
  const EventCuts* yc = r.proxy_y == ProxyKind::Begin
                            ? ey.global_begin_cuts.get()
                            : ey.global_end_cuts.get();
  if (xc == nullptr || yc == nullptr) return std::nullopt;
  return evaluate_fast(r.relation, *xc, *yc, counter_);
}

bool RelationEvaluator::holds_naive(const RelationId& r, Handle x, Handle y,
                                    Semantics sem) const {
  return evaluate_naive(r.relation, proxy(x, r.proxy_x), proxy(y, r.proxy_y),
                        *ts_, sem, &counter_);
}

RelationEvaluator::AllRelationsResult RelationEvaluator::all_holding(
    Handle x, Handle y) const {
  AllRelationsResult result;
  for (const RelationId& id : all_relation_ids()) {
    ++result.evaluated;
    if (holds(id, x, y)) result.holding.push_back(id);
  }
  return result;
}

RelationEvaluator::AllRelationsResult RelationEvaluator::all_holding_pruned(
    Handle x, Handle y) const {
  const auto ids = all_relation_ids();
  std::array<std::optional<bool>, 32> decided;

  AllRelationsResult result;
  // Evaluate in declaration order (strong relations first: R1 block leads).
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (decided[i].has_value()) continue;
    const bool value = holds(ids[i], x, y);
    ++result.evaluated;
    decided[i] = value;
    // Propagate: a true relation forces everything it implies true; a false
    // one forces everything that would imply it false.
    for (std::size_t j = 0; j < ids.size(); ++j) {
      if (decided[j].has_value()) continue;
      if (value && implies(ids[i], ids[j])) decided[j] = true;
      if (!value && implies(ids[j], ids[i])) decided[j] = false;
    }
  }
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (*decided[i]) result.holding.push_back(ids[i]);
  }
  return result;
}

}  // namespace syncon
