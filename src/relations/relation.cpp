#include "relations/relation.hpp"

#include <ostream>

namespace syncon {

const char* to_string(Relation r) {
  switch (r) {
    case Relation::R1: return "R1";
    case Relation::R1p: return "R1'";
    case Relation::R2: return "R2";
    case Relation::R2p: return "R2'";
    case Relation::R3: return "R3";
    case Relation::R3p: return "R3'";
    case Relation::R4: return "R4";
    case Relation::R4p: return "R4'";
  }
  return "?";
}

std::ostream& operator<<(std::ostream& os, Relation r) {
  return os << to_string(r);
}

const char* to_string(Semantics s) {
  return s == Semantics::Strict ? "strict(≺)" : "weak(⪯)";
}

std::array<RelationId, 32> all_relation_ids() {
  std::array<RelationId, 32> ids;
  std::size_t k = 0;
  for (const Relation r : kAllRelations) {
    for (const ProxyKind px : {ProxyKind::Begin, ProxyKind::End}) {
      for (const ProxyKind py : {ProxyKind::Begin, ProxyKind::End}) {
        ids[k++] = RelationId{r, px, py};
      }
    }
  }
  return ids;
}

std::string to_string(const RelationId& id) {
  std::string s = to_string(id.relation);
  s += '(';
  s += to_string(id.proxy_x);
  s += "(X), ";
  s += to_string(id.proxy_y);
  s += "(Y))";
  return s;
}

std::ostream& operator<<(std::ostream& os, const RelationId& id) {
  return os << to_string(id);
}

}  // namespace syncon
