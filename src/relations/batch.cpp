#include "relations/batch.hpp"

#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace syncon {

std::size_t BatchEvaluator::Result::holding_total() const {
  std::size_t total = 0;
  for (const PairRelations& p : pairs) total += p.relations.holding.size();
  return total;
}

std::size_t BatchEvaluator::Result::evaluated_total() const {
  std::size_t total = 0;
  for (const PairRelations& p : pairs) total += p.relations.evaluated;
  return total;
}

double BatchEvaluator::Result::comparisons_per_query() const {
  const std::size_t queries = evaluated_total();
  if (queries == 0) return 0.0;
  return static_cast<double>(cost.integer_comparisons) /
         static_cast<double>(queries);
}

BatchEvaluator::BatchEvaluator(const RelationEvaluator& eval, ThreadPool* pool)
    : eval_(&eval), pool_(pool) {}

BatchEvaluator::Result BatchEvaluator::all_pairs(bool pruned) const {
  const std::vector<EventHandle> hs = eval_->handles();
  std::vector<std::pair<EventHandle, EventHandle>> pairs;
  pairs.reserve(hs.size() * hs.size());
  for (const EventHandle& x : hs) {
    for (const EventHandle& y : hs) {
      if (x != y) pairs.emplace_back(x, y);
    }
  }
  return evaluate_pairs(std::move(pairs), pruned);
}

BatchEvaluator::Result BatchEvaluator::evaluate_pairs(
    std::vector<std::pair<EventHandle, EventHandle>> pairs,
    bool pruned) const {
  SYNCON_SPAN("batch/sweep");
  Result result;
  result.pairs.resize(pairs.size());

  const std::size_t shards =
      pool_ == nullptr ? 1 : std::min(pool_->thread_count(),
                                      std::max<std::size_t>(pairs.size(), 1));
  std::vector<QueryCost> shard_costs(shards);

  auto run_range = [&](std::size_t shard, std::size_t begin, std::size_t end) {
    QueryCost& cost = shard_costs[shard];
    for (std::size_t i = begin; i < end; ++i) {
      const auto [x, y] = pairs[i];
      PairRelations& out = result.pairs[i];
      out.x = x;
      out.y = y;
      // Per-pair cost lands inside the result; the shard sink keeps the
      // shared tally untouched (no cross-thread cache-line traffic).
      out.relations = pruned ? eval_->all_holding_pruned(x, y, &cost)
                             : eval_->all_holding(x, y, &cost);
    }
  };

  if (shards == 1) {
    run_range(0, 0, pairs.size());
  } else {
    pool_->parallel_for(pairs.size(), run_range, shards);
  }

  // Merge in shard order: deterministic, and exactly the serial total.
  for (const QueryCost& c : shard_costs) result.cost += c;
  result.threads_used = shards;

  if (obs::enabled()) {
    // Per-pair distribution is recorded here, after the join, in pair-index
    // order on shard 0 — the samples (and so every exported total) are
    // bit-identical whether the sweep ran serial or parallel.
    auto& registry = obs::MetricRegistry::global();
    static obs::Counter& sweeps =
        registry.counter("syncon_batch_sweeps_total");
    static obs::Counter& pairs_done =
        registry.counter("syncon_batch_pairs_total");
    static obs::Histogram& per_pair = registry.histogram(
        "syncon_batch_pair_comparisons",
        obs::HistogramSpec::exponential(1.0, 4096.0));
    sweeps.add(1);
    pairs_done.add(result.pairs.size());
    for (const PairRelations& p : result.pairs) {
      per_pair.record(static_cast<double>(p.relations.cost.integer_comparisons));
    }
  }
  return result;
}

}  // namespace syncon
