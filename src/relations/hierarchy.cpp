#include "relations/hierarchy.hpp"

namespace syncon {

namespace {

// Canonical strength rank used only to keep all_implications() deterministic.
bool quantifier_implies(Relation r, Relation s) {
  auto norm = [](Relation q) {
    // R1 ≡ R1' and R4 ≡ R4' are logically identical.
    if (q == Relation::R1p) return Relation::R1;
    if (q == Relation::R4p) return Relation::R4;
    return q;
  };
  const Relation a = norm(r);
  const Relation b = norm(s);
  if (a == b) return true;
  switch (a) {
    case Relation::R1:
      return true;  // ∀∀ implies every other form (X, Y non-empty)
    case Relation::R2p:
      return b == Relation::R2 || b == Relation::R4;
    case Relation::R2:
      return b == Relation::R4;
    case Relation::R3:
      return b == Relation::R3p || b == Relation::R4;
    case Relation::R3p:
      return b == Relation::R4;
    default:
      return false;
  }
}

// X-proxy strength: U_X (End, later events) is at least as strong as L_X.
bool proxy_x_implies(ProxyKind a, ProxyKind b) {
  return a == b || (a == ProxyKind::End && b == ProxyKind::Begin);
}

// Y-proxy strength: L_Y (Begin, earlier events) is at least as strong.
bool proxy_y_implies(ProxyKind a, ProxyKind b) {
  return a == b || (a == ProxyKind::Begin && b == ProxyKind::End);
}

}  // namespace

bool implies(Relation r, Relation s) { return quantifier_implies(r, s); }

bool implies(const RelationId& a, const RelationId& b) {
  return quantifier_implies(a.relation, b.relation) &&
         proxy_x_implies(a.proxy_x, b.proxy_x) &&
         proxy_y_implies(a.proxy_y, b.proxy_y);
}

std::vector<std::pair<RelationId, RelationId>> all_implications() {
  std::vector<std::pair<RelationId, RelationId>> edges;
  const auto ids = all_relation_ids();
  for (const RelationId& a : ids) {
    for (const RelationId& b : ids) {
      if (!(a == b) && implies(a, b)) edges.emplace_back(a, b);
    }
  }
  return edges;
}

}  // namespace syncon
