#include "store/store.hpp"

#include <algorithm>
#include <cstdio>

#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "store/wal.hpp"
#include "support/contracts.hpp"
#include "support/varint.hpp"

namespace syncon {

namespace {

constexpr char kWalPrefix[] = "wal-";
constexpr char kSnapPrefix[] = "snap-";

std::string seq_name(const char* prefix, std::uint64_t seq) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%s%012llu", prefix,
                static_cast<unsigned long long>(seq));
  return buffer;
}

bool has_prefix(const std::string& name, const char* prefix) {
  return name.rfind(prefix, 0) == 0;
}

std::optional<std::uint64_t> parse_seq(const std::string& name,
                                       const char* prefix) {
  if (!has_prefix(name, prefix)) return std::nullopt;
  const std::string digits = name.substr(std::string(prefix).size());
  if (digits.empty() ||
      digits.find_first_not_of("0123456789") != std::string::npos) {
    return std::nullopt;
  }
  return std::stoull(digits);
}

obs::Counter& records_counter() {
  static obs::Counter& c =
      obs::MetricRegistry::global().counter("syncon_store_wal_records_total");
  return c;
}

obs::Counter& bytes_counter() {
  static obs::Counter& c =
      obs::MetricRegistry::global().counter("syncon_store_wal_bytes_total");
  return c;
}

obs::Counter& fsync_counter() {
  static obs::Counter& c =
      obs::MetricRegistry::global().counter("syncon_store_fsyncs_total");
  return c;
}

obs::Counter& pruned_counter() {
  static obs::Counter& c = obs::MetricRegistry::global().counter(
      "syncon_store_segments_pruned_total");
  return c;
}

obs::Counter& snapshot_counter() {
  static obs::Counter& c =
      obs::MetricRegistry::global().counter("syncon_store_snapshots_total");
  return c;
}

obs::Counter& corrupt_counter() {
  static obs::Counter& c = obs::MetricRegistry::global().counter(
      "syncon_store_corrupt_frames_total");
  return c;
}

}  // namespace

Store::Store(StorageBackend& storage, DurabilityPolicy policy)
    : storage_(storage), policy_(policy) {
  SYNCON_REQUIRE(policy_.sync_every > 0 && policy_.segment_records > 0 &&
                     policy_.snapshot_every > 0 && policy_.full_interval > 0,
                 "durability policy intervals must be positive");
  scan_existing();
  // New records always go into a fresh segment: a recovered tail segment's
  // clock-codec chain state is unknowable to a new encoder, and appending to
  // it would splice undecodable deltas mid-segment.
  open_segment();
}

std::vector<Store::RecoveredRecord> Store::take_records() {
  return std::move(recovered_records_);
}

void Store::scan_existing() {
  std::vector<std::string> snapshot_names;
  std::vector<std::pair<std::uint64_t, std::string>> wal_names;
  for (const std::string& name : storage_.list()) {
    if (const auto seq = parse_seq(name, kSnapPrefix)) {
      snapshot_names.push_back(name);
      next_snapshot_seq_ = std::max(next_snapshot_seq_, *seq + 1);
    } else if (const auto wal_seq = parse_seq(name, kWalPrefix)) {
      wal_names.emplace_back(*wal_seq, name);
      next_segment_seq_ = std::max(next_segment_seq_, *wal_seq + 1);
    }
  }

  // Newest CRC-valid snapshot wins; torn/corrupt ones (a crash mid
  // write_snapshot) are deleted and counted, falling back to the
  // predecessor. Names sort by zero-padded sequence, so reverse order is
  // newest-first.
  for (auto it = snapshot_names.rbegin(); it != snapshot_names.rend(); ++it) {
    if (recovery_.snapshot.has_value()) {
      snapshot_files_.insert(snapshot_files_.begin(), *it);
      continue;
    }
    const std::vector<std::uint8_t> bytes = storage_.read(*it);
    if (auto image = decode_snapshot(bytes)) {
      recovery_.snapshot = std::move(image);
      durable_cut_ = recovery_.snapshot->checkpoint.cut;
      snapshot_files_.insert(snapshot_files_.begin(), *it);
    } else {
      ++recovery_.snapshots_discarded;
      if (obs::enabled()) corrupt_counter().add();
      storage_.remove(*it);
    }
  }

  // Scan segments oldest-first, stopping at the first invalid frame: the
  // torn segment is truncated back to its last valid frame and every later
  // segment is removed (see the truncation rule in the header comment).
  std::sort(wal_names.begin(), wal_names.end());
  bool cut = false;
  for (const auto& [seq, name] : wal_names) {
    if (cut) {
      ++recovery_.dropped_segments;
      storage_.remove(name);
      continue;
    }
    const std::vector<std::uint8_t> bytes = storage_.read(name);
    FrameReader reader(bytes);
    SegmentMeta meta;
    meta.seq = seq;
    meta.name = name;
    std::size_t frame_start = 0;
    while (true) {
      frame_start = reader.valid_bytes();
      const auto frame = reader.next();
      if (!frame) break;
      RecoveredRecord record;
      record.segment = seq;
      try {
        std::span<const std::uint8_t> in = *frame;
        SYNCON_REQUIRE(!in.empty(), "empty WAL record");
        const std::uint8_t flags = in.front();
        in = in.subspan(1);
        record.pinned = (flags & 0x01) != 0;
        const std::uint64_t nbounds = decode_varint(in);
        std::vector<EventId> touches;
        touches.reserve(static_cast<std::size_t>(nbounds));
        for (std::uint64_t i = 0; i < nbounds; ++i) {
          EventId id;
          id.process = static_cast<ProcessId>(decode_varint(in));
          id.index = static_cast<EventIndex>(decode_varint(in));
          touches.push_back(id);
        }
        record.body.assign(in.begin(), in.end());
        merge_bound(meta, touches);
        meta.pinned |= record.pinned;
      } catch (const ContractViolation&) {
        // A CRC-valid frame with a malformed retention header: treat it as
        // the first invalid frame and apply the same truncation rule.
        cut = true;
        break;
      }
      ++meta.records;
      ++recovery_.records;
      recovered_records_.push_back(std::move(record));
    }
    cut = cut || reader.corrupt();
    const std::size_t keep = cut ? frame_start : reader.valid_bytes();
    if (keep < bytes.size()) {
      recovery_.truncated = true;
      recovery_.truncated_bytes += bytes.size() - keep;
      if (obs::enabled()) corrupt_counter().add();
      storage_.truncate(name, keep);
    }
    recovery_.wal_bytes += keep;
    ++recovery_.segments_scanned;
    if (keep == 0 && meta.records == 0) {
      storage_.remove(name);  // nothing survived; drop the empty shell
    } else {
      segments_.push_back(std::move(meta));
    }
  }
}

void Store::open_segment() {
  SegmentMeta meta;
  meta.seq = next_segment_seq_++;
  meta.name = seq_name(kWalPrefix, meta.seq);
  segments_.push_back(std::move(meta));
  open_records_ = 0;
  unsynced_records_ = 0;
}

void Store::merge_bound(SegmentMeta& meta, std::span<const EventId> touches) {
  for (const EventId& id : touches) {
    if (meta.bound.size() <= id.process) meta.bound.resize(id.process + 1, 0);
    meta.bound[id.process] = std::max(meta.bound[id.process], id.index);
  }
}

bool Store::bound_covered(const SegmentMeta& meta, const VectorClock& cut) {
  if (cut.size() == 0) return false;  // no durable snapshot yet
  for (ProcessId p = 0; p < meta.bound.size(); ++p) {
    if (meta.bound[p] == 0) continue;  // no reference to process p
    if (p >= cut.size() || meta.bound[p] >= cut[p]) return false;
  }
  return true;
}

void Store::append(std::span<const std::uint8_t> body,
                   std::span<const EventId> touches, bool pinned) {
  std::vector<std::uint8_t> payload;
  payload.reserve(body.size() + 4 * touches.size() + 4);
  payload.push_back(pinned ? 0x01 : 0x00);
  encode_varint(touches.size(), payload);
  for (const EventId& id : touches) {
    encode_varint(id.process, payload);
    encode_varint(id.index, payload);
  }
  payload.insert(payload.end(), body.begin(), body.end());

  std::vector<std::uint8_t> frame;
  append_frame(payload, frame);

  SegmentMeta& open = segments_.back();
  storage_.append(open.name, frame);
  merge_bound(open, touches);
  open.pinned |= pinned;
  ++open.records;
  ++open_records_;
  ++unsynced_records_;
  ++records_appended_;
  bytes_appended_ += frame.size();
  if (obs::enabled()) {
    records_counter().add();
    bytes_counter().add(frame.size());
  }
  if (unsynced_records_ >= policy_.sync_every) sync();
  if (open_records_ >= policy_.segment_records) rotate();
}

void Store::sync() {
  const SegmentMeta& open = segments_.back();
  // A segment object is created by its first append; before that there is
  // nothing to make durable.
  if (open_records_ > 0) {
    storage_.sync(open.name);
    ++syncs_;
    if (obs::enabled()) fsync_counter().add();
    obs::flight(obs::FlightKind::kWalSync, obs::FlightRecord::kNoProcess,
                unsynced_records_, bytes_appended_);
  }
  unsynced_records_ = 0;
}

void Store::rotate() {
  // Rotation invariant: a segment is always durable when it closes, so the
  // open segment is the only one a crash can lose or tear.
  sync();
  open_segment();
  obs::flight(obs::FlightKind::kWalRotate, obs::FlightRecord::kNoProcess,
              segments_.back().seq);
}

void Store::write_snapshot(const SnapshotImage& image) {
  // Log-before-checkpoint: the snapshot's cut vouches for (and forgives)
  // state derived from every record written so far, so those records must
  // be durable first — a snapshot that outlives an unsynced record it
  // reflects would suppress its replay as a duplicate after recovery.
  sync();
  const std::vector<std::uint8_t> bytes = encode_snapshot(image);
  const std::string name = seq_name(kSnapPrefix, next_snapshot_seq_++);
  storage_.append(name, bytes);
  storage_.sync(name);
  ++syncs_;
  ++snapshots_written_;
  snapshot_files_.push_back(name);
  durable_cut_ = image.checkpoint.cut;
  if (obs::enabled()) {
    fsync_counter().add();
    snapshot_counter().add();
  }
  obs::flight(obs::FlightKind::kSnapshot, obs::FlightRecord::kNoProcess,
              image.checkpoint.sequence);
  prune();
  // Keep the newest two snapshots: the newest may be the one torn by the
  // next crash, and its predecessor is the fallback.
  while (snapshot_files_.size() > 2) {
    storage_.remove(snapshot_files_.front());
    snapshot_files_.erase(snapshot_files_.begin());
  }
}

void Store::prune() {
  // Front-contiguous only: stop at the first segment that is pinned, still
  // open, or reaches past the durable cut. Holes in the retained sequence
  // would be indistinguishable from crash loss during recovery.
  while (segments_.size() > 1 && !segments_.front().pinned &&
         bound_covered(segments_.front(), durable_cut_)) {
    storage_.remove(segments_.front().name);
    segments_.pop_front();
    ++segments_pruned_;
    if (obs::enabled()) pruned_counter().add();
  }
}

}  // namespace syncon
