// Crash-recoverable shells around the online substrate (DESIGN.md §3.12).
//
// DurableSystem journals every executed event — its wire form (delta-framed
// through a LinkEncoder that resets at segment boundaries), its message
// sources, and its physical time — after applying it, and turns compact()
// into compact + durable snapshot. DurableMonitor journals the monitor's
// externally-driven operations (begin/complete, reports, clock checkpoints,
// checkpoint adoptions). Constructing either over a StorageBackend that
// holds prior state runs recovery: install the newest valid snapshot, then
// replay the surviving WAL tail through the idempotent delivery paths —
// converging to state whose verdicts and clocks are bit-identical to an
// uninterrupted run (the `recovery_identity` conformance property).
//
// Journal-after-apply: a crash between apply and journal loses only the
// suffix of unsynced records — exactly the loss the resync path (and the
// `sync_every` dial) already bounds. What is never lost: anything before
// the last sync barrier.
//
// Not journaled, by design: watch registrations (callbacks cannot be
// serialized — re-register after recovery; registration after both actions
// completed fires immediately), mark_crashed (failure-detector state is the
// detector's to re-derive), and OnlineMonitor::forget is journaled as its
// own record so replay memory stays bounded.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <string>

#include "online/online_monitor.hpp"
#include "online/online_system.hpp"
#include "online/wire_codec.hpp"
#include "store/store.hpp"

namespace syncon {

/// What recovery did (both shells; zeroed on a fresh start).
struct RecoveryStats {
  bool recovered = false;           // prior durable state was found
  std::size_t events_replayed = 0;  // WAL records applied as fresh
  std::size_t events_skipped = 0;   // already covered (snapshot / duplicate)
  std::size_t records_quarantined = 0;  // CRC-valid but unusable records
  std::uint64_t recovery_micros = 0;    // wall time of the constructor scan
};

class DurableSystem {
 public:
  DurableSystem(std::size_t process_count, StorageBackend& storage,
                DurabilityPolicy policy = {});

  /// Read access. Every mutation that must survive a crash goes through the
  /// wrapper's own methods — the const view cannot bypass the journal.
  const OnlineSystem& system() const { return system_; }
  Store& store() { return store_; }
  const RecoveryStats& recovery() const { return stats_; }

  std::size_t process_count() const { return system_.process_count(); }

  // Journaling counterparts of the OnlineSystem mutators.
  EventId local(ProcessId p, std::int64_t when = OnlineSystem::kNoTime);
  WireMessage send(ProcessId p, std::int64_t when = OnlineSystem::kNoTime);
  EventId deliver(ProcessId p, const WireMessage& message,
                  std::int64_t when = OnlineSystem::kNoTime);
  EventId deliver_all(ProcessId p, std::span<const WireMessage> messages,
                      std::int64_t when = OnlineSystem::kNoTime);
  /// Hardened ingress (OnlineSystem::try_deliver): rejected messages are
  /// quarantined, never journaled.
  bool try_deliver(ProcessId p, const WireMessage& message,
                   std::int64_t when = OnlineSystem::kNoTime,
                   EventId* receipt = nullptr);

  /// compact() + a durable snapshot every policy().snapshot_every calls
  /// (the snapshot is what lets the store prune WAL segments).
  std::size_t compact(const VectorClock& watermark);
  /// Forces a durable snapshot of the current retention checkpoint now.
  void snapshot_now();
  /// Forces the WAL durable (exception-safety barrier for the caller).
  void sync() { store_.sync(); }

 private:
  void journal_event(EventId e);

  OnlineSystem system_;
  Store store_;
  RecoveryStats stats_;
  LinkEncoder encoder_;
  std::uint64_t encoder_segment_ = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t compactions_ = 0;
};

class DurableMonitor {
 public:
  DurableMonitor(std::size_t process_count, StorageBackend& storage,
                 DurabilityPolicy policy = {});

  /// The wrapped monitor: watch registration (not journaled) and all
  /// read-only queries. State-changing feed operations must go through the
  /// wrapper or they will not survive a crash.
  OnlineMonitor& monitor() { return monitor_; }
  const OnlineMonitor& monitor() const { return monitor_; }
  Store& store() { return store_; }
  const RecoveryStats& recovery() const { return stats_; }

  std::size_t process_count() const { return process_count_; }

  // Journaling counterparts of the monitor's feed operations.
  void begin(const std::string& label);
  const IntervalSummary& complete(const std::string& label);
  bool observe(const WireMessage& report);
  bool ingest(const std::string& label, const WireMessage& report,
              std::int64_t when = OnlineSystem::kNoTime);
  /// Hardened ingress: quarantined reports are never journaled.
  bool try_observe(const WireMessage& report);
  bool try_ingest(const std::string& label, const WireMessage& report,
                  std::int64_t when = OnlineSystem::kNoTime);
  void checkpoint(const VectorClock& snapshot);
  /// adopt_checkpoint() + a durable snapshot every policy().snapshot_every
  /// adoptions — the adopted cut is what lets observe-only WAL segments be
  /// pruned (labeled/lifecycle records are pinned and survive until
  /// forget()).
  void adopt_checkpoint(const RetentionCheckpoint& checkpoint);
  void forget(const std::string& label);
  void sync() { store_.sync(); }

 private:
  void journal(std::uint8_t kind, std::span<const std::uint8_t> body,
               std::span<const EventId> touches, bool pinned);
  void journal_report(const std::string& label, const WireMessage& report,
                      std::int64_t when);

  std::size_t process_count_;
  OnlineMonitor monitor_;
  Store store_;
  RecoveryStats stats_;
  LinkEncoder encoder_;
  std::uint64_t encoder_segment_ = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t adoptions_ = 0;
};

}  // namespace syncon
