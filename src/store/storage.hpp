// Byte-level storage behind the durability layer (DESIGN.md §3.12).
//
// The Store (store/store.hpp) never touches a filesystem directly: it talks
// to a StorageBackend — named append-only objects ("segments") with an
// explicit durability point. The contract mirrors POSIX semantics without
// inheriting POSIX surprises:
//
//   append(name, bytes)   appends to the object, creating it if absent. The
//                         bytes are *volatile* until the next sync(name) —
//                         a crash may lose any suffix of them, tear the
//                         last partial write, or flip bits in the torn
//                         region.
//   sync(name)            durability barrier: everything appended so far —
//                         and the object's existence itself — survives any
//                         later crash. (An unsynced object can vanish
//                         entirely while a younger synced one survives:
//                         that is the "reordered segment visibility"
//                         anomaly recovery must tolerate.)
//
// Two implementations:
//   SimStorage   deterministic in-memory fault injector: crash() applies
//                seeded torn tails / bit flips / lost unsynced suffixes, so
//                recovery is tested byte-for-byte reproducibly.
//   FileStorage  a directory of real files for the CLI tooling
//                (tools/trace_analysis --wal-record / --wal-replay).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace syncon {

class StorageBackend {
 public:
  virtual ~StorageBackend() = default;

  /// Names of all existing objects, lexicographically sorted (segment names
  /// embed zero-padded sequence numbers, so this is also creation order).
  virtual std::vector<std::string> list() const = 0;
  virtual bool exists(const std::string& name) const = 0;
  /// Appends bytes, creating the object if needed. Volatile until sync().
  virtual void append(const std::string& name,
                      std::span<const std::uint8_t> bytes) = 0;
  /// Full contents (durable + not-yet-synced bytes — the live view).
  virtual std::vector<std::uint8_t> read(const std::string& name) const = 0;
  virtual std::size_t size(const std::string& name) const = 0;
  /// Durability barrier for the object and its existence.
  virtual void sync(const std::string& name) = 0;
  /// Discards every byte past `new_size` — recovery's truncation primitive
  /// for cutting a torn tail at the last valid frame boundary.
  virtual void truncate(const std::string& name, std::size_t new_size) = 0;
  virtual void remove(const std::string& name) = 0;
};

/// Thrown by SimStorage when an armed crash point fires: the storage has
/// already transitioned to its post-crash contents; the caller abandons the
/// in-memory system and runs recovery, exactly like a process restart.
class StorageCrash : public std::runtime_error {
 public:
  explicit StorageCrash(const std::string& what) : std::runtime_error(what) {}
};

/// Seeded fault model applied to the *unsynced* suffix at crash():
/// synced bytes are sacred (that is what sync means), everything after the
/// last barrier is fair game.
struct SimFaultConfig {
  /// Probability that a crash leaves a torn tail — a random prefix of the
  /// unsynced suffix survives — instead of dropping the suffix cleanly.
  double torn_tail = 0.0;
  /// Per-byte probability that a surviving torn byte has one bit flipped.
  double bit_flip = 0.0;
  std::uint64_t seed = 0;
};

class SimStorage : public StorageBackend {
 public:
  explicit SimStorage(SimFaultConfig faults = {});

  std::vector<std::string> list() const override;
  bool exists(const std::string& name) const override;
  void append(const std::string& name,
              std::span<const std::uint8_t> bytes) override;
  std::vector<std::uint8_t> read(const std::string& name) const override;
  std::size_t size(const std::string& name) const override;
  void sync(const std::string& name) override;
  void truncate(const std::string& name, std::size_t new_size) override;
  void remove(const std::string& name) override;

  /// Simulated process/machine crash: every object keeps its synced bytes;
  /// the unsynced suffix is lost, torn, or bit-flipped per SimFaultConfig;
  /// objects never synced vanish entirely.
  void crash();

  /// Arms a deterministic crash point: after `n` more mutating operations
  /// (append or sync), the operation does NOT take effect, crash() runs,
  /// and StorageCrash is thrown. n = 0 disarms.
  void crash_after_ops(std::uint64_t n);

  /// Targeted corruption helper for CRC tests (bypasses the crash model).
  void flip_bit(const std::string& name, std::size_t byte, unsigned bit);

  std::size_t synced_size(const std::string& name) const;
  std::uint64_t appends() const { return appends_; }
  std::uint64_t syncs() const { return syncs_; }
  std::uint64_t bytes_written() const { return bytes_written_; }
  std::uint64_t crashes() const { return crashes_; }

 private:
  struct Object {
    std::vector<std::uint8_t> bytes;
    std::size_t synced = 0;      // prefix length covered by the last sync
    bool ever_synced = false;    // existence is durable only after a sync
  };

  void maybe_crash(const char* op);

  std::map<std::string, Object> objects_;
  SimFaultConfig faults_;
  std::uint64_t rng_state_;
  std::uint64_t appends_ = 0;
  std::uint64_t syncs_ = 0;
  std::uint64_t bytes_written_ = 0;
  std::uint64_t crashes_ = 0;
  std::uint64_t ops_until_crash_ = 0;  // 0 = disarmed
};

/// Directory-backed storage for the CLI tooling. Keeps one open handle per
/// object so append/sync map to fwrite/fflush+fsync.
class FileStorage : public StorageBackend {
 public:
  /// Creates the directory if it does not exist.
  explicit FileStorage(std::string directory);
  ~FileStorage() override;

  std::vector<std::string> list() const override;
  bool exists(const std::string& name) const override;
  void append(const std::string& name,
              std::span<const std::uint8_t> bytes) override;
  std::vector<std::uint8_t> read(const std::string& name) const override;
  std::size_t size(const std::string& name) const override;
  void sync(const std::string& name) override;
  void truncate(const std::string& name, std::size_t new_size) override;
  void remove(const std::string& name) override;

  const std::string& directory() const { return directory_; }

 private:
  std::string path_of(const std::string& name) const;
  void close_handle(const std::string& name);

  std::string directory_;
  std::map<std::string, std::FILE*> handles_;
};

}  // namespace syncon
