// CRC32 record framing for the write-ahead log (DESIGN.md §3.12).
//
//   frame := varint(payload_length) payload crc32(payload):u32le
//
// The length prefix makes frames self-delimiting; the trailing CRC makes
// torn tails and bit flips detectable. A scanner stops at the first frame
// that fails to parse or checksum — the *recovery truncation rule*: every
// byte after the first invalid frame is discarded, because an append-only
// log corrupted at offset k says nothing trustworthy beyond k.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "support/crc32.hpp"

namespace syncon {

/// Appends one CRC-framed record to `out`; returns the frame size in bytes.
std::size_t append_frame(std::span<const std::uint8_t> payload,
                         std::vector<std::uint8_t>& out);

/// Sequential scanner over one segment's bytes. next() yields payload views
/// until the bytes run out or the first invalid frame (truncated length,
/// payload running past the buffer, or CRC mismatch) — after which it
/// yields nothing more and corrupt()/valid_bytes() describe the cut.
class FrameReader {
 public:
  explicit FrameReader(std::span<const std::uint8_t> bytes)
      : bytes_(bytes), cursor_(bytes) {}

  /// The next frame's payload (a view into the scanned buffer), or nullopt
  /// at end-of-log / first invalid frame.
  std::optional<std::span<const std::uint8_t>> next();

  /// True iff the scan stopped because of an invalid frame (not clean EOF).
  bool corrupt() const { return corrupt_; }
  /// Bytes of the buffer covered by valid frames — the truncation offset.
  std::size_t valid_bytes() const {
    return static_cast<std::size_t>(bytes_.size() - cursor_.size());
  }
  std::size_t frames_read() const { return frames_; }

 private:
  std::span<const std::uint8_t> bytes_;
  std::span<const std::uint8_t> cursor_;
  bool corrupt_ = false;
  bool done_ = false;
  std::size_t frames_ = 0;
};

}  // namespace syncon
