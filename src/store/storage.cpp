#include "store/storage.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>

#include "support/contracts.hpp"

namespace syncon {

// ---------------------------------------------------------------------------
// SimStorage
// ---------------------------------------------------------------------------

namespace {

// splitmix64 — a tiny self-contained generator so the fault model does not
// depend on support/rng.hpp's engine choices.
std::uint64_t next_u64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

double next_unit(std::uint64_t& state) {
  return static_cast<double>(next_u64(state) >> 11) * 0x1.0p-53;
}

}  // namespace

SimStorage::SimStorage(SimFaultConfig faults)
    : faults_(faults), rng_state_(faults.seed ^ 0xC0FFEE5EED5ULL) {}

std::vector<std::string> SimStorage::list() const {
  std::vector<std::string> names;
  names.reserve(objects_.size());
  for (const auto& [name, obj] : objects_) names.push_back(name);
  return names;  // std::map iterates sorted
}

bool SimStorage::exists(const std::string& name) const {
  return objects_.count(name) != 0;
}

void SimStorage::maybe_crash(const char* op) {
  if (ops_until_crash_ == 0) return;
  if (--ops_until_crash_ == 0) {
    crash();
    throw StorageCrash(std::string("simulated crash during ") + op);
  }
}

void SimStorage::append(const std::string& name,
                        std::span<const std::uint8_t> bytes) {
  maybe_crash("append");
  Object& obj = objects_[name];
  obj.bytes.insert(obj.bytes.end(), bytes.begin(), bytes.end());
  ++appends_;
  bytes_written_ += bytes.size();
}

std::vector<std::uint8_t> SimStorage::read(const std::string& name) const {
  const auto it = objects_.find(name);
  SYNCON_REQUIRE(it != objects_.end(), "no stored object named " + name);
  return it->second.bytes;
}

std::size_t SimStorage::size(const std::string& name) const {
  const auto it = objects_.find(name);
  SYNCON_REQUIRE(it != objects_.end(), "no stored object named " + name);
  return it->second.bytes.size();
}

void SimStorage::sync(const std::string& name) {
  maybe_crash("sync");
  const auto it = objects_.find(name);
  SYNCON_REQUIRE(it != objects_.end(), "no stored object named " + name);
  it->second.synced = it->second.bytes.size();
  it->second.ever_synced = true;
  ++syncs_;
}

void SimStorage::remove(const std::string& name) {
  objects_.erase(name);
}

void SimStorage::crash() {
  ++crashes_;
  ops_until_crash_ = 0;
  for (auto it = objects_.begin(); it != objects_.end();) {
    Object& obj = it->second;
    if (!obj.ever_synced) {
      // Existence was never made durable: the object vanishes, even though
      // younger synced objects survive (reordered segment visibility).
      it = objects_.erase(it);
      continue;
    }
    if (obj.bytes.size() > obj.synced) {
      std::size_t keep = obj.synced;
      if (next_unit(rng_state_) < faults_.torn_tail) {
        // Torn tail: a random prefix of the unsynced suffix made it to the
        // medium, possibly with flipped bits — CRC framing must reject it.
        const std::size_t suffix = obj.bytes.size() - obj.synced;
        keep = obj.synced + next_u64(rng_state_) % (suffix + 1);
        for (std::size_t i = obj.synced; i < keep; ++i) {
          if (next_unit(rng_state_) < faults_.bit_flip) {
            obj.bytes[i] ^= static_cast<std::uint8_t>(
                1u << (next_u64(rng_state_) % 8));
          }
        }
      }
      obj.bytes.resize(keep);
      obj.synced = std::min(obj.synced, obj.bytes.size());
    }
    ++it;
  }
}

void SimStorage::crash_after_ops(std::uint64_t n) { ops_until_crash_ = n; }

void SimStorage::flip_bit(const std::string& name, std::size_t byte,
                          unsigned bit) {
  const auto it = objects_.find(name);
  SYNCON_REQUIRE(it != objects_.end(), "no stored object named " + name);
  SYNCON_REQUIRE(byte < it->second.bytes.size() && bit < 8,
                 "flip_bit target out of range");
  it->second.bytes[byte] ^= static_cast<std::uint8_t>(1u << bit);
}

void SimStorage::truncate(const std::string& name, std::size_t new_size) {
  const auto it = objects_.find(name);
  SYNCON_REQUIRE(it != objects_.end(), "no stored object named " + name);
  SYNCON_REQUIRE(new_size <= it->second.bytes.size(),
                 "truncate cannot grow an object");
  it->second.bytes.resize(new_size);
  it->second.synced = std::min(it->second.synced, new_size);
}

std::size_t SimStorage::synced_size(const std::string& name) const {
  const auto it = objects_.find(name);
  SYNCON_REQUIRE(it != objects_.end(), "no stored object named " + name);
  return it->second.synced;
}

// ---------------------------------------------------------------------------
// FileStorage
// ---------------------------------------------------------------------------

FileStorage::FileStorage(std::string directory)
    : directory_(std::move(directory)) {
  std::filesystem::create_directories(directory_);
}

FileStorage::~FileStorage() {
  for (auto& [name, handle] : handles_) {
    if (handle != nullptr) std::fclose(handle);
  }
}

std::string FileStorage::path_of(const std::string& name) const {
  SYNCON_REQUIRE(!name.empty() && name.find('/') == std::string::npos &&
                     name.find("..") == std::string::npos,
                 "storage object names must be plain file names");
  return directory_ + "/" + name;
}

void FileStorage::close_handle(const std::string& name) {
  const auto it = handles_.find(name);
  if (it != handles_.end()) {
    if (it->second != nullptr) std::fclose(it->second);
    handles_.erase(it);
  }
}

std::vector<std::string> FileStorage::list() const {
  std::vector<std::string> names;
  for (const auto& entry : std::filesystem::directory_iterator(directory_)) {
    if (entry.is_regular_file()) {
      names.push_back(entry.path().filename().string());
    }
  }
  std::sort(names.begin(), names.end());
  return names;
}

bool FileStorage::exists(const std::string& name) const {
  return std::filesystem::exists(path_of(name));
}

void FileStorage::append(const std::string& name,
                         std::span<const std::uint8_t> bytes) {
  auto it = handles_.find(name);
  if (it == handles_.end()) {
    std::FILE* handle = std::fopen(path_of(name).c_str(), "ab");
    SYNCON_REQUIRE(handle != nullptr, "failed to open " + path_of(name));
    it = handles_.emplace(name, handle).first;
  }
  if (!bytes.empty()) {
    const std::size_t written =
        std::fwrite(bytes.data(), 1, bytes.size(), it->second);
    SYNCON_REQUIRE(written == bytes.size(),
                   "short write to " + path_of(name));
  }
}

std::vector<std::uint8_t> FileStorage::read(const std::string& name) const {
  // Flush any buffered appends so the read sees the live view.
  const auto it = handles_.find(name);
  if (it != handles_.end() && it->second != nullptr) std::fflush(it->second);
  std::FILE* in = std::fopen(path_of(name).c_str(), "rb");
  SYNCON_REQUIRE(in != nullptr, "no stored object named " + name);
  std::vector<std::uint8_t> bytes;
  std::uint8_t buffer[4096];
  std::size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof buffer, in)) > 0) {
    bytes.insert(bytes.end(), buffer, buffer + n);
  }
  std::fclose(in);
  return bytes;
}

std::size_t FileStorage::size(const std::string& name) const {
  const auto it = handles_.find(name);
  if (it != handles_.end() && it->second != nullptr) std::fflush(it->second);
  SYNCON_REQUIRE(exists(name), "no stored object named " + name);
  return static_cast<std::size_t>(std::filesystem::file_size(path_of(name)));
}

void FileStorage::sync(const std::string& name) {
  const auto it = handles_.find(name);
  if (it != handles_.end() && it->second != nullptr) {
    std::fflush(it->second);
    ::fsync(fileno(it->second));
  }
}

void FileStorage::truncate(const std::string& name, std::size_t new_size) {
  close_handle(name);  // reopen lazily on the next append
  SYNCON_REQUIRE(exists(name), "no stored object named " + name);
  std::filesystem::resize_file(path_of(name), new_size);
}

void FileStorage::remove(const std::string& name) {
  close_handle(name);
  std::filesystem::remove(path_of(name));
}

}  // namespace syncon
