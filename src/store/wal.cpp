#include "store/wal.hpp"

#include "support/varint.hpp"

namespace syncon {

std::size_t append_frame(std::span<const std::uint8_t> payload,
                         std::vector<std::uint8_t>& out) {
  const std::size_t start = out.size();
  encode_varint(payload.size(), out);
  out.insert(out.end(), payload.begin(), payload.end());
  const std::uint32_t crc = crc32(payload);
  out.push_back(static_cast<std::uint8_t>(crc));
  out.push_back(static_cast<std::uint8_t>(crc >> 8));
  out.push_back(static_cast<std::uint8_t>(crc >> 16));
  out.push_back(static_cast<std::uint8_t>(crc >> 24));
  return out.size() - start;
}

std::optional<std::span<const std::uint8_t>> FrameReader::next() {
  if (done_ || cursor_.empty()) {
    done_ = true;
    return std::nullopt;
  }
  // Parse on a scratch cursor; commit only a fully valid frame, so
  // valid_bytes() always points at a frame boundary.
  std::span<const std::uint8_t> probe = cursor_;
  std::uint64_t length = 0;
  try {
    length = decode_varint(probe);
  } catch (const ContractViolation&) {
    corrupt_ = done_ = true;  // truncated or malformed length prefix
    return std::nullopt;
  }
  if (length + 4 > probe.size()) {
    corrupt_ = done_ = true;  // payload or checksum runs past the buffer
    return std::nullopt;
  }
  const std::span<const std::uint8_t> payload = probe.first(length);
  const std::span<const std::uint8_t> tail = probe.subspan(length, 4);
  const std::uint32_t stored = static_cast<std::uint32_t>(tail[0]) |
                               (static_cast<std::uint32_t>(tail[1]) << 8) |
                               (static_cast<std::uint32_t>(tail[2]) << 16) |
                               (static_cast<std::uint32_t>(tail[3]) << 24);
  if (crc32(payload) != stored) {
    corrupt_ = done_ = true;
    return std::nullopt;
  }
  cursor_ = probe.subspan(length + 4);
  ++frames_;
  return payload;
}

}  // namespace syncon
