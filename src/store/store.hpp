// The durability core (DESIGN.md §3.12): an append-only write-ahead log of
// CRC-framed records split across rotating segments, plus durable snapshot
// files, over a StorageBackend.
//
// Layout:
//   wal-<seq>    CRC-framed records (store/wal.hpp). Each record carries a
//                small retention header (pinned flag + the event ids it
//                references) so the Store can prune without understanding
//                the consumer's record format. Closed segments are synced
//                at rotation, so the only segment that can be lost or torn
//                by a crash is the open one.
//   snap-<seq>   a serialized SnapshotImage (store/snapshot.hpp). The two
//                newest are retained so a snapshot torn by a crash falls
//                back to its predecessor.
//
// Retention invariant: a segment is pruned only when a *durable* snapshot's
// cut covers every event id any of its records references (and no record is
// pinned) — everything a pruned record could tell recovery is already told
// by the snapshot. Pruning is front-contiguous, so the retained segment
// sequence has no holes below a pinned or live segment and recovery can
// treat any sequence gap after a corrupt frame as loss, not pruning.
//
// Recovery (runs in the constructor when the storage is non-empty): load
// the newest CRC-valid snapshot (falling back across torn ones), then scan
// the retained segments in order, stopping at the first invalid frame — the
// truncation rule: the torn segment is cut back to its last valid frame and
// every later segment is dropped, because an append-only log says nothing
// trustworthy past its first corruption. The surviving record bodies are
// handed to the consumer (store/durable.hpp) for replay.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "model/types.hpp"
#include "store/snapshot.hpp"
#include "store/storage.hpp"

namespace syncon {

/// How aggressively the WAL trades write latency for crash-window size.
struct DurabilityPolicy {
  /// sync() the open segment after every N appended records (1 = every
  /// record durable immediately; larger N batches fsyncs and accepts losing
  /// up to N-1 records on a crash — recovered via the normal resync path).
  std::uint32_t sync_every = 1;
  /// Rotate to a fresh segment after N records (the pruning granule).
  std::uint32_t segment_records = 256;
  /// Write a durable snapshot every N compactions / checkpoint adoptions.
  std::uint32_t snapshot_every = 1;
  /// Absolute-escape interval of the record clock codec (LinkEncoder): every
  /// N-th record carries its clock absolutely, bounding how much chained
  /// delta state a reader must accumulate. Encoders reset at segment
  /// boundaries, so every segment is independently decodable.
  std::uint32_t full_interval = 16;
};

class Store {
 public:
  /// One surviving WAL record, in append order. `segment` changes exactly
  /// where the writer rotated (and reset its clock codec).
  struct RecoveredRecord {
    std::uint64_t segment = 0;
    bool pinned = false;
    std::vector<std::uint8_t> body;
  };

  /// What the opening scan found.
  struct RecoveryInfo {
    std::optional<SnapshotImage> snapshot;  // newest CRC-valid snapshot
    std::size_t snapshots_discarded = 0;    // torn/corrupt snapshots skipped
    std::size_t segments_scanned = 0;
    std::size_t records = 0;
    bool truncated = false;  // an invalid frame cut the scan short
    std::size_t truncated_bytes = 0;   // bytes discarded from the torn tail
    std::size_t dropped_segments = 0;  // segments past the first corruption
    std::uint64_t wal_bytes = 0;       // valid WAL bytes scanned
  };

  /// Opens (and, if the backend holds prior state, recovers) a store.
  Store(StorageBackend& storage, DurabilityPolicy policy = {});

  const DurabilityPolicy& policy() const { return policy_; }
  const RecoveryInfo& recovery() const { return recovery_; }
  /// The surviving records, consumed once by the owner's replay.
  std::vector<RecoveredRecord> take_records();

  /// True before the first record of a fresh segment: the writer resets its
  /// clock codec exactly here so segments decode independently.
  bool at_segment_start() const { return open_records_ == 0; }

  /// Sequence number of the segment the next append lands in — writers key
  /// their per-segment codec resets on this (store/durable.hpp).
  std::uint64_t open_segment_seq() const { return segments_.back().seq; }

  /// Appends one record. `touches` lists every event id the record
  /// references (for the pruning bound); `pinned` exempts the containing
  /// segment from pruning (lifecycle records replay must never lose).
  void append(std::span<const std::uint8_t> body,
              std::span<const EventId> touches, bool pinned = false);

  /// Forces the open segment durable regardless of sync_every.
  void sync();

  /// Writes a durable snapshot, then prunes every leading unpinned segment
  /// whose records all fall inside the snapshot cut, and garbage-collects
  /// all but the two newest snapshot files.
  void write_snapshot(const SnapshotImage& image);

  /// Cut of the newest durable snapshot (empty clock before any).
  const VectorClock& durable_cut() const { return durable_cut_; }

  std::size_t live_segments() const { return segments_.size(); }
  std::uint64_t records_appended() const { return records_appended_; }
  std::uint64_t wal_bytes_appended() const { return bytes_appended_; }
  std::uint64_t syncs() const { return syncs_; }
  std::uint64_t segments_pruned() const { return segments_pruned_; }
  std::uint64_t snapshots_written() const { return snapshots_written_; }

 private:
  struct SegmentMeta {
    std::uint64_t seq = 0;
    std::string name;
    // Max referenced event index per process (0 = none) — prunable once the
    // durable cut covers them all.
    std::vector<EventIndex> bound;
    bool pinned = false;
    std::size_t records = 0;
  };

  void scan_existing();
  void open_segment();
  void rotate();
  void prune();
  static void merge_bound(SegmentMeta& meta, std::span<const EventId> touches);
  static bool bound_covered(const SegmentMeta& meta, const VectorClock& cut);

  StorageBackend& storage_;
  DurabilityPolicy policy_;
  RecoveryInfo recovery_;
  std::vector<RecoveredRecord> recovered_records_;

  std::deque<SegmentMeta> segments_;  // oldest first; back() is open
  std::uint64_t next_segment_seq_ = 0;
  std::uint64_t next_snapshot_seq_ = 0;
  std::vector<std::string> snapshot_files_;  // sorted, oldest first
  VectorClock durable_cut_;
  std::size_t open_records_ = 0;
  std::uint32_t unsynced_records_ = 0;

  std::uint64_t records_appended_ = 0;
  std::uint64_t bytes_appended_ = 0;
  std::uint64_t syncs_ = 0;
  std::uint64_t segments_pruned_ = 0;
  std::uint64_t snapshots_written_ = 0;
};

}  // namespace syncon
